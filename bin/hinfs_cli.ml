(* hinfs-cli: run a single workload/job/trace against a chosen file system
   with configurable emulator parameters. The figure-grade grids live in
   bench/main.exe; this tool is for exploring one cell at a time. *)

module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench
module Fio = Hinfs_workloads.Fio
module Postmark = Hinfs_workloads.Postmark
module Tpcc = Hinfs_workloads.Tpcc
module Kernel = Hinfs_workloads.Kernel
module Trace = Hinfs_trace.Trace
module Stats = Hinfs_stats.Stats
module Report = Hinfs_harness.Report
module Crashmc = Hinfs_crashmc.Crashmc
module Scenarios = Hinfs_crashmc.Scenarios
module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Scrub = Hinfs_fsck.Scrub
module Obs = Hinfs_obs.Obs

open Cmdliner

let fs_kind_conv =
  let all =
    [
      ("hinfs", Fixtures.Hinfs_fs);
      ("hinfs-nclfw", Fixtures.Hinfs_nclfw);
      ("hinfs-wb", Fixtures.Hinfs_wb);
      ("hinfs-fifo", Fixtures.Hinfs_fifo);
      ("hinfs-lfu", Fixtures.Hinfs_lfu);
      ("pmfs", Fixtures.Pmfs_fs);
      ("cowfs", Fixtures.Cow_fs);
      ("ext4-dax", Fixtures.Ext4_dax);
      ("ext2", Fixtures.Ext2_nvmmbd);
      ("ext4", Fixtures.Ext4_nvmmbd);
      ("ext4-sync", Fixtures.Ext4_sync);
      ("ext2-nvlog", Fixtures.Ext2_nvlog);
      ("ext4-nvlog", Fixtures.Ext4_nvlog);
      ("ext4-nvpage", Fixtures.Ext4_nvpage);
    ]
  in
  Arg.enum all

let fs_arg =
  let doc = "File system under test." in
  Arg.(value & opt fs_kind_conv Fixtures.Hinfs_fs & info [ "f"; "fs" ] ~doc)

let threads_arg =
  let doc = "Worker threads." in
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc)

let duration_arg =
  let doc = "Measurement window in virtual milliseconds." in
  Arg.(value & opt int 200 & info [ "d"; "duration-ms" ] ~doc)

let latency_arg =
  let doc = "NVMM write latency in nanoseconds." in
  Arg.(value & opt int 200 & info [ "nvmm-write-ns" ] ~doc)

let buffer_arg =
  let doc = "HiNFS DRAM buffer size in MB." in
  Arg.(value & opt int 24 & info [ "buffer-mb" ] ~doc)

let shards_arg =
  let doc =
    "HiNFS hot-state shards: per-shard buffer pools, journal regions and \
     allocator ranges (1 = unsharded)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~doc)

let spec_of latency buffer_mb shards =
  {
    Experiment.default_spec with
    Experiment.nvmm_write_ns = latency;
    Experiment.buffer_bytes = buffer_mb * 1024 * 1024;
    Experiment.shards;
  }

let print_stats stats =
  Fmt.pr "@.%a@." Stats.pp_breakdown stats;
  Fmt.pr "user bytes: %Ld written / %Ld read; fsync bytes: %Ld (%.1f%%)@."
    (Stats.user_bytes_written stats)
    (Stats.user_bytes_read stats) (Stats.fsync_bytes stats)
    (100.0 *. Stats.fsync_byte_ratio stats);
  Fmt.pr "NVMM bytes written: %Ld (background %Ld), read: %Ld@."
    (Stats.nvmm_bytes_written stats)
    (Stats.nvmm_bytes_written_bg stats)
    (Stats.nvmm_bytes_read stats);
  if Stats.buffer_write_hits stats + Stats.buffer_write_misses stats > 0 then
    Fmt.pr
      "buffer: %.1f%% write hits, %d stalls, %d evictions, %d dead drops, \
       lazy/eager = %d/%d, model accuracy %.1f%% (%d)@."
      (100.0 *. Stats.buffer_write_hit_ratio stats)
      (Stats.writeback_stalls stats)
      (Stats.evictions stats)
      (Stats.dead_block_drops stats)
      (Stats.lazy_writes stats) (Stats.eager_writes stats)
      (100.0 *. Stats.bbm_accuracy stats)
      (Stats.bbm_predictions stats);
  Report.persistence Fmt.stdout stats;
  Report.block_layer Fmt.stdout stats;
  Report.media Fmt.stdout stats;
  Report.recovery Fmt.stdout stats

let workload_of = function
  | "fileserver" -> `Rate (Filebench.fileserver ())
  | "webserver" -> `Rate (Filebench.webserver ())
  | "webproxy" -> `Rate (Filebench.webproxy ())
  | "varmail" -> `Rate (Filebench.varmail ())
  | "fio" -> `Rate (Fio.make ())
  | "postmark" -> `Job (Postmark.make ())
  | "tpcc" -> `Job (Tpcc.make ())
  | "kernel-grep" -> `Job (Kernel.grep ())
  | "kernel-make" -> `Job (Kernel.make_build ())
  | "usr0" -> `Trace (Trace.usr0 ())
  | "usr1" -> `Trace (Trace.usr1 ())
  | "lasr" -> `Trace (Trace.lasr ())
  | "facebook" -> `Trace (Trace.facebook ())
  | other -> Fmt.failwith "unknown workload %S" other

let workload_arg =
  let doc =
    "Workload: fileserver, webserver, webproxy, varmail, fio, postmark, \
     tpcc, kernel-grep, kernel-make, usr0, usr1, lasr, facebook."
  in
  Arg.(value & pos 0 string "fileserver" & info [] ~docv:"WORKLOAD" ~doc)

let run fs threads duration_ms latency buffer_mb shards workload_name =
  let spec = spec_of latency buffer_mb shards in
  Fmt.pr "# %s on %s (%s)@." workload_name (Fixtures.name fs)
    (Fixtures.description fs);
  (match workload_of workload_name with
  | `Rate w ->
    let result, stats =
      Experiment.run_workload ~spec ~threads
        ~duration:(Int64.of_int (duration_ms * 1_000_000))
        fs w
    in
    Fmt.pr "%a@." Workload.pp_result result;
    print_stats stats
  | `Job job ->
    let result, stats = Experiment.run_job ~spec fs job in
    Fmt.pr "%a@." Workload.pp_job_result result;
    print_stats stats
  | `Trace trace ->
    let result, stats = Experiment.run_trace ~spec fs trace in
    Fmt.pr "%a@." Trace.pp_replay_result result;
    print_stats stats);
  0

let run_term =
  Term.(
    const run $ fs_arg $ threads_arg $ duration_arg $ latency_arg
    $ buffer_arg $ shards_arg $ workload_arg)

let run_cmd =
  let doc = "Run one workload cell (default command)" in
  Cmd.v (Cmd.info "run" ~doc) run_term

(* --- profile: obs-enabled run with trace export + histogram tables --- *)

let trace_out_arg =
  let doc =
    "Write a Chrome trace-event JSON file to $(docv) (load it in \
     chrome://tracing or Perfetto). Timestamps are virtual nanoseconds."
  in
  Arg.(
    value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let hist_arg =
  let doc = "Print per-span latency histograms and sampled-gauge tables." in
  Arg.(value & flag & info [ "hist" ] ~doc)

let profile fs threads duration_ms latency buffer_mb shards trace_out hist
    workload_name =
  let spec = spec_of latency buffer_mb shards in
  let trace = trace_out <> None in
  Fmt.pr "# profile %s on %s (%s)@." workload_name (Fixtures.name fs)
    (Fixtures.description fs);
  let obs =
    match workload_of workload_name with
    | `Rate w ->
      let result, _stats, obs =
        Experiment.run_workload_obs ~spec ~threads
          ~duration:(Int64.of_int (duration_ms * 1_000_000))
          ~trace fs w
      in
      Fmt.pr "%a@." Workload.pp_result result;
      obs
    | `Job job ->
      let result, _stats, obs = Experiment.run_job_obs ~spec ~trace fs job in
      Fmt.pr "%a@." Workload.pp_job_result result;
      obs
    | `Trace t ->
      let result, _stats, obs = Experiment.run_trace_obs ~spec ~trace fs t in
      Fmt.pr "%a@." Trace.pp_replay_result result;
      obs
  in
  if hist then begin
    Report.latency Fmt.stdout obs;
    Report.gauges Fmt.stdout obs
  end;
  (match trace_out with
  | None -> ()
  | Some path ->
    Hinfs_harness.Profile.write_file path (Obs.chrome_trace obs);
    Fmt.pr "trace written to %s@." path);
  let open_spans = Obs.open_spans obs and mismatches = Obs.mismatches obs in
  if open_spans > 0 || mismatches > 0 then begin
    Fmt.epr "hinfs-cli: span accounting broken (%d open, %d mismatched)@."
      open_spans mismatches;
    1
  end
  else 0

let profile_cmd =
  let doc =
    "Run one workload with the observability sink installed: latency \
     histograms, sampled gauges, and optional Chrome trace export"
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const profile $ fs_arg $ threads_arg $ duration_arg $ latency_arg
      $ buffer_arg $ shards_arg $ trace_out_arg $ hist_arg $ workload_arg)

(* --- crashmc: crash-state enumeration + fsck --- *)

let seed_arg =
  let doc = "Deterministic seed for crash-image sampling." in
  Arg.(value & opt int64 Crashmc.default_params.seed & info [ "seed" ] ~doc)

let k_arg =
  let doc =
    "Enumerate crash images exhaustively when at most $(docv) cachelines \
     are undecided; sample beyond that."
  in
  Arg.(
    value
    & opt int Crashmc.default_params.k_exhaustive
    & info [ "k" ] ~docv:"K" ~doc)

let samples_arg =
  let doc = "Sampled crash images per state when not exhaustive." in
  Arg.(
    value
    & opt int Crashmc.default_params.samples_per_state
    & info [ "samples" ] ~doc)

let max_images_arg =
  let doc = "Exhaustive-product budget per crash state." in
  Arg.(
    value
    & opt int Crashmc.default_params.max_images_per_state
    & info [ "max-images" ] ~doc)

let max_states_arg =
  let doc = "Captured crash states per scenario (thinned adaptively)." in
  Arg.(
    value
    & opt int Crashmc.default_params.max_states
    & info [ "max-states" ] ~doc)

let recrash_checks_arg =
  let doc =
    "Per-scenario budget of crash-during-recovery verifications: each crash \
     image is recovered with the persistence recorder armed, re-crashed at \
     recovery fences, and recovered again (0 disables)."
  in
  Arg.(
    value
    & opt int Crashmc.default_params.recrash_checks
    & info [ "recrash-checks" ] ~doc)

let scenarios_arg =
  let doc =
    Fmt.str "Scenarios to check (default: all). Known: %s."
      (String.concat ", " Scenarios.names)
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SCENARIO" ~doc)

let crashmc_run seed k samples max_images max_states recrash_checks names =
  let params =
    {
      Crashmc.seed;
      k_exhaustive = k;
      samples_per_state = samples;
      max_images_per_state = max_images;
      max_states;
      recrash_states = Crashmc.default_params.recrash_states;
      recrash_samples = Crashmc.default_params.recrash_samples;
      recrash_checks;
    }
  in
  match
    List.filter (fun n -> Scenarios.by_name n = None) names
  with
  | bad :: _ ->
    Fmt.epr "hinfs-cli: unknown scenario %S (known: %s)@." bad
      (String.concat ", " Scenarios.names);
    2
  | [] ->
    let scenarios =
      match names with
      | [] -> Scenarios.all
      | names -> List.filter_map Scenarios.by_name names
    in
    let report = Crashmc.run_suite ~params scenarios in
    Fmt.pr "%a@." Crashmc.pp_report report;
    if Crashmc.ok report then 0 else 1

let crashmc_cmd =
  let doc =
    "Enumerate crash states under the x86 persistency model and check each \
     image with recovery + fsck + the durability oracle"
  in
  Cmd.v
    (Cmd.info "crashmc" ~doc)
    Term.(
      const crashmc_run $ seed_arg $ k_arg $ samples_arg $ max_images_arg
      $ max_states_arg $ recrash_checks_arg $ scenarios_arg)

(* --- scrub: media-fault injection + repair demo --- *)

let scrub_seed_arg =
  let doc = "Deterministic seed for the fault model and line placement." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc)

let poison_rate_arg =
  let doc = "Per-line probability that a full-line store poisons its line." in
  Arg.(value & opt float 0.0 & info [ "poison-rate" ] ~doc)

let transient_rate_arg =
  let doc = "Per-line probability of a transient fault on a clean load." in
  Arg.(value & opt float 0.0 & info [ "transient-rate" ] ~doc)

let poison_lines_arg =
  let doc = "Cachelines struck with persistent poison before the remount." in
  Arg.(value & opt int 16 & info [ "poison-lines" ] ~doc)

let scrub_files_arg =
  let doc = "Files written before injection (8 KB each, synchronous)." in
  Arg.(value & opt int 8 & info [ "files" ] ~doc)

let scrub_size_arg =
  let doc = "Device size in MB." in
  Arg.(value & opt int 8 & info [ "size-mb" ] ~doc)

(* Build a small PMFS, poison random lines while it is unmounted, remount
   (superblock repair + recovery run here), read everything back, then
   scrub and fsck. Demonstrates the retry -> repair -> read-only ladder on
   a reproducible image. *)
let scrub_run seed poison_rate transient_rate poison_lines files size_mb
    shards =
  let exit_code = ref 0 in
  let engine = Engine.create () in
  Engine.spawn engine ~name:"scrub" (fun () ->
      let stats = Stats.create () in
      let config =
        { Config.default with Config.nvmm_size = size_mb * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount device ~journal_blocks:32 ~shards () in
      let file_len = 8192 in
      let payload i =
        let rng = Rng.create ~seed:(Int64.add seed (Int64.of_int (i + 1))) in
        Bytes.init file_len (fun _ -> Char.chr (Rng.int rng 256))
      in
      let inos =
        List.init files (fun i ->
            let ino =
              Pmfs.create_file fs ~dir:Layout.root_ino (Fmt.str "f%03d" i)
            in
            ignore
              (Pmfs.write fs ~ino ~off:0 ~src:(payload i) ~src_off:0
                 ~len:file_len ~sync:true);
            ino)
      in
      Pmfs.unmount fs;
      let fault = Fault.create ~poison_rate ~transient_rate ~seed () in
      Device.set_fault_model device (Some fault);
      let ls = config.Config.cacheline_size in
      let lines = Device.size device / ls in
      let rng = Rng.create ~seed:(Int64.add seed 0x5C4BL) in
      for _ = 1 to poison_lines do
        Fault.poison_line fault (Rng.int rng lines)
      done;
      Fmt.pr
        "injected %d poisoned line(s), seed %Ld, poison rate %g, transient \
         rate %g@."
        (Fault.poisoned_count fault)
        seed poison_rate transient_rate;
      match Pmfs.mount device () with
      | exception Errno.Fs_error (code, msg) ->
        (* Both superblock copies lost: nothing to mount, nothing silent. *)
        Fmt.pr "mount failed (%s): %s@." (Errno.to_string code) msg
      | fs ->
      let eio = ref 0 and corrupt = ref 0 and intact = ref 0 in
      List.iteri
        (fun i ino ->
          let buf = Bytes.create file_len in
          match
            Pmfs.read fs ~ino ~off:0 ~len:file_len ~into:buf ~into_off:0
          with
          | n ->
            if n = file_len && Bytes.equal buf (payload i) then incr intact
            else incr corrupt
          | exception Errno.Fs_error (Errno.EIO, _) -> incr eio)
        inos;
      Fmt.pr "readback: %d intact, %d EIO, %d silently corrupt@." !intact
        !eio !corrupt;
      (if Pmfs.shard_count fs > 1 then
         let by_shard = Pmfs.recovered_by_shard fs in
         Fmt.pr "recovery rollbacks by shard: %a@."
           Fmt.(array ~sep:(any " ") int)
           by_shard);
      let sreport = Scrub.run fs in
      Fmt.pr "%a@." Scrub.pp_report sreport;
      (if Pmfs.shard_count fs > 1 then
         Array.iteri
           (fun s heals ->
             Fmt.pr
               "shard %d: %d heal(s), %d data line(s) lost, health %s@." s
               heals
               sreport.Scrub.lost_by_shard.(s)
               (Hinfs_pmfs.Health.state_name
                  (Hinfs_pmfs.Health.shard_state (Pmfs.health fs) s)))
           sreport.Scrub.repairs_by_shard);
      if sreport.Scrub.remaining_poison > 0 then
        Fmt.pr "unhealed poison: %d line(s) remain@."
          sreport.Scrub.remaining_poison;
      let freport = Fsck.check_pmfs fs in
      Fmt.pr "%a@." Fsck.pp_report freport;
      (match Pmfs.read_only_reason fs with
      | Some r -> Fmt.pr "mount degraded to read-only: %s@." r
      | None -> Fmt.pr "mount still read-write@.");
      Report.media Fmt.stdout stats;
      Report.recovery Fmt.stdout stats;
      (* Silent corruption is the one unacceptable outcome. *)
      if !corrupt > 0 then exit_code := 1;
      (* A still-writable file system must also be structurally clean. *)
      if (not (Pmfs.read_only fs)) && not (Fsck.ok freport) then
        exit_code := 1;
      (* Unhealed poison left on the image is CI-gateable: a clean scrub
         run must end with zero poisoned lines. *)
      if sreport.Scrub.remaining_poison > 0 then exit_code := 1);
  Engine.run engine;
  !exit_code

let scrub_cmd =
  let doc =
    "Inject deterministic media faults into a small PMFS image, remount, \
     and run the scrubber + poison-aware fsck"
  in
  Cmd.v
    (Cmd.info "scrub" ~doc)
    Term.(
      const scrub_run $ scrub_seed_arg $ poison_rate_arg $ transient_rate_arg
      $ poison_lines_arg $ scrub_files_arg $ scrub_size_arg $ shards_arg)

(* --- nvcache: durability-tier walkthrough (absorb / crash / replay) --- *)

module Nvcache = Hinfs_nvcache.Nvcache

let design_arg =
  let doc = "Cache design: nvlog (record log) or nvpage (page slots)." in
  Arg.(
    value
    & opt (Arg.enum [ ("nvlog", Nvcache.Logging); ("nvpage", Nvcache.Paging) ])
        Nvcache.Logging
    & info [ "design" ] ~doc)

let nv_files_arg =
  let doc = "Files written synchronously before the crash (4 KB each)." in
  Arg.(value & opt int 12 & info [ "files" ] ~doc)

let nv_size_arg =
  let doc = "Device size in MB." in
  Arg.(value & opt int 16 & info [ "size-mb" ] ~doc)

let nv_cache_kb_arg =
  let doc = "Cache area size in KB (default: device/8 clamped)." in
  Arg.(value & opt (some int) None & info [ "cache-kb" ] ~doc)

(* Write fsync'd files into an ext4-over-nvcache stack, crash with the
   destage backlog still in NVMM, replay on remount, and verify every
   file survived — the tier's whole durability argument in one run. *)
let nvcache_run design files size_mb cache_kb =
  let exit_code = ref 0 in
  let engine = Engine.create () in
  Engine.spawn engine ~name:"nvcache" (fun () ->
      let stats = Stats.create () in
      let config =
        { Config.default with Config.nvmm_size = size_mb * 1024 * 1024 }
      in
      let cache_bytes = Option.map (fun kb -> kb * 1024) cache_kb in
      let device = Device.create engine stats config in
      let module Extfs = Hinfs_extfs.Extfs in
      let st =
        Nvcache.mkfs_and_mount device ~design ~mode:Extfs.Ext4 ?cache_bytes
          ~sync_mount:true ~daemons:false ()
      in
      let fs = Nvcache.fs st in
      let cache = Nvcache.cache st in
      let file_len = 4096 in
      let payload i =
        Bytes.init file_len (fun j -> Char.chr ((i * 131 + j) mod 256))
      in
      for i = 0 to files - 1 do
        let ino =
          Extfs.create_file fs ~dir:1 (Fmt.str "f%03d" i)
        in
        ignore
          (Extfs.write fs ~ino ~off:0 ~src:(payload i) ~src_off:0
             ~len:file_len ~sync:true);
        Extfs.fsync fs ~ino
      done;
      Fmt.pr
        "%s: %d appends, %Ld bytes absorbed, backlog %d, %d/%d cache bytes \
         used, %d stalls, %d write-arounds@."
        (Nvcache.design_name design)
        (Nvcache.appends cache)
        (Int64.of_int (Nvcache.absorbed_bytes cache))
        (Nvcache.backlog cache)
        (Nvcache.used_bytes cache)
        (Nvcache.capacity_bytes cache)
        (Nvcache.stalls cache)
        (Nvcache.bypassed_writes cache);
      Report.block_layer Fmt.stdout stats;
      (* Crash now: the backlog is still only in the cache area. *)
      let image = Device.snapshot device in
      let stats2 = Stats.create () in
      let device2 = Device.of_snapshot engine stats2 config image in
      let st2 =
        Nvcache.mount device2 ~mode:Extfs.Ext4 ?cache_bytes ~sync_mount:true
          ~daemons:false ()
      in
      (match Nvcache.last_recovery st2 with
      | Some r ->
        Fmt.pr "replay: %d record(s), %d byte(s), %d dropped@." r.rec_replayed
          r.rec_bytes r.rec_dropped
      | None -> ());
      let fs2 = Nvcache.fs st2 in
      let intact = ref 0 in
      for i = 0 to files - 1 do
        match Extfs.lookup fs2 ~dir:1 (Fmt.str "f%03d" i) with
        | None -> ()
        | Some ino ->
          let buf = Bytes.create file_len in
          let n =
            Extfs.read fs2 ~ino ~off:0 ~len:file_len ~into:buf ~into_off:0
          in
          if n = file_len && Bytes.equal buf (payload i) then incr intact
      done;
      Fmt.pr "after crash + replay: %d/%d files intact@." !intact files;
      if !intact <> files then exit_code := 1;
      Nvcache.unmount st2;
      Nvcache.unmount st);
  Engine.run engine;
  !exit_code

let nvcache_cmd =
  let doc =
    "Write fsync'd files through the NVMM write-cache tier, crash before \
     destage, and verify mount-time replay recovers everything"
  in
  Cmd.v
    (Cmd.info "nvcache" ~doc)
    Term.(
      const nvcache_run $ design_arg $ nv_files_arg $ nv_size_arg
      $ nv_cache_kb_arg)

(* --- snapshot: CoW snapshot / transaction / rollback walkthrough --- *)

module Cowfs = Hinfs_pmfs.Cowfs

let snap_size_arg =
  let doc = "Device size in MB." in
  Arg.(value & opt int 8 & info [ "size-mb" ] ~doc)

let snap_files_arg =
  let doc = "Files written per phase (4 KB each, synchronous)." in
  Arg.(value & opt int 4 & info [ "files" ] ~doc)

(* Build a cowfs, pin a snapshot, diverge inside a whole-FS transaction,
   roll back, and fsck at every step — the snapshot/txn surface end to
   end on one reproducible image. *)
let snapshot_run size_mb files =
  let exit_code = ref 0 in
  let engine = Engine.create () in
  Engine.spawn engine ~name:"snapshot" (fun () ->
      let stats = Stats.create () in
      let config =
        { Config.default with Config.nvmm_size = size_mb * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Cowfs.mkfs_and_mount device () in
      let file_len = 4096 in
      let payload tag i =
        Bytes.init file_len (fun j ->
            Char.chr (Hashtbl.hash (tag, i, j) land 0xFF))
      in
      let write_files tag =
        for i = 0 to files - 1 do
          let name = Fmt.str "%s%03d" tag i in
          let ino =
            match Cowfs.lookup fs ~dir:Cowfs.root_ino name with
            | Some ino -> ino
            | None -> Cowfs.create_file fs ~dir:Cowfs.root_ino name
          in
          ignore
            (Cowfs.write fs ~ino ~off:0 ~src:(payload tag i) ~src_off:0
               ~len:file_len ~sync:true)
        done
      in
      let check label =
        let report = Fsck.check_cow fs in
        if not (Fsck.ok report) then begin
          Fmt.pr "fsck after %s:@.%a@." label Fsck.pp_report report;
          exit_code := 1
        end
      in
      write_files "base";
      check "base writes";
      let snap = Cowfs.snapshot fs in
      Fmt.pr "snapshot %d pinned at seq %Ld (%d used blocks)@." snap
        (Cowfs.committed_seq fs) (Cowfs.used_blocks fs);
      (* Diverge atomically: overwrites + new files land in one root swap. *)
      Cowfs.txn_begin fs;
      write_files "base" (* overwrite every base file (CoW against the pin) *);
      write_files "txn";
      Cowfs.txn_commit fs;
      check "transaction";
      Fmt.pr "diverged in one txn: seq %Ld, %d used blocks, %d commits@."
        (Cowfs.committed_seq fs) (Cowfs.used_blocks fs) (Cowfs.commits fs);
      Cowfs.rollback fs ~snap_id:snap;
      check "rollback";
      (* Everything the txn made must be gone, base contents restored. *)
      let intact = ref 0 in
      for i = 0 to files - 1 do
        match Cowfs.lookup fs ~dir:Cowfs.root_ino (Fmt.str "base%03d" i) with
        | None -> ()
        | Some ino ->
          let buf = Bytes.create file_len in
          let n =
            Cowfs.read fs ~ino ~off:0 ~len:file_len ~into:buf ~into_off:0
          in
          if n = file_len && Bytes.equal buf (payload "base" i) then
            incr intact
      done;
      let leftovers =
        List.filter
          (fun (name, _) -> String.length name >= 3 && String.sub name 0 3 = "txn")
          (Cowfs.readdir fs ~dir:Cowfs.root_ino)
      in
      Fmt.pr "after rollback: %d/%d base files intact, %d txn leftovers@."
        !intact files (List.length leftovers);
      if !intact <> files || leftovers <> [] then exit_code := 1;
      Cowfs.snapshot_delete fs ~snap_id:snap;
      check "snapshot GC";
      Fmt.pr "snapshot %d deleted: %d used blocks, %d free@." snap
        (Cowfs.used_blocks fs)
        (Cowfs.free_data_blocks fs);
      Cowfs.unmount fs);
  Engine.run engine;
  !exit_code

let snapshot_cmd =
  let doc =
    "Walk the CoW substrate through snapshot, whole-FS transaction, \
     rollback and snapshot GC, fsck-checked at every step"
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc)
    Term.(const snapshot_run $ snap_size_arg $ snap_files_arg)

(* --- health: per-shard fault-domain walkthrough --- *)

let health_shards_arg =
  let doc = "Shard count (fault domains) for the walkthrough mount." in
  Arg.(value & opt int 4 & info [ "shards" ] ~doc)

let health_victim_arg =
  let doc = "Shard whose journal sub-region the walkthrough corrupts." in
  Arg.(value & opt int 1 & info [ "victim" ] ~doc)

(* Demonstrate the Healthy -> Degraded -> Quarantined -> Repairing ->
   Healthy ladder: build a sharded PMFS, corrupt one shard's journal
   sub-region, let the repair daemon quarantine + heal it while sibling
   shards keep serving, and print every transition. *)
let health_run size_mb shards victim =
  let exit_code = ref 0 in
  let engine = Engine.create () in
  Engine.spawn engine ~name:"health" (fun () ->
      let stats = Stats.create () in
      let config =
        { Config.default with Config.nvmm_size = size_mb * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount device ~journal_blocks:64 ~shards () in
      Device.set_fault_model device (Some (Fault.create ~seed:42L ()));
      let health = Pmfs.health fs in
      Hinfs_pmfs.Health.set_listener health (fun domain prev next ->
          Fmt.pr "t=%Ldns  %s: %s -> %s@."
            (Engine.now engine)
            (Hinfs_pmfs.Health.domain_name domain)
            (Hinfs_pmfs.Health.state_name prev)
            (Hinfs_pmfs.Health.state_name next));
      (* One file per shard, so every fault domain serves live data. *)
      let victim = min victim (shards - 1) in
      let dirs =
        List.init shards (fun i ->
            Pmfs.mkdir fs ~dir:Layout.root_ino (Fmt.str "d%d" i))
      in
      let payload = Bytes.make 4096 'h' in
      let files =
        List.map
          (fun dir ->
            let ino = Pmfs.create_file fs ~dir "data" in
            ignore
              (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096
                 ~sync:true);
            (dir, ino))
          dirs
      in
      Fmt.pr "mounted with %d shards; corrupting shard %d's journal@." shards
        victim;
      Hinfs_harness.Chaos.corrupt_journal fs ~shard:victim ~lines:8;
      let daemon = Hinfs_fsck.Repair.create fs in
      Hinfs_fsck.Repair.start daemon;
      (* Give the patrol time to detect, quarantine, repair, re-admit. *)
      Hinfs_sim.Proc.delay_int 50_000_000;
      Hinfs_fsck.Repair.stop daemon;
      Fmt.pr "repairs: %d ok, %d failed; quarantines %d, readmits %d@."
        (Hinfs_fsck.Repair.repairs_done daemon)
        (Hinfs_fsck.Repair.repairs_failed daemon)
        (Hinfs_pmfs.Health.quarantines health)
        (Hinfs_pmfs.Health.readmits health);
      Fmt.pr "%a@." Hinfs_pmfs.Health.pp health;
      (* Every shard, including the victim, must serve read-write again. *)
      let ok = ref 0 in
      List.iter
        (fun (_, ino) ->
          try
            ignore
              (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096
                 ~sync:true);
            incr ok
          with Errno.Fs_error _ -> ())
        files;
      Fmt.pr "post-repair writes: %d/%d shards read-write@." !ok shards;
      if !ok <> shards then exit_code := 1;
      if not (Pmfs.fully_healthy fs) then exit_code := 1;
      Pmfs.unmount fs);
  Engine.run engine;
  !exit_code

let health_cmd =
  let doc =
    "Corrupt one shard's journal on a sharded PMFS and watch the health \
     state machine quarantine, repair, and re-admit it online"
  in
  Cmd.v
    (Cmd.info "health" ~doc)
    Term.(const health_run $ scrub_size_arg $ health_shards_arg
          $ health_victim_arg)

(* --- serve: client fleet through the request-level serving layer --- *)

module Server = Hinfs_server.Server
module Clients = Hinfs_server.Clients
module Ofcache = Hinfs_server.Ofcache
module Fhandle = Hinfs_server.Fhandle
module Session = Hinfs_server.Session

let clients_arg =
  let doc = "Simulated client processes in the fleet." in
  Arg.(value & opt int 64 & info [ "clients" ] ~doc)

let ops_per_client_arg =
  let doc = "Requests issued per client (plus the initial CREATE)." in
  Arg.(value & opt int 50 & info [ "ops-per-client" ] ~doc)

let workers_arg =
  let doc = "Server worker fibers draining the request queue." in
  Arg.(value & opt int 8 & info [ "workers" ] ~doc)

let cache_cap_arg =
  let doc = "Open-file cache capacity (LRU, flush-on-evict)." in
  Arg.(value & opt int 64 & info [ "cache-cap" ] ~doc)

let lease_ms_arg =
  let doc = "Session lease in virtual milliseconds." in
  Arg.(value & opt int 50 & info [ "lease-ms" ] ~doc)

let serve_seed_arg =
  let doc = "Deterministic seed for the client fleet and the mount." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~doc)

(* One serving cell: mount [fs], run the fleet through the full codec +
   session + handle-table + open-file-cache path, and report request
   throughput with per-class and per-phase latency tables. *)
let serve_run fs latency buffer_mb shards clients ops_per_client workers
    cache_cap lease_ms seed trace_out =
  let spec = { (spec_of latency buffer_mb shards) with Experiment.seed } in
  let cfg =
    {
      Clients.default with
      Clients.clients;
      ops_per_client;
      shards = max 1 shards;
      seed;
    }
  in
  Fmt.pr "# serve %d clients x %d ops on %s (%d shards, %d workers)@."
    clients ops_per_client (Fixtures.name fs) shards workers;
  let cell, _stats, obs =
    Experiment.with_env_obs ~trace:(trace_out <> None) spec fs (fun env ->
        let srv =
          Server.create ~workers ~cache_cap
            ~lease_ns:(Int64.of_int (lease_ms * 1_000_000))
            env.Hinfs_harness.Fixtures.engine env.Hinfs_harness.Fixtures.handle
        in
        Server.start srv;
        let t0 = Hinfs_sim.Proc.now () in
        let total = Clients.run env.Hinfs_harness.Fixtures.engine srv cfg in
        let t1 = Hinfs_sim.Proc.now () in
        let cache = Server.cache srv in
        let summary =
          ( total,
            Int64.sub t1 t0,
            Server.served srv,
            Server.err_replies srv,
            Server.expired_replies srv,
            (Ofcache.hits cache, Ofcache.misses cache, Ofcache.evictions cache),
            ( Fhandle.live (Server.handles srv),
              Fhandle.total (Server.handles srv),
              Fhandle.estale_total (Server.handles srv) ),
            Session.expired_total (Server.sessions srv) )
        in
        Ofcache.drop_all cache;
        Server.stop srv;
        summary)
  in
  let ( total, elapsed_ns, served, errs, expired, (hits, misses, evictions),
        (fh_live, fh_total, estales), sess_expired ) =
    cell
  in
  let secs = Int64.to_float elapsed_ns /. 1e9 in
  Fmt.pr "%d requests in %.2f virtual ms: %.0f req/s@." total (secs *. 1e3)
    (if secs > 0.0 then float_of_int total /. secs else 0.0);
  Fmt.pr
    "served %d (%d errors, %d expired-session replies); open-file cache \
     %d hits / %d misses / %d evictions; handles %d live / %d minted, %d \
     ESTALE served; %d session(s) expired@."
    served errs expired hits misses evictions fh_live fh_total estales
    sess_expired;
  Report.latency Fmt.stdout obs;
  Report.gauges Fmt.stdout obs;
  (match trace_out with
  | None -> ()
  | Some path ->
    Hinfs_harness.Profile.write_file path (Obs.chrome_trace obs);
    Fmt.pr "trace written to %s@." path);
  let open_spans = Obs.open_spans obs and mismatches = Obs.mismatches obs in
  if open_spans > 0 || mismatches > 0 then begin
    Fmt.epr "hinfs-cli: span accounting broken (%d open, %d mismatched)@."
      open_spans mismatches;
    1
  end
  else 0

let serve_cmd =
  let doc =
    "Drive a simulated client fleet through the NFS-style serving layer \
     (sessions, stable handles, open-file cache) and report per-request- \
     class latency tails"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ fs_arg $ latency_arg $ buffer_arg $ shards_arg
      $ clients_arg $ ops_per_client_arg $ workers_arg $ cache_cap_arg
      $ lease_ms_arg $ serve_seed_arg $ trace_out_arg)

let cmd =
  let doc = "HiNFS-reproduction workbench" in
  Cmd.group ~default:run_term
    (Cmd.info "hinfs-cli" ~doc)
    [
      run_cmd; profile_cmd; crashmc_cmd; scrub_cmd; nvcache_cmd; snapshot_cmd;
      health_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval' cmd)
