(* hinfs-cli: run a single workload/job/trace against a chosen file system
   with configurable emulator parameters. The figure-grade grids live in
   bench/main.exe; this tool is for exploring one cell at a time. *)

module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench
module Fio = Hinfs_workloads.Fio
module Postmark = Hinfs_workloads.Postmark
module Tpcc = Hinfs_workloads.Tpcc
module Kernel = Hinfs_workloads.Kernel
module Trace = Hinfs_trace.Trace
module Stats = Hinfs_stats.Stats
module Report = Hinfs_harness.Report
module Crashmc = Hinfs_crashmc.Crashmc
module Scenarios = Hinfs_crashmc.Scenarios

open Cmdliner

let fs_kind_conv =
  let all =
    [
      ("hinfs", Fixtures.Hinfs_fs);
      ("hinfs-nclfw", Fixtures.Hinfs_nclfw);
      ("hinfs-wb", Fixtures.Hinfs_wb);
      ("hinfs-fifo", Fixtures.Hinfs_fifo);
      ("hinfs-lfu", Fixtures.Hinfs_lfu);
      ("pmfs", Fixtures.Pmfs_fs);
      ("ext4-dax", Fixtures.Ext4_dax);
      ("ext2", Fixtures.Ext2_nvmmbd);
      ("ext4", Fixtures.Ext4_nvmmbd);
    ]
  in
  Arg.enum all

let fs_arg =
  let doc = "File system under test." in
  Arg.(value & opt fs_kind_conv Fixtures.Hinfs_fs & info [ "f"; "fs" ] ~doc)

let threads_arg =
  let doc = "Worker threads." in
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc)

let duration_arg =
  let doc = "Measurement window in virtual milliseconds." in
  Arg.(value & opt int 200 & info [ "d"; "duration-ms" ] ~doc)

let latency_arg =
  let doc = "NVMM write latency in nanoseconds." in
  Arg.(value & opt int 200 & info [ "nvmm-write-ns" ] ~doc)

let buffer_arg =
  let doc = "HiNFS DRAM buffer size in MB." in
  Arg.(value & opt int 24 & info [ "buffer-mb" ] ~doc)

let spec_of latency buffer_mb =
  {
    Experiment.default_spec with
    Experiment.nvmm_write_ns = latency;
    Experiment.buffer_bytes = buffer_mb * 1024 * 1024;
  }

let print_stats stats =
  Fmt.pr "@.%a@." Stats.pp_breakdown stats;
  Fmt.pr "user bytes: %Ld written / %Ld read; fsync bytes: %Ld (%.1f%%)@."
    (Stats.user_bytes_written stats)
    (Stats.user_bytes_read stats) (Stats.fsync_bytes stats)
    (100.0 *. Stats.fsync_byte_ratio stats);
  Fmt.pr "NVMM bytes written: %Ld (background %Ld), read: %Ld@."
    (Stats.nvmm_bytes_written stats)
    (Stats.nvmm_bytes_written_bg stats)
    (Stats.nvmm_bytes_read stats);
  if Stats.buffer_write_hits stats + Stats.buffer_write_misses stats > 0 then
    Fmt.pr
      "buffer: %.1f%% write hits, %d stalls, %d evictions, %d dead drops, \
       lazy/eager = %d/%d, model accuracy %.1f%% (%d)@."
      (100.0 *. Stats.buffer_write_hit_ratio stats)
      (Stats.writeback_stalls stats)
      (Stats.evictions stats)
      (Stats.dead_block_drops stats)
      (Stats.lazy_writes stats) (Stats.eager_writes stats)
      (100.0 *. Stats.bbm_accuracy stats)
      (Stats.bbm_predictions stats);
  Report.persistence Fmt.stdout stats

let workload_of = function
  | "fileserver" -> `Rate (Filebench.fileserver ())
  | "webserver" -> `Rate (Filebench.webserver ())
  | "webproxy" -> `Rate (Filebench.webproxy ())
  | "varmail" -> `Rate (Filebench.varmail ())
  | "fio" -> `Rate (Fio.make ())
  | "postmark" -> `Job (Postmark.make ())
  | "tpcc" -> `Job (Tpcc.make ())
  | "kernel-grep" -> `Job (Kernel.grep ())
  | "kernel-make" -> `Job (Kernel.make_build ())
  | "usr0" -> `Trace (Trace.usr0 ())
  | "usr1" -> `Trace (Trace.usr1 ())
  | "lasr" -> `Trace (Trace.lasr ())
  | "facebook" -> `Trace (Trace.facebook ())
  | other -> Fmt.failwith "unknown workload %S" other

let workload_arg =
  let doc =
    "Workload: fileserver, webserver, webproxy, varmail, fio, postmark, \
     tpcc, kernel-grep, kernel-make, usr0, usr1, lasr, facebook."
  in
  Arg.(value & pos 0 string "fileserver" & info [] ~docv:"WORKLOAD" ~doc)

let run fs threads duration_ms latency buffer_mb workload_name =
  let spec = spec_of latency buffer_mb in
  Fmt.pr "# %s on %s (%s)@." workload_name (Fixtures.name fs)
    (Fixtures.description fs);
  (match workload_of workload_name with
  | `Rate w ->
    let result, stats =
      Experiment.run_workload ~spec ~threads
        ~duration:(Int64.of_int (duration_ms * 1_000_000))
        fs w
    in
    Fmt.pr "%a@." Workload.pp_result result;
    print_stats stats
  | `Job job ->
    let result, stats = Experiment.run_job ~spec fs job in
    Fmt.pr "%a@." Workload.pp_job_result result;
    print_stats stats
  | `Trace trace ->
    let result, stats = Experiment.run_trace ~spec fs trace in
    Fmt.pr "%a@." Trace.pp_replay_result result;
    print_stats stats);
  0

let run_term =
  Term.(
    const run $ fs_arg $ threads_arg $ duration_arg $ latency_arg
    $ buffer_arg $ workload_arg)

let run_cmd =
  let doc = "Run one workload cell (default command)" in
  Cmd.v (Cmd.info "run" ~doc) run_term

(* --- crashmc: crash-state enumeration + fsck --- *)

let seed_arg =
  let doc = "Deterministic seed for crash-image sampling." in
  Arg.(value & opt int64 Crashmc.default_params.seed & info [ "seed" ] ~doc)

let k_arg =
  let doc =
    "Enumerate crash images exhaustively when at most $(docv) cachelines \
     are undecided; sample beyond that."
  in
  Arg.(
    value
    & opt int Crashmc.default_params.k_exhaustive
    & info [ "k" ] ~docv:"K" ~doc)

let samples_arg =
  let doc = "Sampled crash images per state when not exhaustive." in
  Arg.(
    value
    & opt int Crashmc.default_params.samples_per_state
    & info [ "samples" ] ~doc)

let max_images_arg =
  let doc = "Exhaustive-product budget per crash state." in
  Arg.(
    value
    & opt int Crashmc.default_params.max_images_per_state
    & info [ "max-images" ] ~doc)

let max_states_arg =
  let doc = "Captured crash states per scenario (thinned adaptively)." in
  Arg.(
    value
    & opt int Crashmc.default_params.max_states
    & info [ "max-states" ] ~doc)

let scenarios_arg =
  let doc =
    Fmt.str "Scenarios to check (default: all). Known: %s."
      (String.concat ", " Scenarios.names)
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SCENARIO" ~doc)

let crashmc_run seed k samples max_images max_states names =
  let params =
    {
      Crashmc.seed;
      k_exhaustive = k;
      samples_per_state = samples;
      max_images_per_state = max_images;
      max_states;
    }
  in
  match
    List.filter (fun n -> Scenarios.by_name n = None) names
  with
  | bad :: _ ->
    Fmt.epr "hinfs-cli: unknown scenario %S (known: %s)@." bad
      (String.concat ", " Scenarios.names);
    2
  | [] ->
    let scenarios =
      match names with
      | [] -> Scenarios.all
      | names -> List.filter_map Scenarios.by_name names
    in
    let report = Crashmc.run_suite ~params scenarios in
    Fmt.pr "%a@." Crashmc.pp_report report;
    if Crashmc.ok report then 0 else 1

let crashmc_cmd =
  let doc =
    "Enumerate crash states under the x86 persistency model and check each \
     image with recovery + fsck + the durability oracle"
  in
  Cmd.v
    (Cmd.info "crashmc" ~doc)
    Term.(
      const crashmc_run $ seed_arg $ k_arg $ samples_arg $ max_images_arg
      $ max_states_arg $ scenarios_arg)

let cmd =
  let doc = "HiNFS-reproduction workbench" in
  Cmd.group ~default:run_term
    (Cmd.info "hinfs-cli" ~doc)
    [ run_cmd; crashmc_cmd ]

let () = exit (Cmd.eval' cmd)
