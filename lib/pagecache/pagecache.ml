(* OS page cache (buffer cache) over a block device.

   This is what the EXT2/EXT4+NVMMBD baselines pay for: every cached read
   is fetched from the device into a page first (one copy through the block
   layer) and then copied to the user buffer (second copy); writes are
   copied into pages and written back later. The paper's point is that on
   NVMM these double copies and the block-layer software overhead can
   swallow the benefit of DRAM buffering (§2, Fig. 3a).

   Pages are keyed by device block number (buffer-head style). Eviction is
   LRU, preferring clean pages; evicting a dirty page pays a foreground
   writeback. A pdflush-like daemon writes dirty pages back periodically
   and when the dirty ratio crosses a threshold. *)

module Proc = Hinfs_sim.Proc
module Engine = Hinfs_sim.Engine
module Condvar = Hinfs_sim.Condvar
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Blockdev = Hinfs_blockdev.Blockdev
module Lru = Hinfs_structures.Lru

type page = {
  block : int;
  data : Bytes.t;
  mutable valid : bool; (* fetch completed; concurrent getters poll this *)
  mutable writing : bool; (* device write in flight *)
  mutable dirty : bool;
  mutable pinned : int; (* >0: not evictable (in use / journaled) *)
  mutable dirtied_at : int64;
  (* Dirty byte run since the page was last clean ([d_min >= d_max] when
     clean). Writeback passes it down so a logging tier can absorb a
     sub-block record instead of the whole page. *)
  mutable d_min : int;
  mutable d_max : int;
}

type t = {
  bdev : Blockdev.t;
  capacity : int; (* max pages *)
  pages : (int, page) Lru.t;
  mutable dirty_count : int;
  flusher_wakeup : Condvar.t;
  mutable flusher_running : bool;
  mutable stop_flusher : bool;
  (* knobs (pdflush-like defaults) *)
  flush_interval : int64; (* periodic writeback period *)
  dirty_ratio : float; (* wake the flusher above this *)
  dirty_background_ratio : float; (* flusher cleans down to this *)
  (* statistics *)
  mutable hits : int;
  mutable misses : int;
  mutable foreground_writebacks : int;
}

let create ?(flush_interval = 5_000_000_000L) ?(dirty_ratio = 0.2)
    ?(dirty_background_ratio = 0.1) bdev ~capacity_pages =
  if capacity_pages < 8 then
    invalid_arg "Pagecache.create: capacity too small";
  {
    bdev;
    capacity = capacity_pages;
    pages = Lru.create ~initial_size:1024 ();
    dirty_count = 0;
    flusher_wakeup = Condvar.create (Device.engine (Blockdev.device bdev));
    flusher_running = false;
    stop_flusher = false;
    flush_interval;
    dirty_ratio;
    dirty_background_ratio;
    hits = 0;
    misses = 0;
    foreground_writebacks = 0;
  }

let block_size t = Blockdev.block_size t.bdev
let cached_pages t = Lru.length t.pages
let dirty_pages t = t.dirty_count
let hits t = t.hits
let misses t = t.misses
let foreground_writebacks t = t.foreground_writebacks

let charge_copy t cat len =
  if len > 0 then begin
    let config = Device.config (Blockdev.device t.bdev) in
    let lines =
      (len + config.Config.cacheline_size - 1) / config.Config.cacheline_size
    in
    let ns = lines * config.Config.dram_write_ns in
    Stats.add_time (Device.stats (Blockdev.device t.bdev)) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

let mark_clean t page =
  if page.dirty then begin
    page.dirty <- false;
    page.d_min <- Bytes.length page.data;
    page.d_max <- 0;
    t.dirty_count <- t.dirty_count - 1
  end

let extend_dirty page ~off ~len =
  if off < page.d_min then page.d_min <- off;
  if off + len > page.d_max then page.d_max <- off + len

let dirty_hint t page =
  if page.d_min <= 0 && page.d_max >= block_size t then None
  else if page.d_min < page.d_max then Some (page.d_min, page.d_max - page.d_min)
  else None

let mark_dirty t page =
  if not page.dirty then begin
    page.dirty <- true;
    page.dirtied_at <- Engine.now (Device.engine (Blockdev.device t.bdev));
    t.dirty_count <- t.dirty_count + 1;
    if
      t.flusher_running
      && float_of_int t.dirty_count
         > t.dirty_ratio *. float_of_int t.capacity
    then ignore (Condvar.signal t.flusher_wakeup)
  end

let writeback_page ?(background = false) t ~cat page =
  if page.dirty then begin
    (* Pin across the (yielding) device write so the page cannot be evicted,
       and flag the in-flight write so invalidation can wait it out. *)
    page.pinned <- page.pinned + 1;
    page.writing <- true;
    Fun.protect
      ~finally:(fun () ->
        page.writing <- false;
        page.pinned <- page.pinned - 1)
      (fun () ->
        Blockdev.write_block ~background ?dirty:(dirty_hint t page) t.bdev
          ~cat page.block ~src:page.data ~off:0);
    mark_clean t page
  end

(* Make room for one more page: evict the least-recent unpinned page,
   preferring clean ones; fall back to a foreground writeback. *)
let rec make_room t ~cat =
  if Lru.length t.pages >= t.capacity then begin
    match Lru.find_lru_matching t.pages (fun _ p -> p.pinned = 0 && not p.dirty)
    with
    | Some (block, _page) ->
      ignore (Lru.remove t.pages block);
      make_room t ~cat
    | None -> (
      match Lru.find_lru_matching t.pages (fun _ p -> p.pinned = 0) with
      | Some (block, page) ->
        t.foreground_writebacks <- t.foreground_writebacks + 1;
        (* Pin across the (yielding) writeback: a concurrent process may
           re-acquire this page meanwhile; only evict if it came back
           unpinned and still clean. *)
        page.pinned <- page.pinned + 1;
        writeback_page t ~cat page;
        page.pinned <- page.pinned - 1;
        if page.pinned = 0 && not page.dirty then
          ignore (Lru.remove t.pages block);
        make_room t ~cat
      | None ->
        (* Everything is pinned: the cache is undersized for the working
           set of pinned pages. *)
        invalid_arg "Pagecache: all pages pinned, cannot evict")
  end

(* Get the page for [block], fetching it from the device on a miss. The
   page is returned pinned; the caller must [unpin]. *)
let get_page ?(fetch = true) t ~cat block =
  match Lru.find t.pages block with
  | Some page ->
    t.hits <- t.hits + 1;
    page.pinned <- page.pinned + 1;
    ignore (Lru.touch t.pages block);
    (* Another process may still be fetching this page: wait for the data
       to be valid before exposing it. *)
    while not page.valid do
      Proc.delay 200L
    done;
    page
  | None ->
    t.misses <- t.misses + 1;
    make_room t ~cat;
    let data = Bytes.make (block_size t) '\000' in
    let page =
      {
        block;
        data;
        valid = false;
        writing = false;
        dirty = false;
        pinned = 1;
        dirtied_at = 0L;
        d_min = block_size t;
        d_max = 0;
      }
    in
    (* Insert before fetching (the fetch yields) so concurrent getters
       share this page object instead of fetching their own copy; they
       poll [valid] above. The page is pinned, so it cannot be evicted
       while the fetch is in flight. *)
    Lru.add t.pages block page;
    (* A faulting fetch (media error) must not leave the never-valid page
       in the cache: concurrent getters would poll [valid] forever. Drop
       it and re-raise; a later retry fetches afresh. *)
    (try if fetch then Blockdev.read_block t.bdev ~cat block ~into:data ~off:0
     with e ->
       page.pinned <- 0;
       ignore (Lru.remove t.pages block);
       raise e);
    page.valid <- true;
    page

let unpin page =
  if page.pinned <= 0 then invalid_arg "Pagecache.unpin: not pinned";
  page.pinned <- page.pinned - 1

let pin page = page.pinned <- page.pinned + 1

(* Copy out of the cache into a user buffer (second copy of the read
   path). *)
let read t ~cat ~block ~off ~len ~into ~into_off =
  if off < 0 || len < 0 || off + len > block_size t then
    invalid_arg "Pagecache.read: bad range";
  let page = get_page t ~cat block in
  Fun.protect
    ~finally:(fun () -> unpin page)
    (fun () ->
      charge_copy t cat len;
      Bytes.blit page.data off into into_off len)

(* Copy from a user buffer into the cache (first copy of the write path).
   A partial write to an uncached block fetches it first
   (fetch-before-write); a full-block write can skip the fetch. *)
let write t ~cat ~block ~off ~src ~src_off ~len =
  if off < 0 || len < 0 || off + len > block_size t then
    invalid_arg "Pagecache.write: bad range";
  let full = off = 0 && len = block_size t in
  let page = get_page ~fetch:(not full) t ~cat block in
  Fun.protect
    ~finally:(fun () -> unpin page)
    (fun () ->
      charge_copy t cat len;
      Bytes.blit src src_off page.data off len;
      extend_dirty page ~off ~len;
      mark_dirty t page)

(* In-place read-modify-write of a cached block (metadata update). [f] must
   not yield. *)
let modify t ~cat ~block f =
  let page = get_page t ~cat block in
  Fun.protect
    ~finally:(fun () -> unpin page)
    (fun () ->
      let result = f page.data in
      (* [f] may have touched anything: the whole block is the dirty run. *)
      extend_dirty page ~off:0 ~len:(block_size t);
      mark_dirty t page;
      result)

(* Read-only access to a cached block's bytes. [f] must not yield. *)
let with_page t ~cat ~block f =
  let page = get_page t ~cat block in
  Fun.protect ~finally:(fun () -> unpin page) (fun () -> f page.data)

(* Zero-initialise a block in cache without fetching (fresh allocation). *)
let zero_block t ~cat ~block =
  let page = get_page ~fetch:false t ~cat block in
  Fun.protect
    ~finally:(fun () -> unpin page)
    (fun () ->
      Bytes.fill page.data 0 (block_size t) '\000';
      extend_dirty page ~off:0 ~len:(block_size t);
      mark_dirty t page)

(* Look up a cached page without fetching. *)
let find t block = Lru.find t.pages block

let flush_block ?background t ~cat block =
  match Lru.find t.pages block with
  | None -> ()
  | Some page -> writeback_page ?background t ~cat page

let flush_blocks ?background t ~cat blocks =
  List.iter (fun b -> flush_block ?background t ~cat b) blocks

let flush_all ?background t ~cat =
  let dirty = ref [] in
  Lru.iter t.pages (fun _ page -> if page.dirty then dirty := page :: !dirty);
  List.iter (fun page -> writeback_page ?background t ~cat page) !dirty

(* Drop a block from the cache without writing it back (its file was
   deleted). Waits out in-flight device writes only — an in-flight
   writeback must not land after the block is freed and reallocated.
   Longer-lived pins (journaled metadata) are fine to drop: the caller is
   responsible for forgetting the block from its journal first. *)
let invalidate t block =
  (match Lru.find t.pages block with
  | Some page ->
    while page.writing do
      Proc.delay 500L
    done;
    mark_clean t page;
    ignore (Lru.remove t.pages block)
  | None -> ());
  ()

(* pdflush-like daemon: periodic writeback plus dirty-ratio response. *)
let start_flusher t =
  if t.flusher_running then invalid_arg "Pagecache: flusher already running";
  t.flusher_running <- true;
  Proc.spawn ~name:"pdflush" (fun () ->
      let rec loop () =
        if not t.stop_flusher then begin
          ignore (Condvar.wait_timeout t.flusher_wakeup ~timeout:t.flush_interval);
          if not t.stop_flusher then begin
            let target =
              int_of_float (t.dirty_background_ratio *. float_of_int t.capacity)
            in
            (* Oldest-dirtied first. *)
            let dirty = ref [] in
            Lru.iter t.pages (fun _ page ->
                if page.dirty then dirty := page :: !dirty);
            let ordered =
              List.sort (fun a b -> Int64.compare a.dirtied_at b.dirtied_at)
                !dirty
            in
            let rec clean pages =
              match pages with
              | [] -> ()
              | page :: rest ->
                if t.dirty_count > target then begin
                  writeback_page ~background:true t ~cat:Stats.Other page;
                  clean rest
                end
            in
            clean ordered;
            loop ()
          end
        end
      in
      loop ())

let stop_flusher t =
  t.stop_flusher <- true;
  ignore (Condvar.broadcast t.flusher_wakeup)
