(* On-line metadata scrubber: walk the device's poisoned cachelines and
   repair what redundancy allows.

   The repair ladder per region:

   - superblock copies: rewrite both from the surviving copy (mount already
     picks the good one, so rewriting the current geometry heals either);
   - journal: zero the line — recovery treats unreadable records as
     untrusted and a zeroed slot is simply empty;
   - inode table: a free slot is zeroed; a poisoned in-use slot has no
     redundant copy and is unrecoverable;
   - data region: a free block's line is zeroed (it would heal on the next
     allocation's write anyway); an allocated index block is unrecoverable
     (the block tree below it is unreachable); an allocated data block is
     left poisoned — reads there raise EIO, which is data loss but not a
     structural fault.

   Every heal and every loss is attributed to the shard whose journal
   sub-region / inode range / data range holds the address, so a sharded
   mount degrades only the shard that owns an unrecoverable finding (the
   superblock and epoch record belong to the mount domain). Passing
   [?shard] scopes the walk to one shard's regions — the online repair
   daemon scrubs the quarantined shard in isolation without touching
   siblings' poison budgets.

   All repairs go through [Device.poke_flushed], the untimed
   reliable-store path that heals poison at the fault model's store hook
   *and* is visible to the persistence recorder, so crash enumeration
   covers a crash in the middle of a scrub. *)

module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Allocator = Hinfs_nvmm.Allocator
module Stats = Hinfs_stats.Stats
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Fs_ctx = Hinfs_pmfs.Fs_ctx
module Block_tree = Hinfs_pmfs.Block_tree

type report = {
  sb_repairs : int;
  journal_repairs : int;
  itable_repairs : int;
  free_repairs : int;
  data_lost_lines : int;
  unrecoverable : string list;
  repairs_by_shard : int array;  (* heals landing in each shard's ranges *)
  lost_by_shard : int array;  (* data lines lost per shard *)
  remaining_poison : int;  (* poisoned lines left after the scrub pass *)
}

let repairs r =
  r.sb_repairs + r.journal_repairs + r.itable_repairs + r.free_repairs

let clean r = r.unrecoverable = []

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>scrub: %d repair(s) (sb %d, journal %d, itable %d, free %d), %d \
     data line(s) lost%a@]"
    (repairs r) r.sb_repairs r.journal_repairs r.itable_repairs r.free_repairs
    r.data_lost_lines
    (Fmt.list ~sep:(Fmt.any "") (fun ppf v ->
         Fmt.pf ppf "@,  unrecoverable: %s" v))
    r.unrecoverable

let run ?shard fs =
  let ctx = Pmfs.ctx fs in
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let stats = Device.stats device in
  let bs = geo.Layout.block_size in
  let ls = (Device.config device).Config.cacheline_size in
  let nshards = geo.Layout.shards in
  let zero_line = Bytes.make ls '\000' in
  let sb_repairs = ref 0
  and journal_repairs = ref 0
  and itable_repairs = ref 0
  and free_repairs = ref 0
  and data_lost = ref 0
  and unrecoverable = ref [] in
  let repairs_by_shard = Array.make nshards 0 in
  let lost_by_shard = Array.make nshards 0 in
  let note_shard arr addr =
    match Pmfs.shard_of_addr fs addr with
    | Some s -> arr.(s) <- arr.(s) + 1
    | None -> ()
  in
  let heal counter addr =
    Device.poke_flushed device ~addr ~src:zero_line ~off:0 ~len:ls;
    Device.fence_untimed device;
    Stats.add_scrub_repair stats;
    note_shard repairs_by_shard addr;
    incr counter
  in
  (* Scoped runs only look at (and only degrade) one shard's regions. *)
  let in_scope addr =
    match shard with
    | None -> true
    | Some s -> Pmfs.shard_of_addr fs addr = Some s
  in
  (* Index blocks are metadata living in the data region; build the set up
     front so poisoned lines there can be told apart from plain data. *)
  let index_blocks = Hashtbl.create 64 in
  for ino = 1 to geo.Layout.inode_count do
    if Layout.Inode.in_use device geo ino then
      try
        Block_tree.iter_index_nodes ctx ~ino (fun block ->
            Hashtbl.replace index_blocks block ino)
      with _ -> ()
  done;
  (* Superblock copies first: a bad copy is rewritten from the good one
     (both, in fact — write_superblock refreshes primary and replica).
     Mount-scoped, so skipped on single-shard repair runs. *)
  let sb_poisoned addr = Device.verify_range device ~addr ~len:bs <> [] in
  if
    shard = None
    && (sb_poisoned 0 || sb_poisoned (geo.Layout.sb_replica * bs))
  then begin
    Layout.write_superblock device geo ~clean:false;
    Stats.add_scrub_repair stats;
    incr sb_repairs
  end;
  let addrs =
    List.filter in_scope
      (Device.verify_range device ~addr:0 ~len:(geo.Layout.total_blocks * bs))
  in
  List.iter
    (fun addr ->
      let block = addr / bs in
      if block = 0 || block = geo.Layout.sb_replica then
        (* Still poisoned after the rewrite: should not happen (poke
           heals), but record rather than loop. *)
        unrecoverable :=
          (None, Fmt.str "superblock copy at %#x" addr) :: !unrecoverable
      else if
        block >= geo.Layout.journal_start
        && block < geo.Layout.journal_start + geo.Layout.journal_blocks
      then heal journal_repairs addr
      else if block = Layout.epoch_block geo then begin
        (* Re-persist the epoch record from the runtime watermark rather
           than zeroing: a zeroed record would orphan a cross-shard commit
           whose journals are not yet checkpointed. *)
        Hinfs_journal.Epoch.heal (Pmfs.epoch fs);
        Stats.add_scrub_repair stats;
        incr journal_repairs
      end
      else if
        block >= geo.Layout.itable_start
        && block < geo.Layout.itable_start + geo.Layout.itable_blocks
      then begin
        let ino =
          ((addr - (geo.Layout.itable_start * bs)) / Layout.inode_size) + 1
        in
        if
          ino >= 1 && ino <= geo.Layout.inode_count
          && Layout.Inode.in_use device geo ino
        then
          unrecoverable :=
            ( Some (Layout.shard_of_ino geo ino),
              Fmt.str "in-use inode %d at %#x" ino addr )
            :: !unrecoverable
        else heal itable_repairs addr
      end
      else if Hashtbl.mem index_blocks block then
        unrecoverable :=
          ( Some (Layout.shard_of_block geo block),
            Fmt.str "index block %d of inode %d at %#x" block
              (Hashtbl.find index_blocks block)
              addr )
          :: !unrecoverable
      else if Fs_ctx.block_is_allocated ctx block then begin
        (* Allocated data: no redundant copy. Leave the poison in place so
           reads surface EIO instead of silently returning zeros. *)
        note_shard lost_by_shard addr;
        incr data_lost
      end
      else heal free_repairs addr)
    addrs;
  let unrecoverable = List.rev !unrecoverable in
  (* Degrade the owning fault domain, not the fleet: a shard-attributable
     unrecoverable finding takes down that shard only. *)
  List.iter
    (fun (owner, what) ->
      let reason = Fmt.str "scrub: unrecoverable %s" what in
      match owner with
      | Some s -> Pmfs.degrade_shard fs s reason
      | None -> Pmfs.degrade fs reason)
    unrecoverable;
  let remaining_poison =
    List.length
      (List.filter in_scope
         (Device.verify_range device ~addr:0
            ~len:(geo.Layout.total_blocks * bs)))
  in
  {
    sb_repairs = !sb_repairs;
    journal_repairs = !journal_repairs;
    itable_repairs = !itable_repairs;
    free_repairs = !free_repairs;
    data_lost_lines = !data_lost;
    unrecoverable = List.map snd unrecoverable;
    repairs_by_shard;
    lost_by_shard;
    remaining_poison;
  }
