(* Invariant checkers for the on-NVMM PMFS layout (which is also the
   persistent layout under HiNFS).

   Run against a freshly mounted file system — typically one mounted from a
   crash image after log recovery — and return a list of human-readable
   violations; an empty list means the image is consistent. The checks
   mirror a classical fsck pass:

   - journal sanity: no valid undo entries survive recovery;
   - inode sanity: kinds, sizes, link counts, block counts;
   - block accounting: every reachable data/index block is inside the data
     region and claimed by exactly one inode; the rebuilt allocator agrees
     with the reachable set;
   - directory well-formedness: dirent names in range, targets live and
     in-range, dirent references consistent with link counts.

   All inspection is untimed (peeks), so this can run outside any measured
   simulation window. *)

module Device = Hinfs_nvmm.Device
module Allocator = Hinfs_nvmm.Allocator
module Log = Hinfs_journal.Cacheline_log
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Fs_ctx = Hinfs_pmfs.Fs_ctx
module Block_tree = Hinfs_pmfs.Block_tree

let dirent_size = 64
let max_name_len = 55

(* Per-shard breakdown (Layout v3 partitions the journal region and the
   allocator ranges; one entry per shard, in shard order). *)
type shard_report = {
  journal_entries : int;
      (* valid journal entries left in this shard's journal sub-region —
         zero after recovery / clean unmount *)
  shard_leaked_blocks : int; (* leaked blocks in this shard's data range *)
  shard_leaked_inodes : int; (* leaked inodes in this shard's inode range *)
}

type report = {
  inodes_checked : int;
  blocks_claimed : int;
  leaked_blocks : int;
      (* blocks the live allocator holds as used beyond the reachable set:
         an aborted operation failed to return an allocation *)
  leaked_inodes : int;
      (* inode slots the live allocator holds beyond the in-use set *)
  poisoned_data_lines : int;
  shard_reports : shard_report array;
  violations : string list;
}

let ok report = report.violations = []

let pp_shards ppf r =
  if Array.length r.shard_reports > 1 then
    Array.iteri
      (fun s sr ->
        Fmt.pf ppf "@,  shard %d: %d journal entr(ies), %d leaked block(s), \
                    %d leaked inode(s)"
          s sr.journal_entries sr.shard_leaked_blocks sr.shard_leaked_inodes)
      r.shard_reports

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "@[<v>fsck clean: %d inodes, %d blocks%a%a@]" r.inodes_checked
      r.blocks_claimed
      (fun ppf n ->
        if n > 0 then Fmt.pf ppf " (%d poisoned data line(s) pending EIO)" n)
      r.poisoned_data_lines pp_shards r
  else
    Fmt.pf ppf "@[<v>fsck: %d violation(s) (%d inodes, %d blocks):@,%a%a@]"
      (List.length r.violations)
      r.inodes_checked r.blocks_claimed
      Fmt.(list ~sep:cut (fun ppf v -> Fmt.pf ppf "  - %s" v))
      r.violations pp_shards r

(* Raw dirent scan over one directory block: validates the on-media bytes
   before trusting them (Dir's own parser assumes well-formed entries). *)
let scan_dirent_block device ~geo ~dir ~block ~add ~entry =
  let bs = geo.Layout.block_size in
  let raw = Device.peek_persistent device ~addr:(block * bs) ~len:bs in
  for slot = 0 to (bs / dirent_size) - 1 do
    let base = slot * dirent_size in
    let ino = Int32.to_int (Bytes.get_int32_le raw base) in
    if ino <> 0 then begin
      let name_len = Bytes.get_uint16_le raw (base + 4) in
      if name_len = 0 || name_len > max_name_len then
        add
          (Fmt.str "dir %d: dirent block %d slot %d has bad name length %d"
             dir block slot name_len)
      else begin
        let name = Bytes.sub_string raw (base + 6) name_len in
        entry ~name ~target:ino
      end
    end
  done

let check_pmfs fs =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let ctx = Pmfs.ctx fs in
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let nshards = Fs_ctx.shard_count ctx in
  (* 1. Journal sanity: recovery (or clean unmount) must leave no valid
     entries behind — anything else means a committed-but-uncheckpointed or
     half-rolled-back transaction escaped. Live transactions of the mounted
     instance would also show up here, so run this on a fresh mount. Each
     shard's journal sub-region is checked separately. *)
  let shard_journal_entries =
    Array.init nshards (fun s ->
        let first_block, blocks = Layout.journal_region geo s in
        Log.count_valid_entries device ~first_block ~blocks)
  in
  let stale = Array.fold_left ( + ) 0 shard_journal_entries in
  if stale > 0 then begin
    add (Fmt.str "journal: %d valid entr(ies) present after recovery" stale);
    if nshards > 1 then
      Array.iteri
        (fun s n ->
          if n > 0 then
            add
              (Fmt.str "journal shard %d: %d valid entr(ies) in its region" s
                 n))
        shard_journal_entries
  end;
  (* 2. Root inode. *)
  let root = Layout.root_ino in
  if not (Layout.Inode.in_use device geo root) then
    add "root inode not in use"
  else if Layout.Inode.kind device geo root <> Layout.Inode.kind_directory
  then add "root inode is not a directory";
  (* 3. Per-inode walk: kinds, sizes, reachable blocks, dirents. *)
  let owner = Hashtbl.create 256 in (* data/index block -> owning inode *)
  let dirent_refs = Hashtbl.create 256 in (* target ino -> reference count *)
  let inodes_checked = ref 0 in
  let claim ino what block =
    if block < geo.Layout.data_start || block >= geo.Layout.data_end then
      add
        (Fmt.str "inode %d: %s block %d outside data region [%d, %d)" ino
           what block geo.Layout.data_start geo.Layout.data_end)
    else
      match Hashtbl.find_opt owner block with
      | Some (other, _) ->
        add (Fmt.str "block %d claimed by inodes %d and %d" block other ino)
      | None -> Hashtbl.replace owner block (ino, what)
  in
  for ino = 1 to geo.Layout.inode_count do
    if Layout.Inode.in_use device geo ino then begin
      incr inodes_checked;
      let kind = Layout.Inode.kind device geo ino in
      let size = Layout.Inode.size device geo ino in
      if
        kind <> Layout.Inode.kind_regular
        && kind <> Layout.Inode.kind_directory
      then add (Fmt.str "inode %d: invalid kind %d" ino kind);
      if size < 0 then add (Fmt.str "inode %d: negative size %d" ino size);
      (try
         let bs = geo.Layout.block_size in
         let reachable = ref 0 in
         Block_tree.iter_blocks ctx ~ino (fun fblock block ->
             incr reachable;
             claim ino "data" block;
             if size >= 0 && fblock * bs >= size then
               add
                 (Fmt.str "inode %d: data block at file block %d beyond EOF \
                           (size %d)"
                    ino fblock size));
         Block_tree.iter_index_nodes ctx ~ino (fun block ->
             claim ino "index" block);
         let recorded = Layout.Inode.blocks device geo ino in
         if recorded <> !reachable then
           add
             (Fmt.str "inode %d: blocks field %d but %d reachable data blocks"
                ino recorded !reachable)
       with e ->
         add
           (Fmt.str "inode %d: block tree walk failed: %s" ino
              (Printexc.to_string e)));
      if kind = Layout.Inode.kind_directory then begin
        if size mod geo.Layout.block_size <> 0 then
          add
            (Fmt.str "dir %d: size %d not a multiple of the block size" ino
               size);
        try
          Block_tree.iter_blocks ctx ~ino (fun _fblock block ->
              scan_dirent_block device ~geo ~dir:ino ~block ~add
                ~entry:(fun ~name ~target ->
                  if target < 1 || target > geo.Layout.inode_count then
                    add
                      (Fmt.str "dir %d: entry %S targets invalid inode %d"
                         ino name target)
                  else begin
                    if not (Layout.Inode.in_use device geo target) then
                      add
                        (Fmt.str
                           "dir %d: entry %S dangles to free inode %d" ino
                           name target);
                    let n =
                      Option.value ~default:0
                        (Hashtbl.find_opt dirent_refs target)
                    in
                    Hashtbl.replace dirent_refs target (n + 1)
                  end))
        with e ->
          add
            (Fmt.str "dir %d: dirent walk failed: %s" ino
               (Printexc.to_string e))
      end
    end
  done;
  (* 4. Link counts vs. dirent references; orphan detection. *)
  for ino = 1 to geo.Layout.inode_count do
    if Layout.Inode.in_use device geo ino then begin
      let kind = Layout.Inode.kind device geo ino in
      let links = Layout.Inode.links device geo ino in
      let refs =
        Option.value ~default:0 (Hashtbl.find_opt dirent_refs ino)
      in
      if kind = Layout.Inode.kind_directory then begin
        if links <> 2 then
          add (Fmt.str "dir %d: link count %d (expected 2)" ino links);
        if ino = Layout.root_ino then begin
          if refs <> 0 then
            add (Fmt.str "root referenced by %d dirent(s)" refs)
        end
        else if refs <> 1 then
          add
            (Fmt.str "dir %d: referenced by %d dirent(s) (expected 1)" ino
               refs)
      end
      else begin
        if links <> refs then
          add
            (Fmt.str "inode %d: link count %d but %d dirent reference(s)" ino
               links refs);
        if refs = 0 then add (Fmt.str "inode %d: orphan (no dirent)" ino)
      end
    end
  done;
  (* 5. Allocator cross-check: the bitmaps must cover exactly the
     reachable set. On a fresh mount the allocators are rebuilt from the
     live trees, so this is vacuous; on a *live* mount after failed
     operations it is the leak detector — every block or inode an aborted
     operation failed to return shows up as used-but-unreachable. The
     allocators are range-partitioned by shard, so the accounting runs per
     range: a leak is attributed to the shard whose range owns the number,
     regardless of which shard's operation leaked it. *)
  let claimed = Hashtbl.length owner in
  let claimed_in = Array.make nshards 0 in
  Hashtbl.iter
    (fun block _ ->
      let s = Fs_ctx.shard_of_block ctx block in
      claimed_in.(s) <- claimed_in.(s) + 1)
    owner;
  let inuse_in = Array.make nshards 0 in
  for ino = 1 to geo.Layout.inode_count do
    if Layout.Inode.in_use device geo ino then begin
      let s = Fs_ctx.shard_of_ino ctx ino in
      inuse_in.(s) <- inuse_in.(s) + 1
    end
  done;
  let leaked_blocks = ref 0 and leaked_inodes = ref 0 in
  let shard_leaks =
    Array.init nshards (fun s ->
        let sh = Fs_ctx.shard ctx s in
        let used_b = Allocator.used_blocks sh.Fs_ctx.balloc in
        let used_i = Allocator.used_blocks sh.Fs_ctx.ialloc in
        let lb = max 0 (used_b - claimed_in.(s)) in
        let li = max 0 (used_i - inuse_in.(s)) in
        leaked_blocks := !leaked_blocks + lb;
        leaked_inodes := !leaked_inodes + li;
        if used_b <> claimed_in.(s) then begin
          let first, count = Layout.data_range geo s in
          add
            (Fmt.str
               "block allocator shard %d [%d, %d): %d blocks marked used, %d \
                reachable"
               s first (first + count) used_b claimed_in.(s))
        end;
        if used_i <> inuse_in.(s) then begin
          let first, count = Layout.inode_range geo s in
          add
            (Fmt.str
               "inode allocator shard %d [%d, %d): %d inodes marked used, %d \
                in use"
               s first (first + count) used_i inuse_in.(s))
        end;
        (lb, li))
  in
  Hashtbl.iter
    (fun block _ ->
      let sh = Fs_ctx.shard ctx (Fs_ctx.shard_of_block ctx block) in
      if
        Allocator.contains sh.Fs_ctx.balloc block
        && not (Allocator.is_allocated sh.Fs_ctx.balloc block)
      then
        add (Fmt.str "block allocator: reachable block %d marked free" block))
    owner;
  let shard_reports =
    Array.init nshards (fun s ->
        let lb, li = shard_leaks.(s) in
        {
          journal_entries = shard_journal_entries.(s);
          shard_leaked_blocks = lb;
          shard_leaked_inodes = li;
        })
  in
  (* 6. Media: poison on metadata (superblock copies, journal, in-use
     inode slots, index blocks) is a violation — the tree cannot be
     trusted. Poison on reachable data is only counted: those lines raise
     EIO on read but the structure stays consistent, so a post-scrub fsck
     can still pass. Poison on free lines heals on the next write. *)
  let poisoned_data = ref 0 in
  (match Device.fault_model device with
  | None -> ()
  | Some _ ->
    let bs = geo.Layout.block_size in
    let addrs =
      Device.verify_range device ~addr:0 ~len:(geo.Layout.total_blocks * bs)
    in
    List.iter
      (fun addr ->
        let block = addr / bs in
        if block = 0 || block = geo.Layout.sb_replica then
          add (Fmt.str "media: superblock copy poisoned at %#x" addr)
        else if
          block >= geo.Layout.journal_start
          && block < geo.Layout.journal_start + geo.Layout.journal_blocks
        then begin
          let s =
            (block - geo.Layout.journal_start)
            / (geo.Layout.journal_blocks / geo.Layout.shards)
          in
          add (Fmt.str "media: journal line (shard %d) poisoned at %#x" s addr)
        end
        else if block = Layout.epoch_block geo then
          add (Fmt.str "media: epoch record block poisoned at %#x" addr)
        else if
          block >= geo.Layout.itable_start
          && block < geo.Layout.itable_start + geo.Layout.itable_blocks
        then begin
          let ino =
            ((addr - (geo.Layout.itable_start * bs)) / Layout.inode_size) + 1
          in
          if
            ino >= 1 && ino <= geo.Layout.inode_count
            && Layout.Inode.in_use device geo ino
          then
            add (Fmt.str "media: in-use inode %d poisoned at %#x" ino addr)
        end
        else
          match Hashtbl.find_opt owner block with
          | Some (ino, "index") ->
            add
              (Fmt.str "media: index block %d of inode %d poisoned at %#x"
                 block ino addr)
          | Some _ -> incr poisoned_data
          | None -> ())
      addrs);
  {
    inodes_checked = !inodes_checked;
    blocks_claimed = claimed;
    leaked_blocks = !leaked_blocks;
    leaked_inodes = !leaked_inodes;
    poisoned_data_lines = !poisoned_data;
    shard_reports;
    violations = List.rev !violations;
  }

(* Violations only (convenience for callers composing with other oracles). *)
let check fs = (check_pmfs fs).violations

(* --- CoW mode ---

   The cowfs invariants are refcount-shaped rather than ownership-shaped:
   a block may legitimately be reachable from several roots (the working
   tree plus any number of snapshots pinning it), but the persistent
   refcount must equal the number of roots that reach it — exactly. A
   block reachable from two live roots whose refcount says 1 would be
   freed while still referenced; a refcount above the reach count is a
   committed-block leak. Within any single root every block must be
   reached exactly once (trees, not DAGs).

   The refcount comparison is only meaningful on a quiesced instance
   (no open CoW window): the fixpoint that reconciles the persistent
   table runs at commit. *)

module Cowfs = Hinfs_pmfs.Cowfs

let check_cow fs =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let device = Cowfs.device fs in
  let total = Cowfs.total_blocks fs in
  let bs = Cowfs.block_size fs in
  let reach = Array.make total 0 in
  let kind_of = Hashtbl.create 256 in
  let claim_root root_name imap extra =
    let visited = Hashtbl.create 256 in
    let claim block kind =
      if block <= 0 || block >= total then
        add
          (Fmt.str "%s: %s block %d outside pool [1, %d)" root_name kind block
             total)
      else begin
        if Hashtbl.mem visited block then
          add
            (Fmt.str "%s: block %d reached twice within one root" root_name
               block);
        Hashtbl.replace visited block ();
        reach.(block) <- reach.(block) + 1;
        if not (Hashtbl.mem kind_of block) then
          Hashtbl.replace kind_of block kind
      end
    in
    Cowfs.iter_tree_at fs ~imap (fun ~block ~kind ->
        claim block
          (match kind with
          | `Imap -> "imap"
          | `Ipage -> "ipage"
          | `Index -> "index"
          | `Data -> "data"));
    List.iter (fun b -> claim b "meta") extra
  in
  claim_root "working root" (Cowfs.imap_root fs) (Cowfs.meta_blocks fs);
  List.iter
    (fun (id, imap) -> claim_root (Fmt.str "snapshot %d" id) imap [])
    (Cowfs.snapshot_roots fs);
  let reachable = Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 reach in
  (* Persistent refcounts vs. root reachability. *)
  let quiesced = Cowfs.shadow_count fs = 0 in
  let leaked_blocks = ref 0 in
  if quiesced then
    for b = 1 to total - 1 do
      let stored = Cowfs.refcount fs b in
      if stored <> reach.(b) then
        if stored > 0 && reach.(b) = 0 then begin
          incr leaked_blocks;
          add
            (Fmt.str "block %d: committed leak (refcount %d, unreachable)" b
               stored)
        end
        else
          add
            (Fmt.str
               "block %d: refcount %d but reachable from %d live root(s)" b
               stored reach.(b))
    done
  else add "cow fsck on un-quiesced instance (open CoW window)";
  (* Allocator cross-check (live-mount leak detector). *)
  let used = Cowfs.used_blocks fs in
  let expected = reachable + Cowfs.shadow_count fs in
  if quiesced && used <> expected then
    add
      (Fmt.str "block allocator: %d blocks marked used, %d reachable" used
         expected);
  (* Working-tree namespace: root inode, dirent targets, link counts
     (dir links = 2 + subdirs; file links = dirent references). *)
  let imap = Cowfs.imap_root fs in
  let inode_count = Cowfs.inode_count fs in
  let inodes_checked = ref 0 in
  let dirent_refs = Hashtbl.create 64 in
  let subdirs = Hashtbl.create 64 in
  if not (Cowfs.in_use_at fs ~imap Cowfs.root_ino) then
    add "root inode not in use"
  else if Cowfs.ikind_at fs ~imap Cowfs.root_ino <> Layout.Inode.kind_directory
  then add "root inode is not a directory";
  for ino = 1 to inode_count do
    if Cowfs.in_use_at fs ~imap ino then begin
      incr inodes_checked;
      let kind = Cowfs.ikind_at fs ~imap ino in
      if
        kind <> Layout.Inode.kind_regular
        && kind <> Layout.Inode.kind_directory
      then add (Fmt.str "inode %d: invalid kind %d" ino kind);
      if kind = Layout.Inode.kind_directory then begin
        if Cowfs.isize_at fs ~imap ino mod bs <> 0 then
          add (Fmt.str "dir %d: size not a multiple of the block size" ino);
        List.iter
          (fun (name, target) ->
            if String.length name = 0 || String.length name > max_name_len
            then add (Fmt.str "dir %d: entry with bad name length" ino);
            if target < 1 || target > inode_count then
              add
                (Fmt.str "dir %d: entry %S targets invalid inode %d" ino name
                   target)
            else begin
              if not (Cowfs.in_use_at fs ~imap target) then
                add
                  (Fmt.str "dir %d: entry %S dangles to free inode %d" ino
                     name target);
              let n =
                Option.value ~default:0 (Hashtbl.find_opt dirent_refs target)
              in
              Hashtbl.replace dirent_refs target (n + 1);
              if Cowfs.ikind_at fs ~imap target = Layout.Inode.kind_directory
              then
                Hashtbl.replace subdirs ino
                  (Option.value ~default:0 (Hashtbl.find_opt subdirs ino) + 1)
            end)
          (Cowfs.dir_list_at fs ~imap ~dir:ino)
      end
    end
  done;
  for ino = 1 to inode_count do
    if Cowfs.in_use_at fs ~imap ino then begin
      let kind = Cowfs.ikind_at fs ~imap ino in
      let links =
        match Cowfs.inode_addr_at fs ~imap ino with
        | Some ia ->
          Device.get_u16 device (ia + Layout.Inode.links_off)
        | None -> 0
      in
      let refs = Option.value ~default:0 (Hashtbl.find_opt dirent_refs ino) in
      if kind = Layout.Inode.kind_directory then begin
        let expect =
          2 + Option.value ~default:0 (Hashtbl.find_opt subdirs ino)
        in
        if links <> expect then
          add (Fmt.str "dir %d: link count %d (expected %d)" ino links expect);
        if ino = Cowfs.root_ino then begin
          if refs <> 0 then
            add (Fmt.str "root referenced by %d dirent(s)" refs)
        end
        else if refs <> 1 then
          add
            (Fmt.str "dir %d: referenced by %d dirent(s) (expected 1)" ino
               refs)
      end
      else begin
        if links <> refs then
          add
            (Fmt.str "inode %d: link count %d but %d dirent reference(s)" ino
               links refs);
        if refs = 0 then add (Fmt.str "inode %d: orphan (no dirent)" ino)
      end
    end
  done;
  let leaked_inodes =
    if quiesced then
      max 0 (Allocator.used_blocks (Cowfs.ialloc fs) - !inodes_checked)
    else 0
  in
  if leaked_inodes > 0 then
    add
      (Fmt.str "inode allocator: %d inodes marked used, %d in use"
         (Allocator.used_blocks (Cowfs.ialloc fs))
         !inodes_checked);
  (* Media poison: the root-descriptor region and any reachable metadata
     block are trust-critical; reachable data poison is only counted. *)
  let poisoned_data = ref 0 in
  (match Device.fault_model device with
  | None -> ()
  | Some _ ->
    List.iter
      (fun addr ->
        let block = addr / bs in
        if block = 0 then
          add (Fmt.str "media: root descriptor region poisoned at %#x" addr)
        else
          match Hashtbl.find_opt kind_of block with
          | Some "data" -> incr poisoned_data
          | Some kind ->
            add
              (Fmt.str "media: reachable %s block %d poisoned at %#x" kind
                 block addr)
          | None -> ())
      (Device.verify_range device ~addr:0 ~len:(total * bs)));
  {
    inodes_checked = !inodes_checked;
    blocks_claimed = reachable;
    leaked_blocks = !leaked_blocks;
    leaked_inodes;
    poisoned_data_lines = !poisoned_data;
    shard_reports = [||]; (* cowfs hot state is not sharded *)
    violations = List.rev !violations;
  }

let cow_violations fs = (check_cow fs).violations
