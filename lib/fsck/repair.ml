(* Online self-healing: the background repair daemon for per-shard fault
   domains.

   A shard that degrades at runtime (uncorrectable read, dropped recovery
   records, patrol-detected poison) is taken through

     Degraded --quarantine--> Quarantined --start_repair--> Repairing
                                                               |
        Healthy <--------------- readmit (success) ------------+
        Degraded <-------------- fail_repair (give up this try)+

   while its siblings keep serving read-write traffic. One repair pass:

   1. quarantine the shard — foreground ops now fail fast (reads EIO,
      writes EROFS) and the mount's quarantine listener drops the shard's
      DRAM state (HiNFS aborts pending transactions and evicts buffers);
   2. wait for the shard journal's live transactions to drain (bounded:
      if writers are wedged mid-transaction the pass is retried at the
      next patrol tick rather than blocking the daemon);
   3. re-run journal recovery over the shard's sub-region against the
      current epoch watermark: committed-but-uncheckpointed transactions
      are preserved by the wipe-order invariants, uncommitted ones are
      rolled back, untrusted (poisoned / CRC-failing) records dropped —
      then re-arm the live log handle over the now-empty region;
   4. heal the epoch record (re-persist the runtime watermark) and scrub
      the shard's regions in isolation — journal poison is zeroed, free
      slots are zeroed, allocated-data poison is left in place (EIO on
      read is data loss, not a structural fault);
   5. fsck the mount and re-admit the shard only if the image is
      structurally clean and the shard's journal sub-region is empty.

   Every repair write goes through the untimed reliable-store path
   (poke_flushed / fence_untimed), so the persistence recorder sees it:
   crash images taken mid-repair are legal and must mount.

   The daemon is rate-limited on the virtual clock ([interval_ns] between
   patrol passes) and gives up on a shard after [max_attempts] failed
   repairs, leaving it Degraded for an operator ([hinfs_cli scrub] /
   offline fsck).

   Unsharded mounts have no quarantinable domain — the Mount domain never
   passes Degraded, because there is no sibling to keep serving — but a
   Degraded mount is not degraded-forever: the patrol heals mount-scoped
   poison (superblock, epoch record) in place, and when the whole mount
   is the fault domain (shards = 1) it runs the same drain / journal
   re-replay / scrub / fsck pass *in place* against the degraded mount
   (reads keep being served, mutations keep failing EROFS) and re-admits
   it once the image verifies clean. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Condvar = Hinfs_sim.Condvar
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Fault = Hinfs_nvmm.Fault
module Stats = Hinfs_stats.Stats
module Log = Hinfs_journal.Cacheline_log
module Epoch = Hinfs_journal.Epoch
module Pmfs = Hinfs_pmfs.Pmfs
module Health = Hinfs_pmfs.Health
module Layout = Hinfs_pmfs.Layout
module Fs_ctx = Hinfs_pmfs.Fs_ctx
module Obs = Hinfs_obs.Obs

type config = {
  interval_ns : int;  (** virtual time between patrol passes *)
  max_attempts : int;  (** failed repairs before giving a shard up *)
  drain_polls : int;  (** bounded waits for live txns to drain *)
  drain_poll_ns : int;  (** virtual time per drain poll *)
}

let default_config =
  {
    interval_ns = 2_000_000;  (* 2 ms: patrol often, repair promptly *)
    max_attempts = 3;
    drain_polls = 50;
    drain_poll_ns = 100_000;
  }

type t = {
  fs : Pmfs.t;
  cfg : config;
  cv : Condvar.t;
  mutable stop : bool;
  mutable running : bool;
  mutable repairs_done : int;  (* successful re-admissions *)
  mutable repairs_failed : int;
}

let repairs_done t = t.repairs_done
let repairs_failed t = t.repairs_failed

(* --- patrol: find damage the foreground path has not tripped over --- *)

(* Poison in a shard's journal sub-region or inode/data ranges is latent
   damage (journals are only read at recovery): degrade the owner now so
   repair starts before a crash forces recovery to drop records. *)
let patrol_detect fs =
  let device = Pmfs.device fs in
  match Device.fault_model device with
  | None -> ()
  | Some fm ->
    let ls = (Device.config device).Config.cacheline_size in
    List.iter
      (fun line ->
        let addr = line * ls in
        match Pmfs.shard_of_addr fs addr with
        | Some s when Pmfs.shard_count fs > 1 ->
          (* Data-region poison over an allocated block is data loss the
             scrubber will not heal; quarantining the shard for it would
             be all cost and no cure. Journal / itable poison is
             structural: flag it. *)
          let geo = Pmfs.geometry fs in
          let block = addr / geo.Layout.block_size in
          if block < geo.Layout.data_start then
            Pmfs.degrade_shard fs s
              (Fmt.str "patrol: poisoned metadata line at %#x" addr)
        | _ -> ())
      (Fault.poisoned_lines fm)

(* Mount-scoped damage is healed in place (no quarantine possible):
   superblock copies rewritten, epoch record re-persisted. *)
let heal_mount_scope fs =
  let device = Pmfs.device fs in
  let geo = Pmfs.geometry fs in
  let bs = geo.Layout.block_size in
  let sb_poisoned addr = Device.verify_range device ~addr ~len:bs <> [] in
  if sb_poisoned 0 || sb_poisoned (geo.Layout.sb_replica * bs) then begin
    Layout.write_superblock device geo ~clean:false;
    Stats.add_scrub_repair (Device.stats device)
  end;
  let epoch_addr = Layout.epoch_block geo * bs in
  if Device.verify_range device ~addr:epoch_addr ~len:bs <> [] then begin
    Epoch.heal (Pmfs.epoch fs);
    Stats.add_scrub_repair (Device.stats device)
  end

(* --- one shard repair pass --- *)

let drain_live_txns t log =
  let rec poll n =
    if Log.live_txns log = 0 then true
    else if n = 0 then false
    else begin
      Proc.delay_int t.cfg.drain_poll_ns;
      poll (n - 1)
    end
  in
  poll t.cfg.drain_polls

let repair_shard t s =
  let fs = t.fs in
  let health = Pmfs.health fs in
  let stats = Device.stats (Pmfs.device fs) in
  Health.quarantine health s;
  Stats.add_quarantine stats;
  Obs.instant Obs.Ev_quarantine ~a:s
    ~b:(Health.state_code (Health.shard_state health s));
  let log = (Fs_ctx.shard (Pmfs.ctx fs) s).Fs_ctx.log in
  if not (drain_live_txns t log) then
    (* Writers wedged mid-transaction: stay Quarantined, retry at the next
       patrol tick. Not counted as a failed attempt — nothing was tried. *)
    ()
  else begin
    Health.start_repair health s;
    let t0 = Engine.now (Device.engine (Pmfs.device fs)) in
    let ok =
      try
        let device = Pmfs.device fs in
        let geo = Pmfs.geometry fs in
        (* 3. Re-replay / wipe the shard's journal sub-region. The live
           handle is re-armed over the now-empty region afterwards. *)
        let first_block, blocks = Layout.journal_region geo s in
        let committed_epoch = Epoch.committed (Pmfs.epoch fs) in
        let r = Log.recover device ~committed_epoch ~first_block ~blocks () in
        ignore r.Log.rolled_back;
        Log.reset_runtime log;
        (* 4. Epoch watermark + shard-scoped scrub. *)
        Epoch.heal (Pmfs.epoch fs);
        let sreport = Scrub.run ~shard:s fs in
        (* 5. Verify in isolation before re-admitting: the image must be
           structurally clean and the shard journal empty. Residual
           allocated-data poison is tolerated (per-line EIO, not a
           structural fault). *)
        let freport = Fsck.check_pmfs fs in
        let shard_clean =
          Fsck.ok freport
          && freport.Fsck.shard_reports.(s).Fsck.journal_entries = 0
        in
        Scrub.clean sreport && shard_clean
      with _ -> false
    in
    Obs.span_since Obs.Health_repair ~t0;
    if ok then begin
      let attempts = Health.repair_attempts health s in
      Health.readmit health s;
      Stats.add_shard_repair stats ~ok:true;
      t.repairs_done <- t.repairs_done + 1;
      Obs.instant Obs.Ev_readmit ~a:s ~b:attempts
    end
    else begin
      Health.fail_repair health s "repair failed; shard still degraded";
      Stats.add_shard_repair stats ~ok:false;
      t.repairs_failed <- t.repairs_failed + 1
    end
  end

(* In-place repair of a degraded unsharded mount (shards = 1): the Mount
   domain is the only fault domain there is, so there is no quarantine —
   reads keep being served while the pass runs, mutations keep failing
   EROFS, and re-admission is Degraded -> Healthy once the image checks
   out. The pass itself is the shard recipe over the single journal
   region. Residual allocated-data poison is tolerated exactly as in
   [repair_shard]: a per-line EIO is data loss, not a structural fault
   (it may re-degrade the mount on the next read, triggering another
   bounded pass). *)
let repair_mount t =
  let fs = t.fs in
  let health = Pmfs.health fs in
  let stats = Device.stats (Pmfs.device fs) in
  let log = (Fs_ctx.shard (Pmfs.ctx fs) 0).Fs_ctx.log in
  if drain_live_txns t log then begin
    let t0 = Engine.now (Device.engine (Pmfs.device fs)) in
    let ok =
      try
        let device = Pmfs.device fs in
        let geo = Pmfs.geometry fs in
        let first_block, blocks = Layout.journal_region geo 0 in
        let committed_epoch = Epoch.committed (Pmfs.epoch fs) in
        let r = Log.recover device ~committed_epoch ~first_block ~blocks () in
        ignore r.Log.rolled_back;
        Log.reset_runtime log;
        Epoch.heal (Pmfs.epoch fs);
        let sreport = Scrub.run fs in
        let freport = Fsck.check_pmfs fs in
        Scrub.clean sreport
        && Fsck.ok freport
        && freport.Fsck.shard_reports.(0).Fsck.journal_entries = 0
      with _ -> false
    in
    Obs.span_since Obs.Health_repair ~t0;
    if ok then begin
      Health.readmit_mount health;
      Stats.add_shard_repair stats ~ok:true;
      t.repairs_done <- t.repairs_done + 1;
      Obs.instant Obs.Ev_readmit ~a:(-1)
        ~b:(Health.mount_repair_attempts health)
    end
    else begin
      Health.fail_mount_repair health "repair failed; mount still degraded";
      Stats.add_shard_repair stats ~ok:false;
      t.repairs_failed <- t.repairs_failed + 1
    end
  end

let pass t =
  let fs = t.fs in
  let health = Pmfs.health fs in
  patrol_detect fs;
  heal_mount_scope fs;
  if Pmfs.shard_count fs > 1 then
    for s = 0 to Pmfs.shard_count fs - 1 do
      if not t.stop then begin
        match Health.shard_state health s with
        | Health.Degraded _
          when Health.repair_attempts health s < t.cfg.max_attempts ->
          repair_shard t s
        | Health.Quarantined _ ->
          (* A previous pass quarantined but could not drain; try again. *)
          repair_shard t s
        | _ -> ()
      end
    done
  else begin
    match Health.mount_state health with
    | Health.Degraded _
      when Health.mount_repair_attempts health < t.cfg.max_attempts ->
      repair_mount t
    | _ -> ()
  end

(* --- daemon lifecycle --- *)

let create ?(config = default_config) fs =
  {
    fs;
    cfg = config;
    cv = Condvar.create (Device.engine (Pmfs.device fs));
    stop = false;
    running = false;
    repairs_done = 0;
    repairs_failed = 0;
  }

(* Spawn the daemon (call from inside a simulation process). *)
let start t =
  if t.running then invalid_arg "Repair: daemon already running";
  t.running <- true;
  Proc.spawn ~name:"shard-repair" (fun () ->
      let rec loop () =
        if not t.stop then begin
          ignore
            (Condvar.wait_timeout t.cv
               ~timeout:(Int64.of_int t.cfg.interval_ns));
          if not t.stop then pass t;
          loop ()
        end
      in
      loop ())

(* Wake the daemon now (tests; foreground EIO handlers). *)
let kick t = ignore (Condvar.broadcast t.cv)

let stop t =
  if t.running then begin
    t.stop <- true;
    t.running <- false;
    ignore (Condvar.broadcast t.cv)
  end

(* One synchronous pass, for callers that want repair without the daemon
   (CLI, direct tests). Must run inside a simulation process. *)
let run_once ?(config = default_config) fs =
  let t = create ~config fs in
  pass t;
  (t.repairs_done, t.repairs_failed)
