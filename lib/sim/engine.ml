(* Discrete-event simulation engine.

   Processes are cooperative fibers implemented with OCaml 5 effect handlers.
   A process performs [Delay]/[Suspend] effects to give up control; the
   engine resumes it from the event queue when its wakeup time arrives (or
   when some other process wakes it explicitly through a {!waker}).

   The engine is strictly single-threaded and deterministic: events with the
   same virtual timestamp fire in the order they were scheduled. *)

type waker_state = Waiting | Fired

type 'a waker = {
  mutable state : waker_state;
  mutable resume : 'a -> unit;
}

type _ Effect.t +=
  | Now : int64 Effect.t
  | Delay : int64 -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

type t = {
  mutable now : int64;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable fatal : (exn * Printexc.raw_backtrace) option;
  mutable live_processes : int;
  (* Process identity: pids are assigned in spawn order, which is itself
     deterministic, so pids are stable across identical runs. Pid 0 is the
     engine / main context. *)
  mutable next_pid : int;
  mutable cur_pid : int;
  names : (int, string) Hashtbl.t;
  mutable on_spawn : int -> string -> unit;
  mutable on_switch : int -> unit;
}

exception Stopped

let no_spawn (_ : int) (_ : string) = ()
let no_switch (_ : int) = ()

let create () =
  let names = Hashtbl.create 16 in
  Hashtbl.replace names 0 "engine";
  {
    now = 0L;
    seq = 0;
    events = Heap.create ();
    fatal = None;
    live_processes = 0;
    next_pid = 1;
    cur_pid = 0;
    names;
    on_spawn = no_spawn;
    on_switch = no_switch;
  }

let now t = t.now

let live_processes t = t.live_processes

let current_pid t = t.cur_pid

let proc_name t pid =
  match Hashtbl.find_opt t.names pid with
  | Some n -> n
  | None -> "process"

let set_proc_hooks t ~on_spawn ~on_switch =
  t.on_spawn <- on_spawn;
  t.on_switch <- on_switch

let clear_proc_hooks t =
  t.on_spawn <- no_spawn;
  t.on_switch <- no_switch

(* Restore [pid] as the running process. Called at every point where a fiber
   (re)gains control, so [current_pid] is accurate from inside any process. *)
let set_current t pid =
  if t.cur_pid <> pid then begin
    t.cur_pid <- pid;
    t.on_switch pid
  end

let at t time thunk =
  if Int64.compare time t.now < 0 then
    invalid_arg "Engine.at: time is in the past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.add t.events ~time ~seq thunk

let after t delay thunk = at t (Int64.add t.now delay) thunk

let wake w v =
  match w.state with
  | Fired -> false
  | Waiting ->
    w.state <- Fired;
    w.resume v;
    true

let is_fired w = w.state = Fired

(* Run [f] as a fiber under the engine's effect handler. Any effect the
   fiber performs that suspends it schedules the continuation back through
   the event queue. *)
let rec exec : t -> string -> (unit -> unit) -> unit =
 fun t name f ->
  let open Effect.Deep in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Hashtbl.replace t.names pid name;
  t.on_spawn pid name;
  t.live_processes <- t.live_processes + 1;
  set_current t pid;
  match_with f ()
    {
      retc = (fun () -> t.live_processes <- t.live_processes - 1);
      exnc =
        (fun e ->
          t.live_processes <- t.live_processes - 1;
          let bt = Printexc.get_raw_backtrace () in
          (match e with
          | Stopped -> ()
          | _ -> if t.fatal = None then t.fatal <- Some (e, bt)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now ->
            Some (fun (k : (a, unit) continuation) -> continue k t.now)
          | Delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                if Int64.compare d 0L < 0 then
                  discontinue k (Invalid_argument "Engine: negative delay")
                else
                  after t d (fun () ->
                      set_current t pid;
                      resume_or_kill t k))
          | Spawn (child_name, body) ->
            Some
              (fun (k : (a, unit) continuation) ->
                at t t.now (fun () -> exec t child_name body);
                continue k ())
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w =
                  {
                    state = Waiting;
                    resume =
                      (fun v ->
                        at t t.now (fun () ->
                            set_current t pid;
                            resume_value t k v));
                  }
                in
                register w)
          | _ -> None);
    }

and resume_or_kill : t -> (unit, unit) Effect.Deep.continuation -> unit =
 fun t k ->
  if t.fatal <> None then Effect.Deep.discontinue k Stopped
  else Effect.Deep.continue k ()

and resume_value : type a. t -> (a, unit) Effect.Deep.continuation -> a -> unit
    =
 fun t k v ->
  if t.fatal <> None then Effect.Deep.discontinue k Stopped
  else Effect.Deep.continue k v

let spawn t ?(name = "process") f = at t t.now (fun () -> exec t name f)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some { time; payload = thunk; _ } ->
    t.now <- time;
    (* Plain [at] thunks run in engine context; process resumptions restore
       their own pid immediately. *)
    set_current t 0;
    thunk ();
    true

let run ?until t =
  let continue_run () =
    if t.fatal <> None then false
    else
      match until with
      | None -> true
      | Some limit -> (
        match Heap.peek t.events with
        | None -> true
        | Some { time; _ } -> Int64.compare time limit <= 0)
  in
  let rec loop () = if continue_run () && step t then loop () in
  loop ();
  (match until with
  | Some limit when t.fatal = None && Int64.compare t.now limit < 0 ->
    (* Even if the queue drained early, the clock advances to the horizon so
       that rate computations use the requested window. *)
    t.now <- limit
  | _ -> ());
  match t.fatal with
  | None -> ()
  | Some (e, bt) ->
    t.fatal <- None;
    Printexc.raise_with_backtrace e bt
