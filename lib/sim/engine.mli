(** Discrete-event simulation engine.

    The engine advances a virtual clock (nanoseconds, [int64]) and runs
    cooperative processes implemented with OCaml 5 effect handlers. All
    execution is single-threaded and deterministic: events scheduled for the
    same virtual time fire in scheduling order.

    Processes use the {!Proc} module for the in-process API ([delay],
    [now], ...); this module is the engine-side view. *)

type t

type 'a waker
(** A one-shot resumption handle for a suspended process. Waking an
    already-fired waker is a no-op, which makes timed waits race-free. *)

type _ Effect.t +=
  | Now : int64 Effect.t
  | Delay : int64 -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

exception Stopped
(** Raised inside processes to unwind them when the simulation aborts after a
    fatal error in another process. *)

val create : unit -> t

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val live_processes : t -> int
(** Number of processes that have started and not yet returned. *)

val current_pid : t -> int
(** Id of the process currently running (0 for the engine / main context).
    Pids are assigned in spawn order, which is deterministic, so pids are
    stable across identical runs. *)

val proc_name : t -> int -> string
(** Name the process was spawned with ("engine" for pid 0, "process" for
    unknown pids). *)

val set_proc_hooks :
  t -> on_spawn:(int -> string -> unit) -> on_switch:(int -> unit) -> unit
(** Install observability hooks: [on_spawn pid name] fires when a process
    starts executing, [on_switch pid] whenever control transfers to a
    different process. Hooks must not perform engine effects. *)

val clear_proc_hooks : t -> unit

val at : t -> int64 -> (unit -> unit) -> unit
(** [at t time thunk] schedules [thunk] to run at virtual [time].
    @raise Invalid_argument if [time] is in the past. *)

val after : t -> int64 -> (unit -> unit) -> unit
(** [after t d thunk] is [at t (now t + d) thunk]. *)

val wake : 'a waker -> 'a -> bool
(** [wake w v] resumes the suspended process with value [v]. Returns [false]
    (and does nothing) if the waker already fired. *)

val is_fired : 'a waker -> bool

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Schedule a new process to start at the current virtual time. *)

val step : t -> bool
(** Run the single earliest event. Returns [false] if the queue is empty. *)

val run : ?until:int64 -> t -> unit
(** Run events until the queue drains, or past the [until] horizon. If the
    horizon is given, the clock is advanced to it even when the queue drains
    early. The first uncaught exception from any process aborts the run and
    is re-raised here. *)
