(* Measurement sink for one experiment run.

   The figures of the paper are computed from these accumulators:
   - Fig 1:  time by {Read_access, Write_access, Other}
   - Fig 2:  fsync_bytes vs user_bytes_written
   - Fig 6:  benefit-model prediction accuracy
   - Fig 9b: nvmm_bytes_written (foreground + background)
   - Fig 12: time by op class {read, write, unlink, fsync}
   All times are virtual nanoseconds. *)

type category =
  | Read_access (* copying data to the user buffer *)
  | Write_access (* copying data from the user buffer to DRAM/NVMM *)
  | Journal (* journaling (undo log / jbd) work *)
  | Block_layer (* generic block layer overhead *)
  | Other (* syscall entry, allocation, index maintenance, ... *)

let categories = [ Read_access; Write_access; Journal; Block_layer; Other ]

let category_name = function
  | Read_access -> "read-access"
  | Write_access -> "write-access"
  | Journal -> "journal"
  | Block_layer -> "block-layer"
  | Other -> "other"

type op_class = Read_op | Write_op | Unlink_op | Fsync_op | Meta_op

let op_classes = [ Read_op; Write_op; Unlink_op; Fsync_op; Meta_op ]

let op_class_name = function
  | Read_op -> "read"
  | Write_op -> "write"
  | Unlink_op -> "unlink"
  | Fsync_op -> "fsync"
  | Meta_op -> "meta"

type t = {
  mutable time_by_category : int64 array; (* indexed by category *)
  mutable time_by_op : int64 array; (* indexed by op_class *)
  mutable ops_completed : int;
  mutable ops_by_class : int array;
  (* byte accounting *)
  mutable user_bytes_read : int64;
  mutable user_bytes_written : int64;
  mutable fsync_bytes : int64; (* user bytes persisted eagerly *)
  mutable nvmm_bytes_written : int64; (* total bytes stored to NVMM *)
  mutable nvmm_bytes_written_bg : int64; (* subset written by daemons *)
  mutable nvmm_bytes_read : int64;
  (* HiNFS buffer behaviour *)
  mutable buffer_write_hits : int;
  mutable buffer_write_misses : int;
  mutable buffer_read_hits : int;
  mutable buffer_read_misses : int;
  mutable coalesced_cacheline_writes : int64;
  mutable writeback_stalls : int;
  mutable evictions : int;
  mutable dead_block_drops : int; (* buffered blocks freed by unlink *)
  (* benefit model accuracy (Fig 6) *)
  mutable bbm_predictions : int;
  mutable bbm_correct : int;
  mutable eager_writes : int;
  mutable lazy_writes : int;
  (* persistence instruction counts, indexed by category *)
  mutable clflush_issued : int array; (* cachelines covered by clflush *)
  mutable clflush_dirty : int array; (* of those, lines actually written *)
  mutable mfences : int array;
  (* media-fault accounting *)
  mutable media_faults_transient : int; (* transient read faults delivered *)
  mutable media_faults_poison : int; (* loads that hit a poisoned line *)
  mutable media_retries : int; (* read retries after transient faults *)
  mutable scrub_repairs : int; (* lines/structures repaired by the scrubber *)
  mutable crc_mismatches : int; (* metadata checksum failures detected *)
  (* mount-time recovery accounting *)
  mutable recoveries : int; (* unclean mounts that ran log recovery *)
  mutable recovered_txns : int; (* uncommitted transactions rolled back *)
  mutable recovery_dropped : int; (* journal entries dropped as unusable *)
  (* fault-domain health accounting *)
  mutable shard_quarantines : int; (* shards claimed for isolation *)
  mutable shard_repairs : int; (* online repairs completed successfully *)
  mutable shard_repair_failures : int; (* repair attempts that failed *)
  (* block-tier request accounting (NVMMBD) *)
  mutable block_read_requests : int;
  mutable block_write_requests : int;
  mutable block_absorbed_writes : int; (* absorbed by a cache tier, no bio *)
}

let category_index = function
  | Read_access -> 0
  | Write_access -> 1
  | Journal -> 2
  | Block_layer -> 3
  | Other -> 4

let op_index = function
  | Read_op -> 0
  | Write_op -> 1
  | Unlink_op -> 2
  | Fsync_op -> 3
  | Meta_op -> 4

let create () =
  {
    time_by_category = Array.make 5 0L;
    time_by_op = Array.make 5 0L;
    ops_completed = 0;
    ops_by_class = Array.make 5 0;
    user_bytes_read = 0L;
    user_bytes_written = 0L;
    fsync_bytes = 0L;
    nvmm_bytes_written = 0L;
    nvmm_bytes_written_bg = 0L;
    nvmm_bytes_read = 0L;
    buffer_write_hits = 0;
    buffer_write_misses = 0;
    buffer_read_hits = 0;
    buffer_read_misses = 0;
    coalesced_cacheline_writes = 0L;
    writeback_stalls = 0;
    evictions = 0;
    dead_block_drops = 0;
    bbm_predictions = 0;
    bbm_correct = 0;
    eager_writes = 0;
    lazy_writes = 0;
    clflush_issued = Array.make 5 0;
    clflush_dirty = Array.make 5 0;
    mfences = Array.make 5 0;
    media_faults_transient = 0;
    media_faults_poison = 0;
    media_retries = 0;
    scrub_repairs = 0;
    crc_mismatches = 0;
    recoveries = 0;
    recovered_txns = 0;
    recovery_dropped = 0;
    shard_quarantines = 0;
    shard_repairs = 0;
    shard_repair_failures = 0;
    block_read_requests = 0;
    block_write_requests = 0;
    block_absorbed_writes = 0;
  }

let reset t =
  let fresh = create () in
  t.time_by_category <- fresh.time_by_category;
  t.time_by_op <- fresh.time_by_op;
  t.ops_completed <- 0;
  t.ops_by_class <- fresh.ops_by_class;
  t.user_bytes_read <- 0L;
  t.user_bytes_written <- 0L;
  t.fsync_bytes <- 0L;
  t.nvmm_bytes_written <- 0L;
  t.nvmm_bytes_written_bg <- 0L;
  t.nvmm_bytes_read <- 0L;
  t.buffer_write_hits <- 0;
  t.buffer_write_misses <- 0;
  t.buffer_read_hits <- 0;
  t.buffer_read_misses <- 0;
  t.coalesced_cacheline_writes <- 0L;
  t.writeback_stalls <- 0;
  t.evictions <- 0;
  t.dead_block_drops <- 0;
  t.bbm_predictions <- 0;
  t.bbm_correct <- 0;
  t.eager_writes <- 0;
  t.lazy_writes <- 0;
  t.clflush_issued <- fresh.clflush_issued;
  t.clflush_dirty <- fresh.clflush_dirty;
  t.mfences <- fresh.mfences;
  t.media_faults_transient <- 0;
  t.media_faults_poison <- 0;
  t.media_retries <- 0;
  t.scrub_repairs <- 0;
  t.crc_mismatches <- 0;
  t.recoveries <- 0;
  t.recovered_txns <- 0;
  t.recovery_dropped <- 0;
  t.shard_quarantines <- 0;
  t.shard_repairs <- 0;
  t.shard_repair_failures <- 0;
  t.block_read_requests <- 0;
  t.block_write_requests <- 0;
  t.block_absorbed_writes <- 0

(* --- time --- *)

let add_time t cat ns =
  let i = category_index cat in
  t.time_by_category.(i) <- Int64.add t.time_by_category.(i) ns

let time t cat = t.time_by_category.(category_index cat)

let total_time t = Array.fold_left Int64.add 0L t.time_by_category

let add_op_time t op ns =
  let i = op_index op in
  t.time_by_op.(i) <- Int64.add t.time_by_op.(i) ns

let op_time t op = t.time_by_op.(op_index op)

let total_op_time t = Array.fold_left Int64.add 0L t.time_by_op

(* --- ops --- *)

let op_done ?op_class t =
  t.ops_completed <- t.ops_completed + 1;
  match op_class with
  | None -> ()
  | Some op ->
    let i = op_index op in
    t.ops_by_class.(i) <- t.ops_by_class.(i) + 1

let ops_completed t = t.ops_completed
let ops_of_class t op = t.ops_by_class.(op_index op)

let throughput_ops_per_sec t ~elapsed_ns =
  if Int64.compare elapsed_ns 0L <= 0 then 0.0
  else float_of_int t.ops_completed /. (Int64.to_float elapsed_ns /. 1e9)

(* --- bytes --- *)

let add_user_read t n = t.user_bytes_read <- Int64.add t.user_bytes_read (Int64.of_int n)
let add_user_written t n = t.user_bytes_written <- Int64.add t.user_bytes_written (Int64.of_int n)
let add_fsync_bytes t n = t.fsync_bytes <- Int64.add t.fsync_bytes (Int64.of_int n)

let add_nvmm_written ?(background = false) t n =
  t.nvmm_bytes_written <- Int64.add t.nvmm_bytes_written (Int64.of_int n);
  if background then
    t.nvmm_bytes_written_bg <- Int64.add t.nvmm_bytes_written_bg (Int64.of_int n)

let add_nvmm_read t n = t.nvmm_bytes_read <- Int64.add t.nvmm_bytes_read (Int64.of_int n)

let user_bytes_read t = t.user_bytes_read
let user_bytes_written t = t.user_bytes_written
let fsync_bytes t = t.fsync_bytes
let nvmm_bytes_written t = t.nvmm_bytes_written
let nvmm_bytes_written_bg t = t.nvmm_bytes_written_bg
let nvmm_bytes_read t = t.nvmm_bytes_read

let fsync_byte_ratio t =
  if Int64.compare t.user_bytes_written 0L <= 0 then 0.0
  else Int64.to_float t.fsync_bytes /. Int64.to_float t.user_bytes_written

(* --- buffer behaviour --- *)

let buffer_write_hit t = t.buffer_write_hits <- t.buffer_write_hits + 1
let buffer_write_miss t = t.buffer_write_misses <- t.buffer_write_misses + 1
let buffer_read_hit t = t.buffer_read_hits <- t.buffer_read_hits + 1
let buffer_read_miss t = t.buffer_read_misses <- t.buffer_read_misses + 1
let writeback_stall t = t.writeback_stalls <- t.writeback_stalls + 1
let eviction t = t.evictions <- t.evictions + 1
let dead_block_drop t n = t.dead_block_drops <- t.dead_block_drops + n

let add_coalesced_cachelines t n =
  t.coalesced_cacheline_writes <-
    Int64.add t.coalesced_cacheline_writes (Int64.of_int n)

let buffer_write_hits t = t.buffer_write_hits
let buffer_write_misses t = t.buffer_write_misses
let buffer_read_hits t = t.buffer_read_hits
let buffer_read_misses t = t.buffer_read_misses
let writeback_stalls t = t.writeback_stalls
let evictions t = t.evictions
let dead_block_drops t = t.dead_block_drops
let coalesced_cacheline_writes t = t.coalesced_cacheline_writes

let buffer_write_hit_ratio t =
  let total = t.buffer_write_hits + t.buffer_write_misses in
  if total = 0 then 0.0 else float_of_int t.buffer_write_hits /. float_of_int total

(* --- benefit model --- *)

let bbm_prediction t ~correct =
  t.bbm_predictions <- t.bbm_predictions + 1;
  if correct then t.bbm_correct <- t.bbm_correct + 1

let bbm_accuracy t =
  if t.bbm_predictions = 0 then 1.0
  else float_of_int t.bbm_correct /. float_of_int t.bbm_predictions

let bbm_predictions t = t.bbm_predictions

let eager_write t = t.eager_writes <- t.eager_writes + 1
let lazy_write t = t.lazy_writes <- t.lazy_writes + 1
let eager_writes t = t.eager_writes
let lazy_writes t = t.lazy_writes

(* --- persistence instructions --- *)

let add_clflush t cat ~lines ~dirty =
  let i = category_index cat in
  t.clflush_issued.(i) <- t.clflush_issued.(i) + lines;
  t.clflush_dirty.(i) <- t.clflush_dirty.(i) + dirty

let add_mfence t cat =
  let i = category_index cat in
  t.mfences.(i) <- t.mfences.(i) + 1

(* --- media faults --- *)

let add_media_fault t ~transient =
  if transient then
    t.media_faults_transient <- t.media_faults_transient + 1
  else t.media_faults_poison <- t.media_faults_poison + 1

let add_media_retry t = t.media_retries <- t.media_retries + 1
let add_scrub_repair ?(n = 1) t = t.scrub_repairs <- t.scrub_repairs + n
let add_crc_mismatch t = t.crc_mismatches <- t.crc_mismatches + 1

let media_faults_transient t = t.media_faults_transient
let media_faults_poison t = t.media_faults_poison
let total_media_faults t = t.media_faults_transient + t.media_faults_poison
let media_retries t = t.media_retries
let scrub_repairs t = t.scrub_repairs
let crc_mismatches t = t.crc_mismatches

(* --- mount-time recovery --- *)

let add_recovery t ~rolled_back ~dropped =
  t.recoveries <- t.recoveries + 1;
  t.recovered_txns <- t.recovered_txns + rolled_back;
  t.recovery_dropped <- t.recovery_dropped + dropped

let recoveries t = t.recoveries
let recovered_txns t = t.recovered_txns
let recovery_dropped t = t.recovery_dropped

(* --- fault-domain health --- *)

let add_quarantine t = t.shard_quarantines <- t.shard_quarantines + 1

let add_shard_repair t ~ok =
  if ok then t.shard_repairs <- t.shard_repairs + 1
  else t.shard_repair_failures <- t.shard_repair_failures + 1

let shard_quarantines t = t.shard_quarantines
let shard_repairs t = t.shard_repairs
let shard_repair_failures t = t.shard_repair_failures

(* --- block-tier requests --- *)

let add_block_read t = t.block_read_requests <- t.block_read_requests + 1
let add_block_write t = t.block_write_requests <- t.block_write_requests + 1

let add_block_absorbed t =
  t.block_absorbed_writes <- t.block_absorbed_writes + 1

let block_read_requests t = t.block_read_requests
let block_write_requests t = t.block_write_requests
let block_absorbed_writes t = t.block_absorbed_writes

let clflush_issued t cat = t.clflush_issued.(category_index cat)
let clflush_dirty t cat = t.clflush_dirty.(category_index cat)
let mfences t cat = t.mfences.(category_index cat)
let total_clflush_issued t = Array.fold_left ( + ) 0 t.clflush_issued
let total_clflush_dirty t = Array.fold_left ( + ) 0 t.clflush_dirty
let total_mfences t = Array.fold_left ( + ) 0 t.mfences

(* --- reporting --- *)

let pp_breakdown ppf t =
  let total = total_time t in
  let pct ns =
    if Int64.compare total 0L <= 0 then 0.0
    else 100.0 *. Int64.to_float ns /. Int64.to_float total
  in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun cat ->
      let ns = time t cat in
      Fmt.pf ppf "%-12s %12Ld ns  (%5.1f%%)@," (category_name cat) ns (pct ns))
    categories;
  Fmt.pf ppf "total        %12Ld ns@]" total
