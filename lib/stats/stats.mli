(** Measurement sink for one experiment run.

    All the paper's figures are computed from these accumulators. Times are
    virtual nanoseconds from the simulation clock. *)

type t

(** Where time was spent, following Fig. 1's taxonomy plus the extra
    software-stack categories the block-based baselines exercise. *)
type category =
  | Read_access  (** copying file data toward the user buffer *)
  | Write_access  (** copying user data toward DRAM/NVMM *)
  | Journal  (** journaling (undo log / jbd) work *)
  | Block_layer  (** generic block layer per-request overhead *)
  | Other  (** syscall entry, allocation, index maintenance *)

val categories : category list
val category_name : category -> string

(** Trace-replay op classes (Fig. 12). *)
type op_class = Read_op | Write_op | Unlink_op | Fsync_op | Meta_op

val op_classes : op_class list
val op_class_name : op_class -> string

val create : unit -> t
val reset : t -> unit

(** {1 Time} *)

val add_time : t -> category -> int64 -> unit
val time : t -> category -> int64
val total_time : t -> int64
val add_op_time : t -> op_class -> int64 -> unit
val op_time : t -> op_class -> int64
val total_op_time : t -> int64

(** {1 Operations} *)

val op_done : ?op_class:op_class -> t -> unit
val ops_completed : t -> int
val ops_of_class : t -> op_class -> int
val throughput_ops_per_sec : t -> elapsed_ns:int64 -> float

(** {1 Byte accounting} *)

val add_user_read : t -> int -> unit
val add_user_written : t -> int -> unit

val add_fsync_bytes : t -> int -> unit
(** User bytes that had to be persisted eagerly (synchronous or
    fsync-covered writes) — the numerator of Fig. 2. *)

val add_nvmm_written : ?background:bool -> t -> int -> unit
val add_nvmm_read : t -> int -> unit
val user_bytes_read : t -> int64
val user_bytes_written : t -> int64
val fsync_bytes : t -> int64
val nvmm_bytes_written : t -> int64
val nvmm_bytes_written_bg : t -> int64
val nvmm_bytes_read : t -> int64
val fsync_byte_ratio : t -> float

(** {1 Buffer behaviour (HiNFS)} *)

val buffer_write_hit : t -> unit
val buffer_write_miss : t -> unit
val buffer_read_hit : t -> unit
val buffer_read_miss : t -> unit
val writeback_stall : t -> unit
val eviction : t -> unit

val dead_block_drop : t -> int -> unit
(** Buffered dirty blocks dropped because their file was deleted before
    writeback — the short-lived-file win of §5.2.3. *)

val add_coalesced_cachelines : t -> int -> unit
val buffer_write_hits : t -> int
val buffer_write_misses : t -> int
val buffer_read_hits : t -> int
val buffer_read_misses : t -> int
val writeback_stalls : t -> int
val evictions : t -> int
val dead_block_drops : t -> int
val coalesced_cacheline_writes : t -> int64
val buffer_write_hit_ratio : t -> float

(** {1 Buffer Benefit Model accuracy (Fig. 6)} *)

val bbm_prediction : t -> correct:bool -> unit
val bbm_accuracy : t -> float
val bbm_predictions : t -> int
val eager_write : t -> unit
val lazy_write : t -> unit
val eager_writes : t -> int
val lazy_writes : t -> int

(** {1 Persistence instructions}

    Per-category clflush/mfence issue counts, so flush-heavy paths are
    visible in bench output. [lines] is the cachelines covered by the
    flush, [dirty] how many were actually written back. *)

val add_clflush : t -> category -> lines:int -> dirty:int -> unit
val add_mfence : t -> category -> unit
val clflush_issued : t -> category -> int
val clflush_dirty : t -> category -> int
val mfences : t -> category -> int
val total_clflush_issued : t -> int
val total_clflush_dirty : t -> int
val total_mfences : t -> int

(** {1 Media faults}

    Counters for the NVMM media-fault subsystem: faults delivered by the
    device's fault model, read retries after transient faults, scrubber
    repairs, and metadata checksum mismatches detected by recovery or the
    scrubber. *)

val add_media_fault : t -> transient:bool -> unit
val add_media_retry : t -> unit
val add_scrub_repair : ?n:int -> t -> unit
val add_crc_mismatch : t -> unit
val media_faults_transient : t -> int
val media_faults_poison : t -> int
val total_media_faults : t -> int
val media_retries : t -> int
val scrub_repairs : t -> int
val crc_mismatches : t -> int

(** {1 Mount-time recovery}

    Counters for undo-log recovery: how many unclean mounts ran recovery,
    how many uncommitted transactions they rolled back, and how many
    journal entries had to be dropped as unusable (CRC-damaged). *)

val add_recovery : t -> rolled_back:int -> dropped:int -> unit
val recoveries : t -> int
val recovered_txns : t -> int
val recovery_dropped : t -> int

(** {1 Fault-domain health}

    Counters for the per-shard health state machine: shards claimed for
    isolation by the repair daemon, and online repairs that completed or
    failed (a failed repair returns the shard to degraded for another
    attempt). *)

val add_quarantine : t -> unit
val add_shard_repair : t -> ok:bool -> unit
val shard_quarantines : t -> int
val shard_repairs : t -> int
val shard_repair_failures : t -> int

(** {1 Block-tier requests}

    Per-request counters for the NVMMBD block layer, so destage and
    journal traffic below a cache tier is observable like the NVMM
    persistence instructions are. An absorbed write is one a durability
    tier (lib/nvcache) swallowed before it became a block request. *)

val add_block_read : t -> unit
val add_block_write : t -> unit
val add_block_absorbed : t -> unit
val block_read_requests : t -> int
val block_write_requests : t -> int
val block_absorbed_writes : t -> int

val pp_breakdown : Format.formatter -> t -> unit
