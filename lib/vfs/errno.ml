(* File system error codes, POSIX-flavoured. *)

type t =
  | ENOENT
  | EEXIST
  | EISDIR
  | ENOTDIR
  | ENOSPC
  | EBADF
  | EINVAL
  | ENOTEMPTY
  | EFBIG
  | EROFS
  | EIO
  | ESTALE

exception Fs_error of t * string

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOSPC -> "ENOSPC"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EFBIG -> "EFBIG"
  | EROFS -> "EROFS"
  | EIO -> "EIO"
  | ESTALE -> "ESTALE"

let raise_error code fmt =
  Fmt.kstr (fun msg -> raise (Fs_error (code, msg))) fmt

let () =
  Printexc.register_printer (function
    | Fs_error (code, msg) ->
      Some (Printf.sprintf "Fs_error(%s, %s)" (to_string code) msg)
    | _ -> None)
