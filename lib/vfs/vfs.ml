(* VFS layer: path walking, file descriptors, per-inode locking, and the
   uniform [handle] record that workloads and benchmarks drive.

   Responsibilities split:
   - backends (PMFS, EXT2/4, HiNFS) implement inode-level operations;
   - this layer implements the syscall surface on top, charges the
     per-syscall software overhead ("Others" in Fig. 1), and does the
     fsync-byte accounting of Fig. 2.

   Locking discipline: a single namespace rwlock orders path walks against
   directory modifications; per-inode rwlocks order data operations (reads
   share, writes/truncate/fsync exclude). The namespace lock is always
   taken before any inode lock. *)

module Proc = Hinfs_sim.Proc
module Rwlock = Hinfs_sim.Rwlock
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Obs = Hinfs_obs.Obs

type fd = int

(* Whole-FS snapshot / transaction surface. Only CoW-capable backends
   provide one; everyone else leaves [handle.snap_ops] at [None]. Kept as
   a nested record (rather than more handle fields) so existing [{ h with
   ... }] functional updates in interposing tiers carry it untouched. *)
type snap_ops = {
  snapshot : unit -> int;  (** commit + register a snapshot; returns its id *)
  clone : int -> int;  (** new snapshot sharing an existing snapshot's tree *)
  rollback : int -> unit;  (** working tree := snapshot's tree (committed) *)
  snapshot_delete : int -> unit;  (** drop a snapshot; GC unshared blocks *)
  snapshots : unit -> (int * int64) list;  (** [(id, commit seq)] live list *)
  txn_begin : unit -> unit;
  txn_commit : unit -> unit;
  txn_abort : unit -> unit;
}

type handle = {
  fs_name : string;
  open_ : string -> Types.flags -> fd;
  close : fd -> unit;
  read : fd -> Bytes.t -> int -> int;
  pread : fd -> off:int -> Bytes.t -> int -> int;
  write : fd -> Bytes.t -> int -> int;
  pwrite : fd -> off:int -> Bytes.t -> int -> int;
  fsync : fd -> unit;
  fstat : fd -> Types.stat;
  seek : fd -> int -> unit;
  mkdir : string -> unit;
  rmdir : string -> unit;
  unlink : string -> unit;
  rename : string -> string -> unit;
  readdir : string -> (string * int) list;
  stat : string -> Types.stat;
  exists : string -> bool;
  truncate : string -> int -> unit;
  mmap : fd -> unit;
  munmap : fd -> unit;
  msync : fd -> unit;
  sync_all : unit -> unit;
  unmount : unit -> unit;
  snap_ops : snap_ops option;
}

module Make (B : Backend.S) = struct
  type open_file = {
    ino : int;
    flags : Types.flags;
    mutable pos : int;
    path : string;
  }

  type t = {
    fs : B.t;
    fds : (fd, open_file) Hashtbl.t;
    mutable next_fd : int;
    ns_lock : Rwlock.t;
    ino_locks : (int, Rwlock.t) Hashtbl.t;
    open_counts : (int, int) Hashtbl.t;
    dirty_since_sync : (int, int) Hashtbl.t; (* ino -> bytes written since
                                                the last fsync (Fig 2) *)
  }

  let create fs =
    {
      fs;
      fds = Hashtbl.create 64;
      next_fd = 3;
      ns_lock = Rwlock.create ();
      ino_locks = Hashtbl.create 64;
      open_counts = Hashtbl.create 64;
      dirty_since_sync = Hashtbl.create 64;
    }

  let stats t = Device.stats (B.device t.fs)
  let config t = Device.config (B.device t.fs)

  let charge_syscall t =
    let ns = (config t).Config.syscall_ns in
    Stats.add_time (stats t) Stats.Other (Int64.of_int ns);
    Proc.delay_int ns

  let ino_lock t ino =
    match Hashtbl.find_opt t.ino_locks ino with
    | Some lock -> lock
    | None ->
      let lock = Rwlock.create () in
      Hashtbl.replace t.ino_locks ino lock;
      lock

  let incr_open t ino =
    let n = Option.value ~default:0 (Hashtbl.find_opt t.open_counts ino) in
    Hashtbl.replace t.open_counts ino (n + 1)

  let decr_open t ino =
    match Hashtbl.find_opt t.open_counts ino with
    | None -> ()
    | Some 1 -> Hashtbl.remove t.open_counts ino
    | Some n -> Hashtbl.replace t.open_counts ino (n - 1)

  let is_open t ino = Hashtbl.mem t.open_counts ino

  let add_dirty t ino n =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.dirty_since_sync ino) in
    Hashtbl.replace t.dirty_since_sync ino (cur + n)

  let take_dirty t ino =
    match Hashtbl.find_opt t.dirty_since_sync ino with
    | None -> 0
    | Some n ->
      Hashtbl.remove t.dirty_since_sync ino;
      n

  let with_fd t fd f =
    match Hashtbl.find_opt t.fds fd with
    | None -> Errno.raise_error EBADF "fd %d is not open" fd
    | Some file -> f file

  (* Walk directory components from the root; requires the namespace lock
     (read or write) to be held. *)
  let walk_dir t components =
    List.fold_left
      (fun dir name ->
        match B.lookup t.fs ~dir name with
        | None -> Errno.raise_error ENOENT "no such directory %S" name
        | Some ino ->
          let st = B.stat t.fs ~ino in
          if st.Types.kind <> Types.Directory then
            Errno.raise_error ENOTDIR "%S is not a directory" name;
          ino)
      (B.root_ino t.fs) components

  let resolve t path =
    match List.rev (Path.split path) with
    | [] -> B.root_ino t.fs
    | last :: rev_dir -> (
      let dir = walk_dir t (List.rev rev_dir) in
      match B.lookup t.fs ~dir last with
      | Some ino -> ino
      | None -> Errno.raise_error ENOENT "%s does not exist" path)

  let resolve_parent t path =
    let dir_components, name = Path.split_dir path in
    (walk_dir t dir_components, name)

  (* --- syscalls --- *)

  let open_ t path (flags : Types.flags) =
    charge_syscall t;
    let do_open () =
      let dir, name = resolve_parent t path in
      let ino =
        match B.lookup t.fs ~dir name with
        | Some ino ->
          if flags.create && flags.excl then
            Errno.raise_error EEXIST "%s already exists" path;
          let st = B.stat t.fs ~ino in
          if st.Types.kind = Types.Directory && (flags.write || flags.truncate)
          then Errno.raise_error EISDIR "%s is a directory" path;
          if flags.truncate && st.Types.kind = Types.Regular then begin
            let lock = ino_lock t ino in
            Rwlock.with_write lock (fun () -> B.truncate t.fs ~ino ~size:0)
          end;
          ino
        | None ->
          if flags.create then B.create_file t.fs ~dir name
          else Errno.raise_error ENOENT "%s does not exist" path
      in
      ino
    in
    (* Creating/truncating opens take the namespace write lock so that the
       lookup+create pair is atomic. *)
    let ino =
      if flags.create then Rwlock.with_write t.ns_lock do_open
      else Rwlock.with_read t.ns_lock do_open
    in
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.fds fd { ino; flags; pos = 0; path };
    incr_open t ino;
    fd

  let close t fd =
    charge_syscall t;
    with_fd t fd (fun file ->
        Hashtbl.remove t.fds fd;
        decr_open t file.ino)

  let pread_ino t ~ino ~off buf len =
    if len < 0 || len > Bytes.length buf then
      Errno.raise_error EINVAL "bad read length %d" len;
    let lock = ino_lock t ino in
    Rwlock.with_read lock (fun () ->
        let n = B.read t.fs ~ino ~off ~len ~into:buf ~into_off:0 in
        Stats.add_user_read (stats t) n;
        n)

  let pread t fd ~off buf len =
    charge_syscall t;
    with_fd t fd (fun file ->
        if not file.flags.read then
          Errno.raise_error EBADF "fd %d not open for reading" fd;
        pread_ino t ~ino:file.ino ~off buf len)

  let read t fd buf len =
    charge_syscall t;
    with_fd t fd (fun file ->
        if not file.flags.read then
          Errno.raise_error EBADF "fd %d not open for reading" fd;
        let n = pread_ino t ~ino:file.ino ~off:file.pos buf len in
        file.pos <- file.pos + n;
        n)

  let write_ino t ~ino ~off ~sync buf len ~append =
    if len < 0 || len > Bytes.length buf then
      Errno.raise_error EINVAL "bad write length %d" len;
    let lock = ino_lock t ino in
    Rwlock.with_write lock (fun () ->
        let off =
          if append then (B.stat t.fs ~ino).Types.size else off
        in
        let n = B.write t.fs ~ino ~off ~src:buf ~src_off:0 ~len ~sync in
        let st = stats t in
        Stats.add_user_written st n;
        if sync then Stats.add_fsync_bytes st n else add_dirty t ino n;
        (off, n))

  let sync_of t flags = flags.Types.o_sync || B.sync_mount t.fs

  let pwrite t fd ~off buf len =
    charge_syscall t;
    with_fd t fd (fun file ->
        if not file.flags.write then
          Errno.raise_error EBADF "fd %d not open for writing" fd;
        let _off, n =
          write_ino t ~ino:file.ino ~off ~sync:(sync_of t file.flags) buf len
            ~append:false
        in
        n)

  let write t fd buf len =
    charge_syscall t;
    with_fd t fd (fun file ->
        if not file.flags.write then
          Errno.raise_error EBADF "fd %d not open for writing" fd;
        let off, n =
          write_ino t ~ino:file.ino ~off:file.pos
            ~sync:(sync_of t file.flags) buf len ~append:file.flags.append
        in
        file.pos <- off + n;
        n)

  let fsync t fd =
    charge_syscall t;
    with_fd t fd (fun file ->
        let lock = ino_lock t file.ino in
        Rwlock.with_write lock (fun () ->
            B.fsync t.fs ~ino:file.ino;
            let dirty = take_dirty t file.ino in
            Stats.add_fsync_bytes (stats t) dirty))

  let fstat t fd =
    charge_syscall t;
    with_fd t fd (fun file -> B.stat t.fs ~ino:file.ino)

  let seek t fd pos =
    if pos < 0 then Errno.raise_error EINVAL "negative seek";
    with_fd t fd (fun file -> file.pos <- pos)

  let mkdir t path =
    charge_syscall t;
    Rwlock.with_write t.ns_lock (fun () ->
        let dir, name = resolve_parent t path in
        (match B.lookup t.fs ~dir name with
        | Some _ -> Errno.raise_error EEXIST "%s already exists" path
        | None -> ());
        ignore (B.mkdir t.fs ~dir name))

  let rmdir t path =
    charge_syscall t;
    Rwlock.with_write t.ns_lock (fun () ->
        let dir, name = resolve_parent t path in
        B.rmdir t.fs ~dir name)

  let unlink t path =
    charge_syscall t;
    Rwlock.with_write t.ns_lock (fun () ->
        let dir, name = resolve_parent t path in
        (match B.lookup t.fs ~dir name with
        | None -> Errno.raise_error ENOENT "%s does not exist" path
        | Some ino ->
          if is_open t ino then
            Errno.raise_error EINVAL
              "%s is still open (deferred deletion unsupported)" path;
          Hashtbl.remove t.dirty_since_sync ino;
          Hashtbl.remove t.ino_locks ino);
        B.unlink t.fs ~dir name)

  let rename t src dst =
    charge_syscall t;
    Rwlock.with_write t.ns_lock (fun () ->
        let src_dir, src_name = resolve_parent t src in
        let dst_dir, dst_name = resolve_parent t dst in
        B.rename t.fs ~src_dir ~src:src_name ~dst_dir ~dst:dst_name)

  let readdir t path =
    charge_syscall t;
    Rwlock.with_read t.ns_lock (fun () ->
        let ino = resolve t path in
        let st = B.stat t.fs ~ino in
        if st.Types.kind <> Types.Directory then
          Errno.raise_error ENOTDIR "%s is not a directory" path;
        B.readdir t.fs ~dir:ino)

  let stat_path t path =
    charge_syscall t;
    Rwlock.with_read t.ns_lock (fun () ->
        let ino = resolve t path in
        B.stat t.fs ~ino)

  let exists t path =
    match stat_path t path with
    | _ -> true
    | exception Errno.Fs_error ((ENOENT | ENOTDIR), _) -> false

  let truncate t path size =
    charge_syscall t;
    if size < 0 then Errno.raise_error EINVAL "negative truncate size";
    let ino =
      Rwlock.with_read t.ns_lock (fun () ->
          let ino = resolve t path in
          let st = B.stat t.fs ~ino in
          if st.Types.kind <> Types.Regular then
            Errno.raise_error EISDIR "%s is not a regular file" path;
          ino)
    in
    let lock = ino_lock t ino in
    Rwlock.with_write lock (fun () -> B.truncate t.fs ~ino ~size)

  let mmap t fd =
    charge_syscall t;
    with_fd t fd (fun file ->
        let lock = ino_lock t file.ino in
        Rwlock.with_write lock (fun () -> B.mmap t.fs ~ino:file.ino))

  let munmap t fd =
    charge_syscall t;
    with_fd t fd (fun file ->
        let lock = ino_lock t file.ino in
        Rwlock.with_write lock (fun () -> B.munmap t.fs ~ino:file.ino))

  let msync t fd =
    charge_syscall t;
    with_fd t fd (fun file ->
        let lock = ino_lock t file.ino in
        Rwlock.with_write lock (fun () -> B.msync t.fs ~ino:file.ino))

  let sync_all t =
    charge_syscall t;
    (* Everything dirty becomes persistent: account it as fsync-covered
       and reset the per-inode dirty counters. *)
    let total = Hashtbl.fold (fun _ n acc -> acc + n) t.dirty_since_sync 0 in
    Hashtbl.reset t.dirty_since_sync;
    Stats.add_fsync_bytes (stats t) total;
    B.sync_all t.fs

  let unmount t =
    B.unmount t.fs;
    Hashtbl.reset t.fds;
    Hashtbl.reset t.open_counts;
    Hashtbl.reset t.dirty_since_sync

  (* Span wrappers, applied once at handle construction: each syscall runs
     inside an [Obs] span named after its op class. The wrappers close the
     span on any exit — normal return, [Errno.Fs_error], or the engine's
     [Stopped] unwind — so span stacks stay balanced on error paths. When
     no sink is installed, the begin/end calls return immediately and the
     fast path allocates nothing. *)

  let spanned1 k f a =
    Obs.span_begin k;
    match f a with
    | v ->
      Obs.span_end k;
      v
    | exception e ->
      Obs.span_end k;
      raise e

  let spanned2 k f a b =
    Obs.span_begin k;
    match f a b with
    | v ->
      Obs.span_end k;
      v
    | exception e ->
      Obs.span_end k;
      raise e

  let spanned3 k f a b c =
    Obs.span_begin k;
    match f a b c with
    | v ->
      Obs.span_end k;
      v
    | exception e ->
      Obs.span_end k;
      raise e

  let handle fs =
    let t = create fs in
    {
      fs_name = B.fs_name fs;
      open_ = spanned2 Obs.Op_open (open_ t);
      close = spanned1 Obs.Op_close (close t);
      read = spanned3 Obs.Op_read (read t);
      pread =
        (fun fd ~off buf len ->
          Obs.span_begin Obs.Op_read;
          match pread t fd ~off buf len with
          | v ->
            Obs.span_end Obs.Op_read;
            v
          | exception e ->
            Obs.span_end Obs.Op_read;
            raise e);
      write = spanned3 Obs.Op_write (write t);
      pwrite =
        (fun fd ~off buf len ->
          Obs.span_begin Obs.Op_write;
          match pwrite t fd ~off buf len with
          | v ->
            Obs.span_end Obs.Op_write;
            v
          | exception e ->
            Obs.span_end Obs.Op_write;
            raise e);
      fsync = spanned1 Obs.Op_fsync (fsync t);
      fstat = spanned1 Obs.Op_stat (fstat t);
      seek = spanned2 Obs.Op_seek (seek t);
      mkdir = spanned1 Obs.Op_mkdir (mkdir t);
      rmdir = spanned1 Obs.Op_rmdir (rmdir t);
      unlink = spanned1 Obs.Op_unlink (unlink t);
      rename = spanned2 Obs.Op_rename (rename t);
      readdir = spanned1 Obs.Op_readdir (readdir t);
      stat = spanned1 Obs.Op_stat (stat_path t);
      exists = spanned1 Obs.Op_exists (exists t);
      truncate = spanned2 Obs.Op_truncate (truncate t);
      mmap = spanned1 Obs.Op_mmap (mmap t);
      munmap = spanned1 Obs.Op_munmap (munmap t);
      msync = spanned1 Obs.Op_msync (msync t);
      sync_all = spanned1 Obs.Op_sync_all (fun () -> sync_all t);
      unmount = spanned1 Obs.Op_unmount (fun () -> unmount t);
      snap_ops = None;
    }
end
