(** POSIX-flavoured file system error codes.

    Fault-domain contract: backends with per-shard fault domains scope
    these errors to the failing domain, not the mount. An op landing in a
    {e Degraded} domain raises [EROFS] for mutations while reads are
    still served; once the domain is {e Quarantined} or {e Repairing},
    reads and fsync raise [EIO] as well — both fail fast, before any
    state is touched. Ops on healthy sibling domains of the same mount
    must keep succeeding; only a mount-scoped fault (superblock, whole-
    mount degradation on unsharded backends) makes every mutation raise
    [EROFS]. *)

type t =
  | ENOENT
  | EEXIST
  | EISDIR
  | ENOTDIR
  | ENOSPC
  | EBADF
  | EINVAL
  | ENOTEMPTY
  | EFBIG
  | EROFS  (** mutation into a read-only mount or degraded fault domain *)
  | EIO  (** uncorrectable media error, or a quarantined fault domain *)

exception Fs_error of t * string

val to_string : t -> string

val raise_error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error code fmt ...] raises {!Fs_error} with a formatted message. *)
