(** POSIX-flavoured file system error codes. *)

type t =
  | ENOENT
  | EEXIST
  | EISDIR
  | ENOTDIR
  | ENOSPC
  | EBADF
  | EINVAL
  | ENOTEMPTY
  | EFBIG
  | EROFS
  | EIO  (** uncorrectable media error reached the data path *)

exception Fs_error of t * string

val to_string : t -> string

val raise_error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error code fmt ...] raises {!Fs_error} with a formatted message. *)
