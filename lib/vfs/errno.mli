(** POSIX-flavoured file system error codes.

    Fault-domain contract: backends with per-shard fault domains scope
    these errors to the failing domain, not the mount. An op landing in a
    {e Degraded} domain raises [EROFS] for mutations while reads are
    still served; once the domain is {e Quarantined} or {e Repairing},
    reads and fsync raise [EIO] as well — both fail fast, before any
    state is touched. Ops on healthy sibling domains of the same mount
    must keep succeeding; only a mount-scoped fault (superblock, whole-
    mount degradation on unsharded backends) makes every mutation raise
    [EROFS].

    Stale-handle contract: [ESTALE] is raised only by serving layers that
    hand out identity tokens outliving a single syscall (the lib/server
    file-handle table). A handle goes permanently stale when the object it
    named stops being that object: the path was unlinked (even if later
    re-created — the re-creation carries a fresh generation), the path was
    renamed over, or the whole tree was replaced under it by a
    [rollback]/[snapshot_delete] on the snapshot surface. Revalidation
    must fail with [ESTALE] {e before} touching any inode state, so a
    stale handle can never read or mutate whichever unrelated inode now
    holds its old inode number; the client's recovery is a fresh LOOKUP. *)

type t =
  | ENOENT
  | EEXIST
  | EISDIR
  | ENOTDIR
  | ENOSPC
  | EBADF
  | EINVAL
  | ENOTEMPTY
  | EFBIG
  | EROFS  (** mutation into a read-only mount or degraded fault domain *)
  | EIO  (** uncorrectable media error, or a quarantined fault domain *)
  | ESTALE  (** file handle outlived the object it named (see above) *)

exception Fs_error of t * string

val to_string : t -> string

val raise_error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error code fmt ...] raises {!Fs_error} with a formatted message. *)
