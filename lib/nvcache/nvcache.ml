(* Durable NVMM write-cache tier (logging / paging designs) over extfs.

   Layout: the tail [cache_bytes] of the device is the cache area; the
   extfs backend is formatted over the leading blocks (Extfs.mkfs
   ~total_blocks). The first cacheline of the area is the header:

     0  magic "NVC1"          u32
     4  design tag            u8   (1 = logging, 2 = paging)
     8  area_bytes            u32  (sanity on mount)
     12 head offset           u32  (logging: ring offset of oldest record)
     16 head / next sequence  u64
     24 CRC-32C over [0,24)   u32

   Logging data region: [area + 64, area + area_bytes), a ring of 64-byte
   aligned records. Record header (one cacheline):

     0  magic "NVLR"          u32
     4  type                  u8   (1 = data, 2 = pad-to-end-of-ring)
     8  sequence              u64  (strictly increasing, never reused)
     16 backend byte address  u64
     24 payload length        u32
     28 CRC-32C over [0,28) + payload

   Records never wrap: a pad record fills the ring tail. Sequence numbers
   restore prefix semantics over weakly-ordered non-temporal stores: replay
   scans from the head expecting exactly the next sequence and stops at
   the first invalid or out-of-sequence record. Appends are serialized and
   individually fenced, so everything before a torn record predates any
   fsync that returned after it.

   Paging: a table of [nslots] 64-byte slot entries follows the header,
   then [nslots] block-size payload slots. Entry:

     0  magic "NVPE"          u32
     4  state                 u8   (1 = valid)
     8  sequence              u64
     16 backend block number  u64
     24 CRC-32C over [0,24) + payload

   A rewrite of a cached block always takes a fresh slot (the old entry
   stays valid until the new one is fenced), so a torn overwrite can never
   lose the previously fsync'd version; replay takes the newest valid
   sequence per block. Destage zeroes the entries of written-back and
   superseded slots before the slots can be reused.

   Runtime reads and destage are served from DRAM copies of the absorbed
   payloads (the NVMM image is the crash-recovery source of truth), with
   NVMM read latency charged explicitly; replay reads the medium. *)

module Proc = Hinfs_sim.Proc
module Engine = Hinfs_sim.Engine
module Condvar = Hinfs_sim.Condvar
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Blockdev = Hinfs_blockdev.Blockdev
module Extfs = Hinfs_extfs.Extfs
module Crc32c = Hinfs_structures.Crc32c
module Obs = Hinfs_obs.Obs

type design = Logging | Paging

let design_name = function Logging -> "nvlog" | Paging -> "nvpage"

type recovery = {
  rec_design : design;
  rec_replayed : int;
  rec_bytes : int;
  rec_dropped : int;
}

let line = 64
let get_u32 buf off = Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF
let round_line n = (n + line - 1) / line * line
let header_magic = 0x4E564331l (* "NVC1" *)
let record_magic = 0x4E564C52l (* "NVLR" *)
let entry_magic = 0x4E565045l (* "NVPE" *)
let rt_data = 1
let rt_pad = 2
let design_tag = function Logging -> 1 | Paging -> 2
let design_of_tag = function 1 -> Some Logging | 2 -> Some Paging | _ -> None

(* --- area geometry --- *)

let default_cache_bytes (config : Config.t) =
  let bs = config.Config.block_size in
  let b = config.Config.nvmm_size / 8 in
  let b = max (64 * 1024) (min (64 * 1024 * 1024) b) in
  (b + bs - 1) / bs * bs

let area_of config cache_bytes =
  let bs = config.Config.block_size in
  let cache_bytes =
    match cache_bytes with Some b -> b | None -> default_cache_bytes config
  in
  if cache_bytes mod bs <> 0 then
    invalid_arg "Nvcache: cache_bytes must be block-aligned";
  let cache_blocks = cache_bytes / bs in
  let total = Config.blocks config in
  (* The smallest useful log is a few records; the backend needs room for
     an extfs. *)
  if cache_blocks < 4 || total - cache_blocks < 8 then
    invalid_arg "Nvcache: cache_bytes leaves no usable split";
  let backend_blocks = total - cache_blocks in
  (backend_blocks, backend_blocks * bs, cache_bytes)

(* --- header --- *)

let write_header_bytes buf ~design ~area_bytes ~head ~seq =
  Bytes.fill buf 0 line '\000';
  Bytes.set_int32_le buf 0 header_magic;
  Bytes.set_uint8 buf 4 (design_tag design);
  Bytes.set_int32_le buf 8 (Int32.of_int area_bytes);
  Bytes.set_int32_le buf 12 (Int32.of_int head);
  Bytes.set_int64_le buf 16 (Int64.of_int seq);
  Bytes.set_int32_le buf 24 (Int32.of_int (Crc32c.digest buf ~off:0 ~len:24))

let read_header_bytes buf =
  if Bytes.get_int32_le buf 0 <> header_magic then None
  else if
    get_u32 buf 24 <> Crc32c.digest buf ~off:0 ~len:24
  then None
  else
    match design_of_tag (Bytes.get_uint8 buf 4) with
    | None -> None
    | Some design ->
      Some
        ( design,
          get_u32 buf 8,
          get_u32 buf 12,
          Int64.to_int (Bytes.get_int64_le buf 16) )

(* --- record / entry encoding --- *)

let encode_record ~rtype ~seq ~dest ~payload_len =
  let psize = round_line payload_len in
  let buf = Bytes.make (line + psize) '\000' in
  Bytes.set_int32_le buf 0 record_magic;
  Bytes.set_uint8 buf 4 rtype;
  Bytes.set_int64_le buf 8 (Int64.of_int seq);
  Bytes.set_int64_le buf 16 (Int64.of_int dest);
  Bytes.set_int32_le buf 24 (Int32.of_int payload_len);
  buf

let seal_record buf ~payload_len =
  let crc = Crc32c.digest buf ~off:0 ~len:28 in
  let crc = Crc32c.update crc buf ~off:line ~len:payload_len in
  Bytes.set_int32_le buf 28 (Int32.of_int crc)

let encode_entry ~seq ~block ~payload =
  let buf = Bytes.make line '\000' in
  Bytes.set_int32_le buf 0 entry_magic;
  Bytes.set_uint8 buf 4 1;
  Bytes.set_int64_le buf 8 (Int64.of_int seq);
  Bytes.set_int64_le buf 16 (Int64.of_int block);
  let crc = Crc32c.digest buf ~off:0 ~len:24 in
  let crc = Crc32c.update crc payload ~off:0 ~len:(Bytes.length payload) in
  Bytes.set_int32_le buf 24 (Int32.of_int crc);
  buf

(* --- tier state --- *)

type log_entry = {
  e_seq : int;
  e_doff : int; (* dest offset within the block *)
  e_len : int;
  e_data : Bytes.t; (* DRAM copy of the payload *)
}

type log_item =
  | Ldata of { l_seq : int; l_block : int; l_doff : int; l_entry : log_entry }
  | Lpad

type slot_state = Sfree | Squeued | Sstale | Sdestaging

type slot = {
  s_index : int;
  s_payload : Bytes.t; (* DRAM copy *)
  mutable s_state : slot_state;
  mutable s_block : int;
  mutable s_seq : int;
}

type queue_item = Qlog of { q_item : log_item; q_size : int } | Qslot of slot

type t = {
  device : Device.t;
  bdev : Blockdev.t;
  design : design;
  area_start : int;
  area_bytes : int;
  block_size : int;
  (* logging ring *)
  data_start : int; (* byte addr of the ring *)
  ring_bytes : int;
  mutable head : int; (* ring offset of the oldest un-destaged byte *)
  mutable tail : int; (* ring offset of the next append *)
  mutable used : int;
  mutable next_seq : int;
  index : (int, log_entry list) Hashtbl.t; (* block -> oldest-first *)
  (* paging slots *)
  slots : slot array;
  mutable free_slots : int list;
  slot_of_block : (int, slot) Hashtbl.t;
  entry_base : int;
  payload_base : int;
  (* destage *)
  queue : queue_item Queue.t;
  work : Condvar.t;
  space : Condvar.t;
  append_idle : Condvar.t;
  mutable appending : bool;
  mutable destaging : bool;
  mutable stopping : bool;
  mutable daemon_running : bool;
  (* counters *)
  mutable appends : int;
  mutable absorbed_bytes : int;
  mutable destages : int;
  mutable destaged_records : int;
  mutable stalls : int;
  mutable bypasses : int;
}

let design t = t.design
let backlog t = Queue.length t.queue
let appends t = t.appends
let absorbed_bytes t = t.absorbed_bytes
let destages t = t.destages
let destaged_records t = t.destaged_records
let stalls t = t.stalls
let bypassed_writes t = t.bypasses

let nslots_of ~area_bytes ~block_size = (area_bytes - line) / (line + block_size)

let capacity_bytes t =
  match t.design with
  | Logging -> t.ring_bytes
  | Paging -> Array.length t.slots * t.block_size

let used_bytes t =
  match t.design with
  | Logging -> t.used
  | Paging -> (Array.length t.slots - List.length t.free_slots) * t.block_size

let charge_nvmm_read t ~cat len =
  if len > 0 then begin
    let config = Device.config t.device in
    let lines = (len + line - 1) / line in
    let ns = lines * config.Config.dram_read_ns in
    Stats.add_time (Device.stats t.device) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

(* --- locks (cooperative) --- *)

let append_lock t =
  while t.appending do
    Condvar.wait t.append_idle
  done;
  t.appending <- true

let append_unlock t =
  t.appending <- false;
  ignore (Condvar.broadcast t.append_idle)

(* --- destage --- *)

let persist_log_head ?(background = false) t ~cat =
  let buf = Bytes.make line '\000' in
  write_header_bytes buf ~design:t.design ~area_bytes:t.area_bytes ~head:t.head
    ~seq:t.next_seq;
  Device.write_nt ~background t.device ~cat ~addr:t.area_start ~src:buf ~off:0
    ~len:line;
  Device.mfence t.device ~cat

let prune_index t ~block ~seq =
  match Hashtbl.find_opt t.index block with
  | None -> ()
  | Some entries -> (
    match List.filter (fun e -> e.e_seq <> seq) entries with
    | [] -> Hashtbl.remove t.index block
    | rest -> Hashtbl.replace t.index block rest)

let destage_batch_max = 64

(* Apply up to [destage_batch_max] queued items to the backend, in order,
   then persist the truncation (logging: advance the head; paging: zero
   the written-back entries). Serialized: the daemon, append backpressure
   and unmount drain all funnel through here. *)
let destage_some ?(background = false) t ~cat =
  if t.destaging then
    while t.destaging do
      Condvar.wait t.space
    done
  else if not (Queue.is_empty t.queue) then begin
    t.destaging <- true;
    Fun.protect
      ~finally:(fun () ->
        t.destaging <- false;
        ignore (Condvar.broadcast t.space))
      (fun () ->
        let t0 = Engine.now (Device.engine t.device) in
        let batch = ref [] in
        while
          List.length !batch < destage_batch_max
          && not (Queue.is_empty t.queue)
        do
          batch := Queue.pop t.queue :: !batch
        done;
        let batch = List.rev !batch in
        let wrote = ref false in
        (* Coalesce byte-contiguous log records (a journal commit is a run
           of consecutive blocks; file appends often are too) into single
           block-layer requests: one per-request charge per run instead of
           per record. Runs are flushed in log order, so overlapping
           non-contiguous records still apply oldest-first. *)
        let run_addr = ref (-1) in
        let run = Buffer.create 4096 in
        let flush_run () =
          if Buffer.length run > 0 then begin
            let data = Buffer.to_bytes run in
            Blockdev.write_range ~background t.bdev ~cat ~addr:!run_addr
              ~src:data ~off:0 ~len:(Bytes.length data);
            wrote := true;
            Buffer.clear run;
            run_addr := -1
          end
        in
        List.iter
          (fun item ->
            match item with
            | Qlog { q_item = Lpad; _ } -> ()
            | Qlog { q_item = Ldata d; _ } ->
              let e = d.l_entry in
              charge_nvmm_read t ~cat e.e_len;
              let addr = (d.l_block * t.block_size) + d.l_doff in
              if !run_addr < 0 || addr <> !run_addr + Buffer.length run then begin
                flush_run ();
                run_addr := addr
              end;
              Buffer.add_bytes run e.e_data
            | Qslot slot -> (
              flush_run ();
              match slot.s_state with
              | Sstale -> ()
              | Squeued ->
                slot.s_state <- Sdestaging;
                charge_nvmm_read t ~cat t.block_size;
                Blockdev.write_range ~background t.bdev ~cat
                  ~addr:(slot.s_block * t.block_size)
                  ~src:slot.s_payload ~off:0 ~len:t.block_size;
                wrote := true
              | Sfree | Sdestaging ->
                (* Unreachable: a slot is queued exactly once per fill. *)
                ()))
          batch;
        flush_run ();
        if !wrote then Device.mfence t.device ~cat;
        (* Truncate: everything in the batch is now ordered on the
           backend (or superseded), so it may never replay again. *)
        (match t.design with
        | Logging ->
          let advanced = ref 0 in
          List.iter
            (fun item ->
              match item with
              | Qlog { q_item; q_size } ->
                advanced := !advanced + q_size;
                (match q_item with
                | Ldata d -> prune_index t ~block:d.l_block ~seq:d.l_seq
                | Lpad -> ())
              | Qslot _ -> ())
            batch;
          if !advanced > 0 then begin
            t.head <- (t.head + !advanced) mod t.ring_bytes;
            t.used <- t.used - !advanced;
            persist_log_head ~background t ~cat
          end
        | Paging ->
          (* Two fenced passes, superseded entries strictly first. Zeroing
             a block's stale and fresh entries in one fence epoch would let
             a crash keep the stale one while losing the fresh one, and
             replay would put stale content over the newer backend data.
             With stale entries guaranteed gone before a fresh entry can
             disappear, replay only ever re-applies what the backend
             already holds. *)
          let zero = Bytes.make line '\000' in
          let zero_entries pred =
            let zeroed = ref false in
            List.iter
              (fun item ->
                match item with
                | Qslot slot when pred slot.s_state ->
                  Device.write_nt ~background t.device ~cat
                    ~addr:(t.entry_base + (slot.s_index * line))
                    ~src:zero ~off:0 ~len:line;
                  zeroed := true
                | Qslot _ | Qlog _ -> ())
              batch;
            if !zeroed then Device.mfence t.device ~cat
          in
          zero_entries (fun s -> s = Sstale);
          zero_entries (fun s -> s = Sdestaging);
          List.iter
            (fun item ->
              match item with
              | Qslot slot ->
                (match Hashtbl.find_opt t.slot_of_block slot.s_block with
                | Some cur when cur == slot ->
                  Hashtbl.remove t.slot_of_block slot.s_block
                | _ -> ());
                slot.s_state <- Sfree;
                t.free_slots <- slot.s_index :: t.free_slots
              | Qlog _ -> ())
            batch);
        List.iter
          (fun item ->
            match item with
            | Qlog { q_item = Ldata _; _ } | Qslot _ ->
              t.destaged_records <- t.destaged_records + 1
            | Qlog { q_item = Lpad; _ } -> ())
          batch;
        t.destages <- t.destages + 1;
        Obs.span_since Obs.Nvcache_destage ~t0)
  end

let destage_all t =
  while not (Queue.is_empty t.queue) || t.destaging do
    destage_some t ~cat:Stats.Other
  done

let wait_for_space t ~need =
  let free () =
    match t.design with
    | Logging -> t.ring_bytes - t.used
    | Paging -> List.length t.free_slots * t.block_size
  in
  if free () < need then begin
    t.stalls <- t.stalls + 1;
    while free () < need do
      if t.daemon_running then begin
        ignore (Condvar.signal t.work);
        Condvar.wait t.space
      end
      else destage_some t ~cat:Stats.Other
    done
  end

let start_destage_daemon t =
  if t.daemon_running then invalid_arg "Nvcache: daemon already running";
  t.daemon_running <- true;
  Proc.spawn ~name:"nvcache-destage" (fun () ->
      let rec loop () =
        if not t.stopping then begin
          if Queue.is_empty t.queue then Condvar.wait t.work
          else destage_some ~background:true t ~cat:Stats.Other;
          loop ()
        end
      in
      loop ();
      t.daemon_running <- false)

let stop_destage_daemon t =
  if t.daemon_running then begin
    t.stopping <- true;
    ignore (Condvar.broadcast t.work)
  end

(* --- tier write paths --- *)

let absorb_log t ~background ~cat ~block ~src ~off ~dirty =
  let doff, len =
    match dirty with
    | Some (d_off, d_len) when d_len > 0 && d_len <= t.block_size ->
      (d_off, d_len)
    | _ -> (0, t.block_size)
  in
  let psize = round_line len in
  let need = line + psize in
  append_lock t;
  Fun.protect
    ~finally:(fun () -> append_unlock t)
    (fun () ->
      let t0 = Engine.now (Device.engine t.device) in
      (* A record never wraps: pad to the end of the ring if needed, and
         reserve space for record plus pad together. *)
      let pad = if t.ring_bytes - t.tail < need then t.ring_bytes - t.tail else 0 in
      wait_for_space t ~need:(need + pad);
      if pad > 0 then begin
        let seq = t.next_seq in
        (* Pad payload is skipped, not read back: CRC covers the header
           only (payload_len tells the scanner how far to skip). *)
        let buf = Bytes.make line '\000' in
        Bytes.set_int32_le buf 0 record_magic;
        Bytes.set_uint8 buf 4 rt_pad;
        Bytes.set_int64_le buf 8 (Int64.of_int seq);
        Bytes.set_int32_le buf 24 (Int32.of_int (pad - line));
        Bytes.set_int32_le buf 28
          (Int32.of_int (Crc32c.digest buf ~off:0 ~len:28));
        Device.write_nt ~background t.device ~cat ~addr:(t.data_start + t.tail)
          ~src:buf ~off:0 ~len:line;
        t.next_seq <- seq + 1;
        t.used <- t.used + pad;
        t.tail <- 0;
        Queue.push (Qlog { q_item = Lpad; q_size = pad }) t.queue
      end;
      let seq = t.next_seq in
      let dest = (block * t.block_size) + doff in
      let buf = encode_record ~rtype:rt_data ~seq ~dest ~payload_len:len in
      Bytes.blit src (off + doff) buf line len;
      seal_record buf ~payload_len:len;
      Device.write_nt ~background t.device ~cat ~addr:(t.data_start + t.tail)
        ~src:buf ~off:0 ~len:(line + psize);
      (* The absorbed write carries the block layer's completion contract:
         durable and ordered when the call returns. *)
      Device.mfence t.device ~cat;
      t.next_seq <- seq + 1;
      t.used <- t.used + need;
      t.tail <- (t.tail + need) mod t.ring_bytes;
      let entry = { e_seq = seq; e_doff = doff; e_len = len; e_data = Bytes.sub buf line len } in
      let entries =
        match Hashtbl.find_opt t.index block with None -> [] | Some l -> l
      in
      Hashtbl.replace t.index block (entries @ [ entry ]);
      Queue.push
        (Qlog
           { q_item = Ldata { l_seq = seq; l_block = block; l_doff = doff; l_entry = entry };
             q_size = need })
        t.queue;
      if t.daemon_running then ignore (Condvar.signal t.work);
      t.appends <- t.appends + 1;
      t.absorbed_bytes <- t.absorbed_bytes + len;
      Obs.span_since Obs.Nvcache_append ~t0)

let absorb_page t ~background ~cat ~block ~src ~off =
  append_lock t;
  Fun.protect
    ~finally:(fun () -> append_unlock t)
    (fun () ->
      let t0 = Engine.now (Device.engine t.device) in
      wait_for_space t ~need:t.block_size;
      let idx = List.hd t.free_slots in
      t.free_slots <- List.tl t.free_slots;
      let slot = t.slots.(idx) in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Bytes.blit src off slot.s_payload 0 t.block_size;
      slot.s_block <- block;
      slot.s_seq <- seq;
      Device.write_nt ~background t.device ~cat
        ~addr:(t.payload_base + (idx * t.block_size))
        ~src ~off ~len:t.block_size;
      let entry = encode_entry ~seq ~block ~payload:slot.s_payload in
      Device.write_nt ~background t.device ~cat
        ~addr:(t.entry_base + (idx * line))
        ~src:entry ~off:0 ~len:line;
      Device.mfence t.device ~cat;
      (* Only after the new version is fenced does the old slot become
         stale — a crash in between must still find the old version. *)
      (match Hashtbl.find_opt t.slot_of_block block with
      | Some old when old.s_state = Squeued -> old.s_state <- Sstale
      | _ -> ());
      slot.s_state <- Squeued;
      Hashtbl.replace t.slot_of_block block slot;
      Queue.push (Qslot slot) t.queue;
      if t.daemon_running then ignore (Condvar.signal t.work);
      t.appends <- t.appends + 1;
      t.absorbed_bytes <- t.absorbed_bytes + t.block_size;
      Obs.span_since Obs.Nvcache_append ~t0)

(* --- tier read paths --- *)

let overlay_log ~into ~off entries =
  List.iter
    (fun e -> Bytes.blit e.e_data 0 into (off + e.e_doff) e.e_len)
    entries

let tier_read t ~cat ~block ~into ~off =
  match t.design with
  | Logging -> (
    match Hashtbl.find_opt t.index block with
    | None | Some [] -> false
    | Some entries ->
      (* Snapshot now: destage may prune the table while the backend read
         below yields. Re-applying an already-destaged record is
         byte-idempotent, so a stale snapshot stays correct. *)
      Device.read t.device ~cat ~addr:(block * t.block_size) ~len:t.block_size
        ~into ~off;
      overlay_log ~into ~off entries;
      charge_nvmm_read t ~cat
        (List.fold_left (fun a e -> a + e.e_len) 0 entries);
      true)
  | Paging -> (
    match Hashtbl.find_opt t.slot_of_block block with
    | None -> false
    | Some slot ->
      let data = Bytes.copy slot.s_payload in
      charge_nvmm_read t ~cat t.block_size;
      Bytes.blit data 0 into off t.block_size;
      true)

let tier_peek t ~block =
  match t.design with
  | Logging -> (
    match Hashtbl.find_opt t.index block with
    | None | Some [] -> None
    | Some entries ->
      let buf =
        Device.peek t.device ~addr:(block * t.block_size) ~len:t.block_size
      in
      overlay_log ~into:buf ~off:0 entries;
      Some buf)
  | Paging -> (
    match Hashtbl.find_opt t.slot_of_block block with
    | None -> None
    | Some slot -> Some (Bytes.copy slot.s_payload))

(* Does the tier still hold an un-truncated version of [block]? While it
   does, every new write of the block MUST be absorbed behind it — a
   direct backend write would be replayed over by the older cached
   version after a crash. The index / slot map cover queued and in-flight
   records until truncation, so this check is exact. *)
let has_pending t ~block =
  match t.design with
  | Logging -> (
    match Hashtbl.find_opt t.index block with
    | Some (_ :: _) -> true
    | None | Some [] -> false)
  | Paging -> Hashtbl.mem t.slot_of_block block

let under_pressure t = 2 * used_bytes t >= capacity_bytes t

let tier_of t =
  {
    Blockdev.tier_name = design_name t.design;
    tier_write =
      (fun ~background ~cat ~block ~src ~off ~dirty ->
        (* Write-around: background writeback gains nothing from absorb
           latency, and absorbing past half occupancy turns every sync
           write into destage-wait + absorb — strictly worse than the
           direct path. Declining hands the write to the block device's
           own fenced synchronous path. Only legal while the tier holds
           no older version of the block (upper layers serialize writes
           per block, so the check cannot go stale before the direct
           write lands). *)
        if (background || under_pressure t) && not (has_pending t ~block) then begin
          t.bypasses <- t.bypasses + 1;
          if t.daemon_running && not (Queue.is_empty t.queue) then
            ignore (Condvar.signal t.work);
          false
        end
        else begin
          (match t.design with
          | Logging -> absorb_log t ~background ~cat ~block ~src ~off ~dirty
          | Paging -> absorb_page t ~background ~cat ~block ~src ~off);
          true
        end);
    tier_read = (fun ~cat ~block ~into ~off -> tier_read t ~cat ~block ~into ~off);
    tier_peek = (fun ~block -> tier_peek t ~block);
  }

(* --- format / recover (untimed) --- *)

let format device ~design ?cache_bytes () =
  let config = Device.config device in
  let _, area_start, area_bytes = area_of config cache_bytes in
  let buf = Bytes.make line '\000' in
  write_header_bytes buf ~design ~area_bytes ~head:0 ~seq:1;
  Device.poke device ~addr:area_start ~src:buf ~off:0 ~len:line;
  match design with
  | Logging -> ()
  | Paging ->
    let bs = config.Config.block_size in
    let nslots = nslots_of ~area_bytes ~block_size:bs in
    let zeros = Bytes.make (nslots * line) '\000' in
    Device.poke device ~addr:(area_start + line) ~src:zeros ~off:0
      ~len:(nslots * line)

let fence_every = 32

let recover_log device ~area_start ~area_bytes ~head ~head_seq =
  let ring_bytes = area_bytes - line in
  let data_start = area_start + line in
  let applied = ref 0 and bytes = ref 0 and dropped = ref 0 in
  let off = ref head and seq = ref head_seq and scanned = ref 0 in
  let stop = ref false in
  while not !stop do
    if !off >= ring_bytes then off := 0;
    if !scanned + line > ring_bytes then stop := true
    else begin
      let addr = data_start + !off in
      let hdr = Device.peek_persistent device ~addr ~len:line in
      let magic_ok = Bytes.get_int32_le hdr 0 = record_magic in
      let rtype = Bytes.get_uint8 hdr 4 in
      let rseq = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let dest = Int64.to_int (Bytes.get_int64_le hdr 16) in
      let len = get_u32 hdr 24 in
      let stored_crc = get_u32 hdr 28 in
      if (not magic_ok) || rseq <> !seq then stop := true
      else if rtype = rt_pad then begin
        if
          len < 0
          || !off + line + len > ring_bytes
          || stored_crc <> Crc32c.digest hdr ~off:0 ~len:28
        then stop := true
        else begin
          scanned := !scanned + line + len;
          off := !off + line + len;
          incr seq
        end
      end
      else if rtype <> rt_data || len < 0 || len > area_bytes
              || !off + line + round_line len > ring_bytes
              || dest < 0
              || dest + len > area_start
      then stop := true
      else begin
        let payload = Device.peek_persistent device ~addr:(addr + line) ~len in
        let crc = Crc32c.digest hdr ~off:0 ~len:28 in
        let crc = Crc32c.update crc payload ~off:0 ~len in
        if Device.verify_range device ~addr ~len:(line + len) <> [] then begin
          (* Poisoned media under the record: the prefix ends here and the
             record is counted as lost. *)
          incr dropped;
          stop := true
        end
        else if crc <> stored_crc then stop := true
        else begin
          Device.poke_flushed device ~addr:dest ~src:payload ~off:0 ~len;
          incr applied;
          bytes := !bytes + len;
          if !applied mod fence_every = 0 then Device.fence_untimed device;
          scanned := !scanned + line + round_line len;
          off := !off + line + round_line len;
          incr seq
        end
      end
    end
  done;
  (!applied, !bytes, !dropped, !seq)

let recover_page device ~area_start ~area_bytes =
  let config = Device.config device in
  let bs = config.Config.block_size in
  let nslots = nslots_of ~area_bytes ~block_size:bs in
  let entry_base = area_start + line in
  let payload_base = entry_base + (nslots * line) in
  let dropped = ref 0 in
  (* Newest valid sequence per block wins. *)
  let best = Hashtbl.create 64 in
  let max_seq = ref 0 in
  for i = 0 to nslots - 1 do
    let hdr = Device.peek_persistent device ~addr:(entry_base + (i * line)) ~len:line in
    if Bytes.get_int32_le hdr 0 = entry_magic && Bytes.get_uint8 hdr 4 = 1 then begin
      let seq = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let block = Int64.to_int (Bytes.get_int64_le hdr 16) in
      let stored_crc = get_u32 hdr 24 in
      let paddr = payload_base + (i * bs) in
      let payload = Device.peek_persistent device ~addr:paddr ~len:bs in
      let crc = Crc32c.digest hdr ~off:0 ~len:24 in
      let crc = Crc32c.update crc payload ~off:0 ~len:bs in
      let poisoned =
        Device.verify_range device ~addr:(entry_base + (i * line)) ~len:line <> []
        || Device.verify_range device ~addr:paddr ~len:bs <> []
      in
      (* A CRC mismatch alone is a torn in-flight entry (the crash hit
         mid-append, before the version was fenced) — not data loss. Only
         poison under a structurally valid entry counts as dropped. *)
      if poisoned then incr dropped
      else if crc <> stored_crc then ()
      else if block >= 0 && (block + 1) * bs <= area_start then begin
        if seq > !max_seq then max_seq := seq;
        match Hashtbl.find_opt best block with
        | Some (prev_seq, _, _) when prev_seq >= seq -> ()
        | _ -> Hashtbl.replace best block (seq, i, payload)
      end
    end
  done;
  let applied = ref 0 and bytes = ref 0 in
  let winners =
    Hashtbl.fold
      (fun block (seq, i, payload) acc -> (seq, block, i, payload) :: acc)
      best []
    |> List.sort compare
  in
  List.iter
    (fun (_seq, block, _i, payload) ->
      Device.poke_flushed device ~addr:(block * bs) ~src:payload ~off:0 ~len:bs;
      incr applied;
      bytes := !bytes + bs;
      if !applied mod fence_every = 0 then Device.fence_untimed device)
    winners;
  Device.fence_untimed device;
  (* Clear the entries in two ordered passes — superseded and torn slots
     strictly before the winners (same hazard as the destage truncation: a
     re-crash mid-clear must never keep an older entry for a block after
     its newest one is gone, or the next replay would put stale content
     over what the first replay just applied). Each pass's survivors
     re-apply the same bytes, so replay stays idempotent. *)
  let winner_slots = Array.make nslots false in
  List.iter (fun (_, _, i, _) -> winner_slots.(i) <- true) winners;
  let zero = Bytes.make line '\000' in
  let clear pred =
    for i = 0 to nslots - 1 do
      if pred i then
        Device.poke_flushed device ~addr:(entry_base + (i * line)) ~src:zero
          ~off:0 ~len:line
    done;
    Device.fence_untimed device
  in
  clear (fun i -> not winner_slots.(i));
  clear (fun i -> winner_slots.(i));
  (!applied, !bytes, !dropped, !max_seq + 1)

let recover device ?cache_bytes () =
  let config = Device.config device in
  let _, area_start, area_bytes = area_of config cache_bytes in
  let engine = Device.engine device in
  let t0 = Engine.now engine in
  let hdr = Device.peek_persistent device ~addr:area_start ~len:line in
  match read_header_bytes hdr with
  | None ->
    Fmt.invalid_arg "Nvcache.recover: no valid cache header at %d" area_start
  | Some (rec_design, hdr_bytes, head, head_seq) ->
    if hdr_bytes <> area_bytes then
      Fmt.invalid_arg "Nvcache.recover: header says %d area bytes, mounting %d"
        hdr_bytes area_bytes;
    let applied, bytes, dropped, next_seq =
      match rec_design with
      | Logging ->
        recover_log device ~area_start ~area_bytes ~head ~head_seq
      | Paging -> recover_page device ~area_start ~area_bytes
    in
    Device.fence_untimed device;
    (* An empty cache whose sequence is above everything just replayed:
       stale records can never match the expected sequence again. Ordered
       after the applies; a re-crash before this point rescans from the
       old header and re-applies the same bytes. *)
    let buf = Bytes.make line '\000' in
    write_header_bytes buf ~design:rec_design ~area_bytes ~head:0 ~seq:next_seq;
    Device.poke_flushed device ~addr:area_start ~src:buf ~off:0 ~len:line;
    Device.fence_untimed device;
    let stats = Device.stats device in
    if applied > 0 || dropped > 0 then
      Stats.add_recovery stats ~rolled_back:0 ~dropped;
    Obs.span_since Obs.Nvcache_replay ~t0;
    { rec_design; rec_replayed = applied; rec_bytes = bytes; rec_dropped = dropped }

(* --- composed stack --- *)

type stack = {
  st_cache : t;
  st_fs : Extfs.t;
  st_recovery : recovery option;
  mutable st_daemons : bool;
}

let fs st = st.st_fs
let cache st = st.st_cache
let handle st = Extfs.handle st.st_fs
let last_recovery st = st.st_recovery

let create_tier device ~design ~cache_bytes ~bdev ~next_seq =
  let config = Device.config device in
  let bs = config.Config.block_size in
  let _, area_start, area_bytes = area_of config cache_bytes in
  let nslots =
    match design with
    | Logging -> 0
    | Paging -> nslots_of ~area_bytes ~block_size:bs
  in
  let engine = Device.engine device in
  {
    device;
    bdev;
    design;
    area_start;
    area_bytes;
    block_size = bs;
    data_start = area_start + line;
    ring_bytes = area_bytes - line;
    head = 0;
    tail = 0;
    used = 0;
    next_seq;
    index = Hashtbl.create 256;
    slots =
      Array.init nslots (fun i ->
          {
            s_index = i;
            s_payload = Bytes.make bs '\000';
            s_state = Sfree;
            s_block = -1;
            s_seq = 0;
          });
    free_slots = List.init nslots (fun i -> i);
    slot_of_block = Hashtbl.create 256;
    entry_base = area_start + line;
    payload_base = area_start + line + (nslots * line);
    queue = Queue.create ();
    work = Condvar.create engine;
    space = Condvar.create engine;
    append_idle = Condvar.create engine;
    appending = false;
    destaging = false;
    stopping = false;
    daemon_running = false;
    appends = 0;
    absorbed_bytes = 0;
    destages = 0;
    destaged_records = 0;
    stalls = 0;
    bypasses = 0;
  }

let attach st =
  Blockdev.attach_tier (Extfs.bdev st.st_fs) (Some (tier_of st.st_cache))

let start_daemons st =
  if st.st_daemons then invalid_arg "Nvcache: daemons already started";
  st.st_daemons <- true;
  Extfs.start_daemons st.st_fs;
  start_destage_daemon st.st_cache

let mkfs_and_mount device ~design ~mode ?cache_bytes ?journal_blocks
    ?inodes_per_mb ?sync_mount ?cache_pages ?commit_interval
    ?(daemons = false) () =
  let config = Device.config device in
  let backend_blocks, _, _ = area_of config cache_bytes in
  Extfs.mkfs device ?journal_blocks ?inodes_per_mb ~total_blocks:backend_blocks
    ();
  format device ~design ?cache_bytes ();
  let fs =
    Extfs.mount device ~mode ?sync_mount ?cache_pages ?commit_interval ()
  in
  let tier =
    create_tier device ~design ~cache_bytes ~bdev:(Extfs.bdev fs) ~next_seq:1
  in
  let st = { st_cache = tier; st_fs = fs; st_recovery = None; st_daemons = false } in
  attach st;
  if daemons then start_daemons st;
  st

let mount device ~mode ?cache_bytes ?sync_mount ?cache_pages ?commit_interval
    ?(daemons = false) () =
  let rec_result = recover device ?cache_bytes () in
  let fs =
    Extfs.mount device ~mode ?sync_mount ?cache_pages ?commit_interval ()
  in
  (* recover just persisted an empty cache header carrying the next
     sequence number; read it back as the tier's starting point. *)
  let config = Device.config device in
  let _, area_start, _ = area_of config cache_bytes in
  let next_seq =
    match
      read_header_bytes (Device.peek_persistent device ~addr:area_start ~len:line)
    with
    | Some (_, _, _, seq) -> seq
    | None -> assert false
  in
  let tier =
    create_tier device ~design:rec_result.rec_design ~cache_bytes
      ~bdev:(Extfs.bdev fs) ~next_seq
  in
  let st =
    { st_cache = tier; st_fs = fs; st_recovery = Some rec_result;
      st_daemons = false }
  in
  attach st;
  if daemons then start_daemons st;
  st

let unmount st =
  (* Extfs.unmount flushes everything buffered into the tier; the drain
     then empties the tier onto the backend, so the backend is
     self-contained and the next mount replays nothing. *)
  Extfs.unmount st.st_fs;
  destage_all st.st_cache;
  stop_destage_daemon st.st_cache
