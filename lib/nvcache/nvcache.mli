(** A durable NVMM write-cache tier in front of the block file systems.

    The tier reserves the tail of the NVMM device and interposes on the
    backend's {!Hinfs_blockdev.Blockdev} via {!Hinfs_blockdev.Blockdev.tier}:
    synchronous block writes are absorbed into NVMM (fenced before the
    write returns, so the bio-completion-implies-durability contract the
    ext4 journal relies on still holds) and destaged to the extfs backend
    asynchronously, in order. Mount-time replay applies whatever the cache
    still held at a crash before the backend's own journal recovery runs.

    Two interchangeable designs sit behind the one interface (the
    logging-vs-paging comparison of the related work):

    - {b Logging}: every absorbed write appends one CRC-32C'd record (the
      page's dirty byte run, not the whole block) to a ring log; fsync cost
      is O(append + fence). A DRAM index provides read-your-writes; the
      destage daemon applies records in order and truncates the log by
      advancing a persistent head pointer.
    - {b Paging}: dirty blocks live in NVMM page slots (64-byte CRC'd slot
      entry + whole-block payload); a rewrite allocates a fresh slot so a
      torn overwrite can never lose the previously fsync'd version; destage
      writes back whole pages and clears the slot entries. *)

type design = Logging | Paging

val design_name : design -> string

type t
(** Tier state for one mounted cache area. *)

(** What mount-time replay found. *)
type recovery = {
  rec_design : design;
  rec_replayed : int;  (** records / slots applied to the backend *)
  rec_bytes : int;  (** payload bytes applied *)
  rec_dropped : int;  (** records lost to CRC damage or media poison *)
}

(** {1 Raw cache area (format / recover)} *)

val default_cache_bytes : Hinfs_nvmm.Config.t -> int
(** Device-size/8, clamped to [64 KiB, 64 MiB] and block-aligned. *)

val format :
  Hinfs_nvmm.Device.t -> design:design -> ?cache_bytes:int -> unit -> unit
(** Untimed: write a fresh empty cache header (and, paging, zero the slot
    entry table) over the tail [cache_bytes] of the device. *)

val recover : Hinfs_nvmm.Device.t -> ?cache_bytes:int -> unit -> recovery
(** Replay the cache area onto the backend blocks, untimed but visible to
    the persistence recorder ({!Hinfs_nvmm.Device.poke_flushed} +
    {!Hinfs_nvmm.Device.fence_untimed}), so crash enumeration covers a
    re-crash in the middle of replay; the replay is idempotent. Finishes
    by persisting an empty cache whose next sequence number is above every
    replayed record, so stale records can never replay twice. The design
    is read back from the header. *)

(** {1 Composed stack: nvcache over extfs} *)

type stack
(** An extfs mount with the tier attached to its block device. *)

val mkfs_and_mount :
  Hinfs_nvmm.Device.t ->
  design:design ->
  mode:Hinfs_extfs.Extfs.mode ->
  ?cache_bytes:int ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?sync_mount:bool ->
  ?cache_pages:int ->
  ?commit_interval:int64 ->
  ?daemons:bool ->
  unit ->
  stack
(** mkfs an extfs over the leading blocks, format the cache area over the
    tail, mount, and attach the tier. [daemons] also starts the extfs
    daemons and the destage daemon. Call from inside a simulation
    process. *)

val mount :
  Hinfs_nvmm.Device.t ->
  mode:Hinfs_extfs.Extfs.mode ->
  ?cache_bytes:int ->
  ?sync_mount:bool ->
  ?cache_pages:int ->
  ?commit_interval:int64 ->
  ?daemons:bool ->
  unit ->
  stack
(** {!recover} the cache area onto the backend, then mount the extfs
    (running its own journal replay on the now-consistent backend) and
    attach an empty tier. *)

val start_daemons : stack -> unit
val unmount : stack -> unit
(** Flush the file system into the tier, drain the destage queue, stop the
    daemon: a clean unmount leaves the cache empty and the backend
    self-contained. *)

val fs : stack -> Hinfs_extfs.Extfs.t
val cache : stack -> t
val handle : stack -> Hinfs_vfs.Vfs.handle
val last_recovery : stack -> recovery option
(** What {!mount}-time replay found ([None] after [mkfs_and_mount]). *)

(** {1 Introspection (tests, gauges, report)} *)

val design : t -> design
val capacity_bytes : t -> int
(** Payload capacity: ring data region (logging) / slot payloads (paging). *)

val used_bytes : t -> int
(** Log occupancy (logging) / occupied-slot payload bytes (paging). *)

val backlog : t -> int
(** Destage queue length. *)

val appends : t -> int
val absorbed_bytes : t -> int
val destages : t -> int
(** Destage batches completed. *)

val destaged_records : t -> int
val stalls : t -> int
(** Appends that had to wait for destage to free space. *)

val bypassed_writes : t -> int
(** Writes the tier declined (write-around): background writeback, or a
    foreground write past half occupancy, when no older cached version of
    the block forces absorption. These take the block device's direct
    fenced path. *)

val destage_all : t -> unit
(** Foreground drain of the destage queue (unmount, scenarios). *)
