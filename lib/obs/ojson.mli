(** Minimal JSON: deterministic emission plus a small strict parser.

    The repo deliberately has no JSON dependency; this module covers exactly
    what the observability exports need. Emission is deterministic: object
    fields print in the order given, integers print exactly, and floats use
    a fixed ["%.6f"] format, so byte-identical inputs yield byte-identical
    output (the determinism guarantee BENCH_HINFS.json relies on). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read or diffed. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parser for the subset this module emits (plus standard JSON
    escapes and scientific notation). @raise Parse_error on malformed
    input. *)

(** Accessors: [None] when the key is absent or the shape mismatches. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too. *)

val to_str : t -> string option
val to_list : t -> t list option
