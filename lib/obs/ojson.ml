type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  (* JSON has no NaN/Inf; clamp so exports are always parseable. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    "0.000000"
  else Printf.sprintf "%.6f" f

let rec emit ~indent ~level buf v =
  let pad n =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * n do
        Buffer.add_char buf ' '
      done
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        pad (level + 1);
        emit ~indent ~level:(level + 1) buf item)
      items;
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        pad (level + 1);
        escape buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        emit ~indent ~level:(level + 1) buf item)
      fields;
    pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 4096 in
  emit ~indent:true ~level:0 buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  let rec loop () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      loop ()
    | _ -> ()
  in
  loop ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %C" c)

let parse_literal p lit v =
  let n = String.length lit in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = lit then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p (Printf.sprintf "expected %s" lit)

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
      advance p;
      match peek p with
      | Some '"' -> advance p; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance p; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance p; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance p; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance p; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance p; Buffer.add_char buf '\t'; loop ()
      | Some 'b' -> advance p; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance p; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail p "bad \\u escape";
        let hex = String.sub p.src p.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail p "bad \\u escape"
        in
        p.pos <- p.pos + 4;
        (* Only BMP codepoints below 0x80 are emitted by this module;
           anything else round-trips as '?'. *)
        Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
        loop ()
      | _ -> fail p "bad escape")
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec loop () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') ->
      advance p;
      loop ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      loop ()
    | _ -> ()
  in
  loop ();
  if p.pos = start then fail p "expected number";
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail p "bad float"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail p "bad integer"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws p;
        let key = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        fields := (key, v) :: !fields;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields_loop ()
        | Some '}' -> advance p
        | _ -> fail p "expected ',' or '}'"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items_loop ()
        | Some ']' -> advance p
        | _ -> fail p "expected ',' or ']'"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
