(* Global-sink observability on the virtual clock.

   Everything here must hold two invariants:

   - Zero cost when disabled: every public fast-path entry point starts
     with a match on the global sink and returns immediately (allocating
     nothing) when it is [None].

   - Zero simulated time always: the sink reads [Engine.now] but never
     performs an engine effect, so installing it cannot change any virtual
     timestamp — the determinism tests rely on this. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc

type kind =
  | Op_open
  | Op_close
  | Op_read
  | Op_write
  | Op_fsync
  | Op_seek
  | Op_mkdir
  | Op_rmdir
  | Op_unlink
  | Op_rename
  | Op_readdir
  | Op_stat
  | Op_exists
  | Op_truncate
  | Op_mmap
  | Op_munmap
  | Op_msync
  | Op_sync_all
  | Op_unmount
  | Journal_commit
  | Journal_recover
  | Writeback
  | Buffer_fetch
  | Flush
  | Fence
  | Slot_wait
  | Nvcache_append
  | Nvcache_destage
  | Nvcache_replay
  | Snapshot_commit
  | Snapshot_gc
  | Dev_retry
  | Health_repair
  (* Serving-layer request classes (lib/server): one span per request,
     covering decode -> dispatch -> encode on the worker fiber. *)
  | Req_lookup
  | Req_getattr
  | Req_read
  | Req_write
  | Req_create
  | Req_remove
  | Req_rename
  | Req_commit
  (* Serving-layer internal phases, for tail breakdowns. *)
  | Srv_queue (* fan-in wait: enqueue on the client to pickup by a worker *)
  | Srv_decode
  | Srv_encode
  | Srv_flush (* durability work: stable writes, COMMIT, eviction flushes *)

type ev =
  | Ev_bbm_eager
  | Ev_bbm_lazy
  | Ev_mmap_pin
  | Ev_mmap_unpin
  | Ev_dead_drop
  | Ev_proc_spawn
  | Ev_quarantine
  | Ev_readmit
  | Ev_session_expire
  | Ev_estale
  | Ev_oc_evict

let kind_index = function
  | Op_open -> 0
  | Op_close -> 1
  | Op_read -> 2
  | Op_write -> 3
  | Op_fsync -> 4
  | Op_seek -> 5
  | Op_mkdir -> 6
  | Op_rmdir -> 7
  | Op_unlink -> 8
  | Op_rename -> 9
  | Op_readdir -> 10
  | Op_stat -> 11
  | Op_exists -> 12
  | Op_truncate -> 13
  | Op_mmap -> 14
  | Op_munmap -> 15
  | Op_msync -> 16
  | Op_sync_all -> 17
  | Op_unmount -> 18
  | Journal_commit -> 19
  | Journal_recover -> 20
  | Writeback -> 21
  | Buffer_fetch -> 22
  | Flush -> 23
  | Fence -> 24
  | Slot_wait -> 25
  | Nvcache_append -> 26
  | Nvcache_destage -> 27
  | Nvcache_replay -> 28
  | Snapshot_commit -> 29
  | Snapshot_gc -> 30
  | Dev_retry -> 31
  | Health_repair -> 32
  | Req_lookup -> 33
  | Req_getattr -> 34
  | Req_read -> 35
  | Req_write -> 36
  | Req_create -> 37
  | Req_remove -> 38
  | Req_rename -> 39
  | Req_commit -> 40
  | Srv_queue -> 41
  | Srv_decode -> 42
  | Srv_encode -> 43
  | Srv_flush -> 44

let all_kinds =
  [
    Op_open; Op_close; Op_read; Op_write; Op_fsync; Op_seek; Op_mkdir;
    Op_rmdir; Op_unlink; Op_rename; Op_readdir; Op_stat; Op_exists;
    Op_truncate; Op_mmap; Op_munmap; Op_msync; Op_sync_all; Op_unmount;
    Journal_commit; Journal_recover; Writeback; Buffer_fetch; Flush; Fence;
    Slot_wait; Nvcache_append; Nvcache_destage; Nvcache_replay;
    Snapshot_commit; Snapshot_gc; Dev_retry; Health_repair;
    Req_lookup; Req_getattr; Req_read; Req_write; Req_create; Req_remove;
    Req_rename; Req_commit; Srv_queue; Srv_decode; Srv_encode; Srv_flush;
  ]

let n_kinds = List.length all_kinds

let kind_name = function
  | Op_open -> "op.open"
  | Op_close -> "op.close"
  | Op_read -> "op.read"
  | Op_write -> "op.write"
  | Op_fsync -> "op.fsync"
  | Op_seek -> "op.seek"
  | Op_mkdir -> "op.mkdir"
  | Op_rmdir -> "op.rmdir"
  | Op_unlink -> "op.unlink"
  | Op_rename -> "op.rename"
  | Op_readdir -> "op.readdir"
  | Op_stat -> "op.stat"
  | Op_exists -> "op.exists"
  | Op_truncate -> "op.truncate"
  | Op_mmap -> "op.mmap"
  | Op_munmap -> "op.munmap"
  | Op_msync -> "op.msync"
  | Op_sync_all -> "op.sync_all"
  | Op_unmount -> "op.unmount"
  | Journal_commit -> "journal.commit"
  | Journal_recover -> "journal.recover"
  | Writeback -> "wb.flush"
  | Buffer_fetch -> "wb.fetch"
  | Flush -> "dev.flush"
  | Fence -> "dev.fence"
  | Slot_wait -> "dev.slot_wait"
  | Nvcache_append -> "nvcache.append"
  | Nvcache_destage -> "nvcache.destage"
  | Nvcache_replay -> "nvcache.replay"
  | Snapshot_commit -> "snapshot.commit"
  | Snapshot_gc -> "snapshot.gc"
  | Dev_retry -> "dev.retry"
  | Health_repair -> "health.repair"
  | Req_lookup -> "req.lookup"
  | Req_getattr -> "req.getattr"
  | Req_read -> "req.read"
  | Req_write -> "req.write"
  | Req_create -> "req.create"
  | Req_remove -> "req.remove"
  | Req_rename -> "req.rename"
  | Req_commit -> "req.commit"
  | Srv_queue -> "srv.queue"
  | Srv_decode -> "srv.decode"
  | Srv_encode -> "srv.encode"
  | Srv_flush -> "srv.flush"

let ev_name = function
  | Ev_bbm_eager -> "bbm.eager"
  | Ev_bbm_lazy -> "bbm.lazy"
  | Ev_mmap_pin -> "mmap.pin"
  | Ev_mmap_unpin -> "mmap.unpin"
  | Ev_dead_drop -> "buffer.dead_drop"
  | Ev_proc_spawn -> "proc.spawn"
  | Ev_quarantine -> "health.quarantine"
  | Ev_readmit -> "health.readmit"
  | Ev_session_expire -> "session.expire"
  | Ev_estale -> "server.estale"
  | Ev_oc_evict -> "server.oc_evict"

type frame = { fkind : kind; t0 : int64 }

type event =
  | Span of { skind : kind; pid : int; t0 : int64; t1 : int64 }
  | Inst of { ekind : ev; pid : int; t : int64; a : int; b : int }
  | Sample of { name : string; t : int64; v : int }

type t = {
  engine : Engine.t;
  trace : bool;
  max_events : int;
  hists : Hist.t array;
  counters : (string, Hist.t) Hashtbl.t;
  stacks : (int, frame list ref) Hashtbl.t;
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  mutable dropped : int;
  mutable mismatches : int;
  mutable switches : int;
}

let create ?(trace = false) ?(max_events = 200_000) engine =
  {
    engine;
    trace;
    max_events;
    hists = Array.init n_kinds (fun _ -> Hist.create ());
    counters = Hashtbl.create 16;
    stacks = Hashtbl.create 16;
    events = [];
    n_events = 0;
    dropped = 0;
    mismatches = 0;
    switches = 0;
  }

let cur : t option ref = ref None

let current () = !cur
let enabled () = match !cur with None -> false | Some _ -> true

let push_event o e =
  if o.n_events >= o.max_events then o.dropped <- o.dropped + 1
  else begin
    o.events <- e :: o.events;
    o.n_events <- o.n_events + 1
  end

let install o =
  cur := Some o;
  Engine.set_proc_hooks o.engine
    ~on_spawn:(fun pid _name ->
      if o.trace then
        push_event o
          (Inst
             {
               ekind = Ev_proc_spawn;
               pid;
               t = Engine.now o.engine;
               a = pid;
               b = 0;
             }))
    ~on_switch:(fun _pid -> o.switches <- o.switches + 1)

let uninstall () =
  (match !cur with
  | Some o -> Engine.clear_proc_hooks o.engine
  | None -> ());
  cur := None

let stack_of o pid =
  match Hashtbl.find_opt o.stacks pid with
  | Some st -> st
  | None ->
    let st = ref [] in
    Hashtbl.replace o.stacks pid st;
    st

let span_begin kind =
  match !cur with
  | None -> ()
  | Some o ->
    let st = stack_of o (Engine.current_pid o.engine) in
    st := { fkind = kind; t0 = Engine.now o.engine } :: !st

let record_closed o ~kind ~pid ~t0 =
  let t1 = Engine.now o.engine in
  Hist.record o.hists.(kind_index kind) (Int64.to_int (Int64.sub t1 t0));
  if o.trace then push_event o (Span { skind = kind; pid; t0; t1 })

let span_end kind =
  match !cur with
  | None -> ()
  | Some o -> (
    let pid = Engine.current_pid o.engine in
    let st = stack_of o pid in
    match !st with
    | [] -> o.mismatches <- o.mismatches + 1
    | f :: rest ->
      st := rest;
      if f.fkind <> kind then o.mismatches <- o.mismatches + 1;
      record_closed o ~kind ~pid ~t0:f.t0)

let span_since kind ~t0 =
  match !cur with
  | None -> ()
  | Some o ->
    record_closed o ~kind ~pid:(Engine.current_pid o.engine) ~t0

let instant ekind ~a ~b =
  match !cur with
  | None -> ()
  | Some o ->
    if o.trace then
      push_event o
        (Inst
           {
             ekind;
             pid = Engine.current_pid o.engine;
             t = Engine.now o.engine;
             a;
             b;
           })

let counter name v =
  match !cur with
  | None -> ()
  | Some o ->
    let h =
      match Hashtbl.find_opt o.counters name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.replace o.counters name h;
        h
    in
    Hist.record h v;
    if o.trace then
      push_event o (Sample { name; t = Engine.now o.engine; v })

let reset o =
  Array.iter Hist.reset o.hists;
  Hashtbl.reset o.counters;
  o.events <- [];
  o.n_events <- 0;
  o.dropped <- 0;
  o.mismatches <- 0;
  o.switches <- 0

let open_spans o =
  Hashtbl.fold (fun _ st acc -> acc + List.length !st) o.stacks 0

let mismatches o = o.mismatches
let dropped_events o = o.dropped
let context_switches o = o.switches

let hist o kind = Hist.summarize o.hists.(kind_index kind)

let nonempty_hists o =
  List.filter_map
    (fun k ->
      let h = o.hists.(kind_index k) in
      if Hist.count h > 0 then Some (k, Hist.summarize h) else None)
    all_kinds

let counter_summaries o =
  Hashtbl.fold (fun name h acc -> (name, Hist.summarize h) :: acc) o.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let start_sampler ?(period_ns = 1_000_000L) o ~gauges =
  let stop = ref false in
  Engine.spawn o.engine ~name:"obs-sampler" (fun () ->
      while not !stop do
        List.iter (fun (name, read) -> counter name (read ())) gauges;
        Proc.delay period_ns
      done);
  fun () -> stop := true

(* --- export --- *)

let us_of_ns ns = Int64.to_float ns /. 1000.0

let chrome_trace o =
  let events = List.rev o.events in
  (* Thread-name metadata for every pid that appears in the trace. *)
  let pids = Hashtbl.create 16 in
  let see pid = if not (Hashtbl.mem pids pid) then Hashtbl.replace pids pid () in
  List.iter
    (function
      | Span { pid; _ } | Inst { pid; _ } -> see pid
      | Sample _ -> ())
    events;
  let meta =
    Hashtbl.fold (fun pid () acc -> pid :: acc) pids []
    |> List.sort compare
    |> List.map (fun pid ->
           Ojson.Obj
             [
               ("ph", Ojson.String "M");
               ("name", Ojson.String "thread_name");
               ("pid", Ojson.Int 0);
               ("tid", Ojson.Int pid);
               ( "args",
                 Ojson.Obj
                   [ ("name", Ojson.String (Engine.proc_name o.engine pid)) ]
               );
             ])
  in
  let of_event = function
    | Span { skind; pid; t0; t1 } ->
      Ojson.Obj
        [
          ("ph", Ojson.String "X");
          ("name", Ojson.String (kind_name skind));
          ("pid", Ojson.Int 0);
          ("tid", Ojson.Int pid);
          ("ts", Ojson.Float (us_of_ns t0));
          ("dur", Ojson.Float (us_of_ns (Int64.sub t1 t0)));
        ]
    | Inst { ekind; pid; t; a; b } ->
      Ojson.Obj
        [
          ("ph", Ojson.String "i");
          ("name", Ojson.String (ev_name ekind));
          ("pid", Ojson.Int 0);
          ("tid", Ojson.Int pid);
          ("ts", Ojson.Float (us_of_ns t));
          ("s", Ojson.String "t");
          ("args", Ojson.Obj [ ("a", Ojson.Int a); ("b", Ojson.Int b) ]);
        ]
    | Sample { name; t; v } ->
      Ojson.Obj
        [
          ("ph", Ojson.String "C");
          ("name", Ojson.String name);
          ("pid", Ojson.Int 0);
          ("tid", Ojson.Int 0);
          ("ts", Ojson.Float (us_of_ns t));
          ("args", Ojson.Obj [ ("value", Ojson.Int v) ]);
        ]
  in
  Ojson.Obj
    [
      ("traceEvents", Ojson.List (meta @ List.map of_event events));
      ("displayTimeUnit", Ojson.String "ns");
      ("droppedEvents", Ojson.Int o.dropped);
    ]

