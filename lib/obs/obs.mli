(** Virtual-time observability: spans, instants, counters, histograms.

    The subsystem runs entirely on the simulator's virtual clock, so
    instrumentation never perturbs simulated time: recording a span reads
    {!Hinfs_sim.Engine.now} but performs no engine effect. That also means
    the latency data is free of coordinated omission — there is no
    measurement thread to fall behind, every operation is timed.

    A single sink can be installed globally ({!install}); all the
    [span_*]/[instant]/[counter] entry points are no-ops — and allocate
    nothing — while no sink is installed, so instrumented fast paths cost
    zero when observability is off (the default). *)

module Engine = Hinfs_sim.Engine

(** Span kinds: one per VFS syscall plus the internal phases that the
    paper's analysis cares about (journal commit, writeback, flush/fence
    stalls, bandwidth-slot waits). *)
type kind =
  | Op_open
  | Op_close
  | Op_read
  | Op_write
  | Op_fsync
  | Op_seek
  | Op_mkdir
  | Op_rmdir
  | Op_unlink
  | Op_rename
  | Op_readdir
  | Op_stat
  | Op_exists
  | Op_truncate
  | Op_mmap
  | Op_munmap
  | Op_msync
  | Op_sync_all
  | Op_unmount
  | Journal_commit
  | Journal_recover
  | Writeback
  | Buffer_fetch
  | Flush
  | Fence
  | Slot_wait
  | Nvcache_append  (** nvcache tier absorbing one write *)
  | Nvcache_destage  (** nvcache destage batch to the backend *)
  | Nvcache_replay  (** nvcache mount-time log/slot replay *)
  | Snapshot_commit  (** CoW root-swap commit (refcount fixpoint + swap) *)
  | Snapshot_gc  (** CoW snapshot deletion / rollback refcount walk *)
  | Dev_retry  (** transient-media-read retry backoff (charged on clock) *)
  | Health_repair  (** repair daemon healing one quarantined shard *)
  | Req_lookup  (** serving layer: LOOKUP request, decode to reply *)
  | Req_getattr
  | Req_read
  | Req_write
  | Req_create
  | Req_remove
  | Req_rename
  | Req_commit
  | Srv_queue  (** request fan-in wait: client enqueue to worker pickup *)
  | Srv_decode  (** request decode on the worker *)
  | Srv_encode  (** reply encode on the worker *)
  | Srv_flush  (** serving-layer durability: stable write / COMMIT fsync *)

(** Instant (zero-duration) event kinds. *)
type ev =
  | Ev_bbm_eager  (** benefit model chose the eager persistence path *)
  | Ev_bbm_lazy  (** benefit model chose the lazy (buffered) path *)
  | Ev_mmap_pin
  | Ev_mmap_unpin
  | Ev_dead_drop  (** buffered block dropped without writeback *)
  | Ev_proc_spawn
  | Ev_quarantine  (** a=shard, b=health state code entering isolation *)
  | Ev_readmit  (** a=shard, b=repair attempts before success *)
  | Ev_session_expire  (** a=session id, b=cached opens reclaimed *)
  | Ev_estale  (** a=handle slot, b=generation that went stale *)
  | Ev_oc_evict  (** a=inode evicted from the open-file cache, b=1 if dirty *)

val kind_name : kind -> string
(** Stable dotted name, e.g. ["op.read"], ["journal.commit"]. *)

val ev_name : ev -> string
val all_kinds : kind list

type t

val create : ?trace:bool -> ?max_events:int -> Engine.t -> t
(** [trace] (default [false]) keeps individual events for Chrome-trace
    export, capped at [max_events] (default 200_000, overflow counted in
    {!dropped_events}); histograms and counters are always maintained. *)

val install : t -> unit
(** Make [t] the global sink and hook the engine's process spawn/switch
    callbacks. Replaces any previously installed sink. *)

val uninstall : unit -> unit
val current : unit -> t option
val enabled : unit -> bool

(** {2 Fast-path entry points} — no-ops (and allocation-free) when no sink
    is installed. *)

val span_begin : kind -> unit
val span_end : kind -> unit
(** Begin/end a nested span on the current process. [span_end] pops the
    innermost frame; a kind mismatch or pop of an empty stack increments
    {!mismatches} instead of raising. *)

val span_since : kind -> t0:int64 -> unit
(** Record a completed span from [t0] to now on the current process without
    touching the span stack. For leaf phases measured around a wait (e.g.
    bandwidth-slot acquisition) where begin/end bracketing is awkward. *)

val instant : ev -> a:int -> b:int -> unit
(** Record an instant event with two free-form integer arguments (pass 0
    when unused; plain ints so the disabled path allocates nothing). *)

val counter : string -> int -> unit
(** Record one sample of a named time-series counter. *)

(** {2 Sink inspection} *)

val reset : t -> unit
(** Clear histograms, counters, events and mismatch counts. Span stacks are
    preserved: processes mid-span across a measurement-window reset keep
    their frames (their in-flight span is recorded against the new window
    when it closes). *)

val open_spans : t -> int
(** Total frames currently open across all process stacks. *)

val mismatches : t -> int
val dropped_events : t -> int
val context_switches : t -> int

val hist : t -> kind -> Hist.summary
val nonempty_hists : t -> (kind * Hist.summary) list
(** In declaration order of {!kind}; only kinds with at least one sample. *)

val counter_summaries : t -> (string * Hist.summary) list
(** Per-counter sample statistics, sorted by counter name. *)

val start_sampler :
  ?period_ns:int64 -> t -> gauges:(string * (unit -> int)) list -> unit -> unit
(** [start_sampler t ~gauges] spawns a simulation process sampling every
    gauge each [period_ns] (default 1 ms of virtual time) into {!counter}.
    Returns a stop function; the sampler exits at its next tick after stop,
    so the engine still drains. *)

(** {2 Export} *)

val chrome_trace : t -> Ojson.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}]), loadable in
    Perfetto / chrome://tracing. Spans are "X" complete events with
    microsecond timestamps on the virtual clock, instants are "i", counter
    samples are "C"; process names are emitted as thread-name metadata. *)
