(** Log-linear ("HDR-style") latency histogram.

    Values are non-negative integers (virtual nanoseconds). Buckets are
    exact below 32 and log-linear above: each power-of-two octave is split
    into 32 linear sub-buckets, bounding the relative quantile error at
    about 3%. Recording is O(1) and allocation-free; all state is two flat
    int arrays plus exact count/sum/min/max. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> int -> unit
(** Record one value. Negative values are clamped to 0. *)

val count : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val sum : t -> int
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [q] in \[0;1\]: an upper bound on the value at rank
    [ceil (q * count)], exact to the bucket width (~3%), clamped to the
    exact recorded max. 0 when empty. *)

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

val summarize : t -> summary
