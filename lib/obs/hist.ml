(* Log-linear histogram.

   Bucket layout: values below [linear] (= 2^sub_bits = 32) get one exact
   bucket each. Above that, the octave containing the value (msb position
   [e] >= sub_bits) is split into 32 linear sub-buckets of width
   2^(e - sub_bits). Index arithmetic:

     idx v = v                                          if v < 32
           = (e - sub_bits + 1) * 32
             + ((v lsr (e - sub_bits)) land 31)         otherwise

   which is contiguous: idx 32 lands exactly at bucket 32. *)

let sub_bits = 5
let linear = 1 lsl sub_bits (* 32 *)

(* Enough buckets for values up to max_int on 64-bit. *)
let n_buckets = (62 - sub_bits + 2) * linear

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min = 0; max = 0 }

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min <- 0;
  t.max <- 0

let msb_pos v =
  (* Position of the most significant set bit; v >= 1. *)
  let pos = ref 0 in
  let v = ref v in
  if !v lsr 32 > 0 then begin pos := !pos + 32; v := !v lsr 32 end;
  if !v lsr 16 > 0 then begin pos := !pos + 16; v := !v lsr 16 end;
  if !v lsr 8 > 0 then begin pos := !pos + 8; v := !v lsr 8 end;
  if !v lsr 4 > 0 then begin pos := !pos + 4; v := !v lsr 4 end;
  if !v lsr 2 > 0 then begin pos := !pos + 2; v := !v lsr 2 end;
  if !v lsr 1 > 0 then pos := !pos + 1;
  !pos

let index_of v =
  if v < linear then v
  else
    let e = msb_pos v in
    ((e - sub_bits + 1) * linear) + ((v lsr (e - sub_bits)) land (linear - 1))

(* Inclusive upper bound of bucket [idx]: the largest value mapping to it. *)
let bucket_upper idx =
  if idx < linear then idx
  else
    let e = (idx / linear) - 1 + sub_bits in
    let sub = idx land (linear - 1) in
    let width = 1 lsl (e - sub_bits) in
    (1 lsl e) + (sub * width) + width - 1

let record t v =
  let v = if v < 0 then 0 else v in
  let idx = index_of v in
  t.buckets.(idx) <- t.buckets.(idx) + 1;
  if t.count = 0 then begin
    t.min <- v;
    t.max <- v
  end
  else begin
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum + v

let count t = t.count
let min_value t = t.min
let max_value t = t.max
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let acc = ref 0 in
    let idx = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let v = bucket_upper !idx in
    if v > t.max then t.max else v
  end

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

let summarize (t : t) =
  {
    count = t.count;
    min = t.min;
    max = t.max;
    mean = mean t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
    p999 = quantile t 0.999;
  }
