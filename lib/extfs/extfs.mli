(** EXT2/EXT4-like block file system over NVMMBD + the OS page cache — the
    paper's traditional baselines (Table 3). *)

(** Mount mode:
    - [Ext2]: no journaling;
    - [Ext4]: jbd2-style ordered-mode metadata journal with a periodic
      commit daemon;
    - [Ext4_dax]: the DAX patch — file data bypasses the page cache and
      moves directly to NVMM; metadata keeps the cache-and-journal path. *)
type mode = Ext2 | Ext4 | Ext4_dax

val mode_name : mode -> string

type t

(** {1 mkfs / mount} *)

val mkfs :
  Hinfs_nvmm.Device.t ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?total_blocks:int ->
  unit ->
  unit
(** [total_blocks] shrinks the file system below the device size (default:
    the whole device) so a durability tier can reserve the tail; the
    reduced geometry persists in the superblock. *)

val mount :
  Hinfs_nvmm.Device.t ->
  mode:mode ->
  ?sync_mount:bool ->
  ?cache_pages:int ->
  ?commit_interval:int64 ->
  unit ->
  t
(** Replays the journal (EXT4 modes), loads the allocation bitmaps, builds
    the page cache ([cache_pages] is the "system memory"). *)

val start_daemons : t -> unit
(** Spawn the pdflush-like flusher and (EXT4 modes) the periodic jbd commit
    daemon; call from inside a simulation process. *)

val mkfs_and_mount :
  Hinfs_nvmm.Device.t ->
  mode:mode ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?total_blocks:int ->
  ?sync_mount:bool ->
  ?cache_pages:int ->
  ?commit_interval:int64 ->
  ?daemons:bool ->
  unit ->
  t

val unmount : t -> unit
val sync_all : t -> unit

(** {1 Accessors} *)

val mode : t -> mode
val device : t -> Hinfs_nvmm.Device.t

val bdev : t -> Hinfs_blockdev.Blockdev.t
(** The NVMMBD instance this mount issues requests to — the attachment
    point for a {!Hinfs_blockdev.Blockdev.tier}. *)

val total_blocks : t -> int
val free_data_blocks : t -> int
val free_inodes : t -> int
val journal_commits : t -> int

(** {1 Inode operations} *)

val inode_size : t -> int -> int
val stat_of : t -> int -> Hinfs_vfs.Types.stat

val read :
  t -> ino:int -> off:int -> len:int -> into:Bytes.t -> into_off:int -> int

val write :
  t -> ino:int -> off:int -> src:Bytes.t -> src_off:int -> len:int ->
  sync:bool -> int

val truncate : t -> ino:int -> size:int -> unit
val fsync : t -> ino:int -> unit

(** {1 Namespace} *)

val lookup : t -> dir:int -> string -> int option
val create_file : t -> dir:int -> string -> int
val mkdir : t -> dir:int -> string -> int
val unlink : t -> dir:int -> string -> unit
val rmdir : t -> dir:int -> string -> unit

val rename :
  t -> src_dir:int -> src:string -> dst_dir:int -> dst:string -> unit

val readdir : t -> dir:int -> (string * int) list

(** {1 VFS} *)

module Backend : Hinfs_vfs.Backend.S with type t = t

val handle : t -> Hinfs_vfs.Vfs.handle
