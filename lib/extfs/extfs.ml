(* EXT2/EXT4-like block file system over NVMMBD + the OS page cache.

   These are the paper's traditional baselines (Table 3):
   - [Ext2]     no journaling; dirty pages written back by fsync, eviction
                pressure, and the pdflush-like daemon;
   - [Ext4]     ordered-mode jbd-style journaling of metadata blocks, with
                a 5 s commit daemon, data flushed before each commit;
   - [Ext4_dax] the DAX patch: file data bypasses the page cache and moves
                directly between the user buffer and NVMM, while metadata
                still takes the cache-and-journal path (the paper's
                explanation for EXT4-DAX's weak metadata performance).

   Every cached data or metadata access pays the double-copy and the
   generic block layer overhead — exactly the costs Fig. 3a attributes to
   this architecture. *)

module Proc = Hinfs_sim.Proc
module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Blockdev = Hinfs_blockdev.Blockdev
module Pagecache = Hinfs_pagecache.Pagecache
module Bj = Hinfs_journal.Block_journal
module Bitmap = Hinfs_structures.Bitmap
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Obs = Hinfs_obs.Obs
module Irec = Elayout.Irec

type mode = Ext2 | Ext4 | Ext4_dax

let mode_name = function
  | Ext2 -> "ext2+nvmmbd"
  | Ext4 -> "ext4+nvmmbd"
  | Ext4_dax -> "ext4-dax"

type t = {
  bdev : Blockdev.t;
  cache : Pagecache.t;
  geo : Elayout.geometry;
  mode : mode;
  journal : Bj.t option;
  journaled_pages : (int, Pagecache.page) Hashtbl.t;
  bbm : Bitmap.t; (* DRAM mirror of the data-block bitmap *)
  ibm : Bitmap.t; (* DRAM mirror of the inode bitmap *)
  sync_mount : bool;
  commit_interval : int64;
  mutable mounted : bool;
  mutable stopping : bool;
  mutable daemons_started : bool;
}

let device t = Blockdev.device t.bdev
let bdev t = t.bdev
let total_blocks t = t.geo.Elayout.total_blocks
let stats t = Device.stats (device t)
let now t = Engine.now (Device.engine (device t))
let block_size t = t.geo.Elayout.block_size
let mode t = t.mode

let mcat = Stats.Other

let charge_copy t cat len =
  if len > 0 then begin
    let config = Device.config (device t) in
    let lines =
      (len + config.Config.cacheline_size - 1) / config.Config.cacheline_size
    in
    let ns = lines * config.Config.dram_read_ns in
    Stats.add_time (stats t) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

(* --- metadata access through the page cache (+ journal in EXT4 modes) --- *)

(* Content provider for jbd: the freshest image of the block at commit
   time. *)
let block_image t block () =
  match Pagecache.find t.cache block with
  | Some _ ->
    (* Read the cached bytes without timing (the journal write itself is
       timed through the block device). *)
    Pagecache.with_page t.cache ~cat:mcat ~block Bytes.copy
  | None -> Blockdev.peek_block t.bdev block

let register_journaled t block =
  match t.journal with
  | None -> ()
  | Some bj ->
    Bj.journal_metadata bj ~block ~content:(block_image t block);
    if not (Hashtbl.mem t.journaled_pages block) then begin
      match Pagecache.find t.cache block with
      | Some page ->
        (* Keep journaled metadata in cache until the commit checkpoints
           it (jbd2 pins journaled buffers). *)
        Pagecache.pin page;
        Hashtbl.replace t.journaled_pages block page
      | None -> ()
    end

let meta_modify t ~block f =
  let result = Pagecache.modify t.cache ~cat:mcat ~block f in
  register_journaled t block;
  result

let meta_read t ~block f = Pagecache.with_page t.cache ~cat:mcat ~block f

let commit_journal t =
  match t.journal with
  | None -> ()
  | Some bj ->
    Bj.commit bj;
    Hashtbl.iter (fun _block page -> Pagecache.unpin page) t.journaled_pages;
    Hashtbl.reset t.journaled_pages

(* --- allocation (DRAM mirrors + on-disk bitmap blocks) --- *)

let set_bitmap_bit t ~bitmap_start ~index value =
  let bits_per_block = block_size t * 8 in
  let block = bitmap_start + (index / bits_per_block) in
  let bit = index mod bits_per_block in
  meta_modify t ~block (fun bytes ->
      let byte = Bytes.get_uint8 bytes (bit / 8) in
      let mask = 1 lsl (bit mod 8) in
      let byte = if value then byte lor mask else byte land lnot mask in
      Bytes.set_uint8 bytes (bit / 8) byte)

let alloc_data_block t =
  match Bitmap.find_first_clear t.bbm with
  | None -> Errno.raise_error ENOSPC "device full"
  | Some i ->
    Bitmap.set t.bbm i;
    set_bitmap_bit t ~bitmap_start:t.geo.Elayout.bbm_start ~index:i true;
    t.geo.Elayout.data_start + i

let free_data_block t block =
  let i = block - t.geo.Elayout.data_start in
  if i < 0 || not (Bitmap.get t.bbm i) then
    invalid_arg "Extfs.free_data_block: bad block";
  Bitmap.clear t.bbm i;
  set_bitmap_bit t ~bitmap_start:t.geo.Elayout.bbm_start ~index:i false;
  (* jbd2 "forget": never journal or checkpoint a freed block, and release
     its journal pin so invalidation does not wait for the next commit. *)
  (match t.journal with
  | Some bj ->
    Bj.forget bj ~block;
    (match Hashtbl.find_opt t.journaled_pages block with
    | Some page ->
      Pagecache.unpin page;
      Hashtbl.remove t.journaled_pages block
    | None -> ())
  | None -> ());
  Pagecache.invalidate t.cache block

let alloc_inode_num t =
  match Bitmap.find_first_clear t.ibm with
  | None -> Errno.raise_error ENOSPC "out of inodes"
  | Some i ->
    Bitmap.set t.ibm i;
    set_bitmap_bit t ~bitmap_start:t.geo.Elayout.ibm_start ~index:i true;
    i + 1

let free_inode_num t ino =
  Bitmap.clear t.ibm (ino - 1);
  set_bitmap_bit t ~bitmap_start:t.geo.Elayout.ibm_start ~index:(ino - 1) false

let free_data_blocks t = Bitmap.count_clear t.bbm
let free_inodes t = Bitmap.count_clear t.ibm

let journal_commits t =
  match t.journal with None -> 0 | Some bj -> Bj.commits bj

(* --- inode access --- *)

let with_inode t ino f =
  let block = Irec.block_of t.geo ino in
  let base = Irec.offset_of t.geo ino in
  meta_read t ~block (fun bytes -> f bytes ~base)

let modify_inode t ino f =
  let block = Irec.block_of t.geo ino in
  let base = Irec.offset_of t.geo ino in
  meta_modify t ~block (fun bytes -> f bytes ~base)

let check_ino t ino =
  if ino < 1 || ino > t.geo.Elayout.inode_count
     || not (with_inode t ino (fun b ~base -> Irec.in_use b ~base))
  then Errno.raise_error EBADF "bad inode %d" ino

let inode_size t ino = with_inode t ino (fun b ~base -> Irec.size b ~base)
let inode_kind t ino = with_inode t ino (fun b ~base -> Irec.kind b ~base)

let stat_of t ino =
  check_ino t ino;
  with_inode t ino (fun b ~base ->
      {
        Types.ino;
        kind =
          (if Irec.kind b ~base = Irec.kind_directory then Types.Directory
           else Types.Regular);
        size = Irec.size b ~base;
        nlink = Irec.links b ~base;
        blocks = Irec.blocks b ~base;
        mtime_ns = Irec.mtime b ~base;
      })

(* --- block mapping: direct / indirect / double indirect --- *)

(* Allocate and zero-initialise a block used as an indirect pointer block
   (metadata). *)
let alloc_pointer_block t =
  let block = alloc_data_block t in
  Pagecache.zero_block t.cache ~cat:mcat ~block;
  register_journaled t block;
  block

let read_ptr_block t ~block idx =
  meta_read t ~block (fun bytes ->
      Int32.to_int (Bytes.get_int32_le bytes (4 * idx)))

let write_ptr_block t ~block idx value =
  meta_modify t ~block (fun bytes ->
      Bytes.set_int32_le bytes (4 * idx) (Int32.of_int value))

(* Map a logical file block to a device block. With [alloc] missing levels
   are allocated; returns [(block, fresh)] or [None] for an unmapped hole.
   Counts fresh data blocks on the inode. *)
let get_block t ~ino ~fblock ~alloc =
  if fblock < 0 then invalid_arg "Extfs.get_block: negative file block";
  if fblock >= Elayout.max_fblocks t.geo then
    Errno.raise_error EFBIG "file block %d beyond double-indirect reach" fblock;
  let p = Elayout.ptrs_per_block t.geo in
  let fresh_data () =
    let block = alloc_data_block t in
    modify_inode t ino (fun b ~base ->
        Irec.set_blocks b ~base (Irec.blocks b ~base + 1));
    block
  in
  if fblock < Elayout.direct_ptrs then begin
    let cur = with_inode t ino (fun b ~base -> Irec.direct b ~base fblock) in
    if cur <> 0 then Some (cur, false)
    else if not alloc then None
    else begin
      let block = fresh_data () in
      modify_inode t ino (fun b ~base -> Irec.set_direct b ~base fblock block);
      Some (block, true)
    end
  end
  else if fblock < Elayout.direct_ptrs + p then begin
    let idx = fblock - Elayout.direct_ptrs in
    let ind = with_inode t ino (fun b ~base -> Irec.indirect b ~base) in
    let ind =
      if ind <> 0 then Some ind
      else if not alloc then None
      else begin
        let block = alloc_pointer_block t in
        modify_inode t ino (fun b ~base -> Irec.set_indirect b ~base block);
        Some block
      end
    in
    match ind with
    | None -> None
    | Some ind ->
      let cur = read_ptr_block t ~block:ind idx in
      if cur <> 0 then Some (cur, false)
      else if not alloc then None
      else begin
        let block = fresh_data () in
        write_ptr_block t ~block:ind idx block;
        Some (block, true)
      end
  end
  else begin
    let rest = fblock - Elayout.direct_ptrs - p in
    let outer = rest / p and inner = rest mod p in
    let dind = with_inode t ino (fun b ~base -> Irec.dindirect b ~base) in
    let dind =
      if dind <> 0 then Some dind
      else if not alloc then None
      else begin
        let block = alloc_pointer_block t in
        modify_inode t ino (fun b ~base -> Irec.set_dindirect b ~base block);
        Some block
      end
    in
    match dind with
    | None -> None
    | Some dind -> (
      let mid = read_ptr_block t ~block:dind outer in
      let mid =
        if mid <> 0 then Some mid
        else if not alloc then None
        else begin
          let block = alloc_pointer_block t in
          write_ptr_block t ~block:dind outer block;
          Some block
        end
      in
      match mid with
      | None -> None
      | Some mid ->
        let cur = read_ptr_block t ~block:mid inner in
        if cur <> 0 then Some (cur, false)
        else if not alloc then None
        else begin
          let block = fresh_data () in
          write_ptr_block t ~block:mid inner block;
          Some (block, true)
        end)
  end

(* Iterate mapped data blocks of a file as (fblock, block). *)
let iter_file_blocks t ~ino f =
  let bs = block_size t in
  let size = inode_size t ino in
  let nblocks = (size + bs - 1) / bs in
  for fblock = 0 to nblocks - 1 do
    match get_block t ~ino ~fblock ~alloc:false with
    | Some (block, _) -> f fblock block
    | None -> ()
  done

(* Free every data and pointer block of a file. *)
let free_file_blocks t ~ino =
  let p = Elayout.ptrs_per_block t.geo in
  with_inode t ino (fun b ~base ->
      for i = 0 to Elayout.direct_ptrs - 1 do
        let blk = Irec.direct b ~base i in
        if blk <> 0 then free_data_block t blk
      done)
  |> ignore;
  let free_indirect ind =
    if ind <> 0 then begin
      for i = 0 to p - 1 do
        let blk = read_ptr_block t ~block:ind i in
        if blk <> 0 then free_data_block t blk
      done;
      free_data_block t ind
    end
  in
  let ind = with_inode t ino (fun b ~base -> Irec.indirect b ~base) in
  free_indirect ind;
  let dind = with_inode t ino (fun b ~base -> Irec.dindirect b ~base) in
  if dind <> 0 then begin
    for i = 0 to p - 1 do
      let mid = read_ptr_block t ~block:dind i in
      free_indirect mid
    done;
    free_data_block t dind
  end

(* --- data path --- *)

let is_dax t = t.mode = Ext4_dax

let read t ~ino ~off ~len ~into ~into_off =
  check_ino t ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad read range";
  let bs = block_size t in
  let size = inode_size t ino in
  let len = if off >= size then 0 else min len (size - off) in
  let cat = Stats.Read_access in
  let rec copy done_ =
    if done_ < len then begin
      let pos = off + done_ in
      let fblock = pos / bs in
      let in_block = pos mod bs in
      let chunk = min (bs - in_block) (len - done_) in
      (match get_block t ~ino ~fblock ~alloc:false with
      | Some (block, _) ->
        if is_dax t then
          Device.read (device t) ~cat
            ~addr:((block * bs) + in_block)
            ~len:chunk ~into ~off:(into_off + done_)
        else
          Pagecache.read t.cache ~cat ~block ~off:in_block ~len:chunk ~into
            ~into_off:(into_off + done_)
      | None ->
        Bytes.fill into (into_off + done_) chunk '\000';
        charge_copy t cat chunk);
      copy (done_ + chunk)
    end
  in
  copy 0;
  len

(* Flush a file's cached data pages to the device (ordered data / fsync). *)
let flush_file_data ?background t ~ino =
  iter_file_blocks t ~ino (fun _fblock block ->
      Pagecache.flush_block ?background t.cache ~cat:Stats.Write_access block)

let fsync t ~ino =
  check_ino t ino;
  match t.mode with
  | Ext2 ->
    (* No journal: write the file's dirty data pages and its inode (plus
       bitmap) metadata pages. *)
    flush_file_data t ~ino;
    Pagecache.flush_block t.cache ~cat:mcat (Irec.block_of t.geo ino)
  | Ext4 ->
    flush_file_data t ~ino;
    commit_journal t
  | Ext4_dax ->
    (* Data reached NVMM at write time (DAX); metadata commits now. *)
    Device.mfence (device t) ~cat:mcat;
    commit_journal t

let write t ~ino ~off ~src ~src_off ~len ~sync =
  check_ino t ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad write range";
  let bs = block_size t in
  let size = inode_size t ino in
  let cat = Stats.Write_access in
  let touched = ref [] in
  let rec copy done_ =
    if done_ < len then begin
      let pos = off + done_ in
      let fblock = pos / bs in
      let in_block = pos mod bs in
      let chunk = min (bs - in_block) (len - done_) in
      let block, fresh =
        match get_block t ~ino ~fblock ~alloc:true with
        | Some (block, fresh) -> (block, fresh)
        | None -> assert false
      in
      if is_dax t then begin
        if fresh then begin
          (* Zero uncovered parts of a fresh block (no cache to zero). *)
          if in_block > 0 then begin
            let zeros = Bytes.make in_block '\000' in
            Device.write_nt (device t) ~cat ~addr:(block * bs) ~src:zeros
              ~off:0 ~len:in_block
          end;
          if in_block + chunk < bs then begin
            let zeros = Bytes.make (bs - in_block - chunk) '\000' in
            Device.write_nt (device t) ~cat
              ~addr:((block * bs) + in_block + chunk)
              ~src:zeros ~off:0
              ~len:(bs - in_block - chunk)
          end
        end;
        Device.write_nt (device t) ~cat
          ~addr:((block * bs) + in_block)
          ~src ~off:(src_off + done_) ~len:chunk
      end
      else begin
        if fresh then Pagecache.zero_block t.cache ~cat ~block;
        Pagecache.write t.cache ~cat ~block ~off:in_block ~src
          ~src_off:(src_off + done_) ~len:chunk;
        touched := block :: !touched
      end;
      copy (done_ + chunk)
    end
  in
  copy 0;
  if is_dax t then Device.mfence (device t) ~cat;
  let new_size = max size (off + len) in
  modify_inode t ino (fun b ~base ->
      if new_size <> size then Irec.set_size b ~base new_size;
      Irec.set_mtime b ~base (now t));
  (* Ordered mode: the journal must flush this data before committing the
     metadata that references it. *)
  (match t.journal, !touched with
  | Some bj, (_ :: _ as blocks) ->
    Bj.add_ordered_data bj (fun () ->
        Pagecache.flush_blocks t.cache ~cat blocks)
  | _ -> ());
  if sync || t.sync_mount then fsync t ~ino;
  len

let truncate t ~ino ~size =
  check_ino t ino;
  if size < 0 then Errno.raise_error EINVAL "negative size";
  let bs = block_size t in
  let old_size = inode_size t ino in
  if size < old_size then begin
    let keep_blocks = (size + bs - 1) / bs in
    let old_blocks = (old_size + bs - 1) / bs in
    let freed = ref 0 in
    for fblock = keep_blocks to old_blocks - 1 do
      match get_block t ~ino ~fblock ~alloc:false with
      | Some (block, _) ->
        free_data_block t block;
        incr freed;
        (* Zero the pointer so later extends see a hole. *)
        if fblock < Elayout.direct_ptrs then
          modify_inode t ino (fun b ~base -> Irec.set_direct b ~base fblock 0)
        else begin
          let p = Elayout.ptrs_per_block t.geo in
          if fblock < Elayout.direct_ptrs + p then begin
            let ind = with_inode t ino (fun b ~base -> Irec.indirect b ~base) in
            write_ptr_block t ~block:ind (fblock - Elayout.direct_ptrs) 0
          end
          else begin
            let rest = fblock - Elayout.direct_ptrs - p in
            let dind =
              with_inode t ino (fun b ~base -> Irec.dindirect b ~base)
            in
            let mid = read_ptr_block t ~block:dind (rest / p) in
            write_ptr_block t ~block:mid (rest mod p) 0
          end
        end
      | None -> ()
    done;
    (* Zero the tail of the last kept block. *)
    let tail = size mod bs in
    if tail <> 0 then begin
      match get_block t ~ino ~fblock:(size / bs) ~alloc:false with
      | Some (block, _) ->
        if is_dax t then begin
          let zeros = Bytes.make (bs - tail) '\000' in
          Device.write_nt (device t) ~cat:mcat
            ~addr:((block * bs) + tail)
            ~src:zeros ~off:0 ~len:(bs - tail)
        end
        else
          Pagecache.write t.cache ~cat:mcat ~block ~off:tail
            ~src:(Bytes.make (bs - tail) '\000')
            ~src_off:0 ~len:(bs - tail)
      | None -> ()
    end;
    modify_inode t ino (fun b ~base ->
        Irec.set_blocks b ~base (Irec.blocks b ~base - !freed))
  end;
  modify_inode t ino (fun b ~base ->
      Irec.set_size b ~base size;
      Irec.set_mtime b ~base (now t))

(* --- directory entries (64-byte records in dir data blocks) --- *)

let dirent_size = 64
let max_name_len = 55

let check_name name =
  if String.length name = 0 || String.length name > max_name_len then
    Errno.raise_error EINVAL "name %S too long (max %d)" name max_name_len

let dirents_per_block t = block_size t / dirent_size

(* Iterate live (slot_block, slot_index, name, ino); stop on [f] = false. *)
let dir_iter t ~dir f =
  let bs = block_size t in
  let nblocks = inode_size t dir / bs in
  let per_block = dirents_per_block t in
  let rec block_loop fblock =
    if fblock < nblocks then begin
      match get_block t ~ino:dir ~fblock ~alloc:false with
      | None -> block_loop (fblock + 1)
      | Some (block, _) ->
        let entries =
          meta_read t ~block (fun bytes ->
              let acc = ref [] in
              for slot = per_block - 1 downto 0 do
                let base = slot * dirent_size in
                let ino = Int32.to_int (Bytes.get_int32_le bytes base) in
                if ino <> 0 then begin
                  let name_len = Bytes.get_uint16_le bytes (base + 4) in
                  acc :=
                    (slot, Bytes.sub_string bytes (base + 6) name_len, ino)
                    :: !acc
                end
              done;
              !acc)
        in
        let rec entry_loop = function
          | [] -> block_loop (fblock + 1)
          | (slot, name, ino) :: rest ->
            if f ~block ~slot ~name ~ino then entry_loop rest
        in
        entry_loop entries
    end
  in
  block_loop 0

let dir_find t ~dir name =
  let result = ref None in
  dir_iter t ~dir (fun ~block ~slot ~name:entry ~ino ->
      if String.equal entry name then begin
        result := Some (ino, block, slot);
        false
      end
      else true);
  !result

let lookup t ~dir name =
  check_ino t dir;
  match dir_find t ~dir name with Some (ino, _, _) -> Some ino | None -> None

let readdir t ~dir =
  check_ino t dir;
  let acc = ref [] in
  dir_iter t ~dir (fun ~block:_ ~slot:_ ~name ~ino ->
      acc := (name, ino) :: !acc;
      true);
  List.rev !acc

let dir_is_empty t ~dir =
  let empty = ref true in
  dir_iter t ~dir (fun ~block:_ ~slot:_ ~name:_ ~ino:_ ->
      empty := false;
      false);
  !empty

let write_dirent t ~block ~slot ~name ~ino =
  meta_modify t ~block (fun bytes ->
      let base = slot * dirent_size in
      Bytes.fill bytes base dirent_size '\000';
      Bytes.set_int32_le bytes base (Int32.of_int ino);
      Bytes.set_uint16_le bytes (base + 4) (String.length name);
      Bytes.blit_string name 0 bytes (base + 6) (String.length name))

let dir_add t ~dir name ~ino =
  check_name name;
  let per_block = dirents_per_block t in
  let bs = block_size t in
  (* First free slot in existing blocks. *)
  let found = ref None in
  let nblocks = inode_size t dir / bs in
  (try
     for fblock = 0 to nblocks - 1 do
       match get_block t ~ino:dir ~fblock ~alloc:false with
       | None -> ()
       | Some (block, _) ->
         let slot =
           meta_read t ~block (fun bytes ->
               let free = ref None in
               for slot = per_block - 1 downto 0 do
                 if
                   Int32.to_int
                     (Bytes.get_int32_le bytes (slot * dirent_size))
                   = 0
                 then free := Some slot
               done;
               !free)
         in
         (match slot with
         | Some slot ->
           found := Some (block, slot);
           raise Exit
         | None -> ())
     done
   with Exit -> ());
  let block, slot =
    match !found with
    | Some bs -> bs
    | None ->
      (* Append a fresh dirent block. *)
      let block, fresh =
        match get_block t ~ino:dir ~fblock:nblocks ~alloc:true with
        | Some (block, fresh) -> (block, fresh)
        | None -> assert false
      in
      if fresh then begin
        Pagecache.zero_block t.cache ~cat:mcat ~block;
        register_journaled t block
      end;
      modify_inode t dir (fun b ~base ->
          Irec.set_size b ~base ((nblocks + 1) * bs));
      (block, 0)
  in
  write_dirent t ~block ~slot ~name ~ino

let dir_remove t ~dir name =
  match dir_find t ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, block, slot) ->
    meta_modify t ~block (fun bytes ->
        Bytes.set_int32_le bytes (slot * dirent_size) 0l);
    ino

(* --- namespace --- *)

let init_inode t ino ~kind =
  modify_inode t ino (fun b ~base ->
      Irec.clear b ~base;
      Irec.set_in_use b ~base true;
      Irec.set_kind b ~base kind;
      Irec.set_links b ~base (if kind = Irec.kind_directory then 2 else 1);
      Irec.set_mtime b ~base (now t))

let create_entry t ~dir name ~kind =
  check_ino t dir;
  if inode_kind t dir <> Irec.kind_directory then
    Errno.raise_error ENOTDIR "inode %d is not a directory" dir;
  (match dir_find t ~dir name with
  | Some _ -> Errno.raise_error EEXIST "%S already exists" name
  | None -> ());
  let ino = alloc_inode_num t in
  init_inode t ino ~kind;
  dir_add t ~dir name ~ino;
  ino

let create_file t ~dir name = create_entry t ~dir name ~kind:Irec.kind_regular
let mkdir t ~dir name = create_entry t ~dir name ~kind:Irec.kind_directory

let release_inode t ino =
  (* Invalidate cached data pages, free blocks, free the inode. *)
  iter_file_blocks t ~ino (fun _fblock block ->
      Pagecache.invalidate t.cache block);
  free_file_blocks t ~ino;
  modify_inode t ino (fun b ~base -> Irec.clear b ~base);
  free_inode_num t ino

let unlink t ~dir name =
  check_ino t dir;
  match dir_find t ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, _, _) ->
    if inode_kind t ino = Irec.kind_directory then
      Errno.raise_error EISDIR "%S is a directory" name;
    ignore (dir_remove t ~dir name);
    let links = with_inode t ino (fun b ~base -> Irec.links b ~base) in
    if links <= 1 then release_inode t ino
    else modify_inode t ino (fun b ~base -> Irec.set_links b ~base (links - 1))

let rmdir t ~dir name =
  check_ino t dir;
  match dir_find t ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, _, _) ->
    if inode_kind t ino <> Irec.kind_directory then
      Errno.raise_error ENOTDIR "%S is not a directory" name;
    if not (dir_is_empty t ~dir:ino) then
      Errno.raise_error ENOTEMPTY "%S is not empty" name;
    ignore (dir_remove t ~dir name);
    release_inode t ino

let rename t ~src_dir ~src ~dst_dir ~dst =
  check_ino t src_dir;
  check_ino t dst_dir;
  match dir_find t ~dir:src_dir src with
  | None -> Errno.raise_error ENOENT "no entry %S" src
  | Some (ino, _, _) ->
    (match dir_find t ~dir:dst_dir dst with
    | Some (existing, _, _) ->
      if inode_kind t existing = Irec.kind_directory then
        Errno.raise_error EISDIR "rename target %S is a directory" dst;
      ignore (dir_remove t ~dir:dst_dir dst);
      release_inode t existing
    | None -> ());
    dir_add t ~dir:dst_dir dst ~ino;
    ignore (dir_remove t ~dir:src_dir src)

(* --- mkfs / mount / lifecycle --- *)

let mkfs device ?journal_blocks ?inodes_per_mb ?total_blocks () =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  (* [total_blocks] lets a durability tier (lib/nvcache) reserve the tail
     of the device for itself; the reduced geometry persists in the
     superblock so mount needs no matching parameter. *)
  let total_blocks =
    match total_blocks with Some n -> n | None -> Config.blocks config
  in
  if total_blocks < 1 || total_blocks > Config.blocks config then
    invalid_arg "Extfs.mkfs: bad total_blocks";
  let geo =
    Elayout.geometry_of ?journal_blocks ?inodes_per_mb ~block_size
      ~total_blocks ()
  in
  let zero = Bytes.make block_size '\000' in
  for b = 0 to geo.Elayout.data_start - 1 do
    Device.poke device ~addr:(b * block_size) ~src:zero ~off:0 ~len:block_size
  done;
  let sb = Bytes.make block_size '\000' in
  Elayout.write_superblock_bytes geo sb;
  Device.poke device ~addr:0 ~src:sb ~off:0 ~len:block_size;
  (* Root inode. *)
  let itable = Bytes.make block_size '\000' in
  Irec.set_in_use itable ~base:0 true;
  Irec.set_kind itable ~base:0 Irec.kind_directory;
  Irec.set_links itable ~base:0 2;
  Device.poke device
    ~addr:(geo.Elayout.itable_start * block_size)
    ~src:itable ~off:0 ~len:block_size;
  (* Inode bitmap: mark root allocated. *)
  let ibm = Bytes.make block_size '\000' in
  Bytes.set_uint8 ibm 0 1;
  Device.poke device
    ~addr:(geo.Elayout.ibm_start * block_size)
    ~src:ibm ~off:0 ~len:block_size

let load_bitmap device geo ~start ~blocks ~bits =
  let block_size = geo.Elayout.block_size in
  let bitmap = Bitmap.create bits in
  for b = 0 to blocks - 1 do
    let bytes =
      Device.peek_persistent device ~addr:((start + b) * block_size)
        ~len:block_size
    in
    let base = b * block_size * 8 in
    for bit = 0 to (block_size * 8) - 1 do
      if base + bit < bits then
        if Bytes.get_uint8 bytes (bit / 8) land (1 lsl (bit mod 8)) <> 0 then
          Bitmap.set bitmap (base + bit)
    done
  done;
  bitmap

let mount device ~mode ?(sync_mount = false) ?(cache_pages = 4096)
    ?(commit_interval = 5_000_000_000L) () =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  let sb = Device.peek_persistent device ~addr:0 ~len:block_size in
  match Elayout.read_superblock_bytes ~block_size sb with
  | None -> Errno.raise_error EINVAL "no EXTF superblock on device"
  | Some geo ->
    let bdev = Blockdev.create device in
    (* Journal replay before anything else (EXT4 modes). *)
    if mode <> Ext2 then
      ignore
        (Bj.recover bdev ~first_block:geo.Elayout.journal_start
           ~blocks:geo.Elayout.journal_blocks);
    let cache = Pagecache.create bdev ~capacity_pages:cache_pages in
    let journal =
      if mode = Ext2 then None
      else
        Some
          (Bj.create bdev ~first_block:geo.Elayout.journal_start
             ~blocks:geo.Elayout.journal_blocks)
    in
    let bbm =
      load_bitmap device geo ~start:geo.Elayout.bbm_start
        ~blocks:geo.Elayout.bbm_blocks
        ~bits:(geo.Elayout.total_blocks - geo.Elayout.data_start)
    in
    let ibm =
      load_bitmap device geo ~start:geo.Elayout.ibm_start
        ~blocks:geo.Elayout.ibm_blocks ~bits:geo.Elayout.inode_count
    in
    {
      bdev;
      cache;
      geo;
      mode;
      journal;
      journaled_pages = Hashtbl.create 64;
      bbm;
      ibm;
      sync_mount;
      commit_interval;
      mounted = true;
      stopping = false;
      daemons_started = false;
    }

(* pdflush + periodic jbd commit daemons. Call from inside a process. *)
let start_daemons t =
  if t.daemons_started then invalid_arg "Extfs: daemons already started";
  t.daemons_started <- true;
  Pagecache.start_flusher t.cache;
  if t.journal <> None then
    Proc.spawn ~name:"jbd-commit" (fun () ->
        let rec loop () =
          if not t.stopping then begin
            Proc.delay t.commit_interval;
            if not t.stopping then begin
              commit_journal t;
              loop ()
            end
          end
        in
        loop ())

let sync_all t =
  Pagecache.flush_all t.cache ~cat:Stats.Write_access;
  commit_journal t

let unmount t =
  if t.mounted then begin
    t.mounted <- false;
    t.stopping <- true;
    Pagecache.stop_flusher t.cache;
    sync_all t
  end

let mkfs_and_mount device ~mode ?journal_blocks ?inodes_per_mb ?total_blocks
    ?sync_mount ?cache_pages ?commit_interval ?(daemons = false) () =
  mkfs device ?journal_blocks ?inodes_per_mb ?total_blocks ();
  let t = mount device ~mode ?sync_mount ?cache_pages ?commit_interval () in
  if daemons then start_daemons t;
  t

(* --- Backend.S instance --- *)

module Backend : Hinfs_vfs.Backend.S with type t = t = struct
  type nonrec t = t

  let fs_name t = mode_name t.mode
  let device = device
  let sync_mount t = t.sync_mount
  let root_ino _ = Elayout.root_ino
  let lookup = lookup
  let create_file = create_file
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let rename = rename
  let readdir = readdir
  let stat t ~ino = stat_of t ino
  let read = read
  let write = write
  let truncate = truncate
  let fsync = fsync

  (* mmap through the page cache (or direct for DAX) is modelled as
     fsync-equivalent synchronisation: before the mapping is exposed the
     file's in-flight updates must be ordered on the medium with full
     fsync semantics (data flush plus journal commit / DAX fence), not
     just a data writeback — the same ordering the Pmfs.mmap path pays. *)
  let mmap t ~ino =
    fsync t ~ino;
    Obs.instant Obs.Ev_mmap_pin ~a:ino ~b:0

  let munmap _ ~ino = Obs.instant Obs.Ev_mmap_unpin ~a:ino ~b:0
  let msync t ~ino = fsync t ~ino
  let sync_all = sync_all
  let unmount = unmount
end

module Vfs_layer = Hinfs_vfs.Vfs.Make (Backend)

let handle t = Vfs_layer.handle t
