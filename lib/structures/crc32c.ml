(* CRC-32C (Castagnoli), the checksum NVMM file systems use for metadata
   (NOVA's csum, PMEM's badblock scrubbing tools). Table-driven, reflected
   polynomial 0x82F63B78. Values are 32-bit, carried in native ints. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Crc32c.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get bytes i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest bytes ~off ~len = update 0 bytes ~off ~len

let digest_string s = digest (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
