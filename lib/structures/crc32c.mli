(** CRC-32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum
    used on critical on-NVMM metadata. Results are 32-bit values carried in
    native ints. *)

val digest : Bytes.t -> off:int -> len:int -> int
(** Checksum of [bytes[off, off+len)]. *)

val update : int -> Bytes.t -> off:int -> len:int -> int
(** Streaming form: [update crc b ~off ~len] extends a previous digest. *)

val digest_string : string -> int
(** [digest_string "123456789" = 0xE3069283] (the standard check value). *)
