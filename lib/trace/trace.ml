(* System-call trace model, synthetic generators, and the replayer.

   The paper replays four system-call traces (FIU Usr0/Usr1, LASR,
   MobiBench-Facebook), extracting read, write, unlink and fsync and timing
   each class (Fig. 12). The original traces are not redistributable, so
   each generator synthesises a trace matching the properties the paper
   reports and relies on:

   - Usr0/Usr1 (research desktops): mixed read/write with strong locality,
     a moderate share of fsync-covered writes (Fig. 2 shows a middling
     fsync-byte ratio), occasional deletes; Usr1 is more write-heavy.
   - LASR (software-development machines): *no fsync at all* (Fig. 2 shows
     0%), small I/O, read-leaning, frequent small rewrites.
   - Facebook (MobiBench): SQLite-style behaviour — small writes (mean I/O
     below 1 KB) nearly every one of which is followed by an fsync, so
     buffering cannot coalesce anything (the paper's explanation for HiNFS
     ~ PMFS on this trace).

   Each record targets a numbered file; the replayer pre-creates the file
   population, keeps per-file descriptors, and accounts each operation's
   virtual time to its op class. *)

module Rng = Hinfs_sim.Rng
module Zipf = Hinfs_sim.Zipf
module Proc = Hinfs_sim.Proc
module Stats = Hinfs_stats.Stats
module Vfs = Hinfs_vfs.Vfs
module Obs = Hinfs_obs.Obs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno

type op =
  | Read of { file : int; off : int; len : int }
  | Write of { file : int; off : int; len : int }
  | Unlink of { file : int }
  | Fsync of { file : int }

type t = {
  trace_name : string;
  nfiles : int;
  initial_file_size : int;
  ops : op list;
}

let name t = t.trace_name
let length t = List.length t.ops
let ops t = t.ops

(* --- generator scaffolding ---

   Files belong to behaviour classes, because that is what real desktop
   traces look like (and what makes the paper's Buffer Benefit Model ~90%
   accurate, Fig. 6 — per-block sync behaviour is stable over time):

   - Doc:     bursts of overlapping writes to one region, fsynced every few
              bursts (editors, office apps): coalescing pays, blocks stay
              Lazy-Persistent;
   - Log:     small writes each followed by fsync (databases, mail):
              nothing coalesces, blocks go Eager-Persistent;
   - Scratch: writes never fsynced (build outputs, caches). *)

type file_class = Doc | Log | Scratch

type profile = {
  p_name : string;
  p_nfiles : int;
  p_initial_size : int;
  p_theta : float; (* file-selection skew *)
  p_read : float; (* op-mix weights (normalised internally) *)
  p_write : float;
  p_unlink : float;
  p_mean_io : int;
  p_io_spread : int; (* io size uniform in [mean-spread, mean+spread] *)
  p_doc : float; (* fraction of files that are Doc-class *)
  p_log : float; (* fraction that are Log-class; rest are Scratch *)
  p_burst : int; (* writes per Doc burst (overlapping region) *)
  p_fsync_bursts : int; (* fsync a Doc file every this many bursts *)
}

let class_of profile file =
  (* Deterministic per-file class assignment, spread so the class mix also
     holds among the zipf-hot low ranks. *)
  let u = float_of_int (((file * 37) + 13) mod 100) /. 100.0 in
  if u < profile.p_doc then Doc
  else if u < profile.p_doc +. profile.p_log then Log
  else Scratch

let generate profile ~ops ~seed =
  let rng = Rng.create ~seed in
  let zipf = Zipf.create ~n:profile.p_nfiles ~theta:profile.p_theta in
  let total = profile.p_read +. profile.p_write +. profile.p_unlink in
  let bursts_since_sync = Hashtbl.create 64 in
  let max_off = 4 * profile.p_initial_size in
  let io_size () =
    max 16
      (profile.p_mean_io - profile.p_io_spread
      + Rng.int rng ((2 * profile.p_io_spread) + 1))
  in
  let record _i =
    let file = Zipf.sample zipf rng in
    let dice = Rng.float rng *. total in
    if dice < profile.p_read then
      [ Read { file; off = Rng.int rng max_off; len = io_size () } ]
    else if dice < profile.p_read +. profile.p_write then begin
      match class_of profile file with
      | Scratch -> [ Write { file; off = Rng.int rng max_off; len = io_size () } ]
      | Log ->
        (* Small commit-like write, synced immediately. *)
        [ Write { file; off = Rng.int rng max_off; len = io_size () };
          Fsync { file } ]
      | Doc ->
        (* A burst of overlapping writes to one region (block-aligned, as
           application record/page updates are); coalescing-friendly. *)
        let base = Rng.int rng (max 1 (max_off / 4096)) * 4096 in
        let burst =
          List.init profile.p_burst (fun _ ->
              Write { file; off = base + Rng.int rng 512; len = io_size () })
        in
        let bursts =
          1 + Option.value ~default:0 (Hashtbl.find_opt bursts_since_sync file)
        in
        if bursts >= profile.p_fsync_bursts then begin
          Hashtbl.replace bursts_since_sync file 0;
          burst @ [ Fsync { file } ]
        end
        else begin
          Hashtbl.replace bursts_since_sync file bursts;
          burst
        end
    end
    else begin
      Hashtbl.remove bursts_since_sync file;
      [ Unlink { file } ]
    end
  in
  {
    trace_name = profile.p_name;
    nfiles = profile.p_nfiles;
    initial_file_size = profile.p_initial_size;
    ops = List.concat (List.init ops record);
  }

(* --- the four trace profiles --- *)

let usr0 ?(ops = 8_000) ?(seed = 100L) () =
  generate
    {
      p_name = "usr0";
      p_nfiles = 128;
      p_initial_size = 32 * 1024;
      p_theta = 0.85;
      p_read = 0.30;
      p_write = 0.66;
      p_unlink = 0.04;
      p_mean_io = 8 * 1024;
      p_io_spread = 6 * 1024;
      p_doc = 0.45;
      p_log = 0.20;
      p_burst = 5;
      p_fsync_bursts = 2;
    }
    ~ops ~seed

let usr1 ?(ops = 8_000) ?(seed = 101L) () =
  generate
    {
      p_name = "usr1";
      p_nfiles = 128;
      p_initial_size = 32 * 1024;
      p_theta = 0.80;
      p_read = 0.20;
      p_write = 0.76;
      p_unlink = 0.04;
      p_mean_io = 12 * 1024;
      p_io_spread = 8 * 1024;
      p_doc = 0.35;
      p_log = 0.30;
      p_burst = 4;
      p_fsync_bursts = 2;
    }
    ~ops ~seed

let lasr ?(ops = 8_000) ?(seed = 102L) () =
  generate
    {
      p_name = "lasr";
      p_nfiles = 160;
      p_initial_size = 16 * 1024;
      p_theta = 0.90;
      p_read = 0.45;
      p_write = 0.50;
      p_unlink = 0.05;
      p_mean_io = 2 * 1024;
      p_io_spread = 1536;
      p_doc = 0.0 (* Fig. 2: LASR has no fsync writes at all *);
      p_log = 0.0;
      p_burst = 1;
      p_fsync_bursts = max_int;
    }
    ~ops ~seed

let facebook ?(ops = 8_000) ?(seed = 103L) () =
  generate
    {
      p_name = "facebook";
      p_nfiles = 64;
      p_initial_size = 8 * 1024;
      p_theta = 0.95;
      p_read = 0.18;
      p_write = 0.80;
      p_unlink = 0.02;
      p_mean_io = 512 (* mean I/O below 1 KB, §5.3 *);
      p_io_spread = 384;
      p_doc = 0.05;
      p_log = 0.90 (* SQLite-style: sync after almost every write *);
      p_burst = 3;
      p_fsync_bursts = 1;
    }
    ~ops ~seed

let all ?ops () =
  [ usr0 ?ops (); usr1 ?ops (); lasr ?ops (); facebook ?ops () ]

(* --- replayer --- *)

type replay_result = {
  r_trace : string;
  r_fs_name : string;
  r_elapsed_ns : int64;
  r_read_ns : int64;
  r_write_ns : int64;
  r_unlink_ns : int64;
  r_fsync_ns : int64;
  r_ops : int;
}

let pp_replay_result ppf r =
  Fmt.pf ppf
    "%-9s %-14s total %10.3f ms  (read %8.3f  write %8.3f  unlink %8.3f  \
     fsync %8.3f)"
    r.r_trace r.r_fs_name
    (Int64.to_float r.r_elapsed_ns /. 1e6)
    (Int64.to_float r.r_read_ns /. 1e6)
    (Int64.to_float r.r_write_ns /. 1e6)
    (Int64.to_float r.r_unlink_ns /. 1e6)
    (Int64.to_float r.r_fsync_ns /. 1e6)

let file_path i = Printf.sprintf "/trace/t%04d" i

(* Replay on a mounted handle. Population runs first; the stats are reset
   so only the replay window is measured. Must run inside a simulation
   process. *)
let replay ~stats trace (h : Vfs.handle) =
  (* Populate. *)
  if not (h.Vfs.exists "/trace") then h.Vfs.mkdir "/trace";
  let scratch = Bytes.make (1024 * 1024) 't' in
  for i = 0 to trace.nfiles - 1 do
    let fd = h.Vfs.open_ (file_path i) { Types.creat with Types.truncate = true } in
    ignore (h.Vfs.write fd scratch trace.initial_file_size);
    h.Vfs.close fd
  done;
  h.Vfs.sync_all ();
  Stats.reset stats;
  (match Obs.current () with Some o -> Obs.reset o | None -> ());
  let fds = Hashtbl.create 64 in
  let fd_of file =
    match Hashtbl.find_opt fds file with
    | Some fd -> fd
    | None ->
      let fd = h.Vfs.open_ (file_path file) { Types.rdwr with Types.create = true } in
      Hashtbl.replace fds file fd;
      fd
  in
  let close_fd file =
    match Hashtbl.find_opt fds file with
    | Some fd ->
      (try h.Vfs.close fd with Errno.Fs_error _ -> ());
      Hashtbl.remove fds file
    | None -> ()
  in
  let start = Proc.now () in
  let ops = ref 0 in
  let timed cls f =
    let t0 = Proc.now () in
    (try f () with Errno.Fs_error _ -> ());
    Stats.add_op_time stats cls (Int64.sub (Proc.now ()) t0);
    Stats.op_done ~op_class:cls stats;
    incr ops
  in
  List.iter
    (fun op ->
      match op with
      | Read { file; off; len } ->
        timed Stats.Read_op (fun () ->
            ignore (h.Vfs.pread (fd_of file) ~off scratch len))
      | Write { file; off; len } ->
        timed Stats.Write_op (fun () ->
            ignore (h.Vfs.pwrite (fd_of file) ~off scratch len))
      | Unlink { file } ->
        timed Stats.Unlink_op (fun () ->
            close_fd file;
            h.Vfs.unlink (file_path file))
      | Fsync { file } ->
        timed Stats.Fsync_op (fun () -> h.Vfs.fsync (fd_of file)))
    trace.ops;
  Hashtbl.iter (fun _ fd -> try h.Vfs.close fd with Errno.Fs_error _ -> ()) fds;
  {
    r_trace = trace.trace_name;
    r_fs_name = h.Vfs.fs_name;
    r_elapsed_ns = Int64.sub (Proc.now ()) start;
    r_read_ns = Stats.op_time stats Stats.Read_op;
    r_write_ns = Stats.op_time stats Stats.Write_op;
    r_unlink_ns = Stats.op_time stats Stats.Unlink_op;
    r_fsync_ns = Stats.op_time stats Stats.Fsync_op;
    r_ops = !ops;
  }
