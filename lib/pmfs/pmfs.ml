(* PMFS: the direct-access NVMM file system baseline (Dulloor et al.,
   EuroSys'14), re-implemented on the device model.

   Data path: user data is copied straight between the user buffer and NVMM
   with non-temporal stores (PMFS's copy_from_user_inatomic_nocache), so
   every write pays NVMM latency in the critical path — the overhead HiNFS
   attacks. Reads are direct loads.

   Metadata: journaled at cacheline granularity through the undo log;
   single-field updates (mtime on a non-extending write) use 8-byte atomic
   in-place stores instead of a transaction, as PMFS does.

   This module is also the persistent substrate of HiNFS, which layers the
   DRAM write buffer on top of the same format (paper §4: "HiNFS is
   implemented based on PMFS"). The [Data] section exposes the lower-level
   operations HiNFS needs. *)

module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Allocator = Hinfs_nvmm.Allocator
module Fault = Hinfs_nvmm.Fault
module Log = Hinfs_journal.Cacheline_log
module Stats = Hinfs_stats.Stats
module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Obs = Hinfs_obs.Obs

type t = {
  ctx : Fs_ctx.t;
  sync_mount : bool;
  mutable mounted : bool;
  recovered_txns : int;
  recovered_by_shard : int array; (* rolled-back txns per shard journal *)
  health : Health.t; (* per-fault-domain state machine *)
  mutable retry : Fault.retry_policy; (* transient-read retry/backoff *)
}

let ctx t = t.ctx
let geometry t = t.ctx.Fs_ctx.geo
let device t = t.ctx.Fs_ctx.device

(* Shard 0's journal: the only journal when shards = 1, and the
   conventional home for mount-scoped bookkeeping otherwise. Per-inode
   operations must use [log_for]. *)
let log t = (Fs_ctx.shard t.ctx 0).Fs_ctx.log
let log_for t ~ino = Fs_ctx.log_for t.ctx ~ino
let shard_count t = Fs_ctx.shard_count t.ctx
let shard_of_ino t ino = Fs_ctx.shard_of_ino t.ctx ino
let epoch t = Fs_ctx.epoch t.ctx
let recovered_txns t = t.recovered_txns
let recovered_by_shard t = Array.copy t.recovered_by_shard
let free_data_blocks t = Fs_ctx.free_data_blocks t.ctx
let free_inodes t = Fs_ctx.free_inodes t.ctx

(* Crash-fixture sabotage: when set, cross-shard renames commit each
   shard's transaction independently instead of through the epoch record,
   recreating the torn-rename window the epoch protocol exists to close.
   Used by crashmc vacuity fixtures only. *)
let sabotage_skip_epoch = ref false
let set_sabotage_skip_epoch v = sabotage_skip_epoch := v

(* --- graceful degradation (per fault domain) ---

   An unrecoverable metadata fault must not abort the machine. PR 2
   degraded the whole mount read-only; with the hot state sharded, the
   blast radius of a fault is one shard (its journal sub-region, allocator
   ranges, inode range), so each shard is now its own fault domain with a
   Healthy -> Degraded -> Quarantined -> Repairing state machine (see
   {!Health}). Unsharded mounts keep the old behaviour: every fault lands
   on the [Mount] domain, which only ever reaches [Degraded]. *)

let health t = t.health
let retry_policy t = t.retry
let set_retry_policy t policy = t.retry <- policy

(* Whole-mount view, unchanged for shards = 1: [read_only] means no write
   anywhere can succeed. *)
let read_only t = Health.mount_state t.health <> Health.Healthy

let read_only_reason t =
  Health.state_reason (Health.mount_state t.health)

(* Any domain unhealthy: the image must not be certified clean. *)
let fully_healthy t = Health.all_healthy t.health

(* Route a fault to its owning domain: sharded mounts degrade just the
   shard, unsharded mounts (and shard-unattributable faults) the mount. *)
let domain_for t s =
  if shard_count t > 1 then Health.Shard s else Health.Mount

let degrade t reason = Health.degrade t.health Health.Mount reason
let degrade_shard t s reason = Health.degrade t.health (domain_for t s) reason

let check_writable t =
  match Health.mount_state t.health with
  | Health.Healthy -> ()
  | st ->
    Errno.raise_error EROFS "file system is read-only: %s"
      (match Health.state_reason st with Some r -> r | None -> "")

(* Writes need the mount and the inode's home shard; reads survive a
   degraded shard (DRAM or replicas may hold the only good copy) but fail
   fast once the repair daemon has isolated it. *)
let check_writable_ino t ~ino =
  match Health.writable_reason t.health (shard_of_ino t ino) with
  | None -> ()
  | Some (domain, reason) ->
    Errno.raise_error EROFS "%s is read-only: %s"
      (Health.domain_name domain) reason

let check_readable_ino t ~ino =
  match Health.readable_reason t.health (shard_of_ino t ino) with
  | None -> ()
  | Some (domain, reason) ->
    Errno.raise_error EIO "%s is quarantined: %s" (Health.domain_name domain)
      reason

(* Which shard owns a faulting byte address, for blast-radius attribution:
   journal sub-regions, inode-table slots, and data blocks all map to a
   shard; superblock / epoch-record / index addresses do not. *)
let shard_of_addr t addr =
  let geo = geometry t in
  let bs = geo.Layout.block_size in
  let block = addr / bs in
  if block >= geo.Layout.data_start && block < geo.Layout.data_end then
    Some (Layout.shard_of_block geo block)
  else if
    block >= geo.Layout.itable_start
    && block < geo.Layout.itable_start + geo.Layout.itable_blocks
  then begin
    let itable_addr = geo.Layout.itable_start * bs in
    let ino = ((addr - itable_addr) / Layout.inode_size) + 1 in
    if ino >= 1 && ino <= geo.Layout.inode_count then
      Some (Layout.shard_of_ino geo ino)
    else None
  end
  else if block >= geo.Layout.journal_start
          && block < geo.Layout.journal_start + geo.Layout.journal_blocks
  then begin
    let per = geo.Layout.journal_blocks / geo.Layout.shards in
    if per = 0 then None
    else Some (min ((block - geo.Layout.journal_start) / per)
                 (geo.Layout.shards - 1))
  end
  else None

(* Bounded retry for transient media faults, with a configurable
   deterministic backoff charged on the virtual clock (so retries are
   visible in the dev.retry histogram, not free). Unrecoverable
   (poisoned-line) faults degrade the owning fault domain and surface as
   EIO on the data path: the repair daemon takes it from there. *)
let read_retrying t ~cat ~addr ~len ~into ~off =
  let stats = Fs_ctx.stats t.ctx in
  let policy = t.retry in
  let rec go attempt =
    try Device.read (device t) ~cat ~addr ~len ~into ~off with
    | Fault.Media_error { transient = true; _ }
      when attempt < policy.Fault.max_retries ->
      Stats.add_media_retry stats;
      let backoff = Fault.retry_backoff_ns policy ~attempt in
      if backoff > 0 then begin
        let t0 = Engine.now (Device.engine (device t)) in
        Stats.add_time stats cat (Int64.of_int backoff);
        Proc.delay_int backoff;
        Obs.span_since Obs.Dev_retry ~t0
      end;
      go (attempt + 1)
  in
  try go 0 with
  | Fault.Media_error { addr = fault_addr; transient } ->
    (match shard_of_addr t fault_addr with
    | Some s ->
      degrade_shard t s
        (Fmt.str "uncorrectable media error at %#x" fault_addr)
    | None ->
      degrade t (Fmt.str "uncorrectable media error at %#x" fault_addr));
    ignore transient;
    Errno.raise_error EIO "uncorrectable NVMM media error at %#x" fault_addr

let now t = Engine.now (Device.engine (device t))

(* --- mkfs / mount --- *)

let mkfs device ?journal_blocks ?inodes_per_mb ?shards () =
  let config = Device.config device in
  let geo =
    Layout.geometry_of_config ?journal_blocks ?inodes_per_mb ?shards config
  in
  (* Zero the metadata regions. *)
  let zero = Bytes.make geo.Layout.block_size '\000' in
  for b = 0 to geo.Layout.data_start - 1 do
    Device.poke device
      ~addr:(b * geo.Layout.block_size)
      ~src:zero ~off:0 ~len:geo.Layout.block_size
  done;
  (* Root directory inode. *)
  let root = Bytes.make Layout.inode_size '\000' in
  Bytes.set_uint8 root Layout.Inode.in_use_off 1;
  Bytes.set_uint8 root Layout.Inode.kind_off Layout.Inode.kind_directory;
  Bytes.set_uint16_le root Layout.Inode.links_off 2;
  Device.poke device
    ~addr:(geo.Layout.itable_start * geo.Layout.block_size)
    ~src:root ~off:0 ~len:Layout.inode_size;
  Layout.write_superblock device geo ~clean:true

(* Rebuild DRAM allocation state by walking the live inode trees (PMFS
   keeps its free lists volatile and reconstructs them at mount). *)
let rebuild_allocators ctx =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  for ino = 1 to geo.Layout.inode_count do
    if Layout.Inode.in_use device geo ino then begin
      Fs_ctx.mark_ino_allocated ctx ino;
      Block_tree.iter_blocks ctx ~ino (fun _fblock block ->
          Fs_ctx.mark_block_allocated ctx block);
      Block_tree.iter_index_nodes ctx ~ino (fun block ->
          Fs_ctx.mark_block_allocated ctx block)
    end
  done

(* Mount-time poison sweep: a poisoned cacheline inside a live inode's
   slot means metadata we can neither trust nor rebuild — there is no
   replica of the inode table. That is the unrecoverable rung of the
   degradation ladder. The damage is attributed per shard (the inode range
   is partitioned), so on a sharded mount only the owning shard degrades.
   Poison over free inode slots is harmless here (the scrubber zeroes
   it). Returns [(shard, reason)] pairs. *)
let itable_poison_reasons device geo =
  let bs = geo.Layout.block_size in
  let itable_addr = geo.Layout.itable_start * bs in
  let itable_len = geo.Layout.itable_blocks * bs in
  let bad =
    List.filter_map
      (fun addr ->
        let ino = ((addr - itable_addr) / Layout.inode_size) + 1 in
        if ino >= 1 && ino <= geo.Layout.inode_count
           && Layout.Inode.in_use device geo ino
        then Some ino
        else None)
      (Device.verify_range device ~addr:itable_addr ~len:itable_len)
    |> List.sort_uniq compare
  in
  let by_shard = Hashtbl.create 4 in
  List.iter
    (fun ino ->
      let s = Layout.shard_of_ino geo ino in
      Hashtbl.replace by_shard s
        (ino :: (try Hashtbl.find by_shard s with Not_found -> [])))
    bad;
  Hashtbl.fold
    (fun s inos acc ->
      let inos = List.rev inos in
      ( s,
        Fmt.str "poisoned inode table (inode%s %a)"
          (if List.length inos = 1 then "" else "s")
          Fmt.(list ~sep:comma int)
          inos )
      :: acc)
    by_shard []
  |> List.sort compare

let mount device ?(sync_mount = false) ?(journal_cleaner = false)
    ?(retry = Fault.default_retry) () =
  match Layout.read_superblock device with
  | `Absent -> Errno.raise_error EINVAL "no PMFS superblock on device"
  | `Corrupt ->
    (* Both superblock copies damaged (poison or checksum failure): the
       device is formatted but unreadable. Failing with EIO — rather than
       guessing a geometry — is the only honest answer; a bogus mount
       would corrupt whatever is still recoverable offline. *)
    Errno.raise_error EIO "both superblock copies are corrupt"
  | `Ok (geo, clean) ->
    let nshards = geo.Layout.shards in
    (* The epoch watermark must be read before any journal is recovered:
       it decides which epoch-commit entries count as committed in every
       shard's region. *)
    let committed_epoch =
      if clean then 0
      else
        Hinfs_journal.Epoch.read_committed device
          ~block:(Layout.epoch_block geo)
    in
    let recoveries =
      Array.init nshards (fun s ->
          if clean then { Log.rolled_back = 0; dropped = 0 }
          else begin
            let first_block, blocks = Layout.journal_region geo s in
            Log.recover device ~committed_epoch ~first_block ~blocks ()
          end)
    in
    let rolled_back =
      Array.fold_left (fun acc r -> acc + r.Log.rolled_back) 0 recoveries
    in
    let dropped =
      Array.fold_left (fun acc r -> acc + r.Log.dropped) 0 recoveries
    in
    if not clean then
      Stats.add_recovery (Device.stats device) ~rolled_back ~dropped;
    (* Reset the epoch record only after recovery consumed the watermark:
       the new generation's epochs restart at 1. *)
    let epoch =
      Hinfs_journal.Epoch.create device ~block:(Layout.epoch_block geo)
    in
    let shards =
      Array.init nshards (fun s ->
          let jfirst, jblocks = Layout.journal_region geo s in
          let ifirst, icount = Layout.inode_range geo s in
          let dfirst, dcount = Layout.data_range geo s in
          {
            Fs_ctx.log = Log.create device ~first_block:jfirst ~blocks:jblocks;
            balloc = Allocator.create ~first_block:dfirst ~count:dcount;
            ialloc = Allocator.create ~first_block:ifirst ~count:icount;
          })
    in
    let ctx = { Fs_ctx.device; geo; shards; epoch; rr_next = 0 } in
    rebuild_allocators ctx;
    Layout.write_superblock device geo ~clean:false;
    if journal_cleaner then
      Fs_ctx.iter_shards ctx (fun _ sh -> Log.start_cleaner sh.Fs_ctx.log);
    let t =
      {
        ctx;
        sync_mount;
        mounted = true;
        recovered_txns = rolled_back;
        recovered_by_shard = Array.map (fun r -> r.Log.rolled_back) recoveries;
        health = Health.create ~shards:nshards;
        retry;
      }
    in
    (* Dropped (untrusted) journal records degrade only the shard whose
       sub-region held them: each shard's journal covers that shard's
       metadata, so siblings stay read-write. *)
    Array.iteri
      (fun s r ->
        if r.Log.dropped > 0 then
          degrade_shard t s
            (Fmt.str "%d untrusted journal record(s) dropped during recovery"
               r.Log.dropped))
      recoveries;
    List.iter
      (fun (s, reason) -> degrade_shard t s reason)
      (itable_poison_reasons device geo);
    t

let mkfs_and_mount device ?journal_blocks ?inodes_per_mb ?shards ?sync_mount
    ?journal_cleaner ?retry () =
  mkfs device ?journal_blocks ?inodes_per_mb ?shards ();
  mount device ?sync_mount ?journal_cleaner ?retry ()

(* Wire an operation-level fault injector into every software resource
   path of this mount: data-block allocation, inode allocation, and
   journal-slot allocation. [None] detaches. *)
let attach_faultops t fo =
  let module Faultops = Hinfs_nvmm.Faultops in
  let hook kind =
    match fo with
    | None -> None
    | Some fo -> Some (fun () -> Faultops.check fo kind)
  in
  Fs_ctx.iter_shards t.ctx (fun _ sh ->
      Allocator.set_fault_injector sh.Fs_ctx.balloc (hook Faultops.Block_alloc);
      Allocator.set_fault_injector sh.Fs_ctx.ialloc (hook Faultops.Inode_alloc);
      Log.set_fault_injector sh.Fs_ctx.log (hook Faultops.Journal_slot))

(* --- inode helpers --- *)

let check_ino t ino =
  let geo = geometry t in
  if ino < 1 || ino > geo.Layout.inode_count
     || not (Layout.Inode.in_use (device t) geo ino)
  then Errno.raise_error EBADF "bad inode %d" ino

let inode_kind t ino = Layout.Inode.kind (device t) (geometry t) ino
let inode_size t ino = Layout.Inode.size (device t) (geometry t) ino

let stat_of t ino =
  check_ino t ino;
  let device = device t in
  let geo = geometry t in
  {
    Types.ino;
    kind =
      (if Layout.Inode.kind device geo ino = Layout.Inode.kind_directory then
         Types.Directory
       else Types.Regular);
    size = Layout.Inode.size device geo ino;
    nlink = Layout.Inode.links device geo ino;
    blocks = Layout.Inode.blocks device geo ino;
    mtime_ns = Layout.Inode.mtime device geo ino;
  }

(* Charge a DRAM-speed copy that does not touch the device (zero fill). *)
let charge_copy t cat len =
  if len > 0 then begin
    let config = Device.config (device t) in
    let lines =
      (len + config.Config.cacheline_size - 1) / config.Config.cacheline_size
    in
    let ns = lines * config.Config.dram_read_ns in
    Stats.add_time (Fs_ctx.stats t.ctx) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

(* --- Data: lower-level operations shared with HiNFS --- *)

module Data = struct
  let block_addr t block = Fs_ctx.block_addr t.ctx block

  let lookup_block t ~ino ~fblock = Block_tree.lookup t.ctx ~ino ~fblock

  (* Find-or-allocate the NVMM home block for [fblock] inside [txn];
     zero-filling a fresh block's uncovered range is the caller's job.
     Updates the inode's block count. Blocks allocated by the call (index
     nodes + data) are pushed onto [allocated] *before* the block-count
     journaling below, which can itself fail mid-op (journal exhaustion,
     injected fault): recording them first means an aborting caller
     reclaims them even when this call raises, so a failed write leaks
     nothing. *)
  let ensure_block t txn ~ino ~fblock ~allocated =
    let block, fresh, blocks = Block_tree.ensure t.ctx txn ~ino ~fblock in
    allocated := blocks @ !allocated;
    if fresh then begin
      let device = device t in
      let geo = geometry t in
      let addr = Layout.Inode.addr geo ino + Layout.Inode.blocks_off in
      Log.log (log_for t ~ino) txn ~addr ~len:8;
      Layout.Inode.set_blocks device ~cat:Stats.Other geo ino
        (Layout.Inode.blocks device geo ino + 1)
    end;
    (block, fresh)

  (* Journaled size + mtime update. *)
  let update_size t txn ~ino ~size =
    let device = device t in
    let geo = geometry t in
    let addr = Layout.Inode.addr geo ino + Layout.Inode.size_off in
    Log.log (log_for t ~ino) txn ~addr ~len:8;
    Layout.Inode.set_size device ~cat:Stats.Other geo ino size

  (* 8-byte atomic mtime update: no transaction needed (PMFS-style). *)
  let touch_mtime_atomic t ~ino =
    let device = device t in
    let geo = geometry t in
    let addr = Layout.Inode.addr geo ino + Layout.Inode.mtime_off in
    Device.set_u64 device ~cat:Stats.Other addr (now t);
    Device.clflush device ~cat:Stats.Other ~addr ~len:8

  let touch_mtime_txn t txn ~ino =
    let device = device t in
    let geo = geometry t in
    let addr = Layout.Inode.addr geo ino + Layout.Inode.mtime_off in
    Log.log (log_for t ~ino) txn ~addr ~len:8;
    Layout.Inode.set_mtime device ~cat:Stats.Other geo ino (now t)

  (* Zero the uncovered parts of a freshly allocated data block so that
     reads below EOF never observe stale medium contents. *)
  let zero_fresh_block ?(background = false) t ~cat ~block ~covered_start
      ~covered_end =
    let geo = geometry t in
    let bs = geo.Layout.block_size in
    let base = block_addr t block in
    if covered_start > 0 then begin
      let zeros = Bytes.make covered_start '\000' in
      Device.write_nt ~background (device t) ~cat ~addr:base ~src:zeros ~off:0
        ~len:covered_start
    end;
    if covered_end < bs then begin
      let zeros = Bytes.make (bs - covered_end) '\000' in
      Device.write_nt ~background (device t) ~cat ~addr:(base + covered_end)
        ~src:zeros ~off:0 ~len:(bs - covered_end)
    end
end

(* --- file read/write --- *)

let read t ~ino ~off ~len ~into ~into_off =
  check_readable_ino t ~ino;
  check_ino t ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad read range";
  let geo = geometry t in
  let bs = geo.Layout.block_size in
  let size = inode_size t ino in
  let len = if off >= size then 0 else min len (size - off) in
  let cat = Stats.Read_access in
  let rec copy done_ =
    if done_ < len then begin
      let pos = off + done_ in
      let fblock = pos / bs in
      let in_block = pos mod bs in
      let chunk = min (bs - in_block) (len - done_) in
      (match Data.lookup_block t ~ino ~fblock with
      | Some block ->
        read_retrying t ~cat
          ~addr:(Data.block_addr t block + in_block)
          ~len:chunk ~into ~off:(into_off + done_)
      | None ->
        (* Hole: reads as zeros, still a memcpy's worth of work. *)
        Bytes.fill into (into_off + done_) chunk '\000';
        charge_copy t cat chunk);
      copy (done_ + chunk)
    end
  in
  copy 0;
  len

(* Direct write with non-temporal stores; used by PMFS writes, by HiNFS
   eager-persistent writes, and (with [background = true]) by the HiNFS
   writeback daemons. *)
let write_direct ?(background = false) ?(cat = Stats.Write_access) t ~ino ~off
    ~src ~src_off ~len =
  check_writable_ino t ~ino;
  check_ino t ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad write range";
  let geo = geometry t in
  let bs = geo.Layout.block_size in
  let size = inode_size t ino in
  let log = log_for t ~ino in
  let txn_ref = ref None in
  let allocated = ref [] in
  let get_txn () =
    match !txn_ref with
    | Some txn -> txn
    | None ->
      let txn = Log.begin_txn log in
      txn_ref := Some txn;
      txn
  in
  let rec copy done_ =
    if done_ < len then begin
      let pos = off + done_ in
      let fblock = pos / bs in
      let in_block = pos mod bs in
      let chunk = min (bs - in_block) (len - done_) in
      let block =
        match Data.lookup_block t ~ino ~fblock with
        | Some block -> block
        | None ->
          let block, fresh =
            Data.ensure_block t (get_txn ()) ~ino ~fblock ~allocated
          in
          if fresh then
            Data.zero_fresh_block ~background t ~cat ~block
              ~covered_start:in_block ~covered_end:(in_block + chunk);
          block
      in
      Device.write_nt ~background (device t) ~cat
        ~addr:(Data.block_addr t block + in_block)
        ~src ~off:(src_off + done_) ~len:chunk;
      copy (done_ + chunk)
    end
  in
  (try
     copy 0;
     (* Data is persistent (non-temporal); order it before metadata. *)
     Device.mfence (device t) ~cat;
     let new_size = max size (off + len) in
     (if new_size <> size then begin
        let txn = get_txn () in
        Data.update_size t txn ~ino ~size:new_size;
        Data.touch_mtime_txn t txn ~ino
      end
      else
        match !txn_ref with
        | Some txn -> Data.touch_mtime_txn t txn ~ino
        | None -> Data.touch_mtime_atomic t ~ino);
     (match !txn_ref with Some txn -> Log.commit log txn | None -> ())
   with e ->
     (* Mid-op failure (ENOSPC, journal exhaustion, injected fault): roll
        the metadata back and reclaim every block this write allocated, so
        a failed write leaks nothing. Data already streamed into those
        blocks becomes unreachable with them. *)
     (match !txn_ref with
     | Some txn when not (Log.txn_committed txn) -> Log.abort log txn
     | _ -> ());
     List.iter (Fs_ctx.free_block t.ctx) !allocated;
     raise e);
  len

let write t ~ino ~off ~src ~src_off ~len ~sync =
  (* PMFS persists every write eagerly; [sync] changes nothing. *)
  ignore sync;
  write_direct t ~ino ~off ~src ~src_off ~len

let truncate t ~ino ~size =
  check_writable_ino t ~ino;
  check_ino t ino;
  if size < 0 then Errno.raise_error EINVAL "negative size";
  let geo = geometry t in
  let bs = geo.Layout.block_size in
  let old_size = inode_size t ino in
  if size <> old_size then begin
    (* Blocks detached inside the transaction go back to the allocator only
       after commit: an abort restores the pointers, so freeing early would
       corrupt (reachable blocks the allocator re-issues). *)
    let detached = ref [] in
    Log.with_txn (log_for t ~ino) (fun txn ->
        if size < old_size then begin
          let keep_blocks = (size + bs - 1) / bs in
          detached := Block_tree.free_from t.ctx txn ~ino ~keep_blocks;
          let device = device t in
          let addr = Layout.Inode.addr geo ino + Layout.Inode.blocks_off in
          Log.log (log_for t ~ino) txn ~addr ~len:8;
          Layout.Inode.set_blocks device ~cat:Stats.Other geo ino
            (Layout.Inode.blocks device geo ino - List.length !detached);
          (* Zero the tail of the last kept block so a later size extension
             cannot expose stale bytes. *)
          let tail = size mod bs in
          if tail <> 0 then begin
            match Data.lookup_block t ~ino ~fblock:(size / bs) with
            | None -> ()
            | Some block ->
              let zeros = Bytes.make (bs - tail) '\000' in
              Device.write_nt device ~cat:Stats.Other
                ~addr:(Data.block_addr t block + tail)
                ~src:zeros ~off:0 ~len:(bs - tail)
          end
        end;
        Data.update_size t txn ~ino ~size;
        Data.touch_mtime_txn t txn ~ino);
    List.iter (Fs_ctx.free_block t.ctx) !detached
  end

let fsync t ~ino =
  (* Acknowledging durability on an isolated shard would be a lie: fail
     fast like reads do. Degraded (not yet isolated) shards still fence. *)
  check_readable_ino t ~ino;
  check_ino t ino;
  (* All PMFS data and committed metadata are already persistent; fsync
     reduces to an ordering fence. *)
  Device.mfence (device t) ~cat:Stats.Other

(* --- namespace --- *)

let lookup t ~dir name =
  check_ino t dir;
  Dir.lookup t.ctx ~dir name

(* Journal and initialise a fresh inode's on-media fields inside [txn].
   [log] is the journal [txn] was begun on — the parent directory's, which
   may differ from the fresh inode's home shard when allocation borrowed
   from another range; undo entries carry absolute addresses, so recovery
   is indifferent to which shard's journal holds them. *)
let init_inode t log txn ~ino ~kind =
  let device = device t in
  let geo = geometry t in
  let addr = Layout.Inode.addr geo ino in
  Log.log log txn ~addr ~len:40;
  Layout.Inode.set_in_use device ~cat:Stats.Other geo ino true;
  Layout.Inode.set_kind device ~cat:Stats.Other geo ino kind;
  Layout.Inode.set_links device ~cat:Stats.Other geo ino
    (if kind = Layout.Inode.kind_directory then 2 else 1);
  Layout.Inode.set_height device ~cat:Stats.Other geo ino 0;
  Layout.Inode.set_size device ~cat:Stats.Other geo ino 0;
  Layout.Inode.set_tree_root device ~cat:Stats.Other geo ino 0;
  Layout.Inode.set_mtime device ~cat:Stats.Other geo ino (now t);
  Layout.Inode.set_blocks device ~cat:Stats.Other geo ino 0

let create_entry t ~dir name ~kind =
  check_writable_ino t ~ino:dir;
  check_ino t dir;
  if inode_kind t dir <> Layout.Inode.kind_directory then
    Errno.raise_error ENOTDIR "inode %d is not a directory" dir;
  (match Dir.lookup t.ctx ~dir name with
  | Some _ -> Errno.raise_error EEXIST "%S already exists" name
  | None -> ());
  (* Inode initialisation and the dirent insertion must be one transaction:
     a crash between two separate commits would leave an in-use inode that
     no directory references (orphan, flagged by fsck).

     Placement policy: files live in their parent directory's shard (so
     create / unlink / rmdir stay single-shard); new directories spread
     round-robin so a namespace populates every shard's ranges. Allocation
     falls back round the ring when the preferred range is dry. *)
  let shard =
    if kind = Layout.Inode.kind_directory then Fs_ctx.next_dir_shard t.ctx
    else Fs_ctx.shard_of_ino t.ctx dir
  in
  match Fs_ctx.alloc_ino t.ctx ~shard with
  | None -> Errno.raise_error ENOSPC "out of inodes"
  | Some ino ->
    let log = log_for t ~ino:dir in
    let allocated = ref [] in
    (try
       Log.with_txn log (fun txn ->
           init_inode t log txn ~ino ~kind;
           allocated := Dir.add t.ctx txn ~dir name ~ino)
     with e ->
       (* The abort rolled the metadata back; reclaim the dirent blocks
          [Dir.add] allocated (empty if it was [Dir.add] that failed — it
          reclaims its own) and the inode number. *)
       List.iter (Fs_ctx.free_block t.ctx) !allocated;
       Fs_ctx.free_ino t.ctx ino;
       raise e);
    ino

let create_file t ~dir name =
  create_entry t ~dir name ~kind:Layout.Inode.kind_regular

let mkdir t ~dir name =
  create_entry t ~dir name ~kind:Layout.Inode.kind_directory

(* Release an inode and detach all its blocks; returns the detached blocks
   for the caller to free after the transaction commits. Caller must have
   removed all directory entries pointing at it. *)
let free_inode t log txn ~ino =
  let device = device t in
  let geo = geometry t in
  let detached = Block_tree.free_all t.ctx log txn ~ino in
  let addr = Layout.Inode.addr geo ino in
  Log.log log txn ~addr ~len:8;
  Layout.Inode.set_in_use device ~cat:Stats.Other geo ino false;
  Layout.Inode.set_kind device ~cat:Stats.Other geo ino Layout.Inode.kind_free;
  Layout.Inode.set_links device ~cat:Stats.Other geo ino 0;
  detached

let unlink t ~dir name =
  check_writable_ino t ~ino:dir;
  check_ino t dir;
  match Dir.find t.ctx ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, _, _) ->
    if inode_kind t ino = Layout.Inode.kind_directory then
      Errno.raise_error EISDIR "%S is a directory" name;
    let log = log_for t ~ino:dir in
    let detached = ref [] in
    Log.with_txn log (fun txn ->
        ignore (Dir.remove t.ctx txn ~dir name);
        let links = Layout.Inode.links (device t) (geometry t) ino in
        if links <= 1 then detached := free_inode t log txn ~ino
        else begin
          let addr =
            Layout.Inode.addr (geometry t) ino + Layout.Inode.links_off
          in
          Log.log log txn ~addr ~len:2;
          Layout.Inode.set_links (device t) ~cat:Stats.Other (geometry t) ino
            (links - 1)
        end);
    (* Committed: the blocks and the inode number are now reclaimable. *)
    List.iter (Fs_ctx.free_block t.ctx) !detached;
    if Layout.Inode.links (device t) (geometry t) ino = 0 then
      Fs_ctx.free_ino t.ctx ino

let rmdir t ~dir name =
  check_writable_ino t ~ino:dir;
  check_ino t dir;
  match Dir.find t.ctx ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, _, _) ->
    if inode_kind t ino <> Layout.Inode.kind_directory then
      Errno.raise_error ENOTDIR "%S is not a directory" name;
    if not (Dir.is_empty t.ctx ~dir:ino) then
      Errno.raise_error ENOTEMPTY "%S is not empty" name;
    let log = log_for t ~ino:dir in
    let detached = ref [] in
    Log.with_txn log (fun txn ->
        ignore (Dir.remove t.ctx txn ~dir name);
        detached := free_inode t log txn ~ino);
    List.iter (Fs_ctx.free_block t.ctx) !detached;
    Fs_ctx.free_ino t.ctx ino

(* Rename within one shard: both directories journal into the same log, so
   one ordinary transaction covers target replacement, insertion, and
   source removal. *)
let rename_same_shard t ~src_dir ~src ~dst_dir ~dst ~ino =
  let log = log_for t ~ino:src_dir in
  (* Resources released by replacing the target — its blocks and inode
     number — go back to the allocators only after commit; blocks the
     [Dir.add] allocates must conversely be reclaimed if the transaction
     aborts after it returned. *)
  let detached = ref [] in
  let replaced = ref None in
  let added = ref [] in
  (try
     Log.with_txn log (fun txn ->
         (match Dir.find t.ctx ~dir:dst_dir dst with
         | Some (existing, _, _) ->
           if inode_kind t existing = Layout.Inode.kind_directory then
             Errno.raise_error EISDIR "rename target %S is a directory" dst;
           ignore (Dir.remove t.ctx txn ~dir:dst_dir dst);
           detached := free_inode t log txn ~ino:existing;
           replaced := Some existing
         | None -> ());
         added := Dir.add t.ctx txn ~dir:dst_dir dst ~ino;
         ignore (Dir.remove t.ctx txn ~dir:src_dir src))
   with e ->
     List.iter (Fs_ctx.free_block t.ctx) !added;
     raise e);
  List.iter (Fs_ctx.free_block t.ctx) !detached;
  match !replaced with
  | Some existing -> Fs_ctx.free_ino t.ctx existing
  | None -> ()

(* Rename across shards: one transaction per side, atomically committed
   through the epoch record. Each side's mutations journal into its own
   shard's log; both transactions are stamped with one epoch id and become
   durable together when the epoch record persists (the single-cacheline
   commit point). A crash before the record covers the epoch rolls both
   sides back at recovery; a crash after keeps both — the entry is never
   visible in both directories, nor in neither. *)
let rename_cross_shard t ~src_dir ~src ~dst_dir ~dst ~ino =
  let src_log = log_for t ~ino:src_dir in
  let dst_log = log_for t ~ino:dst_dir in
  let detached = ref [] in
  let replaced = ref None in
  let added = ref [] in
  Hinfs_journal.Epoch.with_barrier (epoch t) (fun ep ->
      let src_txn = Log.begin_txn src_log in
      let dst_txn =
        try Log.begin_txn dst_log
        with e ->
          Log.abort src_log src_txn;
          raise e
      in
      try
        (match Dir.find t.ctx ~dir:dst_dir dst with
        | Some (existing, _, _) ->
          if inode_kind t existing = Layout.Inode.kind_directory then
            Errno.raise_error EISDIR "rename target %S is a directory" dst;
          ignore (Dir.remove t.ctx dst_txn ~dir:dst_dir dst);
          detached := free_inode t dst_log dst_txn ~ino:existing;
          replaced := Some existing
        | None -> ());
        added := Dir.add t.ctx dst_txn ~dir:dst_dir dst ~ino;
        ignore (Dir.remove t.ctx src_txn ~dir:src_dir src);
        if !sabotage_skip_epoch then begin
          (* Two independent durable commit points: a crash between them
             leaves the entry live in both directories — exactly the tear
             the epoch record closes. Vacuity fixtures only. *)
          Log.commit dst_log dst_txn;
          Device.mfence (device t) ~cat:Stats.Other;
          Log.commit src_log src_txn
        end
        else begin
          Log.prepare_epoch dst_log dst_txn ~epoch:ep;
          Log.prepare_epoch src_log src_txn ~epoch:ep;
          Hinfs_journal.Epoch.commit (epoch t) ep;
          Log.finish_epoch dst_log dst_txn;
          Log.finish_epoch src_log src_txn
        end
      with e ->
        if not (Log.txn_committed dst_txn) then Log.abort dst_log dst_txn;
        if not (Log.txn_committed src_txn) then Log.abort src_log src_txn;
        List.iter (Fs_ctx.free_block t.ctx) !added;
        raise e);
  List.iter (Fs_ctx.free_block t.ctx) !detached;
  match !replaced with
  | Some existing -> Fs_ctx.free_ino t.ctx existing
  | None -> ()

let rename t ~src_dir ~src ~dst_dir ~dst =
  check_writable_ino t ~ino:src_dir;
  check_writable_ino t ~ino:dst_dir;
  check_ino t src_dir;
  check_ino t dst_dir;
  match Dir.find t.ctx ~dir:src_dir src with
  | None -> Errno.raise_error ENOENT "no entry %S" src
  | Some (ino, _, _) ->
    if shard_of_ino t src_dir = shard_of_ino t dst_dir then
      rename_same_shard t ~src_dir ~src ~dst_dir ~dst ~ino
    else rename_cross_shard t ~src_dir ~src ~dst_dir ~dst ~ino

let readdir t ~dir =
  check_ino t dir;
  Dir.list t.ctx ~dir

(* --- lifecycle --- *)

let sync_all t = Device.mfence (device t) ~cat:Stats.Other

let unmount t =
  if t.mounted then begin
    t.mounted <- false;
    Fs_ctx.iter_shards t.ctx (fun _ sh -> Log.stop_cleaner sh.Fs_ctx.log);
    (* A mount with any unhealthy fault domain never certifies the image
       clean: the next mount must re-run recovery and re-detect the
       damage. *)
    if fully_healthy t then
      Layout.write_superblock (device t) (geometry t) ~clean:true
  end

(* --- Backend.S instance --- *)

module Backend : Hinfs_vfs.Backend.S with type t = t = struct
  type nonrec t = t

  let fs_name _ = "pmfs"
  let device = device
  let sync_mount t = t.sync_mount
  let root_ino _ = Layout.root_ino
  let lookup = lookup
  let create_file = create_file
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let rename = rename
  let readdir = readdir
  let stat t ~ino = stat_of t ino
  let read = read
  let write = write
  let truncate = truncate
  let fsync = fsync

  (* PMFS maps NVMM pages straight into user space (DAX). Before the
     mapping is exposed, the file's in-flight updates must be ordered on
     the medium — the same fence fsync pays (extfs's DAX msync path);
     mmap was previously a silent no-op, which skipped that ordering. *)
  let mmap t ~ino =
    fsync t ~ino;
    Obs.instant Obs.Ev_mmap_pin ~a:ino ~b:0

  let munmap _ ~ino = Obs.instant Obs.Ev_mmap_unpin ~a:ino ~b:0
  let msync t ~ino = fsync t ~ino
  let sync_all = sync_all
  let unmount = unmount
end

module Vfs_layer = Hinfs_vfs.Vfs.Make (Backend)

let handle t = Vfs_layer.handle t
