(* Cowfs: copy-on-write mode of the PMFS substrate (notafs direction).

   Committed state is never mutated in place. Every mutating operation
   builds shadow copies off to the side — a fresh inode-map path, fresh
   tree nodes, fresh data blocks, all written with non-temporal stores —
   and publication is a single fenced, CRC-32C'd root-descriptor swap
   ({!Hinfs_journal.Root_swap}: two slots, newest-valid wins at mount).
   Consequences:

   - every legal crash image mounts to *some* committed state (the crash
     either persisted the new descriptor, in which case its payload was
     fenced first, or it did not, in which case the shadow blocks are
     unreachable garbage);
   - recovery is a no-op — mount just picks the newest valid root;
   - whole-FS snapshots/clones/rollback and failure-atomic multi-file
     transactions fall out of the same mechanism: a snapshot pins an old
     imap root, a transaction widens the commit window.

   On-NVMM layout (all pointers are block numbers, little-endian):

     block 0            two 64-byte root-descriptor slots (Root_swap)
     blocks [1, total)  one pool for everything else, tracked by a
                        persistent per-block u16 refcount table

   Descriptor payload: ptrs[0] = inode-map root, ptrs[1] = refcount-table
   root, ptrs[2] = snapshot table block, ptrs[3] = next snapshot id,
   ptrs[4] = inode count.

   The inode map is a single-level pointer page (bs/8 slots) of inode
   pages, each holding bs/128 fixed 128-byte inodes (same field offsets as
   {!Layout.Inode}). File/dir block trees are the PMFS radix shape
   (fanout bs/8); directories use the same 64-byte dirents as {!Dir}.

   The refcount of a block is the number of live roots that reach it:
   the committed working root (which also reaches the refcount pages and
   the snapshot table) plus one per snapshot. Refcounts are folded in at
   commit time by a fixpoint (updating a refcount page may itself CoW
   that page, which adds more deltas); blocks that reach zero are handed
   back to the allocator only *after* the descriptor swap is durable, so
   no crash image can observe their reuse. *)

module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Allocator = Hinfs_nvmm.Allocator
module Fault = Hinfs_nvmm.Fault
module Root_swap = Hinfs_journal.Root_swap
module Stats = Hinfs_stats.Stats
module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rwlock = Hinfs_sim.Rwlock
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Obs = Hinfs_obs.Obs

let inode_size = 128
let dirent_size = 64
let max_name_len = 55
let root_ino = 1
let mcat = Stats.Other
let ccat = Stats.Journal

type snap = { snap_id : int; snap_imap : int; snap_seq : int64 }

type t = {
  device : Device.t;
  bs : int;
  total_blocks : int;
  inode_count : int;
  balloc : Allocator.t;
  ialloc : Allocator.t;
  lock : Rwlock.t;
  mutable committed : Root_swap.desc;
  (* Working (uncommitted) root pointers; equal to [committed]'s between
     commits. *)
  mutable imap_root : int;
  mutable refcount_root : int;
  mutable snap_table : int;
  mutable next_snap_id : int;
  (* Blocks allocated since the last commit: writable in place, invisible
     to any crash image until the swap. *)
  shadow : (int, unit) Hashtbl.t;
  (* Pending refcount deltas (block -> net delta) to fold in at commit:
     +1 per shadow allocation, -1 per dropped reference, plus the
     snapshot/rollback walk contributions. *)
  deltas : (int, int) Hashtbl.t;
  (* DRAM mirror of the *committed* refcount table. *)
  refs : int array;
  mutable ino_news : int list; (* inodes allocated this window *)
  mutable ino_released : int list; (* inode frees deferred to commit *)
  mutable txn_depth : int;
  mutable commits : int;
  mutable mounted : bool;
  mutable read_only : string option;
  sync_mount : bool;
  mutable commit_fault : (unit -> bool) option;
  (* Test hook: skip the payload fence before the root swap, making the
     descriptor and its payload race in the same fence window (the torn
     root swap the crashmc vacuity fixture must catch). *)
  mutable sabotage_skip_payload_fence : bool;
}

let device t = t.device
let block_size t = t.bs
let total_blocks t = t.total_blocks
let inode_count t = t.inode_count
let committed_seq t = t.committed.Root_swap.seq
let commits t = t.commits
let imap_root t = t.imap_root
let refcount_root t = t.refcount_root
let shadow_count t = Hashtbl.length t.shadow
let used_blocks t = Allocator.used_blocks t.balloc
let free_data_blocks t = Allocator.free_blocks t.balloc
let balloc t = t.balloc
let ialloc t = t.ialloc
let txn_depth t = t.txn_depth
let set_commit_fault t f = t.commit_fault <- f
let set_sabotage_torn_root t v = t.sabotage_skip_payload_fence <- v

let set_block_fault_injector t f = Allocator.set_fault_injector t.balloc f
let set_inode_fault_injector t f = Allocator.set_fault_injector t.ialloc f

let read_only t = t.read_only <> None
let read_only_reason t = t.read_only

let check_writable t =
  match t.read_only with
  | None -> ()
  | Some reason ->
    Errno.raise_error EROFS "file system is read-only: %s" reason

let now t = Engine.now (Device.engine t.device)
let baddr t b = b * t.bs
let ptrs_per_block t = t.bs / 8
let inodes_per_page t = t.bs / inode_size
let refs_per_page t = t.bs / 2
let n_refpages t = (t.total_blocks + refs_per_page t - 1) / refs_per_page t
let snap_capacity t = t.bs / 32

(* --- raw field I/O: untimed loads, non-temporal (persistent) stores --- *)

let get_u64i t addr = Int64.to_int (Device.get_u64 t.device addr)

let put_bytes t ~cat ~addr src =
  Device.write_nt t.device ~cat ~addr ~src ~off:0 ~len:(Bytes.length src)

let put_u64 t ~cat addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  put_bytes t ~cat ~addr b

let put_u64i t ~cat addr v = put_u64 t ~cat addr (Int64.of_int v)

let put_u32 t ~cat addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  put_bytes t ~cat ~addr b

let put_u16 t ~cat addr v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 v;
  put_bytes t ~cat ~addr b

let put_u8 t ~cat addr v =
  let b = Bytes.create 1 in
  Bytes.set_uint8 b 0 v;
  put_bytes t ~cat ~addr b

(* --- bounded retry on transient media faults (data path only) --- *)

let max_read_retries = 3

let read_retrying t ~cat ~addr ~len ~into ~off =
  let stats = Device.stats t.device in
  let rec go attempt =
    try Device.read t.device ~cat ~addr ~len ~into ~off with
    | Fault.Media_error { transient = true; _ }
      when attempt < max_read_retries ->
      Stats.add_media_retry stats;
      go (attempt + 1)
  in
  try go 0 with
  | Fault.Media_error { addr = fault_addr; _ } ->
    Errno.raise_error EIO "uncorrectable NVMM media error at %#x" fault_addr

(* DRAM-speed copy charge for zero-filling holes (no device touch). *)
let charge_copy t cat len =
  if len > 0 then begin
    let config = Device.config t.device in
    let lines =
      (len + config.Config.cacheline_size - 1) / config.Config.cacheline_size
    in
    let ns = lines * config.Config.dram_read_ns in
    Stats.add_time (Device.stats t.device) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

(* --- shadow-block machinery --- *)

let delta t b d =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.deltas b) in
  let v = cur + d in
  if v = 0 then Hashtbl.remove t.deltas b else Hashtbl.replace t.deltas b v

let alloc_block t =
  match Allocator.alloc t.balloc with
  | None -> Errno.raise_error ENOSPC "out of NVMM blocks"
  | Some b ->
    Hashtbl.replace t.shadow b ();
    delta t b 1;
    b

let zero_block t ~cat b =
  let zero = Bytes.make t.bs '\000' in
  put_bytes t ~cat ~addr:(baddr t b) zero

let alloc_zeroed t ~cat =
  let b = alloc_block t in
  zero_block t ~cat b;
  b

(* Drop one reference to [b]. A same-window shadow block goes straight
   back to the allocator (its +1 and -1 cancel); a committed block keeps
   its medium copy intact and just queues a -1 for the commit fixpoint. *)
let drop_block t b =
  if Hashtbl.mem t.shadow b then begin
    Hashtbl.remove t.shadow b;
    delta t b (-1);
    Allocator.free t.balloc b
  end
  else delta t b (-1)

(* Copy-on-write of a metadata block (untimed load, it is cache-hot
   metadata; the store is a timed non-temporal stream). *)
let cow_meta t ~cat b =
  if Hashtbl.mem t.shadow b then b
  else begin
    let nb = alloc_block t in
    let src = Device.peek t.device ~addr:(baddr t b) ~len:t.bs in
    put_bytes t ~cat ~addr:(baddr t nb) src;
    delta t b (-1);
    nb
  end

(* Copy-on-write of a data block; [copy = false] when the caller is about
   to overwrite the whole block. *)
let cow_data t ~cat ~copy b =
  if Hashtbl.mem t.shadow b then b
  else begin
    let nb = alloc_block t in
    if copy then begin
      let buf = Bytes.create t.bs in
      read_retrying t ~cat ~addr:(baddr t b) ~len:t.bs ~into:buf ~off:0;
      put_bytes t ~cat ~addr:(baddr t nb) buf
    end;
    delta t b (-1);
    nb
  end

(* --- inode map --- *)

let imap_slot_addr t ~imap ino = baddr t imap + (8 * ((ino - 1) / inodes_per_page t))

let ipage_at t ~imap ino = get_u64i t (imap_slot_addr t ~imap ino)

let inode_addr_in t ~ipage ino =
  baddr t ipage + (((ino - 1) mod inodes_per_page t) * inode_size)

let inode_addr_at t ~imap ino =
  let pg = ipage_at t ~imap ino in
  if pg = 0 then None else Some (inode_addr_in t ~ipage:pg ino)

module F = Layout.Inode
(* field offsets only: in_use_off .. blocks_off, kind_* constants *)

let in_use_at t ~imap ino =
  ino >= 1 && ino <= t.inode_count
  &&
  match inode_addr_at t ~imap ino with
  | None -> false
  | Some ia -> Device.get_u8 t.device (ia + F.in_use_off) <> 0

(* Shadow the inode's map path (imap root + its inode page); returns the
   inode's (shadow, in-place-writable) field address. Allocates the page
   if the slot was never populated. *)
let shadow_inode t ~cat ino =
  let ir = cow_meta t ~cat t.imap_root in
  t.imap_root <- ir;
  let slot_addr = imap_slot_addr t ~imap:ir ino in
  let pg = get_u64i t slot_addr in
  let pg' =
    if pg = 0 then begin
      let npg = alloc_zeroed t ~cat in
      put_u64i t ~cat slot_addr npg;
      npg
    end
    else begin
      let npg = cow_meta t ~cat pg in
      if npg <> pg then put_u64i t ~cat slot_addr npg;
      npg
    end
  in
  inode_addr_in t ~ipage:pg' ino

(* Read accessors against an arbitrary imap root (working tree, or a
   snapshot's pinned tree). *)
let ifield_u64 t ~imap ino off =
  match inode_addr_at t ~imap ino with
  | None -> 0L
  | Some ia -> Device.get_u64 t.device (ia + off)

let isize_at t ~imap ino = Int64.to_int (ifield_u64 t ~imap ino F.size_off)
let itree_at t ~imap ino = Int64.to_int (ifield_u64 t ~imap ino F.tree_root_off)

let iheight_at t ~imap ino =
  match inode_addr_at t ~imap ino with
  | None -> 0
  | Some ia -> Device.get_u32 t.device (ia + F.height_off)

let ikind_at t ~imap ino =
  match inode_addr_at t ~imap ino with
  | None -> F.kind_free
  | Some ia -> Device.get_u8 t.device (ia + F.kind_off)

let check_ino t ino =
  if not (in_use_at t ~imap:t.imap_root ino) then
    Errno.raise_error EBADF "bad inode %d" ino

let stat_of t ino =
  check_ino t ino;
  let imap = t.imap_root in
  let ia = Option.get (inode_addr_at t ~imap ino) in
  {
    Types.ino;
    kind =
      (if Device.get_u8 t.device (ia + F.kind_off) = F.kind_directory then
         Types.Directory
       else Types.Regular);
    size = Int64.to_int (Device.get_u64 t.device (ia + F.size_off));
    nlink = Device.get_u16 t.device (ia + F.links_off);
    blocks = Int64.to_int (Device.get_u64 t.device (ia + F.blocks_off));
    mtime_ns = Device.get_u64 t.device (ia + F.mtime_off);
  }

(* --- block trees (radix fanout bs/8) ---

   height 0: tree_root is 0 (empty) or a single data block;
   height h>=1: tree_root is an index node, capacity (bs/8)^h data blocks. *)

let cap t l =
  let ppb = ptrs_per_block t in
  let rec go l acc = if l = 0 then acc else go (l - 1) (acc * ppb) in
  go l 1

let needed_height t n =
  let ppb = ptrs_per_block t in
  let rec go h c = if c >= n then h else go (h + 1) (c * ppb) in
  go 0 1

let lookup_block_at t ~imap ~ino ~fblock =
  let root = itree_at t ~imap ino in
  let height = iheight_at t ~imap ino in
  if root = 0 then None
  else if height = 0 then if fblock = 0 then Some root else None
  else if fblock >= cap t height then None
  else begin
    let rec walk node level =
      if level = 0 then Some node
      else
        let slot = fblock / cap t (level - 1) mod ptrs_per_block t in
        let child = get_u64i t (baddr t node + (8 * slot)) in
        if child = 0 then None else walk child (level - 1)
    in
    walk root height
  end

(* Find-or-create the (shadowed, writable) home block of [fblock]. [ia] is
   the inode's shadowed field address. Returns [(block, fresh)]. *)
let ensure_data_block t ~cat ~ia ~fblock ~full =
  let root = ref (Int64.to_int (Device.get_u64 t.device (ia + F.tree_root_off))) in
  let height = ref (Device.get_u32 t.device (ia + F.height_off)) in
  let set_root v = put_u64i t ~cat (ia + F.tree_root_off) v in
  let set_height v = put_u32 t ~cat (ia + F.height_off) v in
  (* Grow the tree until [fblock] is addressable. *)
  if !root = 0 then begin
    let h = needed_height t (fblock + 1) in
    if h > 0 then begin
      root := alloc_zeroed t ~cat;
      set_root !root
    end;
    if h <> !height then begin
      height := h;
      set_height h
    end
  end
  else
    while cap t !height < fblock + 1 do
      let nr = alloc_zeroed t ~cat in
      put_u64i t ~cat (baddr t nr) !root;
      root := nr;
      set_root nr;
      incr height;
      set_height !height
    done;
  if !height = 0 then
    if !root = 0 then begin
      let b = alloc_block t in
      set_root b;
      (b, true)
    end
    else begin
      let b = cow_data t ~cat ~copy:(not full) !root in
      if b <> !root then set_root b;
      (b, false)
    end
  else begin
    let r = cow_meta t ~cat !root in
    if r <> !root then set_root r;
    let rec walk node level =
      let slot = fblock / cap t (level - 1) mod ptrs_per_block t in
      let slot_addr = baddr t node + (8 * slot) in
      let child = get_u64i t slot_addr in
      if level = 1 then
        if child = 0 then begin
          let b = alloc_block t in
          put_u64i t ~cat slot_addr b;
          (b, true)
        end
        else begin
          let b = cow_data t ~cat ~copy:(not full) child in
          if b <> child then put_u64i t ~cat slot_addr b;
          (b, false)
        end
      else begin
        let c =
          if child = 0 then begin
            let c = alloc_zeroed t ~cat in
            put_u64i t ~cat slot_addr c;
            c
          end
          else begin
            let c = cow_meta t ~cat child in
            if c <> child then put_u64i t ~cat slot_addr c;
            c
          end
        in
        walk c (level - 1)
      end
    in
    walk r !height
  end

(* Drop an entire subtree rooted at [root] ([level] index levels above the
   data blocks; level 0 means [root] is itself a data block). *)
let rec drop_subtree t root level =
  if root <> 0 then begin
    if level >= 1 then
      for s = 0 to ptrs_per_block t - 1 do
        drop_subtree t (get_u64i t (baddr t root + (8 * s))) (level - 1)
      done;
    drop_block t root
  end

(* Remove [fblock]'s data block from the tree, if present: shadows the
   path, zeroes the leaf slot, drops the block. Empty interior nodes are
   left in place. Returns true if a data block was dropped. *)
let zap_data_block t ~cat ~ia ~fblock =
  let root = Int64.to_int (Device.get_u64 t.device (ia + F.tree_root_off)) in
  let height = Device.get_u32 t.device (ia + F.height_off) in
  if root = 0 then false
  else if height = 0 then
    if fblock = 0 then begin
      drop_block t root;
      put_u64i t ~cat (ia + F.tree_root_off) 0;
      true
    end
    else false
  else if fblock >= cap t height then false
  else begin
    (* First pass: is there anything to drop? *)
    let rec present node level =
      if level = 0 then node <> 0
      else if node = 0 then false
      else
        let slot = fblock / cap t (level - 1) mod ptrs_per_block t in
        present (get_u64i t (baddr t node + (8 * slot))) (level - 1)
    in
    if not (present root height) then false
    else begin
      let r = cow_meta t ~cat root in
      if r <> root then put_u64i t ~cat (ia + F.tree_root_off) r;
      let rec walk node level =
        let slot = fblock / cap t (level - 1) mod ptrs_per_block t in
        let slot_addr = baddr t node + (8 * slot) in
        let child = get_u64i t slot_addr in
        if level = 1 then begin
          drop_block t child;
          put_u64i t ~cat slot_addr 0
        end
        else begin
          let c = cow_meta t ~cat child in
          if c <> child then put_u64i t ~cat slot_addr c;
          walk c (level - 1)
        end
      in
      walk r height;
      true
    end
  end

(* --- directories (64-byte dirents, as in Dir) --- *)

let check_name name =
  let len = String.length name in
  if len = 0 || len > max_name_len then
    Errno.raise_error EINVAL "directory entry name %S too long (max %d)" name
      max_name_len

let dirents_per_block t = t.bs / dirent_size

let read_dirent t block slot =
  let addr = baddr t block + (slot * dirent_size) in
  let raw = Device.peek t.device ~addr ~len:dirent_size in
  let ino = Int32.to_int (Bytes.get_int32_le raw 0) in
  if ino = 0 then None
  else Some (Bytes.sub_string raw 6 (Bytes.get_uint16_le raw 4), ino)

let iter_dirents_at t ~imap ~dir f =
  let nblocks = isize_at t ~imap dir / t.bs in
  let per_block = dirents_per_block t in
  let stop = ref false in
  let fblock = ref 0 in
  while (not !stop) && !fblock < nblocks do
    (match lookup_block_at t ~imap ~ino:dir ~fblock:!fblock with
    | None -> ()
    | Some block ->
      let slot = ref 0 in
      while (not !stop) && !slot < per_block do
        (match read_dirent t block !slot with
        | None -> ()
        | Some (name, ino) ->
          if not (f ~fblock:!fblock ~block ~slot:!slot ~name ~ino) then
            stop := true);
        incr slot
      done);
    incr fblock
  done

let dir_find_at t ~imap ~dir name =
  let result = ref None in
  iter_dirents_at t ~imap ~dir
    (fun ~fblock ~block:_ ~slot ~name:entry ~ino ->
      if String.equal entry name then begin
        result := Some (ino, fblock, slot);
        false
      end
      else true);
  !result

let dir_list_at t ~imap ~dir =
  let acc = ref [] in
  iter_dirents_at t ~imap ~dir (fun ~fblock:_ ~block:_ ~slot:_ ~name ~ino ->
      acc := (name, ino) :: !acc;
      true);
  List.rev !acc

let dir_is_empty_at t ~imap ~dir =
  let empty = ref true in
  iter_dirents_at t ~imap ~dir (fun ~fblock:_ ~block:_ ~slot:_ ~name:_ ~ino:_ ->
      empty := false;
      false);
  !empty

let write_dirent t ~cat ~block ~slot ~name ~ino =
  let raw = Bytes.make dirent_size '\000' in
  Bytes.set_int32_le raw 0 (Int32.of_int ino);
  Bytes.set_uint16_le raw 4 (String.length name);
  Bytes.blit_string name 0 raw 6 (String.length name);
  put_bytes t ~cat ~addr:(baddr t block + (slot * dirent_size)) raw

(* Insert an entry into [dir] (whose inode must already be shadowed at
   [dir_ia]). CoWs the dirent block; appends a fresh zeroed block when no
   slot is free. *)
let dir_add t ~cat ~dir ~dir_ia name ~ino =
  check_name name;
  let fblock, slot =
    match dir_find_at t ~imap:t.imap_root ~dir name with
    | Some _ -> Errno.raise_error EEXIST "%S already exists" name
    | None -> (
      (* First free slot among existing dirent blocks. *)
      let free = ref None in
      let nblocks = isize_at t ~imap:t.imap_root dir / t.bs in
      let per_block = dirents_per_block t in
      (try
         for fb = 0 to nblocks - 1 do
           match lookup_block_at t ~imap:t.imap_root ~ino:dir ~fblock:fb with
           | None -> ()
           | Some block ->
             for s = 0 to per_block - 1 do
               if !free = None && read_dirent t block s = None then begin
                 free := Some (fb, s);
                 raise Exit
               end
             done
         done
       with Exit -> ());
      match !free with
      | Some fs -> fs
      | None ->
        (* Append a fresh dirent block and extend the directory. *)
        let nblocks = isize_at t ~imap:t.imap_root dir / t.bs in
        let b, fresh = ensure_data_block t ~cat ~ia:dir_ia ~fblock:nblocks ~full:true in
        if fresh then zero_block t ~cat b;
        put_u64 t ~cat (dir_ia + F.size_off)
          (Int64.of_int ((nblocks + 1) * t.bs));
        if fresh then
          put_u64 t ~cat (dir_ia + F.blocks_off)
            (Int64.add (Device.get_u64 t.device (dir_ia + F.blocks_off)) 1L);
        (nblocks, 0))
  in
  let block, _fresh = ensure_data_block t ~cat ~ia:dir_ia ~fblock ~full:false in
  write_dirent t ~cat ~block ~slot ~name ~ino

let dir_remove t ~cat ~dir ~dir_ia name =
  match dir_find_at t ~imap:t.imap_root ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, fblock, slot) ->
    let block, _ = ensure_data_block t ~cat ~ia:dir_ia ~fblock ~full:false in
    put_u32 t ~cat (baddr t block + (slot * dirent_size)) 0;
    ino

(* --- snapshot table (32-byte entries: id, imap_root, created_seq) --- *)

let snap_list t =
  let acc = ref [] in
  for i = 0 to snap_capacity t - 1 do
    let addr = baddr t t.snap_table + (32 * i) in
    let id = get_u64i t addr in
    if id <> 0 then
      acc :=
        {
          snap_id = id;
          snap_imap = get_u64i t (addr + 8);
          snap_seq = Device.get_u64 t.device (addr + 16);
        }
        :: !acc
  done;
  List.rev !acc

let snap_find t id = List.find_opt (fun s -> s.snap_id = id) (snap_list t)

let snap_slot_of t id =
  let found = ref None in
  for i = 0 to snap_capacity t - 1 do
    if !found = None && get_u64i t (baddr t t.snap_table + (32 * i)) = id then
      found := Some i
  done;
  !found

let shadow_snap_table t ~cat =
  let nb = cow_meta t ~cat t.snap_table in
  t.snap_table <- nb;
  nb

(* --- reachability walk (fsck, refcount transfers, digests) --- *)

(* Visit every block reachable from [imap]: the imap root, inode pages,
   index nodes and data blocks of every in-use inode. *)
let iter_tree_at t ~imap f =
  f ~block:imap ~kind:`Imap;
  let ipp = inodes_per_page t in
  for slot = 0 to ptrs_per_block t - 1 do
    let pg = get_u64i t (baddr t imap + (8 * slot)) in
    if pg <> 0 then begin
      f ~block:pg ~kind:`Ipage;
      for j = 0 to ipp - 1 do
        let ino = (slot * ipp) + j + 1 in
        if ino <= t.inode_count && in_use_at t ~imap ino then begin
          let root = itree_at t ~imap ino in
          let height = iheight_at t ~imap ino in
          let rec walk node level =
            if node <> 0 then
              if level = 0 then f ~block:node ~kind:`Data
              else begin
                f ~block:node ~kind:`Index;
                for s = 0 to ptrs_per_block t - 1 do
                  walk (get_u64i t (baddr t node + (8 * s))) (level - 1)
                done
              end
          in
          walk root height
        end
      done
    end
  done

(* Metadata blocks reachable from the working root besides the imap tree:
   refcount root, refcount pages, snapshot table. *)
let meta_blocks t =
  let pages = ref [] in
  for i = n_refpages t - 1 downto 0 do
    let pg = get_u64i t (baddr t t.refcount_root + (8 * i)) in
    if pg <> 0 then pages := pg :: !pages
  done;
  t.refcount_root :: (!pages @ [ t.snap_table ])

(* Persistent refcount of [b] under the *working* refcount table. *)
let refcount t b =
  let epp = refs_per_page t in
  let pg = get_u64i t (baddr t t.refcount_root + (8 * (b / epp))) in
  if pg = 0 then 0
  else Device.get_u16 t.device (baddr t pg + (2 * (b mod epp)))

let snapshots t = List.map (fun s -> (s.snap_id, s.snap_seq)) (snap_list t)
let snapshot_roots t = List.map (fun s -> (s.snap_id, s.snap_imap)) (snap_list t)

(* --- commit: refcount fixpoint, payload fence, root swap --- *)

let window_dirty t =
  Hashtbl.length t.shadow > 0
  || Hashtbl.length t.deltas > 0
  || t.ino_news <> [] || t.ino_released <> []
  || t.imap_root <> Int64.to_int t.committed.Root_swap.ptrs.(0)
  || t.next_snap_id <> Int64.to_int t.committed.Root_swap.ptrs.(3)

(* Discard the whole uncommitted window: hand shadow blocks and fresh
   inodes back, restore the working pointers from the committed root. *)
let abort_window t =
  Hashtbl.iter (fun b () -> Allocator.free t.balloc b) t.shadow;
  Hashtbl.reset t.shadow;
  Hashtbl.reset t.deltas;
  List.iter (fun ino -> Allocator.free t.ialloc ino) t.ino_news;
  t.ino_news <- [];
  t.ino_released <- [];
  let p = t.committed.Root_swap.ptrs in
  t.imap_root <- Int64.to_int p.(0);
  t.refcount_root <- Int64.to_int p.(1);
  t.snap_table <- Int64.to_int p.(2);
  t.next_snap_id <- Int64.to_int p.(3);
  t.txn_depth <- 0

(* Fold the pending refcount deltas into the persistent table. Updating an
   entry may CoW the refcount page (or the refcount root), which enqueues
   further deltas; the loop runs until no deltas remain. Returns
   [(new_refs, to_free)]: the post-commit refcount of every touched block
   and the committed blocks that dropped to zero. All stores go to shadow
   pages only, so an abort at any point is still net-zero. *)
let fold_refcounts t ~cat =
  let epp = refs_per_page t in
  let new_refs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let get_ref b =
    match Hashtbl.find_opt new_refs b with
    | Some v -> v
    | None -> t.refs.(b)
  in
  let queue = Queue.create () in
  let drain_deltas () =
    Hashtbl.iter (fun b d -> Queue.add (b, d) queue) t.deltas;
    Hashtbl.reset t.deltas
  in
  let shadow_refroot () =
    let nb = cow_meta t ~cat t.refcount_root in
    t.refcount_root <- nb
  in
  let shadow_refpage pidx =
    let slot_addr = baddr t t.refcount_root + (8 * pidx) in
    let pg = get_u64i t slot_addr in
    let npg = cow_meta t ~cat pg in
    if npg <> pg then put_u64i t ~cat slot_addr npg;
    npg
  in
  drain_deltas ();
  while not (Queue.is_empty queue) do
    let b, d = Queue.pop queue in
    if d <> 0 then begin
      if not (Hashtbl.mem t.shadow t.refcount_root) then shadow_refroot ();
      let pg = shadow_refpage (b / epp) in
      let v = get_ref b + d in
      if v < 0 then
        invalid_arg (Fmt.str "Cowfs: refcount of block %d went negative" b);
      Hashtbl.replace new_refs b v;
      put_u16 t ~cat (baddr t pg + (2 * (b mod epp))) v
    end;
    if Queue.is_empty queue then drain_deltas ()
  done;
  let to_free =
    Hashtbl.fold
      (fun b v acc ->
        if v = 0 && not (Hashtbl.mem t.shadow b) then b :: acc else acc)
      new_refs []
  in
  (new_refs, to_free)

let commit_locked t ~cat =
  if window_dirty t then begin
    Obs.span_begin Obs.Snapshot_commit;
    match
      (match t.commit_fault with
      | Some f when f () ->
        Errno.raise_error EIO "injected commit fault before root swap"
      | _ -> ());
      let new_refs, to_free = fold_refcounts t ~cat in
      (* Order the whole shadow payload before publishing the root that
         reaches it. The sabotage hook skips exactly this fence: the
         descriptor then races its own payload inside one fence window —
         the torn-root-swap failure mode crashmc must be able to see. *)
      if not t.sabotage_skip_payload_fence then Device.mfence t.device ~cat;
      let desc =
        {
          Root_swap.seq = Int64.succ t.committed.Root_swap.seq;
          ptrs =
            [|
              Int64.of_int t.imap_root;
              Int64.of_int t.refcount_root;
              Int64.of_int t.snap_table;
              Int64.of_int t.next_snap_id;
              Int64.of_int t.inode_count;
            |];
        }
      in
      Root_swap.commit t.device ~cat ~addr:0 desc;
      (desc, new_refs, to_free)
    with
    | desc, new_refs, to_free ->
      (* The swap is durable: retire the window. Zero-ref blocks are only
         now handed back, so no crash image that mounts the *previous*
         root can see them reused. *)
      t.committed <- desc;
      Hashtbl.iter (fun b v -> t.refs.(b) <- v) new_refs;
      List.iter (fun b -> Allocator.free t.balloc b) to_free;
      List.iter (fun ino -> Allocator.free t.ialloc ino) t.ino_released;
      t.ino_released <- [];
      t.ino_news <- [];
      Hashtbl.reset t.shadow;
      Hashtbl.reset t.deltas;
      t.commits <- t.commits + 1;
      Obs.span_end Obs.Snapshot_commit
    | exception e ->
      Obs.span_end Obs.Snapshot_commit;
      raise e
  end

let maybe_commit t ~cat = if t.txn_depth = 0 then commit_locked t ~cat

(* Every mutating entry point: exclusive lock, EROFS guard, and abort of
   the whole window on any failure (inside an open transaction this
   aborts the transaction — a failed operation poisons it). *)
let with_mutation t ~cat f =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      match
        let v = f () in
        maybe_commit t ~cat;
        v
      with
      | v -> v
      | exception e ->
        abort_window t;
        raise e)

let with_read t f = Rwlock.with_read t.lock f

(* --- mkfs / mount --- *)

let compute_inode_count t_bs total_blocks nvmm_size =
  let ipp = t_bs / inode_size in
  let slots = t_bs / 8 in
  let mb = max 1 (nvmm_size / (1024 * 1024)) in
  let want = max 256 (512 * mb) in
  ignore total_blocks;
  min (slots * ipp) ((want + ipp - 1) / ipp * ipp)

let mkfs device () =
  let config = Device.config device in
  let bs = config.Config.block_size in
  let total = Config.blocks config in
  let epp = bs / 2 in
  let n_ref = (total + epp - 1) / epp in
  if total < 6 + n_ref then invalid_arg "Cowfs.mkfs: device too small";
  let inode_count = compute_inode_count bs total config.Config.nvmm_size in
  let b_imap = 1 in
  let b_ipage0 = 2 in
  let b_refroot = 3 in
  let refpages = List.init n_ref (fun i -> 4 + i) in
  let b_snap = 4 + n_ref in
  let zero = Bytes.make bs '\000' in
  List.iter
    (fun b -> Device.poke device ~addr:(b * bs) ~src:zero ~off:0 ~len:bs)
    (b_imap :: b_ipage0 :: b_refroot :: b_snap :: refpages);
  let poke_u64 addr v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Device.poke device ~addr ~src:b ~off:0 ~len:8
  in
  let poke_u16 addr v =
    let b = Bytes.create 2 in
    Bytes.set_uint16_le b 0 v;
    Device.poke device ~addr ~src:b ~off:0 ~len:2
  in
  (* imap slot 0 -> first inode page; root directory inode 1. *)
  poke_u64 (b_imap * bs) b_ipage0;
  let root = Bytes.make inode_size '\000' in
  Bytes.set_uint8 root F.in_use_off 1;
  Bytes.set_uint8 root F.kind_off F.kind_directory;
  Bytes.set_uint16_le root F.links_off 2;
  Device.poke device ~addr:(b_ipage0 * bs) ~src:root ~off:0 ~len:inode_size;
  (* refcount root -> pages; every formatted metadata block starts at 1. *)
  List.iteri (fun i pg -> poke_u64 ((b_refroot * bs) + (8 * i)) pg) refpages;
  let set_ref b v =
    let pg = List.nth refpages (b / epp) in
    poke_u16 ((pg * bs) + (2 * (b mod epp))) v
  in
  List.iter (fun b -> set_ref b 1)
    (b_imap :: b_ipage0 :: b_refroot :: b_snap :: refpages);
  let desc =
    {
      Root_swap.seq = 0L;
      ptrs =
        [|
          Int64.of_int b_imap;
          Int64.of_int b_refroot;
          Int64.of_int b_snap;
          1L;
          Int64.of_int inode_count;
        |];
    }
  in
  Root_swap.write_initial device ~addr:0 desc

let mount device ?(sync_mount = false) () =
  match Root_swap.load device ~addr:0 with
  | Error `Absent -> Errno.raise_error EINVAL "no cowfs root descriptor"
  | Error `Corrupt ->
    Errno.raise_error EIO "both cowfs root descriptor slots are corrupt"
  | Ok desc ->
    let config = Device.config device in
    let bs = config.Config.block_size in
    let total = Config.blocks config in
    let p = desc.Root_swap.ptrs in
    let t =
      {
        device;
        bs;
        total_blocks = total;
        inode_count = Int64.to_int p.(4);
        balloc = Allocator.create ~first_block:1 ~count:(total - 1);
        ialloc = Allocator.create ~first_block:1 ~count:(Int64.to_int p.(4));
        lock = Rwlock.create ();
        committed = desc;
        imap_root = Int64.to_int p.(0);
        refcount_root = Int64.to_int p.(1);
        snap_table = Int64.to_int p.(2);
        next_snap_id = Int64.to_int p.(3);
        shadow = Hashtbl.create 64;
        deltas = Hashtbl.create 64;
        refs = Array.make total 0;
        ino_news = [];
        ino_released = [];
        txn_depth = 0;
        commits = 0;
        mounted = true;
        read_only = None;
        sync_mount;
        commit_fault = None;
        sabotage_skip_payload_fence = false;
      }
    in
    (* Rebuild DRAM state from the persistent refcount table: a block is
       allocated iff some live root reaches it. No recovery pass — the
       committed root is consistent by construction. *)
    for b = 1 to total - 1 do
      let r = refcount t b in
      t.refs.(b) <- r;
      if r > 0 then Allocator.mark_allocated t.balloc b
    done;
    for ino = 1 to t.inode_count do
      if in_use_at t ~imap:t.imap_root ino then
        Allocator.mark_allocated t.ialloc ino
    done;
    t

let mkfs_and_mount device ?sync_mount () =
  mkfs device ();
  mount device ?sync_mount ()

let attach_faultops t fo =
  let module Faultops = Hinfs_nvmm.Faultops in
  let hook kind =
    match fo with
    | None -> None
    | Some fo -> Some (fun () -> Faultops.check fo kind)
  in
  set_block_fault_injector t (hook Faultops.Block_alloc);
  set_inode_fault_injector t (hook Faultops.Inode_alloc)

(* --- namespace operations --- *)

let lookup t ~dir name =
  with_read t (fun () -> dir_find_at t ~imap:t.imap_root ~dir name)
  |> Option.map (fun (ino, _, _) -> ino)

let alloc_inode t =
  match Allocator.alloc t.ialloc with
  | None -> Errno.raise_error ENOSPC "out of inodes"
  | Some ino ->
    t.ino_news <- ino :: t.ino_news;
    ino

let init_inode t ~cat ino ~kind ~links =
  let ia = shadow_inode t ~cat ino in
  let raw = Bytes.make inode_size '\000' in
  Bytes.set_uint8 raw F.in_use_off 1;
  Bytes.set_uint8 raw F.kind_off kind;
  Bytes.set_uint16_le raw F.links_off links;
  Bytes.set_int64_le raw F.mtime_off (now t);
  put_bytes t ~cat ~addr:ia raw;
  ia

let touch t ~cat ia = put_u64 t ~cat (ia + F.mtime_off) (now t)

let create_file t ~dir name =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t dir;
      let ino = alloc_inode t in
      ignore (init_inode t ~cat:mcat ino ~kind:F.kind_regular ~links:1);
      let dir_ia = shadow_inode t ~cat:mcat dir in
      dir_add t ~cat:mcat ~dir ~dir_ia name ~ino;
      touch t ~cat:mcat dir_ia;
      ino)

let mkdir t ~dir name =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t dir;
      let ino = alloc_inode t in
      ignore (init_inode t ~cat:mcat ino ~kind:F.kind_directory ~links:2);
      let dir_ia = shadow_inode t ~cat:mcat dir in
      dir_add t ~cat:mcat ~dir ~dir_ia name ~ino;
      put_u16 t ~cat:mcat (dir_ia + F.links_off)
        (Device.get_u16 t.device (dir_ia + F.links_off) + 1);
      touch t ~cat:mcat dir_ia;
      ino)

(* Drop an inode's tree and mark it free; the inode number goes back to
   the allocator only after the commit is durable. *)
let free_inode t ~cat ino =
  let ia = shadow_inode t ~cat ino in
  let root = Int64.to_int (Device.get_u64 t.device (ia + F.tree_root_off)) in
  let height = Device.get_u32 t.device (ia + F.height_off) in
  drop_subtree t root height;
  put_bytes t ~cat ~addr:ia (Bytes.make inode_size '\000');
  if List.mem ino t.ino_news then begin
    t.ino_news <- List.filter (fun i -> i <> ino) t.ino_news;
    Allocator.free t.ialloc ino
  end
  else t.ino_released <- ino :: t.ino_released

let unlink t ~dir name =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t dir;
      (match dir_find_at t ~imap:t.imap_root ~dir name with
      | None -> Errno.raise_error ENOENT "no entry %S" name
      | Some (ino, _, _) ->
        if ikind_at t ~imap:t.imap_root ino = F.kind_directory then
          Errno.raise_error EISDIR "%S is a directory" name);
      let dir_ia = shadow_inode t ~cat:mcat dir in
      let ino = dir_remove t ~cat:mcat ~dir ~dir_ia name in
      let ia = shadow_inode t ~cat:mcat ino in
      let links = Device.get_u16 t.device (ia + F.links_off) in
      if links <= 1 then free_inode t ~cat:mcat ino
      else put_u16 t ~cat:mcat (ia + F.links_off) (links - 1);
      touch t ~cat:mcat dir_ia)

let rmdir t ~dir name =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t dir;
      (match dir_find_at t ~imap:t.imap_root ~dir name with
      | None -> Errno.raise_error ENOENT "no entry %S" name
      | Some (ino, _, _) ->
        if ikind_at t ~imap:t.imap_root ino <> F.kind_directory then
          Errno.raise_error ENOTDIR "%S is not a directory" name;
        if not (dir_is_empty_at t ~imap:t.imap_root ~dir:ino) then
          Errno.raise_error ENOTEMPTY "%S is not empty" name);
      let dir_ia = shadow_inode t ~cat:mcat dir in
      let ino = dir_remove t ~cat:mcat ~dir ~dir_ia name in
      free_inode t ~cat:mcat ino;
      put_u16 t ~cat:mcat (dir_ia + F.links_off)
        (Device.get_u16 t.device (dir_ia + F.links_off) - 1);
      touch t ~cat:mcat dir_ia)

let rename t ~src_dir ~src ~dst_dir ~dst =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t src_dir;
      check_ino t dst_dir;
      let imap = t.imap_root in
      let ino =
        match dir_find_at t ~imap ~dir:src_dir src with
        | None -> Errno.raise_error ENOENT "no entry %S" src
        | Some (ino, _, _) -> ino
      in
      let moving_dir = ikind_at t ~imap ino = F.kind_directory in
      (match dir_find_at t ~imap ~dir:dst_dir dst with
      | None -> ()
      | Some (old, _, _) ->
        if old = ino then raise Exit (* same entry: no-op, commit nothing *)
        else begin
          let old_is_dir = ikind_at t ~imap old = F.kind_directory in
          if old_is_dir then begin
            if not moving_dir then
              Errno.raise_error EISDIR "%S is a directory" dst;
            if not (dir_is_empty_at t ~imap ~dir:old) then
              Errno.raise_error ENOTEMPTY "%S is not empty" dst
          end
          else if moving_dir then
            Errno.raise_error ENOTDIR "%S is not a directory" dst;
          let dst_ia = shadow_inode t ~cat:mcat dst_dir in
          ignore (dir_remove t ~cat:mcat ~dir:dst_dir ~dir_ia:dst_ia dst);
          if old_is_dir then begin
            free_inode t ~cat:mcat old;
            put_u16 t ~cat:mcat (dst_ia + F.links_off)
              (Device.get_u16 t.device (dst_ia + F.links_off) - 1)
          end
          else begin
            let old_ia = shadow_inode t ~cat:mcat old in
            let links = Device.get_u16 t.device (old_ia + F.links_off) in
            if links <= 1 then free_inode t ~cat:mcat old
            else put_u16 t ~cat:mcat (old_ia + F.links_off) (links - 1)
          end
        end);
      let src_ia = shadow_inode t ~cat:mcat src_dir in
      ignore (dir_remove t ~cat:mcat ~dir:src_dir ~dir_ia:src_ia src);
      let dst_ia = shadow_inode t ~cat:mcat dst_dir in
      dir_add t ~cat:mcat ~dir:dst_dir ~dir_ia:dst_ia dst ~ino;
      if moving_dir && src_dir <> dst_dir then begin
        put_u16 t ~cat:mcat (src_ia + F.links_off)
          (Device.get_u16 t.device (src_ia + F.links_off) - 1);
        put_u16 t ~cat:mcat (dst_ia + F.links_off)
          (Device.get_u16 t.device (dst_ia + F.links_off) + 1)
      end;
      touch t ~cat:mcat src_ia;
      touch t ~cat:mcat dst_ia)

let rename t ~src_dir ~src ~dst_dir ~dst =
  try rename t ~src_dir ~src ~dst_dir ~dst with Exit -> ()

let readdir t ~dir =
  with_read t (fun () ->
      check_ino t dir;
      dir_list_at t ~imap:t.imap_root ~dir)

(* --- data path --- *)

let read t ~ino ~off ~len ~into ~into_off =
  with_read t (fun () ->
      check_ino t ino;
      let size = isize_at t ~imap:t.imap_root ino in
      if off >= size || len = 0 then 0
      else begin
        let len = min len (size - off) in
        let pos = ref off in
        let done_ = ref 0 in
        while !done_ < len do
          let fblock = !pos / t.bs in
          let boff = !pos mod t.bs in
          let chunk = min (t.bs - boff) (len - !done_) in
          (match lookup_block_at t ~imap:t.imap_root ~ino ~fblock with
          | Some b ->
            read_retrying t ~cat:Stats.Read_access
              ~addr:(baddr t b + boff)
              ~len:chunk ~into ~off:(into_off + !done_)
          | None ->
            Bytes.fill into (into_off + !done_) chunk '\000';
            charge_copy t Stats.Read_access chunk);
          pos := !pos + chunk;
          done_ := !done_ + chunk
        done;
        len
      end)

let write t ~ino ~off ~src ~src_off ~len ~sync:_ =
  with_mutation t ~cat:Stats.Write_access (fun () ->
      check_ino t ino;
      if ikind_at t ~imap:t.imap_root ino <> F.kind_regular then
        Errno.raise_error EISDIR "inode %d is a directory" ino;
      if len = 0 then 0
      else begin
        let cat = Stats.Write_access in
        let ia = shadow_inode t ~cat ino in
        let size = Int64.to_int (Device.get_u64 t.device (ia + F.size_off)) in
        (* Extending past EOF: scrub the stale tail of the current last
           block so the gap reads as zeros afterwards. *)
        if off > size && size mod t.bs <> 0 then begin
          let lastf = size / t.bs in
          match lookup_block_at t ~imap:t.imap_root ~ino ~fblock:lastf with
          | None -> ()
          | Some _ ->
            let b, _ = ensure_data_block t ~cat ~ia ~fblock:lastf ~full:false in
            let boff = size mod t.bs in
            put_bytes t ~cat
              ~addr:(baddr t b + boff)
              (Bytes.make (t.bs - boff) '\000')
        end;
        let pos = ref off in
        let done_ = ref 0 in
        let fresh_blocks = ref 0 in
        while !done_ < len do
          let fblock = !pos / t.bs in
          let boff = !pos mod t.bs in
          let chunk = min (t.bs - boff) (len - !done_) in
          let full = boff = 0 && chunk = t.bs in
          let b, fresh = ensure_data_block t ~cat ~ia ~fblock ~full in
          if fresh then incr fresh_blocks;
          if fresh && not full then begin
            (* Fresh block: zero the uncovered head and tail. *)
            if boff > 0 then
              put_bytes t ~cat ~addr:(baddr t b) (Bytes.make boff '\000');
            let tail = t.bs - (boff + chunk) in
            if tail > 0 then
              put_bytes t ~cat
                ~addr:(baddr t b + boff + chunk)
                (Bytes.make tail '\000')
          end;
          Device.write_nt t.device ~cat
            ~addr:(baddr t b + boff)
            ~src ~off:(src_off + !done_) ~len:chunk;
          pos := !pos + chunk;
          done_ := !done_ + chunk
        done;
        if off + len > size then
          put_u64 t ~cat (ia + F.size_off) (Int64.of_int (off + len));
        if !fresh_blocks > 0 then
          put_u64 t ~cat (ia + F.blocks_off)
            (Int64.add
               (Device.get_u64 t.device (ia + F.blocks_off))
               (Int64.of_int !fresh_blocks));
        put_u64 t ~cat (ia + F.mtime_off) (now t);
        len
      end)

let truncate t ~ino ~size =
  with_mutation t ~cat:mcat (fun () ->
      check_ino t ino;
      if ikind_at t ~imap:t.imap_root ino <> F.kind_regular then
        Errno.raise_error EISDIR "inode %d is a directory" ino;
      let cat = mcat in
      let ia = shadow_inode t ~cat ino in
      let old = Int64.to_int (Device.get_u64 t.device (ia + F.size_off)) in
      if size < old then begin
        let keep = (size + t.bs - 1) / t.bs in
        let had = (old + t.bs - 1) / t.bs in
        let dropped = ref 0 in
        for fblock = keep to had - 1 do
          if zap_data_block t ~cat ~ia ~fblock then incr dropped
        done;
        if !dropped > 0 then
          put_u64 t ~cat (ia + F.blocks_off)
            (Int64.sub
               (Device.get_u64 t.device (ia + F.blocks_off))
               (Int64.of_int !dropped));
        (* Zero the tail of the (kept) last partial block. *)
        if size mod t.bs <> 0 then begin
          match lookup_block_at t ~imap:t.imap_root ~ino ~fblock:(size / t.bs) with
          | None -> ()
          | Some _ ->
            let b, _ =
              ensure_data_block t ~cat ~ia ~fblock:(size / t.bs) ~full:false
            in
            let boff = size mod t.bs in
            put_bytes t ~cat
              ~addr:(baddr t b + boff)
              (Bytes.make (t.bs - boff) '\000')
        end
      end;
      if size <> old then put_u64 t ~cat (ia + F.size_off) (Int64.of_int size);
      touch t ~cat ia)

let fsync t ~ino =
  ignore ino;
  with_mutation t ~cat:ccat (fun () -> ())

let sync_all t = with_mutation t ~cat:ccat (fun () -> ())

let unmount t =
  (if t.mounted && not (read_only t) then
     try sync_all t with Errno.Fs_error _ -> ());
  t.mounted <- false

(* --- snapshots / clones / rollback / transactions --- *)

let no_txn t what =
  if t.txn_depth > 0 then
    Errno.raise_error EINVAL "%s inside an open transaction" what

(* Add [d] to every block of the tree pinned by [imap]. *)
let walk_delta t ~imap d =
  iter_tree_at t ~imap (fun ~block ~kind:_ -> delta t block d)

let snap_store t ~cat ~slot ~id ~imap ~seq =
  let tbl = shadow_snap_table t ~cat in
  let addr = baddr t tbl + (32 * slot) in
  put_u64i t ~cat addr id;
  put_u64i t ~cat (addr + 8) imap;
  put_u64 t ~cat (addr + 16) seq

let free_snap_slot t =
  let found = ref None in
  for i = snap_capacity t - 1 downto 0 do
    if get_u64i t (baddr t t.snap_table + (32 * i)) = 0 then found := Some i
  done;
  match !found with
  | Some i -> i
  | None -> Errno.raise_error ENOSPC "snapshot table is full"

let snapshot_of_imap t ~cat src_imap =
  (* Flush the open window first so the pinned root is a committed one. *)
  commit_locked t ~cat;
  let src_imap = if src_imap = 0 then t.imap_root else src_imap in
  let id = t.next_snap_id in
  let slot = free_snap_slot t in
  snap_store t ~cat ~slot ~id ~imap:src_imap
    ~seq:(Int64.succ t.committed.Root_swap.seq);
  walk_delta t ~imap:src_imap 1;
  t.next_snap_id <- id + 1;
  commit_locked t ~cat;
  id

let snapshot t =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      no_txn t "snapshot";
      match snapshot_of_imap t ~cat:ccat 0 with
      | id -> id
      | exception e ->
        abort_window t;
        raise e)

let clone t ~snap_id =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      no_txn t "clone";
      match
        match snap_find t snap_id with
        | None -> Errno.raise_error ENOENT "no snapshot %d" snap_id
        | Some s -> snapshot_of_imap t ~cat:ccat s.snap_imap
      with
      | id -> id
      | exception e ->
        abort_window t;
        raise e)

let snapshot_delete t ~snap_id =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      no_txn t "snapshot_delete";
      match
        match (snap_find t snap_id, snap_slot_of t snap_id) with
        | Some s, Some slot ->
          commit_locked t ~cat:ccat;
          Obs.span_begin Obs.Snapshot_gc;
          (match
             snap_store t ~cat:ccat ~slot ~id:0 ~imap:0 ~seq:0L;
             walk_delta t ~imap:s.snap_imap (-1);
             commit_locked t ~cat:ccat
           with
          | () -> Obs.span_end Obs.Snapshot_gc
          | exception e ->
            Obs.span_end Obs.Snapshot_gc;
            raise e)
        | _ -> Errno.raise_error ENOENT "no snapshot %d" snap_id
      with
      | () -> ()
      | exception e ->
        abort_window t;
        raise e)

let rollback t ~snap_id =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      no_txn t "rollback";
      match
        match snap_find t snap_id with
        | None -> Errno.raise_error ENOENT "no snapshot %d" snap_id
        | Some s ->
          (* Discard the open window, then retarget the working tree. *)
          abort_window t;
          Obs.span_begin Obs.Snapshot_gc;
          (match
             walk_delta t ~imap:t.imap_root (-1);
             t.imap_root <- s.snap_imap;
             walk_delta t ~imap:s.snap_imap 1;
             Allocator.reset t.ialloc;
             for ino = 1 to t.inode_count do
               if in_use_at t ~imap:t.imap_root ino then
                 Allocator.mark_allocated t.ialloc ino
             done;
             commit_locked t ~cat:ccat
           with
          | () -> Obs.span_end Obs.Snapshot_gc
          | exception e ->
            Obs.span_end Obs.Snapshot_gc;
            raise e)
      with
      | () -> ()
      | exception e ->
        abort_window t;
        raise e)

let txn_begin t =
  Rwlock.with_write t.lock (fun () ->
      check_writable t;
      t.txn_depth <- t.txn_depth + 1)

let txn_commit t =
  Rwlock.with_write t.lock (fun () ->
      if t.txn_depth = 0 then
        Errno.raise_error EINVAL "txn_commit without txn_begin";
      t.txn_depth <- t.txn_depth - 1;
      if t.txn_depth = 0 then (
        match commit_locked t ~cat:ccat with
        | () -> ()
        | exception e ->
          abort_window t;
          raise e))

let txn_abort t =
  Rwlock.with_write t.lock (fun () ->
      if t.txn_depth = 0 then
        Errno.raise_error EINVAL "txn_abort without txn_begin";
      abort_window t)

(* --- state digest (crashmc whole-image oracle) ---

   A canonical untimed fingerprint of the whole FS: the recursive
   namespace of the working tree (path, kind, size, content) plus every
   snapshot's id and tree fingerprint. Two devices whose digests match
   hold bit-equivalent committed states. Callers must be quiesced. *)

let digest_tree t ~imap =
  let buf = Buffer.create 4096 in
  let rec walk path ino =
    let kind = ikind_at t ~imap ino in
    Buffer.add_string buf path;
    Buffer.add_char buf '\000';
    Buffer.add_string buf (string_of_int kind);
    Buffer.add_char buf '\000';
    if kind = F.kind_directory then begin
      let entries =
        List.sort (fun (a, _) (b, _) -> String.compare a b)
          (dir_list_at t ~imap ~dir:ino)
      in
      List.iter (fun (name, child) -> walk (path ^ "/" ^ name) child) entries
    end
    else begin
      let size = isize_at t ~imap ino in
      Buffer.add_string buf (string_of_int size);
      Buffer.add_char buf '\000';
      let nblocks = (size + t.bs - 1) / t.bs in
      for fblock = 0 to nblocks - 1 do
        let len = min t.bs (size - (fblock * t.bs)) in
        match lookup_block_at t ~imap ~ino ~fblock with
        | Some b ->
          Buffer.add_bytes buf (Device.peek t.device ~addr:(baddr t b) ~len)
        | None -> Buffer.add_bytes buf (Bytes.make len '\000')
      done
    end
  in
  walk "" root_ino;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let state_digest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (digest_tree t ~imap:t.imap_root);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Fmt.str "|%d:%s" s.snap_id (digest_tree t ~imap:s.snap_imap)))
    (List.sort (fun a b -> compare a.snap_id b.snap_id) (snap_list t));
  Buffer.contents buf

(* --- VFS backend --- *)

module Backend : Hinfs_vfs.Backend.S with type t = t = struct
  type nonrec t = t

  let fs_name _ = "cowfs"
  let device = device
  let sync_mount t = t.sync_mount
  let root_ino _ = root_ino
  let lookup = lookup
  let create_file = create_file
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let rename = rename
  let readdir = readdir
  let stat t ~ino = with_read t (fun () -> stat_of t ino)
  let read = read
  let write = write
  let truncate = truncate
  let fsync = fsync

  let mmap t ~ino =
    fsync t ~ino;
    Obs.instant Obs.Ev_mmap_pin ~a:ino ~b:0

  let munmap _ ~ino = Obs.instant Obs.Ev_mmap_unpin ~a:ino ~b:0
  let msync t ~ino = fsync t ~ino
  let sync_all = sync_all
  let unmount = unmount
end

module Vfs_layer = Hinfs_vfs.Vfs.Make (Backend)

let handle t =
  let h = Vfs_layer.handle t in
  {
    h with
    Hinfs_vfs.Vfs.snap_ops =
      Some
        {
          Hinfs_vfs.Vfs.snapshot = (fun () -> snapshot t);
          clone = (fun id -> clone t ~snap_id:id);
          rollback = (fun id -> rollback t ~snap_id:id);
          snapshot_delete = (fun id -> snapshot_delete t ~snap_id:id);
          snapshots = (fun () -> with_read t (fun () -> snapshots t));
          txn_begin = (fun () -> txn_begin t);
          txn_commit = (fun () -> txn_commit t);
          txn_abort = (fun () -> txn_abort t);
        };
  }
