(* Shared mounted-filesystem context threaded through the PMFS layers.

   Hot state is sharded (Layout v3): each shard owns one journal
   sub-region and one range of the inode table and data region. A file's
   home shard is a pure function of its inode number; every transaction
   lives entirely in its home shard's journal, while frees route back to
   the owning range by block / inode number. Cross-shard operations
   commit through the epoch record. *)

module Allocator = Hinfs_nvmm.Allocator
module Log = Hinfs_journal.Cacheline_log

type shard = {
  log : Log.t;
  balloc : Allocator.t; (* this shard's data-block range *)
  ialloc : Allocator.t; (* this shard's inode range (1-based inos) *)
}

type t = {
  device : Hinfs_nvmm.Device.t;
  geo : Layout.geometry;
  shards : shard array;
  epoch : Hinfs_journal.Epoch.t;
  mutable rr_next : int; (* round-robin cursor for directory placement *)
}

let block_addr t block = block * t.geo.Layout.block_size

let stats t = Hinfs_nvmm.Device.stats t.device
let config t = Hinfs_nvmm.Device.config t.device

let shard_count t = Array.length t.shards
let shard t s = t.shards.(s)
let shard_of_ino t ino = Layout.shard_of_ino t.geo ino
let shard_of_block t block = Layout.shard_of_block t.geo block
let shard_for_ino t ino = t.shards.(shard_of_ino t ino)
let log_for t ~ino = (shard_for_ino t ino).log
let epoch t = t.epoch

let iter_shards t f = Array.iteri f t.shards

(* --- allocation: prefer the home range, fall back round the ring ---

   A shard allocates from its own range without contending; only when the
   range runs dry does it borrow from the next shard's. Borrowed blocks
   are still owned by their range (frees route by number), so fsck's
   per-range accounting stays exact. *)

let alloc_in t ~shard:s pick =
  let n = shard_count t in
  let rec go i =
    if i = n then None
    else
      match pick t.shards.((s + i) mod n) with
      | Some _ as r -> r
      | None -> go (i + 1)
  in
  go 0

let alloc_block t ~shard =
  alloc_in t ~shard (fun sh -> Allocator.alloc sh.balloc)

let alloc_ino t ~shard =
  alloc_in t ~shard (fun sh -> Allocator.alloc sh.ialloc)

let free_block t block =
  Allocator.free t.shards.(shard_of_block t block).balloc block

let free_ino t ino = Allocator.free t.shards.(shard_of_ino t ino).ialloc ino

let block_is_allocated t block =
  let sh = t.shards.(shard_of_block t block) in
  Allocator.contains sh.balloc block && Allocator.is_allocated sh.balloc block

let mark_block_allocated t block =
  Allocator.mark_allocated t.shards.(shard_of_block t block).balloc block

let mark_ino_allocated t ino =
  Allocator.mark_allocated t.shards.(shard_of_ino t ino).ialloc ino

(* Directory placement: spread directories round-robin across shards so a
   namespace populates every shard's ranges; files are placed in their
   parent directory's shard (see Pmfs.create_entry), keeping create /
   unlink / rmdir single-shard. *)
let next_dir_shard t =
  let s = t.rr_next in
  t.rr_next <- (s + 1) mod shard_count t;
  s

let sum f t = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

let free_data_blocks t = sum (fun sh -> Allocator.free_blocks sh.balloc) t
let free_inodes t = sum (fun sh -> Allocator.free_blocks sh.ialloc) t
