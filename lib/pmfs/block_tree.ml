(* PMFS's per-file block index: a radix tree of NVMM blocks.

   PMFS calls it a B-tree; structurally each 4 KB index node holds 512
   8-byte block pointers and the tree is keyed by the logical file block
   number, so it is a radix tree with fanout 512. Height 0 with a non-zero
   root means the root pointer addresses the single data block of file
   block 0; height h >= 1 addresses 512^h file blocks. A zero pointer is a
   hole.

   Crash safety: pointer and inode updates are journaled through the
   cacheline undo log; freshly allocated index nodes are zeroed with
   non-temporal stores *before* the (journaled) parent pointer is committed,
   so an interrupted grow either rolls back completely or lands on a fully
   initialised node. *)

module Device = Hinfs_nvmm.Device
module Allocator = Hinfs_nvmm.Allocator
module Log = Hinfs_journal.Cacheline_log
module Stats = Hinfs_stats.Stats
module Errno = Hinfs_vfs.Errno

let mcat = Stats.Other (* index maintenance cost category *)

let ptrs_per_node ctx = ctx.Fs_ctx.geo.Layout.block_size / 8

(* Number of file blocks addressable at the given height. *)
let tree_capacity ctx height =
  if height = 0 then 1
  else begin
    let p = ptrs_per_node ctx in
    let rec pow acc h = if h = 0 then acc else pow (acc * p) (h - 1) in
    pow 1 height
  end

let ptr_addr ctx node_block slot =
  Fs_ctx.block_addr ctx node_block + (slot * 8)

let read_ptr ctx node_block slot =
  Int64.to_int (Device.get_u64 ctx.Fs_ctx.device (ptr_addr ctx node_block slot))

(* Journal the old pointer (into the file's home-shard log), then update
   it in place. *)
let write_ptr ctx log txn node_block slot value =
  let addr = ptr_addr ctx node_block slot in
  Log.log log txn ~addr ~len:8;
  Device.set_u64 ctx.Fs_ctx.device ~cat:mcat addr (Int64.of_int value)

(* Slot index at [level] (1 = leaf pointer level) for a file block. *)
let slot_at ctx ~level fblock =
  let p = ptrs_per_node ctx in
  let rec shift acc l = if l <= 1 then acc else shift (acc / p) (l - 1) in
  shift fblock level mod p

let alloc_block ctx ~shard =
  match Fs_ctx.alloc_block ctx ~shard with
  | Some b -> b
  | None -> Errno.raise_error ENOSPC "NVMM device is full"

(* Allocate and zero a fresh index node; the zeros are persistent before we
   return (non-temporal stores). *)
let alloc_index_node ctx ~shard =
  let block = alloc_block ctx ~shard in
  let zero = Bytes.make ctx.Fs_ctx.geo.Layout.block_size '\000' in
  Device.write_nt ctx.Fs_ctx.device ~cat:mcat
    ~addr:(Fs_ctx.block_addr ctx block)
    ~src:zero ~off:0 ~len:(Bytes.length zero);
  block

(* --- lookup --- *)

let lookup ctx ~ino ~fblock =
  if fblock < 0 then invalid_arg "Block_tree.lookup: negative file block";
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let height = Layout.Inode.height device geo ino in
  let root = Layout.Inode.tree_root device geo ino in
  if root = 0 then None
  else if fblock >= tree_capacity ctx height then None
  else if height = 0 then if fblock = 0 then Some root else None
  else begin
    let rec walk node level =
      let slot = slot_at ctx ~level fblock in
      let ptr = read_ptr ctx node slot in
      if ptr = 0 then None
      else if level = 1 then Some ptr
      else walk ptr (level - 1)
    in
    walk root height
  end

(* --- growth and insertion --- *)

(* Smallest height whose capacity covers [fblock]. *)
let needed_height ctx fblock =
  let rec search h =
    if fblock < tree_capacity ctx h then h else search (h + 1)
  in
  search 0

(* Raise a non-empty tree's height until [fblock] is addressable: the old
   root becomes slot 0 of each fresh root node. Inode height/root updates go
   through [txn]; the fresh node's slot-0 store does not (the node is
   unreachable until the transaction commits). Every allocated block is
   reported through [allocated] so the caller can reclaim it if the
   transaction is later aborted; every journaled mutation pushes an
   [undo] thunk restoring the old value (see [ensure]). *)
let grow ctx log txn ~ino ~fblock ~allocated ~undo =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let shard = Fs_ctx.shard_of_ino ctx ino in
  let inode_addr = Layout.Inode.addr geo ino in
  while fblock >= tree_capacity ctx (Layout.Inode.height device geo ino) do
    let height = Layout.Inode.height device geo ino in
    let root = Layout.Inode.tree_root device geo ino in
    let node = alloc_index_node ctx ~shard in
    allocated := node :: !allocated;
    Device.set_u64 device ~cat:mcat (ptr_addr ctx node 0) (Int64.of_int root);
    Device.clflush device ~cat:mcat ~addr:(ptr_addr ctx node 0) ~len:8;
    Log.log log txn ~addr:inode_addr ~len:24;
    Layout.Inode.set_height device ~cat:mcat geo ino (height + 1);
    Layout.Inode.set_tree_root device ~cat:mcat geo ino node;
    undo :=
      (fun () ->
        Layout.Inode.set_height device ~cat:mcat geo ino height;
        Layout.Inode.set_tree_root device ~cat:mcat geo ino root)
      :: !undo
  done

(* Descend from an index node to the data block for [fblock], allocating
   missing index nodes and the data block as needed. *)
let rec descend_ensure ctx log ~shard txn ~fblock ~allocated ~undo node level =
  let slot = slot_at ctx ~level fblock in
  let ptr = read_ptr ctx node slot in
  if level = 1 then
    if ptr <> 0 then (ptr, false)
    else begin
      let data = alloc_block ctx ~shard in
      allocated := data :: !allocated;
      write_ptr ctx log txn node slot data;
      undo :=
        (fun () ->
          Device.set_u64 ctx.Fs_ctx.device ~cat:mcat (ptr_addr ctx node slot)
            0L)
        :: !undo;
      (data, true)
    end
  else if ptr <> 0 then
    descend_ensure ctx log ~shard txn ~fblock ~allocated ~undo ptr (level - 1)
  else begin
    let child = alloc_index_node ctx ~shard in
    allocated := child :: !allocated;
    write_ptr ctx log txn node slot child;
    undo :=
      (fun () ->
        Device.set_u64 ctx.Fs_ctx.device ~cat:mcat (ptr_addr ctx node slot) 0L)
      :: !undo;
    descend_ensure ctx log ~shard txn ~fblock ~allocated ~undo child (level - 1)
  end

(* Find the data block for [fblock], allocating the tree path and the data
   block as needed. Returns [(block, freshly_allocated, allocated_blocks)]
   where [allocated_blocks] lists every NVMM block (index nodes + data)
   allocated by this call — the caller must return them to the allocator if
   it aborts [txn]. *)
let ensure ctx txn ~ino ~fblock =
  if fblock < 0 then invalid_arg "Block_tree.ensure: negative file block";
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let log = Fs_ctx.log_for ctx ~ino in
  let shard = Fs_ctx.shard_of_ino ctx ino in
  let inode_addr = Layout.Inode.addr geo ino in
  let root = Layout.Inode.tree_root device geo ino in
  let allocated = ref [] in
  let undo = ref [] in
  (* Failure atomicity: a mid-path allocation failure (ENOSPC, injected
     fault) raises after part of the path was built. A failed ensure must be
     net-zero: the undo thunks restore every pointer and inode field this
     call changed (the addresses are already journaled under [txn], so a
     later abort re-restores the same values — idempotent), and the
     partially allocated blocks are reclaimed. This matters for HiNFS's
     long-lived pending transactions, which must stay valid for *either*
     commit or abort after a failed segment. *)
  let result =
    try
    if root = 0 then begin
      (* Empty file: build a fresh path of the needed height. *)
      let h = needed_height ctx fblock in
      if h = 0 then begin
        let data = alloc_block ctx ~shard in
        allocated := data :: !allocated;
        Log.log log txn ~addr:inode_addr ~len:24;
        Layout.Inode.set_tree_root device ~cat:mcat geo ino data;
        (data, true)
      end
      else begin
        let old_height = Layout.Inode.height device geo ino in
        let node = alloc_index_node ctx ~shard in
        allocated := node :: !allocated;
        Log.log log txn ~addr:inode_addr ~len:24;
        Layout.Inode.set_height device ~cat:mcat geo ino h;
        Layout.Inode.set_tree_root device ~cat:mcat geo ino node;
        undo :=
          (fun () ->
            Layout.Inode.set_height device ~cat:mcat geo ino old_height;
            Layout.Inode.set_tree_root device ~cat:mcat geo ino 0)
          :: !undo;
        descend_ensure ctx log ~shard txn ~fblock ~allocated ~undo node h
      end
    end
    else begin
      grow ctx log txn ~ino ~fblock ~allocated ~undo;
      let height = Layout.Inode.height device geo ino in
      let root = Layout.Inode.tree_root device geo ino in
      if height = 0 then begin
        assert (fblock = 0);
        (root, false)
      end
      else descend_ensure ctx log ~shard txn ~fblock ~allocated ~undo root height
    end
    with e ->
      List.iter (fun f -> f ()) !undo;
      List.iter (Fs_ctx.free_block ctx) !allocated;
      raise e
  in
  let block, fresh = result in
  (block, fresh, !allocated)

(* --- iteration and freeing --- *)

(* Visit every allocated data block as (fblock, block). *)
let iter_blocks ctx ~ino f =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let height = Layout.Inode.height device geo ino in
  let root = Layout.Inode.tree_root device geo ino in
  if root <> 0 then
    if height = 0 then f 0 root
    else begin
      let p = ptrs_per_node ctx in
      let rec walk node level base =
        let span = tree_capacity ctx (level - 1) in
        for slot = 0 to p - 1 do
          let ptr = read_ptr ctx node slot in
          if ptr <> 0 then
            if level = 1 then f (base + slot) ptr
            else walk ptr (level - 1) (base + (slot * span))
        done
      in
      walk root height 0
    end

(* Visit every index node (for allocator rebuild). *)
let iter_index_nodes ctx ~ino f =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let height = Layout.Inode.height device geo ino in
  let root = Layout.Inode.tree_root device geo ino in
  if root <> 0 && height > 0 then begin
    let p = ptrs_per_node ctx in
    let rec walk node level =
      f node;
      if level > 1 then
        for slot = 0 to p - 1 do
          let ptr = read_ptr ctx node slot in
          if ptr <> 0 then walk ptr (level - 1)
        done
    in
    walk root height
  end

(* Detach all tree blocks (index + data) from the inode: root/height/blocks
   are reset through [txn], and the detached blocks are *returned*, not
   freed — the caller hands them to the allocator only after the
   transaction commits. Freeing inside the transaction would let an abort
   restore the pointers to blocks the allocator already re-issued
   (reachable-but-free corruption). The freed blocks need no on-NVMM
   scrubbing: nothing reachable points at them once the transaction commits
   (the allocator is rebuilt from live trees at mount).

   [log] is the journal [txn] was begun on — the parent directory's when
   called from unlink / rmdir / rename, which need not be the dead inode's
   home shard. *)
let free_all ctx log txn ~ino =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let inode_addr = Layout.Inode.addr geo ino in
  let detached = ref [] in
  iter_blocks ctx ~ino (fun _fblock block -> detached := block :: !detached);
  iter_index_nodes ctx ~ino (fun node -> detached := node :: !detached);
  Log.log log txn ~addr:inode_addr ~len:40;
  Layout.Inode.set_height device ~cat:mcat geo ino 0;
  Layout.Inode.set_tree_root device ~cat:mcat geo ino 0;
  Layout.Inode.set_blocks device ~cat:mcat geo ino 0;
  List.rev !detached

(* Detach data blocks with fblock >= keep_blocks (truncate). Index nodes
   that become empty are left in place (they are reclaimed when the file is
   deleted); pointers to detached data blocks are zeroed through the txn.
   As with [free_all], the detached blocks are returned for the caller to
   free after commit, never freed inside the transaction. *)
let free_from ctx txn ~ino ~keep_blocks =
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let log = Fs_ctx.log_for ctx ~ino in
  let height = Layout.Inode.height device geo ino in
  let root = Layout.Inode.tree_root device geo ino in
  let detached = ref [] in
  if root <> 0 then
    if height = 0 then begin
      if keep_blocks <= 0 then begin
        detached := root :: !detached;
        Log.log log txn ~addr:(Layout.Inode.addr geo ino) ~len:24;
        Layout.Inode.set_tree_root device ~cat:mcat geo ino 0
      end
    end
    else begin
      let p = ptrs_per_node ctx in
      let rec walk node level base =
        let span = tree_capacity ctx (level - 1) in
        for slot = 0 to p - 1 do
          let fblock_base = base + (slot * span) in
          if fblock_base + span > keep_blocks then begin
            let ptr = read_ptr ctx node slot in
            if ptr <> 0 then
              if level = 1 then begin
                detached := ptr :: !detached;
                write_ptr ctx log txn node slot 0
              end
              else walk ptr (level - 1) fblock_base
          end
        done
      in
      walk root height 0
    end;
  List.rev !detached
