(* Directory entries, stored in the directory inode's data blocks.

   Fixed 64-byte dirents (one cacheline each, so a dirent update is exactly
   one undo-log entry pair):
     0..3   inode number (0 = free slot)
     4..5   name length
     6..61  name bytes (max 55)

   Lookups scan; creation reuses the first free slot or appends a fresh
   block. All mutations are journaled through the caller's transaction. *)

module Device = Hinfs_nvmm.Device
module Log = Hinfs_journal.Cacheline_log
module Stats = Hinfs_stats.Stats
module Errno = Hinfs_vfs.Errno

let dirent_size = 64
let max_name_len = 55

let mcat = Stats.Other

let dirents_per_block ctx = ctx.Fs_ctx.geo.Layout.block_size / dirent_size

let check_name name =
  let len = String.length name in
  if len = 0 || len > max_name_len then
    Errno.raise_error EINVAL "directory entry name %S too long (max %d)" name
      max_name_len

let dirent_addr ctx block slot =
  Fs_ctx.block_addr ctx block + (slot * dirent_size)

let read_dirent ctx block slot =
  let addr = dirent_addr ctx block slot in
  let raw = Device.peek ctx.Fs_ctx.device ~addr ~len:dirent_size in
  let ino = Int32.to_int (Bytes.get_int32_le raw 0) in
  if ino = 0 then None
  else begin
    let name_len = Bytes.get_uint16_le raw 4 in
    Some (Bytes.sub_string raw 6 name_len, ino)
  end

(* Number of dirent blocks currently backing the directory. *)
let dir_blocks ctx ~dir =
  let size = Layout.Inode.size ctx.Fs_ctx.device ctx.Fs_ctx.geo dir in
  size / ctx.Fs_ctx.geo.Layout.block_size

(* Iterate (fblock, block, slot, name, ino) over live entries; stops early
   if [f] returns false. *)
let iter_entries ctx ~dir f =
  let per_block = dirents_per_block ctx in
  let nblocks = dir_blocks ctx ~dir in
  let rec block_loop fblock =
    if fblock < nblocks then begin
      match Block_tree.lookup ctx ~ino:dir ~fblock with
      | None -> block_loop (fblock + 1)
      | Some block ->
        let rec slot_loop slot =
          if slot >= per_block then block_loop (fblock + 1)
          else begin
            match read_dirent ctx block slot with
            | None -> slot_loop (slot + 1)
            | Some (name, ino) ->
              if f ~fblock ~block ~slot ~name ~ino then slot_loop (slot + 1)
          end
        in
        slot_loop 0
    end
  in
  block_loop 0

let find ctx ~dir name =
  let result = ref None in
  iter_entries ctx ~dir (fun ~fblock:_ ~block ~slot ~name:entry_name ~ino ->
      if String.equal entry_name name then begin
        result := Some (ino, block, slot);
        false
      end
      else true);
  !result

let lookup ctx ~dir name =
  match find ctx ~dir name with
  | Some (ino, _, _) -> Some ino
  | None -> None

let list ctx ~dir =
  let acc = ref [] in
  iter_entries ctx ~dir (fun ~fblock:_ ~block:_ ~slot:_ ~name ~ino ->
      acc := (name, ino) :: !acc;
      true);
  List.rev !acc

let entry_count ctx ~dir =
  let n = ref 0 in
  iter_entries ctx ~dir (fun ~fblock:_ ~block:_ ~slot:_ ~name:_ ~ino:_ ->
      incr n;
      true);
  !n

let is_empty ctx ~dir = entry_count ctx ~dir = 0

(* First free slot among existing dirent blocks. *)
let find_free_slot ctx ~dir =
  let per_block = dirents_per_block ctx in
  let nblocks = dir_blocks ctx ~dir in
  let result = ref None in
  (try
     for fblock = 0 to nblocks - 1 do
       match Block_tree.lookup ctx ~ino:dir ~fblock with
       | None -> ()
       | Some block ->
         for slot = 0 to per_block - 1 do
           if !result = None && read_dirent ctx block slot = None then begin
             result := Some (block, slot);
             raise Exit
           end
         done
     done
   with Exit -> ());
  !result

(* All dirent mutations journal into the directory's home-shard log; the
   caller's [txn] must have been begun on that same log. *)
let write_dirent ctx txn ~dir ~block ~slot ~name ~ino =
  let addr = dirent_addr ctx block slot in
  Log.log (Fs_ctx.log_for ctx ~ino:dir) txn ~addr ~len:dirent_size;
  let raw = Bytes.make dirent_size '\000' in
  Bytes.set_int32_le raw 0 (Int32.of_int ino);
  Bytes.set_uint16_le raw 4 (String.length name);
  Bytes.blit_string name 0 raw 6 (String.length name);
  Device.set_bytes ctx.Fs_ctx.device ~cat:mcat ~addr raw

(* Insert an entry. Returns the NVMM blocks allocated for the directory by
   this call (a fresh dirent block plus any index nodes): they are only
   reachable once [txn] commits, so a caller that aborts the transaction
   must hand them back to the allocator. A failure *inside* [add] reclaims
   its own allocations before re-raising. *)
let add ctx txn ~dir name ~ino =
  check_name name;
  let device = ctx.Fs_ctx.device in
  let geo = ctx.Fs_ctx.geo in
  let allocated = ref [] in
  try
    let block, slot =
      match find_free_slot ctx ~dir with
      | Some (block, slot) -> (block, slot)
      | None ->
        (* Append a fresh dirent block: zero it persistently before it
           becomes reachable, then extend the directory size. *)
        let nblocks = dir_blocks ctx ~dir in
        let block, fresh, blocks =
          Block_tree.ensure ctx txn ~ino:dir ~fblock:nblocks
        in
        allocated := blocks;
        if fresh then begin
          let zero = Bytes.make geo.Layout.block_size '\000' in
          Device.write_nt device ~cat:mcat
            ~addr:(Fs_ctx.block_addr ctx block)
            ~src:zero ~off:0 ~len:(Bytes.length zero)
        end;
        let inode_addr = Layout.Inode.addr geo dir in
        Log.log (Fs_ctx.log_for ctx ~ino:dir) txn ~addr:inode_addr ~len:40;
        Layout.Inode.set_size device ~cat:mcat geo dir
          ((nblocks + 1) * geo.Layout.block_size);
        Layout.Inode.set_blocks device ~cat:mcat geo dir
          (Layout.Inode.blocks device geo dir + if fresh then 1 else 0);
        (block, 0)
    in
    write_dirent ctx txn ~dir ~block ~slot ~name ~ino;
    !allocated
  with e ->
    List.iter (Fs_ctx.free_block ctx) !allocated;
    raise e

let remove ctx txn ~dir name =
  match find ctx ~dir name with
  | None -> Errno.raise_error ENOENT "no entry %S" name
  | Some (ino, block, slot) ->
    let addr = dirent_addr ctx block slot in
    Log.log (Fs_ctx.log_for ctx ~ino:dir) txn ~addr ~len:4;
    Device.set_u32 ctx.Fs_ctx.device ~cat:mcat addr 0;
    ino
