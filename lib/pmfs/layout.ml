(* On-NVMM layout of the PMFS-style persistent format.

   Block map:
     block 0                     superblock
     [1, 1+journal_blocks)       cacheline undo journal (split into
                                 [shards] equal per-shard regions)
     block 1+journal_blocks      epoch record (cross-shard commit point)
     [itable_start, +itable)     inode table (128 B inodes, 1-based)
     [data_start, data_end)      data + index blocks
     block total-1               superblock replica

   All metadata fields are little-endian. Inode 1 is the root directory.
   The superblock carries a CRC-32C over its fixed fields and is
   replicated in the device's last block, so a poisoned or corrupt primary
   is repaired from the replica instead of failing the mount.

   Sharding (v3): hot state is partitioned into [shards] shards. The
   journal region is cut into [shards] contiguous sub-regions, and the
   inode table and data region are range-partitioned so each shard
   allocates from its own ranges without contending. A file's home shard
   is a pure function of its inode number ({!shard_of_ino}); frees route
   back by range ({!shard_of_block}). *)

module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Stats = Hinfs_stats.Stats
module Crc32c = Hinfs_structures.Crc32c

let magic = 0x504D4653 (* "PMFS" *)
let version = 3
let inode_size = 128

type geometry = {
  block_size : int;
  total_blocks : int;
  journal_start : int;
  journal_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  data_end : int; (* first block past the data region *)
  sb_replica : int; (* block holding the superblock replica *)
  inode_count : int;
  shards : int; (* hot-state shard count (journal / inode / data ranges) *)
}

let root_ino = 1

(* Superblock field offsets (bytes within block 0). *)
module Sb = struct
  let magic_off = 0
  let version_off = 4
  let total_blocks_off = 8
  let journal_start_off = 16
  let journal_blocks_off = 24
  let itable_start_off = 32
  let itable_blocks_off = 40
  let data_start_off = 48
  let shards_off = 56
  let clean_unmount_off = 58
  let crc_off = 60

  (* The CRC covers the fixed geometry fields only (shards included): the
     clean-unmount flag flips at runtime with a single-byte store and must
     not invalidate the checksum. *)
  let crc_len = clean_unmount_off
end

(* Derive a geometry from a device size and tuning knobs. The journal is
   rounded up to a multiple of [shards] so every shard's region has the
   same capacity; one block past the journal holds the epoch record. *)
let geometry_of_config ?(journal_blocks = 64) ?(inodes_per_mb = 512)
    ?(shards = 1) config =
  if shards < 1 then invalid_arg "Layout: shards must be >= 1";
  let block_size = config.Config.block_size in
  let total_blocks = Config.blocks config in
  let mb = config.Config.nvmm_size / (1024 * 1024) in
  let inode_count = max 256 (inodes_per_mb * max 1 mb) in
  let itable_blocks =
    ((inode_count * inode_size) + block_size - 1) / block_size
  in
  let inode_count = itable_blocks * block_size / inode_size in
  if inode_count < shards then
    invalid_arg "Layout: fewer inodes than shards";
  let journal_blocks =
    (max journal_blocks shards + shards - 1) / shards * shards
  in
  let journal_start = 1 in
  let itable_start = journal_start + journal_blocks + 1 in
  let data_start = itable_start + itable_blocks in
  let sb_replica = total_blocks - 1 in
  let data_end = sb_replica in
  if data_start >= data_end then
    invalid_arg "Layout: device too small for metadata regions";
  if data_end - data_start < shards then
    invalid_arg "Layout: fewer data blocks than shards";
  {
    block_size;
    total_blocks;
    journal_start;
    journal_blocks;
    itable_start;
    itable_blocks;
    data_start;
    data_end;
    sb_replica;
    inode_count;
    shards;
  }

(* --- shard partitions --- *)

(* Block holding the epoch record (between the journal and the itable). *)
let epoch_block geometry = geometry.journal_start + geometry.journal_blocks

(* Per-shard journal sub-region, as (first_block, blocks). *)
let journal_region geometry s =
  let per = geometry.journal_blocks / geometry.shards in
  (geometry.journal_start + (s * per), per)

(* Per-shard inode range, as (first_ino, count); the last shard absorbs
   the remainder. *)
let inode_range geometry s =
  let per = geometry.inode_count / geometry.shards in
  let first = 1 + (s * per) in
  let count =
    if s = geometry.shards - 1 then geometry.inode_count - (s * per) else per
  in
  (first, count)

let shard_of_ino geometry ino =
  let per = geometry.inode_count / geometry.shards in
  min ((ino - 1) / per) (geometry.shards - 1)

(* Per-shard data-block range, as (first_block, count). *)
let data_range geometry s =
  let per = (geometry.data_end - geometry.data_start) / geometry.shards in
  let first = geometry.data_start + (s * per) in
  let count =
    if s = geometry.shards - 1 then geometry.data_end - first else per
  in
  (first, count)

let shard_of_block geometry block =
  let per = (geometry.data_end - geometry.data_start) / geometry.shards in
  min ((block - geometry.data_start) / per) (geometry.shards - 1)

(* Superblock image with CRC set (the clean flag is outside the CRC). *)
let superblock_image geometry ~clean =
  let b = Bytes.make geometry.block_size '\000' in
  Bytes.set_int32_le b Sb.magic_off (Int32.of_int magic);
  Bytes.set_int32_le b Sb.version_off (Int32.of_int version);
  Bytes.set_int64_le b Sb.total_blocks_off (Int64.of_int geometry.total_blocks);
  Bytes.set_int64_le b Sb.journal_start_off (Int64.of_int geometry.journal_start);
  Bytes.set_int64_le b Sb.journal_blocks_off (Int64.of_int geometry.journal_blocks);
  Bytes.set_int64_le b Sb.itable_start_off (Int64.of_int geometry.itable_start);
  Bytes.set_int64_le b Sb.itable_blocks_off (Int64.of_int geometry.itable_blocks);
  Bytes.set_int64_le b Sb.data_start_off (Int64.of_int geometry.data_start);
  Bytes.set_uint16_le b Sb.shards_off geometry.shards;
  Bytes.set_uint8 b Sb.clean_unmount_off (if clean then 1 else 0);
  Bytes.set_int32_le b Sb.crc_off
    (Int32.of_int (Crc32c.digest b ~off:0 ~len:Sb.crc_len));
  b

(* Write the superblock and its replica (mkfs/mount/unmount; untimed). The
   reliable store path heals any poison on the copies' lines; the stores
   are recorder-visible and fenced, so crash enumeration covers a crash
   between the two copy updates. *)
let write_superblock device geometry ~clean =
  let b = superblock_image geometry ~clean in
  Device.poke_flushed device ~addr:0 ~src:b ~off:0 ~len:geometry.block_size;
  Device.poke_flushed device
    ~addr:(geometry.sb_replica * geometry.block_size)
    ~src:b ~off:0 ~len:geometry.block_size;
  Device.fence_untimed device

(* Why one superblock copy cannot be trusted: [`Poisoned] and [`Bad_crc]
   mean damage to a formatted device, [`No_magic] means there is (probably)
   no file system here at all — mount reports the two differently (EIO vs
   EINVAL). *)
let superblock_status device ~addr =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  if Device.verify_range device ~addr ~len:block_size <> [] then `Poisoned
  else begin
    let b = Device.peek_persistent device ~addr ~len:block_size in
    let m = Int32.to_int (Bytes.get_int32_le b Sb.magic_off) in
    let stored =
      Int32.to_int (Bytes.get_int32_le b Sb.crc_off) land 0xFFFFFFFF
    in
    if m <> magic then `No_magic
    else if stored <> Crc32c.digest b ~off:0 ~len:Sb.crc_len then begin
      Hinfs_stats.Stats.add_crc_mismatch (Device.stats device);
      `Bad_crc
    end
    else `Ok b
  end

(* One superblock copy is trustworthy if its lines carry no poison, the
   magic matches, and the CRC over the fixed fields checks out. *)
let superblock_ok device ~addr =
  match superblock_status device ~addr with `Ok b -> Some b | _ -> None

let geometry_of_superblock ~block_size b =
  let geti64 off = Int64.to_int (Bytes.get_int64_le b off) in
  let itable_blocks = geti64 Sb.itable_blocks_off in
  let total_blocks = geti64 Sb.total_blocks_off in
  {
    block_size;
    total_blocks;
    journal_start = geti64 Sb.journal_start_off;
    journal_blocks = geti64 Sb.journal_blocks_off;
    itable_start = geti64 Sb.itable_start_off;
    itable_blocks;
    data_start = geti64 Sb.data_start_off;
    data_end = total_blocks - 1;
    sb_replica = total_blocks - 1;
    inode_count = itable_blocks * block_size / inode_size;
    shards = max 1 (Bytes.get_uint16_le b Sb.shards_off);
  }

(* Read the superblock, falling back to the replica — and repairing the
   bad copy from the good one — when the primary is poisoned or fails its
   checksum. Repairs use the recorder-visible reliable store, so crash
   enumeration covers a crash in the middle of replica repair. When both
   copies are unusable the result distinguishes a damaged formatted device
   ([`Corrupt] — mount must fail with EIO, never fabricate a mount) from a
   device that was never formatted ([`Absent]). *)
let read_superblock device =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  let replica_addr = (Config.blocks config - 1) * block_size in
  let parse b =
    ( geometry_of_superblock ~block_size b,
      Bytes.get_uint8 b Sb.clean_unmount_off = 1 )
  in
  match superblock_status device ~addr:0 with
  | `Ok b ->
    (if superblock_ok device ~addr:replica_addr = None then begin
       (* Replica lost: rewrite it from the primary. *)
       Device.poke_flushed device ~addr:replica_addr ~src:b ~off:0
         ~len:block_size;
       Device.fence_untimed device;
       Hinfs_stats.Stats.add_scrub_repair (Device.stats device)
     end);
    `Ok (parse b)
  | primary -> (
    match superblock_status device ~addr:replica_addr with
    | `Ok b ->
      (* Primary lost: repair it from the replica (heals poison). *)
      Device.poke_flushed device ~addr:0 ~src:b ~off:0 ~len:block_size;
      Device.fence_untimed device;
      Hinfs_stats.Stats.add_scrub_repair (Device.stats device);
      `Ok (parse b)
    | replica -> (
      match (primary, replica) with
      | `No_magic, `No_magic -> `Absent
      | _ -> `Corrupt))

let set_clean_unmount device ~cat ~clean =
  Device.set_u8 device ~cat Sb.clean_unmount_off (if clean then 1 else 0);
  Device.clflush device ~cat ~addr:Sb.clean_unmount_off ~len:1;
  Device.mfence device ~cat

(* --- inodes --- *)

module Inode = struct
  (* Field offsets within the 128-byte on-NVMM inode. *)
  let in_use_off = 0
  let kind_off = 1
  let links_off = 2
  let height_off = 4
  let size_off = 8
  let tree_root_off = 16
  let mtime_off = 24
  let blocks_off = 32

  let kind_free = 0
  let kind_regular = 1
  let kind_directory = 2

  let addr geometry ino =
    if ino < 1 || ino > geometry.inode_count then
      Fmt.invalid_arg "Inode.addr: bad ino %d" ino;
    (geometry.itable_start * geometry.block_size) + ((ino - 1) * inode_size)

  let in_use device geometry ino =
    Device.get_u8 device (addr geometry ino + in_use_off) = 1

  let kind device geometry ino =
    Device.get_u8 device (addr geometry ino + kind_off)

  let links device geometry ino =
    Device.get_u16 device (addr geometry ino + links_off)

  let height device geometry ino =
    Device.get_u32 device (addr geometry ino + height_off)

  let size device geometry ino =
    Int64.to_int (Device.get_u64 device (addr geometry ino + size_off))

  let tree_root device geometry ino =
    Int64.to_int (Device.get_u64 device (addr geometry ino + tree_root_off))

  let mtime device geometry ino =
    Device.get_u64 device (addr geometry ino + mtime_off)

  let blocks device geometry ino =
    Int64.to_int (Device.get_u64 device (addr geometry ino + blocks_off))

  (* Setters: plain cached stores; callers wrap them in journal
     transactions and the journal's commit flushes them. *)
  let set_in_use device ~cat geometry ino v =
    Device.set_u8 device ~cat (addr geometry ino + in_use_off) (if v then 1 else 0)

  let set_kind device ~cat geometry ino v =
    Device.set_u8 device ~cat (addr geometry ino + kind_off) v

  let set_links device ~cat geometry ino v =
    Device.set_u16 device ~cat (addr geometry ino + links_off) v

  let set_height device ~cat geometry ino v =
    Device.set_u32 device ~cat (addr geometry ino + height_off) v

  let set_size device ~cat geometry ino v =
    Device.set_u64 device ~cat (addr geometry ino + size_off) (Int64.of_int v)

  let set_tree_root device ~cat geometry ino v =
    Device.set_u64 device ~cat (addr geometry ino + tree_root_off) (Int64.of_int v)

  let set_mtime device ~cat geometry ino v =
    Device.set_u64 device ~cat (addr geometry ino + mtime_off) v

  let set_blocks device ~cat geometry ino v =
    Device.set_u64 device ~cat (addr geometry ino + blocks_off) (Int64.of_int v)
end
