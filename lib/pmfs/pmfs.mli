(** PMFS: the direct-access NVMM file system baseline (Dulloor et al.,
    EuroSys'14), re-implemented on the device model.

    Data moves straight between the user buffer and NVMM with non-temporal
    stores; metadata is journaled at cacheline granularity. PMFS is also
    the persistent substrate HiNFS builds on: the {!Data} submodule exposes
    the lower-level operations the buffer layer needs. *)

type t

(** {1 mkfs / mount} *)

val mkfs :
  Hinfs_nvmm.Device.t ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?shards:int ->
  unit ->
  unit
(** [shards] (default 1) partitions the hot state: the journal region is
    split into per-shard sub-regions and the inode table and data region
    into per-shard allocator ranges (Layout v3). *)

val mount :
  Hinfs_nvmm.Device.t ->
  ?sync_mount:bool ->
  ?journal_cleaner:bool ->
  ?retry:Hinfs_nvmm.Fault.retry_policy ->
  unit ->
  t
(** Mounts the device (running undo-log recovery if the previous session
    did not unmount cleanly) and rebuilds the DRAM allocators from the live
    inode trees. [journal_cleaner] spawns the background log cleaner (call
    from inside a simulation process if set). *)

val mkfs_and_mount :
  Hinfs_nvmm.Device.t ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?shards:int ->
  ?sync_mount:bool ->
  ?journal_cleaner:bool ->
  ?retry:Hinfs_nvmm.Fault.retry_policy ->
  unit ->
  t

val unmount : t -> unit
val recovered_txns : t -> int

val recovered_by_shard : t -> int array
(** Transactions rolled back per shard journal during mount recovery
    (all zeros after a clean mount). *)

val attach_faultops : t -> Hinfs_nvmm.Faultops.t option -> unit
(** Wire an operation-level fault injector into every software resource
    path of this mount — data-block allocation, inode allocation, journal
    slot allocation. [None] detaches. Injected failures take the same
    ENOSPC / [Journal_full] paths genuine exhaustion would. *)

(** {1 Graceful degradation (per fault domain)}

    Each shard is a fault domain with its own
    [Healthy -> Degraded -> Quarantined -> Repairing] state machine
    ({!Health}): an unrecoverable metadata fault (poisoned live inode
    slot, untrusted journal records dropped during recovery) degrades
    only the owning shard; siblings keep serving read-write. On an
    unsharded mount every fault lands on the [Mount] domain, reproducing
    the PR 2 whole-mount behaviour. Transient media faults on the data
    path are retried under a configurable backoff policy charged on the
    virtual clock; persistent ones surface as [EIO]. *)

val health : t -> Health.t

val retry_policy : t -> Hinfs_nvmm.Fault.retry_policy
val set_retry_policy : t -> Hinfs_nvmm.Fault.retry_policy -> unit

val read_only : t -> bool
(** Whole-mount view: [true] when the [Mount] domain is unhealthy (no
    write anywhere can succeed). Individual shards may be degraded while
    this is [false]. *)

val read_only_reason : t -> string option

val fully_healthy : t -> bool
(** Every fault domain healthy; only then does unmount certify the image
    clean. *)

val degrade : t -> string -> unit
(** Degrade the [Mount] domain with a reason (first reason wins). Used
    for faults no shard owns: superblock, epoch record. *)

val degrade_shard : t -> int -> string -> unit
(** Degrade shard [s]'s domain ([Mount] when the mount is unsharded). *)

val shard_of_addr : t -> int -> int option
(** Which shard owns a byte address (journal sub-region, inode-table
    slot, or data block), for fault attribution; [None] for mount-scoped
    addresses (superblock, epoch record). *)

val check_writable : t -> unit
(** Raise [EROFS] when the [Mount] domain is degraded. *)

val check_writable_ino : t -> ino:int -> unit
(** Raise [EROFS] when the mount or [ino]'s home shard cannot take
    writes; mutations call this first. *)

val check_readable_ino : t -> ino:int -> unit
(** Raise [EIO] when [ino]'s home shard is quarantined or under repair
    (degraded shards still serve reads). *)

(** {1 Accessors} *)

val ctx : t -> Fs_ctx.t
val geometry : t -> Layout.geometry
val device : t -> Hinfs_nvmm.Device.t

val log : t -> Hinfs_journal.Cacheline_log.t
(** Shard 0's journal — the only one when [shards = 1]. Per-inode
    operations must use {!log_for}. *)

val log_for : t -> ino:int -> Hinfs_journal.Cacheline_log.t
(** The journal of [ino]'s home shard. *)

val shard_count : t -> int
val shard_of_ino : t -> int -> int
val epoch : t -> Hinfs_journal.Epoch.t
val free_data_blocks : t -> int
val free_inodes : t -> int

val set_sabotage_skip_epoch : bool -> unit
(** Crash-fixture sabotage (global): cross-shard renames commit each
    shard's transaction independently instead of through the epoch record,
    recreating the torn-rename window the epoch protocol closes. crashmc
    vacuity fixtures only. *)

(** {1 Inode operations} *)

val check_ino : t -> int -> unit
val inode_kind : t -> int -> int
val inode_size : t -> int -> int
val stat_of : t -> int -> Hinfs_vfs.Types.stat

val read :
  t -> ino:int -> off:int -> len:int -> into:Bytes.t -> into_off:int -> int

val write_direct :
  ?background:bool ->
  ?cat:Hinfs_stats.Stats.category ->
  t ->
  ino:int ->
  off:int ->
  src:Bytes.t ->
  src_off:int ->
  len:int ->
  int
(** The PMFS data path: non-temporal stores, allocation and size update in
    a journaled transaction. Also used by HiNFS's eager-persistent writes
    and (with [background]) by its writeback. *)

val write :
  t -> ino:int -> off:int -> src:Bytes.t -> src_off:int -> len:int ->
  sync:bool -> int

val truncate : t -> ino:int -> size:int -> unit
val fsync : t -> ino:int -> unit

(** {1 Namespace} *)

val lookup : t -> dir:int -> string -> int option
val create_file : t -> dir:int -> string -> int
val mkdir : t -> dir:int -> string -> int
val unlink : t -> dir:int -> string -> unit
val rmdir : t -> dir:int -> string -> unit

val rename :
  t -> src_dir:int -> src:string -> dst_dir:int -> dst:string -> unit

val readdir : t -> dir:int -> (string * int) list
val sync_all : t -> unit

(** {1 Lower-level data operations (the HiNFS substrate)} *)

module Data : sig
  val block_addr : t -> int -> int
  val lookup_block : t -> ino:int -> fblock:int -> int option

  val ensure_block :
    t -> Hinfs_journal.Cacheline_log.txn -> ino:int -> fblock:int ->
    allocated:int list ref -> int * bool
  (** Find-or-allocate the NVMM home block inside [txn]. Returns
      [(block, fresh)]; every block the call allocated (index nodes +
      data) is pushed onto [allocated] before anything that can raise, so
      the caller can reclaim them when the transaction aborts — even when
      [ensure_block] itself raises mid-op. *)

  val update_size :
    t -> Hinfs_journal.Cacheline_log.txn -> ino:int -> size:int -> unit

  val touch_mtime_atomic : t -> ino:int -> unit
  (** 8-byte atomic in-place mtime update (no transaction), PMFS-style. *)

  val touch_mtime_txn :
    t -> Hinfs_journal.Cacheline_log.txn -> ino:int -> unit

  val zero_fresh_block :
    ?background:bool ->
    t ->
    cat:Hinfs_stats.Stats.category ->
    block:int ->
    covered_start:int ->
    covered_end:int ->
    unit
end

(** {1 VFS} *)

module Backend : Hinfs_vfs.Backend.S with type t = t

val handle : t -> Hinfs_vfs.Vfs.handle
