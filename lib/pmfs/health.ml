(* Per-fault-domain health state machine.

   PR 2's graceful degradation was all-or-nothing: the first unrecoverable
   media fault flipped the whole mount read-only. With the hot state split
   into per-shard journals, allocators, and buffer pools (DESIGN §9), the
   natural blast radius of a fault is one shard, so health is now tracked
   per fault domain:

   - [Shard s]: shard [s]'s journal sub-region, allocator ranges, inode
     range, and (for HiNFS) its buffer pool and writeback daemon.
   - [Mount]: state shared by every shard — superblock, epoch record,
     directory structure spanning shards — and the only domain for
     unsharded backends.

   The per-domain state machine is

     Healthy -> Degraded reason -> Quarantined reason -> Repairing reason
        ^                                                     |
        +------------------- readmit ------------------------+

   [Degraded] is the detection state: something in the domain is suspect
   (dropped recovery records, an uncorrectable read, poison found by a
   patrol scrub). Writes to the domain fail with EROFS; reads still go
   through, because DRAM-buffered data may be the only good copy left.
   [Quarantined] is isolation: the repair daemon claimed the domain, every
   op fails fast (reads EIO, writes EROFS) so repair I/O cannot race
   foreground traffic. [Repairing] is quarantine plus "repair in flight";
   ops fail exactly as in quarantine, the state exists so operators (and
   crash images) can tell a stuck quarantine from active repair. A repair
   that fails returns the domain to [Degraded] and bumps [attempts]; the
   daemon gives up after a bounded number of tries and leaves the domain
   degraded-forever rather than looping.

   The [Mount] domain never advances past [Degraded]: there is no sibling
   to keep serving while the superblock is quarantined, so mount-level
   repair (superblock replica rewrite, [Epoch.heal]) happens in place
   without fencing off the whole FS.

   Transitions fire an optional listener so upper layers can react — HiNFS
   drops a quarantined shard's DRAM buffers (they will be invalidated by
   the journal re-replay) and the observability layer emits instants. *)

type state =
  | Healthy
  | Degraded of string  (** suspect: reads ok, writes EROFS *)
  | Quarantined of string  (** isolated: reads EIO, writes EROFS *)
  | Repairing of string  (** isolated, repair in flight *)

type domain = Mount | Shard of int

let state_name = function
  | Healthy -> "healthy"
  | Degraded _ -> "degraded"
  | Quarantined _ -> "quarantined"
  | Repairing _ -> "repairing"

let state_reason = function
  | Healthy -> None
  | Degraded r | Quarantined r | Repairing r -> Some r

(* Stable integer encoding for gauges and trace output. *)
let state_code = function
  | Healthy -> 0
  | Degraded _ -> 1
  | Quarantined _ -> 2
  | Repairing _ -> 3

let domain_name = function
  | Mount -> "mount"
  | Shard s -> Printf.sprintf "shard%d" s

type t = {
  mount : state ref;
  shards : state array;  (** length = shard count (>= 1) *)
  attempts : int array;  (** failed repair attempts per shard *)
  mutable mount_attempts : int;  (** failed in-place mount repairs *)
  mutable listener : (domain -> state -> state -> unit) option;
  mutable quarantines : int;  (** domains ever quarantined *)
  mutable readmits : int;  (** successful repairs back to Healthy *)
}

let create ~shards =
  if shards < 1 then invalid_arg "Health.create: shards must be >= 1";
  {
    mount = ref Healthy;
    shards = Array.make shards Healthy;
    attempts = Array.make shards 0;
    mount_attempts = 0;
    listener = None;
    quarantines = 0;
    readmits = 0;
  }

let shard_count t = Array.length t.shards
let set_listener t f = t.listener <- Some f

let get t = function
  | Mount -> !(t.mount)
  | Shard s -> t.shards.(s)

let set t domain next =
  let prev = get t domain in
  if prev <> next then begin
    (match domain with
    | Mount -> t.mount := next
    | Shard s -> t.shards.(s) <- next);
    (match next with
    | Quarantined _ -> t.quarantines <- t.quarantines + 1
    | Healthy when prev <> Healthy -> t.readmits <- t.readmits + 1
    | _ -> ());
    match t.listener with None -> () | Some f -> f domain prev next
  end

let repair_attempts t s = t.attempts.(s)
let note_repair_failure t s = t.attempts.(s) <- t.attempts.(s) + 1
let reset_repair_attempts t s = t.attempts.(s) <- 0
let quarantines t = t.quarantines
let readmits t = t.readmits

(* Degrade keeps the first reason: once a domain is suspect, later faults
   add nothing, and quarantined/repairing domains are already isolated. *)
let degrade t domain reason =
  match get t domain with
  | Healthy -> set t domain (Degraded reason)
  | Degraded _ | Quarantined _ | Repairing _ -> ()

(* The repair daemon claims a degraded shard; Mount never quarantines. *)
let quarantine t s =
  match t.shards.(s) with
  | Degraded reason -> set t (Shard s) (Quarantined reason)
  | Healthy | Quarantined _ | Repairing _ -> ()

let start_repair t s =
  match t.shards.(s) with
  | Quarantined reason -> set t (Shard s) (Repairing reason)
  | Healthy | Degraded _ | Repairing _ -> ()

(* Atomic re-admission: the shard is fully healthy again. *)
let readmit t s =
  reset_repair_attempts t s;
  set t (Shard s) Healthy

(* A failed repair drops the shard back to Degraded so the daemon can
   retry (or give up) without leaving it stuck in Repairing. *)
let fail_repair t s reason =
  note_repair_failure t s;
  set t (Shard s) (Degraded reason)

(* --- in-place mount repair (unsharded: the only domain there is) ---

   The Mount domain never quarantines — there is no sibling to keep
   serving — so its repair runs in place against a Degraded mount: reads
   keep being served throughout, mutations keep failing EROFS, and
   re-admission is a single Degraded -> Healthy transition once the
   repair pass has verified the image clean. *)

let mount_repair_attempts t = t.mount_attempts

let readmit_mount t =
  match !(t.mount) with
  | Degraded _ ->
    t.mount_attempts <- 0;
    set t Mount Healthy
  | Healthy | Quarantined _ | Repairing _ -> ()

let fail_mount_repair t reason =
  t.mount_attempts <- t.mount_attempts + 1;
  match !(t.mount) with
  | Degraded _ -> set t Mount (Degraded reason)
  | Healthy | Quarantined _ | Repairing _ -> ()

(* --- op-routing predicates --- *)

(* Writes need the mount and the home shard both write-capable. *)
let writable_reason t s =
  match !(t.mount) with
  | Degraded r | Quarantined r | Repairing r -> Some (Mount, r)
  | Healthy -> (
    match t.shards.(s) with
    | Healthy -> None
    | Degraded r | Quarantined r | Repairing r -> Some (Shard s, r))

(* Reads survive degradation (DRAM may hold the only good copy) but fail
   fast on an isolated shard. *)
let readable_reason t s =
  match t.shards.(s) with
  | Healthy | Degraded _ -> None
  | Quarantined r | Repairing r -> Some (Shard s, r)

let mount_state t = !(t.mount)
let shard_state t s = t.shards.(s)

let all_healthy t =
  !(t.mount) = Healthy && Array.for_all (fun s -> s = Healthy) t.shards

(* First non-healthy domain, for one-line summaries. *)
let worst t =
  let acc = ref (Mount, !(t.mount)) in
  (match !(t.mount) with
  | Healthy ->
    (try
       Array.iteri
         (fun s st ->
           if st <> Healthy then begin
             acc := (Shard s, st);
             raise Exit
           end)
         t.shards
     with Exit -> ())
  | _ -> ());
  !acc

let pp ppf t =
  let pp_domain d st =
    match st with
    | Healthy -> Fmt.pf ppf "%s: healthy@," (domain_name d)
    | st ->
      Fmt.pf ppf "%s: %s (%s)@," (domain_name d) (state_name st)
        (match state_reason st with Some r -> r | None -> "")
  in
  Fmt.pf ppf "@[<v>";
  pp_domain Mount !(t.mount);
  Array.iteri (fun s st -> pp_domain (Shard s) st) t.shards;
  Fmt.pf ppf "@]"
