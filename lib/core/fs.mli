(** HiNFS: the high performance NVMM file system (paper §3).

    Layered on the PMFS persistent format, HiNFS buffers lazy-persistent
    writes in a DRAM write buffer (LRW-managed, cacheline-granular CLFW),
    routes reads and eager-persistent writes directly to NVMM, and keeps
    read consistency through the per-file DRAM Block Index plus per-block
    Cacheline Bitmaps. Metadata for buffered writes lives in per-file
    pending undo-log transactions committed only after the data is written
    back (ordered mode).

    All operations must run inside a simulation process. *)

type t

type file_state
(** Per-file buffer state (opaque outside this module). *)

(** {1 Mount lifecycle} *)

val create : ?hcfg:Hconfig.t -> ?sync_mount:bool -> Hinfs_pmfs.Pmfs.t -> t
(** Wrap a mounted PMFS with the HiNFS buffer layer. *)

val start_daemons : t -> unit
(** Spawn the background writeback threads (call from inside a process). *)

val mkfs_and_mount :
  Hinfs_nvmm.Device.t ->
  ?journal_blocks:int ->
  ?inodes_per_mb:int ->
  ?hcfg:Hconfig.t ->
  ?sync_mount:bool ->
  ?daemons:bool ->
  unit ->
  t
(** mkfs a fresh PMFS layout and mount HiNFS over it. The undo journal is
    sized with the buffer unless [journal_blocks] is given. [daemons]
    (default true) starts the writeback threads and the journal cleaner. *)

val mount :
  Hinfs_nvmm.Device.t ->
  ?hcfg:Hconfig.t ->
  ?sync_mount:bool ->
  ?daemons:bool ->
  unit ->
  t
(** Mount an existing PMFS image (running log recovery if the previous
    session crashed) and start HiNFS over it with an empty buffer. *)

val unmount : t -> unit
(** Flush all buffered data, commit pending transactions, stop daemons. *)

val handle : t -> Hinfs_vfs.Vfs.handle
(** The syscall-level handle (open/read/write/fsync/...). *)

(** {1 Accessors} *)

val pmfs : t -> Hinfs_pmfs.Pmfs.t
val device : t -> Hinfs_nvmm.Device.t
val stats : t -> Hinfs_stats.Stats.t
val hconfig : t -> Hconfig.t
val shard_count : t -> int
(** Number of hot-state shards (per-shard buffer pool, journal, allocator
    ranges); mirrors {!Hconfig.shards} at mkfs time. *)

val shard_pool : t -> int -> Buffer_pool.t
(** The given shard's DRAM buffer pool. *)

val shard_of : t -> int -> int
(** Home shard of an inode number. *)

val recovered_txns : t -> int
(** Uncommitted transactions the underlying PMFS rolled back during this
    mount's log recovery (0 after a clean mount). *)

(** {1 Inode-level operations}

    These are what {!Backend} wires into the VFS; exposed for tests and
    for building custom frontends. *)

val read :
  t -> ino:int -> off:int -> len:int -> into:Bytes.t -> into_off:int -> int

val write :
  t -> ino:int -> off:int -> src:Bytes.t -> src_off:int -> len:int ->
  sync:bool -> int
(** [sync] marks the write eager-persistent (case 1 of §3.3.2); otherwise
    the Eager-Persistent Write Checker decides per block. *)

val fsync : t -> ino:int -> unit
(** Flush the file's dirty buffered blocks, commit its pending metadata
    transaction, and update the Buffer Benefit Model. *)

val truncate : t -> ino:int -> size:int -> unit
val unlink : t -> dir:int -> string -> unit

val rename :
  t -> src_dir:int -> src:string -> dst_dir:int -> dst:string -> unit

val mmap : t -> ino:int -> unit
(** Flush and evict the file's buffered blocks and pin them
    Eager-Persistent until {!munmap} (§4.2). *)

val munmap : t -> ino:int -> unit
val msync : t -> ino:int -> unit
val sync_all : t -> unit

(** {1 Introspection (tests, benchmarks)} *)

val buffered_blocks : t -> int
val free_buffer_blocks : t -> int
val dirty_buffered_blocks : t -> int

val pending_txns : t -> int
(** Files whose ordered-mode metadata transaction is still open. *)

val is_block_buffered : t -> ino:int -> fblock:int -> bool

val block_state_eager : t -> ino:int -> fblock:int -> bool
(** The checker's current verdict for the block (decay applied). *)

val drop_buffers : t -> int -> unit
(** Discard a dying file's buffered blocks without writeback and abort its
    pending transaction (used by unlink/rename-replace). *)

val flush_file :
  ?background:bool ->
  ?cat:Hinfs_stats.Stats.category ->
  t ->
  file_state ->
  evict:bool ->
  unit
(** Write back (and optionally evict) every buffered block of a file. *)

val file_state : t -> int -> file_state
(** Get-or-create the buffer state for an inode. *)

(** {1 VFS backend} *)

module Backend : Hinfs_vfs.Backend.S with type t = t
