(* HiNFS: the high performance NVMM file system (the paper's contribution).

   Layered on the PMFS persistent format, HiNFS adds:
   - the NVMM-aware Write Buffer (§3.2): lazy-persistent writes land in a
     DRAM buffer pool with an LRW replacement list, hiding NVMM's long
     write latency behind the critical path;
   - CLFW (§3.2.1): fetch and writeback at cacheline granularity, tracked
     by per-block Cacheline Bitmaps;
   - direct reads (§3.3.1): reads copy straight from DRAM and/or NVMM to
     the user buffer, merging at cacheline-run granularity;
   - direct eager-persistent writes (§3.3.2): the Eager-Persistent Write
     Checker (open flags / sync mount = case 1, the Buffer Benefit Model
     with ghost buffer = case 2) routes writes that would not benefit from
     buffering straight to NVMM with non-temporal stores;
   - background writeback daemons (§3.2): woken below the Low_f free
     watermark or every 5 s, reclaim to High_f, and clean blocks older
     than 30 s;
   - ordered-mode journaling (§4.1): a lazy write's metadata lives in a
     per-file pending undo-log transaction that is committed only once all
     the file's buffered dirty blocks have been written back, so committed
     metadata never references unwritten data.

   Knobs in {!Hconfig} provide the paper's ablations: HiNFS-NCLFW
   (clfw = false) and HiNFS-WB (checker = false). *)

module Proc = Hinfs_sim.Proc
module Engine = Hinfs_sim.Engine
module Condvar = Hinfs_sim.Condvar
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Allocator = Hinfs_nvmm.Allocator
module Log = Hinfs_journal.Cacheline_log
module Btree = Hinfs_structures.Btree
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Pmfs = Hinfs_pmfs.Pmfs
module Health = Hinfs_pmfs.Health
module Layout = Hinfs_pmfs.Layout
module Obs = Hinfs_obs.Obs

type file_state = {
  f_ino : int;
  index : int Btree.t; (* DRAM Block Index: fblock -> pool block id *)
  model : Benefit.file_model;
  mutable dirty_blocks : int; (* buffered blocks with dirty cachelines *)
  mutable pending_txn : Log.txn option;
  mutable pending_allocs : int list; (* NVMM blocks allocated under the
                                        pending txn, for abort reclaim *)
  mutable writers : int; (* writes in flight (commit barrier) *)
}

(* One shard's DRAM-side hot state: its slice of the write buffer plus the
   condvars its writeback daemons and stalled writers meet on. A file's
   buffered blocks live entirely in its home shard's pool (the shard is a
   pure function of the inode number), so shards never contend on pool
   metadata or the LRW list. *)
type shard_state = {
  pool : Buffer_pool.t;
  wb_wakeup : Condvar.t; (* this shard's writeback daemons sleep here *)
  free_cv : Condvar.t; (* foreground stalls for free buffer blocks *)
}

type t = {
  pmfs : Pmfs.t;
  hcfg : Hconfig.t;
  shards : shard_state array;
  files : (int, file_state) Hashtbl.t;
  sync_mount : bool;
  mutable daemons : int;
  mutable stopping : bool;
}

let pmfs t = t.pmfs
let device t = Pmfs.device t.pmfs
let stats t = Device.stats (device t)
let config t = Device.config (device t)
let hconfig t = t.hcfg
let shard_count t = Array.length t.shards
let shard_of t ino = Pmfs.shard_of_ino t.pmfs ino
let shard_for t ino = t.shards.(shard_of t ino)
let spool t ino = (shard_for t ino).pool
let shard_pool t s = t.shards.(s).pool
let recovered_txns t = Pmfs.recovered_txns t.pmfs
let now t = Engine.now (Device.engine (device t))

let block_size t = (config t).Config.block_size
let cacheline t = (config t).Config.cacheline_size
let lines_per_block t = block_size t / cacheline t

(* --- creation --- *)

let create ?(hcfg = Hconfig.default) ?(sync_mount = false) pmfs =
  let hcfg = Hconfig.validate hcfg in
  let device = Pmfs.device pmfs in
  let config = Device.config device in
  (* One pool slice per persistent shard; the DRAM budget is divided
     evenly. The shard count is a mount property (superblock geometry) so
     the DRAM and NVMM partitions always agree. *)
  let nshards = Pmfs.shard_count pmfs in
  let capacity =
    max 8 (hcfg.Hconfig.buffer_bytes / config.Config.block_size / nshards)
  in
  {
    pmfs;
    hcfg;
    shards =
      Array.init nshards (fun _ ->
          {
            pool =
              Buffer_pool.create ~capacity ~block_size:config.Config.block_size
                ~lines_per_block:
                  (config.Config.block_size / config.Config.cacheline_size);
            wb_wakeup = Condvar.create (Device.engine device);
            free_cv = Condvar.create (Device.engine device);
          });
    files = Hashtbl.create 256;
    sync_mount;
    daemons = 0;
    stopping = false;
  }

let file_state t ino =
  match Hashtbl.find_opt t.files ino with
  | Some fs -> fs
  | None ->
    let fs =
      {
        f_ino = ino;
        index = Btree.create ~degree:16 ();
        model = Benefit.create_file_model ();
        dirty_blocks = 0;
        pending_txn = None;
        pending_allocs = [];
        writers = 0;
      }
    in
    Hashtbl.replace t.files ino fs;
    fs

let buffered_block t fst fblock =
  match Btree.find fst.index fblock with
  | None -> None
  | Some id ->
    let b = Buffer_pool.block (spool t fst.f_ino) id in
    if b.Buffer_pool.in_use && b.Buffer_pool.ino = fst.f_ino
       && b.Buffer_pool.fblock = fblock
    then Some b
    else None

(* --- timing helpers --- *)

let charge t cat ns =
  if ns > 0 then begin
    Stats.add_time (stats t) cat (Int64.of_int ns);
    Proc.delay_int ns
  end

let charge_dram_write t cat bytes =
  let cl = cacheline t in
  charge t cat (((bytes + cl - 1) / cl) * (config t).Config.dram_write_ns)

let charge_dram_read t cat bytes =
  let cl = cacheline t in
  charge t cat (((bytes + cl - 1) / cl) * (config t).Config.dram_read_ns)

(* --- pending transaction management --- *)

(* The journal a file's pending transaction lives on: its home shard's. *)
let log_of t fst = Pmfs.log_for t.pmfs ~ino:fst.f_ino

let get_pending_txn t fst =
  match fst.pending_txn with
  | Some txn -> txn
  | None ->
    let txn = Log.begin_txn (log_of t fst) in
    fst.pending_txn <- Some txn;
    txn

(* Commit the pending transaction. Callers must ensure all the file's
   buffered dirty data has been persisted (ordered mode).

   Detach the transaction only once the commit lands: if commit fails
   partway (a journal-slot fault at the commit entry, a media error on the
   flush), the still-uncommitted transaction stays pending — its undo
   entries and block allocations remain owned by this file and the next
   barrier retries the commit. Aborting here instead would roll back the
   metadata of earlier lazy writes whose buffered data still references the
   allocated home blocks. *)
let commit_pending t fst =
  match fst.pending_txn with
  | None -> ()
  | Some txn ->
    (try Log.commit (log_of t fst) txn
     with e ->
       if Log.txn_committed txn then begin
         (* Durable, only the checkpoint tripped: safe to detach. *)
         fst.pending_txn <- None;
         fst.pending_allocs <- []
       end;
       raise e);
    fst.pending_txn <- None;
    fst.pending_allocs <- []

(* Commit if the ordered-mode invariant allows it right now. *)
let maybe_commit t fst =
  if fst.dirty_blocks = 0 && fst.writers = 0 then commit_pending t fst

(* Opportunistic commit from the writeback daemons and pool reclaim: a
   transient commit failure (injected journal fault, media error) must not
   kill a daemon or fail an unrelated foreground write. The transaction
   stays pending and the next explicit barrier (fsync, unmount) surfaces
   any persistent error. *)
let try_commit t fst = try maybe_commit t fst with _ -> ()

(* Abort the pending transaction and reclaim the NVMM blocks it had
   allocated (unlink of a never-synced file). *)
let abort_pending t fst =
  match fst.pending_txn with
  | None -> ()
  | Some txn ->
    fst.pending_txn <- None;
    Log.abort (log_of t fst) txn;
    let ctx = Pmfs.ctx t.pmfs in
    List.iter
      (fun block -> Hinfs_pmfs.Fs_ctx.free_block ctx block)
      fst.pending_allocs;
    fst.pending_allocs <- []

(* --- writeback --- *)

let mark_block_dirty t fst b lines =
  let was_clean = Clbitmap.is_empty b.Buffer_pool.dirty in
  b.Buffer_pool.dirty <- Clbitmap.union b.Buffer_pool.dirty lines;
  b.Buffer_pool.present <- Clbitmap.union b.Buffer_pool.present lines;
  if was_clean && not (Clbitmap.is_empty b.Buffer_pool.dirty) then
    fst.dirty_blocks <- fst.dirty_blocks + 1;
  Buffer_pool.touch_written (spool t fst.f_ino)
    ~policy:t.hcfg.Hconfig.replacement b ~now:(now t)

(* Write the dirty cachelines of a buffer block back to its NVMM home.
   Under CLFW only dirty lines stream out, as maximal runs; without CLFW
   the whole block does.

   Any flush completes the home block: lines never written anywhere are
   zero-filled, so from the first writeback onward the NVMM copy is safe
   to expose (a later commit may make the block reachable, and a crash
   must not reveal stale medium bytes). Blocks that die before their first
   flush never pay this — the short-lived-file win of §1.

   If [evict], the block is also freed (unless re-dirtied concurrently). *)
let rec flush_block ?(background = false) ?(cat = Stats.Write_access) t b ~evict
    =
  Obs.span_begin Obs.Writeback;
  match flush_block_body ~background ~cat t b ~evict with
  | () -> Obs.span_end Obs.Writeback
  | exception e ->
    Obs.span_end Obs.Writeback;
    raise e

and flush_block_body ~background ~cat t b ~evict =
  let fst = file_state t b.Buffer_pool.ino in
  let dev = device t in
  let cl = cacheline t in
  let nlines = lines_per_block t in
  let home_addr = Pmfs.Data.block_addr t.pmfs b.Buffer_pool.home in
  b.Buffer_pool.pinned <- b.Buffer_pool.pinned + 1;
  Fun.protect
    ~finally:(fun () -> b.Buffer_pool.pinned <- b.Buffer_pool.pinned - 1)
    (fun () ->
      let snapshot =
        if t.hcfg.Hconfig.clfw then b.Buffer_pool.dirty
        else if Clbitmap.is_empty b.Buffer_pool.dirty then Clbitmap.empty
        else Clbitmap.full_mask nlines
      in
      if not (Clbitmap.is_empty snapshot) then begin
        Clbitmap.iter_set_runs snapshot ~nlines (fun ~first ~count ->
            Device.write_nt ~background dev ~cat
              ~addr:(home_addr + (first * cl))
              ~src:b.Buffer_pool.data ~off:(first * cl) ~len:(count * cl));
        Device.mfence dev ~cat;
        Stats.add_coalesced_cachelines (stats t) (Clbitmap.count snapshot)
      end;
      (* Read-and-clear atomically (no yield between): a concurrent flusher
         of the same block must not double-decrement [dirty_blocks]. *)
      let pre = b.Buffer_pool.dirty in
      b.Buffer_pool.dirty <- Clbitmap.diff pre snapshot;
      b.Buffer_pool.home_valid <-
        Clbitmap.union b.Buffer_pool.home_valid snapshot;
      if (not (Clbitmap.is_empty pre))
         && Clbitmap.is_empty b.Buffer_pool.dirty
      then fst.dirty_blocks <- fst.dirty_blocks - 1;
      if (evict || not (Clbitmap.is_empty snapshot))
         && not (Clbitmap.equal b.Buffer_pool.home_valid
                   (Clbitmap.full_mask nlines))
      then begin
        let missing =
          Clbitmap.diff (Clbitmap.full_mask nlines) b.Buffer_pool.home_valid
        in
        Clbitmap.iter_set_runs missing ~nlines (fun ~first ~count ->
            let zeros = Bytes.make (count * cl) '\000' in
            Device.write_nt ~background dev ~cat ~addr:(home_addr + (first * cl))
              ~src:zeros ~off:0 ~len:(count * cl));
        if not (Clbitmap.is_empty missing) then Device.mfence dev ~cat;
        b.Buffer_pool.home_valid <- Clbitmap.full_mask nlines
      end);
  if evict && Clbitmap.is_empty b.Buffer_pool.dirty && b.Buffer_pool.pinned = 0
  then begin
    let sh = shard_for t b.Buffer_pool.ino in
    ignore (Btree.remove fst.index b.Buffer_pool.fblock);
    Buffer_pool.free sh.pool b;
    Stats.eviction (stats t);
    ignore (Condvar.broadcast sh.free_cv)
  end

(* Flush (and optionally evict) every buffered block of a file. *)
let flush_file ?background ?cat t fst ~evict =
  let pool = spool t fst.f_ino in
  let ids = Btree.fold fst.index [] (fun acc _fblock id -> id :: acc) in
  List.iter
    (fun id ->
      let b = Buffer_pool.block pool id in
      if b.Buffer_pool.in_use && b.Buffer_pool.ino = fst.f_ino then
        flush_block ?background ?cat t b ~evict)
    ids

(* Flush a file's dirty data and commit its pending metadata: the ordered
   barrier used by fsync, eager-write conflicts, truncate and unmount. *)
let sync_file_data t fst =
  flush_file t fst ~evict:false;
  commit_pending t fst

(* --- background writeback daemons (§3.2) --- *)

let reclaim_target t sh =
  int_of_float
    (t.hcfg.Hconfig.high_watermark *. float_of_int (Buffer_pool.capacity sh.pool))

let low_free sh hcfg =
  Buffer_pool.free_fraction sh.pool < hcfg.Hconfig.low_watermark

(* Each shard runs its own daemon(s) over its own pool slice: reclaim and
   age-based cleaning never cross shards, so daemons contend neither on
   pool metadata nor (through try_commit) on another shard's journal. *)
let daemon_body t sh =
  let rec loop () =
    if not t.stopping then begin
      ignore
        (Condvar.wait_timeout sh.wb_wakeup
           ~timeout:t.hcfg.Hconfig.flush_interval_ns);
      if not t.stopping then begin
        (* Reclaim from the LRW end until the high watermark. *)
        let rec reclaim () =
          if
            (not t.stopping)
            && Buffer_pool.free_count sh.pool < reclaim_target t sh
          then begin
            match
              Buffer_pool.pick_victim ~policy:t.hcfg.Hconfig.replacement
                sh.pool
            with
            | None -> ()
            | Some b ->
              flush_block ~background:true t b ~evict:true;
              try_commit t (file_state t b.Buffer_pool.ino);
              reclaim ()
          end
        in
        if
          low_free sh t.hcfg
          || Buffer_pool.free_count sh.pool < reclaim_target t sh
        then reclaim ();
        (* Age-based cleaning: write back (without evicting) blocks whose
           last write is older than the age threshold. *)
        let cutoff = Int64.sub (now t) t.hcfg.Hconfig.age_flush_ns in
        let stale =
          List.filter
            (fun id ->
              let b = Buffer_pool.block sh.pool id in
              b.Buffer_pool.in_use
              && (not (Clbitmap.is_empty b.Buffer_pool.dirty))
              && Int64.compare b.Buffer_pool.last_written cutoff <= 0)
            (Buffer_pool.lrw_ids sh.pool)
        in
        List.iter
          (fun id ->
            let b = Buffer_pool.block sh.pool id in
            if b.Buffer_pool.in_use then begin
              flush_block ~background:true t b ~evict:false;
              try_commit t (file_state t b.Buffer_pool.ino)
            end)
          stale;
        loop ()
      end
    end
  in
  loop ()

let start_daemons t =
  if t.daemons > 0 then invalid_arg "Hinfs: daemons already running";
  let nshards = shard_count t in
  (* Spread the configured writeback threads across shards, at least one
     per shard (a shard without a daemon would stall its writers forever
     once its pool slice fills). *)
  let per_shard = max 1 (t.hcfg.Hconfig.writeback_threads / nshards) in
  t.daemons <- per_shard * nshards;
  Array.iteri
    (fun s sh ->
      for i = 1 to per_shard do
        Proc.spawn ~name:(Printf.sprintf "hinfs-writeback-%d.%d" s i)
          (fun () -> daemon_body t sh)
      done)
    t.shards

(* Allocate a DRAM buffer block, stalling on the writeback daemons when the
   pool is exhausted (the foreground stall of §3.2.1). *)
let alloc_buffer_block t ~ino ~fblock ~home =
  let sh = shard_for t ino in
  let rec attempt () =
    match Buffer_pool.alloc sh.pool ~ino ~fblock ~home ~now:(now t) with
    | Some b ->
      if low_free sh t.hcfg then ignore (Condvar.signal sh.wb_wakeup);
      b
    | None ->
      Stats.writeback_stall (stats t);
      ignore (Condvar.signal sh.wb_wakeup);
      if t.daemons = 0 then begin
        (* No daemons (unit-test configuration): reclaim inline. *)
        (match
           Buffer_pool.pick_victim ~policy:t.hcfg.Hconfig.replacement sh.pool
         with
        | Some victim ->
          flush_block t victim ~evict:true;
          try_commit t (file_state t victim.Buffer_pool.ino)
        | None -> ());
        attempt ()
      end
      else begin
        ignore (Condvar.wait_timeout sh.free_cv ~timeout:1_000_000L);
        attempt ()
      end
  in
  attempt ()

(* --- write path --- *)

(* Fetch the NVMM-resident parts of [lines] that a partial write needs
   (CLFW: only boundary lines; NCLFW: the whole block). Lines not valid at
   home read as zeros. *)
let fetch_lines t b lines =
  let dev = device t in
  let cl = cacheline t in
  let nlines = lines_per_block t in
  let home_addr = Pmfs.Data.block_addr t.pmfs b.Buffer_pool.home in
  let needed = Clbitmap.diff lines b.Buffer_pool.present in
  let obs_t0 = if Obs.enabled () then Proc.now () else 0L in
  let from_home = Clbitmap.inter needed b.Buffer_pool.home_valid in
  Clbitmap.iter_set_runs from_home ~nlines (fun ~first ~count ->
      Device.read dev ~cat:Stats.Write_access
        ~addr:(home_addr + (first * cl))
        ~len:(count * cl) ~into:b.Buffer_pool.data ~off:(first * cl));
  let as_zero = Clbitmap.diff needed b.Buffer_pool.home_valid in
  Clbitmap.iter_set_runs as_zero ~nlines (fun ~first ~count ->
      Bytes.fill b.Buffer_pool.data (first * cl) (count * cl) '\000');
  if not (Clbitmap.is_empty needed) then
    Obs.span_since Obs.Buffer_fetch ~t0:obs_t0;
  b.Buffer_pool.present <- Clbitmap.union b.Buffer_pool.present lines

(* One block-aligned segment of a lazy-persistent write. *)
let lazy_write_segment t fst ~fblock ~in_block ~src ~src_off ~len =
  let cl = cacheline t in
  let nlines = lines_per_block t in
  let st = stats t in
  let b =
    match buffered_block t fst fblock with
    | Some b ->
      Stats.buffer_write_hit st;
      b
    | None ->
      Stats.buffer_write_miss st;
      (* Bind a DRAM block; allocate the NVMM home up front so the
         writeback threads know where to flush (§3.2, Fig. 5). *)
      let home, fresh =
        match Pmfs.Data.lookup_block t.pmfs ~ino:fst.f_ino ~fblock with
        | Some home -> (home, false)
        | None ->
          let txn = get_pending_txn t fst in
          (* Record the allocation even if ensure_block raises mid-op: the
             pending transaction's abort path reclaims pending_allocs, and
             blocks it never hears about would leak. *)
          let allocated = ref [] in
          Fun.protect
            ~finally:(fun () ->
              fst.pending_allocs <- !allocated @ fst.pending_allocs)
            (fun () ->
              Pmfs.Data.ensure_block t.pmfs txn ~ino:fst.f_ino ~fblock
                ~allocated)
      in
      let b = alloc_buffer_block t ~ino:fst.f_ino ~fblock ~home in
      b.Buffer_pool.home_valid <-
        (if fresh then Clbitmap.empty else Clbitmap.full_mask nlines);
      Btree.insert fst.index fblock b.Buffer_pool.id;
      b
  in
  b.Buffer_pool.pinned <- b.Buffer_pool.pinned + 1;
  Fun.protect
    ~finally:(fun () -> b.Buffer_pool.pinned <- b.Buffer_pool.pinned - 1)
    (fun () ->
      let lines = Clbitmap.of_byte_range ~cacheline_size:cl ~off:in_block ~len in
      (* Fetch-before-write, at the granularity the config dictates. *)
      let to_fetch =
        if t.hcfg.Hconfig.clfw then
          Clbitmap.boundary_partials ~cacheline_size:cl ~off:in_block ~len
        else if Clbitmap.equal lines (Clbitmap.full_mask nlines) then
          Clbitmap.empty
        else Clbitmap.full_mask nlines
      in
      fetch_lines t b to_fetch;
      charge_dram_write t Stats.Write_access len;
      Bytes.blit src src_off b.Buffer_pool.data in_block len;
      let dirty_lines =
        if t.hcfg.Hconfig.clfw then lines else Clbitmap.full_mask nlines
      in
      mark_block_dirty t fst b dirty_lines)

(* One block-aligned segment of an eager-persistent write. If the block is
   buffered, the paper's consistency rule applies: write into DRAM, then
   explicitly flush it before returning (§3.3.2). We keep the clean block
   cached rather than freeing it: reads keep preferring the DRAM copy, so
   consistency holds either way, and freeing would force the home block's
   never-written cachelines to be zero-filled right on the eager write's
   critical path. The writeback daemons still evict it under pressure. *)
let eager_write_segment t fst ~fblock ~in_block ~src ~src_off ~len =
  Stats.eager_write (stats t);
  match buffered_block t fst fblock with
  | Some b ->
    b.Buffer_pool.pinned <- b.Buffer_pool.pinned + 1;
    Fun.protect
      ~finally:(fun () -> b.Buffer_pool.pinned <- b.Buffer_pool.pinned - 1)
      (fun () ->
        let cl = cacheline t in
        let lines =
          Clbitmap.of_byte_range ~cacheline_size:cl ~off:in_block ~len
        in
        fetch_lines t b
          (Clbitmap.boundary_partials ~cacheline_size:cl ~off:in_block ~len);
        charge_dram_write t Stats.Write_access len;
        Bytes.blit src src_off b.Buffer_pool.data in_block len;
        mark_block_dirty t fst b lines);
    flush_block t b ~evict:false
  | None ->
    (* Straight to NVMM: exactly the PMFS data path, minus the size update
       which the caller handles once for the whole write. *)
    let bs = block_size t in
    ignore
      (Pmfs.write_direct t.pmfs ~ino:fst.f_ino
         ~off:((fblock * bs) + in_block)
         ~src ~src_off ~len)

(* Journal backpressure: pending (ordered) transactions hold undo-log
   slots until their file's buffered data is written back. When the log
   runs low, kick the writeback daemons; when critically low, drain this
   file synchronously so its transaction's slots free up. *)
let journal_backpressure t fst =
  let log = log_of t fst in
  let free = Log.free_slots log in
  let capacity = Log.capacity log in
  if free * 10 < capacity then begin
    ignore (Condvar.signal (shard_for t fst.f_ino).wb_wakeup);
    if free * 5 < capacity && fst.pending_txn <> None then
      sync_file_data t fst
  end

let write t ~ino ~off ~src ~src_off ~len ~sync =
  Pmfs.check_writable_ino t.pmfs ~ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad write range";
  let fst = file_state t ino in
  journal_backpressure t fst;
  let bs = block_size t in
  let cl = cacheline t in
  let old_size = Pmfs.inode_size t.pmfs ino in
  fst.writers <- fst.writers + 1;
  Fun.protect
    ~finally:(fun () -> fst.writers <- fst.writers - 1)
    (fun () ->
      (* Segment the write and consult the checker per block. *)
      let segments = ref [] in
      let rec split done_ =
        if done_ < len then begin
          let pos = off + done_ in
          let fblock = pos / bs in
          let in_block = pos mod bs in
          let chunk = min (bs - in_block) (len - done_) in
          let eager =
            sync || t.sync_mount
            || (t.hcfg.Hconfig.checker
               && Benefit.is_eager fst.model fblock ~now:(now t)
                    ~eager_decay_ns:t.hcfg.Hconfig.eager_decay_ns)
          in
          Obs.instant
            (if eager then Obs.Ev_bbm_eager else Obs.Ev_bbm_lazy)
            ~a:ino ~b:fblock;
          segments := (fblock, in_block, done_, chunk, eager) :: !segments;
          split (done_ + chunk)
        end
      in
      split 0;
      let segments = List.rev !segments in
      let any_eager = List.exists (fun (_, _, _, _, e) -> e) segments in
      (* Ghost-buffer accounting for the Benefit Model (all writes). *)
      List.iter
        (fun (fblock, in_block, _, chunk, _) ->
          Benefit.record_write fst.model fblock
            ~lines:
              (Clbitmap.of_byte_range ~cacheline_size:cl ~off:in_block
                 ~len:chunk))
        segments;
      if any_eager then begin
        (* Mixed or eager write. Resolve the metadata-transaction conflict
           by draining the pending lazy state first (rare: lazy and eager
           writes interleaving on one file between syncs). *)
        if fst.pending_txn <> None then sync_file_data t fst;
        List.iter
          (fun (fblock, in_block, done_, chunk, _eager) ->
            (* After the barrier all segments go eager: per-block mixing
               within one syscall would re-create the conflict. *)
            eager_write_segment t fst ~fblock ~in_block ~src
              ~src_off:(src_off + done_) ~len:chunk)
          segments;
        (* Persist the size extension eagerly (eager segments via
           write_direct may already have grown it). *)
        let cur = Pmfs.inode_size t.pmfs ino in
        if off + len > cur then
          Log.with_txn (log_of t fst) (fun txn ->
              Pmfs.Data.update_size t.pmfs txn ~ino ~size:(off + len);
              Pmfs.Data.touch_mtime_txn t.pmfs txn ~ino)
      end
      else begin
        List.iter
          (fun (fblock, in_block, done_, chunk, _) ->
            Stats.lazy_write (stats t);
            lazy_write_segment t fst ~fblock ~in_block ~src
              ~src_off:(src_off + done_) ~len:chunk)
          segments;
        (* Metadata: size through the pending (ordered) transaction; a
           non-extending write only touches mtime, atomically. *)
        if off + len > old_size then begin
          let txn = get_pending_txn t fst in
          Pmfs.Data.update_size t.pmfs txn ~ino ~size:(off + len);
          Pmfs.Data.touch_mtime_txn t.pmfs txn ~ino
        end
        else Pmfs.Data.touch_mtime_atomic t.pmfs ~ino
      end;
      len)

(* --- read path (§3.3.1) --- *)

(* Copy one block segment from the buffer block + NVMM home, merging by
   cacheline runs with as few memcpy operations as possible. *)
let read_buffered_segment t b ~in_block ~len ~into ~into_off =
  let dev = device t in
  let cl = cacheline t in
  let nlines = lines_per_block t in
  let home_addr = Pmfs.Data.block_addr t.pmfs b.Buffer_pool.home in
  let seg_start = in_block and seg_end = in_block + len in
  let copy_run ~first ~count ~from_dram =
    (* Clip the run's byte range to the segment. *)
    let run_start = max seg_start (first * cl) in
    let run_end = min seg_end ((first + count) * cl) in
    if run_end > run_start then begin
      let n = run_end - run_start in
      let dst_off = into_off + (run_start - seg_start) in
      if from_dram then begin
        charge_dram_read t Stats.Read_access n;
        Bytes.blit b.Buffer_pool.data run_start into dst_off n
      end
      else if
        Clbitmap.is_empty
          (Clbitmap.inter
             (Clbitmap.of_byte_range ~cacheline_size:cl ~off:run_start ~len:n)
             b.Buffer_pool.home_valid)
      then begin
        (* Never written anywhere: zero fill. *)
        charge_dram_read t Stats.Read_access n;
        Bytes.fill into dst_off n '\000'
      end
      else
        Device.read dev ~cat:Stats.Read_access ~addr:(home_addr + run_start)
          ~len:n ~into ~off:dst_off
    end
  in
  Clbitmap.iter_runs b.Buffer_pool.present ~nlines (fun ~first ~count ~set ->
      copy_run ~first ~count ~from_dram:set)

let read t ~ino ~off ~len ~into ~into_off =
  (* Fail fast on an isolated shard even for DRAM hits: the quarantine
     listener dropped its buffers, and repair may be rewriting the NVMM
     side underneath. *)
  Pmfs.check_readable_ino t.pmfs ~ino;
  if off < 0 || len < 0 then Errno.raise_error EINVAL "bad read range";
  let fst = file_state t ino in
  let bs = block_size t in
  let size = Pmfs.inode_size t.pmfs ino in
  let len = if off >= size then 0 else min len (size - off) in
  let st = stats t in
  let rec copy done_ =
    if done_ < len then begin
      let pos = off + done_ in
      let fblock = pos / bs in
      let in_block = pos mod bs in
      let chunk = min (bs - in_block) (len - done_) in
      (match buffered_block t fst fblock with
      | Some b ->
        Stats.buffer_read_hit st;
        b.Buffer_pool.pinned <- b.Buffer_pool.pinned + 1;
        Fun.protect
          ~finally:(fun () ->
            b.Buffer_pool.pinned <- b.Buffer_pool.pinned - 1)
          (fun () ->
            read_buffered_segment t b ~in_block ~len:chunk ~into
              ~into_off:(into_off + done_))
      | None ->
        Stats.buffer_read_miss st;
        ignore
          (Pmfs.read t.pmfs ~ino ~off:pos ~len:chunk ~into
             ~into_off:(into_off + done_)));
      copy (done_ + chunk)
    end
  in
  copy 0;
  len

(* --- fsync (§3.3.2) --- *)

let fsync t ~ino =
  (* No durability acknowledgements on an isolated shard. *)
  Pmfs.check_readable_ino t.pmfs ~ino;
  let fst = file_state t ino in
  (* Persist buffered data, then the pending metadata (ordered mode). *)
  flush_file t fst ~evict:false;
  commit_pending t fst;
  (* Update the Buffer Benefit Model with this synchronization. *)
  let cfg = config t in
  ignore
    (Benefit.on_sync fst.model ~now:(now t) ~l_dram:cfg.Config.dram_write_ns
       ~l_nvmm:cfg.Config.nvmm_write_ns ~stats:(stats t));
  Device.mfence (device t) ~cat:Stats.Other

(* --- namespace operations ---

   Directory and inode metadata are never buffered (§4.1: "HiNFS does not
   buffer any file system metadata"), so these mostly delegate to PMFS,
   with buffer bookkeeping around deletion and truncation. *)

(* A writeback daemon may hold a pin on a block across its flush; freeing
   must wait it out (flushes are bounded, and the waiter holds no lock the
   daemons need). *)
let wait_unpinned b =
  while b.Buffer_pool.pinned > 0 do
    Proc.delay 1_000L
  done

(* Discard a file's buffered blocks without writing them back (the file is
   dying — the §1 motivation: writes to later-deleted files need never
   reach NVMM). *)
let drop_buffers t ino =
  match Hashtbl.find_opt t.files ino with
  | None -> ()
  | Some fst ->
    let st = stats t in
    let sh = shard_for t ino in
    let ids = Btree.fold fst.index [] (fun acc _ id -> id :: acc) in
    let dropped = ref 0 in
    List.iter
      (fun id ->
        let b = Buffer_pool.block sh.pool id in
        if b.Buffer_pool.in_use && b.Buffer_pool.ino = ino then begin
          wait_unpinned b;
          if b.Buffer_pool.in_use && b.Buffer_pool.ino = ino then begin
            if not (Clbitmap.is_empty b.Buffer_pool.dirty) then incr dropped;
            b.Buffer_pool.dirty <- Clbitmap.empty;
            Buffer_pool.free sh.pool b
          end
        end)
      ids;
    Stats.dead_block_drop st !dropped;
    if !dropped > 0 then begin
      Obs.instant Obs.Ev_dead_drop ~a:ino ~b:!dropped;
      ignore (Condvar.broadcast sh.free_cv)
    end;
    abort_pending t fst;
    Hashtbl.remove t.files ino

(* When the repair daemon isolates a shard, its DRAM state must go: the
   journal re-replay invalidates whatever the pending transactions and
   buffered blocks assumed, and repair I/O must not race writeback.
   Pending transactions are aborted (their ops were never acknowledged
   durable — fsync on this shard now fails fast) and buffers dropped.
   Installed as the health listener at mount. *)
let on_health_transition t domain _prev next =
  match (domain, next) with
  | Health.Shard s, Health.Quarantined _ ->
    let victims =
      Hashtbl.fold
        (fun ino _ acc -> if shard_of t ino = s then ino :: acc else acc)
        t.files []
    in
    List.iter (fun ino -> drop_buffers t ino) victims
  | _ -> ()

let install_health_listener t =
  Health.set_listener (Pmfs.health t.pmfs) (fun domain prev next ->
      on_health_transition t domain prev next)

let unlink t ~dir name =
  (match Pmfs.lookup t.pmfs ~dir name with
  | Some ino when Pmfs.inode_kind t.pmfs ino = Layout.Inode.kind_regular ->
    drop_buffers t ino
  | _ -> ());
  Pmfs.unlink t.pmfs ~dir name

let rename t ~src_dir ~src ~dst_dir ~dst =
  (* If the rename will replace an existing file, its buffers die too. *)
  (match Pmfs.lookup t.pmfs ~dir:dst_dir dst with
  | Some ino when Pmfs.inode_kind t.pmfs ino = Layout.Inode.kind_regular ->
    drop_buffers t ino
  | _ -> ());
  Pmfs.rename t.pmfs ~src_dir ~src ~dst_dir ~dst

let truncate t ~ino ~size =
  Pmfs.check_writable_ino t.pmfs ~ino;
  let fst = file_state t ino in
  let bs = block_size t in
  let keep_blocks = (size + bs - 1) / bs in
  (* Buffered blocks beyond the new size die; the rest are flushed so the
     (journaled) truncate applies to a stable persistent state. *)
  let pool = spool t ino in
  let ids = Btree.fold fst.index [] (fun acc fblock id -> (fblock, id) :: acc) in
  List.iter
    (fun (fblock, id) ->
      let b = Buffer_pool.block pool id in
      if b.Buffer_pool.in_use && b.Buffer_pool.ino = ino
         && fblock >= keep_blocks
      then begin
        wait_unpinned b;
        if b.Buffer_pool.in_use && b.Buffer_pool.ino = ino then begin
          if not (Clbitmap.is_empty b.Buffer_pool.dirty) then begin
            fst.dirty_blocks <- fst.dirty_blocks - 1;
            b.Buffer_pool.dirty <- Clbitmap.empty
          end;
          ignore (Btree.remove fst.index fblock);
          Buffer_pool.free pool b
        end
      end)
    ids;
  sync_file_data t fst;
  Pmfs.truncate t.pmfs ~ino ~size

(* --- mmap (§4.2) --- *)

let mmap t ~ino =
  let fst = file_state t ino in
  (* Flush all dirty buffered blocks of this file to NVMM, then pin its
     blocks Eager-Persistent until munmap. Evict so the mapping and the
     buffer can never diverge. *)
  flush_file t fst ~evict:true;
  commit_pending t fst;
  Benefit.pin_mmap fst.model;
  Obs.instant Obs.Ev_mmap_pin ~a:ino ~b:0

let munmap t ~ino =
  let fst = file_state t ino in
  Benefit.unpin_mmap fst.model;
  Obs.instant Obs.Ev_mmap_unpin ~a:ino ~b:0

let msync t ~ino =
  ignore ino;
  Device.mfence (device t) ~cat:Stats.Other

(* --- lifecycle --- *)

(* Whole-FS sync. With one shard this is the classic loop: flush every
   file, commit every pending transaction. With several shards the pending
   commits span journals, and committing them one by one would let a crash
   mid-sync land between two shards' commits — callers of sync_all expect
   an all-or-nothing durability point. So when more than one shard holds
   pending transactions, they all commit through one epoch: prepare each
   on its own journal, persist the epoch record (single cacheline, atomic),
   then checkpoint. *)
let sync_all t =
  Hashtbl.iter (fun _ino fst -> flush_file t fst ~evict:false) t.files;
  let pending =
    Hashtbl.fold
      (fun _ fst acc -> if fst.pending_txn <> None then fst :: acc else acc)
      t.files []
  in
  let shards_touched =
    List.sort_uniq compare (List.map (fun fst -> shard_of t fst.f_ino) pending)
  in
  (match shards_touched with
  | [] | [ _ ] -> List.iter (fun fst -> commit_pending t fst) pending
  | _ ->
    Hinfs_journal.Epoch.with_barrier (Pmfs.epoch t.pmfs) (fun ep ->
        List.iter
          (fun fst ->
            match fst.pending_txn with
            | Some txn -> Log.prepare_epoch (log_of t fst) txn ~epoch:ep
            | None -> ())
          pending;
        Hinfs_journal.Epoch.commit (Pmfs.epoch t.pmfs) ep;
        List.iter
          (fun fst ->
            match fst.pending_txn with
            | Some txn ->
              Log.finish_epoch (log_of t fst) txn;
              fst.pending_txn <- None;
              fst.pending_allocs <- []
            | None -> ())
          pending));
  Device.mfence (device t) ~cat:Stats.Other

let unmount t =
  t.stopping <- true;
  Array.iter (fun sh -> ignore (Condvar.broadcast sh.wb_wakeup)) t.shards;
  sync_all t;
  Pmfs.unmount t.pmfs

(* --- introspection for tests and benchmarks --- *)

let sum_pools t f =
  Array.fold_left (fun acc sh -> acc + f sh.pool) 0 t.shards

let buffered_blocks t = sum_pools t Buffer_pool.used_count
let free_buffer_blocks t = sum_pools t Buffer_pool.free_count

let dirty_buffered_blocks t =
  Hashtbl.fold (fun _ fst acc -> acc + fst.dirty_blocks) t.files 0

let pending_txns t =
  Hashtbl.fold
    (fun _ fst acc -> if fst.pending_txn <> None then acc + 1 else acc)
    t.files 0

let is_block_buffered t ~ino ~fblock =
  match Hashtbl.find_opt t.files ino with
  | None -> false
  | Some fst -> buffered_block t fst fblock <> None

let block_state_eager t ~ino ~fblock =
  match Hashtbl.find_opt t.files ino with
  | None -> false
  | Some fst ->
    Benefit.is_eager fst.model fblock ~now:(now t)
      ~eager_decay_ns:t.hcfg.Hconfig.eager_decay_ns

(* --- mkfs / mount helpers --- *)

let mkfs_and_mount device ?journal_blocks ?inodes_per_mb ?hcfg ?sync_mount
    ?(daemons = true) () =
  (* The journal must hold the undo entries of every pending (ordered)
     transaction; those scale with the number of buffered blocks. Default
     to ~16 entry slots per buffer block unless told otherwise. *)
  let journal_blocks =
    match journal_blocks with
    | Some j -> Some j
    | None ->
      let cfg = Device.config device in
      let buffer_blocks =
        (match hcfg with Some h -> h.Hconfig.buffer_bytes | None -> Hconfig.default.Hconfig.buffer_bytes)
        / cfg.Config.block_size
      in
      let slots_per_block = cfg.Config.block_size / 64 in
      Some (max 64 (buffer_blocks * 16 / slots_per_block))
  in
  let shards =
    (match hcfg with Some h -> h.Hconfig.shards | None -> Hconfig.default.Hconfig.shards)
  in
  let pmfs =
    Pmfs.mkfs_and_mount device ?journal_blocks ?inodes_per_mb ~shards
      ~journal_cleaner:daemons ()
  in
  let t = create ?hcfg ?sync_mount pmfs in
  install_health_listener t;
  if daemons then start_daemons t;
  t

(* Mount an existing image (e.g. a crash snapshot): PMFS mount runs log
   recovery and rebuilds the allocators; HiNFS state on top (buffer, benefit
   model, pending transactions) is all volatile and starts empty. *)
let mount device ?hcfg ?sync_mount ?(daemons = true) () =
  let pmfs = Pmfs.mount device ~journal_cleaner:daemons () in
  let t = create ?hcfg ?sync_mount pmfs in
  install_health_listener t;
  if daemons then start_daemons t;
  t

(* --- Backend.S instance --- *)

module Backend : Hinfs_vfs.Backend.S with type t = t = struct
  type nonrec t = t

  let fs_name _ = "hinfs"
  let device = device
  let sync_mount t = t.sync_mount
  let root_ino _ = Layout.root_ino
  let lookup t ~dir name = Pmfs.lookup t.pmfs ~dir name
  let create_file t ~dir name = Pmfs.create_file t.pmfs ~dir name
  let mkdir t ~dir name = Pmfs.mkdir t.pmfs ~dir name
  let unlink = unlink
  let rmdir t ~dir name = Pmfs.rmdir t.pmfs ~dir name
  let rename = rename
  let readdir t ~dir = Pmfs.readdir t.pmfs ~dir
  let stat t ~ino = Pmfs.stat_of t.pmfs ino

  let read t ~ino ~off ~len ~into ~into_off =
    read t ~ino ~off ~len ~into ~into_off

  let write t ~ino ~off ~src ~src_off ~len ~sync =
    write t ~ino ~off ~src ~src_off ~len ~sync

  let truncate t ~ino ~size = truncate t ~ino ~size
  let fsync t ~ino = fsync t ~ino
  let mmap t ~ino = mmap t ~ino
  let munmap t ~ino = munmap t ~ino
  let msync t ~ino = msync t ~ino
  let sync_all = sync_all
  let unmount = unmount
end

module Vfs_layer = Hinfs_vfs.Vfs.Make (Backend)

let handle t = Vfs_layer.handle t
