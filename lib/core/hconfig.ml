(* HiNFS tuning knobs, with the paper's defaults (§3.2, §3.3.2).

   [clfw] and [checker] exist for the paper's own ablations:
   - clfw = false      -> HiNFS-NCLFW (block-granular fetch/writeback, Fig 9)
   - checker = false   -> HiNFS-WB (buffer everything, Fig 12/13) *)

type replacement = Lrw | Fifo | Lfu

type t = {
  buffer_bytes : int; (* DRAM write buffer capacity *)
  low_watermark : float; (* wake writeback below this free fraction (5%) *)
  high_watermark : float; (* reclaim until this free fraction (20%) *)
  flush_interval_ns : int64; (* periodic writeback period (5 s) *)
  age_flush_ns : int64; (* flush blocks dirty for longer than this (30 s) *)
  eager_decay_ns : int64; (* Eager -> Lazy after this long without sync (5 s) *)
  writeback_threads : int;
  clfw : bool; (* Cacheline Level Fetch/Writeback *)
  checker : bool; (* Eager-Persistent Write Checker + Buffer Benefit Model *)
  replacement : replacement; (* victim selection policy (ablation) *)
  shards : int; (* hot-state shards: buffer pools, journals, allocators *)
}

let default =
  {
    buffer_bytes = 64 * 1024 * 1024;
    low_watermark = 0.05;
    high_watermark = 0.20;
    flush_interval_ns = 5_000_000_000L;
    age_flush_ns = 30_000_000_000L;
    eager_decay_ns = 5_000_000_000L;
    writeback_threads = 4;
    clfw = true;
    checker = true;
    replacement = Lrw;
    shards = 1;
  }

let validate t =
  if t.buffer_bytes <= 0 then invalid_arg "Hconfig: buffer_bytes must be > 0";
  if not (t.low_watermark > 0.0 && t.low_watermark < t.high_watermark
          && t.high_watermark < 1.0)
  then invalid_arg "Hconfig: need 0 < low_watermark < high_watermark < 1";
  if t.writeback_threads < 1 then
    invalid_arg "Hconfig: writeback_threads must be >= 1";
  if t.shards < 1 then invalid_arg "Hconfig: shards must be >= 1";
  t
