(** HiNFS tuning knobs, with the paper's defaults (§3.2, §3.3.2). *)

(** Buffer replacement policy: the paper's LRW (Least Recently Written),
    FIFO as an ablation strawman, or sampled LFU-by-writes — the kind of
    "more sophisticated policy" the paper's §3.2 leaves to future work. *)
type replacement = Lrw | Fifo | Lfu

type t = {
  buffer_bytes : int;  (** DRAM write buffer capacity *)
  low_watermark : float;
      (** wake the writeback daemons below this free fraction (Low_f, 5%) *)
  high_watermark : float;
      (** daemons reclaim until this free fraction (High_f, 20%) *)
  flush_interval_ns : int64;  (** periodic writeback wakeup (5 s) *)
  age_flush_ns : int64;  (** clean blocks dirty for longer than this (30 s) *)
  eager_decay_ns : int64;
      (** Eager-Persistent decays to Lazy after this long without a sync on
          the file (5 s) *)
  writeback_threads : int;
  clfw : bool;  (** Cacheline Level Fetch/Writeback; [false] = HiNFS-NCLFW *)
  checker : bool;
      (** Eager-Persistent Write Checker + Buffer Benefit Model;
          [false] = HiNFS-WB (buffer everything) *)
  replacement : replacement;
  shards : int;
      (** Number of hot-state shards: per-shard buffer pools, journal
          regions, and allocator ranges; files map to shards by inode. *)
}

val default : t

val validate : t -> t
(** Returns the config, or raises [Invalid_argument]. *)
