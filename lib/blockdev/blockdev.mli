(** NVMMBD: RAM-disk-like block device over the NVMM device model (the
    paper's modified brd driver). Every request pays the generic block layer
    overhead; transfers are whole blocks. A durability tier (lib/nvcache)
    can be interposed to absorb writes before they become block requests. *)

type t

val create : Hinfs_nvmm.Device.t -> t
val device : t -> Hinfs_nvmm.Device.t
val block_size : t -> int
val nblocks : t -> int
val read_requests : t -> int
val write_requests : t -> int

val absorbed_writes : t -> int
(** Writes swallowed by the attached tier instead of becoming requests. *)

(** {1 Tier interposition}

    The hook record a write-cache tier implements. [tier_write] runs before
    the block request is issued; returning [true] means the write is
    durable in the tier under the same completion contract as
    {!write_block} (ordered on media when the call returns) and the block
    layer is bypassed. [tier_read] lets the tier serve blocks it still
    holds (read-your-writes); [tier_peek] is its untimed counterpart for
    {!peek_block}. *)
type tier = {
  tier_name : string;
  tier_write :
    background:bool ->
    cat:Hinfs_stats.Stats.category ->
    block:int ->
    src:Bytes.t ->
    off:int ->
    dirty:(int * int) option ->
    bool;
  tier_read :
    cat:Hinfs_stats.Stats.category ->
    block:int ->
    into:Bytes.t ->
    off:int ->
    bool;
  tier_peek : block:int -> Bytes.t option;
}

val attach_tier : t -> tier option -> unit
val tier_name : t -> string option

(** {1 Requests} *)

val read_block :
  t -> cat:Hinfs_stats.Stats.category -> int -> into:Bytes.t -> off:int -> unit

val write_block :
  ?background:bool ->
  ?dirty:int * int ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  int ->
  src:Bytes.t ->
  off:int ->
  unit
(** [dirty] is the block-relative [(off, len)] byte run actually modified
    since the block was last clean, when the writer tracked one; a logging
    tier uses it to absorb sub-block records instead of whole blocks. The
    full block in [src] is authoritative either way. *)

val write_range :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  src:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** One block-layer request transferring [len] bytes at device byte address
    [addr], below the tier interception point — the tier's destage path.
    Pays the per-request overhead but does not fence; the caller batches
    its own ordering points. *)

val peek_block : t -> int -> Bytes.t
(** Untimed coherent read (tests, mkfs); consults the attached tier. *)

val poke_block : t -> int -> src:Bytes.t -> off:int -> unit
(** Untimed raw write (tests, mkfs). *)
