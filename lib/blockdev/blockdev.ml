(* NVMMBD: a RAM-disk-like block device on top of the NVMM device model.

   This reproduces the paper's NVMMBD emulator (a modified brd driver): the
   traditional file systems (EXT2/EXT4) run on top of it and therefore pay
   - the generic block layer software overhead per request, and
   - full-block transfers even for small updates.

   Requests are block-granular. Writes stream to the medium with NVMM cost
   (the brd "disk" is NVMM); reads are DRAM-speed. The per-request overhead
   is charged to the [Block_layer] stats category.

   A durability tier (lib/nvcache) can be interposed with {!attach_tier}:
   it sees every write before the request is issued and may absorb it into
   NVMM, and every read so it can serve blocks it still holds. Absorbed
   writes skip the block layer entirely — that bypass is the tier's whole
   performance story — and are counted separately. The tier destages back
   through {!write_range}, which pays the normal per-request overhead. *)

module Proc = Hinfs_sim.Proc
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config

type tier = {
  tier_name : string;
  tier_write :
    background:bool ->
    cat:Stats.category ->
    block:int ->
    src:Bytes.t ->
    off:int ->
    dirty:(int * int) option ->
    bool;
      (** Offered every block write first, with the block-relative dirty
          byte run when the writer tracked one. Returning [true] means the
          write is durable in the tier (same completion contract as
          {!write_block}: ordered on media when the call returns). *)
  tier_read : cat:Stats.category -> block:int -> into:Bytes.t -> off:int -> bool;
      (** Offered every block read; [true] means [into] was filled with the
          tier's (newest) view of the block. *)
  tier_peek : block:int -> Bytes.t option;
      (** Untimed coherent view for {!peek_block}. *)
}

type t = {
  device : Device.t;
  block_size : int;
  nblocks : int;
  mutable reads : int;
  mutable writes : int;
  mutable absorbed : int;
  mutable tier : tier option;
}

let create device =
  let config = Device.config device in
  {
    device;
    block_size = config.Config.block_size;
    nblocks = Config.blocks config;
    reads = 0;
    writes = 0;
    absorbed = 0;
    tier = None;
  }

let device t = t.device
let block_size t = t.block_size
let nblocks t = t.nblocks
let read_requests t = t.reads
let write_requests t = t.writes
let absorbed_writes t = t.absorbed
let attach_tier t tier = t.tier <- tier
let tier_name t = match t.tier with None -> None | Some x -> Some x.tier_name

let check_block t block =
  if block < 0 || block >= t.nblocks then
    Fmt.invalid_arg "Blockdev: block %d out of range [0, %d)" block t.nblocks

let charge_request t =
  let ns = (Device.config t.device).Config.block_request_ns in
  Stats.add_time (Device.stats t.device) Stats.Block_layer (Int64.of_int ns);
  Proc.delay_int ns

let read_block t ~cat block ~into ~off =
  check_block t block;
  if off < 0 || off + t.block_size > Bytes.length into then
    invalid_arg "Blockdev.read_block: bad destination range";
  charge_request t;
  t.reads <- t.reads + 1;
  Stats.add_block_read (Device.stats t.device);
  let served =
    match t.tier with
    | None -> false
    | Some tier -> tier.tier_read ~cat ~block ~into ~off
  in
  if not served then
    Device.read t.device ~cat ~addr:(block * t.block_size) ~len:t.block_size
      ~into ~off

let write_block ?(background = false) ?dirty t ~cat block ~src ~off =
  check_block t block;
  if off < 0 || off + t.block_size > Bytes.length src then
    invalid_arg "Blockdev.write_block: bad source range";
  let absorbed =
    match t.tier with
    | None -> false
    | Some tier -> tier.tier_write ~background ~cat ~block ~src ~off ~dirty
  in
  if absorbed then begin
    t.absorbed <- t.absorbed + 1;
    Stats.add_block_absorbed (Device.stats t.device)
  end
  else begin
    charge_request t;
    t.writes <- t.writes + 1;
    Stats.add_block_write (Device.stats t.device);
    Device.write_nt ~background t.device ~cat ~addr:(block * t.block_size)
      ~src ~off ~len:t.block_size;
    (* Bio completion implies durability on the NVMM-backed brd: the request
       does not return until the streamed block is ordered on the medium.
       Without this fence the block journal's descriptor/commit ordering
       would not hold under partial-persist crash states. *)
    Device.mfence t.device ~cat
  end

(* Destage path: write an arbitrary byte range below the tier interception
   point as one block-layer request. No completion fence — the destage
   daemon batches its own ordering points. *)
let write_range ?(background = false) t ~cat ~addr ~src ~off ~len =
  if addr < 0 || len < 0 || addr + len > t.nblocks * t.block_size then
    invalid_arg "Blockdev.write_range: bad device range";
  charge_request t;
  t.writes <- t.writes + 1;
  Stats.add_block_write (Device.stats t.device);
  Device.write_nt ~background t.device ~cat ~addr ~src ~off ~len

(* Untimed helpers for mkfs and tests. *)

let peek_block t block =
  check_block t block;
  match t.tier with
  | Some tier -> (
    match tier.tier_peek ~block with
    | Some bytes -> bytes
    | None -> Device.peek t.device ~addr:(block * t.block_size) ~len:t.block_size)
  | None -> Device.peek t.device ~addr:(block * t.block_size) ~len:t.block_size

let poke_block t block ~src ~off =
  check_block t block;
  Device.poke t.device ~addr:(block * t.block_size) ~src ~off
    ~len:t.block_size
