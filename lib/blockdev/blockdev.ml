(* NVMMBD: a RAM-disk-like block device on top of the NVMM device model.

   This reproduces the paper's NVMMBD emulator (a modified brd driver): the
   traditional file systems (EXT2/EXT4) run on top of it and therefore pay
   - the generic block layer software overhead per request, and
   - full-block transfers even for small updates.

   Requests are block-granular. Writes stream to the medium with NVMM cost
   (the brd "disk" is NVMM); reads are DRAM-speed. The per-request overhead
   is charged to the [Block_layer] stats category. *)

module Proc = Hinfs_sim.Proc
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config

type t = {
  device : Device.t;
  block_size : int;
  nblocks : int;
  mutable reads : int;
  mutable writes : int;
}

let create device =
  let config = Device.config device in
  {
    device;
    block_size = config.Config.block_size;
    nblocks = Config.blocks config;
    reads = 0;
    writes = 0;
  }

let device t = t.device
let block_size t = t.block_size
let nblocks t = t.nblocks
let read_requests t = t.reads
let write_requests t = t.writes

let check_block t block =
  if block < 0 || block >= t.nblocks then
    Fmt.invalid_arg "Blockdev: block %d out of range [0, %d)" block t.nblocks

let charge_request t =
  let ns = (Device.config t.device).Config.block_request_ns in
  Stats.add_time (Device.stats t.device) Stats.Block_layer (Int64.of_int ns);
  Proc.delay_int ns

let read_block t ~cat block ~into ~off =
  check_block t block;
  if off < 0 || off + t.block_size > Bytes.length into then
    invalid_arg "Blockdev.read_block: bad destination range";
  charge_request t;
  t.reads <- t.reads + 1;
  Device.read t.device ~cat ~addr:(block * t.block_size) ~len:t.block_size
    ~into ~off

let write_block ?(background = false) t ~cat block ~src ~off =
  check_block t block;
  if off < 0 || off + t.block_size > Bytes.length src then
    invalid_arg "Blockdev.write_block: bad source range";
  charge_request t;
  t.writes <- t.writes + 1;
  Device.write_nt ~background t.device ~cat ~addr:(block * t.block_size) ~src
    ~off ~len:t.block_size;
  (* Bio completion implies durability on the NVMM-backed brd: the request
     does not return until the streamed block is ordered on the medium.
     Without this fence the block journal's descriptor/commit ordering
     would not hold under partial-persist crash states. *)
  Device.mfence t.device ~cat

(* Untimed helpers for mkfs and tests. *)

let peek_block t block =
  check_block t block;
  Device.peek t.device ~addr:(block * t.block_size) ~len:t.block_size

let poke_block t block ~src ~off =
  check_block t block;
  Device.poke t.device ~addr:(block * t.block_size) ~src ~off
    ~len:t.block_size
