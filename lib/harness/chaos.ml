(* Deterministic fault-schedule DSL for chaos soaks.

   A schedule is a list of steps, each an action fired after a virtual-time
   delay from the previous step. Actions mutate the device's fault model
   (rates on the one seeded stream) or inject poison at computed addresses,
   so a fixed schedule + seed + workload is bit-identical across runs —
   chaos, replayable.

   Actions:
   - [Corrupt_journal]: poison lines spread across one shard's journal
     sub-region — latent structural damage the patrol detects and the
     repair daemon heals (re-replay + wipe + scrub).
   - [Poison_burst]: poison lines over free blocks of one shard's data
     range — scrub-healable noise that must not quarantine anything.
   - [Transient_storm] / [Storm_end]: open and close a window in which
     loads fault transiently at [rate] — exercises the retry/backoff
     policy under load.

   Run the schedule with {!spawn} (a background process on the virtual
   clock) from inside a simulation process. *)

module Proc = Hinfs_sim.Proc
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Fault = Hinfs_nvmm.Fault
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Fs_ctx = Hinfs_pmfs.Fs_ctx

type action =
  | Corrupt_journal of { shard : int; lines : int }
  | Poison_burst of { shard : int; lines : int }
  | Transient_storm of { rate : float }
  | Storm_end

type step = { after_ns : int; action : action }

let pp_action ppf = function
  | Corrupt_journal { shard; lines } ->
    Fmt.pf ppf "corrupt-journal(shard %d, %d lines)" shard lines
  | Poison_burst { shard; lines } ->
    Fmt.pf ppf "poison-burst(shard %d, %d lines)" shard lines
  | Transient_storm { rate } -> Fmt.pf ppf "transient-storm(%.4f)" rate
  | Storm_end -> Fmt.pf ppf "storm-end"

let fault_model device =
  match Device.fault_model device with
  | Some fm -> fm
  | None -> invalid_arg "Chaos: device has no fault model attached"

(* Poison [lines] cachelines spread evenly across shard [shard]'s journal
   sub-region: deterministic addresses, no draw from the fault stream. *)
let corrupt_journal fs ~shard ~lines =
  let device = Pmfs.device fs in
  let fm = fault_model device in
  let geo = Pmfs.geometry fs in
  let bs = geo.Layout.block_size in
  let ls = (Device.config device).Config.cacheline_size in
  let first_block, blocks = Layout.journal_region geo shard in
  let total_lines = blocks * bs / ls in
  let base_line = first_block * bs / ls in
  let n = min lines total_lines in
  let stride = max 1 (total_lines / max 1 n) in
  for k = 0 to n - 1 do
    Fault.poison_line fm (base_line + (k * stride mod total_lines))
  done

(* Poison one line in each of the first [lines] free blocks of shard
   [shard]'s data range (skips allocated blocks: bursts must be
   scrub-healable, not data loss). *)
let poison_burst fs ~shard ~lines =
  let device = Pmfs.device fs in
  let fm = fault_model device in
  let geo = Pmfs.geometry fs in
  let bs = geo.Layout.block_size in
  let ls = (Device.config device).Config.cacheline_size in
  let ctx = Pmfs.ctx fs in
  let first, count = Layout.data_range geo shard in
  let injected = ref 0 in
  let b = ref first in
  while !injected < lines && !b < first + count do
    if not (Fs_ctx.block_is_allocated ctx !b) then begin
      Fault.poison_line fm (!b * bs / ls);
      incr injected
    end;
    b := !b + 1
  done

let apply fs = function
  | Corrupt_journal { shard; lines } -> corrupt_journal fs ~shard ~lines
  | Poison_burst { shard; lines } -> poison_burst fs ~shard ~lines
  | Transient_storm { rate } ->
    Fault.set_transient_rate (fault_model (Pmfs.device fs)) rate
  | Storm_end -> Fault.set_transient_rate (fault_model (Pmfs.device fs)) 0.0

(* Execute the schedule on the virtual clock. [on_step] (e.g. a print or a
   log collector) fires after each action is applied. Call from inside a
   simulation process; returns once the last step has fired. *)
let run ?(on_step = fun _ -> ()) fs schedule =
  List.iter
    (fun step ->
      if step.after_ns > 0 then Proc.delay_int step.after_ns;
      apply fs step.action;
      on_step step)
    schedule

(* Spawn the schedule as a background process. *)
let spawn ?on_step fs schedule =
  Proc.spawn ~name:"chaos" (fun () -> run ?on_step fs schedule)
