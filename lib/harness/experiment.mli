(** Experiment driver: one fresh simulation per (file system, workload,
    configuration) cell. *)

type spec = {
  nvmm_size : int;
  nvmm_write_ns : int;
  nvmm_bandwidth : int;
  buffer_bytes : int;  (** HiNFS DRAM write buffer *)
  cache_pages : int;  (** EXT page cache ("system memory") *)
  threads : int;
  duration_ns : int64;
  seed : int64;
  shards : int;  (** HiNFS hot-state shards (1 = unsharded, the default) *)
}

val default_spec : spec
(** Laptop-scale calibration of the paper's Table 2 setup: ratios preserved
    (buffer ~0.4x dataset, page cache ~0.6x dataset, 1 GB/s NVMM at
    200 ns), sizes divided by ~80. See EXPERIMENTS.md. *)

val trace_spec : spec
(** Fig. 12 sizing: DRAM buffer = 1/10 of the trace working set. *)

val config_of : spec -> Hinfs_nvmm.Config.t

val run_workload :
  ?spec:spec ->
  ?threads:int ->
  ?duration:int64 ->
  Fixtures.fs_kind ->
  Hinfs_workloads.Workload.t ->
  Hinfs_workloads.Workload.result * Hinfs_stats.Stats.t

val run_job :
  ?spec:spec ->
  Fixtures.fs_kind ->
  Hinfs_workloads.Workload.job ->
  Hinfs_workloads.Workload.job_result * Hinfs_stats.Stats.t

val run_trace :
  ?spec:spec ->
  Fixtures.fs_kind ->
  Hinfs_trace.Trace.t ->
  Hinfs_trace.Trace.replay_result * Hinfs_stats.Stats.t

(** {2 Observability-enabled runs}

    Same cells with an {!Hinfs_obs.Obs} sink installed for the run and the
    periodic gauge sampler running between mount and teardown. [trace]
    additionally keeps per-event data for Chrome-trace export. The sink is
    global: do not nest obs runs. *)

val with_env_obs :
  ?trace:bool ->
  ?sampler_period_ns:int64 ->
  spec ->
  Fixtures.fs_kind ->
  (Fixtures.env -> 'a) ->
  'a * Hinfs_stats.Stats.t * Hinfs_obs.Obs.t

val run_workload_obs :
  ?spec:spec ->
  ?threads:int ->
  ?duration:int64 ->
  ?trace:bool ->
  ?sampler_period_ns:int64 ->
  Fixtures.fs_kind ->
  Hinfs_workloads.Workload.t ->
  Hinfs_workloads.Workload.result * Hinfs_stats.Stats.t * Hinfs_obs.Obs.t

val run_job_obs :
  ?spec:spec ->
  ?trace:bool ->
  ?sampler_period_ns:int64 ->
  Fixtures.fs_kind ->
  Hinfs_workloads.Workload.job ->
  Hinfs_workloads.Workload.job_result * Hinfs_stats.Stats.t * Hinfs_obs.Obs.t

val run_trace_obs :
  ?spec:spec ->
  ?trace:bool ->
  ?sampler_period_ns:int64 ->
  Fixtures.fs_kind ->
  Hinfs_trace.Trace.t ->
  Hinfs_trace.Trace.replay_result * Hinfs_stats.Stats.t * Hinfs_obs.Obs.t
