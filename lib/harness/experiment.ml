(* Experiment driver: one simulation per (file system, workload, config)
   cell. Each run builds a fresh engine, device and file system, executes
   the workload, and returns the measurement plus the stats sink for
   byte/time breakdowns. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Workload = Hinfs_workloads.Workload
module Trace = Hinfs_trace.Trace
module Obs = Hinfs_obs.Obs

type spec = {
  nvmm_size : int;
  nvmm_write_ns : int;
  nvmm_bandwidth : int;
  buffer_bytes : int; (* HiNFS DRAM write buffer *)
  cache_pages : int; (* EXT page cache (system memory) *)
  threads : int;
  duration_ns : int64;
  seed : int64;
  shards : int; (* HiNFS hot-state shards (1 = unsharded, the default) *)
}

(* Laptop-scale calibration of the paper's Table 2 setup: the ratios are
   preserved (buffer ~40% of a filebench dataset, EXT page cache 1.5x the
   HiNFS buffer, 1 GB/s NVMM at 200 ns), sizes are divided by ~80 so a
   full figure grid runs in seconds. See EXPERIMENTS.md. *)
let default_spec =
  {
    nvmm_size = 384 * 1024 * 1024;
    nvmm_write_ns = 200;
    nvmm_bandwidth = 1_000_000_000;
    buffer_bytes = 26 * 1024 * 1024; (* ~0.4x the ~64 MB filebench datasets,
                                        the paper's 2 GB / 5 GB *)
    cache_pages = 9600 (* 37.5 MB: ~0.6x dataset, the paper's 3 GB / 5 GB *);
    threads = 4;
    duration_ns = 200_000_000L (* 0.2 virtual seconds *);
    seed = 42L;
    shards = 1;
  }

let config_of spec =
  {
    Config.default with
    Config.nvmm_size = spec.nvmm_size;
    Config.nvmm_write_ns = spec.nvmm_write_ns;
    Config.nvmm_write_bandwidth = spec.nvmm_bandwidth;
  }

(* Run [f] against a freshly mounted [kind] inside its own simulation. *)
let with_env spec kind f =
  let engine = Engine.create () in
  let result = ref None in
  Engine.spawn engine ~name:"experiment" (fun () ->
      let env =
        Fixtures.setup engine ~config:(config_of spec)
          ~buffer_bytes:spec.buffer_bytes ~cache_pages:spec.cache_pages
          ~shards:spec.shards kind
      in
      let value = f env in
      env.Fixtures.teardown ();
      result := Some (value, env.Fixtures.stats));
  Engine.run engine;
  match !result with
  | Some r -> r
  | None -> failwith "experiment did not complete"

let run_workload ?spec ?threads ?duration kind workload =
  let spec = Option.value ~default:default_spec spec in
  let threads = Option.value ~default:spec.threads threads in
  let duration = Option.value ~default:spec.duration_ns duration in
  with_env spec kind (fun env ->
      Workload.run ~seed:spec.seed ~stats:env.Fixtures.stats ~threads
        ~duration workload env.Fixtures.handle)

let run_job ?spec kind job =
  let spec = Option.value ~default:default_spec spec in
  with_env spec kind (fun env ->
      Workload.run_job ~seed:spec.seed ~stats:env.Fixtures.stats job
        env.Fixtures.handle)

(* Fig. 12 sets the DRAM buffer to 1/10 of the workload size; trace
   working sets are ~16 MB, so the trace spec defaults to a 1.6 MB buffer
   (and a page cache scaled the same way for the EXT baselines). *)
let trace_spec =
  {
    default_spec with
    buffer_bytes = 1_600_000;
    cache_pages = 600;
  }

let run_trace ?(spec = trace_spec) kind trace =
  let spec = spec in
  with_env spec kind (fun env ->
      Trace.replay ~stats:env.Fixtures.stats trace env.Fixtures.handle)

(* --- observability-enabled runs --- *)

(* Same shape as [with_env], but with an [Obs] sink installed for the
   run's lifetime and the periodic gauge sampler running between mount and
   teardown. The sink is global, so obs runs must not nest; the harness
   only ever runs one simulation at a time. *)
let with_env_obs ?(trace = false) ?sampler_period_ns spec kind f =
  let engine = Engine.create () in
  let obs = Obs.create ~trace engine in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall (fun () ->
      let result = ref None in
      Engine.spawn engine ~name:"experiment" (fun () ->
          let env =
            Fixtures.setup engine ~config:(config_of spec)
              ~buffer_bytes:spec.buffer_bytes ~cache_pages:spec.cache_pages
              ~shards:spec.shards kind
          in
          let stop =
            Obs.start_sampler ?period_ns:sampler_period_ns obs
              ~gauges:env.Fixtures.gauges
          in
          let value = f env in
          stop ();
          env.Fixtures.teardown ();
          result := Some (value, env.Fixtures.stats));
      Engine.run engine;
      match !result with
      | Some (value, stats) -> (value, stats, obs)
      | None -> failwith "experiment did not complete")

let run_workload_obs ?spec ?threads ?duration ?trace ?sampler_period_ns kind
    workload =
  let spec = Option.value ~default:default_spec spec in
  let threads = Option.value ~default:spec.threads threads in
  let duration = Option.value ~default:spec.duration_ns duration in
  with_env_obs ?trace ?sampler_period_ns spec kind (fun env ->
      Workload.run ~seed:spec.seed ~stats:env.Fixtures.stats ~threads
        ~duration workload env.Fixtures.handle)

let run_job_obs ?spec ?trace ?sampler_period_ns kind job =
  let spec = Option.value ~default:default_spec spec in
  with_env_obs ?trace ?sampler_period_ns spec kind (fun env ->
      Workload.run_job ~seed:spec.seed ~stats:env.Fixtures.stats job
        env.Fixtures.handle)

let run_trace_obs ?(spec = trace_spec) ?trace ?sampler_period_ns kind tr =
  with_env_obs ?trace ?sampler_period_ns spec kind (fun env ->
      Trace.replay ~stats:env.Fixtures.stats tr env.Fixtures.handle)
