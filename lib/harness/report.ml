(* Table/figure rendering helpers for the benchmark harness. *)

let hr ppf width = Fmt.pf ppf "%s@." (String.make width '-')

let heading ppf title =
  Fmt.pf ppf "@.==== %s ====@.@." title

let subheading ppf title = Fmt.pf ppf "-- %s --@." title

(* A unit-less horizontal bar for quick visual comparison. *)
let bar value ~max_value ~width =
  if max_value <= 0.0 then ""
  else begin
    let n =
      int_of_float (Float.round (value /. max_value *. float_of_int width))
    in
    String.make (max 0 (min width n)) '#'
  end

(* Print a table: header row then aligned rows of strings. *)
let table ppf ~header rows =
  let columns = List.length header in
  let widths = Array.make columns 0 in
  List.iteri (fun i cell -> widths.(i) <- String.length cell) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < columns then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri
      (fun i cell ->
        if i < columns then Fmt.pf ppf "%-*s  " widths.(i) cell)
      row;
    Fmt.pf ppf "@."
  in
  print_row header;
  List.iteri (fun i w -> ignore i; ignore w) header;
  Fmt.pf ppf "%s@."
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter print_row rows

(* Per-category persistence-event counters (clflush issued/dirty, mfence)
   from the NVMM device model — the ordering cost the paper's eager-persist
   paths pay. Prints nothing when the run issued no flushes or fences. *)
let persistence ppf stats =
  let module Stats = Hinfs_stats.Stats in
  if
    Stats.total_clflush_issued stats > 0 || Stats.total_mfences stats > 0
  then begin
    subheading ppf "persistence events";
    let rows =
      List.filter_map
        (fun cat ->
          let issued = Stats.clflush_issued stats cat in
          let dirty = Stats.clflush_dirty stats cat in
          let fences = Stats.mfences stats cat in
          if issued = 0 && fences = 0 then None
          else
            Some
              [
                Stats.category_name cat;
                string_of_int issued;
                string_of_int dirty;
                string_of_int fences;
              ])
        Stats.categories
    in
    let rows =
      rows
      @ [
          [
            "total";
            string_of_int (Stats.total_clflush_issued stats);
            string_of_int (Stats.total_clflush_dirty stats);
            string_of_int (Stats.total_mfences stats);
          ];
        ]
    in
    table ppf ~header:[ "category"; "clflush"; "dirty"; "mfence" ] rows
  end

(* Block-layer request counters from NVMMBD: bios issued (reads/writes)
   and writes absorbed by an attached durability tier instead of becoming
   requests. Prints nothing when no block device was involved. *)
let block_layer ppf stats =
  let module Stats = Hinfs_stats.Stats in
  let reads = Stats.block_read_requests stats in
  let writes = Stats.block_write_requests stats in
  let absorbed = Stats.block_absorbed_writes stats in
  if reads > 0 || writes > 0 || absorbed > 0 then begin
    subheading ppf "block layer";
    table ppf
      ~header:[ "read-reqs"; "write-reqs"; "absorbed" ]
      [ [ string_of_int reads; string_of_int writes; string_of_int absorbed ] ]
  end

(* Media-fault counters (injected faults, retries, repairs, checksum
   mismatches). Prints nothing on a fault-free run, which is the common
   case — the fault model is off by default. *)
let media ppf stats =
  let module Stats = Hinfs_stats.Stats in
  if
    Stats.total_media_faults stats > 0
    || Stats.media_retries stats > 0
    || Stats.scrub_repairs stats > 0
    || Stats.crc_mismatches stats > 0
  then begin
    subheading ppf "media faults";
    table ppf
      ~header:[ "transient"; "poison"; "retries"; "repairs"; "crc-bad" ]
      [
        [
          string_of_int (Stats.media_faults_transient stats);
          string_of_int (Stats.media_faults_poison stats);
          string_of_int (Stats.media_retries stats);
          string_of_int (Stats.scrub_repairs stats);
          string_of_int (Stats.crc_mismatches stats);
        ];
      ]
  end

(* Mount-time recovery counters (recovery passes run, transactions rolled
   back, unusable journal records dropped). Prints nothing when every mount
   in the run was clean. *)
let recovery ppf stats =
  let module Stats = Hinfs_stats.Stats in
  if Stats.recoveries stats > 0 then begin
    subheading ppf "log recovery";
    table ppf
      ~header:[ "recoveries"; "rolled-back"; "dropped" ]
      [
        [
          string_of_int (Stats.recoveries stats);
          string_of_int (Stats.recovered_txns stats);
          string_of_int (Stats.recovery_dropped stats);
        ];
      ]
  end

(* Latency histograms from an observability sink: one row per span kind
   with at least one sample. All values are virtual nanoseconds. *)
let latency ppf obs =
  let module Obs = Hinfs_obs.Obs in
  let module Hist = Hinfs_obs.Hist in
  match Obs.nonempty_hists obs with
  | [] -> ()
  | hists ->
    subheading ppf "latency (virtual ns)";
    table ppf
      ~header:[ "span"; "count"; "p50"; "p90"; "p99"; "p999"; "max"; "mean" ]
      (List.map
         (fun (k, s) ->
           [
             Obs.kind_name k;
             string_of_int s.Hist.count;
             string_of_int s.Hist.p50;
             string_of_int s.Hist.p90;
             string_of_int s.Hist.p99;
             string_of_int s.Hist.p999;
             string_of_int s.Hist.max;
             Fmt.str "%.1f" s.Hist.mean;
           ])
         hists)

(* Sampled-gauge statistics (write-buffer occupancy, journal free entries,
   bandwidth-slot utilisation, ...) from the periodic sampler. *)
let gauges ppf obs =
  let module Obs = Hinfs_obs.Obs in
  let module Hist = Hinfs_obs.Hist in
  match Obs.counter_summaries obs with
  | [] -> ()
  | counters ->
    subheading ppf "sampled gauges";
    table ppf
      ~header:[ "gauge"; "samples"; "min"; "mean"; "max" ]
      (List.map
         (fun (name, s) ->
           [
             name;
             string_of_int s.Hist.count;
             string_of_int s.Hist.min;
             Fmt.str "%.1f" s.Hist.mean;
             string_of_int s.Hist.max;
           ])
         counters)

let f1 v = Fmt.str "%.1f" v
let f2 v = Fmt.str "%.2f" v
let f0 v = Fmt.str "%.0f" v
let ms ns = Fmt.str "%.2f" (Int64.to_float ns /. 1e6)
let pct v = Fmt.str "%.1f%%" (100.0 *. v)
