(** File systems under test (paper Table 3, plus HiNFS's ablations). *)

type fs_kind =
  | Hinfs_fs  (** the contribution *)
  | Hinfs_nclfw  (** no Cacheline Level Fetch/Writeback (Fig. 9) *)
  | Hinfs_wb  (** checker off: buffer everything (Fig. 12/13) *)
  | Hinfs_fifo  (** FIFO replacement instead of LRW (extra ablation) *)
  | Hinfs_lfu  (** sampled-LFU replacement (extra ablation) *)
  | Pmfs_fs
  | Cow_fs
      (** the PMFS substrate in CoW mode: shadow paging, snapshots, whole-FS
          transactions, fenced root-descriptor swap per commit *)
  | Ext4_dax
  | Ext2_nvmmbd
  | Ext4_nvmmbd
  | Ext4_sync  (** ext4+nvmmbd mounted sync: every write durable on return *)
  | Ext2_nvlog  (** ext2 sync mount behind the logging nvcache tier *)
  | Ext4_nvlog  (** ext4 sync mount behind the logging nvcache tier *)
  | Ext4_nvpage  (** ext4 sync mount behind the paging nvcache tier *)

val name : fs_kind -> string
val description : fs_kind -> string

val paper_five : fs_kind list
(** The five systems of the paper's main comparison, in Fig. 7 order. *)

type env = {
  engine : Hinfs_sim.Engine.t;
  stats : Hinfs_stats.Stats.t;
  device : Hinfs_nvmm.Device.t;
  handle : Hinfs_vfs.Vfs.handle;
  kind : fs_kind;
  gauges : (string * (unit -> int)) list;
      (** Named gauges for the {!Hinfs_obs.Obs} periodic sampler: write-buffer
          occupancy, journal free entries, bandwidth-slot utilisation,
          writeback queue depth — whatever the kind exposes. *)
  teardown : unit -> unit;
}

val setup :
  Hinfs_sim.Engine.t ->
  config:Hinfs_nvmm.Config.t ->
  buffer_bytes:int ->
  cache_pages:int ->
  ?shards:int ->
  fs_kind ->
  env
(** Mount a fresh file system of the given kind on a fresh device (daemons
    running). Call from inside a simulation process; call [teardown] when
    done so the daemons stop and the engine can drain. [shards] (default 1)
    shards the HiNFS hot state — per-shard buffer pools, journal regions
    and allocator ranges — and adds per-shard occupancy / journal gauges
    plus the epoch-commit counter; non-HiNFS kinds ignore it. *)
