(* File systems under test (paper Table 3, plus HiNFS's own ablations). *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Vfs = Hinfs_vfs.Vfs
module Hconfig = Hinfs.Hconfig
module Resource = Hinfs_sim.Resource
module Log = Hinfs_journal.Cacheline_log

type fs_kind =
  | Hinfs_fs (* the contribution *)
  | Hinfs_nclfw (* ablation: no Cacheline Level Fetch/Writeback (Fig 9) *)
  | Hinfs_wb (* ablation: checker off, buffer everything (Fig 12/13) *)
  | Hinfs_fifo (* extra ablation: FIFO instead of LRW replacement *)
  | Hinfs_lfu (* extra ablation: sampled LFU instead of LRW *)
  | Pmfs_fs
  | Cow_fs (* the PMFS substrate in CoW mode: shadow paging + root swap *)
  | Ext4_dax
  | Ext2_nvmmbd
  | Ext4_nvmmbd
  | Ext4_sync (* ext4, sync mount: every write durable on return *)
  | Ext2_nvlog (* ext2 sync-mount behind the logging nvcache tier *)
  | Ext4_nvlog (* ext4 sync-mount behind the logging nvcache tier *)
  | Ext4_nvpage (* ext4 sync-mount behind the paging nvcache tier *)

let name = function
  | Hinfs_fs -> "hinfs"
  | Hinfs_nclfw -> "hinfs-nclfw"
  | Hinfs_wb -> "hinfs-wb"
  | Hinfs_fifo -> "hinfs-fifo"
  | Hinfs_lfu -> "hinfs-lfu"
  | Pmfs_fs -> "pmfs"
  | Cow_fs -> "cowfs"
  | Ext4_dax -> "ext4-dax"
  | Ext2_nvmmbd -> "ext2+nvmmbd"
  | Ext4_nvmmbd -> "ext4+nvmmbd"
  | Ext4_sync -> "ext4-sync"
  | Ext2_nvlog -> "ext2+nvlog"
  | Ext4_nvlog -> "ext4+nvlog"
  | Ext4_nvpage -> "ext4+nvpage"

(* The five systems of the paper's main comparison, in Fig. 7 order. *)
let paper_five = [ Pmfs_fs; Ext4_dax; Ext2_nvmmbd; Ext4_nvmmbd; Hinfs_fs ]

let description = function
  | Hinfs_fs -> "NVMM-aware write buffer + direct reads/eager writes"
  | Hinfs_nclfw -> "HiNFS without cacheline-level fetch/writeback"
  | Hinfs_wb -> "HiNFS buffering every write (checker disabled)"
  | Hinfs_fifo -> "HiNFS with FIFO buffer replacement"
  | Hinfs_lfu -> "HiNFS with sampled-LFU buffer replacement"
  | Pmfs_fs -> "direct access to NVMM (EuroSys'14)"
  | Cow_fs -> "CoW shadow paging + fenced root swap (snapshots/txns)"
  | Ext4_dax -> "ext4 with the DAX direct-access patch"
  | Ext2_nvmmbd -> "ext2 on the NVMM block device (no journal)"
  | Ext4_nvmmbd -> "ext4 on the NVMM block device (ordered journal)"
  | Ext4_sync -> "ext4+nvmmbd, sync mount (durable-write baseline)"
  | Ext2_nvlog -> "ext2 sync mount behind the logging nvcache tier"
  | Ext4_nvlog -> "ext4 sync mount behind the logging nvcache tier"
  | Ext4_nvpage -> "ext4 sync mount behind the paging nvcache tier"

type env = {
  engine : Engine.t;
  stats : Stats.t;
  device : Device.t;
  handle : Vfs.handle;
  kind : fs_kind;
  gauges : (string * (unit -> int)) list;
  teardown : unit -> unit;
}

(* Gauges every kind exposes: bandwidth-slot utilisation/queueing and the
   volatile-cacheline footprint, read straight off the device. *)
let device_gauges device =
  let bw = Device.bandwidth device in
  [
    ("bw.slots_in_use", fun () -> Resource.capacity bw - Resource.available bw);
    ("bw.queued", fun () -> Resource.queued bw);
    ("dev.dirty_cachelines", fun () -> Device.dirty_cachelines device);
  ]

let journal_gauges log =
  [ ("journal.free_slots", fun () -> Log.free_slots log) ]

(* Mount a fresh file system of the given kind on a fresh device. Must run
   inside a simulation process (daemons are spawned). *)
let setup engine ~config ~buffer_bytes ~cache_pages ?(shards = 1) kind =
  let stats = Stats.create () in
  let device = Device.create engine stats config in
  let hinfs_with hcfg =
    let hcfg = { hcfg with Hconfig.shards } in
    let fs = Hinfs.Fs.mkfs_and_mount device ~hcfg ~daemons:true () in
    let pmfs = Hinfs.Fs.pmfs fs in
    let nshards = Hinfs.Fs.shard_count fs in
    (* Per-shard gauges only when actually sharded: shard pool occupancy,
       shard journal headroom, and the epoch-record commit counter. *)
    let shard_gauges =
      if nshards <= 1 then []
      else
        List.concat
          (List.init nshards (fun s ->
               let ctx = Hinfs_pmfs.Pmfs.ctx pmfs in
               let log = (Hinfs_pmfs.Fs_ctx.shard ctx s).Hinfs_pmfs.Fs_ctx.log in
               let health = Hinfs_pmfs.Pmfs.health pmfs in
               [
                 ( Fmt.str "shard%d.pool_used" s,
                   fun () ->
                     Hinfs.Buffer_pool.used_count (Hinfs.Fs.shard_pool fs s) );
                 (Fmt.str "shard%d.journal_free_slots" s, fun () ->
                     Log.free_slots log);
                 (* 0 healthy, 1 degraded, 2 quarantined, 3 repairing *)
                 ( Fmt.str "shard%d.health" s,
                   fun () ->
                     Hinfs_pmfs.Health.state_code
                       (Hinfs_pmfs.Health.shard_state health s) );
               ]))
        @ [
            ( "epoch.commits",
              fun () ->
                Hinfs_journal.Epoch.commits (Hinfs_pmfs.Pmfs.epoch pmfs) );
          ]
    in
    let gauges =
      [
        ("buffer.used_blocks", fun () -> Hinfs.Fs.buffered_blocks fs);
        ("buffer.free_blocks", fun () -> Hinfs.Fs.free_buffer_blocks fs);
        ("buffer.dirty_blocks", fun () -> Hinfs.Fs.dirty_buffered_blocks fs);
        ("txns.pending", fun () -> Hinfs.Fs.pending_txns fs);
      ]
      @ journal_gauges (Hinfs_pmfs.Pmfs.log pmfs)
      @ shard_gauges
    in
    (Hinfs.Fs.handle fs, gauges, fun () -> Hinfs.Fs.unmount fs)
  in
  let ext_with ?sync_mount mode =
    let fs =
      Hinfs_extfs.Extfs.mkfs_and_mount device ~mode ?sync_mount ~cache_pages
        ~daemons:true ()
    in
    (Hinfs_extfs.Extfs.handle fs, [], fun () -> Hinfs_extfs.Extfs.unmount fs)
  in
  (* Durability tier: extfs sync-mounted (every write synchronous, like the
     bare Ext4_sync baseline) so the tier's absorb latency is what the
     workload's write path measures. *)
  let nvcache_with design mode =
    let module Nvcache = Hinfs_nvcache.Nvcache in
    let st =
      Nvcache.mkfs_and_mount device ~design ~mode ~sync_mount:true
        ~cache_pages ~daemons:true ()
    in
    let cache = Nvcache.cache st in
    let gauges =
      [
        ("nvcache.log_bytes", fun () -> Nvcache.used_bytes cache);
        ("nvcache.backlog", fun () -> Nvcache.backlog cache);
      ]
    in
    (Nvcache.handle st, gauges, fun () -> Nvcache.unmount st)
  in
  let handle, fs_gauges, teardown =
    match kind with
    | Hinfs_fs -> hinfs_with { Hconfig.default with Hconfig.buffer_bytes }
    | Hinfs_nclfw ->
      hinfs_with
        { Hconfig.default with Hconfig.buffer_bytes; Hconfig.clfw = false }
    | Hinfs_wb ->
      hinfs_with
        { Hconfig.default with Hconfig.buffer_bytes; Hconfig.checker = false }
    | Hinfs_fifo ->
      hinfs_with
        {
          Hconfig.default with
          Hconfig.buffer_bytes;
          Hconfig.replacement = Hconfig.Fifo;
        }
    | Hinfs_lfu ->
      hinfs_with
        {
          Hconfig.default with
          Hconfig.buffer_bytes;
          Hconfig.replacement = Hconfig.Lfu;
        }
    | Pmfs_fs ->
      let fs = Hinfs_pmfs.Pmfs.mkfs_and_mount device ~journal_cleaner:true () in
      ( Hinfs_pmfs.Pmfs.handle fs,
        journal_gauges (Hinfs_pmfs.Pmfs.log fs),
        fun () -> Hinfs_pmfs.Pmfs.unmount fs )
    | Cow_fs ->
      let module Cowfs = Hinfs_pmfs.Cowfs in
      let fs = Cowfs.mkfs_and_mount device () in
      ( Cowfs.handle fs,
        [
          ("cow.shadow_blocks", fun () -> Cowfs.shadow_count fs);
          ("cow.commits", fun () -> Cowfs.commits fs);
        ],
        fun () -> Cowfs.unmount fs )
    | Ext4_dax -> ext_with Hinfs_extfs.Extfs.Ext4_dax
    | Ext2_nvmmbd -> ext_with Hinfs_extfs.Extfs.Ext2
    | Ext4_nvmmbd -> ext_with Hinfs_extfs.Extfs.Ext4
    | Ext4_sync -> ext_with ~sync_mount:true Hinfs_extfs.Extfs.Ext4
    | Ext2_nvlog ->
      nvcache_with Hinfs_nvcache.Nvcache.Logging Hinfs_extfs.Extfs.Ext2
    | Ext4_nvlog ->
      nvcache_with Hinfs_nvcache.Nvcache.Logging Hinfs_extfs.Extfs.Ext4
    | Ext4_nvpage ->
      nvcache_with Hinfs_nvcache.Nvcache.Paging Hinfs_extfs.Extfs.Ext4
  in
  let gauges = fs_gauges @ device_gauges device in
  { engine; stats; device; handle; kind; gauges; teardown }
