(** The BENCH_HINFS.json schema: machine-readable perf summaries.

    Derived entirely from deterministic virtual-clock data — two runs with
    the same seed produce byte-identical files. *)

val schema_version : int

val summary_json : Hinfs_obs.Hist.summary -> Hinfs_obs.Ojson.t
(** [{"count", "min", "mean", "p50", "p90", "p99", "p999", "max"}]. *)

val experiment_json :
  name:string ->
  fs:string ->
  ops:int ->
  elapsed_ns:int64 ->
  Hinfs_obs.Obs.t ->
  Hinfs_obs.Ojson.t
(** One benchmark cell: throughput plus latency histograms split into
    ["latency_ns"] (op classes) and ["phases_ns"] (internal phases), the
    sampled-gauge summaries under ["counters"], and sink health under
    ["obs"]. *)

val bench_json :
  config:(string * Hinfs_obs.Ojson.t) list ->
  Hinfs_obs.Ojson.t list ->
  Hinfs_obs.Ojson.t
(** The top-level file: schema tag, version, run configuration, and the
    experiment list. *)

val write_file : string -> Hinfs_obs.Ojson.t -> unit
(** Pretty-print the JSON to [path] (diff-friendly, trailing newline). *)
