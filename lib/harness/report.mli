(** Table/figure rendering helpers for the benchmark harness. *)

val hr : Format.formatter -> int -> unit
val heading : Format.formatter -> string -> unit
val subheading : Format.formatter -> string -> unit

val bar : float -> max_value:float -> width:int -> string
(** A unit-less horizontal bar for quick visual comparison. *)

val table : Format.formatter -> header:string list -> string list list -> unit
(** Aligned table: header row, separator, then the rows. *)

val persistence : Format.formatter -> Hinfs_stats.Stats.t -> unit
(** Per-category clflush (issued / dirty-line) and mfence counters; silent
    when the run recorded none. *)

val block_layer : Format.formatter -> Hinfs_stats.Stats.t -> unit
(** NVMMBD request counters (bios issued, tier-absorbed writes); silent
    when the run touched no block device. *)

val media : Format.formatter -> Hinfs_stats.Stats.t -> unit
(** Media-fault counters (injected faults, retries, scrub repairs, CRC
    mismatches); silent when the run recorded none. *)

val recovery : Format.formatter -> Hinfs_stats.Stats.t -> unit
(** Mount-time log-recovery counters (passes run, transactions rolled back,
    unusable records dropped); silent when every mount was clean. *)

val latency : Format.formatter -> Hinfs_obs.Obs.t -> unit
(** Per-span latency histogram table (count/p50/p90/p99/p999/max/mean in
    virtual ns); silent when the sink recorded no spans. *)

val gauges : Format.formatter -> Hinfs_obs.Obs.t -> unit
(** Sampled-gauge statistics from the periodic sampler; silent when no
    samples were recorded. *)

val f0 : float -> string
val f1 : float -> string
val f2 : float -> string
val ms : int64 -> string
(** Nanoseconds rendered as milliseconds with two decimals. *)

val pct : float -> string
(** A fraction rendered as a percentage. *)
