(* Machine-readable performance summaries: the BENCH_HINFS.json schema.

   One JSON object per benchmark run, carrying per-experiment throughput
   plus full latency-histogram summaries keyed by op class ("latency_ns")
   and internal phase ("phases_ns"), and sampled-gauge statistics
   ("counters"). Everything is derived from deterministic virtual-clock
   data, so two runs with the same seed must produce byte-identical
   files — scripts/bench_check.sh enforces exactly that. *)

module Obs = Hinfs_obs.Obs
module Hist = Hinfs_obs.Hist
module Ojson = Hinfs_obs.Ojson

let schema_version = 1

let summary_json (s : Hist.summary) =
  Ojson.Obj
    [
      ("count", Ojson.Int s.Hist.count);
      ("min", Ojson.Int s.Hist.min);
      ("mean", Ojson.Float s.Hist.mean);
      ("p50", Ojson.Int s.Hist.p50);
      ("p90", Ojson.Int s.Hist.p90);
      ("p99", Ojson.Int s.Hist.p99);
      ("p999", Ojson.Int s.Hist.p999);
      ("max", Ojson.Int s.Hist.max);
    ]

(* Both syscall op classes ("op.*") and serving-layer request classes
   ("req.*") are latency classes: they land in "latency_ns" where the
   bench_compare gate watches their p50/p99. Internal phases (including
   the srv.* breakdowns) land in "phases_ns". *)
let is_op_kind k =
  let n = Obs.kind_name k in
  (String.length n > 3 && String.sub n 0 3 = "op.")
  || (String.length n > 4 && String.sub n 0 4 = "req.")

(* One benchmark cell: a (workload, fs) run with its obs sink. *)
let experiment_json ~name ~fs ~ops ~elapsed_ns obs =
  let throughput =
    if Int64.compare elapsed_ns 0L > 0 then
      float_of_int ops /. (Int64.to_float elapsed_ns /. 1e9)
    else 0.0
  in
  let hists = Obs.nonempty_hists obs in
  let ops_h, phases_h = List.partition (fun (k, _) -> is_op_kind k) hists in
  let hist_obj entries =
    Ojson.Obj
      (List.map (fun (k, s) -> (Obs.kind_name k, summary_json s)) entries)
  in
  Ojson.Obj
    [
      ("name", Ojson.String name);
      ("fs", Ojson.String fs);
      ("ops", Ojson.Int ops);
      ("elapsed_ns", Ojson.Int (Int64.to_int elapsed_ns));
      ("throughput_ops_per_sec", Ojson.Float throughput);
      ("latency_ns", hist_obj ops_h);
      ("phases_ns", hist_obj phases_h);
      ( "counters",
        Ojson.Obj
          (List.map
             (fun (n, s) -> (n, summary_json s))
             (Obs.counter_summaries obs)) );
      ( "obs",
        Ojson.Obj
          [
            ("open_spans", Ojson.Int (Obs.open_spans obs));
            ("mismatches", Ojson.Int (Obs.mismatches obs));
            ("dropped_events", Ojson.Int (Obs.dropped_events obs));
          ] );
    ]

let bench_json ~config experiments =
  Ojson.Obj
    [
      ("schema", Ojson.String "hinfs-bench");
      ("version", Ojson.Int schema_version);
      ("config", Ojson.Obj config);
      ("experiments", Ojson.List experiments);
    ]

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Ojson.to_string_pretty json))
