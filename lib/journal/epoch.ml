(* The epoch record: the single-cacheline commit point for cross-shard
   transactions.

   Per-shard cacheline logs commit single-shard transactions with ordinary
   commit entries. A cross-shard operation instead stamps one transaction
   per shard with a shared epoch id (Cacheline_log.prepare_epoch) and then
   persists this record; because the record is one cacheline, its store is
   atomic, and every participant becomes durable at the same instant.

   Record layout (first cacheline of the epoch block):
     0..7    committed epoch (u64 LE): all epochs <= this are committed
     8..11   CRC-32C over bytes [0, 8)
     12      valid flag (0xE7)

   The record is generation-local: mount resets it to zero (after journal
   recovery, before the file system is usable), so a stale committed epoch
   from a previous mount can never validate a new generation's entries.
   Runtime epochs start at 1. *)

module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Stats = Hinfs_stats.Stats
module Crc32c = Hinfs_structures.Crc32c

let record_size = 64
let valid_magic = 0xE7
let cat = Stats.Journal

type t = {
  device : Device.t;
  addr : int;
  (* The epoch barrier. The record is a watermark ("all epochs <= N are
     committed"), so epoch N must not be covered while an earlier epoch is
     still mid-prepare: allocate-prepare-commit sections serialize here.
     Cross-shard operations are rare; single-shard commits never touch
     this. *)
  barrier : Hinfs_sim.Resource.t;
  mutable committed : int; (* highest epoch persisted as committed *)
  mutable next : int; (* next epoch id to hand out *)
  mutable commits : int; (* epoch-record commits this mount (gauge) *)
}

let record_image epoch =
  let b = Bytes.make record_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int epoch);
  Bytes.set_int32_le b 8 (Int32.of_int (Crc32c.digest b ~off:0 ~len:8));
  Bytes.set_uint8 b 12 valid_magic;
  b

let record_addr device ~block =
  block * (Device.config device).Config.block_size

(* Untimed peek for mount-time recovery: the committed epoch a crash left
   behind. A poisoned, torn, or never-written record reads as 0 — no epoch
   committed — which rolls prepared cross-shard transactions back, the
   conservative direction. *)
let read_committed device ~block =
  let addr = record_addr device ~block in
  if Device.verify_range device ~addr ~len:record_size <> [] then 0
  else begin
    let b = Device.peek_persistent device ~addr ~len:record_size in
    if Bytes.get_uint8 b 12 <> valid_magic then 0
    else begin
      let stored = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
      if stored <> Crc32c.digest b ~off:0 ~len:8 then 0
      else Int64.to_int (Bytes.get_int64_le b 0)
    end
  end

(* Reset the record to "no epoch committed" (mount, after recovery).
   Recorder-visible and fenced, so crash enumeration covers a re-crash in
   the middle of the reset; also heals a poisoned record line. *)
let reset device ~block =
  let b = record_image 0 in
  Device.poke_flushed device ~addr:(record_addr device ~block) ~src:b ~off:0
    ~len:record_size;
  Device.fence_untimed device

let create device ~block =
  reset device ~block;
  {
    device;
    addr = record_addr device ~block;
    barrier = Hinfs_sim.Resource.create ~name:"epoch-barrier" ~capacity:1;
    committed = 0;
    next = 1;
    commits = 0;
  }

let committed t = t.committed
let commits t = t.commits

(* Untimed re-persist of the current watermark: the scrubber's poison
   repair for the record's line. Unlike [reset] this keeps the runtime
   committed epoch, so a crash right after the heal still recovers any
   cross-shard commit whose journals have not been checkpointed yet. *)
let heal t =
  let b = record_image t.committed in
  Device.poke_flushed t.device ~addr:t.addr ~src:b ~off:0 ~len:record_size;
  Device.fence_untimed t.device

let next_epoch t =
  let e = t.next in
  t.next <- e + 1;
  e

(* Run one allocate-prepare-commit section under the barrier: [f] receives
   a fresh epoch id, prepares every participant, and commits the record
   before returning. *)
let with_barrier t f =
  Hinfs_sim.Resource.with_resource t.barrier 1 (fun () -> f (next_epoch t))

(* Persist the record with [epoch] as the committed watermark: the atomic
   commit point. Timed (this is the cross-shard commit's critical path).
   Epochs are handed out and committed in increasing order; a concurrent
   later committer simply advances the watermark further, which also
   covers this epoch. *)
let commit t epoch =
  if epoch <= t.committed then ()
  else begin
    let b = record_image epoch in
    Device.write_cached t.device ~cat ~addr:t.addr ~src:b ~off:0
      ~len:record_size;
    Device.clflush t.device ~cat ~addr:t.addr ~len:record_size;
    Device.mfence t.device ~cat;
    t.committed <- epoch;
    t.commits <- t.commits + 1
  end
