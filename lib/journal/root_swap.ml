(* Two-slot CRC-32C'd root descriptor: the single publication point of the
   CoW substrate. Slot layout (64 bytes = one cacheline):

     0  u32  magic 0x436F5721 ("CoW!")
     4  u32  reserved (zero)
     8  u64  seq
     16 u64  ptrs.(0) .. ptrs.(4)
     56 u32  CRC-32C over bytes [0, 56)
     60 u32  reserved (zero)

   Commit [seq] always targets slot [seq land 1]: the slot holding the
   previously committed root is never touched, so no crash image can lose
   both roots. *)

module Device = Hinfs_nvmm.Device
module Stats = Hinfs_stats.Stats
module Crc32c = Hinfs_structures.Crc32c

let magic = 0x436F5721
let n_ptrs = 5
let slot_size = 64
let region_size = 2 * slot_size
let crc_off = 56

type desc = { seq : int64; ptrs : int64 array }

let encode d =
  if Array.length d.ptrs <> n_ptrs then
    invalid_arg "Root_swap.encode: wrong ptrs arity";
  let b = Bytes.make slot_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int magic);
  Bytes.set_int64_le b 8 d.seq;
  for i = 0 to n_ptrs - 1 do
    Bytes.set_int64_le b (16 + (8 * i)) d.ptrs.(i)
  done;
  let crc = Crc32c.digest b ~off:0 ~len:crc_off in
  Bytes.set_int32_le b crc_off (Int32.of_int crc);
  b

let decode b =
  if Bytes.length b < slot_size then None
  else if Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF <> magic then
    None
  else
    let stored = Int32.to_int (Bytes.get_int32_le b crc_off) land 0xFFFFFFFF in
    if Crc32c.digest b ~off:0 ~len:crc_off <> stored then None
    else
      let seq = Bytes.get_int64_le b 8 in
      let ptrs = Array.init n_ptrs (fun i -> Bytes.get_int64_le b (16 + (8 * i))) in
      Some { seq; ptrs }

let has_magic b =
  Bytes.length b >= 4
  && Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF = magic

let write_initial device ~addr d =
  let b = encode d in
  Device.poke_flushed device ~addr ~src:b ~off:0 ~len:slot_size;
  Device.poke_flushed device ~addr:(addr + slot_size) ~src:b ~off:0
    ~len:slot_size;
  Device.fence_untimed device

let commit device ~cat ~addr d =
  let slot = Int64.to_int d.seq land 1 in
  let slot_addr = addr + (slot * slot_size) in
  let b = encode d in
  Device.write_cached device ~cat ~addr:slot_addr ~src:b ~off:0 ~len:slot_size;
  Device.clflush device ~cat ~addr:slot_addr ~len:slot_size;
  Device.mfence device ~cat

(* A slot is invalid if its line is poisoned or its magic/CRC fail. *)
let read_slot device ~addr =
  let poisoned = Device.verify_range device ~addr ~len:slot_size <> [] in
  let b = Device.peek device ~addr ~len:slot_size in
  if poisoned then (None, has_magic b) else (decode b, has_magic b)

let repair device ~addr winner =
  let b = encode winner in
  Device.poke_flushed device ~addr ~src:b ~off:0 ~len:slot_size;
  Device.fence_untimed device

let load device ~addr =
  let d0, m0 = read_slot device ~addr in
  let d1, m1 = read_slot device ~addr:(addr + slot_size) in
  match (d0, d1) with
  | None, None -> if m0 || m1 then Error `Corrupt else Error `Absent
  | Some d, None ->
    repair device ~addr:(addr + slot_size) d;
    Ok d
  | None, Some d ->
    repair device ~addr d;
    Ok d
  | Some a, Some b ->
    (* Newest wins; ties (both freshly formatted) prefer slot 0. *)
    let w, loser_addr, stale =
      if Int64.compare b.seq a.seq > 0 then (b, addr, true)
      else (a, addr + slot_size, Int64.compare a.seq b.seq > 0)
    in
    if stale then repair device ~addr:loser_addr w;
    Ok w
