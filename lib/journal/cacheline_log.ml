(* PMFS-style fine-grained undo journal (paper §4.1).

   Metadata updates are journaled at cacheline granularity: before updating
   a metadata range in place, its old contents are appended to the log as
   64-byte entries whose [valid] flag is written last — relying on the
   architectural guarantee that writes to one cacheline are not reordered,
   exactly as PMFS does. Commit writes a commit entry; checkpointing then
   clears the transaction's entries (data entries strictly before the
   commit entry, so recovery can never roll back a committed transaction).

   Entry layout (64 B, one cacheline):
     0..7    target address
     8..11   transaction id
     12..15  global sequence number
     16..17  payload length (<= 40)
     18      entry type (1 = undo data, 2 = commit)
     19..58  payload (old contents)
     59..62  CRC-32C over bytes [0, 59)
     63      valid flag (0xA5)

   Recovery scans the whole region for valid entries, skipping poisoned
   cachelines and entries whose checksum does not match (a torn or corrupt
   record is never trusted — it is counted as dropped instead):
   transactions with a commit entry are discarded; the rest are rolled back
   by applying their undo payloads in decreasing sequence order. *)

module Proc = Hinfs_sim.Proc
module Condvar = Hinfs_sim.Condvar
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config
module Crc32c = Hinfs_structures.Crc32c
module Obs = Hinfs_obs.Obs

let entry_size = 64
let payload_capacity = 40
let crc_off = 59
let valid_magic = 0xA5
let type_data = 1
let type_commit = 2

(* Cross-shard commit entry: carries an 8-byte epoch id. The transaction is
   durable iff the filesystem's epoch record holds an id >= this one, so N
   per-shard transactions all stamped with one epoch commit atomically when
   the (single-cacheline) epoch record lands. *)
let type_epoch_commit = 3

exception Journal_full

type txn = {
  id : int;
  mutable slots : int list; (* data-entry slots, newest first *)
  mutable ranges : (int * int) list; (* target ranges to flush at commit *)
  logged : (int * int, unit) Hashtbl.t; (* ranges already journaled *)
  mutable committed : bool;
  mutable epoch_slot : int option; (* slot of the epoch-commit entry *)
}

type t = {
  device : Device.t;
  base : int; (* byte address of the region *)
  (* Log-tail serialization: reserving a slot + sequence number holds the
     tail, like PMFS's journal lock around the tail-pointer bump. The
     reservation is instantaneous unless the log is under pressure and has
     to checkpoint retired transactions inline — per-shard logs shrink
     that pressure. Uncontended acquisition costs nothing. *)
  tail : Hinfs_sim.Resource.t;
  capacity : int; (* number of entry slots *)
  slot_free : bool array;
  mutable free_slots : int;
  mutable cursor : int; (* next-fit slot scan position *)
  mutable next_txn : int;
  mutable next_seq : int;
  mutable live_txns : int;
  (* background log cleaner (PMFS's pmfs_clean_journal runs in a kthread;
     checkpointing entries off the critical path is what keeps commit
     latency low) *)
  pending_clean : (int list * int) Queue.t; (* (data slots, commit slot) *)
  mutable cleaner : Condvar.t option;
  mutable stop_cleaner : bool;
  (* statistics *)
  mutable txns_committed : int;
  mutable entries_written : int;
  (* operation-level fault hook: [true] = fail this slot allocation *)
  mutable injector : (unit -> bool) option;
}

let cat = Stats.Journal

let create device ~first_block ~blocks =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  if blocks <= 0 then invalid_arg "Cacheline_log.create: empty region";
  let base = first_block * block_size in
  let capacity = blocks * block_size / entry_size in
  {
    device;
    base;
    tail =
      Hinfs_sim.Resource.create
        ~name:(Printf.sprintf "journal-tail@%d" first_block)
        ~capacity:1;
    capacity;
    slot_free = Array.make capacity true;
    free_slots = capacity;
    cursor = 0;
    next_txn = 1;
    next_seq = 1;
    live_txns = 0;
    pending_clean = Queue.create ();
    cleaner = None;
    stop_cleaner = false;
    txns_committed = 0;
    entries_written = 0;
    injector = None;
  }

let set_fault_injector t f = t.injector <- f

(* Re-arm a live log handle after its on-media region was recovered and
   wiped out-of-band (the online shard-repair path runs {!recover} over
   the region while the mount holds this [t]). All slots are free again;
   pending-clean work refers to entries the wipe already zeroed, so it is
   dropped rather than replayed. Caller must ensure no live transactions
   ([live_txns t = 0]) — repair quarantines the shard first. *)
let reset_runtime t =
  if t.live_txns > 0 then
    invalid_arg "Cacheline_log.reset_runtime: live transactions";
  Array.fill t.slot_free 0 t.capacity true;
  t.free_slots <- t.capacity;
  t.cursor <- 0;
  Queue.clear t.pending_clean

let capacity t = t.capacity
let free_slots t = t.free_slots
let live_txns t = t.live_txns
let txns_committed t = t.txns_committed
let entries_written t = t.entries_written

let slot_addr t slot = t.base + (slot * entry_size)

(* Zero a retired transaction's entries on the medium and free the slots:
   data entries first, fence, then the commit entry, so a crash can never
   expose data entries without their commit. *)
let clean_txn ?(background = false) t (slots, commit_slot) =
  let zero = Bytes.make entry_size '\000' in
  let clear slot =
    let addr = t.base + (slot * entry_size) in
    Device.write_cached t.device ~cat ~addr ~src:zero ~off:0 ~len:entry_size;
    Device.clflush ~background t.device ~cat ~addr ~len:entry_size;
    t.slot_free.(slot) <- true;
    t.free_slots <- t.free_slots + 1
  in
  List.iter clear slots;
  Device.mfence t.device ~cat;
  clear commit_slot;
  Device.mfence t.device ~cat

let drain_pending ?background t =
  while not (Queue.is_empty t.pending_clean) do
    clean_txn ?background t (Queue.pop t.pending_clean)
  done

let alloc_slot t =
  (* Injected failures look exactly like a full journal, so callers
     exercise their genuine backpressure/abort paths. *)
  (match t.injector with
  | Some f when f () -> raise Journal_full
  | _ -> ());
  (* Under pressure, checkpoint retired transactions inline (PMFS also
     kicks its cleaner synchronously when the log fills). *)
  if t.free_slots = 0 then drain_pending t;
  if t.free_slots = 0 then raise Journal_full;
  let rec scan i remaining =
    if remaining = 0 then raise Journal_full
    else if t.slot_free.(i) then begin
      t.slot_free.(i) <- false;
      t.free_slots <- t.free_slots - 1;
      t.cursor <- (i + 1) mod t.capacity;
      i
    end
    else scan ((i + 1) mod t.capacity) (remaining - 1)
  in
  scan t.cursor t.capacity

let release_slot t slot =
  t.slot_free.(slot) <- true;
  t.free_slots <- t.free_slots + 1

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live_txns <- t.live_txns + 1;
  {
    id;
    slots = [];
    ranges = [];
    logged = Hashtbl.create 8;
    committed = false;
    epoch_slot = None;
  }

let txn_committed txn = txn.committed

(* Build one entry image: checksum set before the valid flag, so a record
   is only ever valid-with-CRC (single-cacheline writes are not reordered
   internally, the same guarantee the valid flag already relies on). *)
let encode_entry ~txn_id ~seq ~entry_type ~addr ~payload =
  if Bytes.length payload > payload_capacity then
    invalid_arg "Cacheline_log.encode_entry: payload too large";
  let entry = Bytes.make entry_size '\000' in
  Bytes.set_int64_le entry 0 (Int64.of_int addr);
  Bytes.set_int32_le entry 8 (Int32.of_int txn_id);
  Bytes.set_int32_le entry 12 (Int32.of_int seq);
  Bytes.set_uint16_le entry 16 (Bytes.length payload);
  Bytes.set_uint8 entry 18 entry_type;
  Bytes.blit payload 0 entry 19 (Bytes.length payload);
  Bytes.set_int32_le entry crc_off
    (Int32.of_int (Crc32c.digest entry ~off:0 ~len:crc_off));
  Bytes.set_uint8 entry 63 valid_magic;
  entry

let entry_crc_ok raw =
  let stored =
    Int32.to_int (Bytes.get_int32_le raw crc_off) land 0xFFFFFFFF
  in
  stored = Crc32c.digest raw ~off:0 ~len:crc_off

(* Append one entry and persist it (write line, clflush, fence). Only the
   tail reservation (slot grab + sequence number) holds the log tail —
   PMFS's journal lock likewise covers just the tail-pointer bump, not the
   entry stores. The persist goes to the reserved slot's private cacheline,
   so appenders only serialize when the log is under pressure and a
   reservation has to checkpoint retired transactions inline. *)
let write_entry t ~txn_id ~entry_type ~addr ~payload =
  let slot, seq =
    Hinfs_sim.Resource.with_resource t.tail 1 (fun () ->
        let slot = alloc_slot t in
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        (slot, seq))
  in
  let entry = encode_entry ~txn_id ~seq ~entry_type ~addr ~payload in
  let entry_addr = slot_addr t slot in
  Device.write_cached t.device ~cat ~addr:entry_addr ~src:entry ~off:0
    ~len:entry_size;
  Device.clflush t.device ~cat ~addr:entry_addr ~len:entry_size;
  Device.mfence t.device ~cat;
  t.entries_written <- t.entries_written + 1;
  slot

(* Log the current (pre-update) contents of [addr, addr+len) so they can be
   restored if the transaction does not commit. Must be called before the
   in-place update. *)
let log t txn ~addr ~len =
  if txn.committed then invalid_arg "Cacheline_log.log: txn already committed";
  if len < 0 then invalid_arg "Cacheline_log.log: negative length";
  (* Re-logging a range inside one transaction is redundant: undo entries
     are applied newest-first, so the oldest (first) logged value wins
     regardless. Skipping duplicates keeps long-lived ordered transactions
     (HiNFS pending txns) from exhausting the log. *)
  if Hashtbl.mem txn.logged (addr, len) then ()
  else begin
  Hashtbl.replace txn.logged (addr, len) ();
  let rec chunks off remaining =
    if remaining > 0 then begin
      let chunk = min payload_capacity remaining in
      let old = Device.peek t.device ~addr:(addr + off) ~len:chunk in
      let slot =
        write_entry t ~txn_id:txn.id ~entry_type:type_data ~addr:(addr + off)
          ~payload:old
      in
      txn.slots <- slot :: txn.slots;
      chunks (off + chunk) (remaining - chunk)
    end
  in
  chunks 0 len;
  if len > 0 then txn.ranges <- (addr, len) :: txn.ranges
  end

(* Clear a slot's valid flag on the medium and free it. *)
let clear_slot t slot =
  let zero = Bytes.make entry_size '\000' in
  let addr = slot_addr t slot in
  Device.write_cached t.device ~cat ~addr ~src:zero ~off:0 ~len:entry_size;
  Device.clflush t.device ~cat ~addr ~len:entry_size;
  release_slot t slot

let commit t txn =
  if txn.committed then
    invalid_arg "Cacheline_log.commit: txn already committed";
  Obs.span_begin Obs.Journal_commit;
  match
    begin
      (* 1. Persist the in-place updates covered by this transaction. *)
      List.iter
        (fun (addr, len) -> Device.clflush t.device ~cat ~addr ~len)
        txn.ranges;
      Device.mfence t.device ~cat;
      (* 2. Persist the commit entry: the transaction is now durable. *)
      let commit_slot =
        write_entry t ~txn_id:txn.id ~entry_type:type_commit ~addr:0
          ~payload:Bytes.empty
      in
      txn.committed <- true;
      t.txns_committed <- t.txns_committed + 1;
      t.live_txns <- t.live_txns - 1;
      (* A transaction that was [prepare_epoch]ed but then committed the
         ordinary way (e.g. the cross-shard path degraded to per-shard
         commits) still has a valid epoch entry on the medium; clean it
         with the rest. *)
      let slots =
        match txn.epoch_slot with
        | Some s -> s :: txn.slots
        | None -> txn.slots
      in
      (* 3. Checkpoint: hand the entries to the background cleaner when one
         is running; otherwise clean inline. *)
      match t.cleaner with
      | Some cv ->
        Queue.add (slots, commit_slot) t.pending_clean;
        ignore (Condvar.signal cv)
      | None -> clean_txn t (slots, commit_slot)
    end
  with
  | () -> Obs.span_end Obs.Journal_commit
  | exception e ->
    Obs.span_end Obs.Journal_commit;
    raise e

(* --- epoch-based cross-shard commit ---

   A cross-shard operation holds one transaction per touched shard. Each
   is [prepare_epoch]ed: its in-place updates are persisted and an
   epoch-commit entry carrying the shared epoch id is appended — but the
   transaction is NOT yet durable. The caller then persists the epoch
   record (a single-cacheline store, the atomic commit point) and calls
   [finish_epoch] on each transaction to checkpoint it. A crash before the
   record lands rolls every participant back at recovery; a crash after
   keeps them all. *)

let prepare_epoch t txn ~epoch =
  if txn.committed then
    invalid_arg "Cacheline_log.prepare_epoch: txn already committed";
  if txn.epoch_slot <> None then
    invalid_arg "Cacheline_log.prepare_epoch: txn already prepared";
  (* 1. Persist the in-place updates covered by this transaction. *)
  List.iter
    (fun (addr, len) -> Device.clflush t.device ~cat ~addr ~len)
    txn.ranges;
  Device.mfence t.device ~cat;
  (* 2. Persist the epoch-commit entry. Not a durability point yet: the
     entry only takes effect once the epoch record covers [epoch]. *)
  let payload = Bytes.create 8 in
  Bytes.set_int64_le payload 0 (Int64.of_int epoch);
  let slot =
    write_entry t ~txn_id:txn.id ~entry_type:type_epoch_commit ~addr:0
      ~payload
  in
  txn.epoch_slot <- Some slot

(* The epoch record covering this transaction's epoch is durable: retire
   the transaction exactly as [commit] would after its commit entry. *)
let finish_epoch t txn =
  match txn.epoch_slot with
  | None -> invalid_arg "Cacheline_log.finish_epoch: txn not prepared"
  | Some slot ->
    txn.committed <- true;
    t.txns_committed <- t.txns_committed + 1;
    t.live_txns <- t.live_txns - 1;
    (match t.cleaner with
    | Some cv ->
      Queue.add (txn.slots, slot) t.pending_clean;
      ignore (Condvar.signal cv)
    | None -> clean_txn t (txn.slots, slot))

(* Abort: restore old contents (volatile first, then persisted) and clear
   the entries. Used on ENOSPC-style failure paths. *)
let abort t txn =
  if txn.committed then invalid_arg "Cacheline_log.abort: txn committed";
  (* Undo newest-first so the oldest logged value lands last. *)
  let entries =
    List.map
      (fun slot ->
        let raw =
          Device.peek t.device ~addr:(slot_addr t slot) ~len:entry_size
        in
        (slot, raw))
      txn.slots
  in
  List.iter
    (fun (_slot, raw) ->
      let addr = Int64.to_int (Bytes.get_int64_le raw 0) in
      let len = Bytes.get_uint16_le raw 16 in
      let payload = Bytes.sub raw 19 len in
      Device.write_cached t.device ~cat ~addr ~src:payload ~off:0 ~len;
      Device.clflush t.device ~cat ~addr ~len)
    entries;
  Device.mfence t.device ~cat;
  List.iter (fun slot -> clear_slot t slot) txn.slots;
  (* A prepared-but-never-committed epoch entry (the epoch record did not
     land) is dead weight: clear it with the data entries. *)
  (match txn.epoch_slot with
  | Some slot ->
    clear_slot t slot;
    txn.epoch_slot <- None
  | None -> ());
  (* Order the cleared slots before anything that follows the abort: without
     this fence a crash can persist a later transaction's update yet still
     hold this transaction's (aborted) undo entries, and recovery would roll
     the later committed value back. *)
  Device.mfence t.device ~cat;
  t.live_txns <- t.live_txns - 1

(* --- background cleaner lifecycle --- *)

(* Spawn the log-cleaner process (call from inside a simulation process).
   It checkpoints committed transactions' entries with background-priority
   NVMM writes, keeping the commit path short. *)
let start_cleaner t =
  if t.cleaner <> None then invalid_arg "Cacheline_log: cleaner running";
  let cv = Condvar.create (Device.engine t.device) in
  t.cleaner <- Some cv;
  Proc.spawn ~name:"journal-cleaner" (fun () ->
      let rec loop () =
        if not t.stop_cleaner then begin
          if Queue.is_empty t.pending_clean then
            ignore (Condvar.wait_timeout cv ~timeout:100_000_000L);
          drain_pending ~background:true t;
          loop ()
        end
      in
      loop ())

(* Stop the cleaner and checkpoint whatever is still queued (unmount must
   leave no stale valid entries on the medium). *)
let stop_cleaner t =
  (match t.cleaner with
  | Some cv ->
    t.stop_cleaner <- true;
    ignore (Condvar.broadcast cv);
    t.cleaner <- None
  | None -> ());
  drain_pending t

(* --- recovery ---

   Runs at mount time on the persistent image (untimed: mount-time work is
   not part of any measured figure). Reports the transactions rolled back
   and the records dropped because they could not be trusted. *)

type recovery = {
  rolled_back : int; (* uncommitted transactions undone *)
  dropped : int; (* slots discarded: poisoned line or checksum mismatch *)
}

type recovered_entry = {
  r_slot : int;
  r_addr : int;
  r_txn : int;
  r_seq : int;
  r_len : int;
  r_type : int;
  r_payload : Bytes.t;
}

let recover_body device ~first_block ~blocks ~committed_epoch =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  let base = first_block * block_size in
  let capacity = blocks * block_size / entry_size in
  let stats = Device.stats device in
  let entries = ref [] in
  let dropped = ref 0 in
  for slot = 0 to capacity - 1 do
    let addr = base + (slot * entry_size) in
    if Device.verify_range device ~addr ~len:entry_size <> [] then
      (* Poisoned journal line: whatever it held is unreadable. Counted as
         dropped conservatively (an empty slot and a lost record cannot be
         told apart); the region wipe below rewrites — and so heals — it. *)
      incr dropped
    else begin
      let raw = Device.peek_persistent device ~addr ~len:entry_size in
      if Bytes.get_uint8 raw 63 = valid_magic then begin
        if not (entry_crc_ok raw) then begin
          (* Torn or corrupt record: never trusted, never applied. *)
          Hinfs_stats.Stats.add_crc_mismatch stats;
          incr dropped
        end
        else
          entries :=
            {
              r_slot = slot;
              r_addr = Int64.to_int (Bytes.get_int64_le raw 0);
              r_txn = Int32.to_int (Bytes.get_int32_le raw 8);
              r_seq = Int32.to_int (Bytes.get_int32_le raw 12);
              r_len = Bytes.get_uint16_le raw 16;
              r_type = Bytes.get_uint8 raw 18;
              r_payload = Bytes.sub raw 19 (Bytes.get_uint16_le raw 16);
            }
            :: !entries
      end
    end
  done;
  (* A transaction is committed if it carries a plain commit entry, or an
     epoch-commit entry whose epoch the persistent epoch record covers. *)
  let epoch_of e =
    if e.r_len >= 8 then Int64.to_int (Bytes.get_int64_le e.r_payload 0)
    else max_int
  in
  let commits_txn e =
    e.r_type = type_commit
    || (e.r_type = type_epoch_commit && epoch_of e <= committed_epoch)
  in
  let committed = Hashtbl.create 8 in
  List.iter
    (fun e -> if commits_txn e then Hashtbl.replace committed e.r_txn ())
    !entries;
  let to_undo =
    List.filter
      (fun e -> e.r_type = type_data && not (Hashtbl.mem committed e.r_txn))
      !entries
  in
  (* Apply undo payloads newest-first: the oldest value wins. The stores
     are recorded ([poke_flushed]) so a crash *during* recovery is
     enumerable; they are also idempotent — each payload is an absolute old
     value, so a re-crashed re-recovery that replays them lands on the same
     image. *)
  let ordered =
    List.sort (fun a b -> compare b.r_seq a.r_seq) to_undo
  in
  List.iter
    (fun e ->
      Device.poke_flushed device ~addr:e.r_addr ~src:e.r_payload ~off:0
        ~len:e.r_len)
    ordered;
  (* Undo data is ordered before any journal wipe: a re-crash after this
     fence still finds every entry intact and re-runs the same rollback. *)
  Device.fence_untimed device;
  (* Wipe the journal region in fenced passes. Two hazards bound the order:
     a commit entry must never disappear while data entries are still on
     the medium (a re-crash in the middle of a single-pass wipe could keep
     a committed transaction's data entries but lose its commit entry, and
     the next recovery would roll the committed transaction back); and when
     one transaction logged overlapping ranges of the same address, an
     older entry must never be wiped while a newer one survives — the
     survivors' newest-first replay would end on the newer (intermediate)
     value instead of the original. So: the data entries go first, strictly
     newest-first with a fence per entry, making the surviving subset an
     oldest-suffix per address at every crash point; then the rest of the
     region (healing poisoned and torn slots) with the commit entries
     preserved; then, once no data entry can survive, the commit entries
     themselves. *)
  let data_entries =
    List.sort
      (fun a b -> compare b.r_seq a.r_seq)
      (List.filter (fun e -> e.r_type = type_data) !entries)
  in
  let zero_entry = Bytes.make entry_size '\000' in
  List.iter
    (fun e ->
      Device.poke_flushed device
        ~addr:(base + (e.r_slot * entry_size))
        ~src:zero_entry ~off:0 ~len:entry_size;
      Device.fence_untimed device)
    data_entries;
  (* Slots that must outlive the data entries: plain commit entries and
     the epoch-commit entries of committed transactions. (An uncommitted
     epoch entry carries no undo and confers no commit, so losing it to
     the region wipe at any point is harmless either way.) *)
  let commit_slots = Hashtbl.create 8 in
  List.iter
    (fun e -> if commits_txn e then Hashtbl.replace commit_slots e.r_slot ())
    !entries;
  let zero_block = Bytes.make block_size '\000' in
  let slots_per_block = block_size / entry_size in
  for b = 0 to blocks - 1 do
    let img =
      if Hashtbl.length commit_slots = 0 then zero_block
      else begin
        let img = Bytes.make block_size '\000' in
        for s = 0 to slots_per_block - 1 do
          let slot = (b * slots_per_block) + s in
          if Hashtbl.mem commit_slots slot then
            Bytes.blit
              (Device.peek_persistent device
                 ~addr:(base + (slot * entry_size))
                 ~len:entry_size)
              0 img (s * entry_size) entry_size
        done;
        img
      end
    in
    Device.poke_flushed device
      ~addr:((first_block + b) * block_size)
      ~src:img ~off:0 ~len:block_size
  done;
  Device.fence_untimed device;
  (* Second pass: no data entry survives, so the commit entries can go. *)
  Hashtbl.fold (fun slot () acc -> slot :: acc) commit_slots []
  |> List.sort compare
  |> List.iter (fun slot ->
         Device.poke_flushed device
           ~addr:(base + (slot * entry_size))
           ~src:zero_entry ~off:0 ~len:entry_size);
  Device.fence_untimed device;
  let rolled_back = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace rolled_back e.r_txn ()) to_undo;
  { rolled_back = Hashtbl.length rolled_back; dropped = !dropped }

let recover device ?(committed_epoch = 0) ~first_block ~blocks () =
  Obs.span_begin Obs.Journal_recover;
  match recover_body device ~first_block ~blocks ~committed_epoch with
  | r ->
    Obs.span_end Obs.Journal_recover;
    r
  | exception e ->
    Obs.span_end Obs.Journal_recover;
    raise e

(* Fsck helper: number of valid entries currently on the medium in the
   journal region. Immediately after recovery (and after clean unmount)
   this must be zero. *)
let count_valid_entries device ~first_block ~blocks =
  let config = Device.config device in
  let block_size = config.Config.block_size in
  let base = first_block * block_size in
  let capacity = blocks * block_size / entry_size in
  let n = ref 0 in
  for slot = 0 to capacity - 1 do
    let raw =
      Device.peek_persistent device ~addr:(base + (slot * entry_size))
        ~len:entry_size
    in
    if Bytes.get_uint8 raw 63 = valid_magic then incr n
  done;
  !n

(* Run [f] inside a transaction; aborts on exception — including one
   raised by [commit] itself before the commit entry lands (e.g. an
   injected journal-slot failure while appending it): the undo entries are
   still valid, so the abort restores the pre-transaction state. *)
let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | result ->
    (try commit t txn
     with e ->
       if not txn.committed then abort t txn;
       raise e);
    result
  | exception e ->
    if not txn.committed then abort t txn;
    raise e
