(** Two-slot checksummed root descriptor with newest-valid-wins load.

    The CoW substrate commits by publishing a fresh root descriptor: a
    64-byte (one cacheline) record carrying a monotonically increasing
    sequence number, a fixed set of root pointers, and a CRC-32C. Two
    slots alternate — commit [seq] writes slot [seq land 1] — so a torn
    or poisoned store can only damage the slot being written, never the
    previously committed root. {!load} picks the valid slot with the
    highest sequence number and repairs the loser (stale or corrupt)
    from the winner through the recorder-visible reliable-store path, so
    crash enumeration covers a re-crash mid-repair. *)

module Device = Hinfs_nvmm.Device
module Stats = Hinfs_stats.Stats

type desc = {
  seq : int64;  (** commit sequence; strictly increasing across commits *)
  ptrs : int64 array;  (** exactly {!n_ptrs} root pointers / scalars *)
}

val n_ptrs : int
(** Number of 64-bit payload words carried by a descriptor (5). *)

val slot_size : int
(** Bytes per slot: 64, one cacheline. *)

val region_size : int
(** Bytes occupied by the two slots: 128. *)

val encode : desc -> Bytes.t
(** [slot_size] bytes: magic, seq, ptrs, trailing CRC-32C over the rest. *)

val decode : Bytes.t -> desc option
(** [None] if the magic or the checksum does not match. *)

val write_initial : Device.t -> addr:int -> desc -> unit
(** mkfs-time: store the descriptor into both slots through the untimed
    reliable path and fence. *)

val commit : Device.t -> cat:Stats.category -> addr:int -> desc -> unit
(** Timed publication: cached store of the encoded descriptor into slot
    [seq land 1], clflush, mfence. The caller must have fenced the tree
    payload the descriptor points at beforehand. *)

val load : Device.t -> addr:int -> (desc, [ `Absent | `Corrupt ]) result
(** Untimed newest-valid-wins read of both slots (poison-aware: a slot
    whose cacheline is poisoned is invalid). [`Absent] when neither slot
    carries the magic — no root-swap region was ever formatted here;
    [`Corrupt] when at least one slot carries the magic but none
    validates. On success the losing slot, if stale or invalid, is
    rewritten from the winner ({!Device.poke_flushed} +
    {!Device.fence_untimed}) — idempotent mount-time repair. *)
