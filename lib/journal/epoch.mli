(** The epoch record: single-cacheline commit point for cross-shard
    transactions.

    Per-shard {!Cacheline_log}s commit single-shard transactions with
    ordinary commit entries. A cross-shard operation stamps one
    transaction per shard with a shared epoch id
    ({!Cacheline_log.prepare_epoch}), then persists this record — one
    cacheline, hence atomic — making every participant durable at once.
    The record is a watermark: all epochs at or below its value are
    committed. Mount resets it (generation-local), so runtime epochs start
    at 1 and a stale record can never validate a later generation's
    entries. *)

type t

val create : Hinfs_nvmm.Device.t -> block:int -> t
(** Initialise the runtime handle and reset the on-NVMM record to "no
    epoch committed" (call at mount, after journal recovery). *)

val committed : t -> int
(** Highest epoch persisted as committed this mount. *)

val commits : t -> int
(** Number of epoch-record commits this mount (observability gauge). *)

val next_epoch : t -> int

val commit : t -> int -> unit
(** Persist the record with the given epoch as the committed watermark:
    the atomic commit point. Timed; call from inside a simulation
    process. *)

val with_barrier : t -> (int -> 'a) -> 'a
(** Run one allocate-prepare-commit section under the epoch barrier: the
    callback receives a fresh epoch id and must {!commit} it (after
    preparing every participant) before returning. The barrier keeps a
    later epoch's record commit from covering an earlier epoch that is
    still mid-prepare. *)

val heal : t -> unit
(** Untimed re-persist of the current watermark — the scrubber's poison
    repair for the record's line (keeps the runtime committed epoch,
    unlike {!reset}). *)

val read_committed : Hinfs_nvmm.Device.t -> block:int -> int
(** Untimed peek for mount-time recovery: the committed-epoch watermark
    the crash left behind. A poisoned, torn, or absent record reads as 0
    (nothing committed — the conservative direction). *)

val reset : Hinfs_nvmm.Device.t -> block:int -> unit
(** Reset the record to "no epoch committed". Recorder-visible and fenced
    (crash enumeration covers a re-crash mid-reset); heals poison on the
    record's line. *)
