(* JBD2-style block journal for the EXT4 baseline (ordered data mode).

   A running transaction accumulates the numbers of dirty metadata blocks.
   Commit, as in ordered mode jbd2:
   1. flushes the ordered data (callbacks registered by the file system) so
      data reaches its home location before the metadata that points at it;
   2. writes a descriptor block, the metadata block images, and a commit
      block into the journal region (through the block layer, as jbd2 does);
   3. checkpoints immediately: writes the metadata blocks to their home
      locations and resets the journal region for the next transaction.

   Recovery replays the journal if a committed transaction is found whose
   checkpoint may not have completed. *)

module Stats = Hinfs_stats.Stats
module Resource = Hinfs_sim.Resource
module Crc32c = Hinfs_structures.Crc32c
module Obs = Hinfs_obs.Obs

let descriptor_magic = 0x4A424432 (* "JBD2" *)
let commit_magic = 0x434F4D54 (* "COMT" *)

(* Descriptor and commit blocks carry a CRC-32C over the preceding bytes in
   their last four bytes (jbd2's j_chksum): recovery only trusts records
   whose checksum matches, so a torn descriptor or commit write is
   discarded instead of replayed. *)
let seal_block b =
  let n = Bytes.length b - 4 in
  Bytes.set_int32_le b n (Int32.of_int (Crc32c.digest b ~off:0 ~len:n))

let block_crc_ok b =
  let n = Bytes.length b - 4 in
  Int32.to_int (Bytes.get_int32_le b n) land 0xFFFFFFFF
  = Crc32c.digest b ~off:0 ~len:n

type t = {
  bdev : Hinfs_blockdev.Blockdev.t;
  first_block : int;
  blocks : int;
  block_size : int;
  lock : Resource.t; (* serialises commits *)
  mutable txn_id : int;
  mutable running : (int, unit -> Bytes.t) Hashtbl.t;
      (* home block -> current content provider *)
  mutable ordered_data : (unit -> unit) list;
  mutable commits : int;
  mutable blocks_logged : int;
}

let cat = Stats.Journal

let create bdev ~first_block ~blocks =
  let block_size = Hinfs_blockdev.Blockdev.block_size bdev in
  if blocks < 3 then invalid_arg "Block_journal.create: region too small";
  {
    bdev;
    first_block;
    blocks;
    block_size;
    lock = Resource.create ~name:"jbd-commit" ~capacity:1;
    txn_id = 1;
    running = Hashtbl.create 16;
    ordered_data = [];
    commits = 0;
    blocks_logged = 0;
  }

let commits t = t.commits
let blocks_logged t = t.blocks_logged
let running_blocks t = Hashtbl.length t.running

(* Register a dirty metadata block in the running transaction. The content
   provider is called at commit time so the freshest image is journaled. *)
let journal_metadata t ~block ~content =
  Hashtbl.replace t.running block content

(* Register a data-flush obligation that must complete before the next
   commit (ordered mode invariant). *)
let add_ordered_data t flush = t.ordered_data <- flush :: t.ordered_data

(* The block was freed: journaling (and later checkpointing) its old image
   would clobber whoever reallocates it — drop it from the running
   transaction (jbd2's "forget"). *)
let forget t ~block = Hashtbl.remove t.running block

let max_blocks_per_txn t = t.blocks - 2 (* descriptor + commit *)

(* Commit a batch that fits in the journal region. *)
let commit_batch t entries =
  if entries <> [] then begin
    let id = t.txn_id in
    t.txn_id <- id + 1;
    (* 2. Descriptor block. *)
    let descriptor = Bytes.make t.block_size '\000' in
    Bytes.set_int32_le descriptor 0 (Int32.of_int descriptor_magic);
    Bytes.set_int32_le descriptor 4 (Int32.of_int id);
    Bytes.set_int32_le descriptor 8 (Int32.of_int (List.length entries));
    List.iteri
      (fun i (block, _) ->
        Bytes.set_int32_le descriptor (12 + (4 * i)) (Int32.of_int block))
      entries;
    seal_block descriptor;
    Hinfs_blockdev.Blockdev.write_block t.bdev ~cat t.first_block
      ~src:descriptor ~off:0;
    (* Journal copies of the metadata blocks. *)
    let images =
      List.mapi
        (fun i (block, content) ->
          let image = content () in
          if Bytes.length image <> t.block_size then
            invalid_arg "Block_journal: bad metadata block image size";
          Hinfs_blockdev.Blockdev.write_block t.bdev ~cat
            (t.first_block + 1 + i)
            ~src:image ~off:0;
          t.blocks_logged <- t.blocks_logged + 1;
          (block, image))
        entries
    in
    (* Commit block makes the transaction durable. *)
    let commit_block = Bytes.make t.block_size '\000' in
    Bytes.set_int32_le commit_block 0 (Int32.of_int commit_magic);
    Bytes.set_int32_le commit_block 4 (Int32.of_int id);
    seal_block commit_block;
    Hinfs_blockdev.Blockdev.write_block t.bdev ~cat
      (t.first_block + 1 + List.length entries)
      ~src:commit_block ~off:0;
    (* 3. Checkpoint: write metadata home, then retire the journal txn by
       zeroing the descriptor so recovery will not replay it again. *)
    List.iter
      (fun (block, image) ->
        Hinfs_blockdev.Blockdev.write_block t.bdev ~cat block ~src:image
          ~off:0)
      images;
    let zero = Bytes.make t.block_size '\000' in
    Hinfs_blockdev.Blockdev.write_block t.bdev ~cat t.first_block ~src:zero
      ~off:0;
    t.commits <- t.commits + 1
  end

(* Commit the running transaction. Transactions larger than the journal
   region are split into multiple batches, as jbd2 does. If the commit
   fails partway (a media error surfacing from an ordered-data flush or a
   journal write), the not-yet-committed entries are put back into the
   running transaction instead of being dropped — losing them would
   silently skip their metadata on the next commit. *)
let rec commit t =
  Obs.span_begin Obs.Journal_commit;
  match commit_locked t with
  | () -> Obs.span_end Obs.Journal_commit
  | exception e ->
    Obs.span_end Obs.Journal_commit;
    raise e

and commit_locked t =
  Resource.with_resource t.lock 1 @@ fun () ->
  let entries =
    Hashtbl.fold (fun block content acc -> (block, content) :: acc) t.running []
  in
  let ordered = t.ordered_data in
  t.running <- Hashtbl.create 16;
  t.ordered_data <- [];
  (* Deterministic journal image regardless of hash order. *)
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let pending = ref entries in
  try
    (* 1. Ordered data first. *)
    List.iter (fun flush -> flush ()) (List.rev ordered);
    let max_batch = max_blocks_per_txn t in
    let rec batches = function
      | [] -> ()
      | remaining ->
        let rec take n acc rest =
          match rest with
          | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
          | _ -> (List.rev acc, rest)
        in
        let batch, rest = take max_batch [] remaining in
        commit_batch t batch;
        pending := rest;
        batches rest
    in
    batches entries
  with e ->
    (* Re-register what has not been durably committed (batches already
       checkpointed are safe to drop). A newer provider registered since is
       kept — it supersedes this image. *)
    List.iter
      (fun (block, content) ->
        if not (Hashtbl.mem t.running block) then
          Hashtbl.replace t.running block content)
      !pending;
    raise e

(* Mount-time recovery: if the journal holds a committed transaction whose
   checkpoint did not finish, replay it. Untimed. Returns true if a replay
   happened. *)
let recover bdev ~first_block ~blocks =
  let block_size = Hinfs_blockdev.Blockdev.block_size bdev in
  let stats =
    Hinfs_nvmm.Device.stats (Hinfs_blockdev.Blockdev.device bdev)
  in
  let descriptor = Hinfs_blockdev.Blockdev.peek_block bdev first_block in
  let magic = Int32.to_int (Bytes.get_int32_le descriptor 0) in
  if magic <> descriptor_magic then false
  else if not (block_crc_ok descriptor) then begin
    (* Torn descriptor write: the transaction never committed coherently. *)
    Stats.add_crc_mismatch stats;
    let zero = Bytes.make block_size '\000' in
    Hinfs_blockdev.Blockdev.poke_block bdev first_block ~src:zero ~off:0;
    false
  end
  else begin
    let id = Int32.to_int (Bytes.get_int32_le descriptor 4) in
    let count = Int32.to_int (Bytes.get_int32_le descriptor 8) in
    if count < 0 || count > blocks - 2 then false
    else begin
      let commit_block =
        Hinfs_blockdev.Blockdev.peek_block bdev (first_block + 1 + count)
      in
      let cmagic = Int32.to_int (Bytes.get_int32_le commit_block 0) in
      let cid = Int32.to_int (Bytes.get_int32_le commit_block 4) in
      let commit_ok =
        cmagic = commit_magic && cid = id
        &&
        (let ok = block_crc_ok commit_block in
         if not ok then Stats.add_crc_mismatch stats;
         ok)
      in
      if commit_ok then begin
        (* Replay: copy journaled images home. *)
        for i = 0 to count - 1 do
          let home =
            Int32.to_int (Bytes.get_int32_le descriptor (12 + (4 * i)))
          in
          let image =
            Hinfs_blockdev.Blockdev.peek_block bdev (first_block + 1 + i)
          in
          Hinfs_blockdev.Blockdev.poke_block bdev home ~src:image ~off:0
        done;
        let zero = Bytes.make block_size '\000' in
        Hinfs_blockdev.Blockdev.poke_block bdev first_block ~src:zero ~off:0;
        true
      end
      else begin
        (* Uncommitted transaction: discard. *)
        let zero = Bytes.make block_size '\000' in
        Hinfs_blockdev.Blockdev.poke_block bdev first_block ~src:zero ~off:0;
        false
      end
    end
  end
