(** JBD2-style block journal for the EXT4 baseline (ordered data mode).

    Dirty metadata blocks are registered against the running transaction;
    {!commit} flushes ordered data, writes descriptor + metadata images +
    commit block to the journal through the block layer, and checkpoints
    immediately. *)

type t

val create : Hinfs_blockdev.Blockdev.t -> first_block:int -> blocks:int -> t

val commits : t -> int
val blocks_logged : t -> int
val running_blocks : t -> int

val journal_metadata : t -> block:int -> content:(unit -> Bytes.t) -> unit
(** Add a dirty metadata block to the running transaction. [content] is
    called at commit time to obtain the freshest image. *)

val add_ordered_data : t -> (unit -> unit) -> unit
(** Register a data flush that must complete before the next commit. *)

val forget : t -> block:int -> unit
(** Drop a freed block from the running transaction (jbd2 "forget"). *)

val max_blocks_per_txn : t -> int

val commit : t -> unit
(** Commit the running transaction (no-op if it is empty). *)

val recover : Hinfs_blockdev.Blockdev.t -> first_block:int -> blocks:int -> bool
(** Mount-time journal replay; returns [true] if a committed transaction was
    replayed. Descriptor and commit blocks carry a CRC-32C in their last
    four bytes — a record whose checksum fails is discarded, never
    replayed. Untimed. *)

val seal_block : Bytes.t -> unit
(** Set the trailing CRC-32C of a descriptor/commit block image — exposed
    so tests can hand-craft journal records. *)
