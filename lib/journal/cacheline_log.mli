(** PMFS-style cacheline-granular undo journal (paper §4.1).

    Usage protocol, per transaction:
    + {!begin_txn};
    + {!log} each metadata range about to change (before changing it);
    + update the ranges in place with cached writes;
    + {!commit} — flushes the in-place updates, persists a commit entry,
      then checkpoints (clears) the transaction's log entries.

    A crash anywhere in this protocol leaves the metadata either fully
    rolled back (no commit entry found at {!recover} time) or fully applied
    (commit entry found / entries already cleared).

    Locking requirement (standard for undo logs): a range logged by a live
    transaction must not be logged or modified by another transaction until
    the first commits or aborts. The file system guarantees this with its
    namespace and per-inode locks. *)

type t
type txn

exception Journal_full
(** No free log slots: too many concurrent uncommitted transactions for the
    configured journal size. *)

val create : Hinfs_nvmm.Device.t -> first_block:int -> blocks:int -> t

val capacity : t -> int
(** Total entry slots. *)

val free_slots : t -> int
val live_txns : t -> int
val txns_committed : t -> int
val entries_written : t -> int

val begin_txn : t -> txn

val txn_committed : txn -> bool
(** Whether {!commit} completed for this transaction — callers handling a
    commit-time exception must only {!abort} when this is [false]. *)

val log : t -> txn -> addr:int -> len:int -> unit
(** Persist the current contents of the range as undo entries. Call before
    updating the range in place. *)

val commit : t -> txn -> unit
val abort : t -> txn -> unit

(** {2 Epoch-based cross-shard commit}

    A cross-shard operation (rename across shards, multi-file fsync) holds
    one transaction per touched shard, all stamped with one epoch id:
    {!prepare_epoch} each (persists the in-place updates and appends an
    epoch-commit entry, {b not} yet durable), persist the filesystem's
    epoch record ({!Epoch.commit} — the single-cacheline atomic commit
    point), then {!finish_epoch} each to checkpoint. A crash before the
    record covers the epoch rolls every participant back at {!recover}
    time; a crash after keeps them all. *)

val prepare_epoch : t -> txn -> epoch:int -> unit
val finish_epoch : t -> txn -> unit

val with_txn : t -> (txn -> 'a) -> 'a
(** Run [f] in a transaction; commits on return, aborts on exception. *)

val start_cleaner : t -> unit
(** Spawn the background log cleaner (PMFS's journal-cleaning kthread):
    committed transactions' entries are checkpointed off the critical
    path. Call from inside a simulation process. *)

val stop_cleaner : t -> unit
(** Stop the cleaner and checkpoint everything still queued. *)

type recovery = {
  rolled_back : int;  (** uncommitted transactions undone *)
  dropped : int;
      (** slots discarded without being trusted: poisoned cacheline or
          checksum mismatch. Non-zero means recovery may be incomplete —
          the mounting file system degrades to read-only. *)
}

val recover :
  Hinfs_nvmm.Device.t ->
  ?committed_epoch:int ->
  first_block:int ->
  blocks:int ->
  unit ->
  recovery
(** Mount-time recovery on the persistent image: rolls back uncommitted
    transactions and wipes (thereby healing) the journal region. Records
    on poisoned cachelines or failing their CRC-32C are never applied —
    they are counted in [dropped]. A transaction counts as committed if it
    has a commit entry, or an epoch-commit entry whose epoch is at most
    [committed_epoch] (default 0: no epoch is covered). Untimed, but
    visible to the persistence recorder
    ({!Hinfs_nvmm.Device.poke_flushed}) and re-crash idempotent: undo data
    is fenced before the wipe, and the wipe clears data entries strictly
    before (epoch-)commit entries, so a crash at any recovery fence and a
    second recovery land on the same final image. *)

val reset_runtime : t -> unit
(** Re-arm a live log handle after its region was recovered and wiped
    out-of-band ({!recover} run by the online shard-repair path while the
    mount still holds this [t]): marks every slot free and drops pending
    cleaning work (the wipe already zeroed it). Raises [Invalid_argument]
    if transactions are live — quarantine the shard first. *)

val set_fault_injector : t -> (unit -> bool) option -> unit
(** Operation-level fault hook, polled once per entry-slot allocation: when
    it returns [true] the allocation raises {!Journal_full} exactly as a
    full journal would. Used by {!Hinfs_nvmm.Faultops} to force journal
    exhaustion mid-transaction. *)

val encode_entry :
  txn_id:int -> seq:int -> entry_type:int -> addr:int -> payload:Bytes.t ->
  Bytes.t
(** One 64-byte entry image with valid flag and CRC set — exposed so tests
    and crash fixtures can place (and deliberately corrupt) raw records. *)

val entry_crc_ok : Bytes.t -> bool
(** Whether a raw 64-byte entry's stored CRC matches its contents. *)

val type_data : int
val type_commit : int

val type_epoch_commit : int
(** Cross-shard commit entry; its payload is the 8-byte (LE) epoch id. *)

val entry_size : int
val payload_capacity : int

val count_valid_entries :
  Hinfs_nvmm.Device.t -> first_block:int -> blocks:int -> int
(** Number of valid journal entries on the medium in the region — zero
    right after {!recover} and after clean unmount (fsck invariant). *)
