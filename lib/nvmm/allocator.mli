(** DRAM-resident block allocator over a device region (PMFS keeps its free
    lists volatile and rebuilds them at mount; so do we). *)

type t

val create : first_block:int -> count:int -> t
val capacity : t -> int
val free_blocks : t -> int
val used_blocks : t -> int
val contains : t -> int -> bool
val is_allocated : t -> int -> bool

val alloc : t -> int option
(** Allocate one block; returns its absolute block number. *)

val alloc_contiguous : t -> int -> int option
(** Allocate [n] consecutive blocks; returns the first block number. *)

val free : t -> int -> unit
(** @raise Invalid_argument on double free or out-of-region block. *)

val mark_allocated : t -> int -> unit
(** Used when rebuilding allocation state during recovery. *)

val set_fault_injector : t -> (unit -> bool) option -> unit
(** Operation-level fault hook, polled once per {!alloc} /
    {!alloc_contiguous}: when it returns [true] the allocation fails
    ([None]) exactly as exhaustion would. Used by {!Faultops} to force
    ENOSPC / out-of-inodes mid-transaction. *)

val reset : t -> unit
