(* Byte-addressable NVMM device with an explicit CPU-cache model.

   Two layers of state:
   - [persistent]: the NVMM medium itself; survives [crash].
   - [overlay]: cachelines currently dirty in the (volatile) CPU cache.
     Ordinary stores ([write_cached], [set_u*]) land here and are lost on
     [crash] until [clflush]ed. Non-temporal stores ([write_nt]) bypass the
     cache and reach the medium directly, like movnti/clwb streaming copies
     (PMFS's copy_from_user_inatomic_nocache data path).

   Timing: loads cost DRAM speed (the paper assumes symmetric reads); every
   cacheline stored to the medium costs [nvmm_write_ns] and must hold one of
   the N_w bandwidth slots while it streams, reproducing the paper's
   bandwidth emulator. Waiting for a slot is charged to the caller's stats
   category, because that is exactly the foreground/background interference
   the paper discusses (§3.2.1). *)

(* Persistence-event recorder (off by default, zero cost when disabled).

   Under the x86 persistency model a store is volatile until its line is
   flushed, and a flush only becomes *ordered* at the next mfence: a crash
   may persist any subset of the not-yet-fenced line versions, while
   everything fenced is guaranteed on the medium. The recorder keeps, per
   cacheline, the set of contents the medium may legally hold at a crash:

   - [base]: the guaranteed content — last fenced version (or the medium
     content when the line first became pending);
   - [versions]: newer candidate contents, oldest first. A [clflush] pushes
     a flushed-but-unfenced version; a store in a *later epoch* than the
     previous store first snapshots the pre-store cached content (the old
     epoch's value could be evicted on its own); non-temporal stores push
     their post-store medium content (they reach the medium but are only
     ordered by the next fence).

   An [mfence] closes the epoch: every version up to the last *flushed* one
   becomes guaranteed (collapsed into [base]); unflushed cached content
   stays pending. The current dirty overlay line, when present, is always
   an additional candidate (spontaneous eviction). *)
module Record = struct
  type version = { content : Bytes.t; flushed : bool }

  type line = {
    mutable base : Bytes.t;
    mutable versions : version list; (* oldest first *)
    mutable store_epoch : int; (* epoch of last store while dirty; -1 clean *)
  }

  type t = {
    mutable epoch : int; (* fences seen since recording was enabled *)
    lines : (int, line) Hashtbl.t; (* cacheline index -> pending record *)
    mutable stores : int;
    mutable flushes : int;
    mutable fences : int;
    mutable on_fence : unit -> unit;
  }

  let create () =
    {
      epoch = 0;
      lines = Hashtbl.create 256;
      stores = 0;
      flushes = 0;
      fences = 0;
      on_fence = (fun () -> ());
    }
end

type t = {
  engine : Hinfs_sim.Engine.t;
  stats : Hinfs_stats.Stats.t;
  config : Config.t;
  persistent : Bytes.t;
  overlay : (int, Bytes.t) Hashtbl.t; (* cacheline index -> line content *)
  bandwidth : Hinfs_sim.Resource.t;
  mutable recorder : Record.t option;
  mutable fault : Fault.t option; (* media-fault model; None = perfect *)
}

(* One crash point: the guaranteed medium image plus, for every line whose
   persisted content is undecided, the list of legal candidate contents
   (index 0 is the guaranteed one). A concrete crash image picks one
   candidate per line independently. *)
type crash_state = {
  cs_label : string;
  cs_image : Bytes.t; (* guaranteed medium content *)
  cs_line_size : int;
  cs_choices : (int * Bytes.t array) list; (* line idx (ascending) -> candidates *)
}

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Resource = Hinfs_sim.Resource
module Stats = Hinfs_stats.Stats
module Obs = Hinfs_obs.Obs

let create engine stats config =
  let config = Config.validate config in
  {
    engine;
    stats;
    config;
    persistent = Bytes.make config.Config.nvmm_size '\000';
    overlay = Hashtbl.create 4096;
    bandwidth =
      Resource.create ~name:"nvmm-write-bandwidth"
        ~capacity:(Config.nw_slots config);
    recorder = None;
    fault = None;
  }

let config t = t.config
let size t = t.config.Config.nvmm_size
let stats t = t.stats
let engine t = t.engine
let bandwidth t = t.bandwidth

let line_size t = t.config.Config.cacheline_size

let check_range t ~addr ~len =
  if len < 0 then invalid_arg "Device: negative length";
  if addr < 0 || addr + len > size t then
    Fmt.invalid_arg "Device: range [%d, %d) out of bounds (size %d)" addr
      (addr + len) (size t)

let charge t cat f =
  let t0 = Proc.now () in
  let result = f () in
  Stats.add_time t.stats cat (Int64.sub (Proc.now ()) t0);
  result

(* --- volatile overlay helpers --- *)

let overlay_line t idx =
  match Hashtbl.find_opt t.overlay idx with
  | Some line -> line
  | None ->
    let line = Bytes.create (line_size t) in
    Bytes.blit t.persistent (idx * line_size t) line 0 (line_size t);
    Hashtbl.replace t.overlay idx line;
    line

let dirty_cachelines t = Hashtbl.length t.overlay

let is_dirty_line t idx = Hashtbl.mem t.overlay idx

let dirty_line_addrs t =
  let ls = line_size t in
  Hashtbl.fold (fun idx _ acc -> (idx * ls) :: acc) t.overlay []
  |> List.sort compare

(* --- recorder hooks (no-ops when recording is disabled) --- *)

let record_line t (r : Record.t) idx =
  match Hashtbl.find_opt r.Record.lines idx with
  | Some rl -> rl
  | None ->
    let ls = line_size t in
    let rl =
      {
        Record.base = Bytes.sub t.persistent (idx * ls) ls;
        versions = [];
        store_epoch = -1;
      }
    in
    Hashtbl.replace r.Record.lines idx rl;
    rl

(* Called BEFORE the store mutates the overlay line: if the line is dirty
   from an earlier epoch, the pre-store cached content is itself a legal
   crash candidate (it could have been evicted before this store). *)
let record_store t idx =
  match t.recorder with
  | None -> ()
  | Some r ->
    r.Record.stores <- r.Record.stores + 1;
    let rl = record_line t r idx in
    (match Hashtbl.find_opt t.overlay idx with
    | Some line
      when rl.Record.store_epoch >= 0 && rl.Record.store_epoch < r.Record.epoch
      ->
      rl.Record.versions <-
        rl.Record.versions
        @ [ { Record.content = Bytes.copy line; flushed = false } ]
    | _ -> ());
    rl.Record.store_epoch <- r.Record.epoch

(* Called with the dirty line content just before it is blitted to the
   medium: the flushed content is persistent-but-unordered until the next
   fence. *)
let record_flush t idx content =
  match t.recorder with
  | None -> ()
  | Some r ->
    r.Record.flushes <- r.Record.flushes + 1;
    let rl = record_line t r idx in
    rl.Record.versions <-
      rl.Record.versions
      @ [ { Record.content = Bytes.copy content; flushed = true } ];
    rl.Record.store_epoch <- -1

(* Non-temporal stores reach the medium directly but are only ordered by the
   next fence: record the pre-store medium content as base (if the line was
   not already pending) and the post-store medium line as a flushed
   candidate. [pre] runs before the blit, [post] after overlay merging. *)
let record_nt_pre t ~addr ~len =
  match t.recorder with
  | None -> ()
  | Some r ->
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      ignore (record_line t r idx)
    done

let record_nt_post t ~addr ~len =
  match t.recorder with
  | None -> ()
  | Some r ->
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      r.Record.stores <- r.Record.stores + 1;
      let rl = record_line t r idx in
      rl.Record.versions <-
        rl.Record.versions
        @ [
            {
              Record.content = Bytes.sub t.persistent (idx * ls) ls;
              flushed = true;
            };
          ];
      if not (is_dirty_line t idx) then rl.Record.store_epoch <- -1
    done

(* A fence makes every version through the last flushed one guaranteed.
   Unflushed cached content stays pending in the new epoch. *)
let record_fence_collapse (r : Record.t) dirty_line =
  r.Record.epoch <- r.Record.epoch + 1;
  let drop = ref [] in
  Hashtbl.iter
    (fun idx (rl : Record.line) ->
      let rec split acc base = function
        | [] -> (base, List.rev acc)
        | ({ Record.flushed; content } as v) :: rest ->
          if flushed then split [] (Some content) rest
          else split (v :: acc) base rest
      in
      (match split [] None rl.Record.versions with
      | None, _ -> ()
      | Some content, keep ->
        rl.Record.base <- content;
        rl.Record.versions <- keep);
      if rl.Record.versions = [] && not (dirty_line idx) then
        drop := idx :: !drop)
    r.Record.lines;
  List.iter (Hashtbl.remove r.Record.lines) !drop

let record_fence t =
  match t.recorder with
  | None -> ()
  | Some r ->
    r.Record.fences <- r.Record.fences + 1;
    (* The hook fires before the fence takes effect: a crash "at" the fence
       still sees every unfenced version as undecided. *)
    r.Record.on_fence ();
    record_fence_collapse r (is_dirty_line t)

(* Untimed raw stores (poke) and whole-overlay drops bypass the persistency
   model: forget any pending record for the covered lines. *)
let record_forget t ~addr ~len =
  match t.recorder with
  | None -> ()
  | Some r ->
    if len > 0 then begin
      let ls = line_size t in
      let first = addr / ls and last = (addr + len - 1) / ls in
      for idx = first to last do
        Hashtbl.remove r.Record.lines idx
      done
    end

(* --- media-fault hooks (no-ops when no fault model is attached) --- *)

(* Timed load of [addr, addr+len): lines dirty in the CPU cache are served
   from the cache and never touch the medium, so only clean lines can
   fault. Raises on the first faulting line, in address order, so a fixed
   seed and access sequence fault identically. *)
let fault_check_load t ~addr ~len =
  match t.fault with
  | None -> ()
  | Some f ->
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      if not (is_dirty_line t idx) then
        match Fault.check_load f idx with
        | None -> ()
        | Some kind ->
          let transient = kind = Fault.Transient in
          Stats.add_media_fault t.stats ~transient;
          raise (Fault.Media_error { addr = idx * ls; transient })
    done

(* A store that fully covers lines of the medium: heals poison, may draw
   store-time poison. Partially covered lines keep their fault state. *)
let fault_store_range t ~addr ~len =
  match t.fault with
  | None -> ()
  | Some f ->
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      let line_start = idx * ls in
      if addr <= line_start && line_start + ls <= addr + len then
        Fault.store_line f idx
    done

let fault_store_line t idx =
  match t.fault with None -> () | Some f -> Fault.store_line f idx

(* Untimed raw store (poke): reliable, heals fully covered lines. *)
let fault_heal_range t ~addr ~len =
  match t.fault with
  | None -> ()
  | Some f ->
    if len > 0 then begin
      let ls = line_size t in
      let first = addr / ls and last = (addr + len - 1) / ls in
      for idx = first to last do
        let line_start = idx * ls in
        if addr <= line_start && line_start + ls <= addr + len then
          Fault.heal_line f idx
      done
    end

let set_fault_model t f = t.fault <- f
let fault_model t = t.fault

(* Untimed poison inspection for scrub/fsck/recovery: byte addresses
   (ascending) of poisoned lines intersecting the range. *)
let verify_range t ~addr ~len =
  match t.fault with
  | None -> []
  | Some f ->
    if len <= 0 then []
    else begin
      check_range t ~addr ~len;
      let ls = line_size t in
      let first = addr / ls and last = (addr + len - 1) / ls in
      let acc = ref [] in
      for idx = last downto first do
        if Fault.is_poisoned f idx then acc := (idx * ls) :: !acc
      done;
      !acc
    end

(* --- timed data-path operations --- *)

let read t ~cat ~addr ~len ~into ~off =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length into then
    invalid_arg "Device.read: destination range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        Proc.delay_int (lines * t.config.Config.dram_read_ns));
    (* The loads have happened: poisoned/transient-faulting lines machine-
       check here, after the access paid its latency. *)
    fault_check_load t ~addr ~len;
    Bytes.blit t.persistent addr into off len;
    (* Patch bytes whose cachelines are dirty in the CPU cache. *)
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      if is_dirty_line t idx then begin
        let line = Hashtbl.find t.overlay idx in
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit line (copy_start - line_start) into
          (off + copy_start - addr)
          (copy_end - copy_start)
      end
    done;
    Stats.add_nvmm_read t.stats len
  end

let read_alloc t ~cat ~addr ~len =
  let buf = Bytes.create len in
  read t ~cat ~addr ~len ~into:buf ~off:0;
  buf

let write_nt ?(background = false) t ~cat ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length src then
    invalid_arg "Device.write_nt: source range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        let t0 = if Obs.enabled () then Proc.now () else 0L in
        Resource.with_resource t.bandwidth 1 (fun () ->
            Obs.span_since Obs.Slot_wait ~t0;
            Proc.delay_int (lines * t.config.Config.nvmm_write_ns)));
    record_nt_pre t ~addr ~len;
    Bytes.blit src off t.persistent addr len;
    (* A non-temporal store invalidates any stale cached copy of the lines
       it covers (it fully bypasses the cache hierarchy). Partially covered
       lines must merge the new bytes into the cached copy instead. *)
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        let line_start = idx * ls in
        if addr <= line_start && line_start + ls <= addr + len then
          Hashtbl.remove t.overlay idx
        else begin
          let copy_start = max addr line_start in
          let copy_end = min (addr + len) (line_start + ls) in
          Bytes.blit src
            (off + copy_start - addr)
            line (copy_start - line_start)
            (copy_end - copy_start)
        end
    done;
    record_nt_post t ~addr ~len;
    fault_store_range t ~addr ~len;
    Stats.add_nvmm_written ~background t.stats len
  end

let write_cached t ~cat ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  if off < 0 || off + len > Bytes.length src then
    invalid_arg "Device.write_cached: source range out of bounds";
  if len > 0 then begin
    let lines = Config.cachelines_in t.config ~addr ~len in
    charge t cat (fun () ->
        Proc.delay_int (lines * t.config.Config.dram_write_ns));
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      record_store t idx;
      let line = overlay_line t idx in
      let line_start = idx * ls in
      let copy_start = max addr line_start in
      let copy_end = min (addr + len) (line_start + ls) in
      Bytes.blit src
        (off + copy_start - addr)
        line (copy_start - line_start)
        (copy_end - copy_start)
    done
  end

(* The one place a cached line moves to the medium: records the flush event
   and writes the line back. Both [clflush] and [flush_all_untimed] go
   through here so timed and test-setup persistence cannot diverge. *)
let persist_line t idx =
  match Hashtbl.find_opt t.overlay idx with
  | None -> ()
  | Some line ->
    record_flush t idx line;
    Bytes.blit line 0 t.persistent (idx * line_size t) (line_size t);
    Hashtbl.remove t.overlay idx;
    fault_store_line t idx

(* Flush the dirty cachelines intersecting [addr, addr+len) to the medium.
   Clean lines only pay the instruction-issue cost. *)
let clflush ?(background = false) t ~cat ~addr ~len =
  check_range t ~addr ~len;
  if len > 0 then begin
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    let dirty = ref 0 in
    for idx = first to last do
      if is_dirty_line t idx then incr dirty
    done;
    let total_lines = last - first + 1 in
    Stats.add_clflush t.stats cat ~lines:total_lines ~dirty:!dirty;
    let obs_t0 = if Obs.enabled () then Proc.now () else 0L in
    charge t cat (fun () ->
        Proc.delay_int (total_lines * t.config.Config.clflush_issue_ns);
        if !dirty > 0 then begin
          let t0 = if Obs.enabled () then Proc.now () else 0L in
          Resource.with_resource t.bandwidth 1 (fun () ->
              Obs.span_since Obs.Slot_wait ~t0;
              Proc.delay_int (!dirty * t.config.Config.nvmm_write_ns))
        end);
    Obs.span_since Obs.Flush ~t0:obs_t0;
    for idx = first to last do
      persist_line t idx
    done;
    if !dirty > 0 then
      Stats.add_nvmm_written ~background t.stats (!dirty * ls)
  end

let mfence t ~cat =
  Stats.add_mfence t.stats cat;
  let obs_t0 = if Obs.enabled () then Proc.now () else 0L in
  charge t cat (fun () -> Proc.delay_int t.config.Config.mfence_ns);
  Obs.span_since Obs.Fence ~t0:obs_t0;
  record_fence t

(* --- small typed accessors (metadata fields) --- *)

(* Loads of metadata words are not individually timed: they are cache-hot
   DRAM-speed accesses whose cost the paper folds into "Others" (which we
   charge per syscall). Stores go through the cached-write path so that
   crash semantics remain exact. *)

let peek_byte t addr =
  let ls = line_size t in
  match Hashtbl.find_opt t.overlay (addr / ls) with
  | Some line -> Bytes.get_uint8 line (addr mod ls)
  | None -> Bytes.get_uint8 t.persistent addr

let peek t ~addr ~len =
  check_range t ~addr ~len;
  let buf = Bytes.create len in
  Bytes.blit t.persistent addr buf 0 len;
  let ls = line_size t in
  if len > 0 then begin
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      if is_dirty_line t idx then begin
        let line = Hashtbl.find t.overlay idx in
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit line (copy_start - line_start) buf (copy_start - addr)
          (copy_end - copy_start)
      end
    done
  end;
  buf

let peek_persistent t ~addr ~len =
  check_range t ~addr ~len;
  Bytes.sub t.persistent addr len

(* Untimed raw store, for mkfs-time initialisation and tests. Writes the
   medium directly and drops any cached copy. *)
let poke t ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  record_forget t ~addr ~len;
  fault_heal_range t ~addr ~len;
  Bytes.blit src off t.persistent addr len;
  if len > 0 then begin
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        let line_start = idx * ls in
        let copy_start = max addr line_start in
        let copy_end = min (addr + len) (line_start + ls) in
        Bytes.blit src
          (off + copy_start - addr)
          line (copy_start - line_start)
          (copy_end - copy_start)
    done
  end

(* Untimed recorded store for recovery/repair paths. Like [poke] it is the
   reliable path — reaches the medium directly, heals fully covered poisoned
   lines, never draws new faults — but the persistence recorder sees it as a
   flushed-but-unfenced version (exactly a non-temporal store minus the
   timing), so crash enumeration *during* recovery observes what replay and
   scrub persist. Equivalent to [poke] when recording is off, except that
   pending records for the covered lines are kept, not forgotten. *)
let poke_flushed t ~addr ~src ~off ~len =
  check_range t ~addr ~len;
  if len > 0 then begin
    record_nt_pre t ~addr ~len;
    Bytes.blit src off t.persistent addr len;
    (* Same cache rule as [write_nt]: fully covered cached lines are
       invalidated, partially covered ones merge the new bytes. *)
    let ls = line_size t in
    let first = addr / ls and last = (addr + len - 1) / ls in
    for idx = first to last do
      match Hashtbl.find_opt t.overlay idx with
      | None -> ()
      | Some line ->
        let line_start = idx * ls in
        if addr <= line_start && line_start + ls <= addr + len then
          Hashtbl.remove t.overlay idx
        else begin
          let copy_start = max addr line_start in
          let copy_end = min (addr + len) (line_start + ls) in
          Bytes.blit src
            (off + copy_start - addr)
            line (copy_start - line_start)
            (copy_end - copy_start)
        end
    done;
    record_nt_post t ~addr ~len;
    fault_heal_range t ~addr ~len
  end

(* Untimed ordering point pairing with [poke_flushed]: fires the recorder's
   fence (running the on_fence hook, then collapsing flushed versions into
   the guaranteed base) without charging time or stats. No-op when recording
   is off. *)
let fence_untimed t = record_fence t

let get_u8 t addr = peek_byte t addr

let get_u16 t addr = Bytes.get_uint16_le (peek t ~addr ~len:2) 0
let get_u32 t addr = Int32.to_int (Bytes.get_int32_le (peek t ~addr ~len:4) 0) land 0xFFFFFFFF
let get_u64 t addr = Bytes.get_int64_le (peek t ~addr ~len:8) 0
let get_int t addr = Int64.to_int (get_u64 t addr)

let set_bytes t ~cat ~addr bytes =
  write_cached t ~cat ~addr ~src:bytes ~off:0 ~len:(Bytes.length bytes)

let set_u8 t ~cat addr v =
  let b = Bytes.create 1 in
  Bytes.set_uint8 b 0 v;
  set_bytes t ~cat ~addr b

let set_u16 t ~cat addr v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 v;
  set_bytes t ~cat ~addr b

let set_u32 t ~cat addr v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  set_bytes t ~cat ~addr b

let set_u64 t ~cat addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  set_bytes t ~cat ~addr b

let set_int t ~cat addr v = set_u64 t ~cat addr (Int64.of_int v)

(* --- crash injection --- *)

let crash t =
  Hashtbl.reset t.overlay;
  match t.recorder with
  | None -> ()
  | Some r -> Hashtbl.reset r.Record.lines

(* Copy of the persistent medium (what a crash would leave). *)
let snapshot t = Bytes.copy t.persistent

(* A fresh device initialised from a snapshot: used by crash-consistency
   tests to mount and inspect the post-crash image while the pre-crash
   simulation keeps running. *)
let of_snapshot engine stats config image =
  let config = Config.validate config in
  if Bytes.length image <> config.Config.nvmm_size then
    invalid_arg "Device.of_snapshot: image size mismatch";
  {
    engine;
    stats;
    config;
    persistent = Bytes.copy image;
    overlay = Hashtbl.create 4096;
    bandwidth =
      Resource.create ~name:"nvmm-write-bandwidth"
        ~capacity:(Config.nw_slots config);
    recorder = None;
    fault = None;
  }

(* Test/setup helper: persist every dirty line through the same path as
   [clflush], then make the result guaranteed (flush-all acts as flush +
   fence, minus the timing and the fence hook). *)
let flush_all_untimed t =
  Hashtbl.fold (fun idx _ acc -> idx :: acc) t.overlay []
  |> List.sort compare
  |> List.iter (fun idx -> persist_line t idx);
  match t.recorder with
  | None -> ()
  | Some r -> record_fence_collapse r (fun _ -> false)

(* --- persistence-event recording & crash-state capture --- *)

let enable_recording t =
  flush_all_untimed t;
  t.recorder <- Some (Record.create ())

let disable_recording t = t.recorder <- None
let recording t = t.recorder <> None

let set_on_fence t f =
  match t.recorder with
  | None -> invalid_arg "Device.set_on_fence: recording disabled"
  | Some r -> r.Record.on_fence <- f

let recorded_events t =
  match t.recorder with
  | None -> (0, 0, 0)
  | Some r -> (r.Record.stores, r.Record.flushes, r.Record.fences)

(* Number of lines whose crash content is currently undecided. *)
let pending_choice_lines t =
  let recorded =
    match t.recorder with
    | None -> 0
    | Some r -> Hashtbl.length r.Record.lines
  in
  let dirty_unrecorded =
    Hashtbl.fold
      (fun idx _ acc ->
        match t.recorder with
        | Some r when Hashtbl.mem r.Record.lines idx -> acc
        | _ -> acc + 1)
      t.overlay 0
  in
  recorded + dirty_unrecorded

let dedup_candidates cands =
  List.fold_left
    (fun acc c -> if List.exists (Bytes.equal c) acc then acc else c :: acc)
    [] cands
  |> List.rev

(* Cap pathologically long candidate chains (many epochs of stores to one
   line with no flush): keep the guaranteed content plus the newest few. *)
let max_candidates = 8

let capture_crash_state ?(label = "crash") t =
  let ls = line_size t in
  let choice idx (rl : Record.line option) =
    let cands =
      match rl with
      | Some rl ->
        rl.Record.base
        :: List.map (fun v -> v.Record.content) rl.Record.versions
      | None -> [ Bytes.sub t.persistent (idx * ls) ls ]
    in
    let cands =
      match Hashtbl.find_opt t.overlay idx with
      | Some line -> cands @ [ Bytes.copy line ]
      | None -> cands
    in
    let cands = dedup_candidates cands in
    let cands =
      if List.length cands <= max_candidates then cands
      else
        List.hd cands
        :: (List.filteri
              (fun i _ -> i >= List.length cands - (max_candidates - 1))
              (List.tl cands))
    in
    match cands with
    | [] | [ _ ] -> None
    | _ -> Some (idx, Array.of_list cands)
  in
  let choices = ref [] in
  (match t.recorder with
  | None -> ()
  | Some r ->
    Hashtbl.iter
      (fun idx rl ->
        match choice idx (Some rl) with
        | None -> ()
        | Some c -> choices := c :: !choices)
      r.Record.lines);
  Hashtbl.iter
    (fun idx _ ->
      let recorded =
        match t.recorder with
        | Some r -> Hashtbl.mem r.Record.lines idx
        | None -> false
      in
      if not recorded then
        match choice idx None with
        | None -> ()
        | Some c -> choices := c :: !choices)
    t.overlay;
  {
    cs_label = label;
    cs_image = Bytes.copy t.persistent;
    cs_line_size = ls;
    cs_choices = List.sort (fun (a, _) (b, _) -> compare a b) !choices;
  }

(* Concrete crash image: the guaranteed medium with [choice.(i)] picking
   the persisted candidate for the i-th undecided line. *)
let materialize_crash_image state ~choice =
  let img = Bytes.copy state.cs_image in
  List.iteri
    (fun i (idx, cands) ->
      let c = cands.(choice.(i)) in
      Bytes.blit c 0 img (idx * state.cs_line_size) state.cs_line_size)
    state.cs_choices;
  img
