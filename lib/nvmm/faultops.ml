(* Seeded operation-level software fault injector.

   The media-fault model (Fault) makes the *hardware* fail; this makes the
   *software* resource paths fail mid-transaction: block allocation
   (ENOSPC), inode allocation (out of inodes), journal slot allocation
   (journal full). Each injection site polls the injector at the moment the
   resource would be granted, and an injected fault makes the site behave
   exactly as genuine exhaustion would — the allocator returns [None], the
   journal raises [Journal_full] — so the very same abort/rollback paths
   run as under a real full device.

   Like Fault, all randomness comes from one splitmix64 stream seeded at
   creation, and draws happen in site-visit order, so a fixed seed and
   workload inject bit-identically. [force] arms a deterministic one-shot
   for targeted tests: fail the k-th next opportunity of a kind. *)

module Rng = Hinfs_sim.Rng

type kind = Block_alloc | Inode_alloc | Journal_slot

let kinds = [ Block_alloc; Inode_alloc; Journal_slot ]

let kind_name = function
  | Block_alloc -> "block-alloc"
  | Inode_alloc -> "inode-alloc"
  | Journal_slot -> "journal-slot"

let kind_index = function
  | Block_alloc -> 0
  | Inode_alloc -> 1
  | Journal_slot -> 2

type t = {
  seed : int64;
  rng : Rng.t;
  rates : float array; (* per-kind injection probability *)
  forced : int option array; (* per-kind one-shot countdown *)
  opportunities : int array;
  injected : int array;
}

let create ?(block_alloc_rate = 0.0) ?(inode_alloc_rate = 0.0)
    ?(journal_slot_rate = 0.0) ~seed () =
  let check_rate name r =
    if r < 0.0 || r > 1.0 then
      Fmt.invalid_arg "Faultops.create: %s outside [0, 1]" name
  in
  check_rate "block_alloc_rate" block_alloc_rate;
  check_rate "inode_alloc_rate" inode_alloc_rate;
  check_rate "journal_slot_rate" journal_slot_rate;
  {
    seed;
    rng = Rng.create ~seed;
    rates = [| block_alloc_rate; inode_alloc_rate; journal_slot_rate |];
    forced = [| None; None; None |];
    opportunities = [| 0; 0; 0 |];
    injected = [| 0; 0; 0 |];
  }

let seed t = t.seed

let force t kind ~after =
  if after < 0 then invalid_arg "Faultops.force: negative countdown";
  t.forced.(kind_index kind) <- Some after

let disarm t kind = t.forced.(kind_index kind) <- None

(* One opportunity of [kind] is about to be granted; [true] = fail it.
   A forced one-shot takes priority over (and does not consume) a random
   draw, so targeted tests stay deterministic even with rates armed. *)
let check t kind =
  let i = kind_index kind in
  t.opportunities.(i) <- t.opportunities.(i) + 1;
  let hit =
    match t.forced.(i) with
    | Some 0 ->
      t.forced.(i) <- None;
      true
    | Some n ->
      t.forced.(i) <- Some (n - 1);
      false
    | None -> t.rates.(i) > 0.0 && Rng.chance t.rng t.rates.(i)
  in
  if hit then t.injected.(i) <- t.injected.(i) + 1;
  hit

let opportunities t kind = t.opportunities.(kind_index kind)
let injected t kind = t.injected.(kind_index kind)
let total_injected t = Array.fold_left ( + ) 0 t.injected
