(* Block allocator over a region of the device.

   Allocation state lives in DRAM, as in PMFS: the kernel module keeps its
   free lists volatile and rebuilds them at mount time by walking the inode
   trees, so there is nothing to persist here. A next-fit cursor keeps
   allocation O(1) amortised. *)

type t = {
  first_block : int;
  count : int;
  used : Hinfs_structures.Bitmap.t;
  mutable cursor : int; (* next-fit start, relative index *)
  mutable injector : (unit -> bool) option;
      (* operation-level fault hook: [true] = fail this allocation *)
}

module Bitmap = Hinfs_structures.Bitmap

let create ~first_block ~count =
  if first_block < 0 || count <= 0 then
    invalid_arg "Allocator.create: bad region";
  { first_block; count; used = Bitmap.create count; cursor = 0; injector = None }

let set_fault_injector t f = t.injector <- f

(* Injected failures look exactly like exhaustion (alloc returns [None]),
   so callers exercise their genuine ENOSPC paths. *)
let injected_failure t =
  match t.injector with None -> false | Some f -> f ()

let capacity t = t.count
let free_blocks t = Bitmap.count_clear t.used
let used_blocks t = Bitmap.count_set t.used

let contains t block =
  block >= t.first_block && block < t.first_block + t.count

let is_allocated t block =
  if not (contains t block) then invalid_arg "Allocator: block out of region";
  Bitmap.get t.used (block - t.first_block)

let alloc t =
  if injected_failure t then None
  else
  match Bitmap.find_first_clear ~from:t.cursor t.used with
  | Some i ->
    Bitmap.set t.used i;
    t.cursor <- (if i + 1 >= t.count then 0 else i + 1);
    Some (t.first_block + i)
  | None -> (
    match Bitmap.find_first_clear ~from:0 t.used with
    | Some i ->
      Bitmap.set t.used i;
      t.cursor <- (if i + 1 >= t.count then 0 else i + 1);
      Some (t.first_block + i)
    | None -> None)

let alloc_contiguous t n =
  if n <= 0 then invalid_arg "Allocator.alloc_contiguous: n must be > 0";
  if injected_failure t then None
  else
  let claim start =
    for j = start to start + n - 1 do
      Bitmap.set t.used j
    done;
    t.cursor <- (if start + n >= t.count then 0 else start + n);
    Some (t.first_block + start)
  in
  match Bitmap.find_clear_run ~from:t.cursor t.used ~count:n with
  | Some start -> claim start
  | None -> (
    match Bitmap.find_clear_run ~from:0 t.used ~count:n with
    | Some start -> claim start
    | None -> None)

let free t block =
  if not (contains t block) then invalid_arg "Allocator.free: out of region";
  let i = block - t.first_block in
  if not (Bitmap.get t.used i) then
    invalid_arg "Allocator.free: double free";
  Bitmap.clear t.used i

let mark_allocated t block =
  if not (contains t block) then
    invalid_arg "Allocator.mark_allocated: out of region";
  Bitmap.set t.used (block - t.first_block)

let reset t =
  Bitmap.clear_all t.used;
  t.cursor <- 0
