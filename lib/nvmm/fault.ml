(* Deterministic media-fault model for the NVMM device.

   Real NVMM fails at cacheline granularity: an uncorrectable ECC error
   marks the line poisoned and a load of it takes a machine-check (Linux
   surfaces this as a badblock + SIGBUS on DAX mappings). The model keeps
   two fault populations over the medium's cachelines:

   - persistent poison: drawn at store time (each line streamed to the
     medium fails to stick with probability [poison_rate]) or injected
     explicitly; every subsequent load of a poisoned line raises
     {!Media_error} with [transient = false]. Rewriting the whole line
     heals it, like a movdir64b overwrite clearing a PMEM badblock.

   - transient read faults: a load draws with probability [transient_rate]
     and fails once; the line is remembered so the retry deterministically
     succeeds (the model for a correctable-but-slow ECC recovery that the
     driver retries).

   All randomness comes from one splitmix64 stream seeded at creation, and
   draws happen in device-access order, so a fixed seed and workload give
   bit-identical fault placement. The model is attached to a device as an
   option (None = perfect medium, zero cost on the hot paths, like the
   persistence-event recorder). *)

module Rng = Hinfs_sim.Rng

exception
  Media_error of {
    addr : int;  (** byte address of the faulting cacheline *)
    transient : bool;  (** [true] when a bounded retry may succeed *)
  }

let () =
  Printexc.register_printer (function
    | Media_error { addr; transient } ->
      Some
        (Printf.sprintf "Media_error(addr=%#x, %s)" addr
           (if transient then "transient" else "poisoned"))
    | _ -> None)

type t = {
  seed : int64;
  rng : Rng.t;
  mutable poison_rate : float;
      (** per-line probability a store leaves poison *)
  mutable transient_rate : float;
      (** per-line probability a load faults once *)
  poisoned : (int, unit) Hashtbl.t;  (** line index -> poisoned *)
  transient_pending : (int, unit) Hashtbl.t;
      (** lines whose next load must succeed (fault already delivered) *)
  mutable store_poisons : int;  (** lines poisoned by failed stores *)
  mutable transient_faults : int;  (** transient faults delivered *)
  mutable poison_hits : int;  (** loads that hit a poisoned line *)
  mutable heals : int;  (** poisoned lines healed by a full-line store *)
}

let create ?(poison_rate = 0.0) ?(transient_rate = 0.0) ~seed () =
  if poison_rate < 0.0 || poison_rate > 1.0 then
    invalid_arg "Fault.create: poison_rate outside [0, 1]";
  if transient_rate < 0.0 || transient_rate > 1.0 then
    invalid_arg "Fault.create: transient_rate outside [0, 1]";
  {
    seed;
    rng = Rng.create ~seed;
    poison_rate;
    transient_rate;
    poisoned = Hashtbl.create 64;
    transient_pending = Hashtbl.create 16;
    store_poisons = 0;
    transient_faults = 0;
    poison_hits = 0;
    heals = 0;
  }

let seed t = t.seed
let poison_rate t = t.poison_rate
let transient_rate t = t.transient_rate

(* Rates are adjustable at runtime so a chaos schedule can open and close
   fault windows (poison bursts, transient storms) mid-run. Draws still come
   off the single seeded stream in access order, so a fixed schedule stays
   deterministic. *)
let set_poison_rate t rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.set_poison_rate: rate outside [0, 1]";
  t.poison_rate <- rate

let set_transient_rate t rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.set_transient_rate: rate outside [0, 1]";
  t.transient_rate <- rate

(* --- transient-read retry policy ---

   How a mount reacts to [Media_error { transient = true }]: retry up to
   [max_retries] times, sleeping [backoff_ns * multiplier^attempt] of
   virtual time before each retry (the driver poll model: back off so a
   busy line's ECC recovery can complete). The backoff is charged on the
   simulated clock by the caller, so retries are visible in dev.* latency
   histograms rather than free. [default_retry] reproduces the historical
   hardcoded behaviour (3 immediate retries, no backoff). *)

type retry_policy = {
  max_retries : int;  (** retries after the first failed attempt *)
  backoff_ns : int;  (** virtual-time sleep before the first retry *)
  backoff_multiplier : int;  (** geometric growth per further retry *)
}

let default_retry = { max_retries = 3; backoff_ns = 0; backoff_multiplier = 2 }

let retry_backoff_ns policy ~attempt =
  if policy.backoff_ns <= 0 then 0
  else begin
    let rec pow acc n = if n <= 0 then acc else pow (acc * policy.backoff_multiplier) (n - 1) in
    policy.backoff_ns * pow 1 attempt
  end

(* --- device hooks (line-index granularity) --- *)

type load_fault = Poisoned | Transient

(* One load touching line [idx]: poisoned lines always fault; otherwise a
   pending transient fault is consumed (the retry succeeds) or a fresh
   transient fault may be drawn. *)
let check_load t idx =
  if Hashtbl.mem t.poisoned idx then begin
    t.poison_hits <- t.poison_hits + 1;
    Some Poisoned
  end
  else if Hashtbl.mem t.transient_pending idx then begin
    Hashtbl.remove t.transient_pending idx;
    None
  end
  else if t.transient_rate > 0.0 && Rng.chance t.rng t.transient_rate then begin
    Hashtbl.replace t.transient_pending idx ();
    t.transient_faults <- t.transient_faults + 1;
    Some Transient
  end
  else None

(* A full line reached the medium: rewriting heals existing poison, and the
   store itself may fail to stick, leaving fresh poison. *)
let store_line t idx =
  if Hashtbl.mem t.poisoned idx then begin
    Hashtbl.remove t.poisoned idx;
    t.heals <- t.heals + 1
  end;
  Hashtbl.remove t.transient_pending idx;
  if t.poison_rate > 0.0 && Rng.chance t.rng t.poison_rate then begin
    Hashtbl.replace t.poisoned idx ();
    t.store_poisons <- t.store_poisons + 1
  end

(* Reliable full-line overwrite (poke / repair paths): heals, never draws. *)
let heal_line t idx =
  if Hashtbl.mem t.poisoned idx then begin
    Hashtbl.remove t.poisoned idx;
    t.heals <- t.heals + 1
  end;
  Hashtbl.remove t.transient_pending idx

(* --- explicit injection & inspection (tests, scrub, fsck) --- *)

let poison_line t idx = Hashtbl.replace t.poisoned idx ()
let clear_line t idx = Hashtbl.remove t.poisoned idx
let is_poisoned t idx = Hashtbl.mem t.poisoned idx
let poisoned_count t = Hashtbl.length t.poisoned

let poisoned_lines t =
  Hashtbl.fold (fun idx () acc -> idx :: acc) t.poisoned []
  |> List.sort compare

let store_poisons t = t.store_poisons
let transient_faults t = t.transient_faults
let poison_hits t = t.poison_hits
let heals t = t.heals
