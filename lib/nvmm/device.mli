(** Byte-addressable NVMM device with an explicit CPU-cache model.

    State is split into the persistent medium and a volatile overlay of
    dirty cachelines (the CPU cache). Ordinary stores land in the overlay
    and are lost on {!crash} until {!clflush}ed; non-temporal stores
    ({!write_nt}) reach the medium directly. Data-path operations consume
    virtual time and must be called from inside a simulation process; every
    cacheline streamed to the medium holds one of the N_w bandwidth slots. *)

type t

val create :
  Hinfs_sim.Engine.t -> Hinfs_stats.Stats.t -> Config.t -> t

val config : t -> Config.t
val size : t -> int
val stats : t -> Hinfs_stats.Stats.t
val engine : t -> Hinfs_sim.Engine.t

val bandwidth : t -> Hinfs_sim.Resource.t
(** The N_w-slot NVMM write bandwidth limiter. *)

(** {1 Timed data-path operations} *)

val read :
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  len:int ->
  into:Bytes.t ->
  off:int ->
  unit
(** Load a byte range (cache-coherent view: dirty overlay lines win). When
    a fault model is attached, raises {!Fault.Media_error} if a clean line
    in the range is poisoned or draws a transient read fault; the access
    latency is charged either way, so a retry pays again. *)

val read_alloc :
  t -> cat:Hinfs_stats.Stats.category -> addr:int -> len:int -> Bytes.t

val write_nt :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  src:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** Non-temporal store: persistent immediately, pays NVMM latency and
    bandwidth. [background] attributes the bytes to background writeback. *)

val write_cached :
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  src:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** Ordinary store into the CPU cache: DRAM-speed, volatile until flushed. *)

val clflush :
  ?background:bool ->
  t ->
  cat:Hinfs_stats.Stats.category ->
  addr:int ->
  len:int ->
  unit
(** Flush the dirty cachelines intersecting the range to the medium. Dirty
    lines pay NVMM latency under a bandwidth slot; clean lines only pay the
    issue cost. *)

val mfence : t -> cat:Hinfs_stats.Stats.category -> unit

(** {1 Typed metadata accessors}

    Loads are untimed (cache-hot; the paper folds them into "Others").
    Stores go through the cached-write path so crash semantics stay exact. *)

val get_u8 : t -> int -> int
val get_u16 : t -> int -> int
val get_u32 : t -> int -> int
val get_u64 : t -> int -> int64
val get_int : t -> int -> int
val set_u8 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u16 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u32 : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_u64 : t -> cat:Hinfs_stats.Stats.category -> int -> int64 -> unit
val set_int : t -> cat:Hinfs_stats.Stats.category -> int -> int -> unit
val set_bytes : t -> cat:Hinfs_stats.Stats.category -> addr:int -> Bytes.t -> unit

(** {1 Untimed access (setup, recovery inspection, tests)} *)

val peek : t -> addr:int -> len:int -> Bytes.t
(** Coherent view (overlay wins), no time charged. *)

val peek_persistent : t -> addr:int -> len:int -> Bytes.t
(** Medium contents only — what a crash would leave behind. *)

val poke : t -> addr:int -> src:Bytes.t -> off:int -> len:int -> unit
(** Untimed raw store to the medium (mkfs-time initialisation). *)

val poke_flushed : t -> addr:int -> src:Bytes.t -> off:int -> len:int -> unit
(** Untimed reliable store that the persistence recorder can see: behaves
    like {!poke} (direct to the medium, heals fully covered poisoned lines,
    never draws faults) but registers with the recorder as a
    flushed-but-unfenced version, ordered by the next {!fence_untimed} or
    {!mfence}. Recovery, scrub, and superblock repair use it so crash
    enumeration covers a re-crash in the middle of repair. *)

val fence_untimed : t -> unit
(** Untimed ordering point pairing with {!poke_flushed}: runs the recorder's
    fence (on_fence hook, then version collapse) without charging time or
    stats. No-op when recording is off. *)

val dirty_cachelines : t -> int
(** Number of cachelines currently dirty in the CPU cache. *)

val is_dirty_line : t -> int -> bool

val dirty_line_addrs : t -> int list
(** Byte addresses (ascending) of the cachelines currently dirty in the
    CPU cache. *)

val crash : t -> unit
(** Drop the volatile overlay: everything not flushed is lost. *)

val snapshot : t -> Bytes.t
(** Copy of the persistent medium — the image a crash would leave. *)

val of_snapshot :
  Hinfs_sim.Engine.t -> Hinfs_stats.Stats.t -> Config.t -> Bytes.t -> t
(** Fresh device initialised from a {!snapshot} (crash-consistency
    testing). *)

val flush_all_untimed : t -> unit
(** Push the whole overlay to the medium without charging time, through the
    same per-line path as {!clflush}, then mark the result guaranteed
    (test/setup helper; real code paths use {!clflush}). *)

(** {1 Persistence-event recording (crash-state enumeration)}

    When enabled, the device records every store/flush/fence so that the
    set of legal crash images under the x86 persistency model can be
    enumerated: any subset of not-yet-fenced line versions may have reached
    the medium; everything flushed before an {!mfence} is guaranteed.
    Recording costs nothing when disabled. *)

type crash_state = {
  cs_label : string;
  cs_image : Bytes.t;  (** guaranteed medium content *)
  cs_line_size : int;
  cs_choices : (int * Bytes.t array) list;
      (** per undecided cacheline (index ascending): the legal candidate
          contents; candidate 0 is the guaranteed one *)
}

val enable_recording : t -> unit
(** Flushes the overlay (so the pre-existing state is the guaranteed
    baseline) and starts recording persistence events. *)

val disable_recording : t -> unit
val recording : t -> bool

val set_on_fence : t -> (unit -> unit) -> unit
(** Hook invoked on every {!mfence}, before the fence takes effect —
    i.e. while the to-be-fenced versions are still undecided. Crashmc uses
    it to capture crash states at every ordering point. *)

val recorded_events : t -> int * int * int
(** [(stores, flushes, fences)] recorded so far; zeros when disabled. *)

val pending_choice_lines : t -> int
(** Number of cachelines whose crash content is currently undecided. *)

val capture_crash_state : ?label:string -> t -> crash_state

val materialize_crash_image : crash_state -> choice:int array -> Bytes.t
(** Concrete crash image: the guaranteed medium with [choice.(i)] selecting
    the persisted candidate of the [i]-th undecided line. Feed the result
    to {!of_snapshot}. *)

(** {1 Media-fault model}

    Like the recorder, the fault model is attached on demand and costs
    nothing when absent. Attached, every timed {!read} of a clean line
    consults it (poisoned lines and transient draws raise
    {!Fault.Media_error}); every full line streamed to the medium
    ({!write_nt}, {!clflush}) heals poison and may draw store-time poison;
    {!poke} is the reliable repair path (heals, never draws). Untimed
    {!peek}/{!peek_persistent} stay unchecked — they are the oracle's view
    of the medium, not an access a real CPU could make. *)

val set_fault_model : t -> Fault.t option -> unit
val fault_model : t -> Fault.t option

val verify_range : t -> addr:int -> len:int -> int list
(** Byte addresses (ascending) of poisoned cachelines intersecting the
    range — untimed inspection for scrub/fsck/recovery. Empty when no
    fault model is attached. *)
