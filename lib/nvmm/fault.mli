(** Deterministic media-fault model for the NVMM device.

    Two fault populations over the medium's cachelines: persistent poison
    (uncorrectable ECC — every load faults until the full line is
    rewritten) and transient read faults (fault once, the retry succeeds).
    All randomness comes from one seeded splitmix64 stream drawn in
    device-access order, so a fixed seed and workload give bit-identical
    fault placement. Attach to a device with {!Device.set_fault_model};
    detached ([None]) the device hot paths pay nothing. *)

exception
  Media_error of {
    addr : int;  (** byte address of the faulting cacheline *)
    transient : bool;  (** [true] when a bounded retry may succeed *)
  }

type t

val create :
  ?poison_rate:float -> ?transient_rate:float -> seed:int64 -> unit -> t
(** [poison_rate] is the per-line probability that a store to the medium
    leaves the line poisoned; [transient_rate] the per-line probability
    that a load faults once. Both default to [0.] (explicit injection
    only). *)

val seed : t -> int64
val poison_rate : t -> float
val transient_rate : t -> float

val set_poison_rate : t -> float -> unit
(** Adjust the store-time poison rate at runtime (chaos schedules open and
    close fault windows mid-run). Draws stay on the one seeded stream. *)

val set_transient_rate : t -> float -> unit

(** {1 Transient-read retry policy}

    How a mount reacts to [Media_error { transient = true }]: up to
    [max_retries] retries, backing off [backoff_ns * multiplier^attempt]
    of virtual time before each (charged on the simulated clock by the
    caller, so retries show up in dev.* latency histograms). *)

type retry_policy = {
  max_retries : int;  (** retries after the first failed attempt *)
  backoff_ns : int;  (** virtual-time sleep before the first retry *)
  backoff_multiplier : int;  (** geometric growth per further retry *)
}

val default_retry : retry_policy
(** The historical behaviour: 3 immediate retries, no backoff. *)

val retry_backoff_ns : retry_policy -> attempt:int -> int
(** Backoff to charge before retry number [attempt] (0-based). *)

(** {1 Device hooks} — called by {!Device} with cacheline indices. *)

type load_fault = Poisoned | Transient

val check_load : t -> int -> load_fault option
(** Fault outcome for a load of one line; consumes a pending transient
    fault (so the retry succeeds) or may draw a fresh one. *)

val store_line : t -> int -> unit
(** A full line reached the medium: heals existing poison, may draw fresh
    store-time poison. *)

val heal_line : t -> int -> unit
(** Reliable full-line overwrite (poke / repair paths): heals existing
    poison, never draws. *)

(** {1 Injection and inspection (tests, scrub, fsck)} *)

val poison_line : t -> int -> unit
val clear_line : t -> int -> unit
val is_poisoned : t -> int -> bool
val poisoned_count : t -> int

val poisoned_lines : t -> int list
(** Poisoned line indices, ascending. *)

(** {1 Counters} *)

val store_poisons : t -> int
(** Lines poisoned by failed stores (drawn, not injected). *)

val transient_faults : t -> int
val poison_hits : t -> int
val heals : t -> int
