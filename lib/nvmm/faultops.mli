(** Seeded operation-level software fault injector.

    Forces the software resource paths to fail mid-transaction — block
    allocation (ENOSPC), inode allocation (out of inodes), journal slot
    allocation (journal full) — through the same code paths genuine
    exhaustion takes, so abort/rollback handling is exercised for real.
    Deterministic per seed; draws happen in site-visit order. *)

type t

type kind = Block_alloc | Inode_alloc | Journal_slot

val kinds : kind list
val kind_name : kind -> string

val create :
  ?block_alloc_rate:float ->
  ?inode_alloc_rate:float ->
  ?journal_slot_rate:float ->
  seed:int64 ->
  unit ->
  t
(** Rates are per-opportunity injection probabilities in [0, 1]. *)

val seed : t -> int64

val force : t -> kind -> after:int -> unit
(** Arm a deterministic one-shot: the [after]-th next opportunity of [kind]
    fails ([after = 0] fails the very next one). Takes priority over — and
    does not consume — the random stream. *)

val disarm : t -> kind -> unit

val check : t -> kind -> bool
(** Poll at an injection site: [true] means fail this opportunity. *)

val opportunities : t -> kind -> int
val injected : t -> kind -> int
val total_injected : t -> int
