(* The crashmc scenario suite: PMFS and HiNFS workloads whose recovery
   paths must survive every legal crash image, plus deliberately buggy
   fixtures the checker must flag (so a vacuous checker fails the suite).

   Scenarios use a small (1 MB) device so mount-time recovery and fsck stay
   cheap across thousands of crash images. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Log = Hinfs_journal.Cacheline_log
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Fs = Hinfs.Fs
module Fsck = Hinfs_fsck.Fsck
module Repair = Hinfs_fsck.Repair
module Fault = Hinfs_nvmm.Fault
open Crashmc

let small_config = { Config.default with nvmm_size = 1024 * 1024 }
let root = Layout.root_ino
let cat = Stats.Other

(* Deterministic per-name content. *)
let content name len =
  String.init len (fun i ->
      Char.chr (Char.code 'a' + (Hashtbl.hash (name, i) mod 26)))

let bytes_of s = Bytes.of_string s

(* --- path resolution + whole-file reads for the durability oracle --- *)

let resolve_pmfs fs path =
  let parts =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "")
  in
  let rec go dir = function
    | [] -> Some dir
    | p :: rest -> (
      match Pmfs.lookup fs ~dir p with
      | None -> None
      | Some ino -> go ino rest)
  in
  go root parts

let read_pmfs fs path =
  match resolve_pmfs fs path with
  | None -> None
  | Some ino ->
    let size = Pmfs.inode_size fs ino in
    let buf = Bytes.create size in
    let n = Pmfs.read fs ~ino ~off:0 ~len:size ~into:buf ~into_off:0 in
    Some (Bytes.sub_string buf 0 n)

let read_hinfs fs path =
  match resolve_pmfs (Fs.pmfs fs) path with
  | None -> None
  | Some ino ->
    let size = Pmfs.inode_size (Fs.pmfs fs) ino in
    let buf = Bytes.create size in
    let n = Fs.read fs ~ino ~off:0 ~len:size ~into:buf ~into_off:0 in
    Some (Bytes.sub_string buf 0 n)

(* --- verify functions: recovery + fsck + durability oracle --- *)

let verify_pmfs device expectations =
  let fs = Pmfs.mount device () in
  Fsck.check fs @ check_expectations ~read_file:(read_pmfs fs) expectations

let verify_hinfs device expectations =
  let fs = Fs.mount device ~daemons:false () in
  Fsck.check (Fs.pmfs fs)
  @ check_expectations ~read_file:(read_hinfs fs) expectations

(* --- PMFS scenarios --- *)

(* Creates and synchronous writes: every acknowledged op must be durable,
   every in-flight op atomic. *)
let pmfs_create_write =
  {
    name = "pmfs-create-write";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:16 () in
        ignore device;
        ctl.start ();
        List.iteri
          (fun i len ->
            let name = Fmt.str "file%d" i in
            let data = content name len in
            ctl.expect name (Either (Absent, Content ""));
            let ino = Pmfs.create_file fs ~dir:root name in
            ctl.expect name (Exactly (Content ""));
            ctl.expect name (Either (Content "", Content data));
            ignore
              (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
                 ~sync:true);
            ctl.expect name (Exactly (Content data));
            ctl.checkpoint (Fmt.str "after-%s" name))
          [ 96; 700; 4096; 6000 ]);
    verify = verify_pmfs;
  }

(* In-place overwrite: PMFS does not journal data, so a crash mid-overwrite
   may tear the range — the oracle retracts its expectation for the
   duration and fsck still has to hold on every image. *)
let pmfs_overwrite =
  {
    name = "pmfs-overwrite";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:16 () in
        ignore device;
        let len = 5000 in
        let before = content "ow-before" len in
        let ino = Pmfs.create_file fs ~dir:root "ow" in
        ignore
          (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of before) ~src_off:0 ~len
             ~sync:true);
        ctl.start ();
        ctl.expect "ow" (Exactly (Content before));
        ctl.checkpoint "steady";
        let after = content "ow-after" len in
        ctl.retract "ow";
        ignore
          (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of after) ~src_off:0 ~len
             ~sync:true);
        ctl.expect "ow" (Exactly (Content after));
        ctl.checkpoint "overwritten");
    verify = verify_pmfs;
  }

(* Namespace metadata: mkdir, nested creates, unlink, rename. *)
let pmfs_namespace =
  {
    name = "pmfs-namespace";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:16 () in
        ignore device;
        ctl.start ();
        let d = Pmfs.mkdir fs ~dir:root "d" in
        let write_file ~dir name len =
          let data = content name len in
          let path = "d/" ^ name in
          ctl.expect path (Either (Absent, Content ""));
          let ino = Pmfs.create_file fs ~dir name in
          ctl.expect path (Either (Content "", Content data));
          ignore
            (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
               ~sync:true);
          ctl.expect path (Exactly (Content data));
          data
        in
        let data_a = write_file ~dir:d "a" 300 in
        let data_b = write_file ~dir:d "b" 1200 in
        ctl.checkpoint "populated";
        ctl.expect "d/a" (Either (Content data_a, Absent));
        Pmfs.unlink fs ~dir:d "a";
        ctl.expect "d/a" (Exactly Absent);
        ctl.checkpoint "unlinked";
        ctl.expect "d/b" (Either (Content data_b, Absent));
        ctl.expect "d/c" (Either (Absent, Content data_b));
        Pmfs.rename fs ~src_dir:d ~src:"b" ~dst_dir:d ~dst:"c";
        ctl.expect "d/b" (Exactly Absent);
        ctl.expect "d/c" (Exactly (Content data_b));
        ctl.checkpoint "renamed");
    verify = verify_pmfs;
  }

(* A transaction left open at the crash: recovery must roll the journaled
   in-place update back (undo-log roll-back exercised end to end). *)
let pmfs_torn_txn =
  {
    name = "pmfs-torn-txn";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:16 () in
        let len = 900 in
        let data = content "torn" len in
        let ino = Pmfs.create_file fs ~dir:root "torn" in
        ignore
          (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
             ~sync:true);
        ctl.start ();
        ctl.expect "torn" (Exactly (Content data));
        ctl.checkpoint "pre-txn";
        (* Journal the size field, scribble over it, persist the scribble —
           then "crash" with the transaction uncommitted. *)
        let geo = Pmfs.geometry fs in
        let log = Pmfs.log fs in
        let txn = Log.begin_txn log in
        let addr = Layout.Inode.addr geo ino + Layout.Inode.size_off in
        Log.log log txn ~addr ~len:8;
        Layout.Inode.set_size device ~cat geo ino 0;
        Device.clflush device ~cat ~addr ~len:8;
        Device.mfence device ~cat);
    verify = verify_pmfs;
  }

(* --- HiNFS scenarios --- *)

(* Lazy-persistent writes through the DRAM buffer: nothing promised until
   fsync returns, everything promised after. *)
let hinfs_fsync =
  {
    name = "hinfs-fsync";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs =
          Fs.mkfs_and_mount device ~journal_blocks:16 ~daemons:false ()
        in
        ctl.start ();
        let pm = Fs.pmfs fs in
        List.iteri
          (fun i len ->
            let name = Fmt.str "h%d" i in
            let data = content name len in
            ctl.expect name (Either (Absent, Content ""));
            let ino = Pmfs.create_file pm ~dir:root name in
            ctl.expect name (Either (Content "", Content data));
            ignore
              (Fs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
                 ~sync:false);
            Fs.fsync fs ~ino;
            ctl.expect name (Exactly (Content data));
            ctl.checkpoint (Fmt.str "fsynced-%s" name))
          [ 800; 4500; 2000 ]);
    verify = verify_hinfs;
  }

(* Unlink with buffered dirty data (the short-lived-file path): the pending
   ordered transaction must be aborted, never half-applied. *)
let hinfs_unlink_buffered =
  {
    name = "hinfs-unlink-buffered";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs =
          Fs.mkfs_and_mount device ~journal_blocks:16 ~daemons:false ()
        in
        ctl.start ();
        let pm = Fs.pmfs fs in
        (* fsynced file, then unlinked *)
        let data = content "u1" 1500 in
        ctl.expect "u1" (Either (Absent, Content ""));
        let ino = Pmfs.create_file pm ~dir:root "u1" in
        ctl.expect "u1" (Either (Content "", Content data));
        ignore
          (Fs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len:1500
             ~sync:false);
        Fs.fsync fs ~ino;
        ctl.expect "u1" (Exactly (Content data));
        ctl.checkpoint "u1-fsynced";
        ctl.expect "u1" (Either (Content data, Absent));
        Fs.unlink fs ~dir:root "u1";
        ctl.expect "u1" (Exactly Absent);
        (* buffered-only file unlinked before any writeback (dead-block
           drop): its data must never reach the medium half-way *)
        let d2 = content "u2" 3000 in
        ctl.expect "u2" (Either (Absent, Content ""));
        let ino2 = Pmfs.create_file pm ~dir:root "u2" in
        ctl.expect "u2" (Either (Content "", Absent));
        ignore
          (Fs.write fs ~ino:ino2 ~off:0 ~src:(bytes_of d2) ~src_off:0
             ~len:3000 ~sync:false);
        Fs.unlink fs ~dir:root "u2";
        ctl.expect "u2" (Exactly Absent);
        ctl.checkpoint "u2-dropped");
    verify = verify_hinfs;
  }

(* --- nvcache scenarios ---

   ext4 (ordered journal, sync mount) behind the NVMM write-cache tier.
   Every fsync'd file must survive any crash: the destage backlog lives
   only in the cache area, so mount-time replay is on the recovery path of
   every image, and the nested pass re-crashes inside the replay itself
   (poke_flushed/fence_untimed make it enumerable). Mid-scenario
   destage_all puts the batch write-back and the persistent truncation
   (head advance / entry zeroing) under enumeration too. *)

module Extfs = Hinfs_extfs.Extfs
module Nvcache = Hinfs_nvcache.Nvcache

let ext_root = 1

let read_ext fs path =
  let parts =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "")
  in
  let rec go dir = function
    | [] -> Some dir
    | p :: rest -> (
      match Extfs.lookup fs ~dir p with
      | None -> None
      | Some ino -> go ino rest)
  in
  match go ext_root parts with
  | None -> None
  | Some ino ->
    let size = Extfs.inode_size fs ino in
    let buf = Bytes.create size in
    let n = Extfs.read fs ~ino ~off:0 ~len:size ~into:buf ~into_off:0 in
    Some (Bytes.sub_string buf 0 n)

let verify_nvcache device expectations =
  let st =
    Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true ~daemons:false ()
  in
  let replay_violations =
    match Nvcache.last_recovery st with
    | Some r when r.Nvcache.rec_dropped > 0 ->
      [ Fmt.str "nvcache replay dropped %d record(s)" r.Nvcache.rec_dropped ]
    | _ -> []
  in
  replay_violations
  @ check_expectations ~read_file:(read_ext (Nvcache.fs st)) expectations

let nvcache_scenario ~name ~design =
  {
    name;
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let st =
          Nvcache.mkfs_and_mount device ~design ~mode:Extfs.Ext4
            ~journal_blocks:16 ~sync_mount:true ~daemons:false ()
        in
        let fs = Nvcache.fs st in
        let cache = Nvcache.cache st in
        ctl.start ();
        (* The oracle is armed only across the create+write window's end:
           until fsync returns nothing is promised (retracted), after it
           the exact content is. *)
        let write_file name len =
          let data = content name len in
          ctl.retract name;
          let ino = Extfs.create_file fs ~dir:ext_root name in
          ignore
            (Extfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
               ~sync:true);
          Extfs.fsync fs ~ino;
          ctl.expect name (Exactly (Content data));
          (ino, data)
        in
        let ino0, d0 = write_file "n0" 1000 in
        ctl.checkpoint "n0-fsynced";
        ignore (write_file "n1" 3500);
        ctl.checkpoint "n1-fsynced";
        (* Drain under enumeration: crash points inside the batch
           write-back and the persistent truncation. *)
        Nvcache.destage_all cache;
        ctl.checkpoint "destaged";
        (* Overwrite an fsync'd single-block file: any crash image shows
           the old or the new bytes, never a torn mix (record/slot CRC
           cuts the replay prefix before a partial version applies). *)
        let d0' = content "n0-v2" 1000 in
        ctl.expect "n0" (Either (Content d0, Content d0'));
        ignore
          (Extfs.write fs ~ino:ino0 ~off:0 ~src:(bytes_of d0') ~src_off:0
             ~len:1000 ~sync:true);
        Extfs.fsync fs ~ino:ino0;
        ctl.expect "n0" (Exactly (Content d0'));
        ctl.checkpoint "n0-overwritten";
        (* Left in the backlog at the final crash: replay must carry it. *)
        ignore (write_file "n2" 2200);
        ctl.checkpoint "n2-fsynced");
    verify = verify_nvcache;
  }

let nvlog_fsync_destage =
  nvcache_scenario ~name:"nvlog-fsync-destage" ~design:Nvcache.Logging

let nvpage_fsync_destage =
  nvcache_scenario ~name:"nvpage-fsync-destage" ~design:Nvcache.Paging

(* --- known-bad fixtures (checker self-tests) --- *)

let fixture_payload = content "fixture" 64
let fixture_data_addr = 4096
let fixture_flag_addr = 8192
let fixture_flag = 0xAB

let fixture_verify device _expectations =
  let flag =
    Bytes.get_uint8
      (Device.peek_persistent device ~addr:fixture_flag_addr ~len:1)
      0
  in
  if flag = fixture_flag then begin
    let data =
      Device.peek_persistent device ~addr:fixture_data_addr
        ~len:(String.length fixture_payload)
    in
    if Bytes.to_string data <> fixture_payload then
      [ "commit flag persisted before its payload" ]
    else []
  end
  else []

(* The bug: the payload is never flushed before the commit flag is flushed
   and fenced, so a legal crash image has the flag set over stale data.
   Crashmc must find it (expect_violation = true). *)
let fixture_missing_fence =
  {
    name = "fixture-missing-fence";
    config = small_config;
    expect_violation = true;
    run =
      (fun device ctl ->
        ctl.start ();
        Device.write_cached device ~cat ~addr:fixture_data_addr
          ~src:(bytes_of fixture_payload) ~off:0
          ~len:(String.length fixture_payload);
        (* BUG: no clflush of the payload, no ordering fence *)
        let flag = Bytes.make 1 (Char.chr fixture_flag) in
        Device.write_cached device ~cat ~addr:fixture_flag_addr ~src:flag
          ~off:0 ~len:1;
        Device.clflush device ~cat ~addr:fixture_flag_addr ~len:1;
        Device.mfence device ~cat);
    verify = fixture_verify;
  }

(* The same protocol done right: payload flushed and fenced before the
   flag. No crash image may show the flag without the payload. *)
let fixture_correct_fence =
  {
    name = "fixture-correct-fence";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        ctl.start ();
        Device.write_cached device ~cat ~addr:fixture_data_addr
          ~src:(bytes_of fixture_payload) ~off:0
          ~len:(String.length fixture_payload);
        Device.clflush device ~cat ~addr:fixture_data_addr
          ~len:(String.length fixture_payload);
        Device.mfence device ~cat;
        let flag = Bytes.make 1 (Char.chr fixture_flag) in
        Device.write_cached device ~cat ~addr:fixture_flag_addr ~src:flag
          ~off:0 ~len:1;
        Device.clflush device ~cat ~addr:fixture_flag_addr ~len:1;
        Device.mfence device ~cat);
    verify = fixture_verify;
  }

(* Deliberately *non-idempotent* recovery: a recovery step that is only
   correct if it runs exactly once. The workload persists a counter and a
   "recovery needed" marker; the fixture's verify plays recovery by
   incrementing the counter (a relative update — the bug) before clearing
   the marker, with a fence between the two. On any single crash image this
   is invisible: verify runs once and the counter lands on the expected
   value. Only the nested enumeration catches it — a re-crash after the
   increment's fence but before the marker clear leaves both the
   incremented counter and the marker, so the second recovery increments
   again. This is the vacuity check for crash-during-recovery coverage:
   without [recrash_checks] the fixture is reported as missed. *)
let nonid_counter_addr = 4096
let nonid_marker_addr = 4096 + 64 (* separate cacheline *)
let nonid_base = 7

let fixture_nonidempotent_recovery =
  {
    name = "fixture-nonidempotent-recovery";
    config = small_config;
    expect_violation = true;
    run =
      (fun device ctl ->
        ctl.start ();
        let b = Bytes.make 1 (Char.chr nonid_base) in
        Device.write_cached device ~cat ~addr:nonid_counter_addr ~src:b ~off:0
          ~len:1;
        Device.clflush device ~cat ~addr:nonid_counter_addr ~len:1;
        let m = Bytes.make 1 '\001' in
        Device.write_cached device ~cat ~addr:nonid_marker_addr ~src:m ~off:0
          ~len:1;
        Device.clflush device ~cat ~addr:nonid_marker_addr ~len:1;
        Device.mfence device ~cat);
    verify =
      (fun device _expectations ->
        let peek addr =
          Bytes.get_uint8 (Device.peek_persistent device ~addr ~len:1) 0
        in
        let poke addr v =
          Device.poke_flushed device ~addr
            ~src:(Bytes.make 1 (Char.chr v))
            ~off:0 ~len:1;
          Device.fence_untimed device
        in
        (if peek nonid_marker_addr = 1 then begin
           (* BUG: relative update ordered before the marker clear — not
              idempotent if recovery itself is interrupted in between. *)
           poke nonid_counter_addr (peek nonid_counter_addr + 1);
           poke nonid_marker_addr 0
         end);
        let counter = peek nonid_counter_addr in
        if counter > nonid_base + 1 then
          [
            Fmt.str
              "non-idempotent recovery replay: counter %d (max legal %d)"
              counter (nonid_base + 1);
          ]
        else []);
  }

(* --- cowfs scenarios: whole-image digest oracle ---

   The CoW substrate promises more than per-path durability: every legal
   crash image must mount and bit-match some state the workload actually
   committed — the fenced root-descriptor swap is the only publication
   point, so there is no in-between. The scenario [run] records
   [Cowfs.state_digest] after mkfs and after every completed operation
   (each op ends in a root swap); [verify] mounts the image (a mount
   failure is itself a violation), recomputes the digest, and requires
   membership in the recorded set plus a clean CoW fsck (refcounts,
   reachability, namespace). *)

module Cowfs = Hinfs_pmfs.Cowfs
module Faultops = Hinfs_nvmm.Faultops
module Errno = Hinfs_vfs.Errno

(* The digest set is per-scenario: [run] resets it, and run_scenario
   verifies a scenario's images before the next scenario runs. *)
let cow_digests : (string, unit) Hashtbl.t = Hashtbl.create 64
let cow_record fs = Hashtbl.replace cow_digests (Cowfs.state_digest fs) ()

let verify_cow device _expectations =
  match Cowfs.mount device () with
  | exception e -> [ Fmt.str "cow mount failed: %s" (Printexc.to_string e) ]
  | fs ->
    let d = Cowfs.state_digest fs in
    (if Hashtbl.mem cow_digests d then []
     else
       [
         Fmt.str
           "cow image digest %s.. matches none of the %d committed states"
           (String.sub d 0 (min 12 (String.length d)))
           (Hashtbl.length cow_digests);
       ])
    @ Fsck.cow_violations fs

let cow_write fs ~ino name len =
  let data = content name len in
  ignore
    (Cowfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0 ~len
       ~sync:true)

(* Plain ops, snapshot, divergence, rollback, clone, snapshot GC: the
   full snapshot lifecycle under crash enumeration. *)
let cow_commit_snapshots =
  {
    name = "cow-commit-snapshots";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        Hashtbl.reset cow_digests;
        let fs = Cowfs.mkfs_and_mount device () in
        cow_record fs;
        ctl.start ();
        let a = Cowfs.create_file fs ~dir:Cowfs.root_ino "a" in
        cow_record fs;
        cow_write fs ~ino:a "a-v1" 900;
        cow_record fs;
        ctl.checkpoint "a-written";
        let snap = Cowfs.snapshot fs in
        cow_record fs;
        ctl.checkpoint "snapshotted";
        cow_write fs ~ino:a "a-v2" 1400;
        cow_record fs;
        Cowfs.unlink fs ~dir:Cowfs.root_ino "a";
        cow_record fs;
        ctl.checkpoint "diverged";
        Cowfs.rollback fs ~snap_id:snap;
        cow_record fs;
        ctl.checkpoint "rolled-back";
        let dup = Cowfs.clone fs ~snap_id:snap in
        cow_record fs;
        Cowfs.snapshot_delete fs ~snap_id:snap;
        cow_record fs;
        Cowfs.snapshot_delete fs ~snap_id:dup;
        cow_record fs;
        ctl.checkpoint "snapshots-gone");
    verify = verify_cow;
  }

(* Whole-FS transactions: a committed txn's files and directory appear
   atomically at txn_commit's single root swap (no crash image shows a
   strict subset), and an aborted txn is invisible in every image. *)
let cow_txn_multifile =
  {
    name = "cow-txn-multifile";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        Hashtbl.reset cow_digests;
        let fs = Cowfs.mkfs_and_mount device () in
        cow_record fs;
        ctl.start ();
        let base = Cowfs.create_file fs ~dir:Cowfs.root_ino "base" in
        cow_record fs;
        cow_write fs ~ino:base "base" 600;
        cow_record fs;
        ctl.checkpoint "pre-txn";
        Cowfs.txn_begin fs;
        let d = Cowfs.mkdir fs ~dir:Cowfs.root_ino "txn" in
        List.iter
          (fun (name, len) ->
            let ino = Cowfs.create_file fs ~dir:d name in
            cow_write fs ~ino name len)
          [ ("t0", 300); ("t1", 2500); ("t2", 1200) ];
        Cowfs.txn_commit fs;
        cow_record fs;
        ctl.checkpoint "txn-committed";
        Cowfs.txn_begin fs;
        let doomed = Cowfs.create_file fs ~dir:d "doomed" in
        cow_write fs ~ino:doomed "doomed" 2000;
        Cowfs.unlink fs ~dir:Cowfs.root_ino "base";
        Cowfs.txn_abort fs;
        cow_record fs;
        ctl.checkpoint "txn-aborted");
    verify = verify_cow;
  }

(* Mid-op failures through the commit path: a forced block-allocation
   failure inside an overwrite and an injected fault at the head of
   commit itself must both abort net-zero — same free-block count, same
   committed digest — and every crash image of the aborted windows must
   still mount to a recorded state. *)
let cow_enospc_abort =
  {
    name = "cow-enospc-abort";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        Hashtbl.reset cow_digests;
        let fs = Cowfs.mkfs_and_mount device () in
        cow_record fs;
        ctl.start ();
        let ino = Cowfs.create_file fs ~dir:Cowfs.root_ino "victim" in
        cow_record fs;
        cow_write fs ~ino "victim-v1" 5000;
        cow_record fs;
        ctl.checkpoint "steady";
        let free0 = Cowfs.free_data_blocks fs in
        let digest0 = Cowfs.state_digest fs in
        let fo = Faultops.create ~seed:7L () in
        Cowfs.attach_faultops fs (Some fo);
        Faultops.force fo Faultops.Block_alloc ~after:2;
        (match
           Cowfs.write fs ~ino ~off:0
             ~src:(bytes_of (content "victim-v2" 9000))
             ~src_off:0 ~len:9000 ~sync:true
         with
        | _ -> failwith "cow-enospc-abort: forced allocation did not fail"
        | exception Errno.Fs_error (Errno.ENOSPC, _) -> ());
        Cowfs.attach_faultops fs None;
        if Cowfs.free_data_blocks fs <> free0 then
          failwith "cow-enospc-abort: aborted op leaked blocks";
        if Cowfs.state_digest fs <> digest0 then
          failwith "cow-enospc-abort: aborted op changed committed state";
        ctl.checkpoint "enospc-aborted";
        let armed = ref true in
        Cowfs.set_commit_fault fs
          (Some
             (fun () ->
               if !armed then begin
                 armed := false;
                 true
               end
               else false));
        (match
           Cowfs.write fs ~ino ~off:0
             ~src:(bytes_of (content "victim-v3" 4000))
             ~src_off:0 ~len:4000 ~sync:true
         with
        | _ -> failwith "cow-enospc-abort: forced commit fault did not fail"
        | exception Errno.Fs_error (Errno.EIO, _) -> ());
        Cowfs.set_commit_fault fs None;
        if Cowfs.state_digest fs <> digest0 then
          failwith "cow-enospc-abort: failed commit changed committed state";
        ctl.checkpoint "commit-fault-aborted";
        cow_write fs ~ino "victim-v2" 9000;
        cow_record fs;
        ctl.checkpoint "retried");
    verify = verify_cow;
  }

(* --- cross-shard rename: the epoch commit under crash enumeration ---

   Two directories in different shards; renaming between them spans two
   journals and commits through the epoch record. The oracle is a
   correlation the per-path expectations cannot express: at EVERY crash
   image (and every recovery re-crash) the file must be reachable at
   exactly one of its two names — src XOR dst — with its content intact.
   Both-present means the destination's add committed without the
   source's remove; neither means the reverse. The epoch record makes
   the pair atomic, so the invariant holds across the whole scenario. *)

let xshard_content = content "xshard" 700
let xshard_names = [ "da/f"; "db/g" ]

let verify_xshard device expectations =
  let fs = Pmfs.mount device () in
  let observed =
    List.filter_map (fun path -> read_pmfs fs path) xshard_names
  in
  let rename_errors =
    match observed with
    | [ c ] when c = xshard_content -> []
    | [ c ] ->
      [
        Fmt.str
          "cross-shard rename: file content torn (%d bytes, expected %d)"
          (String.length c)
          (String.length xshard_content);
      ]
    | [] ->
      [ "cross-shard rename: file reachable at neither src nor dst" ]
    | _ -> [ "cross-shard rename: file reachable at both src and dst" ]
  in
  Fsck.check fs @ rename_errors
  @ check_expectations ~read_file:(read_pmfs fs) expectations

(* Shared setup: a 2-shard image, one directory in each shard (round-robin
   placement gives mkdir #1 shard 0 and mkdir #2 shard 1), and the file
   durably written before enumeration starts. *)
let xshard_setup device =
  let fs = Pmfs.mkfs_and_mount device ~journal_blocks:32 ~shards:2 () in
  let da = Pmfs.mkdir fs ~dir:root "da" in
  let db = Pmfs.mkdir fs ~dir:root "db" in
  if Pmfs.shard_of_ino fs da = Pmfs.shard_of_ino fs db then
    failwith "xshard setup: directories landed in the same shard";
  let ino = Pmfs.create_file fs ~dir:da "f" in
  ignore
    (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of xshard_content) ~src_off:0
       ~len:(String.length xshard_content) ~sync:true);
  (fs, da, db)

let pmfs_rename_cross_shard =
  {
    name = "pmfs-rename-cross-shard";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs, da, db = xshard_setup device in
        ctl.start ();
        ctl.checkpoint "pre-rename";
        Pmfs.rename fs ~src_dir:da ~src:"f" ~dst_dir:db ~dst:"g";
        ctl.checkpoint "renamed";
        Pmfs.rename fs ~src_dir:db ~src:"g" ~dst_dir:da ~dst:"f";
        ctl.checkpoint "renamed-back");
    verify = verify_xshard;
  }

(* Deliberately broken cross-shard rename: the epoch protocol is skipped
   and the two participating transactions commit independently, one
   journal fence apart. A crash between the two commits recovers with the
   destination's add durable and the source's remove rolled back (file at
   both names) — or the reverse, depending on order. Crashmc must flag
   it: the vacuity check for the epoch-commit oracle. *)
let fixture_skip_epoch_commit =
  {
    name = "fixture-skip-epoch-commit";
    config = small_config;
    expect_violation = true;
    run =
      (fun device ctl ->
        let fs, da, db = xshard_setup device in
        ctl.start ();
        Pmfs.set_sabotage_skip_epoch true;
        Fun.protect
          ~finally:(fun () -> Pmfs.set_sabotage_skip_epoch false)
          (fun () ->
            Pmfs.rename fs ~src_dir:da ~src:"f" ~dst_dir:db ~dst:"g");
        ctl.checkpoint "sabotaged-rename");
    verify = verify_xshard;
  }

(* Deliberately broken commit: the payload fence before the root swap is
   skipped, so the new descriptor races its own shadow payload inside one
   fence window. A legal crash image can then publish a root whose trees
   are stale or half-written — failing the digest/fsck oracle (or failing
   to mount coherently). Crashmc must flag it: the vacuity check for the
   whole-image oracle. *)
let fixture_torn_root_swap =
  {
    name = "fixture-torn-root-swap";
    config = small_config;
    expect_violation = true;
    run =
      (fun device ctl ->
        Hashtbl.reset cow_digests;
        let fs = Cowfs.mkfs_and_mount device () in
        cow_record fs;
        let ino = Cowfs.create_file fs ~dir:Cowfs.root_ino "t" in
        cow_write fs ~ino "torn-v1" 3000;
        cow_record fs;
        ctl.start ();
        Cowfs.set_sabotage_torn_root fs true;
        cow_write fs ~ino "torn-v2" 3000;
        cow_record fs;
        ctl.checkpoint "torn-commit");
    verify = verify_cow;
  }

(* --- per-shard fault domain: crash during online repair ---

   A 4-shard image with one durable file per shard; the victim shard's
   journal sub-region is poisoned, the shard is degraded, and a full
   repair pass runs to re-admission with crash enumeration armed. Repair
   writes go through the untimed reliable-store path, so the enumerated
   states include mid-Repairing images (journal partially re-replayed and
   wiped, epoch record re-persisted, scrub zeroes landed): every one must
   mount, pass fsck, and preserve all four durable files. *)
let pmfs_shard_repair =
  {
    name = "pmfs-shard-repair";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:32 ~shards:4 () in
        let dir_of = Array.make 4 None in
        for i = 0 to 15 do
          let name = Fmt.str "s%d" i in
          let ino = Pmfs.mkdir fs ~dir:root name in
          let s = Pmfs.shard_of_ino fs ino in
          if dir_of.(s) = None then dir_of.(s) <- Some (name, ino)
        done;
        let files =
          Array.map
            (fun d ->
              let dname, dino = Option.get d in
              let data = content dname 900 in
              let ino = Pmfs.create_file fs ~dir:dino "f" in
              ignore
                (Pmfs.write fs ~ino ~off:0 ~src:(bytes_of data) ~src_off:0
                   ~len:(String.length data) ~sync:true);
              (dname ^ "/f", data))
            dir_of
        in
        let fault = Fault.create ~seed:77L () in
        Device.set_fault_model device (Some fault);
        ctl.start ();
        Array.iter
          (fun (path, data) -> ctl.expect path (Exactly (Content data)))
          files;
        ctl.checkpoint "pre-fault";
        let victim = 1 in
        let geo = Pmfs.geometry fs in
        let bs = geo.Hinfs_pmfs.Layout.block_size in
        let ls = (Device.config device).Config.cacheline_size in
        let first_block, blocks =
          Layout.journal_region geo victim
        in
        let total_lines = blocks * bs / ls in
        for k = 0 to 3 do
          Fault.poison_line fault
            ((first_block * bs / ls) + (k * total_lines / 4))
        done;
        Pmfs.degrade_shard fs victim "scenario: poisoned shard journal";
        let repaired, failed = Repair.run_once fs in
        if repaired <> 1 || failed <> 0 then
          failwith "shard repair pass did not re-admit the victim";
        if not (Pmfs.fully_healthy fs) then
          failwith "victim shard not healthy after repair";
        ctl.checkpoint "repaired");
    verify = verify_pmfs;
  }

(* --- served COMMIT durability: the NFS-style contract under crash ---

   A small PMFS served through lib/server: a synchronous client drives
   CREATE / unstable WRITE / COMMIT / stable WRITE / REMOVE through the
   full codec + session + handle-table + open-file-cache path, with
   crash enumeration armed across every request. The oracle follows the
   protocol's promise exactly: between an unstable WRITE and its COMMIT
   ack nothing is promised (the server may have placed any part of the
   data), but once COMMIT — or a FILE_SYNC write — is acknowledged the
   bytes must appear in every legal crash image. *)

module Server = Hinfs_server.Server
module Wire = Hinfs_server.Wire
module Ofcache = Hinfs_server.Ofcache

let serve_blk = 512

let serve_content tag nblocks =
  String.init (nblocks * serve_blk) (fun i ->
      Char.chr (Char.code 'a' + (Hashtbl.hash (tag, i / 16) mod 26)))

let pmfs_serve_commit =
  {
    name = "pmfs-serve-commit";
    config = small_config;
    expect_violation = false;
    run =
      (fun device ctl ->
        let fs = Pmfs.mkfs_and_mount device ~journal_blocks:16 () in
        let srv =
          Server.create ~workers:2 ~cache_cap:4 (Device.engine device)
            (Pmfs.handle fs)
        in
        Server.start srv;
        let sid = Server.establish srv in
        let rpc req =
          match Server.rpc srv ~sid req with
          | Wire.R_err e ->
            Errno.raise_error e "serve scenario: %s failed" (Wire.req_name req)
          | reply -> reply
        in
        ctl.start ();
        (* CREATE is journaled metadata: durable once acknowledged. *)
        ctl.expect "f" (Either (Absent, Content ""));
        let fh =
          match rpc (Wire.Create "/f") with
          | Wire.R_handle (fh, _) -> fh
          | _ -> failwith "serve scenario: unexpected CREATE reply"
        in
        ctl.expect "f" (Exactly (Content ""));
        ctl.checkpoint "created";
        (* Two unstable WRITEs: nothing promised until COMMIT returns. *)
        let d2 = serve_content "f-v1" 2 in
        ctl.retract "f";
        ignore (rpc (Wire.Write (fh, 0, String.sub d2 0 serve_blk, false)));
        ignore
          (rpc (Wire.Write (fh, serve_blk, String.sub d2 serve_blk serve_blk,
                            false)));
        (match rpc (Wire.Commit fh) with
        | Wire.R_ok _ -> ()
        | _ -> failwith "serve scenario: unexpected COMMIT reply");
        ctl.expect "f" (Exactly (Content d2));
        ctl.checkpoint "committed";
        (* A stable (FILE_SYNC) append: durable at the WRITE ack itself. *)
        let d3 = serve_content "f-v2" 1 in
        ctl.retract "f";
        ignore (rpc (Wire.Write (fh, 2 * serve_blk, d3, true)));
        ctl.expect "f" (Exactly (Content (d2 ^ d3)));
        ctl.checkpoint "stable-written";
        (* REMOVE drops the cached open and stales the handle before the
           unlink; the lapsed handle must be answered with ESTALE, never
           stale data. *)
        ctl.expect "f" (Either (Content (d2 ^ d3), Absent));
        (match rpc (Wire.Remove "/f") with
        | Wire.R_ok _ -> ()
        | _ -> failwith "serve scenario: unexpected REMOVE reply");
        ctl.expect "f" (Exactly Absent);
        ctl.checkpoint "removed";
        (match Server.rpc srv ~sid (Wire.Getattr fh) with
        | Wire.R_err Errno.ESTALE -> ()
        | _ -> failwith "serve scenario: removed handle not ESTALE");
        Ofcache.drop_all (Server.cache srv);
        Server.stop srv);
    verify = verify_pmfs;
  }

let all =
  [
    pmfs_create_write;
    pmfs_overwrite;
    pmfs_namespace;
    pmfs_torn_txn;
    pmfs_rename_cross_shard;
    pmfs_shard_repair;
    pmfs_serve_commit;
    hinfs_fsync;
    hinfs_unlink_buffered;
    nvlog_fsync_destage;
    nvpage_fsync_destage;
    cow_commit_snapshots;
    cow_txn_multifile;
    cow_enospc_abort;
    fixture_missing_fence;
    fixture_correct_fence;
    fixture_nonidempotent_recovery;
    fixture_torn_root_swap;
    fixture_skip_epoch_commit;
  ]

let by_name name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all
