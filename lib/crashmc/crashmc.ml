(* Crash-consistency model checker over the NVMM device model.

   A scenario runs a workload on a recording device (see Device's
   persistence-event recorder). Crash states are captured automatically at
   every mfence — before the fence takes effect, so the to-be-ordered line
   versions are still undecided — plus at explicit checkpoints and at the
   end of the run. For each captured state, crashmc enumerates concrete
   crash images: exhaustively when the number of undecided lines is at most
   [k_exhaustive] (and the product of per-line candidate counts fits the
   image budget), otherwise by seeded random sampling with Hinfs_sim.Rng,
   always including the two extreme images (nothing extra persisted /
   everything persisted). Each image is materialised into a fresh device
   with Device.of_snapshot and handed to the scenario's [verify] function,
   which runs mount-time recovery, fsck invariants and the durability
   oracle against the expectations the scenario had registered at that
   point.

   Everything is deterministic given [params.seed]: the simulation itself
   is deterministic, captured states are keyed by fence order, and the
   sampler is the only consumer of the Rng. *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Config = Hinfs_nvmm.Config

(* --- durability oracle expectations --- *)

type file_expect = Absent | Content of string

type expectation =
  | Exactly of file_expect
  | Either of file_expect * file_expect
      (** in-flight operation: old or new, never anything else (torn) *)

let pp_file_expect ppf = function
  | Absent -> Fmt.string ppf "absent"
  | Content s -> Fmt.pf ppf "%d-byte content" (String.length s)

let pp_expectation ppf = function
  | Exactly e -> pp_file_expect ppf e
  | Either (a, b) ->
    Fmt.pf ppf "either %a or %a" pp_file_expect a pp_file_expect b

(* Check one observed file state against an expectation; [path] only for
   the message. *)
let check_expectation ~path ~actual expectation =
  let matches = function
    | Absent -> actual = None
    | Content s -> actual = Some s
  in
  let ok =
    match expectation with
    | Exactly e -> matches e
    | Either (a, b) -> matches a || matches b
  in
  if ok then []
  else
    [
      Fmt.str "durability: %S expected %a, found %s" path pp_expectation
        expectation
        (match actual with
        | None -> "absent"
        | Some s -> Fmt.str "%d-byte content" (String.length s));
    ]

(* Convenience for scenario verify functions: look every expected path up
   with [read_file] (None = absent). *)
let check_expectations ~read_file expectations =
  List.concat_map
    (fun (path, expectation) ->
      let actual =
        try read_file path
        with e ->
          Some (Fmt.str "<read failed: %s>" (Printexc.to_string e))
      in
      check_expectation ~path ~actual expectation)
    expectations

(* --- scenarios --- *)

(* Handed to the scenario's [run] function to drive the checker. *)
type ctl = {
  start : unit -> unit;
      (** arm recording + automatic fence captures; call after setup
          (mkfs/mount) so the baseline is the freshly initialised image *)
  checkpoint : string -> unit;  (** capture a crash state here *)
  expect : string -> expectation -> unit;
      (** register/replace the durability expectation for a path *)
  retract : string -> unit;
      (** drop a path's expectation (non-atomic operation in flight) *)
}

type scenario = {
  name : string;
  config : Config.t;
  expect_violation : bool;
      (** checker self-test fixture: the scenario contains a deliberate
          persistency bug and crashmc must flag it *)
  run : Device.t -> ctl -> unit;
  verify : Device.t -> (string * expectation) list -> string list;
      (** mount the crash image, run recovery + fsck + the durability
          oracle; return violations *)
}

type params = {
  seed : int64;
  k_exhaustive : int;  (** exhaustive enumeration when pending lines <= K *)
  samples_per_state : int;  (** sampled images per state beyond K *)
  max_images_per_state : int;  (** exhaustive-product budget per state *)
  max_states : int;  (** captured crash states per scenario (adaptive) *)
  recrash_states : int;
      (** crash states captured *during recovery* per outer image *)
  recrash_samples : int;
      (** nested images per recovery state (incl. the two extremes) *)
  recrash_checks : int;
      (** per-scenario budget of nested re-crash verifications (0 turns
          crash-during-recovery checking off) *)
}

let default_params =
  {
    seed = 42L;
    k_exhaustive = 10;
    samples_per_state = 20;
    max_images_per_state = 64;
    max_states = 20;
    recrash_states = 4;
    recrash_samples = 3;
    recrash_checks = 48;
  }

type scenario_result = {
  sr_name : string;
  sr_expect_violation : bool;
  sr_states : int;  (** crash states captured *)
  sr_images : int;  (** distinct crash images explored *)
  sr_checked : int;  (** image verifications executed *)
  sr_recovery_states : int;
      (** crash states captured during recovery (nested) *)
  sr_recovery_images : int;  (** nested re-crash images verified *)
  sr_violations : (string * string) list;  (** (state label, message) *)
}

(* --- enumeration --- *)

(* All choice vectors of the mixed-radix space [counts] (row-major). *)
let all_vectors counts =
  let n = Array.length counts in
  let vec = Array.make n 0 in
  let acc = ref [] in
  let rec go i =
    if i = n then acc := Array.copy vec :: !acc
    else
      for c = 0 to counts.(i) - 1 do
        vec.(i) <- c;
        go (i + 1)
      done
  in
  go 0;
  List.rev !acc

let sampled_vectors rng counts ~samples =
  let n = Array.length counts in
  let extremes =
    [ Array.make n 0; Array.init n (fun i -> counts.(i) - 1) ]
  in
  let rec draw k acc =
    if k = 0 then List.rev acc
    else draw (k - 1) (Array.init n (fun i -> Rng.int rng counts.(i)) :: acc)
  in
  extremes @ draw (max 0 (samples - 2)) []

let vectors_for rng params (state : Device.crash_state) =
  let counts =
    Array.of_list (List.map (fun (_, c) -> Array.length c) state.cs_choices)
  in
  let n = Array.length counts in
  let cap = params.max_images_per_state in
  let total =
    Array.fold_left (fun acc c -> if acc > cap then acc else acc * c) 1 counts
  in
  if n = 0 then [ [||] ]
  else if n <= params.k_exhaustive && total <= cap then all_vectors counts
  else sampled_vectors rng counts ~samples:params.samples_per_state

(* Content key of one concrete image: the guaranteed medium plus the chosen
   candidate per undecided line. Images identical as byte strings get the
   same key (without hashing the whole medium per image). *)
let image_key ~base_digest (state : Device.crash_state) vec =
  let b = Buffer.create 256 in
  Buffer.add_string b base_digest;
  List.iteri
    (fun i (idx, cands) ->
      Buffer.add_string b (string_of_int idx);
      Buffer.add_char b ':';
      Buffer.add_bytes b cands.(vec.(i));
      Buffer.add_char b ';')
    state.cs_choices;
  Digest.string (Buffer.contents b)

(* Run [verify] on a materialised image in a fresh simulation. *)
let verify_image scenario image expectations =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let device = Device.of_snapshot engine stats scenario.config image in
  let out = ref [ "verification did not run" ] in
  Engine.spawn engine ~name:"crashmc-verify" (fun () ->
      out :=
        (try scenario.verify device expectations
         with e ->
           [ Fmt.str "verify raised: %s" (Printexc.to_string e) ]));
  (try Engine.run engine
   with e -> out := [ Fmt.str "verify engine: %s" (Printexc.to_string e) ]);
  !out

(* Run [verify] on a materialised image with the persistence recorder armed
   *during recovery*: every fence inside mount-time log recovery,
   superblock-replica repair and scrubbing becomes a nested crash point
   (crash -> partially recover -> crash again). The captured recovery
   states are enumerated like outer states (the two extremes plus seeded
   samples, content-deduped) and each nested image is verified again,
   unrecorded, against the same expectations: recovery must be idempotent
   under a re-crash at any fence epoch. Returns the first-pass violations
   plus any nested ones (labelled), and the nested state/image counts.
   [budget] bounds the nested verifications across a whole scenario. *)
let verify_image_recrash scenario params rng ~budget image expectations =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let device = Device.of_snapshot engine stats scenario.config image in
  let states = ref [] in
  let nstates = ref 0 in
  let fences = ref 0 in
  let stride = ref 1 in
  let on_fence () =
    incr fences;
    if !fences mod !stride = 0 && Device.pending_choice_lines device > 0
    then begin
      if !nstates >= params.recrash_states then begin
        states := List.filteri (fun i _ -> i mod 2 = 0) !states;
        nstates := List.length !states;
        stride := !stride * 2
      end;
      states :=
        Device.capture_crash_state
          ~label:(Fmt.str "recovery-fence-%d" !fences)
          device
        :: !states;
      incr nstates
    end
  in
  Device.enable_recording device;
  Device.set_on_fence device on_fence;
  let out = ref [ "verification did not run" ] in
  Engine.spawn engine ~name:"crashmc-verify" (fun () ->
      out :=
        (try scenario.verify device expectations
         with e ->
           [ Fmt.str "verify raised: %s" (Printexc.to_string e) ]));
  (try Engine.run engine
   with e -> out := [ Fmt.str "verify engine: %s" (Printexc.to_string e) ]);
  let nested_violations = ref [] in
  let recovery_states = List.rev !states in
  let seen = Hashtbl.create 64 in
  let nested = ref 0 in
  List.iter
    (fun (state : Device.crash_state) ->
      let base_digest = Digest.bytes state.cs_image in
      let counts =
        Array.of_list
          (List.map (fun (_, c) -> Array.length c) state.cs_choices)
      in
      let vecs =
        if Array.length counts = 0 then [ [||] ]
        else sampled_vectors rng counts ~samples:params.recrash_samples
      in
      List.iter
        (fun vec ->
          let key = image_key ~base_digest state vec in
          if (not (Hashtbl.mem seen key)) && !budget > 0 then begin
            Hashtbl.replace seen key ();
            decr budget;
            incr nested;
            let nimage = Device.materialize_crash_image state ~choice:vec in
            List.iter
              (fun v ->
                nested_violations :=
                  Fmt.str "[recovery-recrash %s] %s" state.cs_label v
                  :: !nested_violations)
              (verify_image scenario nimage expectations)
          end)
        vecs)
    recovery_states;
  (!out @ List.rev !nested_violations, List.length recovery_states, !nested)

(* --- scenario driver --- *)

let run_scenario ?(params = default_params) scenario =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let device = Device.create engine stats scenario.config in
  (* captured (state, expectations-at-capture), newest first *)
  let states = ref [] in
  let nstates = ref 0 in
  let expectations : (string, expectation) Hashtbl.t = Hashtbl.create 16 in
  let snapshot_expectations () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) expectations []
    |> List.sort compare
  in
  let capture label =
    states :=
      (Device.capture_crash_state ~label device, snapshot_expectations ())
      :: !states;
    incr nstates
  in
  (* Automatic capture at every fence, with adaptive thinning: when the
     budget fills, keep every other state and double the stride, so long
     runs still get evenly spread crash points. *)
  let fences = ref 0 in
  let stride = ref 1 in
  let on_fence () =
    incr fences;
    if !fences mod !stride = 0 && Device.pending_choice_lines device > 0
    then begin
      if !nstates >= params.max_states then begin
        states := List.filteri (fun i _ -> i mod 2 = 0) !states;
        nstates := List.length !states;
        stride := !stride * 2
      end;
      capture (Fmt.str "fence-%d" !fences)
    end
  in
  let started = ref false in
  let ctl =
    {
      start =
        (fun () ->
          started := true;
          Device.enable_recording device;
          Device.set_on_fence device on_fence);
      checkpoint = (fun label -> if !started then capture label);
      expect = (fun path e -> Hashtbl.replace expectations path e);
      retract = (fun path -> Hashtbl.remove expectations path);
    }
  in
  Engine.spawn engine ~name:("crashmc-" ^ scenario.name) (fun () ->
      scenario.run device ctl);
  Engine.run engine;
  capture "final";
  let ordered = List.rev !states in
  (* Enumerate and verify. *)
  let rng = Rng.create ~seed:params.seed in
  let seen = Hashtbl.create 1024 in
  let images = ref 0 in
  let checked = ref 0 in
  let violations = ref [] in
  let recrash_budget = ref params.recrash_checks in
  let recovery_states = ref 0 in
  let recovery_images = ref 0 in
  List.iter
    (fun ((state : Device.crash_state), exps) ->
      let base_digest = Digest.bytes state.cs_image in
      List.iter
        (fun vec ->
          let key = image_key ~base_digest state vec in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            incr images;
            incr checked;
            let image = Device.materialize_crash_image state ~choice:vec in
            let vs =
              if !recrash_budget > 0 then begin
                let vs, rstates, rimages =
                  verify_image_recrash scenario params rng
                    ~budget:recrash_budget image exps
                in
                recovery_states := !recovery_states + rstates;
                recovery_images := !recovery_images + rimages;
                vs
              end
              else verify_image scenario image exps
            in
            List.iter
              (fun v -> violations := (state.cs_label, v) :: !violations)
              vs
          end)
        (vectors_for rng params state))
    ordered;
  {
    sr_name = scenario.name;
    sr_expect_violation = scenario.expect_violation;
    sr_states = List.length ordered;
    sr_images = !images;
    sr_checked = !checked;
    sr_recovery_states = !recovery_states;
    sr_recovery_images = !recovery_images;
    sr_violations = List.rev !violations;
  }

(* --- suite --- *)

type report = { params : params; results : scenario_result list }

let run_suite ?(params = default_params) scenarios =
  { params; results = List.map (run_scenario ~params) scenarios }

let total_images report =
  List.fold_left (fun acc r -> acc + r.sr_images) 0 report.results

let total_states report =
  List.fold_left (fun acc r -> acc + r.sr_states) 0 report.results

let total_recovery_states report =
  List.fold_left (fun acc r -> acc + r.sr_recovery_states) 0 report.results

let total_recovery_images report =
  List.fold_left (fun acc r -> acc + r.sr_recovery_images) 0 report.results

(* Violations in scenarios that are supposed to be correct. *)
let unexpected_violations report =
  List.concat_map
    (fun r ->
      if r.sr_expect_violation then []
      else List.map (fun (st, v) -> (r.sr_name, st, v)) r.sr_violations)
    report.results

(* Buggy fixtures the checker failed to flag (vacuity check). *)
let missed_fixtures report =
  List.filter_map
    (fun r ->
      if r.sr_expect_violation && r.sr_violations = [] then Some r.sr_name
      else None)
    report.results

let ok report = unexpected_violations report = [] && missed_fixtures report = []

let pp_result ppf r =
  let status =
    match (r.sr_expect_violation, r.sr_violations) with
    | false, [] -> "ok"
    | false, _ -> "VIOLATIONS"
    | true, [] -> "FIXTURE MISSED"
    | true, _ -> "flagged (expected)"
  in
  Fmt.pf ppf "%-32s %4d states %6d images %5d recrash  %s" r.sr_name
    r.sr_states r.sr_images r.sr_recovery_images status;
  match (r.sr_expect_violation, r.sr_violations) with
  | false, _ :: _ ->
    List.iter
      (fun (st, v) -> Fmt.pf ppf "@,    [%s] %s" st v)
      r.sr_violations
  | true, (st, v) :: _ ->
    Fmt.pf ppf "@,    e.g. [%s] %s" st v
  | _ -> ()

let pp_report ppf report =
  Fmt.pf ppf "@[<v>crashmc: seed %Ld, K=%d, %d samples/state@,"
    report.params.seed report.params.k_exhaustive
    report.params.samples_per_state;
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_result r) report.results;
  Fmt.pf ppf
    "total: %d crash states, %d distinct crash images, %d recovery states, \
     %d re-crash images, %s@]"
    (total_states report) (total_images report)
    (total_recovery_states report)
    (total_recovery_images report)
    (if ok report then "all checks passed"
     else
       Fmt.str "%d unexpected violation(s), %d missed fixture(s)"
         (List.length (unexpected_violations report))
         (List.length (missed_fixtures report)))
