(* Workload abstraction and the multi-threaded driver.

   A workload provides a [setup] phase (population, untimed: the driver
   resets the stats afterwards) and a [worker] step executed in a loop by
   each thread until the virtual deadline. Workers report how many
   file-system operations each step performed so throughput matches
   filebench's ops/s accounting. *)

module Proc = Hinfs_sim.Proc
module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Vfs = Hinfs_vfs.Vfs
module Obs = Hinfs_obs.Obs

type context = {
  handle : Vfs.handle;
  rng : Rng.t;
  thread_id : int;
}

type t = {
  name : string;
  setup : Vfs.handle -> Rng.t -> unit;
  worker : context -> int; (* one step; returns ops performed *)
}

type result = {
  workload : string;
  fs_name : string;
  threads : int;
  elapsed_ns : int64;
  ops : int;
  ops_per_sec : float;
}

let pp_result ppf r =
  Fmt.pf ppf "%-12s %-14s %2d thr  %9d ops  %12.0f ops/s" r.workload
    r.fs_name r.threads r.ops r.ops_per_sec

(* --- fixed jobs (macro benchmarks, Fig. 13): measured by elapsed time --- *)

type job = {
  job_name : string;
  job_setup : Vfs.handle -> Rng.t -> unit;
  job_run : Vfs.handle -> Rng.t -> int; (* returns ops performed *)
}

type job_result = {
  job : string;
  jr_fs_name : string;
  jr_elapsed_ns : int64;
  jr_ops : int;
}

let pp_job_result ppf r =
  Fmt.pf ppf "%-12s %-14s %9d ops  %12.3f ms" r.job r.jr_fs_name r.jr_ops
    (Int64.to_float r.jr_elapsed_ns /. 1e6)

let run_job ?(seed = 42L) ~stats (job : job) (handle : Vfs.handle) =
  let rng = Rng.create ~seed in
  job.job_setup handle rng;
  (* Quiesce the population phase so its dirty bytes are not attributed to
     the measurement window. *)
  handle.Vfs.sync_all ();
  Stats.reset stats;
  (match Obs.current () with Some o -> Obs.reset o | None -> ());
  let start = Proc.now () in
  let ops = job.job_run handle rng in
  for _ = 1 to ops do
    Stats.op_done stats
  done;
  {
    job = job.job_name;
    jr_fs_name = handle.Vfs.fs_name;
    jr_elapsed_ns = Int64.sub (Proc.now ()) start;
    jr_ops = ops;
  }

(* Run [w] on [handle] with [threads] workers for [duration] virtual ns.
   Must be called from within a simulation process. The stats are reset
   after setup so only the measurement window is counted. *)
let run ?(seed = 42L) ~stats ~threads ~duration w (handle : Vfs.handle) =
  let setup_rng = Rng.create ~seed in
  w.setup handle setup_rng;
  handle.Vfs.sync_all ();
  Stats.reset stats;
  (match Obs.current () with Some o -> Obs.reset o | None -> ());
  let start = Proc.now () in
  let deadline = Int64.add start duration in
  let total_ops = ref 0 in
  let live = ref threads in
  let done_waker = ref None in
  for thread_id = 0 to threads - 1 do
    Proc.spawn ~name:(Printf.sprintf "%s-worker-%d" w.name thread_id)
      (fun () ->
        let rng =
          Rng.create ~seed:(Int64.add seed (Int64.of_int ((thread_id * 7919) + 1)))
        in
        let ctx = { handle; rng; thread_id } in
        let rec loop () =
          if Int64.compare (Proc.now ()) deadline < 0 then begin
            let ops = w.worker ctx in
            total_ops := !total_ops + ops;
            for _ = 1 to ops do
              Stats.op_done stats
            done;
            loop ()
          end
        in
        loop ();
        decr live;
        if !live = 0 then
          match !done_waker with
          | Some waker -> ignore (Engine.wake waker ())
          | None -> ())
  done;
  if !live > 0 then Proc.suspend (fun waker -> done_waker := Some waker);
  let elapsed = Int64.sub (Proc.now ()) start in
  {
    workload = w.name;
    fs_name = handle.Vfs.fs_name;
    threads;
    elapsed_ns = elapsed;
    ops = !total_ops;
    ops_per_sec =
      (if Int64.compare elapsed 0L > 0 then
         float_of_int !total_ops /. (Int64.to_float elapsed /. 1e9)
       else 0.0);
  }
