(* The request-level serving loop: decode, dispatch, encode.

   Architecture is a single shared request queue fanned out to a pool of
   worker fibers. A client [call] encodes its request, enqueues it with a
   waker, and suspends; a worker picks it up, records the queue wait
   (srv.queue, via [span_since] so fan-in cost is visible in the phase
   breakdown), decodes (srv.decode), touches the session lease, runs the
   operation against the VFS, encodes the reply (srv.encode) and wakes
   the client. Durability work — stable WRITEs, COMMIT, flush-on-evict —
   shows up under srv.flush.

   Identity rules, in one place:
   - handles (Fhandle) are server-global and survive session expiry;
   - REMOVE stales the path's handle and closes its cached open before
     the unlink (the VFS refuses to unlink open files);
   - RENAME carries the handle to the new name and stales whatever was
     clobbered at the destination;
   - rollback / snapshot-delete go through [rollback]/[snapshot_delete]
     here, which stale every handle and drop every cached open before
     the tree swap — a handle minted before the swap can never be served
     after it, per the ESTALE contract in Hinfs_vfs.Errno. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Condvar = Hinfs_sim.Condvar
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno
module Obs = Hinfs_obs.Obs

type pending = {
  sid : int;
  payload : Bytes.t;
  enq_at : int64;
  waker : Bytes.t Engine.waker;
}

type t = {
  engine : Engine.t;
  vfs : Vfs.handle;
  sessions : Session.t;
  handles : Fhandle.t;
  cache : Ofcache.t;
  queue : pending Queue.t;
  work_cv : Condvar.t;
  reaper_cv : Condvar.t;
  workers : int;
  verifier : int64; (* boot stamp: changes iff the server restarts *)
  mutable running : bool;
  mutable served : int;
  mutable expired_replies : int;
  mutable err_replies : int;
}

(* Virtual-time cost of (de)serialising a message: a base per-message
   cost plus a per-byte term, charged on the worker. *)
let codec_ns len = 120 + (len / 32)

let create ?(workers = 8) ?(cache_cap = 64) ?(lease_ns = 50_000_000L)
    ?(verifier = 0x48694E4653L) engine vfs =
  let sessions = Session.create ~lease_ns in
  let cache = Ofcache.create vfs ~cap:cache_cap in
  Session.on_expire sessions (fun sid ->
      let reclaimed = Ofcache.reclaim_session cache sid in
      Obs.instant Obs.Ev_session_expire ~a:sid ~b:reclaimed);
  {
    engine;
    vfs;
    sessions;
    handles = Fhandle.create ();
    cache;
    queue = Queue.create ();
    work_cv = Condvar.create engine;
    reaper_cv = Condvar.create engine;
    workers;
    verifier;
    running = false;
    served = 0;
    expired_replies = 0;
    err_replies = 0;
  }

let vfs t = t.vfs
let sessions t = t.sessions
let handles t = t.handles
let cache t = t.cache
let queue_depth t = Queue.length t.queue
let served t = t.served
let expired_replies t = t.expired_replies
let err_replies t = t.err_replies

(* --- dispatch --- *)

(* GETATTR doubles as revalidation: the stat that answers the request
   also proves the path still names the handle's inode. Must fail with
   ESTALE before touching any inode state. *)
let revalidate_stat t (e : Fhandle.entry) =
  let st =
    match t.vfs.Vfs.stat e.path with
    | st -> st
    | exception Errno.Fs_error ((ENOENT | ENOTDIR), _) ->
      Fhandle.mark_stale t.handles e;
      Errno.raise_error ESTALE "%s vanished under handle %d.%d" e.path e.slot
        e.gen
  in
  if st.Types.ino <> e.ino then begin
    Fhandle.mark_stale t.handles e;
    Errno.raise_error ESTALE "%s no longer names ino %d" e.path e.ino
  end;
  st

let flush_fd t fd =
  Obs.span_begin Obs.Srv_flush;
  match t.vfs.Vfs.fsync fd with
  | () -> Obs.span_end Obs.Srv_flush
  | exception ex ->
    Obs.span_end Obs.Srv_flush;
    raise ex

let dispatch t ~sid (req : Wire.req) : Wire.reply =
  match req with
  | Lookup path ->
    let st = t.vfs.Vfs.stat path in
    let fh = Fhandle.mint t.handles ~path ~ino:st.Types.ino in
    R_handle (fh, st)
  | Getattr fh ->
    let e = Fhandle.resolve t.handles fh in
    R_attr (revalidate_stat t e)
  | Read (fh, off, len) ->
    let e = Fhandle.resolve t.handles fh in
    Ofcache.with_open t.cache ~ino:e.ino ~path:e.path ~sid (fun fd ->
        let buf = Bytes.create len in
        let n = t.vfs.Vfs.pread fd ~off buf len in
        Wire.R_data (Bytes.sub_string buf 0 n))
  | Write (fh, off, data, stable) ->
    let e = Fhandle.resolve t.handles fh in
    Ofcache.with_open t.cache ~ino:e.ino ~path:e.path ~sid (fun fd ->
        let src = Bytes.of_string data in
        let n = t.vfs.Vfs.pwrite fd ~off src (Bytes.length src) in
        if stable then begin
          flush_fd t fd;
          Ofcache.clear_dirty t.cache e.ino
        end
        else Ofcache.mark_dirty t.cache e.ino;
        Wire.R_written (n, t.verifier))
  | Create path ->
    let fd = t.vfs.Vfs.open_ path { Types.creat with read = true } in
    let st = t.vfs.Vfs.fstat fd in
    (* don't leak the fresh fd if inserting it forces an eviction whose
       flush fails (e.g. EIO from a quarantined shard) *)
    (match Ofcache.insert t.cache ~ino:st.Types.ino ~fd ~sid with
    | (_ : Vfs.fd) -> ()
    | exception ex ->
      (try t.vfs.Vfs.close fd with Errno.Fs_error _ -> ());
      raise ex);
    let fh = Fhandle.mint t.handles ~path ~ino:st.Types.ino in
    R_handle (fh, st)
  | Remove path ->
    (match Fhandle.invalidate_path t.handles path with
    | Some ino -> Ofcache.drop t.cache ~ino ~flush:false
    | None -> ());
    t.vfs.Vfs.unlink path;
    R_ok t.verifier
  | Rename (src, dst) ->
    (match Fhandle.note_rename t.handles ~src ~dst with
    | Some clobbered_ino -> Ofcache.drop t.cache ~ino:clobbered_ino ~flush:false
    | None -> ());
    t.vfs.Vfs.rename src dst;
    R_ok t.verifier
  | Commit fh ->
    let e = Fhandle.resolve t.handles fh in
    Ofcache.commit t.cache e.ino;
    R_ok t.verifier

(* --- worker pool --- *)

let serve_one t (p : pending) =
  Obs.span_since Obs.Srv_queue ~t0:p.enq_at;
  Obs.span_begin Obs.Srv_decode;
  Proc.delay_int (codec_ns (Bytes.length p.payload));
  let req = Wire.decode_req p.payload in
  Obs.span_end Obs.Srv_decode;
  let reply =
    if not (Session.touch t.sessions p.sid) then begin
      t.expired_replies <- t.expired_replies + 1;
      Wire.R_expired
    end
    else
      match dispatch t ~sid:p.sid req with
      | reply -> reply
      | exception Errno.Fs_error (code, _) ->
        t.err_replies <- t.err_replies + 1;
        Wire.R_err code
  in
  Obs.span_begin Obs.Srv_encode;
  let out = Wire.encode_reply reply in
  Proc.delay_int (codec_ns (Bytes.length out));
  Obs.span_end Obs.Srv_encode;
  t.served <- t.served + 1;
  ignore (Engine.wake p.waker out)

let rec worker t () =
  match Queue.take_opt t.queue with
  | Some p ->
    serve_one t p;
    worker t ()
  | None ->
    if t.running then begin
      Condvar.wait t.work_cv;
      worker t ()
    end

(* Reaps idle sessions so leases expire even with no traffic. Wakes every
   half-lease; [stop] signals it out of its sleep. *)
let rec reaper t () =
  if t.running then begin
    let half = Int64.div (Session.lease_ns t.sessions) 2L in
    ignore (Condvar.wait_timeout t.reaper_cv ~timeout:half);
    if t.running then begin
      ignore (Session.sweep t.sessions);
      reaper t ()
    end
  end

let start t =
  if t.running then invalid_arg "Server.start: already running";
  t.running <- true;
  for i = 0 to t.workers - 1 do
    Proc.spawn ~name:(Printf.sprintf "srv-worker%d" i) (worker t)
  done;
  Proc.spawn ~name:"srv-reaper" (reaper t)

let stop t =
  if t.running then begin
    t.running <- false;
    ignore (Condvar.broadcast t.work_cv);
    ignore (Condvar.broadcast t.reaper_cv)
  end

(* --- client entry points --- *)

let call t ~sid payload =
  if not t.running then invalid_arg "Server.call: server not running";
  let enq_at = Proc.now () in
  Proc.suspend (fun waker ->
      Queue.add { sid; payload; enq_at; waker } t.queue;
      ignore (Condvar.signal t.work_cv))

(* Encode, round-trip through the queue, decode — with the full
   client-perceived latency (queue wait included) recorded under the
   request's class. *)
let rpc t ~sid req =
  let t0 = Proc.now () in
  let reply = Wire.decode_reply (call t ~sid (Wire.encode_req req)) in
  Obs.span_since (Wire.kind_of_req req) ~t0;
  reply

let establish t = Session.establish t.sessions

(* --- snapshot surface --- *)

(* Whole-tree replacement invalidates every handle and cached open
   before the swap: a stale handle must never be served from the new
   tree (see the ESTALE contract). Cached opens are dropped unflushed —
   their data belongs to the tree being replaced. *)
let snap_ops t =
  match t.vfs.Vfs.snap_ops with
  | Some ops -> ops
  | None -> Errno.raise_error EINVAL "%s has no snapshot surface" t.vfs.Vfs.fs_name

let snapshot t = (snap_ops t).Vfs.snapshot ()

let rollback t id =
  Ofcache.drop_all t.cache;
  ignore (Fhandle.invalidate_all t.handles);
  (snap_ops t).Vfs.rollback id

let snapshot_delete t id =
  Ofcache.drop_all t.cache;
  ignore (Fhandle.invalidate_all t.handles);
  (snap_ops t).Vfs.snapshot_delete id
