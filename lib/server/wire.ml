(* Request/reply wire codec for the serving layer.

   The protocol is a compact NFS-flavoured subset: stateless-per-request
   messages identified by a one-byte tag, integers as fixed 8-byte LE,
   strings length-prefixed. Every request carries a generation-stamped
   file handle or a path, never a raw fd — the server's handle table is
   the only identity that crosses the wire (and survives reconnect).

   Encoding is a real byte round-trip, not an in-memory variant pass:
   the dispatch loop decodes what the client encoded, so codec cost and
   framing bugs are part of what the serve benchmarks measure. *)

module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno
module Obs = Hinfs_obs.Obs

(* File handle: slot in the low 32 bits, generation in the high 32. The
   generation makes a recreated path distinguishable from the file a
   client had open before the unlink — same slot number, different gen
   still fails resolution with ESTALE. *)
type fh = int64

let fh_make ~slot ~gen =
  Int64.logor
    (Int64.shift_left (Int64.of_int gen) 32)
    (Int64.logand (Int64.of_int slot) 0xFFFFFFFFL)

let fh_slot fh = Int64.to_int (Int64.logand fh 0xFFFFFFFFL)
let fh_gen fh = Int64.to_int (Int64.shift_right_logical fh 32)

type req =
  | Lookup of string  (** path -> handle + attributes *)
  | Getattr of fh
  | Read of fh * int * int  (** offset, length *)
  | Write of fh * int * string * bool  (** offset, data, stable? *)
  | Create of string  (** create + open; replies like Lookup *)
  | Remove of string
  | Rename of string * string
  | Commit of fh  (** make every unstable write to the file durable *)

type reply =
  | R_handle of fh * Types.stat
  | R_attr of Types.stat
  | R_data of string
  | R_written of int * int64  (** bytes accepted, write verifier *)
  | R_ok of int64  (** verifier *)
  | R_err of Errno.t
  | R_expired  (** session lease lapsed; re-establish and retry *)

let kind_of_req : req -> Obs.kind = function
  | Lookup _ -> Obs.Req_lookup
  | Getattr _ -> Obs.Req_getattr
  | Read _ -> Obs.Req_read
  | Write _ -> Obs.Req_write
  | Create _ -> Obs.Req_create
  | Remove _ -> Obs.Req_remove
  | Rename _ -> Obs.Req_rename
  | Commit _ -> Obs.Req_commit

let req_name = function
  | Lookup _ -> "LOOKUP"
  | Getattr _ -> "GETATTR"
  | Read _ -> "READ"
  | Write _ -> "WRITE"
  | Create _ -> "CREATE"
  | Remove _ -> "REMOVE"
  | Rename _ -> "RENAME"
  | Commit _ -> "COMMIT"

(* Errno codes are part of the wire format: keep them stable. *)
let errno_to_code : Errno.t -> int = function
  | ENOENT -> 1
  | EEXIST -> 2
  | EISDIR -> 3
  | ENOTDIR -> 4
  | ENOSPC -> 5
  | EBADF -> 6
  | EINVAL -> 7
  | ENOTEMPTY -> 8
  | EFBIG -> 9
  | EROFS -> 10
  | EIO -> 11
  | ESTALE -> 12

let errno_of_code : int -> Errno.t = function
  | 1 -> ENOENT
  | 2 -> EEXIST
  | 3 -> EISDIR
  | 4 -> ENOTDIR
  | 5 -> ENOSPC
  | 6 -> EBADF
  | 7 -> EINVAL
  | 8 -> ENOTEMPTY
  | 9 -> EFBIG
  | 10 -> EROFS
  | 11 -> EIO
  | 12 -> ESTALE
  | n -> invalid_arg (Printf.sprintf "Wire.errno_of_code: %d" n)

(* --- primitives --- *)

let put_i64 b v = Buffer.add_int64_le b v
let put_int b v = Buffer.add_int64_le b (Int64.of_int v)
let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let get_i64 buf pos =
  let v = Bytes.get_int64_le buf !pos in
  pos := !pos + 8;
  v

let get_int buf pos = Int64.to_int (get_i64 buf pos)

let get_bool buf pos =
  let c = Bytes.get buf !pos in
  incr pos;
  c <> '\000'

let get_str buf pos =
  let n = get_int buf pos in
  let s = Bytes.sub_string buf !pos n in
  pos := !pos + n;
  s

let put_stat b (st : Types.stat) =
  put_int b st.ino;
  put_int b (match st.kind with Types.Regular -> 0 | Types.Directory -> 1);
  put_int b st.size;
  put_int b st.nlink;
  put_int b st.blocks;
  put_i64 b st.mtime_ns

let get_stat buf pos : Types.stat =
  let ino = get_int buf pos in
  let kind =
    match get_int buf pos with
    | 0 -> Types.Regular
    | 1 -> Types.Directory
    | n -> invalid_arg (Printf.sprintf "Wire.get_stat: bad kind %d" n)
  in
  let size = get_int buf pos in
  let nlink = get_int buf pos in
  let blocks = get_int buf pos in
  let mtime_ns = get_i64 buf pos in
  { ino; kind; size; nlink; blocks; mtime_ns }

(* --- requests --- *)

let encode_req req =
  let b = Buffer.create 64 in
  (match req with
  | Lookup path ->
    Buffer.add_char b '\001';
    put_str b path
  | Getattr fh ->
    Buffer.add_char b '\002';
    put_i64 b fh
  | Read (fh, off, len) ->
    Buffer.add_char b '\003';
    put_i64 b fh;
    put_int b off;
    put_int b len
  | Write (fh, off, data, stable) ->
    Buffer.add_char b '\004';
    put_i64 b fh;
    put_int b off;
    put_str b data;
    put_bool b stable
  | Create path ->
    Buffer.add_char b '\005';
    put_str b path
  | Remove path ->
    Buffer.add_char b '\006';
    put_str b path
  | Rename (src, dst) ->
    Buffer.add_char b '\007';
    put_str b src;
    put_str b dst
  | Commit fh ->
    Buffer.add_char b '\008';
    put_i64 b fh);
  Buffer.to_bytes b

let decode_req buf =
  let pos = ref 1 in
  match Bytes.get buf 0 with
  | '\001' -> Lookup (get_str buf pos)
  | '\002' -> Getattr (get_i64 buf pos)
  | '\003' ->
    let fh = get_i64 buf pos in
    let off = get_int buf pos in
    let len = get_int buf pos in
    Read (fh, off, len)
  | '\004' ->
    let fh = get_i64 buf pos in
    let off = get_int buf pos in
    let data = get_str buf pos in
    let stable = get_bool buf pos in
    Write (fh, off, data, stable)
  | '\005' -> Create (get_str buf pos)
  | '\006' -> Remove (get_str buf pos)
  | '\007' ->
    let src = get_str buf pos in
    let dst = get_str buf pos in
    Rename (src, dst)
  | '\008' -> Commit (get_i64 buf pos)
  | c -> invalid_arg (Printf.sprintf "Wire.decode_req: bad tag %d" (Char.code c))

(* --- replies --- *)

let encode_reply reply =
  let b = Buffer.create 64 in
  (match reply with
  | R_handle (fh, st) ->
    Buffer.add_char b '\001';
    put_i64 b fh;
    put_stat b st
  | R_attr st ->
    Buffer.add_char b '\002';
    put_stat b st
  | R_data data ->
    Buffer.add_char b '\003';
    put_str b data
  | R_written (n, verifier) ->
    Buffer.add_char b '\004';
    put_int b n;
    put_i64 b verifier
  | R_ok verifier ->
    Buffer.add_char b '\005';
    put_i64 b verifier
  | R_err code ->
    Buffer.add_char b '\006';
    put_int b (errno_to_code code)
  | R_expired -> Buffer.add_char b '\007');
  Buffer.to_bytes b

let decode_reply buf =
  let pos = ref 1 in
  match Bytes.get buf 0 with
  | '\001' ->
    let fh = get_i64 buf pos in
    let st = get_stat buf pos in
    R_handle (fh, st)
  | '\002' -> R_attr (get_stat buf pos)
  | '\003' -> R_data (get_str buf pos)
  | '\004' ->
    let n = get_int buf pos in
    let verifier = get_i64 buf pos in
    R_written (n, verifier)
  | '\005' -> R_ok (get_i64 buf pos)
  | '\006' -> R_err (errno_of_code (get_int buf pos))
  | '\007' -> R_expired
  | c ->
    invalid_arg (Printf.sprintf "Wire.decode_reply: bad tag %d" (Char.code c))
