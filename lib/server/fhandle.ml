(* Stable file-handle table: the server-side identity that outlives a
   single request, a session, and (unlike an fd) a client reconnect.

   Each live handle is (slot, generation, ino, path). Slots are never
   reused and generations are globally monotonic, so any event that makes
   a handle's object stop being that object — unlink (even with a later
   re-create at the same path, which mints a fresh generation), a rename
   clobbering its path, or a whole-tree rollback/snapshot-delete — just
   marks the entry stale in place. Resolution of a stale or unknown
   handle fails with ESTALE before any inode state is touched (the
   contract documented in Hinfs_vfs.Errno); recovery is a fresh LOOKUP. *)

module Errno = Hinfs_vfs.Errno
module Obs = Hinfs_obs.Obs

type entry = {
  slot : int;
  gen : int;
  ino : int;
  mutable path : string; (* tracks renames of the object itself *)
  mutable stale : bool;
}

type t = {
  slots : (int, entry) Hashtbl.t; (* stale entries stay: ESTALE evidence *)
  by_path : (string, int) Hashtbl.t; (* live handles only *)
  mutable next_slot : int;
  mutable next_gen : int;
  mutable estale_total : int;
}

let create () =
  {
    slots = Hashtbl.create 256;
    by_path = Hashtbl.create 256;
    next_slot = 1;
    next_gen = 1;
    estale_total = 0;
  }

let live t = Hashtbl.length t.by_path
let total t = Hashtbl.length t.slots
let estale_total t = t.estale_total

let fresh t ~path ~ino =
  let slot = t.next_slot and gen = t.next_gen in
  t.next_slot <- slot + 1;
  t.next_gen <- gen + 1;
  Hashtbl.replace t.slots slot { slot; gen; ino; path; stale = false };
  Hashtbl.replace t.by_path path slot;
  Wire.fh_make ~slot ~gen

(* LOOKUP/CREATE entry point: hand back the existing live handle while it
   still names the same inode, otherwise stale it and mint a fresh one
   (this is where an unlink+recreate at the same path gets its bump). *)
let mint t ~path ~ino =
  match Hashtbl.find_opt t.by_path path with
  | Some slot ->
    let e = Hashtbl.find t.slots slot in
    if (not e.stale) && e.ino = ino then Wire.fh_make ~slot ~gen:e.gen
    else begin
      e.stale <- true;
      Hashtbl.remove t.by_path path;
      fresh t ~path ~ino
    end
  | None -> fresh t ~path ~ino

let reject t ~slot ~gen ~detail =
  t.estale_total <- t.estale_total + 1;
  Obs.instant Obs.Ev_estale ~a:slot ~b:gen;
  Errno.raise_error ESTALE "handle %d.%d %s" slot gen detail

let resolve t fh =
  let slot = Wire.fh_slot fh and gen = Wire.fh_gen fh in
  match Hashtbl.find_opt t.slots slot with
  | Some e when e.gen = gen && not e.stale -> e
  | Some e -> reject t ~slot ~gen ~detail:(Printf.sprintf "for %s is stale" e.path)
  | None -> reject t ~slot ~gen ~detail:"is unknown"

let mark_stale t e =
  if not e.stale then begin
    e.stale <- true;
    match Hashtbl.find_opt t.by_path e.path with
    | Some slot when slot = e.slot -> Hashtbl.remove t.by_path e.path
    | _ -> ()
  end

(* The path is being removed: stale its live handle, reporting the inode
   so the caller can drop any cached open before the unlink proper. *)
let invalidate_path t path =
  match Hashtbl.find_opt t.by_path path with
  | None -> None
  | Some slot ->
    let e = Hashtbl.find t.slots slot in
    mark_stale t e;
    Some e.ino

(* Rename: the object keeps its handle under the new name; whatever lived
   at the destination was clobbered — stale it and report its inode. *)
let note_rename t ~src ~dst =
  let clobbered = invalidate_path t dst in
  (match Hashtbl.find_opt t.by_path src with
  | None -> ()
  | Some slot ->
    let e = Hashtbl.find t.slots slot in
    Hashtbl.remove t.by_path src;
    e.path <- dst;
    Hashtbl.replace t.by_path dst slot);
  clobbered

(* Whole-tree replacement (rollback / snapshot delete): every outstanding
   handle predates the new tree, so all of them go stale at once — even
   ones whose path and inode number happen to exist again afterwards. *)
let invalidate_all t =
  let n = Hashtbl.length t.by_path in
  Hashtbl.iter
    (fun _ slot ->
      let e = Hashtbl.find t.slots slot in
      e.stale <- true)
    t.by_path;
  Hashtbl.reset t.by_path;
  n

(* Deterministic table dump for the seeded-run equality test. *)
let dump t =
  Hashtbl.fold (fun _ e acc -> (e.slot, e.gen, e.ino, e.path, e.stale) :: acc)
    t.slots []
  |> List.sort compare
