(* Bounded open-file cache: the server's fd table.

   Clients never hold fds — READ/WRITE resolve their file handle to an
   inode and borrow an open from this cache, opening on demand and
   evicting least-recently-used entries once the cap is reached. Entries
   carrying unstable (COMMIT-pending) writes are flushed on eviction so
   bounded capacity never silently weakens durability.

   Fault-domain discipline: the flush-on-evict fsync is attempted exactly
   once. If the file's shard is quarantined the backend fails the fsync
   fast with EIO; we drop the entry (the fd is closed regardless) and let
   the EIO propagate to whichever request forced the eviction — no
   retry loop against a shard that health has already isolated. *)

module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno
module Obs = Hinfs_obs.Obs
module Lru = Hinfs_structures.Lru

type entry = {
  fd : Vfs.fd;
  ino : int;
  mutable dirty : bool; (* unstable writes since the last flush *)
  mutable last_sid : int; (* most recent session to use this open *)
  mutable pins : int; (* workers mid-request on this fd; pinned entries
                         are never evicted or reclaimed under them *)
}

type t = {
  vfs : Vfs.handle;
  cap : int;
  lru : (int, entry) Lru.t; (* keyed by ino *)
  mutable evictions : int;
  mutable hits : int;
  mutable misses : int;
}

let create vfs ~cap =
  if cap <= 0 then invalid_arg "Ofcache.create: cap must be > 0";
  { vfs; cap; lru = Lru.create (); evictions = 0; hits = 0; misses = 0 }

let length t = Lru.length t.lru
let evictions t = t.evictions
let hits t = t.hits
let misses t = t.misses

(* Close an entry, flushing first when it still carries unstable writes.
   The fd is always closed and the entry is gone on return or raise; a
   flush failure (e.g. EIO from a quarantined shard) propagates after the
   close — fail fast, never retry. *)
let close_entry t (e : entry) ~flush =
  let flush_exn =
    if flush && e.dirty then begin
      Obs.span_begin Obs.Srv_flush;
      match t.vfs.Vfs.fsync e.fd with
      | () ->
        Obs.span_end Obs.Srv_flush;
        e.dirty <- false;
        None
      | exception ex ->
        Obs.span_end Obs.Srv_flush;
        Some ex
    end
    else None
  in
  (try t.vfs.Vfs.close e.fd with Errno.Fs_error _ -> ());
  match flush_exn with None -> () | Some ex -> raise ex

(* Evict LRU-first until below cap, considering only unpinned entries.
   With every entry pinned (cap below the worker count) the cache runs
   transiently over cap — bounded by cap + in-flight requests — rather
   than closing an fd some worker is mid-request on. *)
let evict_until_room t =
  let evictable () = Lru.find_lru_matching t.lru (fun _ e -> e.pins = 0) in
  let rec loop () =
    if Lru.length t.lru >= t.cap then
      match evictable () with
      | None -> ()
      | Some (ino, e) ->
        ignore (Lru.remove t.lru ino);
        t.evictions <- t.evictions + 1;
        Obs.instant Obs.Ev_oc_evict ~a:e.ino ~b:(if e.dirty then 1 else 0);
        close_entry t e ~flush:true;
        loop ()
  in
  loop ()

(* Insert an already-open fd (the CREATE path, where the ino is only
   known after the open). Returns the canonical fd: if the ino is already
   cached — CREATE without O_EXCL over an existing file — the new fd is
   closed and the cached open is reused. *)
let insert t ~ino ~fd ~sid =
  match Lru.find t.lru ino with
  | Some e ->
    ignore (Lru.touch t.lru ino);
    e.last_sid <- sid;
    if fd <> e.fd then (try t.vfs.Vfs.close fd with Errno.Fs_error _ -> ());
    e.fd
  | None ->
    evict_until_room t;
    Lru.add t.lru ino { fd; ino; dirty = false; last_sid = sid; pins = 0 };
    fd

(* Borrow the open for [ino] — pinned until [release] — opening [path]
   read-write on demand. *)
let acquire t ~ino ~path ~sid =
  match Lru.find t.lru ino with
  | Some e ->
    t.hits <- t.hits + 1;
    ignore (Lru.touch t.lru ino);
    e.last_sid <- sid;
    e.pins <- e.pins + 1;
    e.fd
  | None ->
    t.misses <- t.misses + 1;
    evict_until_room t;
    let fd = t.vfs.Vfs.open_ path Types.rdwr in
    let cached_ino = (t.vfs.Vfs.fstat fd).Types.ino in
    if cached_ino <> ino then begin
      (* the path stopped naming this inode out from under the handle *)
      (try t.vfs.Vfs.close fd with Errno.Fs_error _ -> ());
      Errno.raise_error ESTALE "open of %s found ino %d, handle has %d" path
        cached_ino ino
    end;
    Lru.add t.lru ino { fd; ino; dirty = false; last_sid = sid; pins = 1 };
    fd

let release t ino =
  match Lru.find t.lru ino with
  | None -> ()
  | Some e -> if e.pins > 0 then e.pins <- e.pins - 1

(* Run [f fd] with the entry pinned; the canonical way to use the cache
   from a request. *)
let with_open t ~ino ~path ~sid f =
  let fd = acquire t ~ino ~path ~sid in
  Fun.protect ~finally:(fun () -> release t ino) (fun () -> f fd)

let mark_dirty t ino =
  match Lru.find t.lru ino with None -> () | Some e -> e.dirty <- true

let clear_dirty t ino =
  match Lru.find t.lru ino with None -> () | Some e -> e.dirty <- false

(* COMMIT: flush the cached open's unstable writes, if any. Pinned for
   the duration so a concurrent eviction can't close the fd mid-fsync. *)
let commit t ino =
  match Lru.find t.lru ino with
  | None -> () (* nothing cached: no unstable writes outstanding *)
  | Some e ->
    if e.dirty then begin
      e.pins <- e.pins + 1;
      Obs.span_begin Obs.Srv_flush;
      (match t.vfs.Vfs.fsync e.fd with
      | () ->
        Obs.span_end Obs.Srv_flush;
        e.pins <- e.pins - 1
      | exception ex ->
        Obs.span_end Obs.Srv_flush;
        e.pins <- e.pins - 1;
        raise ex);
      e.dirty <- false
    end

(* Drop the entry without counting it as a capacity eviction — used when
   the object is going away (REMOVE, rename-over, rollback). [flush]
   is false there: flushing into a tree that is being deleted or replaced
   would be wasted (or worse, wrong). A pinned entry is left alone — the
   caller's VFS operation will then refuse the still-open inode itself. *)
let drop t ~ino ~flush =
  match Lru.find t.lru ino with
  | None -> ()
  | Some e ->
    if e.pins = 0 then begin
      ignore (Lru.remove t.lru ino);
      close_entry t e ~flush
    end

let drop_all t =
  let entries = ref [] in
  Lru.iter t.lru (fun _ e -> if e.pins = 0 then entries := e :: !entries);
  List.iter
    (fun e ->
      ignore (Lru.remove t.lru e.ino);
      close_entry t e ~flush:false)
    (List.rev !entries)

(* Lease expiry: evict everything the lapsed session was the last to use
   and nobody is mid-request on. Flush errors are swallowed after the
   entry is dropped — the reaper acts for no live request, so there is
   nobody to answer EIO to. *)
let reclaim_session t sid =
  let victims = ref [] in
  Lru.iter t.lru (fun ino e ->
      if e.last_sid = sid && e.pins = 0 then victims := ino :: !victims);
  List.iter
    (fun ino ->
      match Lru.find t.lru ino with
      | None -> ()
      | Some e when e.pins = 0 ->
        ignore (Lru.remove t.lru ino);
        t.evictions <- t.evictions + 1;
        Obs.instant Obs.Ev_oc_evict ~a:e.ino ~b:(if e.dirty then 1 else 0);
        (try close_entry t e ~flush:true with Errno.Fs_error _ -> ())
      | Some _ -> ())
    (List.rev !victims);
  List.length !victims
