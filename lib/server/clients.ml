(* Simulated client fleet driving the server.

   Each client is one simulation process with its own seeded RNG and its
   own session; the fleet shares a zipf-hot read set (the paper's skewed
   working sets, §3.2) spread round-robin over per-shard directories,
   while every client owns a private write file and a private scratch
   file — so writes never conflict across clients and the crash-soak
   oracle can reason per path.

   The mix exercises the whole handle lifecycle: open/close churn drops
   the client-side handle cache (forcing fresh LOOKUPs), scratch files
   are removed and re-created at the same path (generation bumps), and
   renamed back and forth (handle follows the object). Writes alternate
   stable/unstable with periodic COMMITs — the NFS-style durability
   discipline the serve soak verifies against crash images. *)

module Proc = Hinfs_sim.Proc
module Condvar = Hinfs_sim.Condvar
module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Zipf = Hinfs_sim.Zipf
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno

type config = {
  clients : int;
  ops_per_client : int;
  hot_files : int; (* shared zipf-hot read set size *)
  theta : float; (* zipf skew *)
  io_bytes : int;
  file_span : int; (* private write file wraps at this size *)
  stable_every : int; (* every Nth write is stable (FILE_SYNC) *)
  shards : int; (* /s0../sN-1 dirs, round-robin placement *)
  seed : int64;
}

let default =
  {
    clients = 64;
    ops_per_client = 50;
    hot_files = 64;
    theta = 0.9;
    io_bytes = 4096;
    file_span = 65536;
    stable_every = 4;
    shards = 1;
    seed = 7L;
  }

let shard_dir cfg j = Printf.sprintf "/s%d" (j mod cfg.shards)
let hot_path cfg j = Printf.sprintf "%s/h%d" (shard_dir cfg j) j
let own_path cfg i = Printf.sprintf "%s/c%d" (shard_dir cfg i) i

let scratch_path cfg i flip =
  Printf.sprintf "%s/t%d%c" (shard_dir cfg i) i (if flip then 'b' else 'a')

(* Populate shard dirs and the hot read set directly through the VFS —
   fixture work, not served traffic. Call from inside a process. *)
let setup vfs cfg =
  for s = 0 to cfg.shards - 1 do
    let d = Printf.sprintf "/s%d" s in
    if not (vfs.Vfs.exists d) then vfs.Vfs.mkdir d
  done;
  let block = Bytes.make cfg.io_bytes 'h' in
  for j = 0 to cfg.hot_files - 1 do
    let p = hot_path cfg j in
    if not (vfs.Vfs.exists p) then begin
      let fd = vfs.Vfs.open_ p Types.creat in
      ignore (vfs.Vfs.write fd block cfg.io_bytes);
      ignore (vfs.Vfs.write fd block cfg.io_bytes);
      vfs.Vfs.fsync fd;
      vfs.Vfs.close fd
    end
  done

type client = {
  idx : int;
  mutable sid : int;
  rng : Rng.t;
  fhs : (string, Wire.fh) Hashtbl.t; (* client-side handle cache *)
  mutable writes : int;
  mutable scratch_flip : bool;
  mutable scratch_live : bool;
  mutable ops : int;
}

(* An R_expired reply means the lease lapsed: re-establish and retry.
   Handles survive the reconnect — only the session is new. *)
let rec rpc_sess srv c req attempts =
  match Server.rpc srv ~sid:c.sid req with
  | Wire.R_expired when attempts > 0 ->
    c.sid <- Server.establish srv;
    rpc_sess srv c req (attempts - 1)
  | reply -> reply

let lookup_fh srv c path =
  match Hashtbl.find_opt c.fhs path with
  | Some fh -> fh
  | None -> (
    match rpc_sess srv c (Wire.Lookup path) 3 with
    | Wire.R_handle (fh, _) ->
      Hashtbl.replace c.fhs path fh;
      fh
    | Wire.R_err e -> Errno.raise_error e "LOOKUP %s failed" path
    | _ -> failwith "unexpected LOOKUP reply")

(* Run a handle-based request, recovering from ESTALE with a fresh
   LOOKUP — the protocol's only stale-handle recovery. *)
let rec with_fh srv c path f attempts =
  let fh = lookup_fh srv c path in
  match f fh with
  | Wire.R_err Errno.ESTALE when attempts > 0 ->
    Hashtbl.remove c.fhs path;
    with_fh srv c path f (attempts - 1)
  | reply -> reply

let read_hot srv c cfg zipf =
  let j = Zipf.sample zipf c.rng in
  let path = hot_path cfg j in
  let off = Rng.int c.rng (cfg.io_bytes + 1) in
  ignore
    (with_fh srv c path
       (fun fh -> rpc_sess srv c (Wire.Read (fh, off, cfg.io_bytes)) 3)
       2)

let write_own srv c cfg =
  let path = own_path cfg c.idx in
  c.writes <- c.writes + 1;
  let stable = c.writes mod cfg.stable_every = 0 in
  let off = c.writes * cfg.io_bytes mod cfg.file_span in
  let data = String.make cfg.io_bytes (Char.chr (97 + (c.idx mod 26))) in
  ignore
    (with_fh srv c path
       (fun fh -> rpc_sess srv c (Wire.Write (fh, off, data, stable)) 3)
       2)

let getattr_hot srv c cfg zipf =
  let path = hot_path cfg (Zipf.sample zipf c.rng) in
  ignore
    (with_fh srv c path (fun fh -> rpc_sess srv c (Wire.Getattr fh) 3) 2)

let commit_own srv c cfg =
  let path = own_path cfg c.idx in
  ignore (with_fh srv c path (fun fh -> rpc_sess srv c (Wire.Commit fh) 3) 2)

(* Open/close churn plus a remove/re-create cycle on the private scratch
   path: the re-create mints a fresh generation at the same path. *)
let churn srv c cfg =
  Hashtbl.reset c.fhs;
  let p = scratch_path cfg c.idx c.scratch_flip in
  if c.scratch_live then begin
    ignore (rpc_sess srv c (Wire.Remove p) 3);
    c.scratch_live <- false
  end
  else begin
    ignore (rpc_sess srv c (Wire.Create p) 3);
    c.scratch_live <- true
  end

let rename_scratch srv c cfg =
  if c.scratch_live then begin
    let src = scratch_path cfg c.idx c.scratch_flip in
    let dst = scratch_path cfg c.idx (not c.scratch_flip) in
    match rpc_sess srv c (Wire.Rename (src, dst)) 3 with
    | Wire.R_ok _ ->
      c.scratch_flip <- not c.scratch_flip;
      Hashtbl.remove c.fhs src
    | _ -> ()
  end
  else commit_own srv c cfg

let client_loop srv cfg zipf c =
  (match rpc_sess srv c (Wire.Create (own_path cfg c.idx)) 3 with
  | Wire.R_handle (fh, _) -> Hashtbl.replace c.fhs (own_path cfg c.idx) fh
  | _ -> ());
  c.ops <- c.ops + 1;
  for _k = 1 to cfg.ops_per_client do
    let r = Rng.float c.rng in
    if r < 0.55 then read_hot srv c cfg zipf
    else if r < 0.80 then write_own srv c cfg
    else if r < 0.88 then getattr_hot srv c cfg zipf
    else if r < 0.93 then commit_own srv c cfg
    else if r < 0.97 then churn srv c cfg
    else rename_scratch srv c cfg;
    c.ops <- c.ops + 1;
    Proc.delay_int (Rng.int_in_range c.rng ~lo:200 ~hi:2000)
  done

(* Spawn the fleet and block the calling process until every client is
   done. Returns total requests issued. *)
let run engine server cfg =
  setup (Server.vfs server) cfg;
  let zipf = Zipf.create ~n:cfg.hot_files ~theta:cfg.theta in
  let done_cv = Condvar.create engine in
  let remaining = ref cfg.clients in
  let total = ref 0 in
  for i = 0 to cfg.clients - 1 do
    Proc.spawn
      ~name:(Printf.sprintf "client%d" i)
      (fun () ->
        let seed =
          Int64.add cfg.seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
        in
        let c =
          {
            idx = i;
            sid = Server.establish server;
            rng = Rng.create ~seed;
            fhs = Hashtbl.create 16;
            writes = 0;
            scratch_flip = false;
            scratch_live = false;
            ops = 0;
          }
        in
        client_loop server cfg zipf c;
        total := !total + c.ops;
        decr remaining;
        if !remaining = 0 then ignore (Condvar.broadcast done_cv))
  done;
  if !remaining > 0 then Condvar.wait done_cv;
  !total
