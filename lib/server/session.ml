(* Client session table with lease expiry on the virtual clock.

   A session is a lease, nothing more: file handles are server-global and
   survive its death, so an expired client re-establishes and keeps using
   the handles it already holds. What expiry does reclaim is the server
   resources the session was pinning — the expiry callback (installed by
   the server) evicts that session's cached opens.

   Expiry is detected lazily on [touch] (the request path) and by the
   server's periodic sweeper, so an idle session's resources are
   reclaimed even with no traffic arriving for it. *)

module Proc = Hinfs_sim.Proc
module Obs = Hinfs_obs.Obs

type session = { sid : int; mutable expires_at : int64 }

type t = {
  lease_ns : int64;
  sessions : (int, session) Hashtbl.t;
  mutable next_sid : int;
  mutable on_expire : int -> unit; (* sid of the lapsed session *)
  mutable expired_total : int;
}

let create ~lease_ns =
  {
    lease_ns;
    sessions = Hashtbl.create 64;
    next_sid = 1;
    on_expire = ignore;
    expired_total = 0;
  }

let on_expire t f = t.on_expire <- f
let live t = Hashtbl.length t.sessions
let expired_total t = t.expired_total
let lease_ns t = t.lease_ns

let establish t =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  Hashtbl.replace t.sessions sid
    { sid; expires_at = Int64.add (Proc.now ()) t.lease_ns };
  sid

let expire t (s : session) =
  Hashtbl.remove t.sessions s.sid;
  t.expired_total <- t.expired_total + 1;
  t.on_expire s.sid

(* Request-path check: renews the lease when live, reports (and reclaims)
   a lapsed or unknown session so the server can answer R_expired. *)
let touch t sid =
  match Hashtbl.find_opt t.sessions sid with
  | None -> false
  | Some s ->
    if Int64.compare (Proc.now ()) s.expires_at > 0 then begin
      expire t s;
      false
    end
    else begin
      s.expires_at <- Int64.add (Proc.now ()) t.lease_ns;
      true
    end

(* Periodic sweep from the server's reaper fiber. Returns how many
   sessions lapsed. *)
let sweep t =
  let now = Proc.now () in
  let lapsed =
    Hashtbl.fold
      (fun _ s acc -> if Int64.compare now s.expires_at > 0 then s :: acc else acc)
      t.sessions []
    |> List.sort (fun a b -> compare a.sid b.sid)
  in
  List.iter (fun s -> expire t s) lapsed;
  List.length lapsed
