(* crashmc recovery-depth suite: a deeper crash-during-recovery budget than
   the smoke run. The outer enumeration is kept modest; the per-image
   re-crash enumeration (crash -> partially recover -> crash again at a
   recovery fence -> recover again) gets a much larger budget, so the
   idempotence of recovery itself — not just its end state — is the thing
   being exercised. Acceptance:

   - >= 600 nested crash-during-recovery images verified,
   - zero violations on the real code, nested images included,
   - the non-idempotent-replay fixture IS flagged (nested checking is not
     vacuous),
   - fully deterministic given the seed.

   Wired into `dune runtest` through the crashmc-recovery alias; also
   runnable directly: dune exec test/crashmc_recovery.exe *)

module Crashmc = Hinfs_crashmc.Crashmc
module Scenarios = Hinfs_crashmc.Scenarios

let params =
  {
    Crashmc.seed = 1789L;
    k_exhaustive = 8;
    samples_per_state = 12;
    max_images_per_state = 48;
    max_states = 24;
    recrash_states = 6;
    recrash_samples = 4;
    recrash_checks = 240;
  }

let () =
  let report = Crashmc.run_suite ~params Scenarios.all in
  Fmt.pr "%a@." Crashmc.pp_report report;
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let rstates = Crashmc.total_recovery_states report in
  let rimages = Crashmc.total_recovery_images report in
  if rstates < 100 then
    fail "only %d recovery-phase crash states captured (need >= 100)" rstates;
  if rimages < 600 then
    fail "only %d crash-during-recovery images verified (need >= 600)" rimages;
  (match Crashmc.unexpected_violations report with
  | [] -> ()
  | vs ->
    fail "%d unexpected violation(s), e.g. %s" (List.length vs)
      (match vs with
      | (sc, st, v) :: _ -> Fmt.str "[%s/%s] %s" sc st v
      | [] -> assert false));
  (match Crashmc.missed_fixtures report with
  | [] -> ()
  | ms -> fail "buggy fixture(s) not flagged: %s" (String.concat ", " ms));
  (* Determinism: a second run with the same seed must agree exactly. *)
  let again = Crashmc.run_suite ~params Scenarios.all in
  List.iter2
    (fun (a : Crashmc.scenario_result) (b : Crashmc.scenario_result) ->
      if
        a.sr_states <> b.sr_states
        || a.sr_images <> b.sr_images
        || a.sr_recovery_states <> b.sr_recovery_states
        || a.sr_recovery_images <> b.sr_recovery_images
        || a.sr_violations <> b.sr_violations
      then fail "scenario %s is not deterministic" a.sr_name)
    report.results again.results;
  match !failures with
  | [] -> Fmt.pr "crashmc-recovery OK@."
  | fs ->
    List.iter (Fmt.epr "crashmc-recovery FAIL: %s@.") (List.rev fs);
    exit 1
