(* Shard soak: seeded exerciser for the sharded hot state.

   Part 1 — PMFS crash soak on a 4-shard image. A seeded op mix (creates,
   synchronous writes, reads, unlinks) runs over directories spread
   round-robin across the shards, salted with cross-shard renames — the
   operation that spans two journals and commits through the epoch
   record. Each round crashes at a seeded fence via the persistence
   recorder; every materialised image must mount fsck-clean, every durable
   file must survive with the right bytes, and an in-flight cross-shard
   rename must be visible at exactly one of its two names (src XOR dst)
   — the invariant the epoch commit exists to provide. Recovery's
   per-shard breakdown must sum to the total rolled back.

   Part 2 — HiNFS multi-shard smoke: a 4-shard HiNFS mount with per-shard
   buffer pools and writeback daemons absorbs buffered writes across all
   shards, commits a multi-shard sync_all through the epoch barrier, and
   remounts intact.

   Both parts run twice with the same seed and must reproduce bit for bit.
   Wired into `dune runtest` through the shard-soak alias; also runnable
   directly: dune exec test/shard_soak.exe *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Log = Hinfs_journal.Cacheline_log
module Epoch = Hinfs_journal.Epoch
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Fs = Hinfs.Fs
module Hconfig = Hinfs.Hconfig
module Buffer_pool = Hinfs.Buffer_pool

let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 4242L

let shards = 4
let ndirs = 6
let rounds = 5
let ops_per_round = 120
let max_files = 24
let chunk_max = 4096
let root = Layout.root_ino
let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

(* Oracle key: (directory index, name). Content is what the last
   successful synchronous write left there. *)
type key = int * string

type in_flight =
  | Idle
  | Op of key (* create / write / unlink racing the crash *)
  | Rename of { src : key; dst : key; data : Bytes.t }

let copy_oracle o =
  let c = Hashtbl.create (Hashtbl.length o) in
  Hashtbl.iter (fun k (ino, b) -> Hashtbl.replace c k (ino, Bytes.copy b)) o;
  c

(* Mount a crash image and check: fsck clean, per-shard recovery breakdown
   consistent, durable files intact, in-flight rename at exactly one name. *)
let verify_image engine ~label ~oracle ~in_flight ~dirs image =
  let stats = Stats.create () in
  let d = Device.of_snapshot engine stats config image in
  let fs = Pmfs.mount d () in
  let by_shard = Pmfs.recovered_by_shard fs in
  if Array.length by_shard <> shards then
    fail "[%s] recovered_by_shard has %d entries, expected %d" label
      (Array.length by_shard) shards;
  let rolled_back = Stats.recovered_txns stats in
  if Array.fold_left ( + ) 0 by_shard <> rolled_back then
    fail "[%s] per-shard rollback breakdown sums to %d, stats say %d" label
      (Array.fold_left ( + ) 0 by_shard)
      rolled_back;
  let freport = Fsck.check_pmfs fs in
  if not (Fsck.ok freport) then
    fail "[%s] crash image fails fsck: %a" label Fsck.pp_report freport;
  if Array.length freport.Fsck.shard_reports <> shards then
    fail "[%s] fsck shard_reports has %d entries, expected %d" label
      (Array.length freport.Fsck.shard_reports)
      shards;
  let resolve (di, name) =
    match Pmfs.lookup fs ~dir:dirs.(di) name with
    | None -> None
    | Some ino ->
      let size = Pmfs.inode_size fs ino in
      let buf = Bytes.create size in
      let n = Pmfs.read fs ~ino ~off:0 ~len:size ~into:buf ~into_off:0 in
      Some (Bytes.sub buf 0 n)
  in
  let exempt k =
    match in_flight with
    | Idle -> false
    | Op k' -> k = k'
    | Rename { src; dst; _ } -> k = src || k = dst
  in
  Hashtbl.iter
    (fun k (_ino, content) ->
      if not (exempt k) then
        match resolve k with
        | None -> fail "[%s] durable file %s/%s lost" label
                    (Fmt.str "d%d" (fst k)) (snd k)
        | Some got ->
          if not (Bytes.equal got content) then
            fail "[%s] file d%d/%s: content mismatch after recovery" label
              (fst k) (snd k))
    oracle;
  (match in_flight with
  | Rename { src; dst; data } -> (
    match (resolve src, resolve dst) with
    | Some _, Some _ ->
      fail "[%s] in-flight cross-shard rename visible at BOTH names" label
    | None, None ->
      fail "[%s] in-flight cross-shard rename visible at NEITHER name" label
    | (Some got, None | None, Some got) ->
      if not (Bytes.equal got data) then
        fail "[%s] in-flight rename: surviving name has torn content" label)
  | _ -> ());
  rolled_back

type round_outcome = {
  r_ops : int;
  r_renames : int;
  r_fence : int option;
  r_digest : string;
  r_rolled_back : int;
  r_by_shard : int list;
}

let run_pmfs_soak () =
  let engine = Engine.create () in
  let outcomes = ref [] in
  Engine.spawn engine ~name:"shard-soak" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 ~shards () in
      let rng = Rng.create ~seed in
      (* Directories land round-robin: d0..d5 over 4 shards guarantees at
         least one same-shard and one cross-shard pair. *)
      let dirs =
        Array.init ndirs (fun i -> Pmfs.mkdir fs ~dir:root (Fmt.str "d%d" i))
      in
      let cross = ref false in
      for i = 0 to ndirs - 1 do
        for j = 0 to ndirs - 1 do
          if Pmfs.shard_of_ino fs dirs.(i) <> Pmfs.shard_of_ino fs dirs.(j)
          then cross := true
        done
      done;
      if not !cross then
        fail "directory placement left every directory in one shard";
      let oracle : (key, int * Bytes.t) Hashtbl.t = Hashtbl.create 64 in
      let in_flight = ref Idle in
      let ops = ref 0 and renames = ref 0 in
      let keys () =
        Array.of_list
          (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) oracle []))
      in
      let pick () =
        let arr = keys () in
        if Array.length arr = 0 then None
        else Some arr.(Rng.int rng (Array.length arr))
      in
      let fresh_name () = Fmt.str "f%04d" (Rng.int rng 10_000) in
      let do_create () =
        if Hashtbl.length oracle < max_files then begin
          let di = Rng.int rng ndirs in
          let name = fresh_name () in
          if not (Hashtbl.mem oracle (di, name)) then begin
            in_flight := Op (di, name);
            let ino = Pmfs.create_file fs ~dir:dirs.(di) name in
            let len = 1 + Rng.int rng chunk_max in
            let data = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
            ignore
              (Pmfs.write fs ~ino ~off:0 ~src:data ~src_off:0 ~len ~sync:true);
            Hashtbl.replace oracle (di, name) (ino, data);
            incr ops
          end
        end
      in
      let do_write () =
        match pick () with
        | None -> do_create ()
        | Some k ->
          let ino, _ = Hashtbl.find oracle k in
          let len = 1 + Rng.int rng chunk_max in
          let data = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
          in_flight := Op k;
          Pmfs.truncate fs ~ino ~size:0;
          ignore
            (Pmfs.write fs ~ino ~off:0 ~src:data ~src_off:0 ~len ~sync:true);
          Hashtbl.replace oracle k (ino, data);
          incr ops
      in
      let do_read () =
        match pick () with
        | None -> ()
        | Some k ->
          let ino, content = Hashtbl.find oracle k in
          let len = Bytes.length content in
          let buf = Bytes.create len in
          let n = Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
          if n <> len || not (Bytes.equal buf content) then
            fail "SILENT CORRUPTION: d%d/%s read back wrong" (fst k) (snd k);
          incr ops
      in
      let do_unlink () =
        match pick () with
        | None -> ()
        | Some ((di, name) as k) ->
          in_flight := Op k;
          Pmfs.unlink fs ~dir:dirs.(di) name;
          Hashtbl.remove oracle k;
          incr ops
      in
      let do_rename () =
        match pick () with
        | None -> ()
        | Some ((sdi, sname) as src) ->
          let ddi = Rng.int rng ndirs in
          let dname = fresh_name () in
          let dst = (ddi, dname) in
          if not (Hashtbl.mem oracle dst) && dst <> src then begin
            let ino, data = Hashtbl.find oracle src in
            in_flight := Rename { src; dst; data };
            Pmfs.rename fs ~src_dir:dirs.(sdi) ~src:sname
              ~dst_dir:dirs.(ddi) ~dst:dname;
            Hashtbl.remove oracle src;
            Hashtbl.replace oracle dst (ino, data);
            incr ops;
            if Pmfs.shard_of_ino fs dirs.(sdi) <> Pmfs.shard_of_ino fs dirs.(ddi)
            then incr renames
          end
      in
      for round = 1 to rounds do
        Device.enable_recording d;
        let target = Rng.int rng 400 in
        let fences = ref 0 in
        let captured = ref None in
        let meta = ref None in
        Device.set_on_fence d (fun () ->
            if !fences <= target && Device.pending_choice_lines d > 0 then begin
              captured :=
                Some
                  (Device.capture_crash_state
                     ~label:(Fmt.str "shard-round-%d-fence-%d" round !fences)
                     d);
              meta := Some (copy_oracle oracle, !in_flight, !fences)
            end;
            incr fences);
        let ops0 = !ops and ren0 = !renames in
        for _ = 1 to ops_per_round do
          (match Rng.int rng 10 with
          | 0 | 1 -> do_create ()
          | 2 | 3 -> do_write ()
          | 4 | 5 | 6 -> do_read ()
          | 7 -> do_unlink ()
          | _ -> do_rename ());
          in_flight := Idle
        done;
        Device.disable_recording d;
        let image, fence, osnap, racing =
          match (!captured, !meta) with
          | Some state, Some (osnap, racing, fence) ->
            let counts =
              Array.of_list
                (List.map (fun (_, c) -> Array.length c) state.Device.cs_choices)
            in
            let vec = Array.map (fun c -> Rng.int rng c) counts in
            (Device.materialize_crash_image state ~choice:vec, Some fence,
             osnap, racing)
          | _ -> (Device.snapshot d, None, copy_oracle oracle, Idle)
        in
        let label = Fmt.str "round-%d" round in
        let rolled_back =
          verify_image engine ~label ~oracle:osnap ~in_flight:racing ~dirs image
        in
        (* Re-run the same verification on the same image — recovery must
           be idempotent shard by shard. *)
        ignore
          (verify_image engine ~label:(label ^ "-again") ~oracle:osnap
             ~in_flight:racing ~dirs image);
        outcomes :=
          {
            r_ops = !ops - ops0;
            r_renames = !renames - ren0;
            r_fence = fence;
            r_digest = Digest.bytes image;
            r_rolled_back = rolled_back;
            r_by_shard = [];
          }
          :: !outcomes
      done;
      if !renames = 0 then
        fail "no cross-shard rename ever ran (vacuous soak)";
      let freport = Fsck.check_pmfs fs in
      if not (Fsck.ok freport) then
        fail "live mount fails fsck: %a" Fsck.pp_report freport;
      if freport.Fsck.leaked_blocks > 0 || freport.Fsck.leaked_inodes > 0 then
        fail "live mount leaks: %d blocks, %d inodes"
          freport.Fsck.leaked_blocks freport.Fsck.leaked_inodes);
  Engine.run engine;
  List.rev !outcomes

(* --- part 2: HiNFS multi-shard smoke --- *)

let run_hinfs_smoke () =
  let engine = Engine.create () in
  let summary = ref "" in
  Engine.spawn engine ~name:"hinfs-shards" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let hcfg =
        { Hconfig.default with Hconfig.shards; buffer_bytes = 512 * 1024 }
      in
      let fs = Fs.mkfs_and_mount d ~journal_blocks:32 ~hcfg () in
      if Fs.shard_count fs <> shards then
        fail "HiNFS shard_count %d, expected %d" (Fs.shard_count fs) shards;
      let pmfs = Fs.pmfs fs in
      let rng = Rng.create ~seed:(Int64.add seed 1L) in
      let dirs =
        Array.init ndirs (fun i -> Pmfs.mkdir pmfs ~dir:root (Fmt.str "h%d" i))
      in
      let files =
        Array.init 12 (fun i ->
            let di = i mod ndirs in
            let name = Fmt.str "buf%d" i in
            let ino = Pmfs.create_file pmfs ~dir:dirs.(di) name in
            let len = 2048 + Rng.int rng 6144 in
            let data = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
            ignore
              (Fs.write fs ~ino ~off:0 ~src:data ~src_off:0 ~len:(Bytes.length data)
                 ~sync:false);
            (di, name, ino, data))
      in
      (* Buffered writes must have landed in more than one shard's pool. *)
      let pools_used = ref 0 in
      for s = 0 to shards - 1 do
        if Buffer_pool.used_count (Fs.shard_pool fs s) > 0 then incr pools_used
      done;
      if !pools_used < 2 then
        fail "buffered writes used %d shard pool(s); sharding is vacuous"
          !pools_used;
      (* Multi-shard sync_all: pending ordered transactions span shards and
         must commit through one epoch. *)
      let epoch_commits_before = Epoch.commits (Pmfs.epoch pmfs) in
      Fs.sync_all fs;
      if Epoch.commits (Pmfs.epoch pmfs) <= epoch_commits_before then
        fail "multi-shard sync_all did not commit through the epoch record";
      Fs.unmount fs;
      let fs2 = Fs.mount d ~daemons:false () in
      let pmfs2 = Fs.pmfs fs2 in
      Array.iter
        (fun (di, name, _ino, data) ->
          match Pmfs.lookup pmfs2 ~dir:dirs.(di) name with
          | None -> fail "remount lost h%d/%s" di name
          | Some ino ->
            let len = Bytes.length data in
            let buf = Bytes.create len in
            let n = Fs.read fs2 ~ino ~off:0 ~len ~into:buf ~into_off:0 in
            if n <> len || not (Bytes.equal buf data) then
              fail "remount content mismatch for h%d/%s" di name)
        files;
      let freport = Fsck.check_pmfs pmfs2 in
      if not (Fsck.ok freport) then
        fail "HiNFS remount fails fsck: %a" Fsck.pp_report freport;
      summary :=
        Fmt.str "%d files across %d dirs, %d shard pools used, %d epoch commit(s)"
          (Array.length files) ndirs !pools_used
          (Epoch.commits (Pmfs.epoch pmfs)));
  Engine.run engine;
  !summary

let () =
  let o1 = run_pmfs_soak () in
  List.iteri
    (fun i r ->
      let at =
        match r.r_fence with
        | Some f -> Fmt.str "fence %d" f
        | None -> "round end"
      in
      Fmt.pr
        "round %d: %d ops (%d cross-shard renames), crash at %s, %d rolled back@."
        (i + 1) r.r_ops r.r_renames at r.r_rolled_back)
    o1;
  let smoke = run_hinfs_smoke () in
  Fmt.pr "hinfs multi-shard: %s@." smoke;
  let o2 = run_pmfs_soak () in
  if o1 <> o2 then fail "shard soak is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "shard-soak OK@."
  | fs ->
    List.iter (Fmt.epr "shard-soak FAIL: %s@.") (List.rev fs);
    exit 1
