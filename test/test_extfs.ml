(* Tests for the page cache and the EXT2/EXT4/EXT4-DAX baselines. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Blockdev = Hinfs_blockdev.Blockdev
module Pagecache = Hinfs_pagecache.Pagecache
module Extfs = Hinfs_extfs.Extfs
module Fault = Hinfs_nvmm.Fault
module Obs = Hinfs_obs.Obs
module Ojson = Hinfs_obs.Ojson
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let cat = Stats.Other

let make_extfs ?stats ?(mode = Extfs.Ext2) ?(cache_pages = 128)
    ?(daemons = false) engine =
  let device = Testkit.make_device ?stats engine in
  let fs =
    Extfs.mkfs_and_mount device ~mode ~journal_blocks:16 ~cache_pages ~daemons
      ()
  in
  (device, fs)

(* --- page cache --- *)

let test_pagecache_read_write () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let cache = Pagecache.create bdev ~capacity_pages:16 in
      let payload = Testkit.pattern_bytes ~seed:1 4096 in
      Pagecache.write cache ~cat ~block:3 ~off:0 ~src:payload ~src_off:0
        ~len:4096;
      check_int "dirty" 1 (Pagecache.dirty_pages cache);
      (* Readable through the cache before writeback. *)
      let buf = Bytes.create 4096 in
      Pagecache.read cache ~cat ~block:3 ~off:0 ~len:4096 ~into:buf
        ~into_off:0;
      Testkit.check_bytes "cached read" payload buf;
      (* Not yet on the device. *)
      check_bool "device still zero" true
        (Bytes.to_string (Blockdev.peek_block bdev 3) = String.make 4096 '\000');
      Pagecache.flush_block cache ~cat 3;
      check_int "clean after flush" 0 (Pagecache.dirty_pages cache);
      Testkit.check_bytes "device updated" payload (Blockdev.peek_block bdev 3))

let test_pagecache_fetch_before_partial_write () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let cache = Pagecache.create bdev ~capacity_pages:16 in
      let base = Testkit.pattern_bytes ~seed:2 4096 in
      Blockdev.poke_block bdev 7 ~src:base ~off:0;
      (* Partial write to an uncached block must fetch it first. *)
      let misses0 = Pagecache.misses cache in
      let patch = Bytes.make 100 'P' in
      Pagecache.write cache ~cat ~block:7 ~off:500 ~src:patch ~src_off:0
        ~len:100;
      check_int "miss fetched" (misses0 + 1) (Pagecache.misses cache);
      let buf = Bytes.create 4096 in
      Pagecache.read cache ~cat ~block:7 ~off:0 ~len:4096 ~into:buf ~into_off:0;
      let expected = Bytes.copy base in
      Bytes.blit patch 0 expected 500 100;
      Testkit.check_bytes "merged content" expected buf)

let test_pagecache_eviction_prefers_clean () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let cache = Pagecache.create bdev ~capacity_pages:8 in
      (* 4 dirty pages, then read 8 more: clean pages get evicted first;
         dirty survive until forced. *)
      let payload = Bytes.make 4096 'D' in
      for b = 0 to 3 do
        Pagecache.write cache ~cat ~block:b ~off:0 ~src:payload ~src_off:0
          ~len:4096
      done;
      let buf = Bytes.create 4096 in
      for b = 10 to 17 do
        Pagecache.read cache ~cat ~block:b ~off:0 ~len:4096 ~into:buf
          ~into_off:0
      done;
      (* Cache holds 8 pages; the 4 dirty ones should still be among them
         as long as clean victims existed. *)
      check_int "capacity respected" 8 (Pagecache.cached_pages cache);
      check_int "dirty retained" 4 (Pagecache.dirty_pages cache);
      (* Fill the whole cache with dirty pages, then one more miss forces a
         foreground writeback. *)
      for b = 20 to 27 do
        Pagecache.write cache ~cat ~block:b ~off:0 ~src:payload ~src_off:0
          ~len:4096
      done;
      Pagecache.read cache ~cat ~block:99 ~off:0 ~len:4096 ~into:buf
        ~into_off:0;
      check_bool "foreground writebacks happened" true
        (Pagecache.foreground_writebacks cache > 0);
      (* The dirty data reached the device. *)
      Testkit.check_bytes "writeback content" payload
        (Blockdev.peek_block bdev 0))

let test_pagecache_flusher_daemon () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let cache =
        Pagecache.create bdev ~capacity_pages:32
          ~flush_interval:1_000_000_000L
      in
      Pagecache.start_flusher cache;
      let payload = Bytes.make 4096 'F' in
      for b = 0 to 19 do
        Pagecache.write cache ~cat ~block:b ~off:0 ~src:payload ~src_off:0
          ~len:4096
      done;
      check_int "dirty before" 20 (Pagecache.dirty_pages cache);
      Proc.delay 3_000_000_000L;
      (* dirty_background_ratio = 0.2 * 32 = 6 *)
      check_bool "flusher cleaned down to background ratio" true
        (Pagecache.dirty_pages cache <= 6);
      Pagecache.stop_flusher cache)

(* --- extfs basic (each mode) --- *)

let roundtrip_test mode () =
  Testkit.run_sim (fun engine ->
      let _d, fs = make_extfs ~mode engine in
      let h = Extfs.handle fs in
      h.Vfs.mkdir "/d";
      let fd = h.Vfs.open_ "/d/file" { Types.creat with Types.read = true } in
      let payload = Testkit.pattern_bytes ~seed:3 50_000 in
      check_int "write" 50_000 (h.Vfs.write fd payload 50_000);
      h.Vfs.seek fd 0;
      let buf = Bytes.create 50_000 in
      check_int "read" 50_000 (h.Vfs.read fd buf 50_000);
      Testkit.check_bytes "round trip" payload buf;
      h.Vfs.fsync fd;
      h.Vfs.close fd;
      (* Unaligned overwrite. *)
      let fd = h.Vfs.open_ "/d/file" Types.rdwr in
      let patch = Bytes.make 5000 'Z' in
      ignore (h.Vfs.pwrite fd ~off:3000 patch 5000);
      let buf2 = Bytes.create 50_000 in
      ignore (h.Vfs.pread fd ~off:0 buf2 50_000);
      let expected = Bytes.copy payload in
      Bytes.blit patch 0 expected 3000 5000;
      Testkit.check_bytes "patched" expected buf2;
      h.Vfs.close fd;
      h.Vfs.unlink "/d/file";
      check_bool "gone" false (h.Vfs.exists "/d/file"))

let test_indirect_blocks () =
  Testkit.run_sim (fun engine ->
      let config =
        { Testkit.small_config with Hinfs_nvmm.Config.nvmm_size = 64 * 1024 * 1024 }
      in
      let device = Testkit.make_device ~config engine in
      let fs =
        Extfs.mkfs_and_mount device ~mode:Extfs.Ext2 ~journal_blocks:16
          ~cache_pages:2048 ()
      in
      let h = Extfs.handle fs in
      (* 12 direct cover 48 KB; single indirect covers 4 MB more; write 6 MB
         to exercise the double-indirect path. *)
      let fd = h.Vfs.open_ "/big" { Types.creat with Types.read = true } in
      let chunk = 65536 in
      let n = 96 in
      for i = 0 to n - 1 do
        let payload = Bytes.make chunk (Char.chr (33 + (i mod 90))) in
        ignore (h.Vfs.pwrite fd ~off:(i * chunk) payload chunk)
      done;
      check_int "size" (n * chunk) (h.Vfs.fstat fd).Types.size;
      (* Spot check across the direct/indirect/double-indirect ranges. *)
      List.iter
        (fun i ->
          let buf = Bytes.create 8 in
          ignore (h.Vfs.pread fd ~off:(i * chunk) buf 8);
          Alcotest.(check char)
            "content" (Char.chr (33 + (i mod 90)))
            (Bytes.get buf 0))
        [ 0; 1; 20; 63; 64; 95 ];
      h.Vfs.close fd;
      (* Deleting reclaims everything. *)
      let free_before = Extfs.free_data_blocks fs in
      h.Vfs.unlink "/big";
      check_bool "blocks reclaimed" true
        (Extfs.free_data_blocks fs > free_before))

let test_ext4_journal_commits () =
  Testkit.run_sim (fun engine ->
      let _d, fs = make_extfs ~mode:Extfs.Ext4 engine in
      let h = Extfs.handle fs in
      let fd = h.Vfs.open_ "/j" Types.creat in
      let payload = Bytes.make 8192 'J' in
      ignore (h.Vfs.write fd payload 8192);
      h.Vfs.fsync fd;
      h.Vfs.close fd;
      check_bool "journal committed at fsync" true
        (Extfs.journal_commits fs > 0))

let test_ext4_dax_bypasses_page_cache_for_data () =
  let stats = Stats.create () in
  Testkit.run_sim (fun engine ->
      let _d, fs = make_extfs ~stats ~mode:Extfs.Ext4_dax engine in
      let h = Extfs.handle fs in
      let fd = h.Vfs.open_ "/dax" { Types.creat with Types.read = true } in
      let payload = Testkit.pattern_bytes ~seed:4 16_384 in
      let nvmm_before = Stats.nvmm_bytes_written stats in
      ignore (h.Vfs.write fd payload 16_384);
      (* DAX: the data reached NVMM synchronously. *)
      let written =
        Int64.to_int (Int64.sub (Stats.nvmm_bytes_written stats) nvmm_before)
      in
      check_bool "data went straight to NVMM" true (written >= 16_384);
      h.Vfs.seek fd 0;
      let buf = Bytes.create 16_384 in
      ignore (h.Vfs.read fd buf 16_384);
      Testkit.check_bytes "dax read" payload buf;
      h.Vfs.close fd)

let test_ext2_vs_ext4_journal_overhead () =
  (* EXT4 writes more blocks than EXT2 for the same metadata workload
     (Fig. 13's EXT2-faster-than-EXT4 observation). *)
  let run mode =
    let stats = Stats.create () in
    Testkit.run_sim (fun engine ->
        let _d, fs = make_extfs ~stats ~mode engine in
        let h = Extfs.handle fs in
        for i = 0 to 30 do
          let path = Printf.sprintf "/f%d" i in
          let fd = h.Vfs.open_ path Types.creat in
          let payload = Bytes.make 4096 'x' in
          ignore (h.Vfs.write fd payload 4096);
          h.Vfs.fsync fd;
          h.Vfs.close fd
        done);
    Stats.time stats Stats.Journal
  in
  let ext2 = run Extfs.Ext2 in
  let ext4 = run Extfs.Ext4 in
  check_bool "ext2 pays no journal time" true (Int64.equal ext2 0L);
  check_bool "ext4 pays journal time" true (Int64.compare ext4 0L > 0)

let test_double_copy_overhead_vs_direct () =
  (* The cached read path costs more time than a DAX read of the same data
     (double copy + block layer). *)
  let read_time mode =
    let stats = Stats.create () in
    Testkit.run_sim (fun engine ->
        let _d, fs = make_extfs ~stats ~mode ~cache_pages:64 engine in
        let h = Extfs.handle fs in
        let fd = h.Vfs.open_ "/r" { Types.creat with Types.read = true } in
        let payload = Testkit.pattern_bytes ~seed:5 (64 * 4096) in
        ignore (h.Vfs.write fd payload (64 * 4096));
        h.Vfs.fsync fd;
        (* Drop the cache by filling it with other data. *)
        let other = h.Vfs.open_ "/other" { Types.creat with Types.read = true } in
        ignore (h.Vfs.write other payload (64 * 4096));
        h.Vfs.fsync other;
        let t0 = Proc.now () in
        let buf = Bytes.create (64 * 4096) in
        ignore (h.Vfs.pread fd ~off:0 buf (64 * 4096));
        Testkit.check_bytes "content" payload buf;
        h.Vfs.close fd;
        h.Vfs.close other;
        Int64.sub (Proc.now ()) t0)
  in
  let cached = read_time Extfs.Ext2 in
  let dax = read_time Extfs.Ext4_dax in
  check_bool "cold cached read slower than direct" true
    (Int64.compare cached dax > 0)

let test_remount_preserves () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs =
        Extfs.mkfs_and_mount device ~mode:Extfs.Ext2 ~journal_blocks:16
          ~cache_pages:64 ()
      in
      let h = Extfs.handle fs in
      let fd = h.Vfs.open_ "/keep" Types.creat in
      let payload = Testkit.pattern_bytes ~seed:6 20_000 in
      ignore (h.Vfs.write fd payload 20_000);
      h.Vfs.close fd;
      h.Vfs.unmount ();
      let fs2 = Extfs.mount device ~mode:Extfs.Ext2 ~cache_pages:64 () in
      let h2 = Extfs.handle fs2 in
      let fd2 = h2.Vfs.open_ "/keep" Types.rdonly in
      let buf = Bytes.create 20_000 in
      check_int "size preserved" 20_000 (h2.Vfs.read fd2 buf 20_000);
      Testkit.check_bytes "data preserved" payload buf;
      h2.Vfs.close fd2)

(* --- crash / fault coverage --- *)

(* Find [needle] in [hay]; -1 when absent. Payloads are pseudo-random, so
   a 64-byte prefix locates a file's data block on the medium. *)
let find_bytes hay needle =
  let nl = Bytes.length needle and hl = Bytes.length hay in
  let rec go i =
    if i + nl > hl then -1
    else if Bytes.equal (Bytes.sub hay i nl) needle then i
    else go (i + 1)
  in
  go 0

(* Crash after fsync, remount from the crash image: EXT4's journal replay
   must restore the fsync'd file byte for byte. Then, with a fault model
   attached (lib/nvmm/fault), a poisoned cacheline under that file must
   surface as a media error — never as silently wrong data — and clearing
   the poison restores the original content. *)
let test_ext4_journal_replay_after_crash () =
  let payload = Testkit.pattern_bytes ~seed:21 12_000 in
  let snap =
    Testkit.run_sim (fun engine ->
        let device = Testkit.make_device engine in
        let fs =
          Extfs.mkfs_and_mount device ~mode:Extfs.Ext4 ~journal_blocks:16
            ~cache_pages:64 ()
        in
        let h = Extfs.handle fs in
        let fd = h.Vfs.open_ "/a" Types.creat in
        ignore (h.Vfs.write fd payload 12_000);
        h.Vfs.fsync fd;
        h.Vfs.close fd;
        check_bool "journal committed before crash" true
          (Extfs.journal_commits fs > 0);
        (* A second file left un-fsync'd: the crash is free to lose it. *)
        let fd2 = h.Vfs.open_ "/b" Types.creat in
        ignore (h.Vfs.write fd2 (Bytes.make 5000 'b') 5000);
        h.Vfs.close fd2;
        Device.snapshot device)
  in
  (* Remount the crash image: replay restores the fsync'd file. *)
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let fs = Extfs.mount device ~mode:Extfs.Ext4 ~cache_pages:64 () in
      let h = Extfs.handle fs in
      let fd = h.Vfs.open_ "/a" Types.rdonly in
      let buf = Bytes.create 12_000 in
      check_int "size survives replay" 12_000 (h.Vfs.read fd buf 12_000);
      Testkit.check_bytes "content survives replay" payload buf;
      h.Vfs.close fd;
      h.Vfs.unmount ());
  (* Same crash image again, this time with a poisoned line under the
     file's data: the read must fault, and must heal cleanly. *)
  let addr = find_bytes snap (Bytes.sub payload 0 64) in
  check_bool "payload located on the medium" true (addr >= 0);
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let fault = Fault.create ~seed:3L () in
      Device.set_fault_model device (Some fault);
      let fs = Extfs.mount device ~mode:Extfs.Ext4 ~cache_pages:64 () in
      let h = Extfs.handle fs in
      Fault.poison_line fault (addr / 64);
      let fd = h.Vfs.open_ "/a" Types.rdonly in
      let buf = Bytes.create 12_000 in
      let faulted =
        match h.Vfs.pread fd ~off:0 buf 12_000 with
        | _ -> false
        | exception Fault.Media_error _ -> true
      in
      check_bool "poisoned read surfaces a media error" true faulted;
      check_bool "fault counted" true (Stats.media_faults_poison stats > 0);
      Fault.clear_line fault (addr / 64);
      check_int "re-read after heal" 12_000 (h.Vfs.pread fd ~off:0 buf 12_000);
      Testkit.check_bytes "content intact after heal" payload buf;
      h.Vfs.close fd;
      h.Vfs.unmount ())

(* --- mmap / msync ordering --- *)

(* Extfs.Backend.mmap must order in-flight updates with full fsync
   semantics (data writeback + journal commit) before the mapping is
   exposed, and emit pin/unpin instants — the same contract the Pmfs.mmap
   fix established. msync pays the same ordering for a dirtied mapping. *)
let test_mmap_msync_ordering () =
  let engine = Engine.create () in
  let obs = Obs.create ~trace:true engine in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall @@ fun () ->
  let mmap_fences = ref (-1) in
  let mmap_commits = ref (-1) in
  let msync_commits = ref (-1) in
  Engine.spawn engine ~name:"mmap-test" (fun () ->
      let stats = Stats.create () in
      let device = Testkit.make_device ~stats engine in
      let fs =
        Extfs.mkfs_and_mount device ~mode:Extfs.Ext4 ~journal_blocks:16
          ~cache_pages:64 ()
      in
      let h = Extfs.handle fs in
      let fd = h.Vfs.open_ "/m" Types.creat in
      ignore (h.Vfs.write fd (Bytes.make 8192 'm') 8192);
      let f0 = Stats.total_mfences stats in
      let c0 = Extfs.journal_commits fs in
      h.Vfs.mmap fd;
      mmap_fences := Stats.total_mfences stats - f0;
      mmap_commits := Extfs.journal_commits fs - c0;
      (* Extend the file through the mapping; msync must order it. *)
      ignore (h.Vfs.pwrite fd ~off:8192 (Bytes.make 4096 'n') 4096);
      let c1 = Extfs.journal_commits fs in
      h.Vfs.msync fd;
      msync_commits := Extfs.journal_commits fs - c1;
      h.Vfs.munmap fd;
      h.Vfs.close fd;
      h.Vfs.unmount ());
  Engine.run engine;
  check_bool "mmap issues fences" true (!mmap_fences > 0);
  check_bool "mmap commits the journal" true (!mmap_commits > 0);
  check_bool "msync commits the journal" true (!msync_commits > 0);
  let trace = Ojson.to_string (Obs.chrome_trace obs) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mmap.pin instant in the trace" true (contains "mmap.pin" trace);
  check_bool "mmap.unpin instant in the trace" true
    (contains "mmap.unpin" trace);
  check_int "balanced spans" 0 (Obs.open_spans obs)

(* --- model prop per mode --- *)

let extfs_model_prop mode name =
  QCheck.Test.make ~name ~count:20
    QCheck.(small_nat)
    (fun seed ->
      Testkit.run_sim (fun engine ->
          let _d, fs = make_extfs ~mode ~cache_pages:48 engine in
          let h = Extfs.handle fs in
          let rng = Rng.create ~seed:(Int64.of_int ((seed * 733) + 5)) in
          let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
          let paths = Array.init 6 (fun i -> Printf.sprintf "/x%d" i) in
          let ok = ref true in
          for step = 0 to 200 do
            let path = Rng.pick rng paths in
            match Rng.int rng 6 with
            | 0 | 1 ->
              let len = Rng.int rng 15_000 in
              let payload = Testkit.pattern_bytes ~seed:step len in
              let fd =
                h.Vfs.open_ path { Types.creat with Types.truncate = true }
              in
              ignore (h.Vfs.write fd payload len);
              h.Vfs.close fd;
              Hashtbl.replace model path (Bytes.copy payload)
            | 2 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some content ->
                let size = Bytes.length content in
                let off = Rng.int rng (size + 3000) in
                let len = 1 + Rng.int rng 4000 in
                let payload = Testkit.pattern_bytes ~seed:(step + 23) len in
                let fd = h.Vfs.open_ path Types.rdwr in
                ignore (h.Vfs.pwrite fd ~off payload len);
                h.Vfs.close fd;
                let new_size = max size (off + len) in
                let updated = Bytes.make new_size '\000' in
                Bytes.blit content 0 updated 0 size;
                Bytes.blit payload 0 updated off len;
                Hashtbl.replace model path updated)
            | 3 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some _ ->
                let fd = h.Vfs.open_ path Types.rdwr in
                h.Vfs.fsync fd;
                h.Vfs.close fd)
            | 4 -> (
              match Hashtbl.find_opt model path with
              | None -> ()
              | Some _ ->
                h.Vfs.unlink path;
                Hashtbl.remove model path)
            | _ -> (
              match Hashtbl.find_opt model path with
              | None -> if h.Vfs.exists path then ok := false
              | Some content ->
                let fd = h.Vfs.open_ path Types.rdonly in
                let buf = Bytes.create (Bytes.length content + 64) in
                let n = h.Vfs.pread fd ~off:0 buf (Bytes.length buf) in
                h.Vfs.close fd;
                if
                  n <> Bytes.length content
                  || not (Bytes.equal (Bytes.sub buf 0 n) content)
                then ok := false)
          done;
          !ok))

let () =
  Alcotest.run "extfs"
    [
      ( "pagecache",
        [
          Alcotest.test_case "read/write" `Quick test_pagecache_read_write;
          Alcotest.test_case "fetch before partial write" `Quick
            test_pagecache_fetch_before_partial_write;
          Alcotest.test_case "eviction prefers clean" `Quick
            test_pagecache_eviction_prefers_clean;
          Alcotest.test_case "flusher daemon" `Quick
            test_pagecache_flusher_daemon;
        ] );
      ( "modes",
        [
          Alcotest.test_case "ext2 round trip" `Quick (roundtrip_test Extfs.Ext2);
          Alcotest.test_case "ext4 round trip" `Quick (roundtrip_test Extfs.Ext4);
          Alcotest.test_case "ext4-dax round trip" `Quick
            (roundtrip_test Extfs.Ext4_dax);
          Alcotest.test_case "indirect blocks" `Quick test_indirect_blocks;
          Alcotest.test_case "remount preserves" `Quick test_remount_preserves;
        ] );
      ( "journal",
        [
          Alcotest.test_case "ext4 commits at fsync" `Quick
            test_ext4_journal_commits;
          Alcotest.test_case "ext2 vs ext4 overhead" `Quick
            test_ext2_vs_ext4_journal_overhead;
        ] );
      ( "costs",
        [
          Alcotest.test_case "dax bypasses cache" `Quick
            test_ext4_dax_bypasses_page_cache_for_data;
          Alcotest.test_case "double copy slower than direct" `Quick
            test_double_copy_overhead_vs_direct;
        ] );
      ( "crash",
        [
          Alcotest.test_case "ext4 journal replay + fault" `Quick
            test_ext4_journal_replay_after_crash;
        ] );
      ( "mmap",
        [
          Alcotest.test_case "mmap/msync order and pin" `Quick
            test_mmap_msync_ordering;
        ] );
      ( "model",
        Testkit.qcheck_cases
          [
            extfs_model_prop Extfs.Ext2 "ext2 matches model";
            extfs_model_prop Extfs.Ext4 "ext4 matches model";
            extfs_model_prop Extfs.Ext4_dax "ext4-dax matches model";
          ] );
    ]
