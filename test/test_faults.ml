(* Media-fault model tests: deterministic placement, transient retry,
   superblock replica repair, CRC-guarded journal recovery, and the
   read-only degradation ladder. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Crc32c = Hinfs_structures.Crc32c
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Log = Hinfs_journal.Cacheline_log
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cat = Stats.Other
let root = Layout.root_ino
let line_size = 64

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let raises_errno code f =
  match f () with
  | _ -> false
  | exception Errno.Fs_error (c, _) -> c = code

(* --- CRC-32C --- *)

let test_crc32c_vector () =
  (* The Castagnoli check value (RFC 3720 appendix B.4). *)
  check_int "crc32c(123456789)" 0xE3069283 (Crc32c.digest_string "123456789");
  let whole = Crc32c.digest_string "123456789" in
  let b = Bytes.of_string "123456789" in
  let partial = Crc32c.update (Crc32c.digest b ~off:0 ~len:4) b ~off:4 ~len:5 in
  check_int "incremental update matches one-shot" whole partial

(* --- deterministic placement --- *)

(* One full workload under nonzero fault rates; returns every counter the
   model and the stats layer expose. Two runs with the same seed must agree
   bit for bit. *)
let faulty_run () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let fault =
        Fault.create ~poison_rate:0.005 ~transient_rate:0.005 ~seed:99L ()
      in
      Device.set_fault_model d (Some fault);
      let len = 48 * 1024 in
      let payload = Testkit.pattern_bytes ~seed:5 len in
      let inos =
        List.init 6 (fun i -> Pmfs.create_file fs ~dir:root (Fmt.str "f%d" i))
      in
      List.iter
        (fun ino ->
          ignore
            (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len
               ~sync:true))
        inos;
      let eio = ref 0 in
      List.iter
        (fun ino ->
          let buf = Bytes.create len in
          match Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 with
          | _ -> ()
          | exception Errno.Fs_error (Errno.EIO, _) -> incr eio)
        inos;
      ( Fault.poisoned_lines fault,
        ( Fault.store_poisons fault,
          Fault.transient_faults fault,
          Fault.poison_hits fault,
          Fault.heals fault ),
        ( !eio,
          Stats.media_faults_transient stats,
          Stats.media_faults_poison stats,
          Stats.media_retries stats ) ))

let test_same_seed_same_faults () =
  let lines1, model1, fsstats1 = faulty_run () in
  let lines2, model2, fsstats2 = faulty_run () in
  check_bool "identical poisoned-line placement" true (lines1 = lines2);
  check_bool "at least one line poisoned" true (lines1 <> []);
  check_bool "identical model counters" true (model1 = model2);
  check_bool "identical fs-level counters" true (fsstats1 = fsstats2)

(* --- transient faults are retried to success --- *)

let test_transient_retried () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let ino = Pmfs.create_file fs ~dir:root "t" in
      let payload = Testkit.pattern_bytes ~seed:9 48 in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:48 ~sync:true);
      (* Every clean-line load now faults once; the bounded retry consumes
         the pending transient and succeeds on the second attempt. The read
         covers a single cacheline, so exactly one retry is needed. *)
      let fault = Fault.create ~transient_rate:1.0 ~seed:7L () in
      Device.set_fault_model d (Some fault);
      let buf = Bytes.create 48 in
      let n = Pmfs.read fs ~ino ~off:0 ~len:48 ~into:buf ~into_off:0 in
      check_int "bytes read" 48 n;
      Testkit.check_bytes "data intact after retry" payload (Bytes.sub buf 0 48);
      check_int "one transient fault" 1 (Stats.media_faults_transient stats);
      check_int "one retry" 1 (Stats.media_retries stats);
      check_bool "mount still read-write" false (Pmfs.read_only fs))

(* --- superblock replica repair --- *)

let test_superblock_repaired_from_replica () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let ino = Pmfs.create_file fs ~dir:root "keep" in
      let payload = Testkit.pattern_bytes ~seed:11 4096 in
      ignore
        (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096
           ~sync:true);
      Pmfs.unmount fs;
      let fault = Fault.create ~seed:1L () in
      Device.set_fault_model d (Some fault);
      (* Strike the first line of the primary superblock. *)
      Fault.poison_line fault 0;
      let fs = Pmfs.mount d () in
      check_bool "mounted read-write" false (Pmfs.read_only fs);
      check_bool "primary repaired (poison healed)" false
        (Fault.is_poisoned fault 0);
      check_bool "repair counted" true (Stats.scrub_repairs stats >= 1);
      let buf = Bytes.create 4096 in
      let n = Pmfs.read fs ~ino ~off:0 ~len:4096 ~into:buf ~into_off:0 in
      check_int "file length intact" 4096 n;
      Testkit.check_bytes "file intact after repair" payload buf)

(* Both superblock copies struck: the device is formatted but its geometry
   is unreadable. The mount must fail cleanly with EIO — fabricating a
   mount from a guessed geometry would corrupt whatever is still
   recoverable offline. *)
let test_both_superblocks_corrupt_mount_eio () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let geo = Pmfs.geometry fs in
      ignore (Pmfs.create_file fs ~dir:root "keep");
      Pmfs.unmount fs;
      let fault = Fault.create ~seed:2L () in
      Device.set_fault_model d (Some fault);
      Fault.poison_line fault 0;
      Fault.poison_line fault
        (geo.Layout.sb_replica * geo.Layout.block_size / line_size);
      match Pmfs.mount d () with
      | _ -> Alcotest.fail "mount succeeded with both superblocks corrupt"
      | exception Errno.Fs_error (Errno.EIO, msg) ->
        check_bool "failure names the superblock" true
          (contains msg "superblock"))

(* --- resource exhaustion --- *)

(* Fill a small device to exhaustion: every failed operation must surface
   as a stable ENOSPC, and the aborted operations must leak nothing — the
   live allocators still cover exactly the reachable set, and freeing
   space makes the file system fully writable again. *)
let test_enospc_exhaustion_leak_free () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let config =
        { Hinfs_nvmm.Config.default with
          Hinfs_nvmm.Config.nvmm_size = 2 * 1024 * 1024
        }
      in
      let d = Testkit.make_device ~config ~stats engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:8 () in
      let chunk = 16 * 1024 in
      let payload = Testkit.pattern_bytes ~seed:31 chunk in
      let created = ref [] in
      let failures = ref 0 in
      (try
         for i = 0 to 10_000 do
           let name = Fmt.str "fill%04d" i in
           let ino = Pmfs.create_file fs ~dir:root name in
           created := (name, ino) :: !created;
           ignore
             (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:chunk
                ~sync:true)
         done;
         Alcotest.fail "2 MB device absorbed 160 MB of writes"
       with Errno.Fs_error (Errno.ENOSPC, _) -> incr failures);
      (* Exhaustion is sticky and stable: further attempts keep failing
         with ENOSPC (never a crash, never a different errno). *)
      for i = 1 to 8 do
        let name = Fmt.str "retry%02d" i in
        match Pmfs.create_file fs ~dir:root name with
        | ino ->
          (match
             Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:chunk
               ~sync:true
           with
          | _ -> ()
          | exception Errno.Fs_error (Errno.ENOSPC, _) -> incr failures);
          Pmfs.unlink fs ~dir:root name
        | exception Errno.Fs_error (Errno.ENOSPC, _) -> incr failures
      done;
      check_bool "exhaustion reached" true (!failures > 0);
      (* No leaks: the live allocators must agree with the reachable set
         even after all those aborted operations. *)
      let freport = Fsck.check_pmfs fs in
      check_bool
        (Fmt.str "fsck clean on the exhausted live mount: %a" Fsck.pp_report
           freport)
        true (Fsck.ok freport);
      check_int "no leaked blocks" 0 freport.Fsck.leaked_blocks;
      check_int "no leaked inodes" 0 freport.Fsck.leaked_inodes;
      (* Freeing space restores full service. *)
      (match !created with
      | (name, _) :: (name2, _) :: _ ->
        Pmfs.unlink fs ~dir:root name;
        Pmfs.unlink fs ~dir:root name2
      | _ -> Alcotest.fail "device filled before creating two files");
      let ino = Pmfs.create_file fs ~dir:root "after" in
      let n =
        Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:chunk
          ~sync:true
      in
      check_int "write succeeds after space freed" chunk n;
      (* And the image is still consistent across a remount. *)
      Pmfs.unmount fs;
      let fs = Pmfs.mount d () in
      let freport = Fsck.check_pmfs fs in
      check_bool "fsck clean after remount" true (Fsck.ok freport);
      let buf = Bytes.create chunk in
      let n = Pmfs.read fs ~ino ~off:0 ~len:chunk ~into:buf ~into_off:0 in
      check_int "data intact" chunk n;
      Testkit.check_bytes "data intact after remount" payload buf)

(* --- CRC-guarded journal recovery --- *)

let journal_first = 1
let journal_blocks = 8
let target_base = 16 * 4096

let test_corrupt_commit_detected () =
  (* encode/corrupt unit check first. *)
  let entry =
    Log.encode_entry ~txn_id:1 ~seq:0 ~entry_type:Log.type_commit ~addr:0
      ~payload:Bytes.empty
  in
  check_bool "fresh entry passes CRC" true (Log.entry_crc_ok entry);
  let bad = Bytes.copy entry in
  Bytes.set_uint8 bad 20 (Bytes.get_uint8 bad 20 lxor 0xFF);
  check_bool "corrupt entry fails CRC" false (Log.entry_crc_ok bad);
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d = Testkit.make_device ~stats engine in
      let log = Log.create d ~first_block:journal_first ~blocks:journal_blocks in
      let old = Testkit.pattern_bytes ~seed:2 64 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:64;
      (* Transaction logs the range and updates in place, but its commit
         record reaches the medium torn: the stored CRC does not match. *)
      let txn = Log.begin_txn log in
      Log.log log txn ~addr:target_base ~len:64;
      Device.write_cached d ~cat ~addr:target_base ~src:(Bytes.make 64 'Z')
        ~off:0 ~len:64;
      Device.clflush d ~cat ~addr:target_base ~len:64;
      (* The 64-byte range takes two undo entries (slots 0-1); the torn
         commit record lands in slot 2. *)
      Device.poke d
        ~addr:((journal_first * 4096) + (2 * Log.entry_size))
        ~src:bad ~off:0 ~len:Log.entry_size;
      Device.crash d;
      let recovery =
        Log.recover d ~first_block:journal_first ~blocks:journal_blocks ()
      in
      check_int "untrusted commit dropped" 1 recovery.Log.dropped;
      check_int "txn rolled back despite torn commit" 1
        recovery.Log.rolled_back;
      check_bool "mismatch counted" true (Stats.crc_mismatches stats >= 1);
      let back = Device.peek_persistent d ~addr:target_base ~len:64 in
      Testkit.check_bytes "old value restored" old back)

let test_corrupt_journal_degrades_mount () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let geo = Pmfs.geometry fs in
      let ino = Pmfs.create_file fs ~dir:root "survivor" in
      let payload = Testkit.pattern_bytes ~seed:13 1024 in
      ignore
        (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:1024
           ~sync:true);
      Pmfs.unmount fs;
      (* Fake an unclean shutdown that left a torn commit record behind:
         clear the clean flag and plant a checksum-invalid record. *)
      Device.poke d ~addr:Layout.Sb.clean_unmount_off
        ~src:(Bytes.make 1 '\000') ~off:0 ~len:1;
      let entry =
        Log.encode_entry ~txn_id:1 ~seq:0 ~entry_type:Log.type_commit ~addr:0
          ~payload:Bytes.empty
      in
      Bytes.set_uint8 entry 20 (Bytes.get_uint8 entry 20 lxor 0xFF);
      Device.poke d
        ~addr:(geo.Layout.journal_start * geo.Layout.block_size)
        ~src:entry ~off:0 ~len:Log.entry_size;
      let fs = Pmfs.mount d () in
      check_bool "mount degraded to read-only" true (Pmfs.read_only fs);
      check_bool "mismatch counted" true (Stats.crc_mismatches stats >= 1);
      let buf = Bytes.create 1024 in
      let n = Pmfs.read fs ~ino ~off:0 ~len:1024 ~into:buf ~into_off:0 in
      check_int "reads still served" 1024 n;
      Testkit.check_bytes "data intact" payload buf;
      check_bool "mutations raise EROFS" true
        (raises_errno Errno.EROFS (fun () ->
             Pmfs.create_file fs ~dir:root "nope")))

(* --- unrecoverable itable poison: read-only with reads served --- *)

let test_itable_poison_mounts_read_only () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let geo = Pmfs.geometry fs in
      let ino = Pmfs.create_file fs ~dir:root "victim" in
      let payload = Testkit.pattern_bytes ~seed:17 4096 in
      ignore
        (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len:4096
           ~sync:true);
      Pmfs.unmount fs;
      let fault = Fault.create ~seed:3L () in
      Device.set_fault_model d (Some fault);
      (* Poison the live inode's slot in the table: no redundant copy
         exists, so the mount must degrade rather than trust it. *)
      Fault.poison_line fault (Layout.Inode.addr geo ino / line_size);
      let fs = Pmfs.mount d () in
      check_bool "mount degraded to read-only" true (Pmfs.read_only fs);
      (match Pmfs.read_only_reason fs with
      | Some reason ->
        check_bool "reason names the inode table" true
          (contains reason "inode")
      | None -> Alcotest.fail "degraded mount must carry a reason");
      let buf = Bytes.create 4096 in
      let n = Pmfs.read fs ~ino ~off:0 ~len:4096 ~into:buf ~into_off:0 in
      check_int "reads still served" 4096 n;
      Testkit.check_bytes "data intact" payload buf;
      check_bool "create raises EROFS" true
        (raises_errno Errno.EROFS (fun () ->
             Pmfs.create_file fs ~dir:root "nope"));
      check_bool "unlink raises EROFS" true
        (raises_errno Errno.EROFS (fun () ->
             Pmfs.unlink fs ~dir:root "victim"));
      ignore stats)

(* --- per-shard fault domains --- *)

module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Health = Hinfs_pmfs.Health
module Obs = Hinfs_obs.Obs
module Hist = Hinfs_obs.Hist

(* Satellite: ops crossing the VFS boundary into a quarantined shard fail
   fast (reads/fsync EIO, mutations EROFS) while sibling shards in the
   same mount keep serving create/write/fsync — and the mount itself
   never goes read-only. *)
let test_quarantine_vfs_boundary () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 ~shards:4 () in
      let h = Pmfs.handle fs in
      (* One directory per shard, names derived from the owner probe. *)
      let dir_of = Array.make 4 None in
      for i = 0 to 15 do
        let name = Fmt.str "c%d" i in
        let ino = Pmfs.mkdir fs ~dir:root name in
        let s = Pmfs.shard_of_ino fs ino in
        if dir_of.(s) = None then dir_of.(s) <- Some name
      done;
      let dir s = Option.get dir_of.(s) in
      let victim = 1 in
      let sibling = 2 in
      let payload = Bytes.make 512 'q' in
      let vfile = Fmt.str "/%s/f" (dir victim) in
      let sfile = Fmt.str "/%s/f" (dir sibling) in
      let vfd = h.Vfs.open_ vfile { Types.creat with Types.read = true } in
      let sfd = h.Vfs.open_ sfile { Types.creat with Types.read = true } in
      ignore (h.Vfs.pwrite vfd ~off:0 payload 512);
      ignore (h.Vfs.pwrite sfd ~off:0 payload 512);
      h.Vfs.fsync vfd;
      h.Vfs.fsync sfd;
      (* Degraded: reads still served, mutations rejected. *)
      Pmfs.degrade_shard fs victim "test: induced fault";
      let buf = Bytes.create 512 in
      check_int "degraded shard still serves reads" 512
        (h.Vfs.pread vfd ~off:0 buf 512);
      check_bool "degraded shard rejects writes EROFS" true
        (raises_errno Errno.EROFS (fun () -> h.Vfs.pwrite vfd ~off:0 payload 512));
      (* Quarantined: reads fail fast too. *)
      Health.quarantine (Pmfs.health fs) victim;
      check_bool "quarantined shard read raises EIO" true
        (raises_errno Errno.EIO (fun () -> h.Vfs.pread vfd ~off:0 buf 512));
      check_bool "quarantined shard fsync raises EIO" true
        (raises_errno Errno.EIO (fun () -> h.Vfs.fsync vfd));
      check_bool "quarantined shard create raises EROFS" true
        (raises_errno Errno.EROFS (fun () ->
             h.Vfs.open_ (Fmt.str "/%s/new" (dir victim)) Types.creat));
      (* Containment: the sibling shard and the mount are untouched. *)
      check_bool "mount never flips read-only" false (Pmfs.read_only fs);
      let nfd =
        h.Vfs.open_
          (Fmt.str "/%s/new" (dir sibling))
          { Types.creat with Types.read = true }
      in
      ignore (h.Vfs.pwrite nfd ~off:0 payload 512);
      h.Vfs.fsync nfd;
      check_int "sibling shard serves reads" 512 (h.Vfs.pread nfd ~off:0 buf 512);
      (* Re-admission restores the victim to full service. *)
      Health.start_repair (Pmfs.health fs) victim;
      check_bool "repairing shard still fails reads" true
        (raises_errno Errno.EIO (fun () -> h.Vfs.pread vfd ~off:0 buf 512));
      Health.readmit (Pmfs.health fs) victim;
      ignore (h.Vfs.pwrite vfd ~off:0 payload 512);
      h.Vfs.fsync vfd;
      check_int "re-admitted shard serves reads" 512
        (h.Vfs.pread vfd ~off:0 buf 512);
      check_bool "all domains healthy again" true (Pmfs.fully_healthy fs))

(* Satellite: the transient-read retry policy is configurable and its
   backoff is charged on the virtual clock, visible in the dev.retry
   histogram. *)
let test_retry_backoff_charged () =
  let obs_ref = ref None in
  Fun.protect ~finally:(fun () -> Obs.uninstall ()) (fun () ->
      Testkit.run_sim (fun engine ->
          let obs = Obs.create engine in
          Obs.install obs;
          obs_ref := Some obs;
          let stats = Stats.create () in
          let d, fs = Testkit.make_pmfs ~stats engine in
          Pmfs.set_retry_policy fs
            { Fault.max_retries = 2; backoff_ns = 5_000; backoff_multiplier = 2 };
          let len = 4096 in
          let payload = Testkit.pattern_bytes ~seed:21 len in
          let ino = Pmfs.create_file fs ~dir:root "jittery" in
          ignore
            (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len ~sync:true);
          (* Every fresh line faults once; a single-line read therefore
             faults on the first attempt and succeeds on the retry. *)
          Device.set_fault_model d
            (Some (Fault.create ~transient_rate:1.0 ~seed:11L ()));
          let t0 = Engine.now engine in
          let buf = Bytes.create line_size in
          let n =
            Pmfs.read fs ~ino ~off:0 ~len:line_size ~into:buf ~into_off:0
          in
          check_int "read completes under storm" line_size n;
          Testkit.check_bytes "retried read returns true data"
            (Bytes.sub payload 0 line_size)
            buf;
          let retries = Stats.media_retries stats in
          check_bool "retries recorded" true (retries > 0);
          let elapsed = Int64.sub (Engine.now engine) t0 in
          check_bool "backoff charged on the virtual clock" true
            (Int64.compare elapsed (Int64.of_int (retries * 5_000)) >= 0);
          check_bool "no degradation from transient faults" true
            (Pmfs.fully_healthy fs));
      match !obs_ref with
      | None -> Alcotest.fail "obs sink never installed"
      | Some obs ->
        check_bool "dev.retry histogram populated" true
          ((Obs.hist obs Obs.Dev_retry).Hist.count > 0))

(* An unsharded mount is its own (only) fault domain, and it is not
   degraded-forever: the repair pass runs in place — journal re-replay,
   scrub, fsck — and re-admits the mount once the image verifies clean. *)
let test_mount_repair_in_place () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d, fs = Testkit.make_pmfs ~stats engine in
      let len = 4096 in
      let payload = Testkit.pattern_bytes ~seed:33 len in
      let ino = Pmfs.create_file fs ~dir:root "survivor" in
      ignore (Pmfs.write fs ~ino ~off:0 ~src:payload ~src_off:0 ~len ~sync:true);
      (* Latent damage the scrubber can heal: poison over the (idle)
         journal region, plus the mount-level degradation a foreground
         uncorrectable metadata read would have caused. *)
      let fm = Fault.create ~seed:5L () in
      Device.set_fault_model d (Some fm);
      let geo = Pmfs.geometry fs in
      let bs = geo.Hinfs_pmfs.Layout.block_size in
      let first_block, _ = Hinfs_pmfs.Layout.journal_region geo 0 in
      Fault.poison_line fm (first_block * bs / line_size);
      Pmfs.degrade fs "uncorrectable media error (injected)";
      check_bool "mount degraded read-only" true (Pmfs.read_only fs);
      check_bool "mutations fail EROFS while degraded" true
        (raises_errno Errno.EROFS (fun () ->
             ignore (Pmfs.create_file fs ~dir:root "blocked")));
      check_int "reads still served while degraded" len
        (Pmfs.read fs ~ino ~off:0 ~len ~into:(Bytes.create len) ~into_off:0);
      (* One in-place repair pass: drain (trivially empty), journal
         re-replay, epoch heal, scrub, fsck verify, re-admit. *)
      let repaired, failed = Hinfs_fsck.Repair.run_once fs in
      check_int "one repair completed" 1 repaired;
      check_int "no repair failed" 0 failed;
      check_bool "mount re-admitted" true (Pmfs.fully_healthy fs);
      check_bool "journal poison healed" true
        (Device.verify_range d ~addr:(first_block * bs) ~len:bs = []);
      (* Full read-write service is restored and data survived. *)
      let ino2 = Pmfs.create_file fs ~dir:root "after-heal" in
      ignore (Pmfs.write fs ~ino:ino2 ~off:0 ~src:payload ~src_off:0 ~len ~sync:true);
      let buf = Bytes.create len in
      check_int "survivor still reads" len
        (Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0);
      Testkit.check_bytes "survivor content intact" payload buf;
      (* A healthy mount is a no-op for the next pass. *)
      let r2, f2 = Hinfs_fsck.Repair.run_once fs in
      check_int "healthy mount needs no repair" 0 r2;
      check_int "healthy mount fails no repair" 0 f2)

let () =
  Alcotest.run "faults"
    [
      ( "crc32c",
        [ Alcotest.test_case "known vector" `Quick test_crc32c_vector ] );
      ( "fault-model",
        [
          Alcotest.test_case "same seed, same faults" `Quick
            test_same_seed_same_faults;
          Alcotest.test_case "transient retried" `Quick test_transient_retried;
        ] );
      ( "repair",
        [
          Alcotest.test_case "superblock replica repair" `Quick
            test_superblock_repaired_from_replica;
          Alcotest.test_case "both superblocks corrupt mounts EIO" `Quick
            test_both_superblocks_corrupt_mount_eio;
        ] );
      ( "exhaustion",
        [
          Alcotest.test_case "ENOSPC soak is leak-free" `Quick
            test_enospc_exhaustion_leak_free;
        ] );
      ( "journal-crc",
        [
          Alcotest.test_case "corrupt commit detected" `Quick
            test_corrupt_commit_detected;
          Alcotest.test_case "corrupt journal degrades mount" `Quick
            test_corrupt_journal_degrades_mount;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "itable poison mounts read-only" `Quick
            test_itable_poison_mounts_read_only;
        ] );
      ( "fault-domains",
        [
          Alcotest.test_case "quarantine at the VFS boundary" `Quick
            test_quarantine_vfs_boundary;
          Alcotest.test_case "retry backoff charged on virtual clock" `Quick
            test_retry_backoff_charged;
          Alcotest.test_case "unsharded mount repaired in place" `Quick
            test_mount_repair_in_place;
        ] );
    ]
