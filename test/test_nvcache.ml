(* Tests for the lib/nvcache durability tier: fsync absorption, read-your-
   writes, destage, ring wrap + backpressure, crash replay for both the
   logging and the paging design, and replay idempotence. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Extfs = Hinfs_extfs.Extfs
module Nvcache = Hinfs_nvcache.Nvcache
module Obs = Hinfs_obs.Obs
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fresh nvcache-over-ext4 stack on a fresh device. Sync mount so every
   write is a synchronous bio the tier must absorb; daemons off so the
   engine drains when the test body finishes. *)
let make_stack ?stats ?(design = Nvcache.Logging) ?(mode = Extfs.Ext4)
    ?cache_bytes ?(daemons = false) engine =
  let device = Testkit.make_device ?stats engine in
  let st =
    Nvcache.mkfs_and_mount device ~design ~mode ?cache_bytes
      ~journal_blocks:16 ~sync_mount:true ~cache_pages:64 ~daemons ()
  in
  (device, st)

let write_file h path payload =
  let fd = h.Vfs.open_ path { Types.creat with Types.read = true } in
  ignore (h.Vfs.write fd payload (Bytes.length payload));
  h.Vfs.fsync fd;
  h.Vfs.close fd

let read_file h path len =
  let fd = h.Vfs.open_ path Types.rdonly in
  let buf = Bytes.create len in
  let n = h.Vfs.pread fd ~off:0 buf len in
  h.Vfs.close fd;
  (n, buf)

(* --- absorption and read-your-writes --- *)

let test_absorbs_and_reads_back design () =
  Testkit.run_sim (fun engine ->
      let _d, st = make_stack ~design engine in
      let h = Nvcache.handle st in
      let cache = Nvcache.cache st in
      let payload = Testkit.pattern_bytes ~seed:31 10_000 in
      write_file h "/f" payload;
      (* The fsync'd write was absorbed, not written through. *)
      check_bool "tier absorbed writes" true (Nvcache.appends cache > 0);
      check_bool "backlog pending" true (Nvcache.backlog cache > 0);
      check_bool "cache occupied" true (Nvcache.used_bytes cache > 0);
      (* Read-your-writes through the tier before any destage. *)
      let n, buf = read_file h "/f" 10_000 in
      check_int "length" 10_000 n;
      Testkit.check_bytes "read-your-writes" payload buf;
      Nvcache.unmount st)

(* --- destage drains and truncates --- *)

let test_destage_drains design () =
  Testkit.run_sim (fun engine ->
      let _d, st = make_stack ~design engine in
      let h = Nvcache.handle st in
      let cache = Nvcache.cache st in
      let payload = Testkit.pattern_bytes ~seed:32 20_000 in
      write_file h "/f" payload;
      Nvcache.destage_all cache;
      check_int "backlog drained" 0 (Nvcache.backlog cache);
      check_int "cache truncated" 0 (Nvcache.used_bytes cache);
      check_bool "destage batches ran" true (Nvcache.destages cache > 0);
      check_bool "records destaged" true (Nvcache.destaged_records cache > 0);
      (* Content now comes from the backend. *)
      let n, buf = read_file h "/f" 20_000 in
      check_int "length" 20_000 n;
      Testkit.check_bytes "content after destage" payload buf;
      Nvcache.unmount st)

(* --- crash with a full backlog: replay recovers everything --- *)

let test_crash_replay design () =
  let payload0 = Testkit.pattern_bytes ~seed:33 9_000 in
  let payload1 = Testkit.pattern_bytes ~seed:34 14_000 in
  let snap =
    Testkit.run_sim (fun engine ->
        let device, st = make_stack ~design engine in
        let h = Nvcache.handle st in
        write_file h "/a" payload0;
        write_file h "/b" payload1;
        (* Crash with the whole backlog still in NVMM. *)
        check_bool "backlog at crash" true
          (Nvcache.backlog (Nvcache.cache st) > 0);
        Device.snapshot device)
  in
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let st =
        Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true ~cache_pages:64
          ()
      in
      (match Nvcache.last_recovery st with
      | None -> Alcotest.fail "mount did not run replay"
      | Some r ->
        check_bool "replay applied records" true (r.Nvcache.rec_replayed > 0);
        check_int "nothing dropped" 0 r.Nvcache.rec_dropped);
      let h = Nvcache.handle st in
      let n0, buf0 = read_file h "/a" 9_000 in
      check_int "a length" 9_000 n0;
      Testkit.check_bytes "a content" payload0 buf0;
      let n1, buf1 = read_file h "/b" 14_000 in
      check_int "b length" 14_000 n1;
      Testkit.check_bytes "b content" payload1 buf1;
      Nvcache.unmount st)

(* --- replay is idempotent: a second recover finds an empty cache --- *)

let test_replay_idempotent () =
  let snap =
    Testkit.run_sim (fun engine ->
        let device, st = make_stack ~design:Nvcache.Logging engine in
        let h = Nvcache.handle st in
        write_file h "/a" (Testkit.pattern_bytes ~seed:35 8_000);
        Device.snapshot device)
  in
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let r1 = Nvcache.recover device () in
      check_bool "first replay applies" true (r1.Nvcache.rec_replayed > 0);
      let r2 = Nvcache.recover device () in
      check_int "second replay finds empty cache" 0 r2.Nvcache.rec_replayed;
      check_int "second replay drops nothing" 0 r2.Nvcache.rec_dropped)

(* --- clean unmount leaves an empty cache --- *)

let test_clean_unmount_empty_cache () =
  let payload = Testkit.pattern_bytes ~seed:36 12_000 in
  let snap =
    Testkit.run_sim (fun engine ->
        let device, st = make_stack ~design:Nvcache.Paging engine in
        let h = Nvcache.handle st in
        write_file h "/k" payload;
        Nvcache.unmount st;
        Device.snapshot device)
  in
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let st =
        Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true ~cache_pages:64
          ()
      in
      (match Nvcache.last_recovery st with
      | None -> Alcotest.fail "mount did not run replay"
      | Some r -> check_int "nothing to replay" 0 r.Nvcache.rec_replayed);
      let h = Nvcache.handle st in
      let n, buf = read_file h "/k" 12_000 in
      check_int "length" 12_000 n;
      Testkit.check_bytes "content from backend" payload buf;
      Nvcache.unmount st)

(* --- ring wrap + backpressure (logging, tiny ring, inline destage) --- *)

let test_ring_wrap_and_stalls () =
  Testkit.run_sim (fun engine ->
      (* 6 cache blocks: small enough that 120 KB of sync writes drives the
         ring past half occupancy (fresh blocks then take the write-around
         path) and in-place overwrites — whose blocks still have pending
         records and so MUST absorb — fill it completely and wait for
         destage. *)
      let _d, st =
        make_stack ~design:Nvcache.Logging ~cache_bytes:(6 * 4096) engine
      in
      let h = Nvcache.handle st in
      let cache = Nvcache.cache st in
      check_bool "tiny capacity" true (Nvcache.capacity_bytes cache < 6 * 4096);
      let payloads =
        List.init 5 (fun i -> (i, Testkit.pattern_bytes ~seed:(40 + i) 12_000))
      in
      List.iter
        (fun (i, p) -> write_file h (Printf.sprintf "/w%d" i) p)
        payloads;
      check_bool "write-around engaged past half occupancy" true
        (Nvcache.bypassed_writes cache > 0);
      (* In-place overwrites: same blocks, pending versions in the ring. *)
      let payloads2 =
        List.map
          (fun (i, _) -> (i, Testkit.pattern_bytes ~seed:(80 + i) 12_000))
          payloads
      in
      List.iter
        (fun (i, p) -> write_file h (Printf.sprintf "/w%d" i) p)
        payloads2;
      check_bool "append waited for space" true (Nvcache.stalls cache > 0);
      check_bool "appends absorbed" true (Nvcache.appends cache > 0);
      List.iter
        (fun (i, p) ->
          let n, buf = read_file h (Printf.sprintf "/w%d" i) 12_000 in
          check_int "length" 12_000 n;
          Testkit.check_bytes (Printf.sprintf "w%d content" i) p buf)
        payloads2;
      Nvcache.unmount st)

(* --- paging: repeated overwrite, newest version wins at replay --- *)

let test_paging_overwrite_replay () =
  let final = Testkit.pattern_bytes ~seed:59 4_096 in
  let snap =
    Testkit.run_sim (fun engine ->
        let device, st = make_stack ~design:Nvcache.Paging engine in
        let h = Nvcache.handle st in
        (* Several fsync'd versions of the same block: each takes a fresh
           slot, so the committed version is never overwritten in place. *)
        for v = 0 to 4 do
          write_file h "/v" (Testkit.pattern_bytes ~seed:(55 + v) 4_096)
        done;
        Device.snapshot device)
  in
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats Testkit.small_config snap in
      let st =
        Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true ~cache_pages:64
          ()
      in
      let h = Nvcache.handle st in
      let n, buf = read_file h "/v" 4_096 in
      check_int "length" 4_096 n;
      Testkit.check_bytes "newest version after replay" final buf;
      Nvcache.unmount st)

(* --- destage daemon drains in the background --- *)

let test_destage_daemon () =
  Testkit.run_sim (fun engine ->
      let _d, st = make_stack ~design:Nvcache.Logging ~daemons:true engine in
      let h = Nvcache.handle st in
      let cache = Nvcache.cache st in
      let payload = Testkit.pattern_bytes ~seed:61 16_000 in
      write_file h "/d" payload;
      (* Give the daemon virtual time to drain the backlog. *)
      let deadline = 10_000 in
      let rec wait n =
        if Nvcache.backlog cache > 0 && n < deadline then begin
          Hinfs_sim.Proc.delay 100_000L;
          wait (n + 1)
        end
      in
      wait 0;
      check_int "daemon drained the backlog" 0 (Nvcache.backlog cache);
      let n, buf = read_file h "/d" 16_000 in
      check_int "length" 16_000 n;
      Testkit.check_bytes "content" payload buf;
      (* Unmount stops the daemon so the engine can drain. *)
      Nvcache.unmount st)

(* --- obs phases: append/destage/replay spans are recorded --- *)

let test_obs_phases () =
  let engine = Engine.create () in
  let obs = Obs.create engine in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall @@ fun () ->
  let snap = ref Bytes.empty in
  Engine.spawn engine ~name:"nvcache-obs" (fun () ->
      let device, st = make_stack ~design:Nvcache.Logging engine in
      let h = Nvcache.handle st in
      write_file h "/o" (Testkit.pattern_bytes ~seed:71 8_000);
      snap := Device.snapshot device;
      Nvcache.unmount st);
  Engine.run engine;
  let engine2 = Engine.create () in
  Engine.spawn engine2 ~name:"nvcache-obs-replay" (fun () ->
      let stats = Stats.create () in
      let device =
        Device.of_snapshot engine2 stats Testkit.small_config !snap
      in
      ignore (Nvcache.recover device ()));
  Engine.run engine2;
  let count kind = (Obs.hist obs kind).Hinfs_obs.Hist.count in
  check_bool "nvcache.append spans" true (count Obs.Nvcache_append > 0);
  check_bool "nvcache.destage spans" true (count Obs.Nvcache_destage > 0);
  check_bool "nvcache.replay spans" true (count Obs.Nvcache_replay > 0);
  check_int "balanced spans" 0 (Obs.open_spans obs)

let () =
  Alcotest.run "nvcache"
    [
      ( "absorb",
        [
          Alcotest.test_case "nvlog absorbs + reads back" `Quick
            (test_absorbs_and_reads_back Nvcache.Logging);
          Alcotest.test_case "nvpage absorbs + reads back" `Quick
            (test_absorbs_and_reads_back Nvcache.Paging);
        ] );
      ( "destage",
        [
          Alcotest.test_case "nvlog destage drains" `Quick
            (test_destage_drains Nvcache.Logging);
          Alcotest.test_case "nvpage destage drains" `Quick
            (test_destage_drains Nvcache.Paging);
          Alcotest.test_case "daemon drains backlog" `Quick test_destage_daemon;
        ] );
      ( "replay",
        [
          Alcotest.test_case "nvlog crash replay" `Quick
            (test_crash_replay Nvcache.Logging);
          Alcotest.test_case "nvpage crash replay" `Quick
            (test_crash_replay Nvcache.Paging);
          Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent;
          Alcotest.test_case "clean unmount leaves cache empty" `Quick
            test_clean_unmount_empty_cache;
          Alcotest.test_case "paging overwrite newest wins" `Quick
            test_paging_overwrite_replay;
        ] );
      ( "pressure",
        [
          Alcotest.test_case "ring wrap + stalls" `Quick
            test_ring_wrap_and_stalls;
        ] );
      ( "obs",
        [
          Alcotest.test_case "append/destage/replay spans" `Quick
            test_obs_phases;
        ] );
    ]
