(* Chaos soak: deterministic fault schedules against per-shard fault
   domains.

   A 4-shard PMFS runs one seeded worker per shard (sync writes, verified
   reads over that shard's files). A chaos schedule (lib/harness/chaos.ml)
   fires at fixed virtual times: a transient-read storm across the whole
   device, then journal corruption plus a free-block poison burst on
   exactly one victim shard. The online repair daemon must detect the
   damage, quarantine the victim, re-replay/wipe its journal, scrub, and
   re-admit it — while the containment-and-liveness oracle holds:

   - containment: every healthy shard completes >= 80% of the ops it
     completes in an identically-seeded no-fault baseline cell;
   - no global flip: the mount-level domain never leaves Healthy (the
     whole-mount read-only ladder of the unsharded design must not fire);
   - bounded re-admission: the victim returns to Healthy within a bounded
     virtual time of the corruption, and serves read-write again;
   - reads never lie: any read that returns data must match the oracle —
     faults surface as EIO/EROFS or retries, never silent corruption;
   - crash legality: a crash image captured at a post-fault fence (repair
     writes go through the recorder-visible untimed path) must mount,
     pass fsck, and preserve every durable file not racing the fence.

   The chaos cell runs twice with the same seed and must reproduce bit
   for bit (ops per shard, re-admit time, final image digest).

   Wired into `dune runtest`; also runnable alone:
   dune build @chaos-soak      (SOAK_SEED=n to reseed) *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Pmfs = Hinfs_pmfs.Pmfs
module Health = Hinfs_pmfs.Health
module Layout = Hinfs_pmfs.Layout
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Scrub = Hinfs_fsck.Scrub
module Repair = Hinfs_fsck.Repair
module Chaos = Hinfs_harness.Chaos

let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 7777L

let shards = 4
let victim = 1
let files_per_shard = 4
let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

(* Virtual-time script (ns). The repair daemon patrols every 2 ms, so a
   10 ms re-admission bound is five patrol ticks of slack. *)
let window_ns = 30_000_000L
let storm_at = 4_000_000
let storm_len = 5_000_000
let corrupt_at = 12_000_000
let burst_gap = 1_000_000
let readmit_bound_ns = 10_000_000L
let capture_after = Int64.of_int (corrupt_at + 3_000_000)

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

(* Oracle: per shard, per file, the content of the last successful
   synchronous write. Reads that return data must match it — under
   storms, quarantine, and repair alike. *)
type cell_file = { name : string; ino : int; mutable content : Bytes.t }

type outcome = {
  o_ops : int array; (* successful ops per shard *)
  o_blocked : int; (* ops rejected EIO/EROFS *)
  o_retries : int; (* transient-read retries absorbed *)
  o_quarantines : int;
  o_readmits : int;
  o_readmit_lag : int64 option; (* corruption -> Healthy again, ns *)
  o_digest : string; (* final unmounted image *)
  o_crash_checked : bool;
}

let schedule =
  [
    { Chaos.after_ns = storm_at; action = Chaos.Transient_storm { rate = 0.02 } };
    { Chaos.after_ns = storm_len; action = Chaos.Storm_end };
    {
      Chaos.after_ns = corrupt_at - storm_at - storm_len;
      action = Chaos.Corrupt_journal { shard = victim; lines = 6 };
    };
    {
      Chaos.after_ns = burst_gap;
      action = Chaos.Poison_burst { shard = victim; lines = 4 };
    };
  ]

(* Mount a crash image: fsck-clean, and every durable file whose key is
   not racing the fence must be present with the right bytes. *)
let verify_crash_image engine ~oracle ~racing image =
  let stats = Stats.create () in
  let d = Device.of_snapshot engine stats config image in
  let fs = Pmfs.mount d () in
  let freport = Fsck.check_pmfs fs in
  if not (Fsck.ok freport) then
    fail "crash image fails fsck: %a" Fsck.pp_report freport;
  Array.iteri
    (fun s (dir, fls) ->
      Array.iteri
        (fun i (name, content) ->
          if not (List.mem (s, i) racing) then
            match Pmfs.lookup fs ~dir name with
            | None -> fail "crash image lost durable file s%d/%s" s name
            | Some ino ->
              let len = Bytes.length content in
              let buf = Bytes.create len in
              let n = Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
              if
                n <> len
                || Pmfs.inode_size fs ino <> len
                || not (Bytes.equal buf content)
              then fail "crash image torn durable file s%d/%s" s name)
        fls)
    oracle;
  Pmfs.unmount fs

(* One cell: the seeded workload, with or without the chaos schedule +
   repair daemon. Baseline (chaos=false) measures per-shard throughput
   with no fault model attached. *)
let run_cell ~chaos () =
  let engine = Engine.create () in
  let result = ref None in
  Engine.spawn engine ~name:"chaos-cell" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 ~shards () in
      (* Backoff > 0 so the retry path charges virtual time (satellite:
         retry/backoff visible under the storm). *)
      Pmfs.set_retry_policy fs
        { Fault.max_retries = 4; backoff_ns = 2_000; backoff_multiplier = 2 };
      if chaos then Device.set_fault_model d (Some (Fault.create ~seed ()));
      let health = Pmfs.health fs in
      let corrupted_at = ref None and readmitted_at = ref None in
      let global_flip = ref false in
      Health.set_listener health (fun domain _prev next ->
          match (domain, next) with
          | Health.Mount, s when s <> Health.Healthy -> global_flip := true
          | Health.Shard s, Health.Healthy when s = victim ->
            readmitted_at := Some (Engine.now engine)
          | _ -> ());
      (* One directory per shard (inode allocation is round-robin, but
         derive the owner rather than assume it). *)
      let dirs_by_shard = Array.make shards None in
      let made = ref 0 in
      let di = ref 0 in
      while !made < shards && !di < 8 * shards do
        let ino = Pmfs.mkdir fs ~dir:Layout.root_ino (Fmt.str "c%d" !di) in
        let s = Pmfs.shard_of_ino fs ino in
        if dirs_by_shard.(s) = None then begin
          dirs_by_shard.(s) <- Some ino;
          incr made
        end;
        incr di
      done;
      let dirs = Array.map (fun d -> Option.get d) dirs_by_shard in
      (* Pre-populate every shard with durable files. *)
      let files =
        Array.mapi
          (fun s dir ->
            Array.init files_per_shard (fun i ->
                let name = Fmt.str "f%d" i in
                let ino = Pmfs.create_file fs ~dir name in
                let data = Bytes.make 1024 (Char.chr (65 + s)) in
                ignore
                  (Pmfs.write fs ~ino ~off:0 ~src:data ~src_off:0 ~len:1024
                     ~sync:true);
                { name; ino; content = data }))
          dirs
      in
      let ops = Array.make shards 0 in
      let blocked = ref 0 in
      let in_flight = Array.make shards None in
      (* Crash capture: arm the recorder and take one crash state at the
         first pending-choice fence after the fault window opens — repair
         writes are recorder-visible, so the image is post-fault state. *)
      let captured = ref None in
      if chaos then begin
        Device.enable_recording d;
        Device.set_on_fence d (fun () ->
            if
              !captured = None
              && Int64.compare (Engine.now engine) capture_after >= 0
              && Device.pending_choice_lines d > 0
            then begin
              let osnap =
                Array.mapi
                  (fun s fls ->
                    ( dirs.(s),
                      Array.map
                        (fun f -> (f.name, Bytes.copy f.content))
                        fls ))
                  files
              in
              let racing =
                Array.to_list in_flight
                |> List.concat_map (function
                     | None -> []
                     | Some k -> [ k ])
              in
              captured :=
                Some
                  ( Device.capture_crash_state ~label:"chaos-fence" d,
                    osnap,
                    racing )
            end)
      end;
      let deadline = window_ns in
      let worker s =
        let rng = Rng.create ~seed:(Int64.add seed (Int64.of_int (s + 1))) in
        while Int64.compare (Engine.now engine) deadline < 0 do
          if Pmfs.read_only fs then global_flip := true;
          let i = Rng.int rng files_per_shard in
          let f = files.(s).(i) in
          (try
             match Rng.int rng 8 with
             | 0 | 1 | 2 ->
               let len = 512 + Rng.int rng 2048 in
               let data =
                 Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))
               in
               in_flight.(s) <- Some (s, i);
               Pmfs.truncate fs ~ino:f.ino ~size:0;
               ignore
                 (Pmfs.write fs ~ino:f.ino ~off:0 ~src:data ~src_off:0 ~len
                    ~sync:true);
               f.content <- data;
               ops.(s) <- ops.(s) + 1
             | 3 ->
               in_flight.(s) <- Some (s, i);
               Pmfs.fsync fs ~ino:f.ino;
               ops.(s) <- ops.(s) + 1
             | _ ->
               let len = Bytes.length f.content in
               let buf = Bytes.create len in
               let n = Pmfs.read fs ~ino:f.ino ~off:0 ~len ~into:buf ~into_off:0 in
               if n <> len || not (Bytes.equal buf f.content) then
                 fail "SILENT CORRUPTION: shard %d file %s read back wrong" s
                   f.name;
               ops.(s) <- ops.(s) + 1
           with Errno.Fs_error ((Errno.EIO | Errno.EROFS), _) -> incr blocked);
          in_flight.(s) <- None;
          Proc.delay_int (50_000 + Rng.int rng 40_000)
        done
      in
      for s = 0 to shards - 1 do
        Proc.spawn ~name:(Fmt.str "worker%d" s) (fun () -> worker s)
      done;
      let daemon = if chaos then Some (Repair.create fs) else None in
      (match daemon with Some dm -> Repair.start dm | None -> ());
      if chaos then
        Chaos.spawn fs
          ~on_step:(fun step ->
            match step.Chaos.action with
            | Chaos.Corrupt_journal _ ->
              corrupted_at := Some (Engine.now engine)
            | _ -> ())
          schedule;
      (* Let the window elapse, then a margin for the last patrol tick. *)
      Proc.delay_int (Int64.to_int window_ns + 5_000_000);
      (match daemon with Some dm -> Repair.stop dm | None -> ());
      if chaos then Device.disable_recording d;
      let readmit_lag =
        match (!corrupted_at, !readmitted_at) with
        | Some c, Some r -> Some (Int64.sub r c)
        | _ -> None
      in
      (* Liveness: the victim must serve read-write again, right now. *)
      if chaos then begin
        let f = files.(victim).(0) in
        let data = Bytes.make 777 'z' in
        (try
           ignore
             (Pmfs.write fs ~ino:f.ino ~off:0 ~src:data ~src_off:0 ~len:777
                ~sync:true);
           f.content <- Bytes.sub data 0 777
         with Errno.Fs_error _ ->
           fail "victim shard rejects writes after the repair window");
        Pmfs.truncate fs ~ino:f.ino ~size:777
      end;
      let freport = Fsck.check_pmfs fs in
      if not (Fsck.ok freport) then
        fail "live mount fails fsck after chaos: %a" Fsck.pp_report freport;
      (match !captured with
      | None -> ()
      | Some (state, osnap, racing) ->
        let counts =
          Array.of_list
            (List.map (fun (_, c) -> Array.length c) state.Device.cs_choices)
        in
        let crng = Rng.create ~seed:(Int64.add seed 99L) in
        let vec = Array.map (fun c -> Rng.int crng c) counts in
        let image = Device.materialize_crash_image state ~choice:vec in
        verify_crash_image engine ~oracle:osnap ~racing image);
      Pmfs.unmount fs;
      result :=
        Some
          {
            o_ops = ops;
            o_blocked = !blocked;
            o_retries = Stats.media_retries stats;
            o_quarantines = Health.quarantines health;
            o_readmits = Health.readmits health;
            o_readmit_lag = readmit_lag;
            o_digest = Digest.bytes (Device.snapshot d);
            o_crash_checked = !captured <> None;
          });
  Engine.run engine;
  Option.get !result

let () =
  let base = run_cell ~chaos:false () in
  let c1 = run_cell ~chaos:true () in
  let c2 = run_cell ~chaos:true () in
  Array.iteri
    (fun s n ->
      Fmt.pr "shard %d: %d ops baseline, %d ops under chaos%s@." s
        base.o_ops.(s) n
        (if s = victim then " (victim)" else ""))
    c1.o_ops;
  Fmt.pr
    "chaos: %d blocked, %d retries, %d quarantine(s), %d readmit(s), \
     readmit lag %a ns, crash image %s@."
    c1.o_blocked c1.o_retries c1.o_quarantines c1.o_readmits
    Fmt.(option ~none:(any "-") int64)
    c1.o_readmit_lag
    (if c1.o_crash_checked then "checked" else "NOT captured");
  (* Containment: healthy shards keep >= 80% of their no-fault pace. *)
  for s = 0 to shards - 1 do
    if s <> victim && c1.o_ops.(s) * 10 < base.o_ops.(s) * 8 then
      fail "containment broken: shard %d did %d ops under chaos vs %d baseline"
        s c1.o_ops.(s) base.o_ops.(s)
  done;
  (* The victim was quarantined, repaired, and re-admitted in bounded
     virtual time. *)
  if c1.o_quarantines < 1 then fail "victim was never quarantined";
  if c1.o_readmits < 1 then fail "victim was never re-admitted";
  (match c1.o_readmit_lag with
  | None -> fail "no corruption->readmit interval recorded"
  | Some lag ->
    if Int64.compare lag readmit_bound_ns > 0 then
      fail "re-admission took %Ld ns, bound is %Ld ns" lag readmit_bound_ns);
  if c1.o_retries = 0 then
    fail "transient storm fired no retries (vacuous storm)";
  if not c1.o_crash_checked then
    fail "no crash image captured in the fault window";
  if base.o_quarantines <> 0 || base.o_readmits <> 0 then
    fail "baseline cell saw health transitions without faults";
  (* Determinism: same seed, same schedule, same everything. *)
  if c1 <> c2 then fail "chaos cell is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "chaos-soak OK@."
  | fs ->
    List.iter (Fmt.epr "chaos-soak FAIL: %s@.") (List.rev fs);
    exit 1
