(* Tests for the observability subsystem (lib/obs): histogram accuracy,
   JSON round-trips, zero-overhead-when-disabled, determinism of the
   exported artifacts, span-stack balance across error paths, and the
   PMFS mmap ordering fix that rode along with the instrumentation. *)

module Engine = Hinfs_sim.Engine
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Obs = Hinfs_obs.Obs
module Hist = Hinfs_obs.Hist
module Ojson = Hinfs_obs.Ojson
module Profile = Hinfs_harness.Profile
module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench
module Postmark = Hinfs_workloads.Postmark
module Trace = Hinfs_trace.Trace
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Types = Hinfs_vfs.Types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- histogram --- *)

let test_hist_exact_small () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  check_int "count" 8 (Hist.count h);
  check_int "min" 1 (Hist.min_value h);
  check_int "max" 9 (Hist.max_value h);
  check_int "sum" 31 (Hist.sum h);
  (* Values below 32 land in exact unit buckets. *)
  check_int "p50 exact" 3 (Hist.quantile h 0.5);
  check_int "p100 exact" 9 (Hist.quantile h 1.0)

let test_hist_quantile_error_bound () =
  let h = Hist.create () in
  for v = 1 to 100_000 do
    Hist.record h v
  done;
  List.iter
    (fun q ->
      let exact = int_of_float (Float.round (q *. 100_000.)) in
      let approx = Hist.quantile h q in
      let err =
        Float.abs (float_of_int (approx - exact)) /. float_of_int exact
      in
      if err > 0.04 then
        Alcotest.failf "q=%g: approx %d vs exact %d (err %.3f)" q approx
          exact err)
    [ 0.5; 0.9; 0.99; 0.999 ];
  check_int "max is exact" 100_000 (Hist.max_value h);
  check_int "p100 clamps to max" 100_000 (Hist.quantile h 1.0)

let test_hist_negative_clamps () =
  let h = Hist.create () in
  Hist.record h (-5);
  check_int "count" 1 (Hist.count h);
  check_int "clamped to 0" 0 (Hist.max_value h)

let test_hist_summary () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.record h v
  done;
  let s = Hist.summarize h in
  check_int "count" 1000 s.Hist.count;
  check_int "min" 1 s.Hist.min;
  check_int "max" 1000 s.Hist.max;
  check_bool "mean" true (Float.abs (s.Hist.mean -. 500.5) < 0.001);
  check_bool "p50 <= p99 <= p999 <= max" true
    (s.Hist.p50 <= s.Hist.p99 && s.Hist.p99 <= s.Hist.p999
   && s.Hist.p999 <= s.Hist.max)

(* --- JSON --- *)

let sample_json =
  Ojson.Obj
    [
      ("s", Ojson.String "a \"quoted\"\n\tstring");
      ("i", Ojson.Int (-42));
      ("f", Ojson.Float 1.5);
      ("b", Ojson.Bool true);
      ("n", Ojson.Null);
      ("l", Ojson.List [ Ojson.Int 1; Ojson.Int 2; Ojson.Int 3 ]);
      ("o", Ojson.Obj [ ("nested", Ojson.String "x") ]);
    ]

let test_ojson_roundtrip () =
  let s = Ojson.to_string sample_json in
  let parsed = Ojson.of_string s in
  check_string "reserialization is stable" s (Ojson.to_string parsed);
  let pretty = Ojson.to_string_pretty sample_json in
  check_string "pretty parses back to the same compact form" s
    (Ojson.to_string (Ojson.of_string pretty))

let test_ojson_accessors () =
  (match Ojson.member "i" sample_json with
  | Some v -> check_bool "int" true (Ojson.to_int v = Some (-42))
  | None -> Alcotest.fail "missing i");
  (match Ojson.member "f" sample_json with
  | Some v -> check_bool "float" true (Ojson.to_float v = Some 1.5)
  | None -> Alcotest.fail "missing f");
  (match Ojson.member "l" sample_json with
  | Some v ->
    check_bool "list" true
      (match Ojson.to_list v with Some l -> List.length l = 3 | None -> false)
  | None -> Alcotest.fail "missing l");
  check_bool "absent member" true (Ojson.member "zzz" sample_json = None)

let test_ojson_rejects_garbage () =
  let bad s =
    match Ojson.of_string s with
    | exception Ojson.Parse_error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" s
  in
  bad "";
  bad "{";
  bad "[1, 2,]";
  bad "{\"a\": 1} trailing";
  bad "nul"

let test_ojson_no_nan () =
  let s = Ojson.to_string (Ojson.Float Float.nan) in
  check_bool "NaN clamped to a parseable number" true
    (match Ojson.of_string s with Ojson.Float _ | Ojson.Int _ -> true | _ -> false)

(* --- zero cost when disabled --- *)

let test_disabled_is_allocation_free () =
  Obs.uninstall ();
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    Obs.span_begin Obs.Op_write;
    Obs.span_end Obs.Op_write;
    Obs.instant Obs.Ev_bbm_lazy ~a:i ~b:0;
    Obs.span_since Obs.Flush ~t0:0L;
    Obs.counter "gauge" i
  done;
  let w1 = Gc.minor_words () in
  (* Allow a constant for the measurement itself; any per-op allocation
     would show up as >= iters words. *)
  check_bool "no per-op allocation when disabled" true (w1 -. w0 < 256.0)

(* --- harness-level tests --- *)

let tiny_spec =
  {
    Experiment.default_spec with
    Experiment.nvmm_size = 48 * 1024 * 1024;
    Experiment.buffer_bytes = 2 * 1024 * 1024;
    Experiment.cache_pages = 512;
    Experiment.threads = 2;
    Experiment.duration_ns = 10_000_000L;
  }

let small_fb =
  {
    Filebench.default_params with
    Filebench.nfiles = 24;
    Filebench.mean_file_size = 16 * 1024;
    Filebench.io_size = 16 * 1024;
    Filebench.append_size = 4 * 1024;
  }

(* Installing the sink must not move a single virtual timestamp: the same
   seeded run with and without observability does the same ops in the same
   virtual time. *)
let test_obs_does_not_perturb_the_run () =
  let workload () = Filebench.fileserver ~params:small_fb () in
  let plain, _ =
    Experiment.run_workload ~spec:tiny_spec Fixtures.Hinfs_fs (workload ())
  in
  let observed, _, obs =
    Experiment.run_workload_obs ~spec:tiny_spec Fixtures.Hinfs_fs (workload ())
  in
  check_int "same op count" plain.Workload.ops observed.Workload.ops;
  check_bool "same virtual elapsed" true
    (Int64.equal plain.Workload.elapsed_ns observed.Workload.elapsed_ns);
  check_bool "sink saw the ops" true
    ((Obs.hist obs Obs.Op_write).Hist.count > 0)

let test_trace_export_deterministic () =
  let run () =
    let _r, _s, obs =
      Experiment.run_workload_obs ~spec:tiny_spec ~trace:true Fixtures.Hinfs_fs
        (Filebench.varmail ~params:small_fb ())
    in
    (Ojson.to_string_pretty (Obs.chrome_trace obs), Obs.nonempty_hists obs)
  in
  let trace1, hists1 = run () in
  let trace2, hists2 = run () in
  check_string "byte-identical trace JSON" trace1 trace2;
  check_bool "identical histogram summaries" true (hists1 = hists2);
  check_bool "trace is non-trivial" true (String.length trace1 > 1000)

let small_workloads () =
  [
    ("fileserver", Filebench.fileserver ~params:small_fb ());
    ("webserver", Filebench.webserver ~params:small_fb ());
    ("webproxy", Filebench.webproxy ~params:small_fb ());
    ("varmail", Filebench.varmail ~params:small_fb ());
  ]

let test_span_balance_after_workloads () =
  List.iter
    (fun kind ->
      List.iter
        (fun (wname, w) ->
          let _r, _s, obs =
            Experiment.run_workload_obs ~spec:tiny_spec kind w
          in
          check_int
            (Fmt.str "open spans after %s on %s" wname (Fixtures.name kind))
            0 (Obs.open_spans obs);
          check_int
            (Fmt.str "mismatches after %s on %s" wname (Fixtures.name kind))
            0 (Obs.mismatches obs))
        (small_workloads ()))
    [ Fixtures.Hinfs_fs; Fixtures.Pmfs_fs; Fixtures.Ext4_dax ]

let test_span_balance_after_job_and_trace () =
  let small_postmark =
    {
      Postmark.default_params with
      Postmark.nfiles = 40;
      Postmark.transactions = 120;
    }
  in
  let _r, _s, obs =
    Experiment.run_job_obs ~spec:tiny_spec Fixtures.Hinfs_fs
      (Postmark.make ~params:small_postmark ())
  in
  check_int "job: open spans" 0 (Obs.open_spans obs);
  check_int "job: mismatches" 0 (Obs.mismatches obs);
  let _r, _s, obs =
    Experiment.run_trace_obs ~spec:tiny_spec Fixtures.Pmfs_fs
      (Trace.usr0 ~ops:400 ())
  in
  check_int "trace: open spans" 0 (Obs.open_spans obs);
  check_int "trace: mismatches" 0 (Obs.mismatches obs)

let test_phases_and_gauges_populate () =
  let _r, _s, obs =
    Experiment.run_workload_obs ~spec:tiny_spec Fixtures.Pmfs_fs
      (Filebench.varmail ~params:small_fb ())
  in
  check_bool "dev.flush spans" true ((Obs.hist obs Obs.Flush).Hist.count > 0);
  check_bool "dev.fence spans" true ((Obs.hist obs Obs.Fence).Hist.count > 0);
  check_bool "journal.commit spans" true
    ((Obs.hist obs Obs.Journal_commit).Hist.count > 0);
  check_bool "sampler produced gauges" true (Obs.counter_summaries obs <> []);
  let _r, _s, obs =
    Experiment.run_workload_obs ~spec:tiny_spec Fixtures.Hinfs_fs
      (Filebench.fileserver ~params:small_fb ())
  in
  check_bool "writeback spans on hinfs" true
    ((Obs.hist obs Obs.Writeback).Hist.count > 0);
  check_bool "hinfs buffer gauge sampled" true
    (List.mem_assoc "buffer.used_blocks"
       (List.map (fun (n, s) -> (n, s)) (Obs.counter_summaries obs)))

let test_profile_json_has_required_keys () =
  let r, _s, obs =
    Experiment.run_workload_obs ~spec:tiny_spec Fixtures.Hinfs_fs
      (Filebench.fileserver ~params:small_fb ())
  in
  let json =
    Profile.experiment_json ~name:"fileserver" ~fs:"hinfs"
      ~ops:r.Workload.ops ~elapsed_ns:r.Workload.elapsed_ns obs
  in
  (* Round-trip through the serialized form, as a diff tool would. *)
  let parsed = Ojson.of_string (Ojson.to_string_pretty json) in
  let get path =
    List.fold_left
      (fun acc key ->
        match acc with None -> None | Some v -> Ojson.member key v)
      (Some parsed) path
  in
  check_bool "throughput > 0" true
    (match get [ "throughput_ops_per_sec" ] with
    | Some v -> (
      match Ojson.to_float v with Some f -> f > 0.0 | None -> false)
    | None -> false);
  List.iter
    (fun q ->
      match get [ "latency_ns"; "op.write"; q ] with
      | Some v ->
        check_bool (Fmt.str "op.write %s > 0" q) true
          (match Ojson.to_int v with Some n -> n > 0 | None -> false)
      | None -> Alcotest.failf "latency_ns.op.write.%s missing" q)
    [ "p50"; "p99"; "p999" ];
  check_bool "obs health block present" true
    (match get [ "obs"; "open_spans" ] with
    | Some v -> Ojson.to_int v = Some 0
    | None -> false)

(* --- the PMFS mmap satellite fix --- *)

(* Pmfs.mmap used to be a silent no-op; now it must order in-flight
   updates on the medium (a fence, like fsync) and emit a pin event. *)
let test_pmfs_mmap_orders_and_pins () =
  let engine = Engine.create () in
  let obs = Obs.create ~trace:true engine in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall @@ fun () ->
  let fences = ref (-1) in
  let pin_seen = ref false in
  Engine.spawn engine ~name:"mmap-test" (fun () ->
      let stats = Stats.create () in
      let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 } in
      let device = Hinfs_nvmm.Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount device ~journal_blocks:32 () in
      let h = Pmfs.handle fs in
      let fd = h.Hinfs_vfs.Vfs.open_ "/m" Types.creat in
      let payload = Bytes.make 4096 'x' in
      ignore (h.Hinfs_vfs.Vfs.write fd payload (Bytes.length payload));
      let before = Stats.total_mfences stats in
      h.Hinfs_vfs.Vfs.mmap fd;
      fences := Stats.total_mfences stats - before;
      h.Hinfs_vfs.Vfs.munmap fd;
      h.Hinfs_vfs.Vfs.close fd;
      h.Hinfs_vfs.Vfs.unmount ());
  Engine.run engine;
  check_bool "mmap issues at least one fence" true (!fences > 0);
  let trace = Ojson.to_string (Obs.chrome_trace obs) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  pin_seen := contains "mmap.pin" trace;
  check_bool "mmap.pin instant in the trace" true !pin_seen;
  check_bool "mmap.unpin instant in the trace" true
    (contains "mmap.unpin" trace);
  check_int "balanced spans" 0 (Obs.open_spans obs)

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "exact below 32" `Quick test_hist_exact_small;
          Alcotest.test_case "quantile error bound" `Quick
            test_hist_quantile_error_bound;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          Alcotest.test_case "summary" `Quick test_hist_summary;
        ] );
      ( "ojson",
        [
          Alcotest.test_case "roundtrip" `Quick test_ojson_roundtrip;
          Alcotest.test_case "accessors" `Quick test_ojson_accessors;
          Alcotest.test_case "rejects garbage" `Quick test_ojson_rejects_garbage;
          Alcotest.test_case "no NaN in output" `Quick test_ojson_no_nan;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_is_allocation_free;
          Alcotest.test_case "sink does not perturb the run" `Quick
            test_obs_does_not_perturb_the_run;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace export byte-identical" `Quick
            test_trace_export_deterministic;
        ] );
      ( "balance",
        [
          Alcotest.test_case "after rate workloads" `Quick
            test_span_balance_after_workloads;
          Alcotest.test_case "after job and trace" `Quick
            test_span_balance_after_job_and_trace;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "phases and gauges populate" `Quick
            test_phases_and_gauges_populate;
          Alcotest.test_case "profile json keys" `Quick
            test_profile_json_has_required_keys;
        ] );
      ( "pmfs-mmap",
        [
          Alcotest.test_case "orders and pins" `Quick
            test_pmfs_mmap_orders_and_pins;
        ] );
    ]
