(* CoW substrate unit tests: mkfs/mount/remount persistence, the
   snapshot/clone/rollback/delete lifecycle with refcount GC, whole-FS
   transactions held to the crash-image standard (a device image taken
   mid-transaction mounts to the pre-transaction state, bit for bit),
   abort paths proven net-zero under injected allocation and commit
   faults, newest-root-slot poison fallback with repair, the VFS
   [snap_ops] surface, and fsck vacuity (a corrupted refcount really is
   flagged). *)

module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Faultops = Hinfs_nvmm.Faultops
module Cowfs = Hinfs_pmfs.Cowfs
module Errno = Hinfs_vfs.Errno
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs
module Fsck = Hinfs_fsck.Fsck

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let root = Cowfs.root_ino

let wr fs ~ino data =
  ignore
    (Cowfs.write fs ~ino ~off:0 ~src:data ~src_off:0 ~len:(Bytes.length data)
       ~sync:true)

let rd fs ~ino len =
  let buf = Bytes.create len in
  let n = Cowfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
  Bytes.sub buf 0 n

let fsck_clean msg fs =
  let r = Fsck.check_cow fs in
  if not (Fsck.ok r) then Alcotest.failf "%s: %a" msg Fsck.pp_report r

(* --- basic persistence --- *)

let test_persistence () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let d = Cowfs.mkdir fs ~dir:root "d" in
      let a = Cowfs.create_file fs ~dir:d "a" in
      let pay = Testkit.pattern_bytes ~seed:1 5000 in
      wr fs ~ino:a pay;
      Testkit.check_bytes "read back" pay (rd fs ~ino:a 5000);
      fsck_clean "live mount" fs;
      Cowfs.unmount fs;
      let fs = Cowfs.mount device () in
      let d = Option.get (Cowfs.lookup fs ~dir:root "d") in
      let a = Option.get (Cowfs.lookup fs ~dir:d "a") in
      Testkit.check_bytes "after remount" pay (rd fs ~ino:a 5000);
      fsck_clean "remount" fs;
      Cowfs.truncate fs ~ino:a ~size:100;
      Testkit.check_bytes "truncated tail" (Bytes.sub pay 0 100) (rd fs ~ino:a 5000);
      Cowfs.rename fs ~src_dir:d ~src:"a" ~dst_dir:root ~dst:"a2";
      check_bool "rename moved" true (Cowfs.lookup fs ~dir:root "a2" <> None);
      Cowfs.unlink fs ~dir:root "a2";
      Cowfs.rmdir fs ~dir:root "d";
      check_int "namespace empty" 0 (List.length (Cowfs.readdir fs ~dir:root));
      fsck_clean "after teardown" fs)

let test_mount_blank_device () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      match Cowfs.mount device () with
      | _ -> Alcotest.fail "mount on a blank device must fail"
      | exception Errno.Fs_error (Errno.EINVAL, _) -> ())

(* --- snapshot lifecycle --- *)

let test_snapshot_lifecycle () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      let v1 = Testkit.pattern_bytes ~seed:2 3000 in
      wr fs ~ino:a v1;
      let base_used = Cowfs.used_blocks fs in
      let s1 = Cowfs.snapshot fs in
      (* Diverge the working tree from the pinned snapshot. *)
      let v2 = Testkit.pattern_bytes ~seed:3 6000 in
      wr fs ~ino:a v2;
      ignore (Cowfs.create_file fs ~dir:root "b");
      fsck_clean "diverged" fs;
      check_bool "snapshot listed" true (List.mem_assoc s1 (Cowfs.snapshots fs));
      let s2 = Cowfs.clone fs ~snap_id:s1 in
      check_int "two snapshots live" 2 (List.length (Cowfs.snapshots fs));
      Cowfs.rollback fs ~snap_id:s1;
      let a = Option.get (Cowfs.lookup fs ~dir:root "a") in
      Testkit.check_bytes "rollback restored v1" v1 (rd fs ~ino:a 6000);
      check_bool "post-snapshot file gone" true
        (Cowfs.lookup fs ~dir:root "b" = None);
      fsck_clean "after rollback" fs;
      Cowfs.snapshot_delete fs ~snap_id:s1;
      Cowfs.snapshot_delete fs ~snap_id:s2;
      check_int "no snapshots left" 0 (List.length (Cowfs.snapshots fs));
      fsck_clean "after snapshot gc" fs;
      (* GC handed every divergence block back: same footprint as before
         the snapshot was taken. *)
      check_int "blocks reclaimed" base_used (Cowfs.used_blocks fs))

let test_snapshot_inside_txn_rejected () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      Cowfs.txn_begin fs;
      (match Cowfs.snapshot fs with
      | _ -> Alcotest.fail "snapshot inside a transaction must fail"
      | exception Errno.Fs_error (Errno.EINVAL, _) -> ());
      Cowfs.txn_abort fs;
      fsck_clean "after rejected snapshot" fs)

(* --- whole-FS transactions --- *)

(* The atomicity claim held to the crash-image standard: a raw device
   image captured mid-transaction mounts to exactly the pre-transaction
   committed state, and one captured after commit mounts to exactly the
   post-transaction state. *)
let test_txn_crash_image_atomicity () =
  let image_mid, image_post, digest_pre, digest_post =
    Testkit.run_sim (fun engine ->
        let device = Testkit.make_device engine in
        let fs = Cowfs.mkfs_and_mount device () in
        let a = Cowfs.create_file fs ~dir:root "a" in
        wr fs ~ino:a (Testkit.pattern_bytes ~seed:4 2000);
        let digest_pre = Cowfs.state_digest fs in
        Cowfs.txn_begin fs;
        let b = Cowfs.create_file fs ~dir:root "b" in
        wr fs ~ino:b (Testkit.pattern_bytes ~seed:5 4000);
        Cowfs.unlink fs ~dir:root "a";
        let image_mid = Device.snapshot device in
        Cowfs.txn_commit fs;
        let digest_post = Cowfs.state_digest fs in
        (image_mid, Device.snapshot device, digest_pre, digest_post))
  in
  Testkit.run_sim (fun engine ->
      let d =
        Device.of_snapshot engine (Stats.create ()) Testkit.small_config
          image_mid
      in
      let fs = Cowfs.mount d () in
      Alcotest.(check string)
        "mid-txn image mounts to pre-txn state" digest_pre
        (Cowfs.state_digest fs);
      fsck_clean "mid-txn image" fs);
  Testkit.run_sim (fun engine ->
      let d =
        Device.of_snapshot engine (Stats.create ()) Testkit.small_config
          image_post
      in
      let fs = Cowfs.mount d () in
      Alcotest.(check string)
        "post-commit image mounts to post-txn state" digest_post
        (Cowfs.state_digest fs);
      check_bool "txn file present" true (Cowfs.lookup fs ~dir:root "b" <> None);
      check_bool "unlinked file gone" true (Cowfs.lookup fs ~dir:root "a" = None);
      fsck_clean "post-commit image" fs)

let test_txn_abort_net_zero () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:6 1500);
      let digest0 = Cowfs.state_digest fs in
      let free0 = Cowfs.free_data_blocks fs in
      Cowfs.txn_begin fs;
      let c = Cowfs.create_file fs ~dir:root "doomed" in
      wr fs ~ino:c (Testkit.pattern_bytes ~seed:7 3000);
      Cowfs.unlink fs ~dir:root "a";
      Cowfs.txn_abort fs;
      Alcotest.(check string) "state unchanged" digest0 (Cowfs.state_digest fs);
      check_int "blocks returned" free0 (Cowfs.free_data_blocks fs);
      check_bool "doomed file gone" true
        (Cowfs.lookup fs ~dir:root "doomed" = None);
      check_bool "unlink rolled back" true
        (Cowfs.lookup fs ~dir:root "a" <> None);
      fsck_clean "after abort" fs)

(* --- abort paths under injected faults --- *)

let test_enospc_abort_net_zero () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:8 4000);
      let digest0 = Cowfs.state_digest fs in
      let free0 = Cowfs.free_data_blocks fs in
      let fo = Faultops.create ~seed:11L () in
      Cowfs.attach_faultops fs (Some fo);
      Faultops.force fo Faultops.Block_alloc ~after:1;
      (match wr fs ~ino:a (Testkit.pattern_bytes ~seed:9 8000) with
      | () -> Alcotest.fail "write under forced allocation fault must ENOSPC"
      | exception Errno.Fs_error (Errno.ENOSPC, _) -> ());
      Cowfs.attach_faultops fs None;
      Alcotest.(check string) "failed write is net-zero" digest0
        (Cowfs.state_digest fs);
      check_int "no blocks lost" free0 (Cowfs.free_data_blocks fs);
      fsck_clean "after enospc abort" fs;
      (* The same write goes through once the fault is gone. *)
      let v2 = Testkit.pattern_bytes ~seed:9 8000 in
      wr fs ~ino:a v2;
      Testkit.check_bytes "retry succeeded" v2 (rd fs ~ino:a 8000))

let test_commit_fault_abort_net_zero () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:10 2000);
      let digest0 = Cowfs.state_digest fs in
      let commits0 = Cowfs.commits fs in
      (* One-shot fault at the head of the commit path, before any fence
         or root swap: the whole operation must unwind to nothing. *)
      let armed = ref true in
      Cowfs.set_commit_fault fs
        (Some (fun () -> if !armed then (armed := false; true) else false));
      (match wr fs ~ino:a (Testkit.pattern_bytes ~seed:11 2500) with
      | () -> Alcotest.fail "write under commit fault must EIO"
      | exception Errno.Fs_error (Errno.EIO, _) -> ());
      Cowfs.set_commit_fault fs None;
      Alcotest.(check string) "aborted commit is net-zero" digest0
        (Cowfs.state_digest fs);
      check_int "no commit counted" commits0 (Cowfs.commits fs);
      check_int "window fully retired" 0 (Cowfs.shadow_count fs);
      fsck_clean "after commit-fault abort" fs;
      let v2 = Testkit.pattern_bytes ~seed:11 2500 in
      wr fs ~ino:a v2;
      Testkit.check_bytes "retry succeeded" v2 (rd fs ~ino:a 2500))

(* --- root-slot poison fallback --- *)

let test_root_slot_poison_fallback () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:12 1000);
      let digest_prev = Cowfs.state_digest fs in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:13 2000);
      let seq = Cowfs.committed_seq fs in
      Cowfs.unmount fs;
      (* Strike the newest root slot (slot [seq land 1], one cacheline at
         the head of the device): mount must fall back to the previous
         committed root and repair the struck slot in place. *)
      let fault = Fault.create ~seed:17L () in
      Device.set_fault_model device (Some fault);
      let newest_line = Int64.to_int seq land 1 in
      Fault.poison_line fault newest_line;
      let fs = Cowfs.mount device () in
      Alcotest.(check int64)
        "fell back to the previous committed root" (Int64.pred seq)
        (Cowfs.committed_seq fs);
      Alcotest.(check string) "previous state restored, bit for bit"
        digest_prev (Cowfs.state_digest fs);
      check_bool "struck slot repaired on load" false
        (Fault.is_poisoned fault newest_line);
      fsck_clean "after fallback" fs)

(* --- fsck vacuity --- *)

(* check_cow must actually be able to fail: overstate one persistent
   refcount behind fsck's back and require a violation. *)
let test_fsck_flags_refcount_corruption () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let a = Cowfs.create_file fs ~dir:root "a" in
      wr fs ~ino:a (Testkit.pattern_bytes ~seed:14 2000);
      fsck_clean "before corruption" fs;
      let bs = Cowfs.block_size fs in
      let epp = bs / 2 in
      let victim = ref 0 in
      (let b = ref 1 in
       while !victim = 0 && !b < Cowfs.total_blocks fs do
         if Cowfs.refcount fs !b = 1 then victim := !b;
         incr b
       done);
      check_bool "found a live block" true (!victim > 0);
      let pg =
        Int64.to_int
          (Device.get_u64 device
             ((Cowfs.refcount_root fs * bs) + (8 * (!victim / epp))))
      in
      let entry = Bytes.create 2 in
      Bytes.set_uint16_le entry 0 3;
      Device.poke_flushed device
        ~addr:((pg * bs) + (2 * (!victim mod epp)))
        ~src:entry ~off:0 ~len:2;
      let r = Fsck.check_cow fs in
      check_bool "fsck flags the overstated refcount" false (Fsck.ok r))

(* --- VFS snap_ops surface --- *)

let test_handle_snap_ops () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      let h = Cowfs.handle fs in
      let ops =
        match h.Vfs.snap_ops with
        | Some ops -> ops
        | None -> Alcotest.fail "cowfs handle must expose snap_ops"
      in
      let data = Testkit.pattern_bytes ~seed:15 1200 in
      let fd = h.Vfs.open_ "/f" { Types.creat with Types.truncate = true } in
      ignore (h.Vfs.write fd data (Bytes.length data));
      h.Vfs.fsync fd;
      h.Vfs.close fd;
      let s = ops.Vfs.snapshot () in
      let fd = h.Vfs.open_ "/f" { Types.creat with Types.truncate = true } in
      ignore (h.Vfs.write fd (Bytes.make 10 'x') 10);
      h.Vfs.close fd;
      (* An aborted transaction takes its file with it. *)
      ops.Vfs.txn_begin ();
      let fd = h.Vfs.open_ "/g" { Types.creat with Types.truncate = true } in
      ignore (h.Vfs.write fd data (Bytes.length data));
      h.Vfs.close fd;
      ops.Vfs.txn_abort ();
      (match h.Vfs.open_ "/g" Types.rdonly with
      | _ -> Alcotest.fail "/g must vanish with the aborted transaction"
      | exception Errno.Fs_error (Errno.ENOENT, _) -> ());
      ops.Vfs.rollback s;
      let fd = h.Vfs.open_ "/f" Types.rdonly in
      let buf = Bytes.create (Bytes.length data) in
      let n = h.Vfs.pread fd ~off:0 buf (Bytes.length data) in
      h.Vfs.close fd;
      check_int "rollback restored length" (Bytes.length data) n;
      Testkit.check_bytes "rollback restored content" data buf;
      check_int "one snapshot live" 1 (List.length (ops.Vfs.snapshots ()));
      ops.Vfs.snapshot_delete s;
      check_int "snapshot deleted" 0 (List.length (ops.Vfs.snapshots ()));
      fsck_clean "after vfs snap_ops" fs)

let () =
  Alcotest.run "cow"
    [
      ( "basic",
        [
          Alcotest.test_case "persistence across remount" `Quick
            test_persistence;
          Alcotest.test_case "mount on blank device" `Quick
            test_mount_blank_device;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "lifecycle + refcount gc" `Quick
            test_snapshot_lifecycle;
          Alcotest.test_case "rejected inside txn" `Quick
            test_snapshot_inside_txn_rejected;
        ] );
      ( "txn",
        [
          Alcotest.test_case "crash-image atomicity" `Quick
            test_txn_crash_image_atomicity;
          Alcotest.test_case "abort net-zero" `Quick test_txn_abort_net_zero;
        ] );
      ( "faults",
        [
          Alcotest.test_case "enospc abort net-zero" `Quick
            test_enospc_abort_net_zero;
          Alcotest.test_case "commit fault abort net-zero" `Quick
            test_commit_fault_abort_net_zero;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "root slot poison fallback" `Quick
            test_root_slot_poison_fallback;
          Alcotest.test_case "fsck flags refcount corruption" `Quick
            test_fsck_flags_refcount_corruption;
        ] );
      ( "vfs",
        [ Alcotest.test_case "handle snap_ops" `Quick test_handle_snap_ops ] );
    ]
