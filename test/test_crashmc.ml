(* Tests for the persistence-event recorder, crash-image enumeration, and
   the crashmc/fsck stack: torn journal commits replayed from crash images,
   roll-back/roll-forward assertions, and the checker self-test (the
   missing-fence fixture must be flagged). Deterministic seeds only. *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Log = Hinfs_journal.Cacheline_log
module Bj = Hinfs_journal.Block_journal
module Blockdev = Hinfs_blockdev.Blockdev
module Crashmc = Hinfs_crashmc.Crashmc
module Scenarios = Hinfs_crashmc.Scenarios

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let cat = Stats.Other

(* Byte addresses on distinct cachelines, away from block 0. *)
let addr_a = 16 * 4096
let addr_b = (16 * 4096) + 64

let write8 d addr v =
  let b = Bytes.make 8 (Char.chr v) in
  Device.write_cached d ~cat ~addr ~src:b ~off:0 ~len:8

(* Enumerate choice vectors of a crash state: exhaustive when small,
   extremes + seeded samples otherwise. *)
let choice_vectors ?(cap = 64) ?(seed = 7L) (state : Device.crash_state) =
  let counts =
    Array.of_list
      (List.map (fun (_, c) -> Array.length c) state.Device.cs_choices)
  in
  let n = Array.length counts in
  let total =
    Array.fold_left (fun acc c -> if acc > cap then acc else acc * c) 1 counts
  in
  if total <= cap then begin
    let vec = Array.make n 0 in
    let acc = ref [] in
    let rec go i =
      if i = n then acc := Array.copy vec :: !acc
      else
        for c = 0 to counts.(i) - 1 do
          vec.(i) <- c;
          go (i + 1)
        done
    in
    go 0;
    !acc
  end
  else begin
    let rng = Rng.create ~seed in
    Array.make n 0
    :: Array.init n (fun i -> counts.(i) - 1)
    :: List.init 14 (fun _ ->
           Array.init n (fun i -> Rng.int rng counts.(i)))
  end

(* --- recorder semantics --- *)

let test_capture_basic () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      Device.enable_recording d;
      write8 d addr_a 0x11;
      write8 d addr_b 0x22;
      let state = Device.capture_crash_state d in
      check_int "two undecided lines" 2 (List.length state.Device.cs_choices);
      check_int "pending_choice_lines agrees" 2 (Device.pending_choice_lines d);
      List.iter
        (fun (_, cands) -> check_int "two candidates" 2 (Array.length cands))
        state.Device.cs_choices;
      (* All four images are distinct and each line is zeros-or-written. *)
      let images =
        List.map
          (fun vec ->
            Bytes.to_string (Device.materialize_crash_image state ~choice:vec))
          (choice_vectors state)
      in
      check_int "four images" 4 (List.length images);
      check_int "all distinct" 4
        (List.length (List.sort_uniq compare images));
      List.iter
        (fun img ->
          let a = img.[addr_a] and b = img.[addr_b] in
          check_bool "line a zeros or new" true
            (a = '\x00' || a = '\x11');
          check_bool "line b zeros or new" true
            (b = '\x00' || b = '\x22'))
        images)

let test_fence_collapses () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      Device.enable_recording d;
      write8 d addr_a 0x33;
      Device.clflush d ~cat ~addr:addr_a ~len:8;
      Device.mfence d ~cat;
      check_int "nothing undecided after flush+fence" 0
        (Device.pending_choice_lines d);
      let state = Device.capture_crash_state d in
      check_int "no choices" 0 (List.length state.Device.cs_choices);
      check_bool "medium has the data" true
        (Bytes.get state.Device.cs_image addr_a = '\x33'))

let test_unfenced_flush_undecided () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      Device.enable_recording d;
      write8 d addr_a 0x44;
      Device.clflush d ~cat ~addr:addr_a ~len:8;
      (* flushed but NOT fenced: old and new both legal *)
      let state = Device.capture_crash_state d in
      check_int "one undecided line" 1 (List.length state.Device.cs_choices);
      let _, cands = List.hd state.Device.cs_choices in
      check_int "old and new" 2 (Array.length cands);
      check_bool "candidate 0 is the old (guaranteed) content" true
        (Bytes.get cands.(0) 0 = '\x00');
      check_bool "candidate 1 is the flushed content" true
        (Bytes.get cands.(1) 0 = '\x44'))

let test_epoch_snapshot () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      Device.enable_recording d;
      write8 d addr_a 0x55;
      Device.mfence d ~cat;
      (* same line, next epoch, still never flushed *)
      write8 d addr_a 0x66;
      let state = Device.capture_crash_state d in
      check_int "one undecided line" 1 (List.length state.Device.cs_choices);
      let _, cands = List.hd state.Device.cs_choices in
      (* zeros (guaranteed), the epoch-0 value (evictable), the live value *)
      check_int "three candidates" 3 (Array.length cands);
      let heads = Array.map (fun c -> Bytes.get c 0) cands in
      check_bool "0x00/0x55/0x66" true
        (heads = [| '\x00'; '\x55'; '\x66' |]))

let test_nt_store_undecided_until_fence () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      Device.enable_recording d;
      let src = Bytes.make 64 '\x77' in
      Device.write_nt d ~cat ~addr:addr_a ~src ~off:0 ~len:64;
      let state = Device.capture_crash_state d in
      check_int "NT line undecided before fence" 1
        (List.length state.Device.cs_choices);
      Device.mfence d ~cat;
      check_int "guaranteed after fence" 0 (Device.pending_choice_lines d))

(* --- satellite: dirty_line_addrs + shared flush path --- *)

let test_dirty_line_addrs_and_flush_all () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      write8 d addr_b 0x99;
      write8 d addr_a 0x88;
      Alcotest.(check (list int))
        "sorted line addresses" [ addr_a; addr_b ] (Device.dirty_line_addrs d);
      Device.enable_recording d;
      (* enable_recording flushed everything through the clflush path *)
      check_int "clean after enable" 0 (Device.dirty_cachelines d);
      check_bool "persisted a" true
        (Bytes.get (Device.peek_persistent d ~addr:addr_a ~len:1) 0 = '\x88');
      write8 d addr_a 0xAA;
      Device.flush_all_untimed d;
      check_int "flush_all leaves nothing undecided" 0
        (Device.pending_choice_lines d);
      check_bool "flush_all persisted through the shared path" true
        (Bytes.get (Device.peek_persistent d ~addr:addr_a ~len:1) 0 = '\xAA'))

(* --- satellite: per-category clflush/mfence counters --- *)

let test_flush_counters () =
  Testkit.run_sim (fun engine ->
      let stats = Stats.create () in
      let d = Testkit.make_device ~stats engine in
      write8 d addr_a 0x10;
      Device.clflush d ~cat:Stats.Journal ~addr:addr_a ~len:8;
      (* clean line: issued but not dirty *)
      Device.clflush d ~cat:Stats.Journal ~addr:addr_a ~len:8;
      Device.mfence d ~cat:Stats.Journal;
      Device.mfence d ~cat:Stats.Other;
      check_int "clflush issued (journal)" 2
        (Stats.clflush_issued stats Stats.Journal);
      check_int "clflush dirty (journal)" 1
        (Stats.clflush_dirty stats Stats.Journal);
      check_int "mfences (journal)" 1 (Stats.mfences stats Stats.Journal);
      check_int "total mfences" 2 (Stats.total_mfences stats))

(* --- torn cacheline-log commits over crash images --- *)

let journal_first = 1
let journal_blocks = 8

let recover_image config image =
  let engine = Engine.create () in
  let d = Device.of_snapshot engine (Stats.create ()) config image in
  ignore (Log.recover d ~first_block:journal_first ~blocks:journal_blocks ());
  d

let test_torn_cacheline_log_commit () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let log = Log.create d ~first_block:journal_first ~blocks:journal_blocks in
      let old = Testkit.pattern_bytes ~seed:3 32 in
      let fresh = Testkit.pattern_bytes ~seed:4 32 in
      Device.poke d ~addr:addr_a ~src:old ~off:0 ~len:32;
      Device.enable_recording d;
      let txn = Log.begin_txn log in
      Log.log log txn ~addr:addr_a ~len:32;
      Device.write_cached d ~cat ~addr:addr_a ~src:fresh ~off:0 ~len:32;
      Device.clflush d ~cat ~addr:addr_a ~len:32;
      (* mid-commit: undo entries are fenced, target flush is not *)
      let mid = Device.capture_crash_state ~label:"mid" d in
      Log.commit log txn;
      let final = Device.capture_crash_state ~label:"final" d in
      let config = Device.config d in
      (* Every mid-commit image must roll back to the old contents. *)
      let n_mid = ref 0 in
      List.iter
        (fun vec ->
          incr n_mid;
          let img = Device.materialize_crash_image mid ~choice:vec in
          let d2 = recover_image config img in
          Testkit.check_bytes "uncommitted rolls back" old
            (Device.peek_persistent d2 ~addr:addr_a ~len:32))
        (choice_vectors mid);
      check_bool "mid-commit explored several images" true (!n_mid >= 2);
      (* Every post-commit image must keep the new contents (and recovery
         must find nothing to undo). *)
      List.iter
        (fun vec ->
          let img = Device.materialize_crash_image final ~choice:vec in
          let d2 = recover_image config img in
          Testkit.check_bytes "committed stays" fresh
            (Device.peek_persistent d2 ~addr:addr_a ~len:32);
          check_int "no stale entries" 0
            (Log.count_valid_entries d2 ~first_block:journal_first
               ~blocks:journal_blocks))
        (choice_vectors final))

(* --- torn block-journal commits over crash images --- *)

let test_torn_block_journal_commit () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let bj = Bj.create bdev ~first_block:journal_first ~blocks:journal_blocks in
      let home = 16 in
      let old = Testkit.pattern_bytes ~seed:5 4096 in
      let fresh = Testkit.pattern_bytes ~seed:6 4096 in
      Blockdev.poke_block bdev home ~src:old ~off:0;
      Device.enable_recording d;
      (* capture a crash state at every ordering point of the commit *)
      let states = ref [] in
      Device.set_on_fence d (fun () ->
          if Device.pending_choice_lines d > 0 then
            states := Device.capture_crash_state d :: !states);
      Bj.journal_metadata bj ~block:home ~content:(fun () -> fresh);
      Bj.commit bj;
      let final = Device.capture_crash_state ~label:"final" d in
      let config = Device.config d in
      let old_s = Bytes.to_string old and fresh_s = Bytes.to_string fresh in
      let checked = ref 0 in
      List.iter
        (fun state ->
          List.iter
            (fun vec ->
              incr checked;
              let img = Device.materialize_crash_image state ~choice:vec in
              let engine2 = Engine.create () in
              let d2 = Device.of_snapshot engine2 (Stats.create ()) config img in
              let bdev2 = Blockdev.create d2 in
              ignore
                (Bj.recover bdev2 ~first_block:journal_first
                   ~blocks:journal_blocks);
              let got = Bytes.to_string (Blockdev.peek_block bdev2 home) in
              check_bool "home block old or new, never torn" true
                (got = old_s || got = fresh_s))
            (choice_vectors state))
        (List.rev !states);
      check_bool "explored mid-commit images" true (!checked >= 10);
      (* the committed transaction rolls forward on the final image *)
      let img =
        Device.materialize_crash_image final
          ~choice:(Array.make (List.length final.Device.cs_choices) 0)
      in
      let engine2 = Engine.create () in
      let d2 = Device.of_snapshot engine2 (Stats.create ()) config img in
      let bdev2 = Blockdev.create d2 in
      ignore (Bj.recover bdev2 ~first_block:journal_first ~blocks:journal_blocks);
      Testkit.check_bytes "committed content after replay" fresh
        (Blockdev.peek_block bdev2 home))

(* --- checker self-test: fixtures --- *)

let quick_params =
  {
    Crashmc.seed = 11L;
    k_exhaustive = 8;
    samples_per_state = 12;
    max_images_per_state = 48;
    max_states = 12;
    recrash_states = 3;
    recrash_samples = 2;
    recrash_checks = 16;
  }

let test_missing_fence_flagged () =
  let r =
    Crashmc.run_scenario ~params:quick_params Scenarios.fixture_missing_fence
  in
  check_bool "missing-fence fixture flagged" true (r.Crashmc.sr_violations <> []);
  check_bool "images explored" true (r.Crashmc.sr_images > 1)

let test_correct_fence_clean () =
  let r =
    Crashmc.run_scenario ~params:quick_params Scenarios.fixture_correct_fence
  in
  Alcotest.(check (list (pair string string)))
    "correct protocol has no violations" [] r.Crashmc.sr_violations

let test_deterministic () =
  let a =
    Crashmc.run_scenario ~params:quick_params Scenarios.fixture_missing_fence
  in
  let b =
    Crashmc.run_scenario ~params:quick_params Scenarios.fixture_missing_fence
  in
  check_int "same states" a.Crashmc.sr_states b.Crashmc.sr_states;
  check_int "same images" a.Crashmc.sr_images b.Crashmc.sr_images;
  check_bool "same violations" true
    (a.Crashmc.sr_violations = b.Crashmc.sr_violations)

(* One real scenario end to end (the smoke binary runs the whole suite). *)
let test_pmfs_torn_txn_scenario () =
  let r = Crashmc.run_scenario ~params:quick_params Scenarios.pmfs_torn_txn in
  Alcotest.(check (list (pair string string)))
    "pmfs torn txn: recovery holds on every image" [] r.Crashmc.sr_violations;
  check_bool "explored images" true (r.Crashmc.sr_images >= 4)

let () =
  Alcotest.run "crashmc"
    [
      ( "recorder",
        [
          Alcotest.test_case "capture basic" `Quick test_capture_basic;
          Alcotest.test_case "fence collapses" `Quick test_fence_collapses;
          Alcotest.test_case "unfenced flush undecided" `Quick
            test_unfenced_flush_undecided;
          Alcotest.test_case "epoch snapshot" `Quick test_epoch_snapshot;
          Alcotest.test_case "nt store undecided until fence" `Quick
            test_nt_store_undecided_until_fence;
          Alcotest.test_case "dirty_line_addrs + flush_all path" `Quick
            test_dirty_line_addrs_and_flush_all;
          Alcotest.test_case "flush counters" `Quick test_flush_counters;
        ] );
      ( "torn-commits",
        [
          Alcotest.test_case "cacheline log" `Quick
            test_torn_cacheline_log_commit;
          Alcotest.test_case "block journal" `Quick
            test_torn_block_journal_commit;
        ] );
      ( "checker",
        [
          Alcotest.test_case "missing fence flagged" `Quick
            test_missing_fence_flagged;
          Alcotest.test_case "correct fence clean" `Quick
            test_correct_fence_clean;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "pmfs torn txn scenario" `Quick
            test_pmfs_torn_txn_scenario;
        ] );
    ]
