(* Tests for the core data structures, including qcheck property tests that
   compare each structure against a reference model. *)

module Bitmap = Hinfs_structures.Bitmap
module Dlist = Hinfs_structures.Dlist
module Btree = Hinfs_structures.Btree
module Radix = Hinfs_structures.Radix_tree
module Lru = Hinfs_structures.Lru
module IntMap = Map.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- bitmap --- *)

let test_bitmap_basic () =
  let b = Bitmap.create 100 in
  check_int "initially clear" 0 (Bitmap.count_set b);
  Bitmap.set b 0;
  Bitmap.set b 63;
  Bitmap.set b 99;
  check_int "set count" 3 (Bitmap.count_set b);
  check_bool "get 63" true (Bitmap.get b 63);
  check_bool "get 64" false (Bitmap.get b 64);
  Bitmap.set b 63;
  check_int "idempotent set" 3 (Bitmap.count_set b);
  Bitmap.clear b 63;
  check_int "clear" 2 (Bitmap.count_set b);
  Bitmap.clear b 63;
  check_int "idempotent clear" 2 (Bitmap.count_set b)

let test_bitmap_find () =
  let b = Bitmap.create 32 in
  for i = 0 to 15 do
    Bitmap.set b i
  done;
  Alcotest.(check (option int)) "first clear" (Some 16)
    (Bitmap.find_first_clear b);
  Alcotest.(check (option int)) "first set from 8" (Some 8)
    (Bitmap.find_first_set ~from:8 b);
  Bitmap.set b 20;
  Alcotest.(check (option int))
    "clear run of 4 skips bit 20" (Some 21)
    (Bitmap.find_clear_run ~from:16 b ~count:5);
  Alcotest.(check (option int)) "run too long" None
    (Bitmap.find_clear_run b ~count:20)

let test_bitmap_full_scan () =
  let b = Bitmap.create 17 in
  for i = 0 to 16 do
    Bitmap.set b i
  done;
  Alcotest.(check (option int)) "no clear bit" None (Bitmap.find_first_clear b)

let bitmap_model_prop =
  QCheck.Test.make ~name:"bitmap matches set model" ~count:300
    QCheck.(list (pair (int_bound 199) bool))
    (fun ops ->
      let b = Bitmap.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, set) ->
          if set then begin
            Bitmap.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitmap.clear b i;
            Hashtbl.remove model i
          end)
        ops;
      let ok = ref (Bitmap.count_set b = Hashtbl.length model) in
      for i = 0 to 199 do
        if Bitmap.get b i <> Hashtbl.mem model i then ok := false
      done;
      !ok)

(* --- dlist --- *)

let test_dlist_push_pop () =
  let l = Dlist.create () in
  let n1 = Dlist.make_node 1 and n2 = Dlist.make_node 2 and n3 = Dlist.make_node 3 in
  Dlist.push_back l n1;
  Dlist.push_back l n2;
  Dlist.push_front l n3;
  Alcotest.(check (list int)) "order" [ 3; 1; 2 ] (Dlist.to_list l);
  Alcotest.(check (option int)) "front" (Some 3) (Dlist.peek_front l);
  Alcotest.(check (option int)) "back" (Some 2) (Dlist.peek_back l);
  Dlist.move_to_back l n3;
  Alcotest.(check (list int)) "moved" [ 1; 2; 3 ] (Dlist.to_list l);
  Dlist.remove l n2;
  Alcotest.(check (list int)) "removed" [ 1; 3 ] (Dlist.to_list l);
  check_int "length" 2 (Dlist.length l);
  check_bool "unlinked" false (Dlist.is_linked n2)

let test_dlist_double_link_rejected () =
  let l = Dlist.create () in
  let n = Dlist.make_node 1 in
  Dlist.push_back l n;
  Alcotest.check_raises "relink rejected"
    (Invalid_argument "Dlist: node already linked") (fun () ->
      Dlist.push_back l n)

let test_dlist_iter_with_removal () =
  let l = Dlist.create () in
  let nodes = List.init 5 (fun i -> Dlist.make_node i) in
  List.iter (Dlist.push_back l) nodes;
  (* Remove even values during iteration. *)
  Dlist.iter_nodes l (fun n ->
      if Dlist.value n mod 2 = 0 then Dlist.remove l n);
  Alcotest.(check (list int)) "odds remain" [ 1; 3 ] (Dlist.to_list l)

(* --- btree --- *)

let btree_ops_gen =
  QCheck.(
    list
      (pair (int_bound 500)
         (oneofl [ `Insert; `Insert; `Insert; `Remove; `Find ])))

let validate_or_fail tree =
  match Btree.validate tree with
  | Ok () -> true
  | Error es ->
    QCheck.Test.fail_reportf "invariant violated: %s" (String.concat "; " es)

let btree_model_prop =
  QCheck.Test.make ~name:"btree matches Map model" ~count:300 btree_ops_gen
    (fun ops ->
      let tree = Btree.create ~degree:3 () in
      let model = ref IntMap.empty in
      List.iter
        (fun (k, op) ->
          match op with
          | `Insert ->
            Btree.insert tree k (k * 2);
            model := IntMap.add k (k * 2) !model
          | `Remove ->
            let removed = Btree.remove tree k in
            let expected = IntMap.mem k !model in
            if removed <> expected then
              QCheck.Test.fail_reportf "remove %d: got %b want %b" k removed
                expected;
            model := IntMap.remove k !model
          | `Find ->
            let got = Btree.find tree k in
            let expected = IntMap.find_opt k !model in
            if got <> expected then
              QCheck.Test.fail_reportf "find %d mismatch" k)
        ops;
      let listed = Btree.to_list tree in
      let expected = IntMap.bindings !model in
      if listed <> expected then
        QCheck.Test.fail_reportf "to_list mismatch: %d vs %d entries"
          (List.length listed) (List.length expected);
      validate_or_fail tree)

let btree_range_prop =
  QCheck.Test.make ~name:"btree iter_range" ~count:200
    QCheck.(triple (list (int_bound 300)) (int_bound 300) (int_bound 300))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let tree = Btree.create ~degree:4 () in
      List.iter (fun k -> Btree.insert tree k k) keys;
      let got = ref [] in
      Btree.iter_range tree ~lo ~hi (fun k _ -> got := k :: !got);
      let expected =
        List.sort_uniq compare keys |> List.filter (fun k -> k >= lo && k <= hi)
      in
      List.rev !got = expected)

let test_btree_sequential () =
  let tree = Btree.create ~degree:8 () in
  for i = 0 to 10_000 do
    Btree.insert tree i (i * 3)
  done;
  check_int "cardinal" 10_001 (Btree.cardinal tree);
  Alcotest.(check (option int)) "find" (Some 300) (Btree.find tree 100);
  Alcotest.(check (option (pair int int))) "min" (Some (0, 0))
    (Btree.min_binding tree);
  Alcotest.(check (option (pair int int)))
    "max"
    (Some (10_000, 30_000))
    (Btree.max_binding tree);
  (match Btree.validate tree with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  for i = 0 to 10_000 do
    check_bool "remove" true (Btree.remove tree i)
  done;
  check_bool "empty" true (Btree.is_empty tree)

let test_btree_upsert () =
  let tree = Btree.create ~degree:2 () in
  Btree.insert tree 5 "a";
  Btree.insert tree 5 "b";
  check_int "no duplicate" 1 (Btree.cardinal tree);
  Alcotest.(check (option string)) "updated" (Some "b") (Btree.find tree 5)

(* --- radix tree --- *)

let radix_model_prop =
  QCheck.Test.make ~name:"radix tree matches Map model" ~count:300
    QCheck.(
      list
        (pair (int_bound 100_000) (oneofl [ `Insert; `Insert; `Remove; `Find ])))
    (fun ops ->
      let tree = Radix.create () in
      let model = ref IntMap.empty in
      List.iter
        (fun (k, op) ->
          match op with
          | `Insert ->
            Radix.insert tree k (k + 1);
            model := IntMap.add k (k + 1) !model
          | `Remove ->
            let removed = Radix.remove tree k in
            if removed <> IntMap.mem k !model then
              QCheck.Test.fail_reportf "remove %d mismatch" k;
            model := IntMap.remove k !model
          | `Find ->
            if Radix.find tree k <> IntMap.find_opt k !model then
              QCheck.Test.fail_reportf "find %d mismatch" k)
        ops;
      Radix.cardinal tree = IntMap.cardinal !model
      && Radix.to_list tree = IntMap.bindings !model)

let test_radix_sparse () =
  let tree = Radix.create () in
  Radix.insert tree 0 "zero";
  Radix.insert tree 1_000_000 "million";
  Radix.insert tree 63 "sixtythree";
  check_int "cardinal" 3 (Radix.cardinal tree);
  Alcotest.(check (option string)) "find far key" (Some "million")
    (Radix.find tree 1_000_000);
  Alcotest.(check (option string)) "find 0" (Some "zero") (Radix.find tree 0);
  check_bool "remove" true (Radix.remove tree 0);
  check_bool "remove again" false (Radix.remove tree 0);
  check_int "cardinal after" 2 (Radix.cardinal tree)

let test_radix_clears_on_empty () =
  let tree = Radix.create () in
  Radix.insert tree 12345 1;
  check_bool "remove" true (Radix.remove tree 12345);
  check_bool "empty" true (Radix.is_empty tree);
  (* Insert near zero after shrink: height reset must not break lookups. *)
  Radix.insert tree 1 7;
  Alcotest.(check (option int)) "reinsert works" (Some 7) (Radix.find tree 1)

(* --- lru --- *)

let test_lru_basic () =
  let lru = Lru.create () in
  Lru.add lru "a" 1;
  Lru.add lru "b" 2;
  Lru.add lru "c" 3;
  Alcotest.(check (option (pair string int))) "lru is a" (Some ("a", 1))
    (Lru.peek_lru lru);
  check_bool "touch a" true (Lru.touch lru "a");
  Alcotest.(check (option (pair string int))) "lru now b" (Some ("b", 2))
    (Lru.peek_lru lru);
  ignore (Lru.pop_lru lru);
  check_int "length" 2 (Lru.length lru);
  check_bool "b gone" false (Lru.mem lru "b")

let test_lru_find_matching () =
  let lru = Lru.create () in
  for i = 1 to 5 do
    Lru.add lru i (i * 10)
  done;
  Alcotest.(check (option (pair int int)))
    "least-recent even" (Some (2, 20))
    (Lru.find_lru_matching lru (fun k _ -> k mod 2 = 0));
  Alcotest.(check (option (pair int int)))
    "no match" None
    (Lru.find_lru_matching lru (fun k _ -> k > 10))

let test_lru_replace () =
  let lru = Lru.create () in
  Lru.add lru "k" 1;
  Lru.add lru "x" 2;
  Lru.add lru "k" 3;
  check_int "no duplicates" 2 (Lru.length lru);
  Alcotest.(check (option int)) "updated" (Some 3) (Lru.find lru "k");
  Alcotest.(check (option (pair string int)))
    "k moved to MRU" (Some ("x", 2)) (Lru.peek_lru lru)

(* --- crc32c --- *)

module Crc32c = Hinfs_structures.Crc32c

(* RFC 3720 appendix B.4 reference vectors. *)
let crc32c_vectors =
  [
    ("empty", "", 0x0);
    ("check value", "123456789", 0xE3069283);
    ("32 zeros", String.make 32 '\000', 0x8A9136AA);
    ("32 ones", String.make 32 '\xff', 0x62A8AB43);
    ("ascending", String.init 32 Char.chr, 0x46DD794E);
    ("descending", String.init 32 (fun i -> Char.chr (31 - i)), 0x113FDB5C);
  ]

let test_crc32c_vectors () =
  List.iter
    (fun (name, input, expected) ->
      check_int name expected (Crc32c.digest_string input))
    crc32c_vectors

(* The same vectors embedded at unaligned offsets into a larger dirty
   buffer: digest ~off ~len must see exactly the slice. *)
let test_crc32c_unaligned () =
  List.iter
    (fun (name, input, expected) ->
      List.iter
        (fun off ->
          let len = String.length input in
          let buf = Bytes.make (off + len + 7) '\xa5' in
          Bytes.blit_string input 0 buf off len;
          check_int
            (Fmt.str "%s at offset %d" name off)
            expected
            (Crc32c.digest buf ~off ~len))
        [ 1; 3; 5 ])
    crc32c_vectors

let test_crc32c_streaming () =
  List.iter
    (fun (name, input, expected) ->
      let b = Bytes.of_string input in
      let n = Bytes.length b in
      let split = n / 3 in
      let crc = Crc32c.update 0 b ~off:0 ~len:split in
      let crc = Crc32c.update crc b ~off:split ~len:(n - split) in
      check_int (Fmt.str "%s split at %d" name split) expected crc;
      (* Zero-length updates must be identity at any offset. *)
      check_int
        (Fmt.str "%s + empty update" name)
        expected
        (Crc32c.update crc b ~off:0 ~len:0))
    crc32c_vectors

let () =
  Alcotest.run "structures"
    [
      ( "bitmap",
        [
          Alcotest.test_case "basic" `Quick test_bitmap_basic;
          Alcotest.test_case "find" `Quick test_bitmap_find;
          Alcotest.test_case "full scan" `Quick test_bitmap_full_scan;
        ]
        @ Testkit.qcheck_cases [ bitmap_model_prop ] );
      ( "dlist",
        [
          Alcotest.test_case "push/pop" `Quick test_dlist_push_pop;
          Alcotest.test_case "double link rejected" `Quick
            test_dlist_double_link_rejected;
          Alcotest.test_case "iter with removal" `Quick
            test_dlist_iter_with_removal;
        ] );
      ( "btree",
        [
          Alcotest.test_case "sequential" `Quick test_btree_sequential;
          Alcotest.test_case "upsert" `Quick test_btree_upsert;
        ]
        @ Testkit.qcheck_cases [ btree_model_prop; btree_range_prop ] );
      ( "radix",
        [
          Alcotest.test_case "sparse" `Quick test_radix_sparse;
          Alcotest.test_case "empty shrink" `Quick test_radix_clears_on_empty;
        ]
        @ Testkit.qcheck_cases [ radix_model_prop ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "find matching" `Quick test_lru_find_matching;
          Alcotest.test_case "replace" `Quick test_lru_replace;
        ] );
      ( "crc32c",
        [
          Alcotest.test_case "reference vectors" `Quick test_crc32c_vectors;
          Alcotest.test_case "unaligned offsets" `Quick test_crc32c_unaligned;
          Alcotest.test_case "streaming" `Quick test_crc32c_streaming;
        ] );
    ]
