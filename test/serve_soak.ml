(* Serve soak: crash-consistency for the serving layer's durability
   contract, on a 4-shard PMFS behind lib/server.

   A fleet of client fibers drives the server with an NFS-flavoured
   append discipline: each client appends fixed-size blocks to a private
   file (mixed stable/unstable), COMMITs periodically, reads back its own
   acked blocks and a zipf-less shared hot set, and churns a scratch path
   with remove/re-create. Mid-burst, a seeded fence captures a crash
   state through the persistence recorder.

   The oracle is exactly the protocol's promise: a block is DURABLE once
   its FILE_SYNC write was acknowledged, or once a later COMMIT on the
   file was acknowledged; nothing else is promised. Every materialised
   crash image must mount, pass fsck, and contain every block that was
   durable at capture time with the right bytes — unstable-acked blocks
   and in-flight requests are exempt. Two runs with the same seed must
   reproduce bit for bit.

   Wired into `dune runtest` via the serve-soak alias; also runnable
   directly: dune exec test/serve_soak.exe *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Condvar = Hinfs_sim.Condvar
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Pmfs = Hinfs_pmfs.Pmfs
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Wire = Hinfs_server.Wire
module Server = Hinfs_server.Server

let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 4242L

let shards = 4
let ndirs = 6
let nclients = 6
let nhot = 8
let rounds = 4
let ops_per_client = 24
let chunk = 1024
let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

let own_path ci = Fmt.str "/d%d/own%d" (ci mod ndirs) ci
let scratch_path ci = Fmt.str "/d%d/scr%d" (ci mod ndirs) ci
let hot_path j = Fmt.str "/d%d/hot%d" (j mod ndirs) j
let block_fill ci k = Char.chr (((ci * 31) + (k * 7)) mod 256)

(* Oracle: (client, block index) -> durability state, exactly mirroring
   what the server has acknowledged. *)
type blk = Acked_unstable | Durable

let copy_oracle o =
  let c = Hashtbl.create (Hashtbl.length o) in
  Hashtbl.iter (fun k v -> Hashtbl.replace c k v) o;
  c

(* Mount a crash image and check the durability contract. *)
let verify_image engine ~label oracle image =
  let stats = Stats.create () in
  let d = Device.of_snapshot engine stats config image in
  let fs = Pmfs.mount d () in
  let freport = Fsck.check_pmfs fs in
  if not (Fsck.ok freport) then
    fail "[%s] crash image fails fsck: %a" label Fsck.pp_report freport;
  let h = Pmfs.handle fs in
  let durable_blocks = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (ci, k) state ->
      match state with
      | Acked_unstable -> () (* nothing promised until COMMIT *)
      | Durable ->
        Hashtbl.replace durable_blocks ci
          (k :: Option.value ~default:[] (Hashtbl.find_opt durable_blocks ci)))
    oracle;
  Hashtbl.iter
    (fun ci ks ->
      let path = own_path ci in
      if not (h.Vfs.exists path) then
        fail "[%s] %s lost with %d durable block(s)" label path (List.length ks)
      else begin
        let fd = h.Vfs.open_ path Types.rdonly in
        let buf = Bytes.create chunk in
        List.iter
          (fun k ->
            let n = h.Vfs.pread fd ~off:(k * chunk) buf chunk in
            let want = Bytes.make chunk (block_fill ci k) in
            if n <> chunk || not (Bytes.equal buf want) then
              fail "[%s] COMMIT-acknowledged block %d of %s lost or torn" label
                k path)
          ks;
        h.Vfs.close fd
      end)
    durable_blocks;
  Hashtbl.length durable_blocks

type round_outcome = {
  r_ops : int;
  r_fence : int option;
  r_durable : int; (* durable blocks in the captured oracle *)
  r_digest : string;
}

let run_soak () =
  let engine = Engine.create () in
  let outcomes = ref [] in
  Engine.spawn engine ~name:"serve-soak" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 ~shards () in
      let h = Pmfs.handle fs in
      let srv = Server.create ~workers:4 ~cache_cap:8 engine h in
      Server.start srv;
      let rng = Rng.create ~seed in
      (* fixture namespace, pre-recording: dirs, hot set, private files *)
      for i = 0 to ndirs - 1 do
        h.Vfs.mkdir (Fmt.str "/d%d" i)
      done;
      let hot_block = Bytes.make chunk 'h' in
      for j = 0 to nhot - 1 do
        let fd = h.Vfs.open_ (hot_path j) Types.creat in
        ignore (h.Vfs.write fd hot_block chunk);
        h.Vfs.fsync fd;
        h.Vfs.close fd
      done;
      let oracle : (int * int, blk) Hashtbl.t = Hashtbl.create 256 in
      let next_block = Array.make nclients 0 in
      let sids = Array.make nclients 0 in
      let fhs = Array.make nclients 0L in
      for ci = 0 to nclients - 1 do
        sids.(ci) <- Server.establish srv;
        match Server.rpc srv ~sid:sids.(ci) (Wire.Create (own_path ci)) with
        | Wire.R_handle (fh, _) -> fhs.(ci) <- fh
        | _ -> fail "setup CREATE %s failed" (own_path ci)
      done;
      (* R_expired means the lease lapsed between rounds: reconnect (the
         handle survives) and retry. *)
      let rec rpc ci req attempts =
        match Server.rpc srv ~sid:sids.(ci) req with
        | Wire.R_expired when attempts > 0 ->
          sids.(ci) <- Server.establish srv;
          rpc ci req (attempts - 1)
        | reply -> reply
      in
      let total_ops = ref 0 in
      let client_burst ci crng =
        let scratch_live = ref false in
        for _ = 1 to ops_per_client do
          incr total_ops;
          let r = Rng.float crng in
          if r < 0.45 then begin
            (* append one block, stable every third write *)
            let k = next_block.(ci) in
            next_block.(ci) <- k + 1;
            let stable = k mod 3 = 0 in
            let data = String.make chunk (block_fill ci k) in
            match rpc ci (Wire.Write (fhs.(ci), k * chunk, data, stable)) 2 with
            | Wire.R_written (n, _) ->
              if n <> chunk then fail "short write ack on %s" (own_path ci);
              Hashtbl.replace oracle (ci, k)
                (if stable then Durable else Acked_unstable)
            | Wire.R_err e ->
              fail "WRITE %s: %s" (own_path ci) (Errno.to_string e)
            | _ -> fail "unexpected WRITE reply"
          end
          else if r < 0.6 then begin
            (* COMMIT: every previously acked unstable block is now durable *)
            match rpc ci (Wire.Commit fhs.(ci)) 2 with
            | Wire.R_ok _ ->
              Hashtbl.iter
                (fun (ci', k) state ->
                  if ci' = ci && state = Acked_unstable then
                    Hashtbl.replace oracle (ci', k) Durable)
                (copy_oracle oracle)
            | Wire.R_err e ->
              fail "COMMIT %s: %s" (own_path ci) (Errno.to_string e)
            | _ -> fail "unexpected COMMIT reply"
          end
          else if r < 0.75 then begin
            (* read back one of our acked blocks: read-your-writes *)
            let k = Rng.int crng (max 1 next_block.(ci)) in
            match Hashtbl.find_opt oracle (ci, k) with
            | None -> ()
            | Some _ -> (
              match rpc ci (Wire.Read (fhs.(ci), k * chunk, chunk)) 2 with
              | Wire.R_data got ->
                if got <> String.make chunk (block_fill ci k) then
                  fail "SILENT CORRUPTION: block %d of %s reads back wrong" k
                    (own_path ci)
              | Wire.R_err e ->
                fail "READ %s: %s" (own_path ci) (Errno.to_string e)
              | _ -> fail "unexpected READ reply")
          end
          else if r < 0.9 then begin
            (* shared hot-set read through the server *)
            let j = Rng.int crng nhot in
            match rpc ci (Wire.Lookup (hot_path j)) 2 with
            | Wire.R_handle (hfh, _) -> (
              match rpc ci (Wire.Read (hfh, 0, chunk)) 2 with
              | Wire.R_data got ->
                if got <> Bytes.to_string hot_block then
                  fail "SILENT CORRUPTION: hot file %d reads back wrong" j
              | _ -> fail "hot READ failed")
            | _ -> fail "hot LOOKUP failed"
          end
          else begin
            (* namespace churn on the private scratch path (oracle-exempt) *)
            if !scratch_live then
              ignore (rpc ci (Wire.Remove (scratch_path ci)) 2)
            else ignore (rpc ci (Wire.Create (scratch_path ci)) 2);
            scratch_live := not !scratch_live
          end;
          Proc.delay_int (Rng.int_in_range crng ~lo:200 ~hi:1500)
        done
      in
      for round = 1 to rounds do
        Device.enable_recording d;
        let target = Rng.int rng 300 in
        let fences = ref 0 in
        let captured = ref None in
        let osnap = ref None in
        Device.set_on_fence d (fun () ->
            if !fences <= target && Device.pending_choice_lines d > 0 then begin
              captured :=
                Some
                  (Device.capture_crash_state
                     ~label:(Fmt.str "serve-round-%d-fence-%d" round !fences)
                     d);
              osnap := Some (copy_oracle oracle, !fences)
            end;
            incr fences);
        let ops0 = !total_ops in
        let done_cv = Condvar.create engine in
        let remaining = ref nclients in
        for ci = 0 to nclients - 1 do
          let crng =
            Rng.create
              ~seed:
                (Int64.add seed
                   (Int64.of_int ((round * 1009) + (ci * 7919))))
          in
          Proc.spawn ~name:(Fmt.str "soak-client%d" ci) (fun () ->
              client_burst ci crng;
              decr remaining;
              if !remaining = 0 then ignore (Condvar.broadcast done_cv))
        done;
        if !remaining > 0 then Condvar.wait done_cv;
        Device.disable_recording d;
        let image, fence, oimg =
          match (!captured, !osnap) with
          | Some state, Some (oimg, fence) ->
            let vec =
              Array.of_list
                (List.map
                   (fun (_, c) -> Rng.int rng (Array.length c))
                   state.Device.cs_choices)
            in
            (Device.materialize_crash_image state ~choice:vec, Some fence, oimg)
          | _ -> (Device.snapshot d, None, copy_oracle oracle)
        in
        let durable =
          Hashtbl.fold (fun _ s n -> if s = Durable then n + 1 else n) oimg 0
        in
        let label = Fmt.str "round-%d" round in
        ignore (verify_image engine ~label oimg image);
        (* recovery must be idempotent: same image, same verdict *)
        ignore (verify_image engine ~label:(label ^ "-again") oimg image);
        outcomes :=
          {
            r_ops = !total_ops - ops0;
            r_fence = fence;
            r_durable = durable;
            r_digest = Digest.bytes image;
          }
          :: !outcomes
      done;
      Server.stop srv;
      (* non-vacuity: the soak must actually have crashed mid-burst with
         durable data at stake *)
      let captured_rounds =
        List.length (List.filter (fun r -> r.r_fence <> None) !outcomes)
      in
      if captured_rounds = 0 then
        fail "no round captured a mid-burst crash state (vacuous soak)";
      if not (List.exists (fun r -> r.r_durable > 0) !outcomes) then
        fail "no captured oracle held durable blocks (vacuous soak)";
      let freport = Fsck.check_pmfs fs in
      if not (Fsck.ok freport) then
        fail "live mount fails fsck: %a" Fsck.pp_report freport);
  Engine.run engine;
  List.rev !outcomes

let () =
  let o1 = run_soak () in
  List.iteri
    (fun i r ->
      let at =
        match r.r_fence with
        | Some f -> Fmt.str "fence %d" f
        | None -> "round end"
      in
      Fmt.pr "round %d: %d served ops, crash at %s, %d durable blocks checked@."
        (i + 1) r.r_ops at r.r_durable)
    o1;
  let o2 = run_soak () in
  if o1 <> o2 then fail "serve soak is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "serve-soak OK@."
  | fs ->
    List.iter (Fmt.epr "serve-soak FAIL: %s@.") (List.rev fs);
    exit 1
