(* Tests for the cacheline undo journal and the block journal, including
   crash-injection recovery properties. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Stats = Hinfs_stats.Stats
module Device = Hinfs_nvmm.Device
module Log = Hinfs_journal.Cacheline_log
module Bj = Hinfs_journal.Block_journal
module Blockdev = Hinfs_blockdev.Blockdev
module Rng = Hinfs_sim.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cat = Stats.Other

(* Journal occupies blocks [1, 9); metadata target area in block 16+. *)
let journal_first = 1
let journal_blocks = 8
let target_base = 16 * 4096

let make_log engine =
  let d = Testkit.make_device engine in
  let log = Log.create d ~first_block:journal_first ~blocks:journal_blocks in
  (d, log)

(* --- basic transaction flow --- *)

let test_commit_persists_updates () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let fresh = Testkit.pattern_bytes ~seed:1 32 in
      Log.with_txn log (fun txn ->
          Log.log log txn ~addr:target_base ~len:32;
          Device.write_cached d ~cat ~addr:target_base ~src:fresh ~off:0
            ~len:32);
      (* Commit must have flushed the in-place update. *)
      Device.crash d;
      let back = Device.peek d ~addr:target_base ~len:32 in
      Testkit.check_bytes "update persisted by commit" fresh back)

let test_entries_cleared_after_commit () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let initial_free = Log.free_slots log in
      Log.with_txn log (fun txn ->
          Log.log log txn ~addr:target_base ~len:100;
          Device.write_cached d ~cat ~addr:target_base
            ~src:(Bytes.make 100 'y') ~off:0 ~len:100);
      check_int "slots recycled" initial_free (Log.free_slots log);
      check_int "committed count" 1 (Log.txns_committed log))

let test_crash_before_commit_rolls_back () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let old = Testkit.pattern_bytes ~seed:2 64 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:64;
      (* Start a transaction, update in place, flush the update (worst
         case), but crash before commit. *)
      let txn = Log.begin_txn log in
      Log.log log txn ~addr:target_base ~len:64;
      Device.write_cached d ~cat ~addr:target_base ~src:(Bytes.make 64 'Z')
        ~off:0 ~len:64;
      Device.clflush d ~cat ~addr:target_base ~len:64;
      Device.crash d;
      let recovery =
        Log.recover d ~first_block:journal_first ~blocks:journal_blocks ()
      in
      check_int "one txn rolled back" 1 recovery.Log.rolled_back;
      check_int "nothing dropped" 0 recovery.Log.dropped;
      let back = Device.peek_persistent d ~addr:target_base ~len:64 in
      Testkit.check_bytes "old value restored" old back)

let test_crash_after_commit_preserves () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let old = Testkit.pattern_bytes ~seed:3 64 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:64;
      let fresh = Testkit.pattern_bytes ~seed:4 64 in
      Log.with_txn log (fun txn ->
          Log.log log txn ~addr:target_base ~len:64;
          Device.write_cached d ~cat ~addr:target_base ~src:fresh ~off:0
            ~len:64);
      Device.crash d;
      let recovery =
        Log.recover d ~first_block:journal_first ~blocks:journal_blocks ()
      in
      check_int "nothing rolled back" 0 recovery.Log.rolled_back;
      let back = Device.peek_persistent d ~addr:target_base ~len:64 in
      Testkit.check_bytes "committed value kept" fresh back)

let test_abort_restores () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let old = Testkit.pattern_bytes ~seed:5 128 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:128;
      let txn = Log.begin_txn log in
      Log.log log txn ~addr:target_base ~len:128;
      Device.write_cached d ~cat ~addr:target_base ~src:(Bytes.make 128 'q')
        ~off:0 ~len:128;
      Log.abort log txn;
      let back = Device.read_alloc d ~cat ~addr:target_base ~len:128 in
      Testkit.check_bytes "abort restored old value" old back;
      check_int "slots free again"
        (Log.capacity log) (Log.free_slots log))

(* The regression this guards: abort restores the old values and
   invalidates the transaction's entries, but without abort's trailing
   fence the invalidation could still be undecided at a crash. A later
   committed transaction re-modifying the same range would then share a
   crash image with the aborted transaction's still-valid data entries
   (and no commit entry), and recovery would "roll back" the committed
   value to the aborted transaction's stale undo payload. *)
let test_aborted_entries_not_replayed () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let a = Testkit.pattern_bytes ~seed:21 64 in
      Device.write_nt d ~cat ~addr:target_base ~src:a ~off:0 ~len:64;
      Device.flush_all_untimed d;
      Device.enable_recording d;
      (* txn1: update in place, flush the update, then abort. *)
      let txn1 = Log.begin_txn log in
      Log.log log txn1 ~addr:target_base ~len:64;
      Device.write_cached d ~cat ~addr:target_base ~src:(Bytes.make 64 'B')
        ~off:0 ~len:64;
      Device.clflush d ~cat ~addr:target_base ~len:64;
      Log.abort log txn1;
      (* Abort's trailing fence must leave both the restore and the entry
         invalidation decided on the medium — no crash image may differ. *)
      check_int "abort leaves no undecided lines" 0
        (Device.pending_choice_lines d);
      check_int "no valid entries on the medium after abort" 0
        (Log.count_valid_entries d ~first_block:journal_first
           ~blocks:journal_blocks);
      Device.disable_recording d;
      (* txn2: commit a fresh value over the same range. *)
      let c = Testkit.pattern_bytes ~seed:22 64 in
      Log.with_txn log (fun txn ->
          Log.log log txn ~addr:target_base ~len:64;
          Device.write_cached d ~cat ~addr:target_base ~src:c ~off:0 ~len:64);
      (* Crash and remount-style recovery on the image: the committed
         value survives; the aborted transaction is never replayed. *)
      let image = Device.snapshot d in
      let d2 =
        Device.of_snapshot engine (Stats.create ()) Testkit.small_config image
      in
      let recovery =
        Log.recover d2 ~first_block:journal_first ~blocks:journal_blocks ()
      in
      check_int "no txn rolled back" 0 recovery.Log.rolled_back;
      check_int "nothing dropped" 0 recovery.Log.dropped;
      let back = Device.peek_persistent d2 ~addr:target_base ~len:64 in
      Testkit.check_bytes "committed value survives, abort not replayed" c
        back)

let test_with_txn_aborts_on_exception () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let old = Testkit.pattern_bytes ~seed:6 40 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:40;
      (try
         Log.with_txn log (fun txn ->
             Log.log log txn ~addr:target_base ~len:40;
             Device.write_cached d ~cat ~addr:target_base
               ~src:(Bytes.make 40 'e') ~off:0 ~len:40;
             failwith "interrupted")
       with Failure _ -> ());
      let back = Device.read_alloc d ~cat ~addr:target_base ~len:40 in
      Testkit.check_bytes "exception rolled back" old back)

let test_journal_full () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      (* Tiny journal: 1 block = 64 slots. *)
      let log = Log.create d ~first_block:journal_first ~blocks:1 in
      let txn = Log.begin_txn log in
      let raised = ref false in
      (try
         for i = 0 to 100 do
           Log.log log txn ~addr:(target_base + (i * 64)) ~len:44
         done
       with Log.Journal_full -> raised := true);
      check_bool "journal full raised" true !raised)

let test_multi_entry_large_range () =
  Testkit.run_sim (fun engine ->
      let d, log = make_log engine in
      let old = Testkit.pattern_bytes ~seed:7 300 in
      Device.write_nt d ~cat ~addr:target_base ~src:old ~off:0 ~len:300;
      let txn = Log.begin_txn log in
      (* 300 bytes at 40 per entry = 8 entries. *)
      Log.log log txn ~addr:target_base ~len:300;
      check_int "entries written" 8 (Log.entries_written log);
      Device.write_cached d ~cat ~addr:target_base ~src:(Bytes.make 300 'R')
        ~off:0 ~len:300;
      Device.clflush d ~cat ~addr:target_base ~len:300;
      Device.crash d;
      ignore (Log.recover d ~first_block:journal_first ~blocks:journal_blocks ());
      let back = Device.peek_persistent d ~addr:target_base ~len:300 in
      Testkit.check_bytes "multi-entry rollback" old back)

(* Property: random interleaving of committed and crashed transactions
   always recovers to a state where committed values persist and
   uncommitted ones roll back. *)
let crash_recovery_prop =
  QCheck.Test.make ~name:"journal crash recovery" ~count:60
    QCheck.(pair small_nat (list (pair (int_bound 19) bool)))
    (fun (seed, txns) ->
      Testkit.run_sim (fun engine ->
          let d, log = make_log engine in
          let rng = Rng.create ~seed:(Int64.of_int (seed + 1)) in
          (* 20 slots of 64 bytes each; expected.(i) tracks what recovery
             must produce for slot i. Undo-log semantics require that a
             range is never re-logged while a transaction that logged it is
             still live — the FS guarantees this with per-inode locks — so
             once a slot has a hanging (crashed) transaction we stop
             touching it. *)
          let expected = Array.make 20 (Bytes.make 64 '\000') in
          let hanging = Array.make 20 false in
          List.iter
            (fun (slot, commit) ->
              if hanging.(slot) then ()
              else begin
              let addr = target_base + (slot * 64) in
              let fresh =
                Testkit.pattern_bytes ~seed:(Rng.int rng 1_000_000) 64
              in
              let txn = Log.begin_txn log in
              Log.log log txn ~addr ~len:64;
              Device.write_cached d ~cat ~addr ~src:fresh ~off:0 ~len:64;
              if commit then begin
                Log.commit log txn;
                expected.(slot) <- fresh
              end
              else begin
                (* Maybe flush the in-place update (worst case for
                   recovery), then leave the txn hanging. *)
                if Rng.bool rng then Device.clflush d ~cat ~addr ~len:64;
                hanging.(slot) <- true
              end
              end)
            txns;
          Device.crash d;
          ignore
            (Log.recover d ~first_block:journal_first ~blocks:journal_blocks ());
          let ok = ref true in
          Array.iteri
            (fun i want ->
              let got =
                Device.peek_persistent d ~addr:(target_base + (i * 64)) ~len:64
              in
              if not (Bytes.equal got want) then ok := false)
            expected;
          !ok))

(* --- block journal --- *)

let test_block_journal_commit_and_checkpoint () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let bj = Bj.create bdev ~first_block:32 ~blocks:16 in
      let image = Testkit.pattern_bytes ~seed:8 4096 in
      Bj.journal_metadata bj ~block:100 ~content:(fun () -> image);
      let data_flushed = ref false in
      Bj.add_ordered_data bj (fun () -> data_flushed := true);
      Bj.commit bj;
      check_bool "ordered data flushed" true !data_flushed;
      check_int "commits" 1 (Bj.commits bj);
      let home = Blockdev.peek_block bdev 100 in
      Testkit.check_bytes "checkpointed home" image home)

let test_block_journal_replay () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let image = Testkit.pattern_bytes ~seed:9 4096 in
      (* Hand-craft a committed-but-not-checkpointed journal. *)
      let descriptor = Bytes.make 4096 '\000' in
      Bytes.set_int32_le descriptor 0 0x4A424432l;
      Bytes.set_int32_le descriptor 4 7l;
      Bytes.set_int32_le descriptor 8 1l;
      Bytes.set_int32_le descriptor 12 200l;
      Bj.seal_block descriptor;
      Blockdev.poke_block bdev 32 ~src:descriptor ~off:0;
      Blockdev.poke_block bdev 33 ~src:image ~off:0;
      let commit = Bytes.make 4096 '\000' in
      Bytes.set_int32_le commit 0 0x434F4D54l;
      Bytes.set_int32_le commit 4 7l;
      Bj.seal_block commit;
      Blockdev.poke_block bdev 34 ~src:commit ~off:0;
      let replayed = Bj.recover bdev ~first_block:32 ~blocks:16 in
      check_bool "replayed" true replayed;
      Testkit.check_bytes "home updated" image (Blockdev.peek_block bdev 200);
      (* Second recovery is a no-op. *)
      check_bool "idempotent" false (Bj.recover bdev ~first_block:32 ~blocks:16))

let test_block_journal_discards_uncommitted () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let bdev = Blockdev.create d in
      let descriptor = Bytes.make 4096 '\000' in
      Bytes.set_int32_le descriptor 0 0x4A424432l;
      Bytes.set_int32_le descriptor 4 9l;
      Bytes.set_int32_le descriptor 8 1l;
      Bytes.set_int32_le descriptor 12 300l;
      Bj.seal_block descriptor;
      Blockdev.poke_block bdev 32 ~src:descriptor ~off:0;
      (* No commit block. *)
      let before = Blockdev.peek_block bdev 300 in
      let replayed = Bj.recover bdev ~first_block:32 ~blocks:16 in
      check_bool "not replayed" false replayed;
      Testkit.check_bytes "home untouched" before (Blockdev.peek_block bdev 300))

(* --- epoch record: heal and generation reset --- *)

module Epoch = Hinfs_journal.Epoch
module Fault = Hinfs_nvmm.Fault

let epoch_block = 12

(* A poisoned epoch-record line reads conservatively as "no epoch
   committed"; [Epoch.heal] re-persists the runtime watermark over the
   untimed reliable path, clearing the poison without losing the
   committed epoch. *)
let test_epoch_heal_poisoned_record () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let fm = Fault.create ~seed:5L () in
      Device.set_fault_model d (Some fm);
      let ep = Epoch.create d ~block:epoch_block in
      Epoch.commit ep 3;
      check_int "watermark persisted" 3
        (Epoch.read_committed d ~block:epoch_block);
      let cfg = Device.config d in
      let bs = cfg.Hinfs_nvmm.Config.block_size in
      let ls = cfg.Hinfs_nvmm.Config.cacheline_size in
      Fault.poison_line fm (epoch_block * bs / ls);
      check_int "poisoned record reads as no commit" 0
        (Epoch.read_committed d ~block:epoch_block);
      Epoch.heal ep;
      check_int "healed record restores watermark" 3
        (Epoch.read_committed d ~block:epoch_block);
      check_bool "poison cleared by heal" true
        (Device.verify_range d ~addr:(epoch_block * bs) ~len:64 = []);
      (* Healing is idempotent. *)
      Epoch.heal ep;
      check_int "second heal is a no-op" 3
        (Epoch.read_committed d ~block:epoch_block))

(* A crash in the middle of the mount-time generation reset must leave
   the record reading as either the old watermark or zero — the reset
   store is recorder-visible, so crash enumeration covers it, and the
   single-cacheline record can never read as garbage. *)
let test_epoch_reset_recrash () =
  Testkit.run_sim (fun engine ->
      let d = Testkit.make_device engine in
      let ep = Epoch.create d ~block:epoch_block in
      Epoch.commit ep 7;
      Device.enable_recording d;
      let captured = ref None in
      Device.set_on_fence d (fun () ->
          if !captured = None && Device.pending_choice_lines d > 0 then
            captured :=
              Some (Device.capture_crash_state ~label:"epoch-reset" d));
      Epoch.reset d ~block:epoch_block;
      Device.disable_recording d;
      check_int "reset applied on the live device" 0
        (Epoch.read_committed d ~block:epoch_block);
      match !captured with
      | None -> Alcotest.fail "reset fence captured no crash state"
      | Some state ->
        let counts =
          List.map (fun (_, c) -> Array.length c) state.Device.cs_choices
        in
        check_bool "reset store is a crash choice" true (counts <> []);
        (* Enumerate every materialisation of the single choice line. *)
        List.iteri
          (fun li n ->
            for c = 0 to n - 1 do
              let vec = Array.make (List.length counts) 0 in
              vec.(li) <- c;
              let image = Device.materialize_crash_image state ~choice:vec in
              let d2 =
                Device.of_snapshot engine (Stats.create ())
                  Testkit.small_config image
              in
              let got = Epoch.read_committed d2 ~block:epoch_block in
              check_bool
                (Printf.sprintf "mid-reset image reads old or zero (got %d)"
                   got)
                true
                (got = 0 || got = 7)
            done)
          counts)

let () =
  Alcotest.run "journal"
    [
      ( "cacheline-log",
        [
          Alcotest.test_case "commit persists" `Quick
            test_commit_persists_updates;
          Alcotest.test_case "entries cleared after commit" `Quick
            test_entries_cleared_after_commit;
          Alcotest.test_case "crash before commit rolls back" `Quick
            test_crash_before_commit_rolls_back;
          Alcotest.test_case "crash after commit preserves" `Quick
            test_crash_after_commit_preserves;
          Alcotest.test_case "abort restores" `Quick test_abort_restores;
          Alcotest.test_case "aborted entries never replayed" `Quick
            test_aborted_entries_not_replayed;
          Alcotest.test_case "with_txn aborts on exception" `Quick
            test_with_txn_aborts_on_exception;
          Alcotest.test_case "journal full" `Quick test_journal_full;
          Alcotest.test_case "multi-entry rollback" `Quick
            test_multi_entry_large_range;
        ]
        @ Testkit.qcheck_cases [ crash_recovery_prop ] );
      ( "block-journal",
        [
          Alcotest.test_case "commit and checkpoint" `Quick
            test_block_journal_commit_and_checkpoint;
          Alcotest.test_case "replay" `Quick test_block_journal_replay;
          Alcotest.test_case "discard uncommitted" `Quick
            test_block_journal_discards_uncommitted;
        ] );
      ( "epoch-record",
        [
          Alcotest.test_case "heal poisoned record" `Quick
            test_epoch_heal_poisoned_record;
          Alcotest.test_case "re-crash mid generation reset" `Quick
            test_epoch_reset_recrash;
        ] );
    ]
