(* Torture soak: the composition test for crash-during-recovery idempotence
   and failure-atomic operations. One seeded run composes every failure
   mode the robustness work covers, on a single oracle-checked op mix:

   - media faults (low-rate poison + transient) on the live device; an
     unrecoverable metadata fault may degrade the whole (unsharded) mount
     read-only mid-round — EROFS then counts as a failed op and a
     round-end online repair pass re-admits the mount;
   - operation-level mid-transaction faults (forced ENOSPC, out-of-inodes,
     journal exhaustion) through {!Hinfs_nvmm.Faultops};
   - a crash captured at a seeded fence *mid-round* via the persistence
     recorder, materialised with seeded choices for the undecided lines;
   - recovery of that crash image run under the recorder too, a second
     crash materialised at a seeded *recovery* fence, and a second
     recovery over the nested image.

   Acceptance, per round: every mount of a (possibly nested) crash image
   is fsck-clean, durable completed operations survive with the right
   bytes, and the live mount ends the run leak-free. Across the whole run:
   every failure kind actually fired (non-vacuous), at least one recovery
   rolled a transaction back, at least one nested re-crash image was
   verified, and a second run with the same seed reproduces every image
   digest bit for bit.

   Wired into `dune runtest` through the torture-soak alias; also runnable
   directly: dune exec test/torture_soak.exe *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Faultops = Hinfs_nvmm.Faultops
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Log = Hinfs_journal.Cacheline_log
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Repair = Hinfs_fsck.Repair
module Obs = Hinfs_obs.Obs

(* Override the soak seed with SOAK_SEED=<int64> to reproduce or widen a
   failure; every failure message carries the seed that produced it. *)
let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 1337L
let rounds = 6
let ops_per_round = 80
let max_files = 16
let root = Layout.root_ino
let chunk_max = 8 * 1024

let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

(* Oracle entry: contents as of the last *successful* operation, plus a
   taint flag once a failed or EIO-hit write may have torn the data range
   (PMFS journals metadata only, so a rolled-back overwrite legally leaves
   a mix of old and new bytes; the metadata — size, block structure — must
   still be exact). *)
type entry = { ino : int; content : Bytes.t; tainted : bool }

let copy_oracle oracle =
  let c = Hashtbl.create (Hashtbl.length oracle) in
  Hashtbl.iter
    (fun name e -> Hashtbl.replace c name { e with content = Bytes.copy e.content })
    oracle;
  c

(* Per-round record compared across runs for bit-for-bit determinism. *)
type round_outcome = {
  r_ops_ok : int;
  r_ops_failed : int;
  r_capture_fence : int option;
  r_digest1 : string; (* first crash image *)
  r_rolled_back1 : int;
  r_digest2 : string option; (* nested crash-during-recovery image *)
  r_rolled_back2 : int option;
}

type outcome = {
  o_rounds : round_outcome list;
  o_injected : (string * int) list;
  o_mount_repairs : int;  (* in-place heals of a degraded mount *)
  o_live_leaks : int * int;
  o_live_violations : int;
}

(* Verify one crash image: mount (running recovery), fsck, and check the
   durability oracle captured with the image. [in_flight] is the operation
   that was racing the crash — its target is exempt from every check
   (either outcome of an unfinished operation is legal). When [record] is
   set, the mount runs under the persistence recorder and the crash state
   at the [target]-th recovery fence is returned for nested re-crashing. *)
let verify_image engine ~label ~oracle ~in_flight ?record image =
  let stats = Stats.create () in
  let d = Device.of_snapshot engine stats config image in
  let captured = ref None in
  (match record with
  | None -> ()
  | Some target ->
    Device.enable_recording d;
    let fences = ref 0 in
    Device.set_on_fence d (fun () ->
        (* Keep the newest state at or before the target fence: bounded
           memory, and a seeded position inside the recovery window. *)
        if !fences <= target && Device.pending_choice_lines d > 0 then
          captured :=
            Some (Device.capture_crash_state ~label:(Fmt.str "%s-recovery-fence-%d" label !fences) d);
        incr fences));
  let fs = Pmfs.mount d () in
  (match record with Some _ -> Device.disable_recording d | None -> ());
  let freport = Fsck.check_pmfs fs in
  if not (Fsck.ok freport) then
    fail "[%s] crash image fails fsck: %a" label Fsck.pp_report freport;
  Hashtbl.iter
    (fun name e ->
      if Some name <> in_flight then
        match Pmfs.lookup fs ~dir:root name with
        | None -> fail "[%s] durable file %S lost" label name
        | Some ino ->
          let len = Bytes.length e.content in
          let size = Pmfs.inode_size fs ino in
          if size <> len then
            fail "[%s] file %S: size %d, expected %d" label name size len
          else if (not e.tainted) && len > 0 then begin
            let buf = Bytes.create len in
            let n = Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
            if n <> len || not (Bytes.equal buf e.content) then
              fail "[%s] file %S: content mismatch after recovery" label name
          end)
    oracle;
  (Stats.recovered_txns stats, !captured)

let run_soak () =
  let engine = Engine.create () in
  (* Soak under the observability sink: crash-image mounts, rollbacks and
     forced mid-op failures all unwind through instrumented spans, and the
     accounting must still balance at the end. *)
  let obs = Obs.create engine in
  Obs.install obs;
  let result = ref None in
  Engine.spawn engine ~name:"torture" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount d ~journal_blocks:32 () in
      let fops =
        Faultops.create ~block_alloc_rate:0.02 ~inode_alloc_rate:0.05
          ~journal_slot_rate:0.01 ~seed ()
      in
      Pmfs.attach_faultops fs (Some fops);
      let fault = Fault.create ~poison_rate:1e-4 ~transient_rate:5e-4 ~seed () in
      Device.set_fault_model d (Some fault);
      let rng = Rng.create ~seed in
      let oracle : (string, entry) Hashtbl.t = Hashtbl.create 64 in
      let names () =
        Array.of_list
          (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) oracle []))
      in
      let pick_name () =
        let arr = names () in
        if Array.length arr = 0 then None
        else Some arr.(Rng.int rng (Array.length arr))
      in
      let ops_ok = ref 0 and ops_failed = ref 0 in
      let mount_repairs = ref 0 in
      let in_flight = ref None in
      (* A failed or EIO-hit write must be metadata-atomic, but the data
         range may be torn: rebase the oracle on what is actually there
         and taint the entry. *)
      let rebase name =
        match Hashtbl.find_opt oracle name with
        | None -> ()
        | Some e ->
          let size = Pmfs.inode_size fs e.ino in
          let content =
            if size = 0 then Bytes.empty
            else begin
              let buf = Bytes.create size in
              match
                Pmfs.read fs ~ino:e.ino ~off:0 ~len:size ~into:buf ~into_off:0
              with
              | _ -> buf
              | exception Errno.Fs_error (Errno.EIO, _) -> buf
            end
          in
          Hashtbl.replace oracle name { e with content; tainted = true }
      in
      let do_create () =
        if Hashtbl.length oracle < max_files then begin
          let name = Fmt.str "t%04d" (Rng.int rng 10_000) in
          if not (Hashtbl.mem oracle name) then begin
            in_flight := Some name;
            match Pmfs.create_file fs ~dir:root name with
            | ino ->
              Hashtbl.replace oracle name
                { ino; content = Bytes.empty; tainted = false };
              incr ops_ok
            | exception
                ( Errno.Fs_error ((Errno.ENOSPC | Errno.EIO | Errno.EROFS), _)
                | Log.Journal_full ) ->
              incr ops_failed
          end
        end
      in
      let do_write () =
        match pick_name () with
        | None -> do_create ()
        | Some name ->
          let e = Hashtbl.find oracle name in
          let off = Rng.int rng (Bytes.length e.content + 1) in
          let len = 1 + Rng.int rng chunk_max in
          let src = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
          in_flight := Some name;
          (match
             Pmfs.write fs ~ino:e.ino ~off ~src ~src_off:0 ~len ~sync:true
           with
          | n ->
            let newlen = max (Bytes.length e.content) (off + n) in
            let updated = Bytes.make newlen '\000' in
            Bytes.blit e.content 0 updated 0 (Bytes.length e.content);
            Bytes.blit src 0 updated off n;
            Hashtbl.replace oracle name { e with content = updated };
            incr ops_ok
          | exception
              ( Errno.Fs_error ((Errno.ENOSPC | Errno.EIO | Errno.EROFS), _)
              | Log.Journal_full ) ->
            incr ops_failed;
            rebase name)
      in
      let do_read () =
        match pick_name () with
        | None -> ()
        | Some name ->
          let e = Hashtbl.find oracle name in
          let len = Bytes.length e.content in
          if len > 0 then begin
            in_flight := Some name;
            let buf = Bytes.create len in
            match Pmfs.read fs ~ino:e.ino ~off:0 ~len ~into:buf ~into_off:0 with
            | n ->
              if
                (not e.tainted)
                && (n <> len || not (Bytes.equal (Bytes.sub buf 0 n) e.content))
              then fail "SILENT CORRUPTION: %S read back wrong" name
              else incr ops_ok
            | exception Errno.Fs_error (Errno.EIO, _) -> incr ops_failed
          end
      in
      let do_unlink () =
        match pick_name () with
        | None -> ()
        | Some name -> (
          let e = Hashtbl.find oracle name in
          ignore e.ino;
          in_flight := Some name;
          match Pmfs.unlink fs ~dir:root name with
          | () ->
            Hashtbl.remove oracle name;
            incr ops_ok
          | exception
              ( Errno.Fs_error ((Errno.ENOSPC | Errno.EIO | Errno.EROFS), _)
              | Log.Journal_full ) ->
            incr ops_failed)
      in
      let round_outcomes = ref [] in
      for round = 1 to rounds do
        (* Arm the recorder and pick a seeded mid-round fence to crash at;
           the hook keeps the newest capturable state at or before it. *)
        Device.enable_recording d;
        let target = Rng.int rng 300 in
        let fences = ref 0 in
        let captured = ref None in
        let capture_meta = ref None in
        Device.set_on_fence d (fun () ->
            if !fences <= target && Device.pending_choice_lines d > 0 then begin
              captured :=
                Some
                  (Device.capture_crash_state
                     ~label:(Fmt.str "round-%d-fence-%d" round !fences)
                     d);
              capture_meta := Some (copy_oracle oracle, !in_flight, !fences)
            end;
            incr fences);
        let ok0 = !ops_ok and failed0 = !ops_failed in
        let debug_leaks = Sys.getenv_opt "LEAK_DEBUG" <> None in
        let last_leaked = ref 0 in
        for opi = 1 to ops_per_round do
          let kind = Rng.int rng 10 in
          (match kind with
          | 0 | 1 -> do_create ()
          | 2 | 3 | 4 | 5 -> do_write ()
          | 6 | 7 | 8 -> do_read ()
          | _ -> do_unlink ());
          if debug_leaks then begin
            let r = Fsck.check_pmfs fs in
            if r.Fsck.leaked_blocks <> !last_leaked then begin
              Fmt.epr "LEAK round=%d op=%d kind=%d target=%a: %d -> %d leaked@."
                round opi kind
                Fmt.(option string)
                !in_flight !last_leaked r.Fsck.leaked_blocks;
              last_leaked := r.Fsck.leaked_blocks
            end
          end;
          in_flight := None
        done;
        Device.disable_recording d;
        (* Crash: the captured mid-round state if one exists (a real
           mid-transaction image), else the end-of-round medium. *)
        let image, capture_fence, oracle_at_crash, racing =
          match (!captured, !capture_meta) with
          | Some state, Some (osnap, racing, fence) ->
            let counts =
              Array.of_list
                (List.map (fun (_, c) -> Array.length c) state.Device.cs_choices)
            in
            let vec = Array.map (fun c -> Rng.int rng c) counts in
            ( Device.materialize_crash_image state ~choice:vec,
              Some fence,
              osnap,
              racing )
          | _ -> (Device.snapshot d, None, copy_oracle oracle, None)
        in
        let label = Fmt.str "round-%d" round in
        let recovery_target = Rng.int rng 8 in
        let rolled_back1, recovery_state =
          verify_image engine ~label ~oracle:oracle_at_crash ~in_flight:racing
            ~record:recovery_target image
        in
        (* Re-crash *during* that recovery and recover again: the nested
           image must satisfy the exact same oracle. *)
        let digest2, rolled_back2 =
          match recovery_state with
          | None -> (None, None)
          | Some state ->
            let counts =
              Array.of_list
                (List.map (fun (_, c) -> Array.length c) state.Device.cs_choices)
            in
            let vec = Array.map (fun c -> Rng.int rng c) counts in
            let nested = Device.materialize_crash_image state ~choice:vec in
            let rb, _ =
              verify_image engine ~label:(label ^ "-recrash")
                ~oracle:oracle_at_crash ~in_flight:racing nested
            in
            (Some (Digest.bytes nested), Some rb)
        in
        round_outcomes :=
          {
            r_ops_ok = !ops_ok - ok0;
            r_ops_failed = !ops_failed - failed0;
            r_capture_fence = capture_fence;
            r_digest1 = Digest.bytes image;
            r_rolled_back1 = rolled_back1;
            r_digest2 = digest2;
            r_rolled_back2 = rolled_back2;
          }
          :: !round_outcomes;
        (* A metadata media fault may have degraded the (unsharded) mount
           read-only mid-round — the whole-mount rung of the degradation
           ladder. That is a legal outcome, not the end of the soak: run
           one online repair pass (journal re-replay, epoch heal, scrub,
           fsck-verify, re-admit) and carry on read-write. Unhealable
           damage leaves the mount degraded; later mutations keep
           counting as failed ops. *)
        if Pmfs.read_only fs then begin
          let healed, _failed = Repair.run_once fs in
          mount_repairs := !mount_repairs + healed
        end
      done;
      (* The live mount must end the run leak-free: every aborted
         operation returned its blocks, inodes, and journal slots. *)
      let freport = Fsck.check_pmfs fs in
      let live_violations =
        (* Poisoned lines from the media-fault model are tolerated on the
           live mount (fault_soak owns the degradation ladder); leaks and
           structural damage are not. *)
        List.filter
          (fun v -> not (String.length v >= 6 && String.sub v 0 6 = "media:"))
          freport.Fsck.violations
      in
      if live_violations <> [] then
        fail "live mount fails fsck: %s" (String.concat "; " live_violations);
      result :=
        Some
          {
            o_rounds = List.rev !round_outcomes;
            o_injected =
              List.map
                (fun k -> (Faultops.kind_name k, Faultops.injected fops k))
                Faultops.kinds;
            o_mount_repairs = !mount_repairs;
            o_live_leaks = (freport.Fsck.leaked_blocks, freport.Fsck.leaked_inodes);
            o_live_violations = List.length live_violations;
          });
  Engine.run engine;
  if Obs.open_spans obs > 0 || Obs.mismatches obs > 0 then
    fail "span accounting broken under torture (%d open, %d mismatched)"
      (Obs.open_spans obs) (Obs.mismatches obs);
  Obs.uninstall ();
  match !result with
  | Some o -> o
  | None ->
    Fmt.failwith "torture-soak simulation did not complete (seed %Ld)" seed

let () =
  let o1 = run_soak () in
  List.iteri
    (fun i r ->
      let at =
        match r.r_capture_fence with
        | Some f -> Fmt.str "fence %d" f
        | None -> "round end"
      in
      let recrash =
        match r.r_rolled_back2 with
        | Some rb -> Fmt.str "recrash verified (%d rolled back)" rb
        | None -> "no recrash state"
      in
      Fmt.pr "round %d: %d ok / %d failed ops, crash at %s (%d rolled back), %s@."
        (i + 1) r.r_ops_ok r.r_ops_failed at r.r_rolled_back1 recrash)
    o1.o_rounds;
  Fmt.pr "injected: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    o1.o_injected;
  if o1.o_mount_repairs > 0 then
    Fmt.pr "mount degraded and repaired online %d time(s)@." o1.o_mount_repairs;
  let lb, li = o1.o_live_leaks in
  if lb > 0 || li > 0 then fail "live mount leaks: %d blocks, %d inodes" lb li;
  (* Non-vacuity: every fault kind fired, at least one recovery really
     rolled a transaction back, and at least one nested re-crash image was
     verified. *)
  List.iter
    (fun (k, n) -> if n = 0 then fail "fault kind %s never injected" k)
    o1.o_injected;
  if not (List.exists (fun r -> r.r_rolled_back1 > 0) o1.o_rounds) then
    fail "no recovery rolled back a transaction (crashes all landed idle)";
  if not (List.exists (fun r -> r.r_digest2 <> None) o1.o_rounds) then
    fail "no crash-during-recovery image was exercised";
  (* Bit-for-bit reproducibility, images included. *)
  let o2 = run_soak () in
  if o1 <> o2 then fail "torture soak is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "torture-soak OK@."
  | fs ->
    List.iter (Fmt.epr "torture-soak FAIL: %s@.") (List.rev fs);
    exit 1
