(* Serving-layer unit tests: wire codec round-trips, the request loop
   end to end, lease expiry reclaim, generation-stamped handle staleness
   (unlink+recreate, rename-over, rollback/snapshot-delete), bounded
   open-file-cache eviction with flush-on-evict durability, the
   quarantined-shard EIO fail-fast, and handle-table determinism across
   seeded runs. *)

module Engine = Hinfs_sim.Engine
module Proc = Hinfs_sim.Proc
module Vfs = Hinfs_vfs.Vfs
module Types = Hinfs_vfs.Types
module Errno = Hinfs_vfs.Errno
module Pmfs = Hinfs_pmfs.Pmfs
module Cowfs = Hinfs_pmfs.Cowfs
module Health = Hinfs_pmfs.Health
module Fs = Hinfs.Fs
module Wire = Hinfs_server.Wire
module Server = Hinfs_server.Server
module Session = Hinfs_server.Session
module Ofcache = Hinfs_server.Ofcache
module Fhandle = Hinfs_server.Fhandle
module Clients = Hinfs_server.Clients

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- wire codec --- *)

let roundtrip_req r = Wire.decode_req (Wire.encode_req r)
let roundtrip_reply r = Wire.decode_reply (Wire.encode_reply r)

let test_codec_roundtrip () =
  let fh = Wire.fh_make ~slot:123456 ~gen:789 in
  check_int "fh slot" 123456 (Wire.fh_slot fh);
  check_int "fh gen" 789 (Wire.fh_gen fh);
  let reqs =
    [
      Wire.Lookup "/a/b";
      Wire.Getattr fh;
      Wire.Read (fh, 4096, 512);
      Wire.Write (fh, 0, String.make 200 'x', true);
      Wire.Write (fh, 65536, "", false);
      Wire.Create "/new";
      Wire.Remove "/old";
      Wire.Rename ("/from", "/to");
      Wire.Commit fh;
    ]
  in
  List.iter (fun r -> check_bool (Wire.req_name r) true (roundtrip_req r = r)) reqs;
  let st =
    {
      Types.ino = 42;
      kind = Types.Regular;
      size = 12345;
      nlink = 1;
      blocks = 4;
      mtime_ns = 99L;
    }
  in
  let replies =
    [
      Wire.R_handle (fh, st);
      Wire.R_attr { st with kind = Types.Directory };
      Wire.R_data (String.make 300 'd');
      Wire.R_written (4096, 7L);
      Wire.R_ok 7L;
      Wire.R_err Errno.ESTALE;
      Wire.R_err Errno.EIO;
      Wire.R_expired;
    ]
  in
  List.iter (fun r -> check_bool "reply" true (roundtrip_reply r = r)) replies

(* --- helpers --- *)

let expect_handle = function
  | Wire.R_handle (fh, st) -> (fh, st)
  | Wire.R_err e -> Alcotest.failf "expected handle, got %s" (Errno.to_string e)
  | _ -> Alcotest.fail "expected R_handle"

let expect_data = function
  | Wire.R_data d -> d
  | Wire.R_err e -> Alcotest.failf "expected data, got %s" (Errno.to_string e)
  | _ -> Alcotest.fail "expected R_data"

let expect_err = function
  | Wire.R_err e -> e
  | _ -> Alcotest.fail "expected R_err"

let expect_ok = function
  | Wire.R_ok _ | Wire.R_written _ -> ()
  | Wire.R_err e -> Alcotest.failf "expected ok, got %s" (Errno.to_string e)
  | _ -> Alcotest.fail "expected R_ok"

let with_server ?workers ?cache_cap ?lease_ns engine vfs f =
  let srv = Server.create ?workers ?cache_cap ?lease_ns engine vfs in
  Server.start srv;
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

(* --- end-to-end request loop --- *)

let test_serve_basic () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      with_server engine (Pmfs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let rpc r = Server.rpc srv ~sid r in
          let fh, st = expect_handle (rpc (Wire.Create "/f")) in
          check_int "fresh file is empty" 0 st.Types.size;
          expect_ok (rpc (Wire.Write (fh, 0, String.make 100 'a', false)));
          expect_ok (rpc (Wire.Write (fh, 100, String.make 50 'b', true)));
          expect_ok (rpc (Wire.Commit fh));
          let data = expect_data (rpc (Wire.Read (fh, 95, 10))) in
          check_string "read spans the write boundary" "aaaaabbbbb" data;
          (match rpc (Wire.Getattr fh) with
          | Wire.R_attr st -> check_int "size after writes" 150 st.Types.size
          | _ -> Alcotest.fail "expected R_attr");
          (* lookup of the same path returns the same handle *)
          let fh2, _ = expect_handle (rpc (Wire.Lookup "/f")) in
          check_bool "stable handle" true (Int64.equal fh fh2);
          (* path errors surface as errno replies, not exceptions *)
          check_bool "lookup of missing path" true
            (expect_err (rpc (Wire.Lookup "/missing")) = Errno.ENOENT);
          expect_ok (rpc (Wire.Rename ("/f", "/g")));
          let data = expect_data (rpc (Wire.Read (fh, 0, 5))) in
          check_string "handle follows rename" "aaaaa" data;
          expect_ok (rpc (Wire.Remove "/g"));
          check_bool "handle stale after remove" true
            (expect_err (rpc (Wire.Getattr fh)) = Errno.ESTALE);
          (* exactly the two deliberate failures above: ENOENT + ESTALE *)
          check_int "no other fs-level failures leaked" 2
            (Server.err_replies srv)))

(* --- lease expiry --- *)

let test_lease_expiry_reclaim () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      with_server ~lease_ns:1_000_000L engine (Pmfs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let fh, _ = expect_handle (Server.rpc srv ~sid (Wire.Create "/f")) in
          expect_ok
            (Server.rpc srv ~sid (Wire.Write (fh, 0, String.make 64 'w', false)));
          check_int "open cached" 1 (Ofcache.length (Server.cache srv));
          (* go idle past the lease: the reaper must reclaim the session
             and its cached open with no traffic arriving *)
          Proc.delay 5_000_000L;
          check_int "session swept while idle" 0
            (Session.live (Server.sessions srv));
          check_int "cached open reclaimed" 0
            (Ofcache.length (Server.cache srv));
          (* the lapsed sid now gets R_expired... *)
          (match Server.rpc srv ~sid (Wire.Getattr fh) with
          | Wire.R_expired -> ()
          | _ -> Alcotest.fail "expected R_expired for lapsed session");
          (* ...but handles are server-global: a fresh session keeps using
             the same fh, and the flush-on-reclaim preserved the data *)
          let sid2 = Server.establish srv in
          let data =
            expect_data (Server.rpc srv ~sid:sid2 (Wire.Read (fh, 0, 64)))
          in
          check_string "data survived reclaim" (String.make 64 'w') data))

(* --- generation bump across unlink+recreate --- *)

let test_generation_bump () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      with_server engine (Pmfs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let rpc r = Server.rpc srv ~sid r in
          let fh1, _ = expect_handle (rpc (Wire.Create "/f")) in
          expect_ok (rpc (Wire.Remove "/f"));
          let fh2, _ = expect_handle (rpc (Wire.Create "/f")) in
          check_bool "recreate at the same path mints a new generation" true
            (Wire.fh_gen fh2 > Wire.fh_gen fh1);
          check_bool "old handle stays stale" true
            (expect_err (rpc (Wire.Read (fh1, 0, 1))) = Errno.ESTALE);
          check_bool "old handle stale for writes too" true
            (expect_err (rpc (Wire.Write (fh1, 0, "x", true))) = Errno.ESTALE);
          (match rpc (Wire.Getattr fh2) with
          | Wire.R_attr _ -> ()
          | _ -> Alcotest.fail "fresh handle must resolve");
          (* rename-over clobbers the destination's handle the same way *)
          let fh3, _ = expect_handle (rpc (Wire.Create "/g")) in
          expect_ok (rpc (Wire.Rename ("/f", "/g")));
          check_bool "renamed-over handle is stale" true
            (expect_err (rpc (Wire.Getattr fh3)) = Errno.ESTALE);
          check_bool "moved handle survives" true
            (match rpc (Wire.Getattr fh2) with
            | Wire.R_attr _ -> true
            | _ -> false)))

(* --- ESTALE after rollback / snapshot delete --- *)

let test_estale_after_rollback () =
  Testkit.run_sim (fun engine ->
      let device = Testkit.make_device engine in
      let fs = Cowfs.mkfs_and_mount device () in
      with_server engine (Cowfs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let rpc r = Server.rpc srv ~sid r in
          let fh, _ = expect_handle (rpc (Wire.Create "/f")) in
          expect_ok (rpc (Wire.Write (fh, 0, "before", true)));
          let snap = Server.snapshot srv in
          expect_ok (rpc (Wire.Write (fh, 0, "AFTER!", true)));
          Server.rollback srv snap;
          (* revalidation must ESTALE before serving any inode state from
             the rolled-back tree — even though the path exists again *)
          check_bool "handle stale after rollback" true
            (expect_err (rpc (Wire.Getattr fh)) = Errno.ESTALE);
          check_bool "reads blocked too" true
            (expect_err (rpc (Wire.Read (fh, 0, 6))) = Errno.ESTALE);
          (* fresh lookup sees the rolled-back content *)
          let fh2, _ = expect_handle (rpc (Wire.Lookup "/f")) in
          check_string "rolled-back data" "before"
            (expect_data (rpc (Wire.Read (fh2, 0, 6))));
          (* snapshot_delete also invalidates outstanding handles *)
          let snap2 = Server.snapshot srv in
          check_bool "live before delete" true
            (match rpc (Wire.Getattr fh2) with
            | Wire.R_attr _ -> true
            | _ -> false);
          Server.snapshot_delete srv snap2;
          check_bool "handle stale after snapshot delete" true
            (expect_err (rpc (Wire.Getattr fh2)) = Errno.ESTALE)))

(* --- bounded open-file cache --- *)

let test_bounded_eviction () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      with_server ~cache_cap:4 engine (Pmfs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let rpc r = Server.rpc srv ~sid r in
          let fhs =
            List.init 8 (fun i ->
                let path = Printf.sprintf "/f%d" i in
                let fh, _ = expect_handle (rpc (Wire.Create path)) in
                expect_ok
                  (rpc (Wire.Write (fh, 0, String.make 32 (Char.chr (65 + i)), false)));
                fh)
          in
          let cache = Server.cache srv in
          check_int "cache stays bounded" 4 (Ofcache.length cache);
          check_bool "evictions happened" true (Ofcache.evictions cache >= 4);
          (* flush-on-evict: unstable writes to evicted files are durable;
             reads (which re-open) still see them *)
          List.iteri
            (fun i fh ->
              let data = expect_data (rpc (Wire.Read (fh, 0, 32))) in
              check_string
                (Printf.sprintf "f%d readable after eviction" i)
                (String.make 32 (Char.chr (65 + i)))
                data)
            fhs;
          check_int "still bounded after re-opens" 4 (Ofcache.length cache)))

(* --- quarantined-shard eviction fails fast with EIO --- *)

let test_quarantined_evict_eio () =
  Testkit.run_sim (fun engine ->
      let hcfg = { Testkit.small_hcfg with Hinfs.Hconfig.shards = 4 } in
      let _d, fs = Testkit.make_hinfs ~hcfg engine in
      with_server ~cache_cap:1 engine (Fs.handle fs) (fun srv ->
          let sid = Server.establish srv in
          let rpc r = Server.rpc srv ~sid r in
          let h = Fs.handle fs in
          for s = 0 to 3 do
            h.Vfs.mkdir (Printf.sprintf "/d%d" s)
          done;
          (* a dirty cached open on some shard... *)
          let fh, st = expect_handle (rpc (Wire.Create "/d0/victim")) in
          expect_ok (rpc (Wire.Write (fh, 0, String.make 64 'v', false)));
          let victim_shard = Pmfs.shard_of_ino (Fs.pmfs fs) st.Types.ino in
          let health = Pmfs.health (Fs.pmfs fs) in
          Health.degrade health (Health.Shard victim_shard) "test fault";
          Health.quarantine health victim_shard;
          (* ...now any request that forces the eviction gets EIO, fast:
             one flush attempt, no retry loop against the isolated shard *)
          let other =
            (* a dir on a different shard so only the eviction can fail *)
            let rec pick s =
              let dir = Printf.sprintf "/d%d" s in
              let dst = dir ^ "/other" in
              let ino = (h.Vfs.stat dir).Types.ino in
              if Pmfs.shard_of_ino (Fs.pmfs fs) ino <> victim_shard then dst
              else pick (s + 1)
            in
            pick 1
          in
          check_bool "eviction fails fast with EIO" true
            (expect_err (rpc (Wire.Create other)) = Errno.EIO);
          check_int "victim entry dropped, not retried" 0
            (Ofcache.length (Server.cache srv));
          (* healthy shards keep serving: the retry now finds room *)
          let fh2, _ = expect_handle (rpc (Wire.Create other)) in
          expect_ok (rpc (Wire.Write (fh2, 0, "ok", true)));
          check_string "healthy shard unaffected" "ok"
            (expect_data (rpc (Wire.Read (fh2, 0, 2))))))

(* --- handle-table determinism across seeded runs --- *)

let fleet_run () =
  Testkit.run_sim (fun engine ->
      let _d, fs = Testkit.make_pmfs engine in
      let srv = Server.create ~workers:4 ~cache_cap:8 engine (Pmfs.handle fs) in
      Server.start srv;
      let cfg =
        {
          Clients.default with
          Clients.clients = 8;
          ops_per_client = 30;
          hot_files = 16;
          seed = 4242L;
        }
      in
      let ops = Clients.run engine srv cfg in
      Server.stop srv;
      (ops, Server.served srv, Fhandle.dump (Server.handles srv), Proc.now ()))

let test_fleet_determinism () =
  let ops1, served1, dump1, t1 = fleet_run () in
  let ops2, served2, dump2, t2 = fleet_run () in
  check_int "same ops" ops1 ops2;
  check_int "same requests served" served1 served2;
  check_bool "some requests served" true (served1 > 8 * 30);
  check_bool "identical handle tables" true (dump1 = dump2);
  check_bool "handle table is non-trivial" true (List.length dump1 > 8);
  check_bool "identical virtual end time" true (Int64.equal t1 t2)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [ Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip ] );
      ( "serve",
        [
          Alcotest.test_case "request loop end to end" `Quick test_serve_basic;
          Alcotest.test_case "lease expiry reclaim" `Quick
            test_lease_expiry_reclaim;
        ] );
      ( "handles",
        [
          Alcotest.test_case "generation bump on recreate" `Quick
            test_generation_bump;
          Alcotest.test_case "ESTALE after rollback" `Quick
            test_estale_after_rollback;
          Alcotest.test_case "fleet determinism" `Quick test_fleet_determinism;
        ] );
      ( "ofcache",
        [
          Alcotest.test_case "bounded eviction" `Quick test_bounded_eviction;
          Alcotest.test_case "quarantined evict EIO" `Quick
            test_quarantined_evict_eio;
        ] );
    ]
