(* Obs smoke: drive the whole profile pipeline end to end — obs-enabled
   run, Chrome-trace export to a file, BENCH-style experiment JSON — then
   parse both artifacts back with our own parser and validate shape and
   required keys. Wired into `dune runtest` through the obs-smoke alias;
   also runnable directly: dune exec test/obs_smoke.exe *)

module Obs = Hinfs_obs.Obs
module Hist = Hinfs_obs.Hist
module Ojson = Hinfs_obs.Ojson
module Profile = Hinfs_harness.Profile
module Fixtures = Hinfs_harness.Fixtures
module Experiment = Hinfs_harness.Experiment
module Workload = Hinfs_workloads.Workload
module Filebench = Hinfs_workloads.Filebench

let failures = ref []
let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt

let spec =
  {
    Experiment.default_spec with
    Experiment.nvmm_size = 48 * 1024 * 1024;
    Experiment.buffer_bytes = 2 * 1024 * 1024;
    Experiment.cache_pages = 512;
    Experiment.threads = 2;
    Experiment.duration_ns = 10_000_000L;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let member path json =
  List.fold_left
    (fun acc key ->
      match acc with None -> None | Some v -> Ojson.member key v)
    (Some json) path

let () =
  let workload =
    Filebench.fileserver
      ~params:
        {
          Filebench.default_params with
          Filebench.nfiles = 24;
          Filebench.mean_file_size = 16 * 1024;
          Filebench.io_size = 16 * 1024;
          Filebench.append_size = 4 * 1024;
        }
      ()
  in
  let result, _stats, obs =
    Experiment.run_workload_obs ~spec ~trace:true Fixtures.Hinfs_fs workload
  in
  if result.Workload.ops <= 0 then fail "workload performed no ops";
  if Obs.open_spans obs > 0 then
    fail "%d spans left open" (Obs.open_spans obs);
  if Obs.mismatches obs > 0 then
    fail "%d span mismatches" (Obs.mismatches obs);

  (* Chrome trace: write to a file, read it back, parse, validate. *)
  let trace_path = Filename.temp_file "hinfs_obs_smoke" ".trace.json" in
  Fun.protect ~finally:(fun () -> Sys.remove trace_path) @@ fun () ->
  Profile.write_file trace_path (Obs.chrome_trace obs);
  (match Ojson.of_string (read_file trace_path) with
  | exception Ojson.Parse_error msg ->
    fail "trace file does not parse: %s" msg
  | parsed -> (
    match member [ "traceEvents" ] parsed with
    | None -> fail "trace file has no traceEvents"
    | Some v -> (
      match Ojson.to_list v with
      | None -> fail "traceEvents is not a list"
      | Some events ->
        if List.length events < 100 then
          fail "suspiciously small trace (%d events)" (List.length events);
        List.iter
          (fun e ->
            match member [ "ph" ] e with
            | Some (Ojson.String _) -> ()
            | _ -> fail "trace event without a ph field")
          events;
        let has_phase ph =
          List.exists
            (fun e -> member [ "ph" ] e = Some (Ojson.String ph))
            events
        in
        List.iter
          (fun ph -> if not (has_phase ph) then fail "no %S events" ph)
          [ "M"; "X"; "i"; "C" ])));

  (* BENCH-style JSON: serialize one experiment, parse it back, check the
     keys scripts/bench_check.sh depends on. *)
  let json =
    Profile.bench_json
      ~config:[ ("seed", Ojson.Int (Int64.to_int spec.Experiment.seed)) ]
      [
        Profile.experiment_json ~name:"fileserver" ~fs:"hinfs"
          ~ops:result.Workload.ops ~elapsed_ns:result.Workload.elapsed_ns obs;
      ]
  in
  (match Ojson.of_string (Ojson.to_string_pretty json) with
  | exception Ojson.Parse_error msg -> fail "bench json does not parse: %s" msg
  | parsed -> (
    if member [ "schema" ] parsed <> Some (Ojson.String "hinfs-bench") then
      fail "bench json schema tag missing";
    match member [ "experiments" ] parsed with
    | Some (Ojson.List [ e ]) ->
      (match member [ "throughput_ops_per_sec" ] e with
      | Some v when (match Ojson.to_float v with Some f -> f > 0.0 | None -> false)
        -> ()
      | _ -> fail "throughput missing or zero");
      List.iter
        (fun q ->
          match member [ "latency_ns"; "op.write"; q ] e with
          | Some v
            when (match Ojson.to_int v with Some n -> n > 0 | None -> false)
            -> ()
          | _ -> fail "latency_ns.op.write.%s missing or zero" q)
        [ "p50"; "p99"; "p999" ]
    | _ -> fail "experiments list malformed"));

  match !failures with
  | [] ->
    Fmt.pr "obs-smoke OK: %d ops, trace + bench JSON round-trip clean@."
      result.Workload.ops
  | fs ->
    List.iter (Fmt.epr "obs-smoke FAIL: %s@.") (List.rev fs);
    exit 1
