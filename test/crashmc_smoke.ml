(* crashmc smoke suite: run every scenario with a fixed seed and a bounded
   image budget, and enforce the acceptance bar:
   - >= 1000 distinct crash images explored across PMFS and HiNFS workloads,
   - zero invariant/durability violations on the real code,
   - the injected missing-fence fixture IS flagged (checker not vacuous),
   - fully deterministic given the seed.

   Wired into `dune runtest` through the crashmc-smoke alias; also runnable
   directly: dune exec test/crashmc_smoke.exe *)

module Crashmc = Hinfs_crashmc.Crashmc
module Scenarios = Hinfs_crashmc.Scenarios

let params =
  {
    Crashmc.seed = 42L;
    k_exhaustive = 10;
    samples_per_state = 28;
    max_images_per_state = 96;
    max_states = 40;
  }

let () =
  let report = Crashmc.run_suite ~params Scenarios.all in
  Fmt.pr "%a@." Crashmc.pp_report report;
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let images = Crashmc.total_images report in
  if images < 1000 then
    fail "only %d distinct crash images explored (need >= 1000)" images;
  (match Crashmc.unexpected_violations report with
  | [] -> ()
  | vs ->
    fail "%d unexpected violation(s), e.g. %s" (List.length vs)
      (match vs with
      | (sc, st, v) :: _ -> Fmt.str "[%s/%s] %s" sc st v
      | [] -> assert false));
  (match Crashmc.missed_fixtures report with
  | [] -> ()
  | ms -> fail "buggy fixture(s) not flagged: %s" (String.concat ", " ms));
  (* Determinism: a second run with the same seed must agree exactly. *)
  let again = Crashmc.run_suite ~params Scenarios.all in
  List.iter2
    (fun (a : Crashmc.scenario_result) (b : Crashmc.scenario_result) ->
      if
        a.sr_states <> b.sr_states
        || a.sr_images <> b.sr_images
        || a.sr_violations <> b.sr_violations
      then fail "scenario %s is not deterministic" a.sr_name)
    report.results again.results;
  match !failures with
  | [] -> Fmt.pr "crashmc-smoke OK@."
  | fs ->
    List.iter (Fmt.epr "crashmc-smoke FAIL: %s@.") (List.rev fs);
    exit 1
