(* Nvcache soak: an oracle-checked op mix over the nvcache tier (both the
   logging and the paging design), with mid-round crashes and a
   replay-under-fault leg. The acceptance bar:

   - zero silent corruption: every read matches the DRAM oracle byte for
     byte, before and after destage;
   - crash durability: a crash image taken after any fsync recovers with
     every fsync'd file intact and zero records dropped;
   - replay under media faults: with poison struck into the cache area of
     the crash image, replay never crashes and never applies wrong data —
     a clean replay (nothing dropped) still yields byte-exact content;
   - fully deterministic: a second run with the same seed reproduces the
     same counters bit for bit.

   Wired into `dune runtest` through the nvcache-soak alias; also runnable
   directly: dune exec test/nvcache_soak.exe *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Extfs = Hinfs_extfs.Extfs
module Nvcache = Hinfs_nvcache.Nvcache
module Types = Hinfs_vfs.Types
module Vfs = Hinfs_vfs.Vfs

(* Override the soak seed with SOAK_SEED=<int64> to reproduce or widen a
   failure; every failure message carries the seed that produced it. *)
let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 7L

let rounds = 3
let ops_per_round = 60
let max_files = 10
let max_len = 16 * 1024

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let run_sim f =
  let engine = Engine.create () in
  let result = ref None in
  Engine.spawn engine ~name:"soak" (fun () -> result := Some (f engine));
  Engine.run engine;
  match !result with
  | Some r -> r
  | None ->
    fail "simulation did not complete";
    Obj.magic 0

(* Counters gathered per design, compared across runs for determinism. *)
type outcome = {
  o_appends : int;
  o_absorbed : int;
  o_destages : int;
  o_stalls : int;
  o_replayed : int;
  o_fault_dropped : int;
}

let verify_oracle h oracle ~where =
  Hashtbl.iter
    (fun path content ->
      let len = Bytes.length content in
      let fd = h.Vfs.open_ path Types.rdonly in
      let buf = Bytes.create len in
      let n = h.Vfs.pread fd ~off:0 buf len in
      h.Vfs.close fd;
      if n <> len then fail "%s: %s is %d bytes, oracle has %d" where path n len
      else if not (Bytes.equal buf content) then
        fail "%s: %s content differs from oracle" where path)
    oracle

(* One live round: op mix over a fresh stack, a crash snapshot mid-round,
   and the oracle as it stood at the snapshot. *)
let live_round ~design ~round =
  run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.create engine stats config in
      let st =
        Nvcache.mkfs_and_mount device ~design ~mode:Extfs.Ext4
          ~journal_blocks:16 ~sync_mount:true ~cache_pages:64 ()
      in
      let h = Nvcache.handle st in
      let cache = Nvcache.cache st in
      let rng =
        Rng.create ~seed:(Int64.add seed (Int64.of_int (round * 977)))
      in
      let oracle : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
      let payload len = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      let do_write () =
        let path = Fmt.str "/f%d" (Rng.int rng max_files) in
        let len = 1 + Rng.int rng max_len in
        let data = payload len in
        let fd =
          h.Vfs.open_ path { Types.creat with Types.truncate = true }
        in
        ignore (h.Vfs.write fd data len);
        h.Vfs.fsync fd;
        h.Vfs.close fd;
        Hashtbl.replace oracle path data
      in
      let snap = ref None in
      let snap_oracle = ref None in
      let snap_at = ops_per_round / 2 in
      for op = 0 to ops_per_round - 1 do
        (match Rng.int rng 5 with
        | 0 | 1 | 2 -> do_write ()
        | 3 -> if Hashtbl.length oracle = 0 then do_write () else ()
        | _ -> Nvcache.destage_all cache);
        verify_oracle h oracle ~where:(Fmt.str "live %s" (Nvcache.design_name design));
        if op = snap_at then begin
          (* Crash point: everything in the oracle has been fsync'd. *)
          snap := Some (Device.snapshot device);
          snap_oracle := Some (Hashtbl.copy oracle)
        end
      done;
      Nvcache.unmount st;
      let snap = Option.get !snap and snap_oracle = Option.get !snap_oracle in
      ( snap,
        snap_oracle,
        ( Nvcache.appends cache,
          Nvcache.absorbed_bytes cache,
          Nvcache.destages cache,
          Nvcache.stalls cache ) ))

(* Recover a crash image and hold it to the oracle. *)
let crash_leg ~design snap oracle =
  run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats config snap in
      let st =
        Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true ~cache_pages:64
          ()
      in
      let replayed =
        match Nvcache.last_recovery st with
        | None ->
          fail "%s: mount ran no replay" (Nvcache.design_name design);
          0
        | Some r ->
          if r.Nvcache.rec_dropped > 0 then
            fail "%s: clean crash image dropped %d record(s)"
              (Nvcache.design_name design) r.Nvcache.rec_dropped;
          r.Nvcache.rec_replayed
      in
      verify_oracle (Nvcache.handle st) oracle
        ~where:(Fmt.str "replay %s" (Nvcache.design_name design));
      Nvcache.unmount st;
      replayed)

(* Same crash image with poison struck into the cache area: replay must
   survive, and must never apply wrong data. A replay that dropped nothing
   still owes the oracle byte-exact content. *)
let fault_leg ~design ~round snap oracle =
  run_sim (fun engine ->
      let stats = Stats.create () in
      let device = Device.of_snapshot engine stats config snap in
      let fault =
        Fault.create ~seed:(Int64.add seed (Int64.of_int (round + 13))) ()
      in
      Device.set_fault_model device (Some fault);
      let cache_bytes = Nvcache.default_cache_bytes config in
      let area_start = Config.(config.nvmm_size) - cache_bytes in
      let rng =
        Rng.create ~seed:(Int64.add seed (Int64.of_int ((round * 131) + 17)))
      in
      for _ = 1 to 3 do
        let line = (area_start / 64) + Rng.int rng (cache_bytes / 64) in
        Fault.poison_line fault line
      done;
      match Nvcache.recover device () with
      | exception e ->
        fail "%s: replay under poison raised %s" (Nvcache.design_name design)
          (Printexc.to_string e);
        0
      | r ->
        if r.Nvcache.rec_dropped = 0 then begin
          (* Poison missed every live record: full durability holds. The
             poisoned lines may still sit under backend blocks, so clear
             them before reading files back. *)
          Device.set_fault_model device None;
          let st =
            Nvcache.mount device ~mode:Extfs.Ext4 ~sync_mount:true
              ~cache_pages:64 ()
          in
          verify_oracle (Nvcache.handle st) oracle
            ~where:(Fmt.str "fault-replay %s" (Nvcache.design_name design));
          Nvcache.unmount st
        end;
        r.Nvcache.rec_dropped)

let run_design design =
  let appends = ref 0
  and absorbed = ref 0
  and destages = ref 0
  and stalls = ref 0
  and replayed = ref 0
  and dropped = ref 0 in
  for round = 1 to rounds do
    let snap, oracle, (a, ab, d, s) = live_round ~design ~round in
    appends := !appends + a;
    absorbed := !absorbed + ab;
    destages := !destages + d;
    stalls := !stalls + s;
    replayed := !replayed + crash_leg ~design snap oracle;
    dropped := !dropped + fault_leg ~design ~round snap oracle
  done;
  {
    o_appends = !appends;
    o_absorbed = !absorbed;
    o_destages = !destages;
    o_stalls = !stalls;
    o_replayed = !replayed;
    o_fault_dropped = !dropped;
  }

let run_all () = List.map (fun d -> (d, run_design d)) [ Nvcache.Logging; Nvcache.Paging ]

let () =
  let first = run_all () in
  let second = run_all () in
  if first <> second then
    fail "nondeterministic: two same-seed runs disagree";
  List.iter
    (fun (design, o) ->
      if o.o_appends = 0 then
        fail "%s: soak absorbed nothing" (Nvcache.design_name design);
      if o.o_replayed = 0 then
        fail "%s: no crash image had anything to replay"
          (Nvcache.design_name design);
      Fmt.pr "nvcache-soak %s: %d appends, %d bytes absorbed, %d destages, %d stalls, %d replayed, %d dropped under poison@."
        (Nvcache.design_name design) o.o_appends o.o_absorbed o.o_destages
        o.o_stalls o.o_replayed o.o_fault_dropped)
    first;
  match !failures with
  | [] -> Fmt.pr "nvcache-soak OK@."
  | fs ->
    List.iter (fun f -> Fmt.epr "FAIL: %s@." f) (List.rev fs);
    exit 1
