(* Snapshot soak: the composition test for the CoW substrate. One seeded
   run drives a mixed op stream — creates, overwrites, unlinks,
   truncates, whole-FS transactions (committed and aborted), snapshots,
   clones, rollbacks, snapshot GC — with forced mid-op allocation faults,
   and holds the medium to the whole-image oracle:

   - after every completed operation the committed state digest is
     recorded; a crash image captured at a seeded mid-round fence (with
     seeded choices for the undecided lines) must mount as cowfs to a
     digest in that set, bit for bit, and pass cow fsck;
   - a DRAM oracle checks every live read back byte for byte, across
     rollbacks (the oracle rolls back with the snapshot);
   - every forced-fault abort is net-zero: same digest, same free-block
     count as before the failed operation;
   - obs span accounting balances at the end (commit and GC spans unwind
     correctly through every abort), and a second run with the same seed
     reproduces every counter and image digest bit for bit.

   Wired into `dune runtest` through the snapshot-soak alias; also
   runnable directly: dune exec test/cow_soak.exe *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Faultops = Hinfs_nvmm.Faultops
module Cowfs = Hinfs_pmfs.Cowfs
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Obs = Hinfs_obs.Obs

(* Override the soak seed with SOAK_SEED=<int64> to reproduce or widen a
   failure; every failure message carries the seed that produced it. *)
let seed =
  match Sys.getenv_opt "SOAK_SEED" with
  | Some s -> Int64.of_string s
  | None -> 4242L

let rounds = 4
let ops_per_round = 60
let max_files = 12
let chunk_max = 6 * 1024
let root = Cowfs.root_ino

let config = { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }

let failures = ref []

let fail fmt =
  Fmt.kstr (fun s -> failures := Fmt.str "[seed %Ld] %s" seed s :: !failures) fmt

(* Per-round record compared across runs for bit-for-bit determinism. *)
type round_outcome = {
  r_ops_ok : int;
  r_aborted : int;
  r_capture_fence : int option;
  r_image_digest : string;
}

type outcome = {
  o_rounds : round_outcome list;
  o_commits : int;
  o_snapshots_taken : int;
  o_rollbacks : int;
  o_forced_aborts : int;
  o_final_digest : string;
}

let copy_oracle o =
  let c = Hashtbl.create (Hashtbl.length o) in
  Hashtbl.iter (fun k v -> Hashtbl.replace c k (Bytes.copy v)) o;
  c

(* Whole-image oracle: every crash image must mount to one of the states
   the run actually committed. *)
let verify_image engine ~label ~digests image =
  let stats = Stats.create () in
  let d = Device.of_snapshot engine stats config image in
  match Cowfs.mount d () with
  | exception e ->
    fail "[%s] crash image does not mount: %s" label (Printexc.to_string e)
  | fs ->
    let dg = Cowfs.state_digest fs in
    if not (Hashtbl.mem digests dg) then
      fail "[%s] crash image digest %s.. matches none of the %d committed states"
        label
        (String.sub dg 0 (min 12 (String.length dg)))
        (Hashtbl.length digests);
    (match Fsck.cow_violations fs with
    | [] -> ()
    | vs -> fail "[%s] crash image fails cow fsck: %s" label (String.concat "; " vs))

let run_soak () =
  let engine = Engine.create () in
  (* Commit and GC spans must unwind correctly through every abort: the
     accounting has to balance once the engine drains. *)
  let obs = Obs.create engine in
  Obs.install obs;
  let result = ref None in
  Engine.spawn engine ~name:"cow-soak" (fun () ->
      let stats = Stats.create () in
      let d = Device.create engine stats config in
      let fs = Cowfs.mkfs_and_mount d () in
      let fops = Faultops.create ~seed () in
      Cowfs.attach_faultops fs (Some fops);
      let rng = Rng.create ~seed in
      (* Committed-state digest set (the whole-image oracle), and the DRAM
         oracle for the live working tree. Snapshots carry a frozen copy
         of the DRAM oracle so a rollback can restore it. *)
      let digests : (string, unit) Hashtbl.t = Hashtbl.create 256 in
      let record () = Hashtbl.replace digests (Cowfs.state_digest fs) () in
      let oracle : (string, Bytes.t) Hashtbl.t = Hashtbl.create 32 in
      let snaps : (int, (string, Bytes.t) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 8
      in
      record ();
      let ops_ok = ref 0
      and aborted = ref 0
      and snapshots_taken = ref 0
      and rollbacks = ref 0 in
      let names () =
        Array.of_list
          (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) oracle []))
      in
      let pick_name () =
        let arr = names () in
        if Array.length arr = 0 then None
        else Some arr.(Rng.int rng (Array.length arr))
      in
      let payload len = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      (* Three ops (create, write, truncate), each committing its own
         state at top level: record every intermediate digest, or a crash
         image landing between them has no committed state to match. *)
      let write_file name data =
        let ino =
          match Cowfs.lookup fs ~dir:root name with
          | Some ino -> ino
          | None ->
            let ino = Cowfs.create_file fs ~dir:root name in
            if Cowfs.txn_depth fs = 0 then record ();
            ino
        in
        ignore
          (Cowfs.write fs ~ino ~off:0 ~src:data ~src_off:0
             ~len:(Bytes.length data) ~sync:true);
        if Cowfs.txn_depth fs = 0 then record ();
        Cowfs.truncate fs ~ino ~size:(Bytes.length data)
      in
      let do_write () =
        let name =
          if Hashtbl.length oracle < max_files && Rng.int rng 3 = 0 then
            Fmt.str "f%03d" (Rng.int rng 1000)
          else match pick_name () with
            | Some n -> n
            | None -> Fmt.str "f%03d" (Rng.int rng 1000)
        in
        let data = payload (1 + Rng.int rng chunk_max) in
        write_file name data;
        Hashtbl.replace oracle name data;
        incr ops_ok
      in
      let do_unlink () =
        match pick_name () with
        | None -> ()
        | Some name ->
          let ino = Option.get (Cowfs.lookup fs ~dir:root name) in
          ignore ino;
          Cowfs.unlink fs ~dir:root name;
          Hashtbl.remove oracle name;
          incr ops_ok
      in
      (* A committed transaction lands as one atomic batch (one digest);
         an aborted one must leave no trace at all. *)
      let do_txn () =
        let digest0 = Cowfs.state_digest fs in
        let oracle0 = copy_oracle oracle in
        Cowfs.txn_begin fs;
        let n = 2 + Rng.int rng 3 in
        let staged = ref [] in
        for i = 0 to n - 1 do
          let name = Fmt.str "f%03d" (Rng.int rng 1000) in
          let data = payload (1 + Rng.int rng chunk_max) in
          write_file name data;
          staged := (name, data) :: !staged;
          ignore i
        done;
        if Rng.int rng 2 = 0 then begin
          Cowfs.txn_commit fs;
          (* [staged] is newest-first; replay oldest-first so that when a
             name was written twice inside the transaction the oracle
             keeps the newest data, as the file system does. *)
          List.iter (fun (n, d) -> Hashtbl.replace oracle n d)
            (List.rev !staged);
          incr ops_ok
        end
        else begin
          Cowfs.txn_abort fs;
          Hashtbl.reset oracle;
          Hashtbl.iter (Hashtbl.replace oracle) oracle0;
          if Cowfs.state_digest fs <> digest0 then
            fail "aborted transaction left a trace (digest moved)";
          incr aborted
        end
      in
      let do_snapshot () =
        if Hashtbl.length snaps < 4 then begin
          let id = Cowfs.snapshot fs in
          Hashtbl.replace snaps id (copy_oracle oracle);
          incr snapshots_taken;
          incr ops_ok
        end
      in
      let snap_ids () =
        Array.of_list (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) snaps []))
      in
      let do_rollback () =
        let ids = snap_ids () in
        if Array.length ids > 0 then begin
          let id = ids.(Rng.int rng (Array.length ids)) in
          Cowfs.rollback fs ~snap_id:id;
          Hashtbl.reset oracle;
          Hashtbl.iter (Hashtbl.replace oracle) (Hashtbl.find snaps id);
          incr rollbacks;
          incr ops_ok
        end
      in
      let do_snapshot_delete () =
        let ids = snap_ids () in
        if Array.length ids > 0 then begin
          let id = ids.(Rng.int rng (Array.length ids)) in
          Cowfs.snapshot_delete fs ~snap_id:id;
          Hashtbl.remove snaps id;
          incr ops_ok
        end
      in
      (* Forced mid-op allocation fault: the operation must fail ENOSPC
         and leave digest and free-block count exactly where they were. *)
      (* Exactly one op under the forced fault — an existing file, a bare
         write — so "net-zero" means net-zero against the digest taken
         right before it. *)
      let do_forced_abort () =
        match pick_name () with
        | None -> ()
        | Some name ->
          let ino = Option.get (Cowfs.lookup fs ~dir:root name) in
          let digest0 = Cowfs.state_digest fs in
          let free0 = Cowfs.free_data_blocks fs in
          let data = payload (1 + Rng.int rng chunk_max) in
          Faultops.force fops Faultops.Block_alloc ~after:(Rng.int rng 3);
          (match
             Cowfs.write fs ~ino ~off:0 ~src:data ~src_off:0
               ~len:(Bytes.length data) ~sync:true
           with
          | _ -> fail "forced block-alloc fault never fired"
          | exception Errno.Fs_error (Errno.ENOSPC, _) -> ());
          Faultops.disarm fops Faultops.Block_alloc;
          if Cowfs.state_digest fs <> digest0 then
            fail "forced abort left a trace (digest moved)";
          if Cowfs.free_data_blocks fs <> free0 then
            fail "forced abort leaked blocks (%d -> %d)" free0
              (Cowfs.free_data_blocks fs);
          incr aborted
      in
      let verify_reads () =
        Hashtbl.iter
          (fun name content ->
            match Cowfs.lookup fs ~dir:root name with
            | None -> fail "oracle file %S missing from working tree" name
            | Some ino ->
              let len = Bytes.length content in
              let buf = Bytes.create (max 1 len) in
              let n = Cowfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 in
              if n <> len || not (Bytes.equal (Bytes.sub buf 0 n) content) then
                fail "SILENT CORRUPTION: %S reads back wrong" name)
          oracle
      in
      let round_outcomes = ref [] in
      for round = 1 to rounds do
        (* Arm the recorder and pick a seeded mid-round fence to crash at;
           the hook keeps the newest capturable state at or before it. *)
        Device.enable_recording d;
        let target = Rng.int rng 200 in
        let fences = ref 0 in
        let captured = ref None in
        Device.set_on_fence d (fun () ->
            if !fences <= target && Device.pending_choice_lines d > 0 then
              captured :=
                Some
                  (Device.capture_crash_state
                     ~label:(Fmt.str "round-%d-fence-%d" round !fences)
                     d);
            incr fences);
        let ok0 = !ops_ok and aborted0 = !aborted in
        for _ = 1 to ops_per_round do
          (match Rng.int rng 12 with
          | 0 | 1 | 2 | 3 | 4 -> do_write ()
          | 5 -> do_unlink ()
          | 6 | 7 -> do_txn ()
          | 8 -> do_snapshot ()
          | 9 -> do_rollback ()
          | 10 -> do_snapshot_delete ()
          | _ -> do_forced_abort ());
          record ();
          verify_reads ()
        done;
        Device.disable_recording d;
        (* Crash: the captured mid-round state if one exists, else the
           end-of-round medium; either way the image must mount to a
           committed state. *)
        let image, capture_fence =
          match !captured with
          | Some state ->
            let vec =
              Array.of_list
                (List.map
                   (fun (_, c) -> Rng.int rng (Array.length c))
                   state.Device.cs_choices)
            in
            (Device.materialize_crash_image state ~choice:vec, Some !fences)
          | None -> (Device.snapshot d, None)
        in
        verify_image engine ~label:(Fmt.str "round-%d" round) ~digests image;
        round_outcomes :=
          {
            r_ops_ok = !ops_ok - ok0;
            r_aborted = !aborted - aborted0;
            r_capture_fence = capture_fence;
            r_image_digest = Digest.to_hex (Digest.bytes image);
          }
          :: !round_outcomes
      done;
      (* End-of-run hygiene: the live mount is fsck-clean once every
         snapshot is deleted, and everything those snapshots pinned has
         been handed back. *)
      (match Fsck.cow_violations fs with
      | [] -> ()
      | vs -> fail "live mount fails cow fsck: %s" (String.concat "; " vs));
      Hashtbl.iter (fun id _ -> Cowfs.snapshot_delete fs ~snap_id:id) snaps;
      Hashtbl.reset snaps;
      (match Fsck.cow_violations fs with
      | [] -> ()
      | vs ->
        fail "live mount fails cow fsck after snapshot gc: %s"
          (String.concat "; " vs));
      verify_reads ();
      result :=
        Some
          {
            o_rounds = List.rev !round_outcomes;
            o_commits = Cowfs.commits fs;
            o_snapshots_taken = !snapshots_taken;
            o_rollbacks = !rollbacks;
            o_forced_aborts = !aborted;
            o_final_digest = Cowfs.state_digest fs;
          });
  Engine.run engine;
  if Obs.open_spans obs > 0 || Obs.mismatches obs > 0 then
    fail "span accounting broken under snapshot soak (%d open, %d mismatched)"
      (Obs.open_spans obs) (Obs.mismatches obs);
  Obs.uninstall ();
  match !result with
  | Some o -> o
  | None -> Fmt.failwith "cow-soak simulation did not complete (seed %Ld)" seed

let () =
  let o1 = run_soak () in
  List.iteri
    (fun i r ->
      let at =
        match r.r_capture_fence with
        | Some _ -> "mid-round fence"
        | None -> "round end"
      in
      Fmt.pr "round %d: %d ok / %d aborted ops, crash image at %s (%s..)@."
        (i + 1) r.r_ops_ok r.r_aborted at
        (String.sub r.r_image_digest 0 12))
    o1.o_rounds;
  Fmt.pr "cow-soak: %d commits, %d snapshots, %d rollbacks, %d aborts (txn + forced)@."
    o1.o_commits o1.o_snapshots_taken o1.o_rollbacks o1.o_forced_aborts;
  (* Non-vacuity: the soak must actually have exercised the machinery. *)
  if o1.o_snapshots_taken = 0 then fail "soak never took a snapshot";
  if o1.o_rollbacks = 0 then fail "soak never rolled back";
  if o1.o_forced_aborts = 0 then fail "soak never aborted an operation";
  if not (List.exists (fun r -> r.r_capture_fence <> None) o1.o_rounds) then
    fail "no round captured a mid-round crash image";
  (* Bit-for-bit reproducibility, images included. *)
  let o2 = run_soak () in
  if o1 <> o2 then fail "cow soak is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "cow-soak OK@."
  | fs ->
    List.iter (Fmt.epr "cow-soak FAIL: %s@.") (List.rev fs);
    exit 1
