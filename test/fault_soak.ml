(* Fault-soak: a filebench-style op mix over PMFS under nonzero media-fault
   rates, with a DRAM oracle shadowing every file's contents. The
   acceptance bar:

   - zero silent corruption: every successful read matches the oracle
     byte for byte; a poisoned range must surface as EIO, never as wrong
     data;
   - the degradation ladder holds: after remount + scrub, either the file
     system is clean per fsck, or it is read-only and mutations raise
     EROFS while reads are still served;
   - fully deterministic: a second run with the same seed reproduces the
     same fault placement and the same counters bit for bit.

   Wired into `dune runtest` through the fault-soak alias; also runnable
   directly: dune exec test/fault_soak.exe *)

module Engine = Hinfs_sim.Engine
module Rng = Hinfs_sim.Rng
module Stats = Hinfs_stats.Stats
module Config = Hinfs_nvmm.Config
module Device = Hinfs_nvmm.Device
module Fault = Hinfs_nvmm.Fault
module Pmfs = Hinfs_pmfs.Pmfs
module Layout = Hinfs_pmfs.Layout
module Errno = Hinfs_vfs.Errno
module Fsck = Hinfs_fsck.Fsck
module Scrub = Hinfs_fsck.Scrub
module Obs = Hinfs_obs.Obs

let seed = 42L
let poison_rate = 1e-3
let transient_rate = 1e-3
let ops = 600
let max_files = 24
let max_file_len = 24 * 1024

let failures = ref []
let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt

(* Counters gathered at the end of a run, compared across runs for
   determinism. *)
type outcome = {
  o_poisoned : int list;
  o_model : int * int * int * int;
  o_fs : int * int * int * int * int;
  o_ops : int * int * int; (* reads ok, reads eio, writes refused *)
  o_read_only : bool;
  o_violations : int;
}

let run_soak () =
  let engine = Engine.create () in
  (* Soak with the observability sink installed: every span opened on an
     EIO/EROFS unwind must still close, so the accounting is checked at
     the end of the run. *)
  let obs = Obs.create engine in
  Obs.install obs;
  let result = ref None in
  Engine.spawn engine ~name:"soak" (fun () ->
      let stats = Stats.create () in
      let config =
        { Config.default with Config.nvmm_size = 8 * 1024 * 1024 }
      in
      let device = Device.create engine stats config in
      let fs = Pmfs.mkfs_and_mount device ~journal_blocks:32 () in
      let fault =
        Fault.create ~poison_rate ~transient_rate ~seed ()
      in
      Device.set_fault_model device (Some fault);
      let rng = Rng.create ~seed in
      (* Oracle: file name -> (ino, contents). Byte values are drawn from
         the same RNG stream, so contents are part of the deterministic
         replay. *)
      let oracle : (string, int * Bytes.t) Hashtbl.t = Hashtbl.create 64 in
      let names () = Hashtbl.fold (fun k _ acc -> k :: acc) oracle [] in
      let pick_name () =
        match names () with
        | [] -> None
        | l ->
          let arr = Array.of_list (List.sort compare l) in
          Some arr.(Rng.int rng (Array.length arr))
      in
      let reads_ok = ref 0 and reads_eio = ref 0 and writes_refused = ref 0 in
      let payload len =
        Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))
      in
      let do_create () =
        if Hashtbl.length oracle < max_files then begin
          let name = Fmt.str "f%04d" (Rng.int rng 10_000) in
          if not (Hashtbl.mem oracle name) then
            match Pmfs.create_file fs ~dir:Layout.root_ino name with
            | ino -> Hashtbl.replace oracle name (ino, Bytes.empty)
            | exception Errno.Fs_error (Errno.EROFS, _) ->
              incr writes_refused
        end
      in
      let do_write () =
        match pick_name () with
        | None -> do_create ()
        | Some name ->
          let ino, content = Hashtbl.find oracle name in
          let off = Rng.int rng (max 1 (min max_file_len (Bytes.length content + 1))) in
          let len = 1 + Rng.int rng 8192 in
          let src = payload len in
          (match
             Pmfs.write fs ~ino ~off ~src ~src_off:0 ~len ~sync:(Rng.bool rng)
           with
          | n ->
            let newlen = max (Bytes.length content) (off + n) in
            let updated = Bytes.make newlen '\000' in
            Bytes.blit content 0 updated 0 (Bytes.length content);
            Bytes.blit src 0 updated off n;
            Hashtbl.replace oracle name (ino, updated)
          | exception Errno.Fs_error (Errno.EROFS, _) -> incr writes_refused
          | exception Errno.Fs_error (Errno.ENOSPC, _) -> ())
      in
      let do_read () =
        match pick_name () with
        | None -> ()
        | Some name ->
          let ino, content = Hashtbl.find oracle name in
          let len = Bytes.length content in
          if len > 0 then begin
            let buf = Bytes.create len in
            match Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 with
            | n ->
              if n <> len || not (Bytes.equal (Bytes.sub buf 0 n) content)
              then
                fail "SILENT CORRUPTION: %S read back wrong (%d/%d bytes)"
                  name n len
              else incr reads_ok
            | exception Errno.Fs_error (Errno.EIO, _) -> incr reads_eio
          end
      in
      let do_unlink () =
        match pick_name () with
        | None -> ()
        | Some name -> (
          match Pmfs.unlink fs ~dir:Layout.root_ino name with
          | () -> Hashtbl.remove oracle name
          | exception Errno.Fs_error (Errno.EROFS, _) -> incr writes_refused)
      in
      for _ = 1 to ops do
        match Rng.int rng 10 with
        | 0 | 1 -> do_create ()
        | 2 | 3 | 4 | 5 -> do_write ()
        | 6 | 7 | 8 -> do_read ()
        | _ -> do_unlink ()
      done;
      (* Remount (recovery + superblock checks run), scrub, fsck. *)
      Pmfs.unmount fs;
      let fs = Pmfs.mount device () in
      let _scrub_report = Scrub.run fs in
      let freport = Fsck.check_pmfs fs in
      if Pmfs.read_only fs then begin
        (* Degraded: mutations must be refused, reads must still work. *)
        (match Pmfs.create_file fs ~dir:Layout.root_ino "post-degrade" with
        | _ -> fail "degraded mount accepted a create"
        | exception Errno.Fs_error (Errno.EROFS, _) -> ());
        Hashtbl.iter
          (fun name (ino, content) ->
            let len = Bytes.length content in
            if len > 0 then
              let buf = Bytes.create len in
              match Pmfs.read fs ~ino ~off:0 ~len ~into:buf ~into_off:0 with
              | n ->
                if n <> len || not (Bytes.equal (Bytes.sub buf 0 n) content)
                then fail "SILENT CORRUPTION after degrade: %S" name
              | exception Errno.Fs_error (Errno.EIO, _) -> ())
          oracle
      end
      else if not (Fsck.ok freport) then
        fail "writable file system fails fsck: %a" Fsck.pp_report freport;
      result :=
        Some
          {
            o_poisoned = Fault.poisoned_lines fault;
            o_model =
              ( Fault.store_poisons fault,
                Fault.transient_faults fault,
                Fault.poison_hits fault,
                Fault.heals fault );
            o_fs =
              ( Stats.media_faults_transient stats,
                Stats.media_faults_poison stats,
                Stats.media_retries stats,
                Stats.scrub_repairs stats,
                Stats.crc_mismatches stats );
            o_ops = (!reads_ok, !reads_eio, !writes_refused);
            o_read_only = Pmfs.read_only fs;
            o_violations = List.length freport.Fsck.violations;
          });
  Engine.run engine;
  if Obs.open_spans obs > 0 || Obs.mismatches obs > 0 then
    fail "span accounting broken under faults (%d open, %d mismatched)"
      (Obs.open_spans obs) (Obs.mismatches obs);
  Obs.uninstall ();
  match !result with
  | Some o -> o
  | None -> Fmt.failwith "fault-soak simulation did not complete"

let () =
  let o1 = run_soak () in
  let reads_ok, reads_eio, writes_refused = o1.o_ops in
  Fmt.pr
    "fault-soak: %d ops (%d reads ok, %d EIO, %d writes refused), %d \
     poisoned line(s), read-only=%b, %d fsck violation(s)@."
    ops reads_ok reads_eio writes_refused
    (List.length o1.o_poisoned)
    o1.o_read_only o1.o_violations;
  if reads_ok = 0 then fail "soak exercised no successful reads";
  let store_poisons, transients, _, _ = o1.o_model in
  if store_poisons + transients = 0 then
    fail "soak injected no faults at all (rates too low to test anything)";
  (* Bit-for-bit reproducibility. *)
  let o2 = run_soak () in
  if o1 <> o2 then fail "soak is not deterministic for seed %Ld" seed;
  match !failures with
  | [] -> Fmt.pr "fault-soak OK@."
  | fs ->
    List.iter (Fmt.epr "fault-soak FAIL: %s@.") (List.rev fs);
    exit 1
